//! TPC-C on the real engine: load a small warehouse count, run the
//! Payment + NewOrder mix from several threads, then check the spec's
//! consistency conditions.
//!
//! ```sh
//! cargo run --release --example tpcc_cli [scheme] [warehouses] [seconds]
//! cargo run --release --example tpcc_cli mvcc 4 3
//! ```

use std::time::Duration;

use abyss::common::CcScheme;
use abyss::core::{executor, run_workers, Database, EngineConfig};
use abyss::workload::tpcc::{self, TpccConfig, TpccGen, TpccTable};

fn main() {
    let mut args = std::env::args().skip(1);
    let scheme: CcScheme = args
        .next()
        .map(|s| s.parse().expect("unknown scheme"))
        .unwrap_or(CcScheme::NoWait);
    let warehouses: u32 = args
        .next()
        .map(|s| s.parse().expect("warehouses"))
        .unwrap_or(2);
    let seconds: u64 = args
        .next()
        .map(|s| s.parse().expect("seconds"))
        .unwrap_or(2);
    let workers = 4u32;

    let cfg = TpccConfig {
        warehouses,
        workers,
        ..TpccConfig::default()
    };
    let catalog = tpcc::catalog(&cfg);
    println!("loading TPC-C: {warehouses} warehouses, scheme {scheme} ...");
    let db = Database::new(EngineConfig::new(scheme, workers), catalog).expect("config");
    for table in [
        TpccTable::Warehouse,
        TpccTable::District,
        TpccTable::Customer,
        TpccTable::Item,
        TpccTable::Stock,
    ] {
        let keys: Vec<u64> = tpcc::initial_keys(&cfg)
            .filter(|&(t, _)| t == table.id())
            .map(|(_, k)| k)
            .collect();
        db.load_table(table.id(), keys, |s, r, k| {
            tpcc::init_row(table.id(), s, r, k)
        })
        .expect("load");
    }

    println!("running {seconds}s with {workers} workers ...");
    let gens = (0..workers)
        .map(|w| {
            let mut g = TpccGen::new(cfg.clone(), w, 0xCC + u64::from(w));
            Box::new(move || g.next_txn()) as Box<dyn FnMut() -> abyss::common::TxnTemplate + Send>
        })
        .collect();
    // Zero warmup: the consistency checks below compare *database state*
    // (accumulated from load time) against *statistics*, so the stats must
    // cover the whole run.
    let out = run_workers(&db, gens, Duration::ZERO, Duration::from_secs(seconds));

    let payment = out.stats.commits_by_tag[tpcc::TAG_PAYMENT as usize];
    let neworder = out.stats.commits_by_tag[tpcc::TAG_NEW_ORDER as usize];
    println!(
        "\ncommitted: {} txn ({payment} Payment / {neworder} NewOrder)",
        out.stats.commits
    );
    println!("throughput: {:.0} txn/s", out.txn_per_sec());
    println!(
        "aborts: {} (rate {:.2}%)",
        out.stats.total_aborts(),
        out.stats.abort_rate() * 100.0
    );

    // Spec consistency condition 1 (adapted): every committed Payment adds
    // 1 to one warehouse's hot column (W_YTD), so ΣW_YTD == #Payments. The
    // district hot column does double duty as D_YTD *and* D_NEXT_O_ID, so
    // ΣD_hot == initial next-o-id + #Payments + #NewOrders.
    let w_ytd = db.sum_column(TpccTable::Warehouse.id(), executor::HOT_COL);
    let d_hot = db.sum_column(TpccTable::District.id(), executor::HOT_COL);
    let districts = u64::from(warehouses) * tpcc::DISTRICTS_PER_WH;
    assert_eq!(w_ytd, payment, "ΣW_YTD must equal committed Payments");
    assert_eq!(
        d_hot,
        tpcc::FIRST_NEW_ORDER_ID * districts + payment + neworder,
        "ΣD_hot must equal initial counters + Payments + NewOrders"
    );
    println!("consistency: ΣW_YTD == Payments; ΣD_hot == init + Payments + NewOrders ✓");

    // Every committed NewOrder inserted exactly one ORDER and NEW-ORDER row
    // (index_len counts live rows; aborted eager inserts leave dead slots).
    let orders = db.index_len(TpccTable::Order.id());
    let new_orders = db.index_len(TpccTable::NewOrder.id());
    assert_eq!(
        orders, neworder,
        "ORDER rows must equal committed NewOrders"
    );
    assert_eq!(
        new_orders, neworder,
        "NEW-ORDER rows must equal committed NewOrders"
    );
    println!("consistency: ORDER/NEW-ORDER inserts == committed NewOrders ✓");
}
