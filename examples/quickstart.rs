//! Quickstart: create a database, pick a concurrency-control scheme, run
//! transactions from multiple threads.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use abyss::common::{AbortReason, CcScheme};
use abyss::core::{Database, EngineConfig};
use abyss::storage::{row, Catalog, Schema};

fn main() {
    // A catalog with one table: u64 key + two u64 columns.
    let mut catalog = Catalog::new();
    let inventory = catalog.add_table("inventory", Schema::key_plus_payload(2, 8), 10_000);

    // Pick any of the paper's seven schemes here.
    let scheme = CcScheme::NoWait;
    let db = Database::new(EngineConfig::new(scheme, 4), catalog).expect("valid config");

    // Load 1000 items with 50 units of stock each.
    db.load_table(inventory, 0..1000, |schema, data, key| {
        row::set_u64(schema, data, 0, key);
        row::set_u64(schema, data, 1, 50); // stock
        row::set_u64(schema, data, 2, 0); // sold
    })
    .expect("load");

    // Four threads sell items concurrently; oversells must be impossible.
    crossbeam_scope(&db, inventory);

    let stock = db.sum_column(inventory, 1);
    let sold = db.sum_column(inventory, 2);
    println!("scheme = {scheme}");
    println!("remaining stock = {stock}, sold = {sold}");
    assert_eq!(stock + sold, 1000 * 50, "conservation violated!");
    println!("stock + sold == initial stock ✓ (serializable)");
}

fn crossbeam_scope(db: &Arc<Database>, inventory: u32) {
    std::thread::scope(|s| {
        for w in 0..4u32 {
            let db = Arc::clone(db);
            s.spawn(move || {
                let mut ctx = db.worker(w);
                let mut sold = 0u32;
                let mut key = u64::from(w) * 17 % 1000;
                while sold < 2000 {
                    key = (key * 31 + 7) % 1000;
                    // Sell one unit if stock remains.
                    let result = ctx.run_txn(&[], |txn| {
                        let stock = txn.read_u64(inventory, key, 1)?;
                        if stock == 0 {
                            return Err(abyss::core::TxnError::Abort(AbortReason::UserAbort));
                        }
                        txn.update(inventory, key, |schema, data| {
                            row::set_u64(schema, data, 1, stock - 1);
                            let s = row::get_u64(schema, data, 2);
                            row::set_u64(schema, data, 2, s + 1);
                        })?;
                        Ok(())
                    });
                    if result.is_ok() {
                        sold += 1;
                    }
                }
            });
        }
    });
}
