//! Bank transfers: the classic serializability demonstration, run under
//! *every* scheme of the paper, with throughput and abort-rate output —
//! a miniature of the paper's low-vs-high-contention comparison.
//!
//! ```sh
//! cargo run --release --example bank_transfers
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use abyss::common::{CcScheme, PartId};
use abyss::core::{Database, EngineConfig};
use abyss::storage::{row, Catalog, Schema};

const ACCOUNTS: u64 = 1024;
const WORKERS: u32 = 8;
const TRANSFERS_PER_WORKER: u64 = 20_000;
const INITIAL_BALANCE: u64 = 1_000;

struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

fn run(scheme: CcScheme, hot: bool) -> (f64, f64) {
    let mut catalog = Catalog::new();
    let accounts = catalog.add_table("accounts", Schema::key_plus_payload(1, 8), ACCOUNTS);
    let db = Database::new(EngineConfig::new(scheme, WORKERS), catalog).unwrap();
    db.load_table(accounts, 0..ACCOUNTS, |s, r, k| {
        row::set_u64(s, r, 0, k);
        row::set_u64(s, r, 1, INITIAL_BALANCE);
    })
    .unwrap();

    // Contention knob: all transfers inside 8 hot accounts, or spread out.
    let key_space = if hot { 8 } else { ACCOUNTS };
    let aborts = AtomicU64::new(0);
    let started = Instant::now();
    std::thread::scope(|s| {
        for w in 0..WORKERS {
            let db = Arc::clone(&db);
            let aborts = &aborts;
            s.spawn(move || {
                let mut ctx = db.worker(w);
                let mut rng = Rng(0xBEEF + u64::from(w));
                for _ in 0..TRANSFERS_PER_WORKER {
                    let from = rng.next() % key_space;
                    let mut to = rng.next() % key_space;
                    if to == from {
                        to = (to + 1) % key_space;
                    }
                    let parts: Vec<PartId> = if scheme == CcScheme::HStore {
                        let mut p = vec![
                            (from % u64::from(WORKERS)) as PartId,
                            (to % u64::from(WORKERS)) as PartId,
                        ];
                        p.sort_unstable();
                        p.dedup();
                        p
                    } else {
                        vec![]
                    };
                    ctx.run_txn(&parts, |t| {
                        let bal = t.read_u64(accounts, from, 1)?;
                        let amount = (rng.next() % 20).min(bal);
                        t.update(accounts, from, |s, d| {
                            row::set_u64(s, d, 1, bal - amount);
                        })?;
                        t.update(accounts, to, |s, d| {
                            let b = row::get_u64(s, d, 1);
                            row::set_u64(s, d, 1, b + amount);
                        })?;
                        Ok(())
                    })
                    .unwrap();
                }
                aborts.fetch_add(ctx.stats.total_aborts(), Ordering::Relaxed);
            });
        }
    });
    let secs = started.elapsed().as_secs_f64();
    let total = db.sum_column(accounts, 1);
    assert_eq!(
        total,
        ACCOUNTS * INITIAL_BALANCE,
        "{scheme}: money not conserved!"
    );
    let committed = u64::from(WORKERS) * TRANSFERS_PER_WORKER;
    let abort_rate =
        aborts.load(Ordering::Relaxed) as f64 / (committed + aborts.load(Ordering::Relaxed)) as f64;
    (committed as f64 / secs, abort_rate)
}

fn main() {
    println!("{WORKERS} workers × {TRANSFERS_PER_WORKER} transfers, {ACCOUNTS} accounts\n");
    println!(
        "{:<11} {:>14} {:>8}   {:>14} {:>8}",
        "scheme", "low-cont txn/s", "aborts", "high-cont txn/s", "aborts"
    );
    for scheme in CcScheme::ALL {
        let (tps_low, ar_low) = run(scheme, false);
        let (tps_high, ar_high) = run(scheme, true);
        println!(
            "{:<11} {:>14.0} {:>7.1}%   {:>14.0} {:>7.1}%",
            scheme.to_string(),
            tps_low,
            ar_low * 100.0,
            tps_high,
            ar_high * 100.0
        );
    }
    println!("\nEvery scheme conserved the total balance (asserted).");
}
