//! Stare into the abyss: run all seven schemes on 1024 *simulated* cores —
//! the paper's headline experiment, on your laptop.
//!
//! ```sh
//! cargo run --release --example thousand_cores [theta] [--breakdown]
//! cargo run --release --example thousand_cores 0.8
//! cargo run --release --example thousand_cores 0.8 --breakdown
//! ```
//!
//! `--breakdown` switches the table to the seven-phase profile (the
//! paper's six §3.2 categories plus Logging) and writes each scheme's
//! stack to `results/thousand_cores_breakdown.json` (shared envelope —
//! CI's `validate_results` checks it like every other artifact).

use abyss::bench::harness::emit::Envelope;
use abyss::common::stats::Category;
use abyss::common::{CcScheme, Phase};
use abyss::sim::{run_sim, SimConfig, SimTable};
use abyss::workload::ycsb::{YcsbConfig, YcsbGen};

fn main() {
    let mut theta: f64 = 0.6;
    let mut breakdown = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--breakdown" => breakdown = true,
            s => theta = s.parse().expect("theta in [0,1)"),
        }
    }
    let cores = 1024;
    println!("simulating {cores} cores, write-intensive YCSB, theta={theta}\n");
    if breakdown {
        println!(
            "{:<11} {:>9} {:>9}  {:>6} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6}",
            "scheme", "Mtxn/s", "aborts/s", "useful", "abort", "ts", "index", "wait", "mgr", "log"
        );
    } else {
        println!(
            "{:<11} {:>9} {:>9}  {:>6} {:>6} {:>6} {:>6} {:>6} {:>6}",
            "scheme", "Mtxn/s", "aborts/s", "useful", "abort", "ts", "index", "wait", "mgr"
        );
    }

    let ycsb_cfg = YcsbConfig::write_intensive(theta);
    let zipf = abyss::common::zipf::ZipfGen::new(ycsb_cfg.table_rows, theta);
    let mut stacks: Vec<(CcScheme, String)> = Vec::new();
    for scheme in CcScheme::ALL {
        let mut sim = SimConfig::new(scheme, cores);
        sim.warmup = 1_000_000;
        sim.measure = 5_000_000;
        let cfg2 = if scheme == CcScheme::HStore {
            YcsbConfig {
                parts: cores,
                ..ycsb_cfg.clone()
            }
        } else {
            ycsb_cfg.clone()
        };
        let gens = (0..cores)
            .map(|c| {
                let mut g = YcsbGen::with_zipf(cfg2.clone(), zipf.clone(), u64::from(c) + 7);
                Box::new(move || g.next_txn()) as Box<dyn FnMut() -> abyss::common::TxnTemplate>
            })
            .collect();
        let tables = vec![SimTable {
            row_size: 1008,
            counter_init: 0,
        }];
        let r = run_sim(sim, tables, gens);
        if breakdown {
            let p = &r.stats.phase_ns;
            let f: Vec<String> = Phase::ALL
                .iter()
                .map(|&ph| format!("{:>5.0}%", p.fraction(ph) * 100.0))
                .collect();
            println!(
                "{:<11} {:>9.3} {:>9.3}  {}",
                scheme.to_string(),
                r.txn_per_sec() / 1e6,
                r.aborts_per_sec() / 1e6,
                f.join(" ")
            );
            stacks.push((scheme, p.to_json()));
        } else {
            let b = &r.stats.breakdown;
            println!(
                "{:<11} {:>9.3} {:>9.3}  {:>5.0}% {:>5.0}% {:>5.0}% {:>5.0}% {:>5.0}% {:>5.0}%",
                scheme.to_string(),
                r.txn_per_sec() / 1e6,
                r.aborts_per_sec() / 1e6,
                b.fraction(Category::UsefulWork) * 100.0,
                b.fraction(Category::Abort) * 100.0,
                b.fraction(Category::TsAlloc) * 100.0,
                b.fraction(Category::Index) * 100.0,
                b.fraction(Category::Wait) * 100.0,
                b.fraction(Category::Manager) * 100.0,
            );
        }
    }
    if breakdown {
        let mut env = Envelope::new("thousand_cores_breakdown");
        env.meta_num("cores", f64::from(cores))
            .meta_num("theta", theta)
            .section(
                "breakdown",
                &format!(
                    "{{\"schemes\":[{}]}}",
                    stacks
                        .iter()
                        .map(|(s, j)| format!("{{\"scheme\":\"{}\",\"breakdown\":{j}}}", s.name()))
                        .collect::<Vec<_>>()
                        .join(",")
                ),
            );
        if env.write().is_ok() {
            println!("\n[json] results/thousand_cores_breakdown.json");
        }
    }
    println!("\n(the paper's conclusion: nobody survives a thousand cores unscathed)");
}
