//! Crash-recovery conformance: kill the engine mid-run, replay the WAL,
//! and prove the recovered state is exactly a prefix-consistent epoch
//! boundary of the reference execution.
//!
//! * **Digest determinism** (all nine schemes): a seeded single-worker
//!   run with manual epoch fences is "killed" (dropped without the clean
//!   shutdown flush). Recovery must restore precisely the commits of the
//!   durable epochs — digest-equal to a reference run that executes only
//!   that prefix — and the unflushed tail must be gone.
//! * **Replay idempotence**: recovering twice (and recovering an
//!   already-recovered directory) converges to the same digest.
//! * **Append-after-recovery**: a recovered engine keeps logging; a
//!   second crash+recovery round-trips the combined history.
//! * **Multi-worker kill smoke** (NO_WAIT + SILO): concurrent increment
//!   workload killed with live background ticker/flusher threads; the
//!   recovered sum must equal the initial sum plus *exactly* the replayed
//!   increment count — any torn or half-applied record breaks it.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use abyss::common::{CcScheme, PartId};
use abyss::core::{Database, EngineConfig, TxnError, WorkerCtx};
use abyss::storage::{row, Catalog, FsyncPolicy, Schema};

const TABLE: u32 = 0;
const BASE_ROWS: u64 = 200;
const INITIAL: u64 = 1_000;

fn tmp_dir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("abyss-recovery-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// A database over one ordered table; logging (manual group fences) when
/// `log_dir` is given.
fn build_db(scheme: CcScheme, workers: u32, log_dir: Option<&Path>) -> Arc<Database> {
    build_db_with(scheme, workers, log_dir, FsyncPolicy::Group)
}

fn build_db_with(
    scheme: CcScheme,
    workers: u32,
    log_dir: Option<&Path>,
    fsync: FsyncPolicy,
) -> Arc<Database> {
    let mut cat = Catalog::new();
    cat.add_ordered_table("t", Schema::key_plus_payload(2, 8), 8_000);
    let mut cfg = EngineConfig::new(scheme, workers);
    cfg.epoch_interval_us = 0; // epochs advance only by hand
    if let Some(dir) = log_dir {
        cfg = cfg.with_logging(dir, fsync);
        cfg.log.group_interval_us = 0; // flushes only by hand
                                       // Drain every append to the OS immediately: the killed run's
                                       // non-durable tail then exists on disk (past the durable fence),
                                       // which is exactly what recovery's truncation must cut away.
        cfg.log.group_max_bytes = 1;
    }
    let db = Database::new(cfg, cat).unwrap();
    db.load_table(TABLE, 0..BASE_ROWS, |s, r, k| {
        row::set_u64(s, r, 0, k);
        row::set_u64(s, r, 1, INITIAL);
    })
    .unwrap();
    db
}

fn parts(scheme: CcScheme) -> Vec<PartId> {
    if scheme == CcScheme::HStore {
        vec![0]
    } else {
        vec![]
    }
}

/// Deterministic transaction `i`: a seeded mix of updates, inserts and
/// deletes (the same `i` always produces the same committed effect).
fn apply_txn(ctx: &mut WorkerCtx, scheme: CcScheme, i: u64) {
    let p = parts(scheme);
    let r = ctx.run_txn(&p, |t| {
        // Always bump a base row (spread deterministically).
        t.update_counter(TABLE, (i * 37) % BASE_ROWS, 1, 1)?;
        match i % 4 {
            // Insert a fresh key...
            0 => t.insert(TABLE, 10_000 + i, |s, d| {
                row::set_u64(s, d, 0, 10_000 + i);
                row::set_u64(s, d, 1, i);
            })?,
            // ...later overwrite it...
            1 if i >= 4 => {
                t.update(TABLE, 10_000 + (i - 1), |s, d| row::set_u64(s, d, 1, i * 7))?
            }
            // ...and later still delete some of them.
            2 if i >= 8 => t.delete(TABLE, 10_000 + (i - 2))?,
            _ => {
                let v = t.read_u64(TABLE, (i * 13) % BASE_ROWS, 1)?;
                t.update(TABLE, (i * 13) % BASE_ROWS, |s, d| {
                    row::set_u64(s, d, 1, v + 1)
                })?;
            }
        }
        Ok(())
    });
    r.unwrap_or_else(|e| panic!("{scheme}: txn {i} failed: {e}"));
}

const BATCH: u64 = 10;
const DURABLE_BATCHES: u64 = 5;
const TAIL_TXNS: u64 = 10;

/// Run the kill scenario: `DURABLE_BATCHES` batches each followed by an
/// epoch advance + group fence, then `TAIL_TXNS` more commits that never
/// reach a fence — then drop everything (the kill).
fn killed_run(scheme: CcScheme, dir: &Path) {
    let db = build_db(scheme, 1, Some(dir));
    let mut ctx = db.worker(0);
    for b in 0..DURABLE_BATCHES {
        for i in b * BATCH..(b + 1) * BATCH {
            apply_txn(&mut ctx, scheme, i);
        }
        db.epoch_manager().advance();
        db.log_group_flush();
    }
    for i in DURABLE_BATCHES * BATCH..DURABLE_BATCHES * BATCH + TAIL_TXNS {
        apply_txn(&mut ctx, scheme, i);
    }
    // Kill: no clean-shutdown flush; the tail epoch's records are only in
    // the in-memory shard buffers and die with the process image.
}

/// The reference: execute exactly the durable prefix, no logging.
fn reference_digest(scheme: CcScheme) -> u64 {
    let db = build_db(scheme, 1, None);
    let mut ctx = db.worker(0);
    for i in 0..DURABLE_BATCHES * BATCH {
        apply_txn(&mut ctx, scheme, i);
    }
    db.state_digest()
}

fn recover_matches_durable_prefix(scheme: CcScheme) {
    let dir = tmp_dir(&format!("digest-{scheme}"));
    killed_run(scheme, &dir);

    let db = build_db(scheme, 1, Some(&dir));
    let report = db.recover_from_log().unwrap();
    assert_eq!(
        report.durable_epoch, DURABLE_BATCHES,
        "{scheme}: recovery must stop at the last fully-durable epoch"
    );
    assert!(
        report.records_applied >= DURABLE_BATCHES * BATCH,
        "{scheme}: too few records ({}) for {} committed txns",
        report.records_applied,
        DURABLE_BATCHES * BATCH
    );
    assert!(
        report.truncated_shards >= 1,
        "{scheme}: the non-durable tail must be truncated"
    );
    let recovered = db.state_digest();
    let reference = reference_digest(scheme);
    assert_eq!(
        recovered, reference,
        "{scheme}: recovered state diverges from the durable-prefix reference"
    );

    // Replay idempotence: a second recovery of the (now truncated) log —
    // on top of the already-recovered state — must change nothing.
    let again = db.recover_from_log().unwrap();
    assert_eq!(again.durable_epoch, report.durable_epoch);
    assert_eq!(again.records_applied, report.records_applied, "{scheme}");
    assert_eq!(
        db.state_digest(),
        reference,
        "{scheme}: replay not idempotent"
    );

    // And a recovery into a *fresh* database converges to the same state.
    let db2 = build_db(scheme, 1, Some(&dir));
    db2.recover_from_log().unwrap();
    assert_eq!(
        db2.state_digest(),
        reference,
        "{scheme}: re-recovery diverges"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

macro_rules! digest_tests {
    ($($name:ident => $scheme:expr,)*) => {$(
        #[test]
        fn $name() {
            recover_matches_durable_prefix($scheme);
        }
    )*};
}

digest_tests! {
    recover_digest_dl_detect => CcScheme::DlDetect,
    recover_digest_no_wait => CcScheme::NoWait,
    recover_digest_wait_die => CcScheme::WaitDie,
    recover_digest_timestamp => CcScheme::Timestamp,
    recover_digest_mvcc => CcScheme::Mvcc,
    recover_digest_occ => CcScheme::Occ,
    recover_digest_hstore => CcScheme::HStore,
    recover_digest_silo => CcScheme::Silo,
    recover_digest_tictoc => CcScheme::TicToc,
}

/// The digest matrix above must cover every scheme (sync guard, same
/// pattern as the conformance harness).
#[test]
fn digest_matrix_covers_all_schemes() {
    let covered = [
        CcScheme::DlDetect,
        CcScheme::NoWait,
        CcScheme::WaitDie,
        CcScheme::Timestamp,
        CcScheme::Mvcc,
        CcScheme::Occ,
        CcScheme::HStore,
        CcScheme::Silo,
        CcScheme::TicToc,
    ];
    assert_eq!(covered, CcScheme::ALL);
}

#[test]
fn recovered_engine_keeps_logging_after_a_second_crash() {
    let scheme = CcScheme::Silo;
    let dir = tmp_dir("two-crashes");
    killed_run(scheme, &dir);

    // Crash 1 → recover, run more (epochs now continue past the replayed
    // ones), fence, crash again mid-tail.
    let db = build_db(scheme, 1, Some(&dir));
    db.recover_from_log().unwrap();
    let resumed_epoch = db.epoch_manager().current();
    assert!(
        resumed_epoch > DURABLE_BATCHES,
        "recovery must advance epochs past the replayed history"
    );
    let mut ctx = db.worker(0);
    for i in 100..110 {
        apply_txn(&mut ctx, scheme, i);
    }
    db.epoch_manager().advance();
    db.log_group_flush();
    for i in 110..115 {
        apply_txn(&mut ctx, scheme, i); // lost tail
    }
    let expected = {
        // Reference: durable prefix of crash 1 + the fenced continuation.
        let r = build_db(scheme, 1, None);
        let mut c = r.worker(0);
        for i in 0..DURABLE_BATCHES * BATCH {
            apply_txn(&mut c, scheme, i);
        }
        for i in 100..110 {
            apply_txn(&mut c, scheme, i);
        }
        r.state_digest()
    };
    drop(ctx);
    drop(db);

    // Crash 2 → recover: both histories replay, the lost tails do not.
    let db2 = build_db(scheme, 1, Some(&dir));
    db2.recover_from_log().unwrap();
    assert_eq!(db2.state_digest(), expected);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Multi-worker kill: pure-increment workload, live ticker + flusher
/// threads, dropped without a clean shutdown. The recovered sum must be
/// initial + records_applied — each commit logs the full counter image,
/// so per-key last-writer-wins replay counts every durable increment
/// exactly once; any torn record or mis-ordered replay breaks the sum.
fn multiworker_kill_and_recover(scheme: CcScheme) {
    const WORKERS: u32 = 4;
    const TXNS_PER_WORKER: u64 = 2_000;
    let dir = tmp_dir(&format!("mw-{scheme}"));
    {
        let mut cat = Catalog::new();
        cat.add_table("t", Schema::key_plus_payload(2, 8), 4_000);
        let mut cfg = EngineConfig::new(scheme, WORKERS).with_logging(&dir, FsyncPolicy::Group);
        cfg.epoch_interval_us = 500;
        cfg.log.group_interval_us = 1_000;
        let db = Database::new(cfg, cat).unwrap();
        db.load_table(TABLE, 0..BASE_ROWS, |s, r, k| {
            row::set_u64(s, r, 0, k);
            row::set_u64(s, r, 1, INITIAL);
        })
        .unwrap();
        // One warm-up commit pins an epoch the first record cannot exceed:
        // waiting for the durable epoch to reach it below guarantees the
        // background flusher fenced at least that record before the kill
        // (a fast run would otherwise finish before the first 1 ms fence
        // and recover nothing).
        let first_commit_epoch = {
            let mut ctx = db.worker(0);
            let r: Result<u64, TxnError> = ctx.run_txn(&[], |t| t.update_counter(TABLE, 0, 1, 1));
            r.unwrap();
            db.epoch_manager().current()
        };
        crossbeam::thread::scope(|scope| {
            for w in 0..WORKERS {
                let db = Arc::clone(&db);
                scope.spawn(move |_| {
                    let mut ctx = db.worker(w);
                    for i in 0..TXNS_PER_WORKER {
                        let key = (u64::from(w) * 7919 + i * 13) % BASE_ROWS;
                        let r: Result<u64, TxnError> =
                            ctx.run_txn(&[], |t| t.update_counter(TABLE, key, 1, 1));
                        r.unwrap();
                    }
                });
            }
        })
        .unwrap();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while db.durable_epoch().unwrap_or(0) < first_commit_epoch {
            assert!(
                std::time::Instant::now() < deadline,
                "{scheme}: background flusher never fenced the first commit's epoch"
            );
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
        // Kill: drop with any post-fence tail records still in memory.
    }
    let db = {
        let mut cat = Catalog::new();
        cat.add_table("t", Schema::key_plus_payload(2, 8), 4_000);
        let mut cfg = EngineConfig::new(scheme, WORKERS).with_logging(&dir, FsyncPolicy::Group);
        cfg.epoch_interval_us = 0;
        cfg.log.group_interval_us = 0;
        let db = Database::new(cfg, cat).unwrap();
        db.load_table(TABLE, 0..BASE_ROWS, |s, r, k| {
            row::set_u64(s, r, 0, k);
            row::set_u64(s, r, 1, INITIAL);
        })
        .unwrap();
        db
    };
    let report = db.recover_from_log().unwrap();
    assert!(
        report.records_applied > 0,
        "{scheme}: background group commit never made anything durable"
    );
    let sum = db.sum_column(TABLE, 1);
    assert_eq!(
        sum,
        BASE_ROWS * INITIAL + report.records_applied,
        "{scheme}: recovered increments do not match replayed records"
    );
    // Idempotence under the concurrent history too.
    let d1 = db.state_digest();
    db.recover_from_log().unwrap();
    assert_eq!(
        db.state_digest(),
        d1,
        "{scheme}: concurrent replay not idempotent"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn multiworker_kill_recover_no_wait() {
    multiworker_kill_and_recover(CcScheme::NoWait);
}

#[test]
fn multiworker_kill_recover_silo() {
    multiworker_kill_and_recover(CcScheme::Silo);
}

#[test]
fn per_commit_fsync_recovers_every_commit() {
    // Under EveryCommit, durability is per commit, not per epoch: a kill
    // immediately after the last commit must lose nothing.
    let scheme = CcScheme::NoWait;
    let dir = tmp_dir("percommit");
    {
        let db = build_db_with(scheme, 1, Some(&dir), FsyncPolicy::EveryCommit);
        let mut ctx = db.worker(0);
        for i in 0..25 {
            apply_txn(&mut ctx, scheme, i);
        }
        // Kill with zero group fences ever run.
    }
    let db = build_db_with(scheme, 1, Some(&dir), FsyncPolicy::EveryCommit);
    let report = db.recover_from_log().unwrap();
    assert_eq!(report.records_applied, 25);
    let reference = {
        let r = build_db(scheme, 1, None);
        let mut c = r.worker(0);
        for i in 0..25 {
            apply_txn(&mut c, scheme, i);
        }
        r.state_digest()
    };
    assert_eq!(db.state_digest(), reference);
    let _ = std::fs::remove_dir_all(&dir);
}
