//! Source-level guard for the unified bench harness (PR 9): `harness/`
//! is the only place in `abyss-bench` allowed to spawn threads or read a
//! wall clock. Every figure binary used to hand-roll its own spawn +
//! `Instant` pairs, so no two figures measured the same way; a raw
//! `Instant::now` or `thread::spawn` creeping back into a figure is
//! exactly the drift this refactor removed — fail loudly.
//!
//! `benches/micro.rs` is exempt: it is a `cargo bench` harness, not a
//! figure binary, and its timing loop is the bench framework itself.

/// Forbidden timing/threading patterns outside `harness/`.
fn timing_patterns(src: &str) -> Vec<&'static str> {
    let mut hits = Vec::new();
    for pat in [
        "Instant::now",
        "time::Instant",
        "thread::spawn",
        "thread::scope",
        "thread::Builder",
    ] {
        if src.contains(pat) {
            hits.push(pat);
        }
    }
    hits
}

#[test]
fn figure_sources_never_time_or_spawn_directly() {
    let sources = [
        ("lib.rs", include_str!("../crates/bench/src/lib.rs")),
        (
            "paper_figs.rs",
            include_str!("../crates/bench/src/paper_figs.rs"),
        ),
        (
            "fig_breakdown.rs",
            include_str!("../crates/bench/src/fig_breakdown.rs"),
        ),
        (
            "fig_durability.rs",
            include_str!("../crates/bench/src/fig_durability.rs"),
        ),
        (
            "fig_latency.rs",
            include_str!("../crates/bench/src/fig_latency.rs"),
        ),
        (
            "fig_modern.rs",
            include_str!("../crates/bench/src/fig_modern.rs"),
        ),
        (
            "fig_regulate.rs",
            include_str!("../crates/bench/src/fig_regulate.rs"),
        ),
        (
            "fig_service.rs",
            include_str!("../crates/bench/src/fig_service.rs"),
        ),
        (
            "fig_ycsbe.rs",
            include_str!("../crates/bench/src/fig_ycsbe.rs"),
        ),
    ];
    for (name, src) in sources {
        let hits = timing_patterns(src);
        assert!(
            hits.is_empty(),
            "crates/bench/src/{name} times or spawns outside the harness: {hits:?}"
        );
    }
}

#[test]
fn figure_binaries_never_time_or_spawn_directly() {
    let sources = [
        (
            "dispatch_micro.rs",
            include_str!("../crates/bench/src/bin/dispatch_micro.rs"),
        ),
        ("fig03.rs", include_str!("../crates/bench/src/bin/fig03.rs")),
        ("fig04.rs", include_str!("../crates/bench/src/bin/fig04.rs")),
        ("fig05.rs", include_str!("../crates/bench/src/bin/fig05.rs")),
        ("fig06.rs", include_str!("../crates/bench/src/bin/fig06.rs")),
        ("fig07.rs", include_str!("../crates/bench/src/bin/fig07.rs")),
        ("fig08.rs", include_str!("../crates/bench/src/bin/fig08.rs")),
        ("fig09.rs", include_str!("../crates/bench/src/bin/fig09.rs")),
        ("fig10.rs", include_str!("../crates/bench/src/bin/fig10.rs")),
        ("fig11.rs", include_str!("../crates/bench/src/bin/fig11.rs")),
        ("fig12.rs", include_str!("../crates/bench/src/bin/fig12.rs")),
        ("fig13.rs", include_str!("../crates/bench/src/bin/fig13.rs")),
        ("fig14.rs", include_str!("../crates/bench/src/bin/fig14.rs")),
        ("fig15.rs", include_str!("../crates/bench/src/bin/fig15.rs")),
        ("fig16.rs", include_str!("../crates/bench/src/bin/fig16.rs")),
        ("fig17.rs", include_str!("../crates/bench/src/bin/fig17.rs")),
        (
            "table2.rs",
            include_str!("../crates/bench/src/bin/table2.rs"),
        ),
        (
            "fig_breakdown.rs",
            include_str!("../crates/bench/src/bin/fig_breakdown.rs"),
        ),
        (
            "fig_durability.rs",
            include_str!("../crates/bench/src/bin/fig_durability.rs"),
        ),
        (
            "fig_latency.rs",
            include_str!("../crates/bench/src/bin/fig_latency.rs"),
        ),
        (
            "fig_regulate.rs",
            include_str!("../crates/bench/src/bin/fig_regulate.rs"),
        ),
        (
            "fig_service.rs",
            include_str!("../crates/bench/src/bin/fig_service.rs"),
        ),
    ];
    for (name, src) in sources {
        let hits = timing_patterns(src);
        assert!(
            hits.is_empty(),
            "crates/bench/src/bin/{name} times or spawns outside the harness: {hits:?}"
        );
    }
}

#[test]
fn the_harness_itself_does_time_and_spawn() {
    // Positive control: the harness is *supposed* to own the clock and
    // the threads — if these ever go empty the guard above is probably
    // matching the wrong strings.
    let runner = include_str!("../crates/bench/src/harness/mod.rs");
    let clocks = include_str!("../crates/bench/src/harness/time.rs");
    assert!(
        timing_patterns(runner)
            .iter()
            .any(|p| p.contains("spawn") || p.contains("scope")),
        "harness/mod.rs no longer spawns the threads the guard patterns target"
    );
    assert!(
        timing_patterns(clocks)
            .iter()
            .any(|p| p.contains("Instant")),
        "harness/time.rs no longer reads the clock the guard patterns target"
    );
}
