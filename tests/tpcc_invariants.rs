//! TPC-C consistency conditions on the real engine, per scheme, with
//! concurrent workers — the automated version of `examples/tpcc_cli.rs`.

use std::time::Duration;

use abyss::common::CcScheme;
use abyss::core::{executor, run_workers, Database, EngineConfig};
use abyss::workload::tpcc::{self, TpccConfig, TpccGen, TpccTable};

fn check_scheme(scheme: CcScheme) {
    let workers = 4u32;
    let cfg = TpccConfig {
        warehouses: 2,
        workers,
        ..TpccConfig::default()
    };
    let db =
        Database::new(EngineConfig::new(scheme, workers), tpcc::catalog(&cfg)).expect("config");
    for table in [
        TpccTable::Warehouse,
        TpccTable::District,
        TpccTable::Customer,
        TpccTable::Item,
        TpccTable::Stock,
    ] {
        let keys: Vec<u64> = tpcc::initial_keys(&cfg)
            .filter(|&(t, _)| t == table.id())
            .map(|(_, k)| k)
            .collect();
        db.load_table(table.id(), keys, |s, r, k| {
            tpcc::init_row(table.id(), s, r, k)
        })
        .expect("load");
    }

    let gens = (0..workers)
        .map(|w| {
            let mut g = TpccGen::new(cfg.clone(), w, 0xC0FFEE + u64::from(w));
            Box::new(move || g.next_txn()) as Box<dyn FnMut() -> abyss::common::TxnTemplate + Send>
        })
        .collect();
    // Zero warmup: stats must cover the whole run for the invariants.
    let out = run_workers(&db, gens, Duration::ZERO, Duration::from_millis(400));

    let payment = out.stats.commits_by_tag[tpcc::TAG_PAYMENT as usize];
    let neworder = out.stats.commits_by_tag[tpcc::TAG_NEW_ORDER as usize];
    assert!(
        out.stats.commits > 100,
        "{scheme}: too few commits to be meaningful"
    );

    // ΣW_YTD == committed Payments.
    let w_ytd = db.sum_column(TpccTable::Warehouse.id(), executor::HOT_COL);
    assert_eq!(w_ytd, payment, "{scheme}: ΣW_YTD != committed Payments");

    // District hot column = D_YTD + D_NEXT_O_ID combined.
    let d_hot = db.sum_column(TpccTable::District.id(), executor::HOT_COL);
    let districts = u64::from(cfg.warehouses) * tpcc::DISTRICTS_PER_WH;
    assert_eq!(
        d_hot,
        tpcc::FIRST_NEW_ORDER_ID * districts + payment + neworder,
        "{scheme}: district counters inconsistent"
    );

    // One ORDER + one NEW-ORDER row per committed NewOrder; 5-15 lines each.
    let orders = db.index_len(TpccTable::Order.id());
    let new_orders = db.index_len(TpccTable::NewOrder.id());
    let lines = db.index_len(TpccTable::OrderLine.id());
    assert_eq!(
        orders, neworder,
        "{scheme}: ORDER rows != committed NewOrders"
    );
    assert_eq!(
        new_orders, neworder,
        "{scheme}: NEW-ORDER rows != committed NewOrders"
    );
    assert!(
        lines >= neworder * 5 && lines <= neworder * 15,
        "{scheme}: order lines {lines} out of [5,15]×{neworder}"
    );

    // Customers untouched by Payment keep zero balance; stock quantities
    // moved only by committed NewOrders: total stock bumps equal the sum
    // of committed order lines (each line updates one stock tuple by one).
    let stock_bumps = db.sum_column(TpccTable::Stock.id(), executor::HOT_COL);
    assert_eq!(
        stock_bumps, lines,
        "{scheme}: stock updates != committed order lines"
    );
}

#[test]
fn tpcc_no_wait() {
    check_scheme(CcScheme::NoWait);
}

#[test]
fn tpcc_dl_detect() {
    check_scheme(CcScheme::DlDetect);
}

#[test]
fn tpcc_wait_die() {
    check_scheme(CcScheme::WaitDie);
}

#[test]
fn tpcc_timestamp() {
    check_scheme(CcScheme::Timestamp);
}

#[test]
fn tpcc_mvcc() {
    check_scheme(CcScheme::Mvcc);
}

#[test]
fn tpcc_occ() {
    check_scheme(CcScheme::Occ);
}

#[test]
fn tpcc_hstore() {
    check_scheme(CcScheme::HStore);
}

#[test]
fn tpcc_silo() {
    check_scheme(CcScheme::Silo);
}

#[test]
fn tpcc_tictoc() {
    check_scheme(CcScheme::TicToc);
}

/// Sync guard: the per-scheme engine tests above must track
/// `CcScheme::ALL` exactly. (This guard is what caught SILO being
/// silently absent from this file's engine matrix.)
#[test]
fn tpcc_engine_tests_cover_every_scheme() {
    const LISTED: [CcScheme; 9] = [
        CcScheme::NoWait,
        CcScheme::DlDetect,
        CcScheme::WaitDie,
        CcScheme::Timestamp,
        CcScheme::Mvcc,
        CcScheme::Occ,
        CcScheme::HStore,
        CcScheme::Silo,
        CcScheme::TicToc,
    ];
    let mut listed = LISTED;
    listed.sort();
    let mut all = CcScheme::ALL;
    all.sort();
    assert_eq!(
        listed, all,
        "tpcc engine tests out of sync with CcScheme::ALL"
    );
}

/// TPC-C inside the simulator: district counters advance exactly once per
/// committed NewOrder (derived insert keys never collide — checked by the
/// sim's duplicate-create assertions in debug builds).
#[test]
fn tpcc_in_simulator_all_schemes() {
    use abyss::sim::{run_sim, SimConfig, SimTable};
    for scheme in CcScheme::ALL {
        // One warehouse per core: the uncontended regime where every
        // scheme must make steady progress (2 warehouses on 8 cores is the
        // paper's pathological Fig. 16 case — DL_DETECT legitimately
        // spends its time timing out against long NewOrder S-lock holders).
        let cores = 8;
        let cfg = TpccConfig {
            warehouses: cores,
            workers: cores,
            ..TpccConfig::default()
        };
        let mut sim = SimConfig::new(scheme, cores);
        sim.warmup = 0;
        sim.measure = 3_000_000;
        if scheme == CcScheme::HStore {
            sim.hstore_parts = cfg.warehouses;
        }
        let tables: Vec<SimTable> = tpcc::catalog(&cfg)
            .tables()
            .iter()
            .map(|t| SimTable {
                row_size: t.schema.row_size(),
                counter_init: if t.id == TpccTable::District.id() {
                    tpcc::FIRST_NEW_ORDER_ID
                } else {
                    0
                },
            })
            .collect();
        let gens = (0..cores)
            .map(|w| {
                let mut g = TpccGen::new(cfg.clone(), w, 0xF00D + u64::from(w));
                Box::new(move || g.next_txn()) as Box<dyn FnMut() -> abyss::common::TxnTemplate>
            })
            .collect();
        let r = run_sim(sim, tables, gens);
        assert!(r.stats.commits > 50, "{scheme}: sim TPC-C too few commits");
        let p = r.stats.commits_by_tag[tpcc::TAG_PAYMENT as usize];
        let n = r.stats.commits_by_tag[tpcc::TAG_NEW_ORDER as usize];
        assert_eq!(
            p + n,
            r.stats.commits,
            "{scheme}: tags must partition commits"
        );
    }
}
