//! Randomized property tests on core data structures and engine
//! invariants.
//!
//! The build environment vendors no external property-testing framework,
//! so these use a tiny deterministic harness: [`cases`] runs a property
//! over `n` independently seeded [`Xoshiro256`] streams. Failures print
//! the case seed, which reproduces the exact inputs.

use std::collections::{BTreeMap, HashMap};

use abyss::common::rng::Xoshiro256;
use abyss::common::zipf::ZipfGen;
use abyss::common::CcScheme;
use abyss::core::{Database, EngineConfig};
use abyss::storage::{row, BPlusTree, Catalog, HashIndex, MemPool, Schema};

/// Run `property` over `n` deterministic random cases derived from `seed`.
fn cases(n: u64, seed: u64, mut property: impl FnMut(&mut Xoshiro256)) {
    for i in 0..n {
        let case_seed = seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = Xoshiro256::seed_from(case_seed);
        property(&mut rng);
    }
}

/// A random vector with length in `1..max_len`, elements drawn by `f`.
fn random_vec<T>(
    rng: &mut Xoshiro256,
    max_len: u64,
    mut f: impl FnMut(&mut Xoshiro256) -> T,
) -> Vec<T> {
    let len = rng.next_range(1, max_len);
    (0..len).map(|_| f(rng)).collect()
}

// ---------------------------------------------------------------- storage

/// The hash index behaves exactly like a HashMap model under random
/// insert/get/remove sequences.
#[test]
fn index_matches_model() {
    cases(64, 0xA11CE, |rng| {
        let ops = random_vec(rng, 200, |r| (r.next_below(3) as u8, r.next_below(200)));
        let idx = HashIndex::new(0, 64);
        let mut model: HashMap<u64, u64> = HashMap::new();
        for (op, key) in ops {
            match op {
                0 => {
                    let val = key * 2 + 1;
                    let r = idx.insert(key, val);
                    if let std::collections::hash_map::Entry::Vacant(e) = model.entry(key) {
                        assert!(r.is_ok());
                        e.insert(val);
                    } else {
                        assert!(r.is_err());
                    }
                }
                1 => {
                    assert_eq!(idx.find(key), model.get(&key).copied());
                }
                _ => {
                    assert_eq!(idx.remove(key), model.remove(&key));
                }
            }
        }
        assert_eq!(idx.len(), model.len());
    });
}

/// The ordered index behaves exactly like a `BTreeMap` model under random
/// insert/remove/get/scan/successor sequences (single-threaded oracle).
#[test]
fn btree_matches_model() {
    cases(64, 0xB7EE, |rng| {
        let ops = random_vec(rng, 300, |r| {
            (r.next_below(5) as u8, r.next_below(256), r.next_below(256))
        });
        let tree = BPlusTree::new(0);
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for (op, a, b) in ops {
            match op {
                0 => {
                    let val = a * 31 + 7;
                    let r = tree.insert(a, val);
                    if let std::collections::btree_map::Entry::Vacant(e) = model.entry(a) {
                        assert!(r.is_ok());
                        e.insert(val);
                    } else {
                        assert!(r.is_err(), "duplicate insert of {a} must fail");
                    }
                }
                1 => {
                    let removed = tree.remove(a).map(|(row, _leaf)| row);
                    assert_eq!(removed, model.remove(&a), "remove({a})");
                }
                2 => {
                    assert_eq!(tree.get(a), model.get(&a).copied(), "get({a})");
                }
                3 => {
                    let (lo, hi) = (a.min(b), a.max(b));
                    let got: Vec<(u64, u64)> = tree.scan(lo, hi).entries;
                    let want: Vec<(u64, u64)> =
                        model.range(lo..=hi).map(|(&k, &v)| (k, v)).collect();
                    assert_eq!(got, want, "scan [{lo}, {hi}]");
                }
                _ => {
                    let got = tree.successor_inclusive(a);
                    let want = model.range(a..).next().map(|(&k, &v)| (k, v));
                    assert_eq!(got, want, "successor({a})");
                }
            }
        }
        assert_eq!(tree.len() as usize, model.len());
        let health = tree.health();
        assert!(health.height >= 1 && health.nodes >= 1);
    });
}

/// Multi-threaded linearizability smoke: writers insert/remove disjoint
/// key classes while scanners observe; every scan must be sorted and
/// duplicate-free, every key must map to its writer's value, and the final
/// tree must equal the union of the writers' final sets.
#[test]
fn btree_concurrent_ops_linearizable_smoke() {
    use std::sync::Arc;
    cases(4, 0xC0C0, |rng| {
        let seed = rng.next_u64();
        let tree = Arc::new(BPlusTree::new(0));
        let writers = 3u64;
        let mut handles = Vec::new();
        for w in 0..writers {
            let tree = Arc::clone(&tree);
            handles.push(std::thread::spawn(move || {
                let mut rng = Xoshiro256::seed_from(seed ^ (w << 32));
                let mut live: Vec<u64> = Vec::new();
                for i in 0..3_000u64 {
                    let k = (i * writers + w) * 2;
                    tree.insert(k, k + 1).unwrap();
                    live.push(k);
                    // Remove ~one third of our own keys as we go.
                    if rng.next_below(3) == 0 {
                        let idx = rng.next_below(live.len() as u64) as usize;
                        let k = live.swap_remove(idx);
                        let (row, _) = tree.remove(k).expect("own key present");
                        assert_eq!(row, k + 1);
                    }
                }
                live.sort_unstable();
                live
            }));
        }
        let scanner = {
            let tree = Arc::clone(&tree);
            std::thread::spawn(move || {
                for _ in 0..300 {
                    let sr = tree.scan(0, u64::MAX);
                    assert!(
                        sr.entries.windows(2).all(|w| w[0].0 < w[1].0),
                        "concurrent scan must stay sorted and duplicate-free"
                    );
                    for &(k, v) in &sr.entries {
                        assert_eq!(v, k + 1, "torn entry for key {k}");
                    }
                }
            })
        };
        let mut expect: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        scanner.join().unwrap();
        expect.sort_unstable();
        let got: Vec<u64> = tree
            .scan(0, u64::MAX)
            .entries
            .iter()
            .map(|&(k, _)| k)
            .collect();
        assert_eq!(got, expect, "final tree != union of writers' live sets");
    });
}

/// Pool blocks never alias: concurrently-live blocks are distinct
/// allocations (writing to one never corrupts another).
#[test]
fn mempool_blocks_do_not_alias() {
    cases(64, 0xB10C, |rng| {
        let sizes = random_vec(rng, 40, |r| r.next_range(1, 4096) as usize);
        let mut pool = MemPool::new();
        let mut live: Vec<_> = sizes.iter().map(|&s| pool.alloc(s)).collect();
        for (i, b) in live.iter_mut().enumerate() {
            b.as_mut_slice().fill(i as u8);
        }
        for (i, b) in live.iter().enumerate() {
            assert!(b.iter().all(|&x| x == i as u8), "block {i} was corrupted");
        }
        for b in live {
            pool.free(b);
        }
    });
}

/// Zipf draws always fall in range, for any (n, theta).
#[test]
fn zipf_in_range() {
    cases(64, 0x21FF, |rng| {
        let n = rng.next_range(1, 100_000);
        let theta = rng.next_f64() * 0.95;
        let g = ZipfGen::new(n, theta);
        for _ in 0..100 {
            assert!(g.next(rng) < n);
        }
    });
}

/// Row accessors round-trip arbitrary values on arbitrary schemas.
#[test]
fn row_accessors_round_trip() {
    cases(64, 0x0F0F, |rng| {
        let widths = random_vec(rng, 6, |r| r.next_range(8, 64) as usize);
        let vals: Vec<u64> = (0..widths.len()).map(|_| rng.next_u64()).collect();
        let schema = Schema::new(
            widths
                .iter()
                .enumerate()
                .map(|(i, &w)| abyss::storage::ColumnDef::new(format!("c{i}"), w))
                .collect(),
        );
        let mut data = vec![0u8; schema.row_size()];
        for (col, &v) in vals.iter().enumerate() {
            row::set_u64(&schema, &mut data, col, v);
        }
        for (col, &v) in vals.iter().enumerate() {
            assert_eq!(row::get_u64(&schema, &data, col), v);
        }
    });
}

// ----------------------------------------------------------------- scheme

/// Exhaustive index of every `CcScheme` variant. Adding a variant without
/// updating `CcScheme::ALL` breaks either this match (compile error) or
/// the `scheme_all_in_sync_with_enum` test below — together they make
/// `CcScheme::ALL` the single source of truth every scheme-parameterized
/// test derives from (or carries a sync guard against), so a new scheme
/// cannot be silently skipped anywhere.
fn variant_index(s: CcScheme) -> usize {
    match s {
        CcScheme::DlDetect => 0,
        CcScheme::NoWait => 1,
        CcScheme::WaitDie => 2,
        CcScheme::Timestamp => 3,
        CcScheme::Mvcc => 4,
        CcScheme::Occ => 5,
        CcScheme::HStore => 6,
        CcScheme::Silo => 7,
        CcScheme::TicToc => 8,
    }
}

/// `CcScheme::ALL` lists every variant exactly once.
#[test]
fn scheme_all_in_sync_with_enum() {
    let mut seen = [false; CcScheme::ALL.len()];
    for s in CcScheme::ALL {
        let i = variant_index(s);
        assert!(!seen[i], "{s} appears twice in CcScheme::ALL");
        seen[i] = true;
    }
    assert!(seen.iter().all(|&b| b), "CcScheme::ALL misses a variant");
}

/// `FromStr` round-trips `name()` for every variant, under random case
/// mangling and `_`/`-` substitution (the accepted spellings).
#[test]
fn scheme_name_round_trips() {
    cases(128, 0x5C4E, |rng| {
        for s in CcScheme::ALL {
            let mangled: String = s
                .name()
                .chars()
                .map(|c| {
                    let c = if c == '_' && rng.chance(0.5) { '-' } else { c };
                    if rng.chance(0.5) {
                        c.to_ascii_lowercase()
                    } else {
                        c
                    }
                })
                .collect();
            assert_eq!(
                mangled.parse::<CcScheme>().unwrap(),
                s,
                "{mangled:?} must parse back to {s}"
            );
        }
    });
}

// ----------------------------------------------------------------- engine

/// Single-worker random transactions must leave the database exactly where
/// a sequential model says — for every scheme, over an *ordered* table so
/// every op also exercises B+-tree maintenance (catches rollback bugs,
/// buffered-write bugs and index divergence without needing concurrency).
/// Ops: committed/aborted updates, reads, committed/aborted deletes,
/// re-inserts of deleted keys, and range scans checked against the model.
fn engine_matches_model(scheme: CcScheme, ops: &[(u8, u64, u64)]) {
    let mut catalog = Catalog::new();
    let t = catalog.add_ordered_table("t", Schema::key_plus_payload(1, 8), 512);
    let db = Database::new(EngineConfig::new(scheme, 1), catalog).unwrap();
    db.load_table(t, 0..32u64, |s, r, k| {
        row::set_u64(s, r, 0, k);
        row::set_u64(s, r, 1, 100);
    })
    .unwrap();
    let mut model: BTreeMap<u64, u64> = (0..32).map(|k| (k, 100)).collect();

    let mut ctx = db.worker(0);
    for &(kind, key, val) in ops {
        let key = key % 32;
        match kind % 7 {
            0 => {
                // committed update (present keys only — missing keys are a
                // non-transactional error by contract)
                if model.contains_key(&key) {
                    ctx.run_txn(&[0], |txn| {
                        txn.update(t, key, |s, d| row::set_u64(s, d, 1, val))
                    })
                    .unwrap();
                    model.insert(key, val);
                }
            }
            1 => {
                // user-aborted update: must not change the model
                if model.contains_key(&key) {
                    let _ = ctx.run_txn(&[0], |txn| {
                        txn.update(t, key, |s, d| row::set_u64(s, d, 1, val))?;
                        Err::<(), _>(abyss::core::TxnError::Abort(
                            abyss::common::AbortReason::UserAbort,
                        ))
                    });
                }
            }
            2 => {
                // read must match the model; missing keys must error
                let r = ctx.run_txn(&[0], |txn| txn.read_u64(t, key, 1));
                match model.get(&key) {
                    Some(v) => assert_eq!(r.unwrap(), *v, "{scheme}: read mismatch at {key}"),
                    None => assert!(r.is_err(), "{scheme}: read of deleted {key} succeeded"),
                }
            }
            3 => {
                // committed delete; deleting a missing key is a Db error
                let r = ctx.run_txn(&[0], |txn| txn.delete(t, key));
                if model.remove(&key).is_some() {
                    r.unwrap();
                } else {
                    assert!(r.is_err(), "{scheme}: delete of missing {key} succeeded");
                }
            }
            4 => {
                // user-aborted delete: must not change anything
                if model.contains_key(&key) {
                    let _ = ctx.run_txn(&[0], |txn| {
                        txn.delete(t, key)?;
                        Err::<(), _>(abyss::core::TxnError::Abort(
                            abyss::common::AbortReason::UserAbort,
                        ))
                    });
                }
            }
            5 => {
                // (re-)insert an absent key
                model.entry(key).or_insert_with(|| {
                    ctx.run_txn(&[0], |txn| {
                        txn.insert(t, key, |s, d| {
                            row::set_u64(s, d, 0, key);
                            row::set_u64(s, d, 1, val);
                        })
                    })
                    .unwrap();
                    val
                });
            }
            _ => {
                // range scan must match the model's range exactly
                let (lo, hi) = (key.min(val % 32), key.max(val % 32));
                let mut got: Vec<(u64, u64)> = Vec::new();
                ctx.run_txn(&[0], |txn| {
                    got.clear();
                    txn.scan(t, lo, hi, |k, s, d| got.push((k, row::get_u64(s, d, 1))))
                })
                .unwrap();
                let want: Vec<(u64, u64)> = model.range(lo..=hi).map(|(&k, &v)| (k, v)).collect();
                assert_eq!(got, want, "{scheme}: scan [{lo}, {hi}] mismatch");
            }
        }
    }
    for (k, v) in &model {
        let data = db.peek(t, *k).unwrap();
        assert_eq!(
            row::get_u64(db.schema(t), &data, 1),
            *v,
            "{scheme}: final state mismatch at {k}"
        );
    }
    assert_eq!(
        db.index_len(t),
        model.len() as u64,
        "{scheme}: hash index and model diverged"
    );
}

fn engine_model_cases(scheme: CcScheme) {
    cases(16, 0xE26 ^ variant_index(scheme) as u64, |rng| {
        let ops = random_vec(rng, 60, |r| {
            (r.next_below(256) as u8, r.next_u64(), r.next_u64())
        });
        engine_matches_model(scheme, &ops);
    });
}

/// The schemes the per-scheme `engine_model_*` tests below cover — guarded
/// against `CcScheme::ALL` so a new scheme cannot be silently skipped.
const ENGINE_MODEL_SCHEMES: [CcScheme; 9] = [
    CcScheme::NoWait,
    CcScheme::DlDetect,
    CcScheme::WaitDie,
    CcScheme::Timestamp,
    CcScheme::Mvcc,
    CcScheme::Occ,
    CcScheme::HStore,
    CcScheme::Silo,
    CcScheme::TicToc,
];

#[test]
fn engine_model_covers_every_scheme() {
    let mut listed = ENGINE_MODEL_SCHEMES;
    listed.sort();
    let mut all = CcScheme::ALL;
    all.sort();
    assert_eq!(
        listed, all,
        "engine_model tests out of sync with CcScheme::ALL"
    );
}

#[test]
fn engine_model_no_wait() {
    engine_model_cases(CcScheme::NoWait);
}

#[test]
fn engine_model_dl_detect() {
    engine_model_cases(CcScheme::DlDetect);
}

#[test]
fn engine_model_wait_die() {
    engine_model_cases(CcScheme::WaitDie);
}

#[test]
fn engine_model_timestamp() {
    engine_model_cases(CcScheme::Timestamp);
}

#[test]
fn engine_model_mvcc() {
    engine_model_cases(CcScheme::Mvcc);
}

#[test]
fn engine_model_occ() {
    engine_model_cases(CcScheme::Occ);
}

#[test]
fn engine_model_hstore() {
    engine_model_cases(CcScheme::HStore);
}

#[test]
fn engine_model_silo() {
    engine_model_cases(CcScheme::Silo);
}

#[test]
fn engine_model_tictoc() {
    engine_model_cases(CcScheme::TicToc);
}

/// Seeded replay: the same generator seed and scheme must yield *bit-equal*
/// runs — identical commit/abort counts and identical final database
/// state — across two bounded `run_workers` invocations on one worker.
/// One worker removes scheduling as a variable, so any divergence is a
/// nondeterminism regression in the workload generators (or the engine).
/// The YCSB-E mix (scans + inserts + reads) exercises the generators'
/// full key/op machinery, and the state digest (column sum + live keys)
/// catches key-sequence drift that bare counts would miss.
#[test]
fn seeded_replay_is_deterministic_per_scheme() {
    use abyss::core::run_workers_bounded;
    use abyss::workload::{ycsb, YcsbGen};

    let run = |scheme: CcScheme| {
        let cfg = abyss::workload::YcsbConfig {
            table_rows: 2_000,
            theta: 0.6,
            insert_capacity: 2_000, // headroom for the YCSB-E fresh-key inserts
            ..abyss::workload::YcsbConfig::ycsb_e(0.3)
        };
        let db = Database::new(EngineConfig::new(scheme, 1), ycsb::catalog(&cfg)).unwrap();
        db.load_table(0, 0..cfg.table_rows, ycsb::init_row).unwrap();
        let mut g = YcsbGen::new(cfg, 0xD00D_F00D);
        let gens =
            vec![Box::new(move || g.next_txn())
                as Box<dyn FnMut() -> abyss::common::TxnTemplate + Send>];
        let out = run_workers_bounded(&db, gens, 150);
        (
            out.stats.commits,
            out.stats.aborts,
            out.stats.tuples_committed,
            out.stats.scans,
            db.sum_column(0, 1),
            db.index_len(0),
        )
    };
    for scheme in CcScheme::ALL {
        let a = run(scheme);
        let b = run(scheme);
        assert_eq!(a, b, "{scheme}: seeded replay diverged");
    }
}

// --------------------------------------------------------------- workload

/// Every generated YCSB template validates and respects its config.
#[test]
fn ycsb_templates_valid() {
    cases(32, 0x4C5B, |rng| {
        let seed = rng.next_u64();
        let theta = rng.next_f64() * 0.9;
        let reqs = rng.next_range(1, 20) as usize;
        let cfg = abyss::workload::YcsbConfig {
            table_rows: 10_000,
            reqs_per_txn: reqs,
            theta,
            ..abyss::workload::YcsbConfig::default()
        };
        let mut g = abyss::workload::YcsbGen::new(cfg, seed);
        for _ in 0..5 {
            let t = g.next_txn();
            assert!(t.validate().is_ok());
            assert_eq!(t.len(), reqs);
        }
    });
}

/// Every generated TPC-C template validates; partitions are sorted.
#[test]
fn tpcc_templates_valid() {
    cases(32, 0x79CC, |rng| {
        let seed = rng.next_u64();
        let warehouses = rng.next_range(1, 16) as u32;
        let cfg = abyss::workload::TpccConfig {
            warehouses,
            workers: warehouses * 2,
            ..abyss::workload::TpccConfig::default()
        };
        let mut g = abyss::workload::TpccGen::new(cfg, seed as u32 % (warehouses * 2), seed);
        for _ in 0..5 {
            let t = g.next_txn();
            assert!(t.validate().is_ok(), "{:?}", t.validate());
            assert!(t.partitions.windows(2).all(|w| w[0] < w[1]));
        }
    });
}
