//! Property-based tests (proptest) on core data structures and engine
//! invariants.

use std::collections::HashMap;

use proptest::prelude::*;

use abyss::common::rng::Xoshiro256;
use abyss::common::zipf::ZipfGen;
use abyss::common::CcScheme;
use abyss::core::{Database, EngineConfig};
use abyss::storage::{row, Catalog, HashIndex, MemPool, Schema};

// ---------------------------------------------------------------- storage

proptest! {
    /// The hash index behaves exactly like a HashMap model under random
    /// insert/get/remove sequences.
    #[test]
    fn index_matches_model(ops in prop::collection::vec((0u8..3, 0u64..200), 1..200)) {
        let idx = HashIndex::new(0, 64);
        let mut model: HashMap<u64, u64> = HashMap::new();
        for (op, key) in ops {
            match op {
                0 => {
                    let val = key * 2 + 1;
                    let r = idx.insert(key, val);
                    if let std::collections::hash_map::Entry::Vacant(e) = model.entry(key) {
                        prop_assert!(r.is_ok());
                        e.insert(val);
                    } else {
                        prop_assert!(r.is_err());
                    }
                }
                1 => {
                    prop_assert_eq!(idx.find(key), model.get(&key).copied());
                }
                _ => {
                    prop_assert_eq!(idx.remove(key), model.remove(&key));
                }
            }
        }
        prop_assert_eq!(idx.len(), model.len());
    }

    /// Pool blocks never alias: concurrently-live blocks are distinct
    /// allocations (writing to one never corrupts another).
    #[test]
    fn mempool_blocks_do_not_alias(sizes in prop::collection::vec(1usize..4096, 1..40)) {
        let mut pool = MemPool::new();
        let mut live: Vec<_> = sizes.iter().map(|&s| pool.alloc(s)).collect();
        for (i, b) in live.iter_mut().enumerate() {
            b.as_mut_slice().fill(i as u8);
        }
        for (i, b) in live.iter().enumerate() {
            prop_assert!(b.iter().all(|&x| x == i as u8), "block {i} was corrupted");
        }
        for b in live {
            pool.free(b);
        }
    }

    /// Zipf draws always fall in range, for any (n, theta).
    #[test]
    fn zipf_in_range(n in 1u64..100_000, theta in 0.0f64..0.95, seed in any::<u64>()) {
        let g = ZipfGen::new(n, theta);
        let mut rng = Xoshiro256::seed_from(seed);
        for _ in 0..100 {
            prop_assert!(g.next(&mut rng) < n);
        }
    }

    /// Row accessors round-trip arbitrary values on arbitrary schemas.
    #[test]
    fn row_accessors_round_trip(
        widths in prop::collection::vec(8usize..64, 1..6),
        vals in prop::collection::vec(any::<u64>(), 6),
    ) {
        let schema = Schema::new(
            widths.iter().enumerate()
                .map(|(i, &w)| abyss::storage::ColumnDef::new(format!("c{i}"), w))
                .collect(),
        );
        let mut data = vec![0u8; schema.row_size()];
        for (col, _) in widths.iter().enumerate() {
            row::set_u64(&schema, &mut data, col, vals[col]);
        }
        for (col, _) in widths.iter().enumerate() {
            prop_assert_eq!(row::get_u64(&schema, &data, col), vals[col]);
        }
    }
}

// ----------------------------------------------------------------- engine

/// Single-worker random transactions must leave the database exactly where
/// a sequential model says — for every scheme (catches rollback bugs and
/// buffered-write bugs without needing concurrency).
fn engine_matches_model(scheme: CcScheme, ops: &[(u8, u64, u64)]) {
    let mut catalog = Catalog::new();
    let t = catalog.add_table("t", Schema::key_plus_payload(1, 8), 64);
    let db = Database::new(EngineConfig::new(scheme, 1), catalog).unwrap();
    db.load_table(t, 0..32u64, |s, r, k| {
        row::set_u64(s, r, 0, k);
        row::set_u64(s, r, 1, 100);
    })
    .unwrap();
    let mut model: HashMap<u64, u64> = (0..32).map(|k| (k, 100)).collect();

    let mut ctx = db.worker(0);
    for &(kind, key, val) in ops {
        let key = key % 32;
        match kind % 3 {
            0 => {
                // committed update
                ctx.run_txn(&[0], |txn| {
                    txn.update(t, key, |s, d| row::set_u64(s, d, 1, val))
                })
                .unwrap();
                model.insert(key, val);
            }
            1 => {
                // user-aborted update: must not change the model
                let _ = ctx.run_txn(&[0], |txn| {
                    txn.update(t, key, |s, d| row::set_u64(s, d, 1, val))?;
                    Err::<(), _>(abyss::core::TxnError::Abort(
                        abyss::common::AbortReason::UserAbort,
                    ))
                });
            }
            _ => {
                // read must match the model
                let got = ctx.run_txn(&[0], |txn| txn.read_u64(t, key, 1)).unwrap();
                assert_eq!(got, model[&key], "{scheme}: read mismatch at {key}");
            }
        }
    }
    for (k, v) in &model {
        let data = db.peek(t, *k).unwrap();
        assert_eq!(
            row::get_u64(db.schema(t), &data, 1),
            *v,
            "{scheme}: final state mismatch at {k}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn engine_model_no_wait(ops in prop::collection::vec((any::<u8>(), any::<u64>(), any::<u64>()), 1..60)) {
        engine_matches_model(CcScheme::NoWait, &ops);
    }

    #[test]
    fn engine_model_dl_detect(ops in prop::collection::vec((any::<u8>(), any::<u64>(), any::<u64>()), 1..60)) {
        engine_matches_model(CcScheme::DlDetect, &ops);
    }

    #[test]
    fn engine_model_wait_die(ops in prop::collection::vec((any::<u8>(), any::<u64>(), any::<u64>()), 1..60)) {
        engine_matches_model(CcScheme::WaitDie, &ops);
    }

    #[test]
    fn engine_model_timestamp(ops in prop::collection::vec((any::<u8>(), any::<u64>(), any::<u64>()), 1..60)) {
        engine_matches_model(CcScheme::Timestamp, &ops);
    }

    #[test]
    fn engine_model_mvcc(ops in prop::collection::vec((any::<u8>(), any::<u64>(), any::<u64>()), 1..60)) {
        engine_matches_model(CcScheme::Mvcc, &ops);
    }

    #[test]
    fn engine_model_occ(ops in prop::collection::vec((any::<u8>(), any::<u64>(), any::<u64>()), 1..60)) {
        engine_matches_model(CcScheme::Occ, &ops);
    }

    #[test]
    fn engine_model_hstore(ops in prop::collection::vec((any::<u8>(), any::<u64>(), any::<u64>()), 1..60)) {
        engine_matches_model(CcScheme::HStore, &ops);
    }
}

// --------------------------------------------------------------- workload

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every generated YCSB template validates and respects its config.
    #[test]
    fn ycsb_templates_valid(seed in any::<u64>(), theta in 0.0f64..0.9, reqs in 1usize..20) {
        let cfg = abyss::workload::YcsbConfig {
            table_rows: 10_000,
            reqs_per_txn: reqs,
            theta,
            ..abyss::workload::YcsbConfig::default()
        };
        let mut g = abyss::workload::YcsbGen::new(cfg, seed);
        for _ in 0..5 {
            let t = g.next_txn();
            prop_assert!(t.validate().is_ok());
            prop_assert_eq!(t.len(), reqs);
        }
    }

    /// Every generated TPC-C template validates; partitions are sorted.
    #[test]
    fn tpcc_templates_valid(seed in any::<u64>(), warehouses in 1u32..16) {
        let cfg = abyss::workload::TpccConfig {
            warehouses,
            workers: warehouses * 2,
            ..abyss::workload::TpccConfig::default()
        };
        let mut g = abyss::workload::TpccGen::new(cfg, seed as u32 % (warehouses * 2), seed);
        for _ in 0..5 {
            let t = g.next_txn();
            prop_assert!(t.validate().is_ok(), "{:?}", t.validate());
            prop_assert!(t.partitions.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
