//! Source-level guard for the monomorphized CC pipeline: the worker's
//! access paths must contain **zero** scheme dispatch. All per-scheme
//! behavior lives behind `CcProtocol`; the only places allowed to match
//! on the scheme enum are the `dispatch_protocol!` macro (the per-run
//! monomorphization point) and the `AnyScheme` runtime shim
//! (`schemes/dispatch.rs`). A `match` on the scheme creeping back into
//! `worker.rs` or a scheme module is exactly the regression this
//! refactor removed — fail loudly.

/// Forbidden dispatch patterns: an enum match or `matches!` on the
/// configured scheme.
fn dispatch_patterns(src: &str) -> Vec<&'static str> {
    let mut hits = Vec::new();
    for pat in [
        "match self.db.cfg.scheme",
        "match env.db.cfg.scheme",
        "match db.cfg.scheme",
        "match ctx.db.cfg.scheme",
        "match scheme",
        "match cfg.scheme",
        "matches!(scheme",
        "matches!(self.db.cfg.scheme",
        "matches!(env.db.cfg.scheme",
        "matches!(db.cfg.scheme",
        "matches!(ctx.db.cfg.scheme",
        "matches!(cfg.scheme",
    ] {
        if src.contains(pat) {
            hits.push(pat);
        }
    }
    hits
}

#[test]
fn worker_access_paths_are_dispatch_free() {
    let sources = [
        ("worker.rs", include_str!("../crates/core/src/worker.rs")),
        (
            "executor.rs",
            include_str!("../crates/core/src/executor.rs"),
        ),
    ];
    for (name, src) in sources {
        let hits = dispatch_patterns(src);
        assert!(
            hits.is_empty(),
            "crates/core/src/{name} regained scheme dispatch in an access path: {hits:?}"
        );
    }
}

#[test]
fn scheme_modules_are_dispatch_free() {
    // The per-scheme modules implement exactly one protocol each; any
    // residual enum dispatch inside them is dead weight on the
    // monomorphized path.
    let sources = [
        (
            "twopl.rs",
            include_str!("../crates/core/src/schemes/twopl.rs"),
        ),
        (
            "timestamp.rs",
            include_str!("../crates/core/src/schemes/timestamp.rs"),
        ),
        (
            "mvcc.rs",
            include_str!("../crates/core/src/schemes/mvcc.rs"),
        ),
        ("occ.rs", include_str!("../crates/core/src/schemes/occ.rs")),
        (
            "silo.rs",
            include_str!("../crates/core/src/schemes/silo.rs"),
        ),
        (
            "tictoc.rs",
            include_str!("../crates/core/src/schemes/tictoc.rs"),
        ),
        (
            "hstore.rs",
            include_str!("../crates/core/src/schemes/hstore.rs"),
        ),
    ];
    for (name, src) in sources {
        let hits = dispatch_patterns(src);
        assert!(
            hits.is_empty(),
            "crates/core/src/schemes/{name} contains runtime scheme dispatch: {hits:?}"
        );
    }
}

#[test]
fn runtime_dispatch_lives_only_in_the_shim() {
    // Positive control: the shim is *supposed* to dispatch — if this ever
    // goes empty the guard above is probably matching the wrong strings.
    let shim = include_str!("../crates/core/src/schemes/dispatch.rs");
    assert!(
        !dispatch_patterns(shim).is_empty(),
        "schemes/dispatch.rs no longer contains the runtime dispatch the guard patterns target"
    );
}
