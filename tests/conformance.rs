//! Cross-scheme serializability **conformance harness** — the fixed,
//! automated correctness toll every concurrency-control scheme pays.
//!
//! One table of anomaly generators ([`ANOMALIES`]) runs against **all
//! nine schemes** (a sync guard pins the matrix to `CcScheme::ALL`, so a
//! newly added scheme cannot silently skip it):
//!
//! * **lost update** — concurrent read-modify-write increments of hot
//!   keys must all survive;
//! * **write skew** — two transactions reading a two-key constraint and
//!   each writing a different key must not both slip past it;
//! * **read-only snapshot anomaly** — a read-only transaction summing
//!   accounts under concurrent transfers must always observe a total a
//!   serial execution could produce;
//! * **double-scan phantom** — a committed transaction range-scanning the
//!   same window twice must see identical key sets under concurrent
//!   insert/delete churn (≥ 1000 randomized committed trials per scheme);
//! * **next-key delete resurrection** — a committed delete must never
//!   resurface through stale row references, aborted transactions, or
//!   subsequent scans.
//!
//! Every generator runs in two modes. [`Mode::Txn`] drives the engine
//! through proper transactions: the matrix asserts the anomaly is
//! **impossible**. [`Mode::Split`] is the fault injection: the same logic
//! with its reads and dependent writes deliberately split across separate
//! transactions — an application-level race serializability cannot (and
//! must not) mask. The `power_*` tests assert each detector **fires** in
//! split mode under every scheme, proving the detectors can actually see
//! the anomalies they guard against; a detector that stays silent there
//! is dead code, not protection.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};

use abyss::common::{CcScheme, PartId};
use abyss::core::{run_workers_bounded, Database, EngineConfig, WorkerCtx};
use abyss::storage::{row, Catalog, Schema};

const WORKERS: u32 = 4;
const INITIAL: u64 = 1_000;

/// Every conformance database runs with write-ahead logging enabled
/// (group-commit policy, background flusher): the anomaly matrix then
/// doubles as the "full conformance suite passes with logging on" gate,
/// exercising the redo-capture and serial-point paths of all nine
/// schemes under real multi-worker contention.
fn logged(mut cfg: EngineConfig) -> EngineConfig {
    static N: AtomicU64 = AtomicU64::new(0);
    static SWEEP_STALE: std::sync::Once = std::sync::Once::new();
    // Databases outlive this helper, so per-run directories cannot be
    // removed here; instead each run sweeps every previous run's
    // leftovers (distinguished by pid) once, so the temp dir never
    // accumulates across runs.
    SWEEP_STALE.call_once(|| {
        let mine = format!("abyss-conformance-wal-{}-", std::process::id());
        if let Ok(entries) = std::fs::read_dir(std::env::temp_dir()) {
            for e in entries.flatten() {
                let name = e.file_name();
                let name = name.to_string_lossy();
                if name.starts_with("abyss-conformance-wal-") && !name.starts_with(&mine) {
                    let _ = std::fs::remove_dir_all(e.path());
                }
            }
        }
    });
    let dir = std::env::temp_dir().join(format!(
        "abyss-conformance-wal-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    cfg.log.enabled = true;
    cfg.log.dir = dir;
    cfg
}

/// How an anomaly generator drives the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Properly transactional — the anomaly must be impossible.
    Txn,
    /// Fault injection: reads and dependent writes split across separate
    /// transactions — the anomaly must surface and the detector must fire.
    Split,
}

/// An anomaly generator + detector. Returns `Err(report)` when the
/// anomaly is *observed*; the conformance matrix asserts `Ok` in
/// [`Mode::Txn`], the power tests assert `Err` in [`Mode::Split`].
type AnomalyFn = fn(CcScheme, Mode) -> Result<(), String>;

struct Anomaly {
    name: &'static str,
    check: AnomalyFn,
}

const ANOMALIES: [Anomaly; 5] = [
    Anomaly {
        name: "lost_update",
        check: lost_update,
    },
    Anomaly {
        name: "write_skew",
        check: write_skew,
    },
    Anomaly {
        name: "read_only_snapshot",
        check: read_only_snapshot,
    },
    Anomaly {
        name: "double_scan_phantom",
        check: double_scan_phantom,
    },
    Anomaly {
        name: "delete_resurrection",
        check: delete_resurrection,
    },
];

fn run_anomaly(name: &str, scheme: CcScheme) {
    let a = ANOMALIES
        .iter()
        .find(|a| a.name == name)
        .unwrap_or_else(|| panic!("unknown anomaly {name}"));
    if let Err(report) = (a.check)(scheme, Mode::Txn) {
        panic!("{scheme}/{name}: {report}");
    }
}

// ------------------------------------------------------------- utilities

/// Thread-safe violation collector (detectors in worker threads must
/// report, not panic, so split-mode runs can assert the report).
#[derive(Default)]
struct Violations(Mutex<Vec<String>>);

impl Violations {
    fn record(&self, v: String) {
        self.0.lock().unwrap().push(v);
    }

    fn into_result(self) -> Result<(), String> {
        let v = self.0.into_inner().unwrap();
        if v.is_empty() {
            Ok(())
        } else {
            Err(format!("{} violation(s), first: {}", v.len(), v[0]))
        }
    }
}

/// Cheap deterministic per-thread RNG.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

fn accounts_db(scheme: CcScheme, accounts: u64) -> Arc<Database> {
    let mut cat = Catalog::new();
    cat.add_table("accounts", Schema::key_plus_payload(2, 8), accounts * 2);
    let mut cfg = EngineConfig::new(scheme, WORKERS);
    cfg.dl_timeout_us = 100;
    let db = Database::new(logged(cfg), cat).unwrap();
    db.load_table(0, 0..accounts, |s, r, k| {
        row::set_u64(s, r, 0, k);
        row::set_u64(s, r, 1, INITIAL);
    })
    .unwrap();
    db
}

fn partitions_for(scheme: CcScheme, keys: &[u64]) -> Vec<PartId> {
    if scheme != CcScheme::HStore {
        return vec![];
    }
    let mut p: Vec<PartId> = keys
        .iter()
        .map(|k| (k % u64::from(WORKERS)) as PartId)
        .collect();
    p.sort_unstable();
    p.dedup();
    p
}

fn all_partitions(scheme: CcScheme) -> Vec<PartId> {
    if scheme == CcScheme::HStore {
        (0..WORKERS).collect()
    } else {
        Vec::new()
    }
}

// ------------------------------------------------------------ lost update

/// Txn: concurrent committed RMW increments of 8 hot keys; the final sum
/// must equal the initial total plus every committed increment.
/// Split: the RMW is torn into a read transaction and a blind-write
/// transaction; two workers in lockstep then overwrite each other and an
/// increment vanishes.
fn lost_update(scheme: CcScheme, mode: Mode) -> Result<(), String> {
    let db = accounts_db(scheme, 64);
    let committed = AtomicU64::new(0);
    match mode {
        Mode::Txn => {
            crossbeam::thread::scope(|s| {
                for w in 0..WORKERS {
                    let db = Arc::clone(&db);
                    let committed = &committed;
                    s.spawn(move |_| {
                        let mut ctx = db.worker(w);
                        let mut rng = Rng(0x1234_5678 + u64::from(w));
                        for _ in 0..300 {
                            let key = rng.next() % 8;
                            let parts = partitions_for(scheme, &[key]);
                            ctx.run_txn(&parts, |t| {
                                t.update(0, key, |s, d| {
                                    row::fetch_add_u64(s, d, 1, 1);
                                })
                            })
                            .unwrap();
                            committed.fetch_add(1, Ordering::Relaxed);
                        }
                    });
                }
            })
            .unwrap();
        }
        Mode::Split => {
            let barrier = Barrier::new(2);
            crossbeam::thread::scope(|s| {
                for w in 0..2 {
                    let db = Arc::clone(&db);
                    let (committed, barrier) = (&committed, &barrier);
                    s.spawn(move |_| {
                        let mut ctx = db.worker(w);
                        let parts = partitions_for(scheme, &[0]);
                        for _ in 0..8 {
                            barrier.wait();
                            // Torn RMW, step 1: read in its own txn...
                            let v = ctx.run_txn(&parts, |t| t.read_u64(0, 0, 1)).unwrap();
                            barrier.wait();
                            // ...step 2: blind-write the stale v + 1.
                            ctx.run_txn(&parts, |t| {
                                t.update(0, 0, |s, d| row::set_u64(s, d, 1, v + 1))
                            })
                            .unwrap();
                            committed.fetch_add(1, Ordering::Relaxed);
                            barrier.wait();
                        }
                    });
                }
            })
            .unwrap();
        }
    }
    let expected = INITIAL * 8 + committed.load(Ordering::Relaxed);
    let total: u64 = (0..8)
        .map(|k| {
            let r = db.peek(0, k).unwrap();
            row::get_u64(db.schema(0), &r, 1)
        })
        .sum();
    if total == expected {
        Ok(())
    } else {
        Err(format!(
            "lost updates: hot keys sum to {total}, expected {expected}"
        ))
    }
}

// ------------------------------------------------------------- write skew

const SKEW_ROUNDS: u64 = 64;

/// Per round `r` over the key pair `(2r, 2r+1)` initialized to `(1, 1)`:
/// worker 0 reads both and zeroes the left key if the pair sums to ≥ 2;
/// worker 1 does the same to the right key. Any serial order leaves the
/// second transaction seeing a sum of 1 and writing nothing, so a
/// committed round ending at `x + y = 0` is write skew.
/// Split mode tears the read and the conditional write apart: both
/// workers read `2`, then both zero their key.
fn write_skew(scheme: CcScheme, mode: Mode) -> Result<(), String> {
    let db = accounts_db(scheme, SKEW_ROUNDS * 2);
    // Reset balances to 1 so sums are tiny and exact.
    for k in 0..SKEW_ROUNDS * 2 {
        let mut ctx = db.worker(0);
        ctx.run_txn(&partitions_for(scheme, &[k]), |t| {
            t.update(0, k, |s, d| row::set_u64(s, d, 1, 1))
        })
        .unwrap();
    }
    let barrier = Barrier::new(2);
    crossbeam::thread::scope(|s| {
        for w in 0..2u32 {
            let db = Arc::clone(&db);
            let barrier = &barrier;
            s.spawn(move |_| {
                let mut ctx = db.worker(w);
                for r in 0..SKEW_ROUNDS {
                    let (x, y) = (r * 2, r * 2 + 1);
                    let mine = if w == 0 { x } else { y };
                    let parts = partitions_for(scheme, &[x, y]);
                    barrier.wait();
                    match mode {
                        Mode::Txn => {
                            ctx.run_txn(&parts, |t| {
                                let sum = t.read_u64(0, x, 1)? + t.read_u64(0, y, 1)?;
                                if sum >= 2 {
                                    t.update(0, mine, |s, d| row::set_u64(s, d, 1, 0))?;
                                }
                                Ok(())
                            })
                            .unwrap();
                        }
                        Mode::Split => {
                            // Fault injection: the constraint read commits
                            // on its own; the write acts on a stale sum.
                            let sum =
                                ctx.run_txn(&parts, |t| {
                                    Ok(t.read_u64(0, x, 1)? + t.read_u64(0, y, 1)?)
                                })
                                .unwrap();
                            barrier.wait();
                            if sum >= 2 {
                                ctx.run_txn(&parts, |t| {
                                    t.update(0, mine, |s, d| row::set_u64(s, d, 1, 0))
                                })
                                .unwrap();
                            }
                        }
                    }
                    barrier.wait();
                }
            });
        }
    })
    .unwrap();
    let violations = Violations::default();
    for r in 0..SKEW_ROUNDS {
        let get = |k: u64| {
            let data = db.peek(0, k).unwrap();
            row::get_u64(db.schema(0), &data, 1)
        };
        let (x, y) = (get(r * 2), get(r * 2 + 1));
        if x + y == 0 {
            violations.record(format!(
                "write skew in round {r}: both constraint keys zeroed"
            ));
        }
    }
    violations.into_result()
}

// --------------------------------------------------- read-only snapshot

/// Writers transfer between accounts (preserving the total); read-only
/// transactions sum every account. Serializability admits only totals a
/// serial history could produce — exactly the initial total. Split mode
/// tears a transfer into separately committed debit and credit halves and
/// reads between them.
fn read_only_snapshot(scheme: CcScheme, mode: Mode) -> Result<(), String> {
    const ACCOUNTS: u64 = 16;
    let db = accounts_db(scheme, ACCOUNTS);
    let expected = INITIAL * ACCOUNTS;
    let violations = Violations::default();
    let all_parts = all_partitions(scheme);

    if mode == Mode::Split {
        // Deterministic single-threaded injection: debit committed,
        // observe, credit committed.
        let mut ctx = db.worker(0);
        let parts = partitions_for(scheme, &[0]);
        ctx.run_txn(&parts, |t| {
            t.update(0, 0, |s, d| {
                let b = row::get_u64(s, d, 1);
                row::set_u64(s, d, 1, b - 5);
            })
        })
        .unwrap();
        let total = ctx
            .run_txn(&all_parts, |t| {
                let mut sum = 0u64;
                for k in 0..ACCOUNTS {
                    sum += t.read_u64(0, k, 1)?;
                }
                Ok(sum)
            })
            .unwrap();
        if total != expected {
            violations.record(format!(
                "read-only txn observed total {total}, expected {expected}"
            ));
        }
        ctx.run_txn(&parts, |t| {
            t.update(0, 0, |s, d| {
                let b = row::get_u64(s, d, 1);
                row::set_u64(s, d, 1, b + 5);
            })
        })
        .unwrap();
        return violations.into_result();
    }

    let stop = AtomicBool::new(false);
    crossbeam::thread::scope(|s| {
        for w in 0..2 {
            let db = Arc::clone(&db);
            let stop = &stop;
            s.spawn(move |_| {
                let mut ctx = db.worker(w);
                let mut rng = Rng(0x9999 + u64::from(w));
                while !stop.load(Ordering::Relaxed) {
                    let from = rng.next() % ACCOUNTS;
                    let mut to = rng.next() % ACCOUNTS;
                    if to == from {
                        to = (to + 1) % ACCOUNTS;
                    }
                    let amount = rng.next() % 10;
                    let parts = partitions_for(scheme, &[from, to]);
                    ctx.run_txn(&parts, |t| {
                        let bal = t.read_u64(0, from, 1)?;
                        let transfer = amount.min(bal);
                        t.update(0, from, |s, d| {
                            let b = row::get_u64(s, d, 1);
                            row::set_u64(s, d, 1, b - transfer);
                        })?;
                        t.update(0, to, |s, d| {
                            let b = row::get_u64(s, d, 1);
                            row::set_u64(s, d, 1, b + transfer);
                        })?;
                        Ok(())
                    })
                    .unwrap();
                    std::thread::yield_now();
                }
            });
        }
        for w in 2..WORKERS {
            let db = Arc::clone(&db);
            let (stop, violations, all_parts) = (&stop, &violations, &all_parts);
            s.spawn(move |_| {
                let mut ctx = db.worker(w);
                for _ in 0..150 {
                    let total = ctx
                        .run_txn(all_parts, |t| {
                            let mut sum = 0u64;
                            for k in 0..ACCOUNTS {
                                sum += t.read_u64(0, k, 1)?;
                            }
                            Ok(sum)
                        })
                        .unwrap();
                    if total != expected {
                        violations.record(format!(
                            "read-only txn observed total {total}, expected {expected}"
                        ));
                    }
                }
                stop.store(true, Ordering::Relaxed);
            });
        }
    })
    .unwrap();
    if db.sum_column(0, 1) != expected {
        violations.record("final balances do not conserve the total".into());
    }
    violations.into_result()
}

// ------------------------------------------------- double-scan phantom

/// The table holds even keys in `[0, 2 * PHANTOM_RANGE)`; inserter workers
/// commit odd keys (worker-disjoint) into the range, churn workers cycle
/// insert→delete, while scanner workers run committed transactions that
/// scan the same window **twice** and require identical key sets — a
/// phantom is exactly a committed transaction whose two reads of one
/// predicate disagree. ≥ 1000 committed double-scan trials per scheme,
/// plus an exact final reconciliation of the index against the committed
/// inserts and deletes. (Ported intact from the PR-2 phantom suite.)
const PHANTOM_RANGE: u64 = 64;
const PHANTOM_SCANNERS: u32 = 2;
const PHANTOM_TRIALS: u64 = 500; // per scanner ⇒ 1000 committed scans

fn double_scan_phantom(scheme: CcScheme, mode: Mode) -> Result<(), String> {
    if mode == Mode::Split {
        return double_scan_split(scheme);
    }
    let mut cat = Catalog::new();
    // Generous headroom: every churn insert takes a fresh arena slot (rows
    // are never reused), aborted insert attempts leak more, and the
    // phantom guards abort inserters often.
    cat.add_ordered_table(
        "scanned",
        Schema::key_plus_payload(1, 8),
        PHANTOM_RANGE * 512,
    );
    let mut cfg = EngineConfig::new(scheme, WORKERS);
    cfg.dl_timeout_us = 100;
    let db = Database::new(logged(cfg), cat).unwrap();
    db.load_table(0, (0..PHANTOM_RANGE).map(|k| k * 2), |s, r, k| {
        row::set_u64(s, r, 0, k);
        row::set_u64(s, r, 1, 1);
    })
    .unwrap();

    let high = PHANTOM_RANGE * 2;
    let all_parts = all_partitions(scheme);
    let inserted = AtomicU64::new(0);
    let deleted = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    let violations = Violations::default();
    // Every worker starts scanning/churning at the same instant — without
    // this, the scanners can finish all their trials before the inserter
    // threads are even scheduled, and nothing actually races.
    let start = Barrier::new(WORKERS as usize);

    crossbeam::thread::scope(|s| {
        // Odd keys are partitioned by class c = ((k-1)/2) % 4:
        //   c == 0 / 1 — "permanent": inserter c commits each once, and
        //                scanner c may later delete observed ones;
        //   c == 2 / 3 — "churn": inserter c-2 cycles insert→delete for
        //                the whole run, so structural changes race every
        //                scan from the first trial to the last.
        for w in 0..(WORKERS - PHANTOM_SCANNERS) {
            let db = Arc::clone(&db);
            let (inserted, deleted, stop, all_parts) = (&inserted, &deleted, &stop, &all_parts);
            let start = &start;
            s.spawn(move |_| {
                let mut ctx = db.worker(w);
                start.wait();
                let ins = |ctx: &mut WorkerCtx, key: u64| {
                    ctx.run_txn(all_parts, |t| {
                        t.insert(0, key, |s, d| {
                            row::set_u64(s, d, 0, key);
                            row::set_u64(s, d, 1, 1);
                        })
                    })
                    .unwrap();
                    inserted.fetch_add(1, Ordering::Relaxed);
                };
                let mut perm = u64::from(w); // j = perm, class perm % 4 == w
                let mut churn = 0u64;
                // Bound churn so arena slots cannot run out even if the
                // scanners are slow (each cycle consumes a fresh slot).
                while !stop.load(Ordering::Relaxed) && churn < 2_000 {
                    if perm * 2 + 1 < high {
                        ins(&mut ctx, perm * 2 + 1);
                        perm += 4;
                    }
                    // One full churn cycle: insert then delete the same key.
                    let j = (churn % (PHANTOM_RANGE / 4)) * 4 + u64::from(w) + 2;
                    churn += 1;
                    let key = j * 2 + 1;
                    if key < high {
                        ins(&mut ctx, key);
                        ctx.run_txn(all_parts, |t| t.delete(0, key)).unwrap();
                        deleted.fetch_add(1, Ordering::Relaxed);
                    }
                    std::thread::yield_now();
                }
            });
        }
        // Scanners: double scan per committed txn; occasional deletes.
        for w in (WORKERS - PHANTOM_SCANNERS)..WORKERS {
            let db = Arc::clone(&db);
            let (deleted, stop, all_parts, violations) = (&deleted, &stop, &all_parts, &violations);
            let start = &start;
            s.spawn(move |_| {
                let mut ctx = db.worker(w);
                start.wait();
                let mut rng = Rng(0xF00D + u64::from(w));
                for trial in 0..PHANTOM_TRIALS {
                    // Randomized sub-window, full window every 4th trial.
                    let (lo, hi) = if trial % 4 == 0 {
                        (0, high - 1)
                    } else {
                        let a = rng.next() % high;
                        let b = rng.next() % high;
                        (a.min(b), a.max(b))
                    };
                    let (first, second) = ctx
                        .run_txn(all_parts, |t| {
                            let mut first = Vec::new();
                            t.scan(0, lo, hi, |k, _, _| first.push(k))?;
                            // Hand the (possibly single) CPU to the churn
                            // threads so structural changes land between
                            // the two scans. An optimistic scheme may then
                            // observe a discrepancy here — that is legal
                            // as long as the commit below fails; the
                            // anomaly check therefore runs only on the
                            // *committed* result.
                            std::thread::yield_now();
                            let mut second = Vec::new();
                            t.scan(0, lo, hi, |k, _, _| second.push(k))?;
                            Ok((first, second))
                        })
                        .unwrap();
                    if first != second {
                        violations.record(format!(
                            "phantom: two scans of [{lo}, {hi}] in one committed txn disagree"
                        ));
                    }
                    let keys = first;
                    // Shrink the range now and then: delete an observed
                    // *permanent* odd key from this scanner's disjoint
                    // class (never re-inserted, classes never overlap, so
                    // each committed delete removes exactly one live key).
                    if trial % 16 == 7 {
                        let sw = u64::from(w - (WORKERS - PHANTOM_SCANNERS));
                        let mine = keys
                            .iter()
                            .copied()
                            .find(|&k| k % 2 == 1 && ((k - 1) / 2) % 4 == sw);
                        if let Some(k) = mine {
                            ctx.run_txn(all_parts, |t| t.delete(0, k))
                                .unwrap_or_else(|e| panic!("{scheme}: delete failed: {e}"));
                            deleted.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                stop.store(true, Ordering::Relaxed);
            });
        }
    })
    .unwrap();

    // Reconcile: committed state == loaded evens + inserts − deletes.
    let expected =
        PHANTOM_RANGE + inserted.load(Ordering::Relaxed) - deleted.load(Ordering::Relaxed);
    let mut ctx = db.worker(0);
    let final_count = ctx
        .run_txn(&all_parts, |t| t.scan(0, 0, u64::MAX, |_, _, _| {}))
        .unwrap();
    if final_count as u64 != expected {
        violations.record(format!(
            "committed inserts/deletes and final index disagree: {final_count} vs {expected}"
        ));
    }
    if db.index_len(0) != expected {
        violations.record("hash/btree index diverged".into());
    }
    violations.into_result()
}

/// Split-mode phantom: the double scan is torn across two transactions
/// with a committed insert in between — the key-set comparison must see
/// the planted phantom.
fn double_scan_split(scheme: CcScheme) -> Result<(), String> {
    let mut cat = Catalog::new();
    cat.add_ordered_table("scanned", Schema::key_plus_payload(1, 8), 256);
    let db = Database::new(logged(EngineConfig::new(scheme, WORKERS)), cat).unwrap();
    db.load_table(0, (0..16u64).map(|k| k * 2), |s, r, k| {
        row::set_u64(s, r, 0, k);
        row::set_u64(s, r, 1, 1);
    })
    .unwrap();
    let all_parts = all_partitions(scheme);
    let mut scanner = db.worker(0);
    let mut inserter = db.worker(1);
    let scan = |ctx: &mut WorkerCtx| {
        ctx.run_txn(&all_parts, |t| {
            let mut keys = Vec::new();
            t.scan(0, 0, 40, |k, _, _| keys.push(k))?;
            Ok(keys)
        })
        .unwrap()
    };
    let first = scan(&mut scanner);
    inserter
        .run_txn(&all_parts, |t| {
            t.insert(0, 7, |s, d| {
                row::set_u64(s, d, 0, 7);
                row::set_u64(s, d, 1, 1);
            })
        })
        .unwrap();
    let second = scan(&mut scanner);
    if first != second {
        Err(format!(
            "phantom: scans saw {} then {} keys",
            first.len(),
            second.len()
        ))
    } else {
        Ok(())
    }
}

// --------------------------------------------- next-key delete resurrection

/// A committed delete must stay deleted: no stale row reference, aborted
/// transaction, or scan may resurface the key; a legal re-insert must
/// surface it exactly once. Split mode injects a "botched undo" that
/// re-inserts the deleted key in a fresh transaction.
fn delete_resurrection(scheme: CcScheme, mode: Mode) -> Result<(), String> {
    let mut cat = Catalog::new();
    cat.add_ordered_table("t", Schema::key_plus_payload(1, 8), 256);
    let db = Database::new(logged(EngineConfig::new(scheme, 2)), cat).unwrap();
    db.load_table(0, 0..32u64, |s, r, k| {
        row::set_u64(s, r, 0, k);
        row::set_u64(s, r, 1, k);
    })
    .unwrap();
    let parts: Vec<PartId> = if scheme == CcScheme::HStore {
        vec![0, 1]
    } else {
        vec![]
    };
    let violations = Violations::default();
    let mut a = db.worker(0);
    let mut b = db.worker(1);
    let victims = [5u64, 11, 23];
    for &k in &victims {
        match mode {
            Mode::Txn => {
                let eager = scheme.is_two_phase_locking() || scheme == CcScheme::HStore;
                if eager {
                    // Locking/ownership excludes the stale-reference race
                    // up front; the hazard is the commit-time index
                    // withdrawal, so delete first, then probe.
                    b.run_txn(&parts, |t| t.delete(0, k)).unwrap();
                    if a.run_txn(&parts, |t| t.read_u64(0, k, 1)).is_ok() {
                        violations.record(format!("read of deleted key {k} succeeded"));
                    }
                } else {
                    // Optimistic/T-O: reads don't block writers, so a
                    // transaction can hold a stale row reference across a
                    // concurrent committed delete — the resurrection
                    // window this anomaly is about.
                    a.begin(&[], None).unwrap();
                    let _stale = a.read(0, k).map(<[u8]>::to_vec);
                    b.run_txn(&parts, |t| t.delete(0, k)).unwrap();
                    // Writing through the stale reference must not commit
                    // a resurrection: either the op or the commit fails,
                    // or (T/O) the write legally serialized *before* the
                    // delete — in every case the key must stay gone.
                    let wrote = a.update(0, k, |s, d| row::set_u64(s, d, 1, 999));
                    if wrote.is_ok() {
                        let _ = a.commit();
                    } else {
                        a.abort(abyss::common::AbortReason::UserAbort);
                    }
                }
            }
            Mode::Split => {
                // Fault injection: a "botched undo" re-plants the key
                // after its delete committed.
                b.run_txn(&parts, |t| t.delete(0, k)).unwrap();
                a.run_txn(&parts, |t| {
                    t.insert(0, k, |s, d| {
                        row::set_u64(s, d, 0, k);
                        row::set_u64(s, d, 1, 999);
                    })
                })
                .unwrap();
            }
        }
        // The detector: the key must be gone from every surface.
        if db.peek(0, k).is_ok() {
            violations.record(format!("deleted key {k} resurfaced in the index"));
        }
        let mut seen = Vec::new();
        a.run_txn(&parts, |t| {
            seen.clear();
            t.scan(0, 0, 64, |key, _, _| seen.push(key))
        })
        .unwrap();
        if seen.contains(&k) {
            violations.record(format!("deleted key {k} resurfaced in a scan"));
        }
    }
    if mode == Mode::Txn {
        // A legal re-insert must surface the key exactly once, and a
        // second committed delete must remove it again.
        let k = victims[0];
        a.run_txn(&parts, |t| {
            t.insert(0, k, |s, d| {
                row::set_u64(s, d, 0, k);
                row::set_u64(s, d, 1, 7);
            })
        })
        .unwrap();
        let mut seen = Vec::new();
        a.run_txn(&parts, |t| {
            seen.clear();
            t.scan(0, 0, 64, |key, _, _| seen.push(key))
        })
        .unwrap();
        if seen.iter().filter(|&&x| x == k).count() != 1 {
            violations.record(format!("re-inserted key {k} not seen exactly once"));
        }
        a.run_txn(&parts, |t| t.delete(0, k)).unwrap();
        if db.peek(0, k).is_ok() {
            violations.record(format!("re-deleted key {k} resurfaced"));
        }
    }
    violations.into_result()
}

// ------------------------------------------------------- the matrix

/// Expands one test per (anomaly, scheme) cell, plus a sync guard pinning
/// the scheme list to `CcScheme::ALL` so a new scheme cannot be silently
/// skipped.
macro_rules! conformance_matrix {
    ($($name:ident => $scheme:expr),+ $(,)?) => {
        const LISTED_SCHEMES: &[CcScheme] = &[$($scheme),+];

        #[test]
        fn matrix_covers_every_scheme() {
            assert_eq!(
                LISTED_SCHEMES,
                &CcScheme::ALL,
                "conformance matrix out of sync with CcScheme::ALL"
            );
        }

        #[test]
        fn matrix_covers_at_least_five_anomalies() {
            assert!(ANOMALIES.len() >= 5);
            let mut names: Vec<_> = ANOMALIES.iter().map(|a| a.name).collect();
            names.dedup();
            assert_eq!(names.len(), ANOMALIES.len(), "duplicate anomaly names");
        }

        mod lost_update {
            use super::*;
            $(#[test] fn $name() { run_anomaly("lost_update", $scheme); })+
        }
        mod write_skew {
            use super::*;
            $(#[test] fn $name() { run_anomaly("write_skew", $scheme); })+
        }
        mod read_only_snapshot {
            use super::*;
            $(#[test] fn $name() { run_anomaly("read_only_snapshot", $scheme); })+
        }
        mod double_scan_phantom {
            use super::*;
            $(#[test] fn $name() { run_anomaly("double_scan_phantom", $scheme); })+
        }
        mod delete_resurrection {
            use super::*;
            $(#[test] fn $name() { run_anomaly("delete_resurrection", $scheme); })+
        }
    };
}

conformance_matrix! {
    dl_detect => CcScheme::DlDetect,
    no_wait => CcScheme::NoWait,
    wait_die => CcScheme::WaitDie,
    timestamp => CcScheme::Timestamp,
    mvcc => CcScheme::Mvcc,
    occ => CcScheme::Occ,
    hstore => CcScheme::HStore,
    silo => CcScheme::Silo,
    tictoc => CcScheme::TicToc,
}

// ------------------------------------------------- detector power checks

/// Every detector must fire on its split-mode (fault-injected) history,
/// under every scheme — a detector that stays silent there could never
/// catch a real engine bug either.
mod power {
    use super::*;

    fn assert_fires(name: &str) {
        let a = ANOMALIES.iter().find(|a| a.name == name).unwrap();
        for scheme in CcScheme::ALL {
            let r = (a.check)(scheme, Mode::Split);
            assert!(
                r.is_err(),
                "{scheme}/{name}: detector failed to fire on an injected fault"
            );
        }
    }

    #[test]
    fn lost_update_detector_fires() {
        assert_fires("lost_update");
    }

    #[test]
    fn write_skew_detector_fires() {
        assert_fires("write_skew");
    }

    #[test]
    fn read_only_snapshot_detector_fires() {
        assert_fires("read_only_snapshot");
    }

    #[test]
    fn double_scan_phantom_detector_fires() {
        assert_fires("double_scan_phantom");
    }

    #[test]
    fn delete_resurrection_detector_fires() {
        assert_fires("delete_resurrection");
    }
}

// ------------------------------------------- TICTOC fast-path liveness

/// A read-heavy contended YCSB mix must exercise TICTOC's commit-time
/// rts-extension path — zero extensions would mean reads are being
/// revalidated by luck (or the fast path was silently disabled) rather
/// than by design.
#[test]
fn tictoc_rts_extension_fast_path_is_live() {
    use abyss::workload::{ycsb, YcsbConfig, YcsbGen};
    let cfg = YcsbConfig {
        table_rows: 256,
        ..YcsbConfig::read_intensive(0.8)
    };
    let db = Database::new(
        logged(EngineConfig::new(CcScheme::TicToc, WORKERS)),
        ycsb::catalog(&cfg),
    )
    .unwrap();
    db.load_table(0, 0..cfg.table_rows, ycsb::init_row).unwrap();
    let gens = (0..WORKERS)
        .map(|w| {
            let mut g = YcsbGen::new(cfg.clone(), 0xE27ED5 + u64::from(w));
            Box::new(move || g.next_txn()) as Box<dyn FnMut() -> abyss::common::TxnTemplate + Send>
        })
        .collect();
    let out = run_workers_bounded(&db, gens, 400);
    assert!(out.stats.commits >= u64::from(WORKERS) * 300);
    assert!(
        out.stats.rts_extensions > 0,
        "read-heavy contended TICTOC run recorded zero rts extensions"
    );
}
