//! Integration tests for the unified bench harness (PR 9): barrier
//! semantics, result merging, pinning fallback, and the JSON envelope's
//! round-trip through the validator CI runs.

use std::ops::AddAssign;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use abyss_bench::harness::{
    self, available_cores, emit::Envelope, json, pin_to_core, BenchContext, BenchSpec, PinPolicy,
};

/// Each thread records how many of its siblings had already checked in
/// at the moment the runner released it. The runner only arms the
/// running flag after every thread reports ready, so all of them must
/// observe the full group — the barrier releases everyone on one edge,
/// not thread-by-thread as they spawn.
struct BarrierProbe {
    observed_ready: AtomicU64,
}

impl BenchSpec for BarrierProbe {
    type Result = u64;

    fn run(&self, ctx: &mut BenchContext<'_>) -> u64 {
        ctx.wait_for_start();
        // Everyone is past the barrier: count the rendezvous.
        self.observed_ready.fetch_add(1, Ordering::AcqRel);
        let mut spins = 0u64;
        while self.observed_ready.load(Ordering::Acquire) < u64::from(ctx.threads) {
            std::hint::spin_loop();
            spins += 1;
            assert!(
                spins < 2_000_000_000,
                "a sibling never came out of the start barrier"
            );
        }
        1
    }
}

#[test]
fn barrier_releases_all_threads_together() {
    let threads = 4;
    let mut spec = BarrierProbe {
        observed_ready: AtomicU64::new(0),
    };
    let out = harness::run_bounded(&mut spec, threads, PinPolicy::None);
    assert_eq!(out.merged, u64::from(threads));
    assert_eq!(
        spec.observed_ready.load(Ordering::Acquire),
        u64::from(threads)
    );
}

/// A deliberately structured result (sum + max) to check that the
/// harness's fold order doesn't matter for a lawful `AddAssign`.
#[derive(Default, Clone, Copy, Debug, PartialEq)]
struct SumMax {
    sum: u64,
    max: u64,
}

impl AddAssign for SumMax {
    fn add_assign(&mut self, rhs: Self) {
        self.sum += rhs.sum;
        self.max = self.max.max(rhs.max);
    }
}

struct IdSpec;

impl BenchSpec for IdSpec {
    type Result = SumMax;

    fn run(&self, ctx: &mut BenchContext<'_>) -> SumMax {
        ctx.wait_for_start();
        let v = u64::from(ctx.thread_id) + 1;
        SumMax { sum: v, max: v }
    }
}

#[test]
fn result_merge_is_associative_and_commutative() {
    let out = harness::run_bounded(&mut IdSpec, 6, PinPolicy::None);

    // Forward fold (what the runner does), reverse fold, and a pairwise
    // tree fold must all agree.
    let fold = |order: &[SumMax]| {
        let mut acc = SumMax::default();
        for r in order {
            acc += *r;
        }
        acc
    };
    let forward = fold(&out.per_thread);
    let mut reversed = out.per_thread.clone();
    reversed.reverse();
    let backward = fold(&reversed);
    let mut tree = SumMax::default();
    for pair in out.per_thread.chunks(2) {
        tree += fold(pair);
    }

    assert_eq!(out.merged, forward);
    assert_eq!(forward, backward);
    assert_eq!(forward, tree);
    assert_eq!(out.merged, SumMax { sum: 21, max: 6 });
}

#[test]
fn pinning_falls_back_cleanly_past_available_cores() {
    // Asking for a core the host doesn't have must fail soft (return
    // false), not crash or wedge the calling thread.
    let beyond = available_cores() + 64;
    assert!(!pin_to_core(beyond), "pinning to core {beyond} succeeded?");

    // And a run requesting more threads than cores still completes with
    // every thread's result accounted for: core_for wraps round-robin.
    let threads = (available_cores() as u32 + 2).min(64);
    let out = harness::run_bounded(&mut IdSpec, threads, PinPolicy::RoundRobin);
    assert_eq!(out.per_thread.len(), threads as usize);

    // Compact placement degrades the same way.
    let out = harness::run_bounded(&mut IdSpec, threads, PinPolicy::Compact);
    assert_eq!(out.per_thread.len(), threads as usize);
}

#[test]
fn timed_runs_stop_on_the_shared_edge() {
    struct Spin;
    impl BenchSpec for Spin {
        type Result = u64;
        fn run(&self, ctx: &mut BenchContext<'_>) -> u64 {
            ctx.wait_for_start();
            let mut n = 0;
            while ctx.is_running() {
                n += 1;
                std::hint::spin_loop();
            }
            n
        }
    }
    let out = harness::run_timed(&mut Spin, 2, Duration::from_millis(15), PinPolicy::None);
    assert!(out.merged > 0);
    assert!(out.wall >= Duration::from_millis(15));
}

#[test]
fn envelope_round_trips_through_the_validator() {
    let mut env = Envelope::new("harness_integration");
    env.meta_num("threads", 4.0).section(
        "latency",
        "{\"count\":100,\"p50\":10,\"p90\":20,\"p99\":30,\"p999\":40,\"max\":50,\"mean\":12}",
    );
    let text = env.to_json();
    let doc = json::parse(&text).expect("emitter output parses");
    json::validate_envelope(&doc).expect("emitter output validates");
}

#[test]
fn validator_rejects_a_broken_envelope() {
    // Same envelope with an inverted quantile pair: the validator CI
    // runs over results/*.json must catch it.
    let mut env = Envelope::new("harness_integration");
    env.section(
        "latency",
        "{\"count\":100,\"p50\":99,\"p90\":20,\"p99\":30,\"p999\":40,\"max\":50}",
    );
    let doc = json::parse(&env.to_json()).expect("parses");
    assert!(json::validate_envelope(&doc).is_err());
}
