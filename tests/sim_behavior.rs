//! Integration tests of the simulator: determinism, paper-shaped
//! qualitative behaviours, and sim-vs-real agreement (the Fig. 3 method).

use abyss::common::{CcScheme, TsMethod};
use abyss::sim::{run_sim, SimConfig, SimTable};
use abyss::workload::ycsb::{YcsbConfig, YcsbGen};
use abyss_sim::SimReport;

/// CPU coordination between this binary's tests (libtest runs them on
/// parallel threads of one process): the heavyweight many-core sims take
/// the lock *shared* — free to overlap each other — while the wall-clock
/// sim-vs-real test takes it *exclusive*, so its timed 400 ms threaded
/// run is never starved by a 1024-core sweep chewing every host core
/// (which can flip its qualitative direction on small CI runners).
static CPU_HOG: std::sync::RwLock<()> = std::sync::RwLock::new(());

fn heavy_sim() -> std::sync::RwLockReadGuard<'static, ()> {
    CPU_HOG.read().unwrap_or_else(|e| e.into_inner())
}

fn quiet_host() -> std::sync::RwLockWriteGuard<'static, ()> {
    CPU_HOG.write().unwrap_or_else(|e| e.into_inner())
}

fn ycsb_sim(
    scheme: CcScheme,
    cores: u32,
    cfg: &YcsbConfig,
    tweak: impl FnOnce(&mut SimConfig),
) -> SimReport {
    let mut sim = SimConfig::new(scheme, cores);
    sim.warmup = 300_000;
    sim.measure = 3_000_000;
    tweak(&mut sim);
    let zipf = abyss::common::zipf::ZipfGen::new(cfg.table_rows, cfg.theta);
    let gens = (0..cores)
        .map(|c| {
            let mut g =
                YcsbGen::with_zipf(cfg.clone(), zipf.clone(), 5000 + u64::from(c)).for_worker(c);
            Box::new(move || g.next_txn()) as Box<dyn FnMut() -> abyss::common::TxnTemplate>
        })
        .collect();
    run_sim(
        sim,
        vec![SimTable {
            row_size: 1008,
            counter_init: 0,
        }],
        gens,
    )
}

#[test]
fn identical_configs_are_bit_identical() {
    let cfg = YcsbConfig {
        table_rows: 100_000,
        ..YcsbConfig::write_intensive(0.6)
    };
    let a = ycsb_sim(CcScheme::DlDetect, 16, &cfg, |_| {});
    let b = ycsb_sim(CcScheme::DlDetect, 16, &cfg, |_| {});
    assert_eq!(a.stats.commits, b.stats.commits);
    assert_eq!(a.stats.aborts, b.stats.aborts);
    assert_eq!(a.stats.breakdown, b.stats.breakdown);
    assert_eq!(a.materialized_tuples, b.materialized_tuples);
}

#[test]
fn scheduling_changes_alter_the_run() {
    // The sim seed only feeds workload generators (held constant here), so
    // perturb scheduling through the timestamp method of a T/O scheme.
    let cfg = YcsbConfig {
        table_rows: 100_000,
        ..YcsbConfig::write_intensive(0.6)
    };
    let a = ycsb_sim(CcScheme::Timestamp, 8, &cfg, |_| {});
    let b = ycsb_sim(CcScheme::Timestamp, 8, &cfg, |s| {
        s.ts_method = TsMethod::Mutex
    });
    assert_ne!(
        a.stats.commits, b.stats.commits,
        "scheduling change must alter the run"
    );
}

#[test]
fn thrashing_shape_theta08_peaks_early() {
    let _hog = heavy_sim();
    // Fig. 4's key claim: with high skew, waiting-based 2PL peaks at a few
    // dozen cores and *declines* beyond.
    let cfg = YcsbConfig {
        table_rows: 1_000_000,
        ordered_keys: true,
        ..YcsbConfig::write_intensive(0.8)
    };
    let tweak = |s: &mut SimConfig| {
        s.dl_detect = false;
        s.dl_timeout = None;
    };
    let t16 = ycsb_sim(CcScheme::DlDetect, 16, &cfg, tweak).txn_per_sec();
    let t512 = ycsb_sim(CcScheme::DlDetect, 512, &cfg, tweak).txn_per_sec();
    assert!(
        t512 < t16 * 2.0,
        "theta=0.8 thrashing: 512 cores ({t512:.0}) should not scale over 16 ({t16:.0})"
    );
}

#[test]
fn ts_allocation_caps_to_schemes_at_1024() {
    let _hog = heavy_sim();
    // Fig. 8's key claim: at 1024 cores, 2PL without timestamps outruns
    // the T/O schemes, and OCC (two timestamps) trails the other T/O.
    let cfg = YcsbConfig::read_only();
    let nw = ycsb_sim(CcScheme::NoWait, 1024, &cfg, |_| {}).txn_per_sec();
    let ts = ycsb_sim(CcScheme::Timestamp, 1024, &cfg, |_| {}).txn_per_sec();
    let occ = ycsb_sim(CcScheme::Occ, 1024, &cfg, |_| {}).txn_per_sec();
    assert!(
        nw > ts,
        "NO_WAIT ({nw:.0}) must beat TIMESTAMP ({ts:.0}) at 1024 cores"
    );
    assert!(
        ts > occ * 1.5,
        "TIMESTAMP ({ts:.0}) must clearly beat OCC ({occ:.0})"
    );
}

#[test]
fn clock_timestamps_lift_the_cap() {
    let _hog = heavy_sim();
    // §4.3: decentralized clocks remove the allocator bottleneck.
    let cfg = YcsbConfig::read_only();
    let atomic = ycsb_sim(CcScheme::Timestamp, 1024, &cfg, |_| {}).txn_per_sec();
    let clock = ycsb_sim(CcScheme::Timestamp, 1024, &cfg, |s| {
        s.ts_method = TsMethod::Clock
    })
    .txn_per_sec();
    assert!(
        clock > atomic * 1.2,
        "clock ({clock:.0}) should clearly beat atomic ({atomic:.0}) at 1024 cores"
    );
}

#[test]
fn hstore_wins_partitionable_single_partition_workloads() {
    // Fig. 14 at moderate core counts.
    let cores = 64;
    let base = YcsbConfig::write_intensive(0.0);
    let hs_cfg = YcsbConfig {
        parts: cores,
        ..base.clone()
    };
    let hs = ycsb_sim(CcScheme::HStore, cores, &hs_cfg, |s| s.hstore_parts = cores);
    let dl = ycsb_sim(CcScheme::DlDetect, cores, &base, |_| {});
    assert!(
        hs.txn_per_sec() > dl.txn_per_sec(),
        "H-STORE ({:.0}) should beat DL_DETECT ({:.0}) on single-partition workloads",
        hs.txn_per_sec(),
        dl.txn_per_sec()
    );
}

#[test]
fn multi_partition_transactions_hurt_hstore() {
    // Fig. 15a.
    let cores = 32;
    let single = YcsbConfig {
        parts: cores,
        multi_part_pct: 0.0,
        ..YcsbConfig::write_intensive(0.0)
    };
    let multi = YcsbConfig {
        parts: cores,
        multi_part_pct: 0.5,
        parts_per_txn: 4,
        ..YcsbConfig::write_intensive(0.0)
    };
    let t_single =
        ycsb_sim(CcScheme::HStore, cores, &single, |s| s.hstore_parts = cores).txn_per_sec();
    let t_multi =
        ycsb_sim(CcScheme::HStore, cores, &multi, |s| s.hstore_parts = cores).txn_per_sec();
    assert!(
        t_multi < t_single * 0.7,
        "50% MPT ({t_multi:.0}) must clearly undercut single-partition ({t_single:.0})"
    );
}

// ------------------------------------------------------- modern (SILO)

#[test]
fn silo_runs_at_1024_simulated_cores() {
    let _hog = heavy_sim();
    let cfg = YcsbConfig {
        table_rows: 1_000_000,
        ..YcsbConfig::write_intensive(0.6)
    };
    let r = ycsb_sim(CcScheme::Silo, 1024, &cfg, |_| {});
    assert!(
        r.stats.commits > 10_000,
        "SILO at 1024 cores: only {} commits",
        r.stats.commits
    );
    assert_eq!(
        r.stats.ts_allocated, 0,
        "SILO must allocate zero global timestamps"
    );
}

#[test]
fn silo_escapes_the_allocator_ceiling_at_1024() {
    let _hog = heavy_sim();
    // The fig_modern claim: with the default atomic allocator at 1024
    // cores, the T/O schemes are capped by timestamp allocation while
    // SILO (zero allocations) is not — it must clearly beat OCC (two
    // allocations) and TIMESTAMP (one).
    let cfg = YcsbConfig::read_only();
    let silo = ycsb_sim(CcScheme::Silo, 1024, &cfg, |_| {}).txn_per_sec();
    let ts = ycsb_sim(CcScheme::Timestamp, 1024, &cfg, |_| {}).txn_per_sec();
    let occ = ycsb_sim(CcScheme::Occ, 1024, &cfg, |_| {}).txn_per_sec();
    assert!(
        silo > ts,
        "SILO ({silo:.0}) must beat TIMESTAMP ({ts:.0}) at 1024 cores"
    );
    assert!(
        silo > occ * 1.5,
        "SILO ({silo:.0}) must clearly beat OCC ({occ:.0})"
    );
}

#[test]
fn silo_sim_is_deterministic() {
    let cfg = YcsbConfig {
        table_rows: 100_000,
        ..YcsbConfig::write_intensive(0.6)
    };
    let a = ycsb_sim(CcScheme::Silo, 64, &cfg, |_| {});
    let b = ycsb_sim(CcScheme::Silo, 64, &cfg, |_| {});
    assert_eq!(a.stats.commits, b.stats.commits);
    assert_eq!(a.stats.breakdown, b.stats.breakdown);
    assert_eq!(a.materialized_tuples, b.materialized_tuples);
}

#[test]
fn silo_sim_loses_no_updates_at_1024_cores() {
    let _hog = heavy_sim();
    // All 1024 cores hammer the same 4 hot counters with read-modify-write
    // increments; with zero warmup, each committed transaction bumps its
    // counter exactly once, so the final counters must equal the initial
    // value plus the commit count — the discrete-event analogue of the
    // threaded lost-update test, at the paper's full core count.
    use abyss::common::rng::Xoshiro256;
    use abyss::common::txn::{AccessOp, AccessSpec, KeySpec, TxnTemplate};
    use abyss::sim::run_sim_full;

    const HOT: u64 = 4;
    const INIT: u64 = 1000;
    let cores = 1024;
    let mut cfg = SimConfig::new(CcScheme::Silo, cores);
    cfg.warmup = 0;
    cfg.measure = 2_000_000;
    let gens = (0..cores)
        .map(|c| {
            let mut rng = Xoshiro256::seed_from(0xD0_1057 + u64::from(c));
            Box::new(move || {
                TxnTemplate::new(vec![AccessSpec {
                    table: 0,
                    key: KeySpec::Fixed(rng.next_below(HOT)),
                    op: AccessOp::UpdateCounter { slot: 0 },
                }])
            }) as Box<dyn FnMut() -> abyss::common::TxnTemplate>
        })
        .collect();
    let (report, mut db) = run_sim_full(
        cfg,
        vec![SimTable {
            row_size: 1008,
            counter_init: INIT,
        }],
        gens,
    );
    assert!(report.stats.commits > 0);
    let total: u64 = (0..HOT).map(|k| db.tuple(0, k).counter).sum();
    assert_eq!(
        total,
        INIT * HOT + report.stats.commits,
        "SILO lost updates in the simulator: {} commits, counters sum {}",
        report.stats.commits,
        total
    );
}

// ------------------------------------------------------ modern (TICTOC)

#[test]
fn tictoc_runs_at_1024_simulated_cores() {
    let _hog = heavy_sim();
    let cfg = YcsbConfig {
        table_rows: 1_000_000,
        ..YcsbConfig::write_intensive(0.6)
    };
    let r = ycsb_sim(CcScheme::TicToc, 1024, &cfg, |_| {});
    assert!(
        r.stats.commits > 10_000,
        "TICTOC at 1024 cores: only {} commits",
        r.stats.commits
    );
    assert_eq!(
        r.stats.ts_allocated, 0,
        "TICTOC must allocate zero global timestamps"
    );
    assert!(
        r.stats.rts_extensions > 0,
        "a contended write mix must exercise the rts-extension path"
    );
}

#[test]
fn tictoc_escapes_the_allocator_ceiling_at_1024() {
    let _hog = heavy_sim();
    // The fig_modern claim, extended: like SILO, TICTOC allocates zero
    // timestamps, so at 1024 cores it must clearly beat the allocator-
    // capped T/O schemes.
    let cfg = YcsbConfig::read_only();
    let tictoc = ycsb_sim(CcScheme::TicToc, 1024, &cfg, |_| {}).txn_per_sec();
    let ts = ycsb_sim(CcScheme::Timestamp, 1024, &cfg, |_| {}).txn_per_sec();
    let occ = ycsb_sim(CcScheme::Occ, 1024, &cfg, |_| {}).txn_per_sec();
    assert!(
        tictoc > ts,
        "TICTOC ({tictoc:.0}) must beat TIMESTAMP ({ts:.0}) at 1024 cores"
    );
    assert!(
        tictoc > occ * 1.5,
        "TICTOC ({tictoc:.0}) must clearly beat OCC ({occ:.0})"
    );
}

#[test]
fn tictoc_sim_is_deterministic() {
    let cfg = YcsbConfig {
        table_rows: 100_000,
        ..YcsbConfig::write_intensive(0.6)
    };
    let a = ycsb_sim(CcScheme::TicToc, 64, &cfg, |_| {});
    let b = ycsb_sim(CcScheme::TicToc, 64, &cfg, |_| {});
    assert_eq!(a.stats.commits, b.stats.commits);
    assert_eq!(a.stats.breakdown, b.stats.breakdown);
    assert_eq!(a.stats.rts_extensions, b.stats.rts_extensions);
    assert_eq!(a.materialized_tuples, b.materialized_tuples);
}

/// The ordered-index acceptance gate: the simulator must accept
/// `AccessOp::Scan` at the paper's 1024-core scale, for every scheme, and
/// actually execute scans (scan-heavy YCSB-E mix).
#[test]
fn simulator_accepts_scans_at_1024_cores() {
    let _hog = heavy_sim();
    let cfg = YcsbConfig {
        table_rows: 1_000_000,
        ..YcsbConfig::ycsb_e(0.5)
    };
    for scheme in CcScheme::ALL {
        let mut cfg = cfg.clone();
        if scheme == CcScheme::HStore {
            cfg.parts = 1024;
        }
        let r = ycsb_sim(scheme, 1024, &cfg, |s| {
            s.warmup = 100_000;
            s.measure = 1_000_000;
        });
        assert!(
            r.stats.commits > 0,
            "{scheme}: no commits at 1024 cores with scans"
        );
        assert!(r.stats.scans > 0, "{scheme}: no scans executed");
    }
}

/// The Fig. 3 method: the simulator and the real engine must agree on
/// qualitative ordering at host-scale core counts.
#[test]
fn sim_and_real_agree_on_contention_direction() {
    let _quiet = quiet_host();
    use abyss::core::{run_workers, Database, EngineConfig};
    use abyss::workload::ycsb;
    use std::time::Duration;

    let threads = 4;
    // Maximal contrast so scheduler noise from parallel tests cannot flip
    // the direction: uniform read-only vs all-write on a tiny hot set.
    let low_cfg = || YcsbConfig {
        table_rows: 50_000,
        ..YcsbConfig::read_only()
    };
    let high_cfg = || YcsbConfig {
        table_rows: 1_000,
        read_pct: 0.0,
        theta: 0.85,
        ..YcsbConfig::default()
    };
    let run_real = |cfg: YcsbConfig| {
        let db = Database::new(
            EngineConfig::new(CcScheme::NoWait, threads),
            ycsb::catalog(&cfg),
        )
        .unwrap();
        db.load_table(0, 0..cfg.table_rows, ycsb::init_row).unwrap();
        let zipf = abyss::common::zipf::ZipfGen::new(cfg.table_rows, cfg.theta);
        let gens = (0..threads)
            .map(|w| {
                let mut g = YcsbGen::with_zipf(cfg.clone(), zipf.clone(), u64::from(w) + 1);
                Box::new(move || g.next_txn())
                    as Box<dyn FnMut() -> abyss::common::TxnTemplate + Send>
            })
            .collect();
        run_workers(
            &db,
            gens,
            Duration::from_millis(50),
            Duration::from_millis(400),
        )
        .txn_per_sec()
    };
    // Wall-clock halves take the best of three trials: on an oversubscribed
    // host one descheduled measurement window can otherwise flip the
    // direction (observed flaking at ~1 in 4 with single samples).
    let best_real =
        |cfg: &dyn Fn() -> YcsbConfig| (0..3).map(|_| run_real(cfg())).fold(f64::MIN, f64::max);
    let sim_low = ycsb_sim(CcScheme::NoWait, threads, &low_cfg(), |_| {}).txn_per_sec();
    let sim_high = ycsb_sim(CcScheme::NoWait, threads, &high_cfg(), |_| {}).txn_per_sec();
    let real_low = best_real(&low_cfg);
    let real_high = best_real(&high_cfg);
    assert!(
        sim_high < sim_low && real_high < real_low,
        "both stacks must agree contention hurts: sim {sim_low:.0}→{sim_high:.0}, real {real_low:.0}→{real_high:.0}"
    );
}
