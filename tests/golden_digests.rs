//! Golden-digest regression harness: pinned per-scheme state digests of
//! two seeded single-worker runs, recorded **before** the `CcProtocol`
//! monomorphization refactor and asserted bit-equal ever since.
//!
//! Single-worker bounded runs are pure functions of the generator seed
//! (no cross-thread interleaving), so these digests pin the *semantics*
//! of every scheme's admission, commit and abort logic — any refactor
//! that changes what a scheme commits (order, visibility, abort
//! decisions) flips a digest even when the usual invariant tests still
//! pass. Two workloads:
//!
//! * **engine mix** — a hand-rolled update/insert/delete/scan/counter mix
//!   driven through the public `WorkerCtx` API (the runtime-dispatch
//!   path), including ordered-index maintenance;
//! * **YCSB-E replay** — the generator-driven bounded benchmark loop
//!   (`run_workers_bounded`, the monomorphized path), scans + fresh-key
//!   inserts included.
//!
//! To regenerate after an *intentional* behavior change, run
//! `cargo test --test golden_digests -- --ignored --nocapture`
//! and paste the printed table over `GOLDEN`.

use abyss::common::{CcScheme, PartId, TxnTemplate};
use abyss::core::{run_workers_bounded, Database, EngineConfig, WorkerCtx};
use abyss::storage::{row, Catalog, Schema};
use abyss::workload::{ycsb, YcsbConfig, YcsbGen};

const TABLE: u32 = 0;
const BASE_ROWS: u64 = 200;
const MIX_TXNS: u64 = 120;

/// One scheme's pinned fingerprints: the engine-mix digest and the
/// YCSB-E replay's `(commits, aborts, tuples, scans, digest)`.
#[derive(Debug, PartialEq, Eq)]
struct Golden {
    scheme: &'static str,
    mix_digest: u64,
    ycsbe_commits: u64,
    ycsbe_aborts: u64,
    ycsbe_tuples: u64,
    ycsbe_scans: u64,
    ycsbe_digest: u64,
}

/// Recorded at commit f68b3c2 (pre-refactor enum-dispatch worker); the
/// `CcProtocol` monomorphization must reproduce every row bit-for-bit.
const GOLDEN: &[Golden] = &[
    Golden {
        scheme: "DL_DETECT",
        mix_digest: 0x9cadbec0d6ada6b3,
        ycsbe_commits: 150,
        ycsbe_aborts: 0,
        ycsbe_tuples: 600,
        ycsbe_scans: 159,
        ycsbe_digest: 0xc85f7c4b5958a5bf,
    },
    Golden {
        scheme: "NO_WAIT",
        mix_digest: 0x9cadbec0d6ada6b3,
        ycsbe_commits: 150,
        ycsbe_aborts: 0,
        ycsbe_tuples: 600,
        ycsbe_scans: 159,
        ycsbe_digest: 0xc85f7c4b5958a5bf,
    },
    Golden {
        scheme: "WAIT_DIE",
        mix_digest: 0x9cadbec0d6ada6b3,
        ycsbe_commits: 150,
        ycsbe_aborts: 0,
        ycsbe_tuples: 600,
        ycsbe_scans: 159,
        ycsbe_digest: 0xc85f7c4b5958a5bf,
    },
    Golden {
        scheme: "TIMESTAMP",
        mix_digest: 0x9cadbec0d6ada6b3,
        ycsbe_commits: 150,
        ycsbe_aborts: 0,
        ycsbe_tuples: 600,
        ycsbe_scans: 159,
        ycsbe_digest: 0xc85f7c4b5958a5bf,
    },
    Golden {
        scheme: "MVCC",
        mix_digest: 0x9cadbec0d6ada6b3,
        ycsbe_commits: 150,
        ycsbe_aborts: 0,
        ycsbe_tuples: 600,
        ycsbe_scans: 159,
        ycsbe_digest: 0xc85f7c4b5958a5bf,
    },
    Golden {
        scheme: "OCC",
        mix_digest: 0x9cadbec0d6ada6b3,
        ycsbe_commits: 150,
        ycsbe_aborts: 1,
        ycsbe_tuples: 600,
        ycsbe_scans: 160,
        ycsbe_digest: 0xc85f7c4b5958a5bf,
    },
    Golden {
        scheme: "HSTORE",
        mix_digest: 0x9cadbec0d6ada6b3,
        ycsbe_commits: 150,
        ycsbe_aborts: 0,
        ycsbe_tuples: 600,
        ycsbe_scans: 159,
        ycsbe_digest: 0xc85f7c4b5958a5bf,
    },
    Golden {
        scheme: "SILO",
        mix_digest: 0x9cadbec0d6ada6b3,
        ycsbe_commits: 150,
        ycsbe_aborts: 1,
        ycsbe_tuples: 600,
        ycsbe_scans: 160,
        ycsbe_digest: 0xc85f7c4b5958a5bf,
    },
    Golden {
        scheme: "TICTOC",
        mix_digest: 0x9cadbec0d6ada6b3,
        ycsbe_commits: 150,
        ycsbe_aborts: 1,
        ycsbe_tuples: 600,
        ycsbe_scans: 160,
        ycsbe_digest: 0xc85f7c4b5958a5bf,
    },
];

fn parts(scheme: CcScheme) -> Vec<PartId> {
    if scheme == CcScheme::HStore {
        vec![0]
    } else {
        vec![]
    }
}

/// Deterministic mixed transaction `i`. Keys inserted at `i ≡ 0 (mod 5)`
/// are updated at `i+1` and deleted at `i+2`, so insert/update/delete
/// ordering and index withdrawal are all on the digest's hook; arm 3
/// range-scans through each scheme's phantom machinery.
fn mix_txn(ctx: &mut WorkerCtx, scheme: CcScheme, i: u64) {
    let p = parts(scheme);
    let r = ctx.run_txn(&p, |t| {
        t.update_counter(TABLE, (i * 37) % BASE_ROWS, 1, 1)?;
        match i % 5 {
            0 => t.insert(TABLE, 10_000 + i, |s, d| {
                row::set_u64(s, d, 0, 10_000 + i);
                row::set_u64(s, d, 1, i + 3);
            })?,
            1 if i >= 5 => {
                t.update(TABLE, 10_000 + (i - 1), |s, d| row::set_u64(s, d, 1, i * 7))?
            }
            2 if i >= 10 => t.delete(TABLE, 10_000 + (i - 2))?,
            3 => {
                let low = (i * 13) % BASE_ROWS;
                let (n, sum) = t.scan_sum_u64(TABLE, low, low + 9, 1)?;
                // Fold the scan's observation back into the state so a
                // wrong scan result flips the digest, not just stats.
                t.update(TABLE, low, |s, d| {
                    row::set_u64(s, d, 2, sum ^ n as u64);
                })?;
            }
            _ => {
                let v = t.read_u64(TABLE, (i * 13) % BASE_ROWS, 1)?;
                t.update(TABLE, (i * 13) % BASE_ROWS, |s, d| {
                    row::set_u64(s, d, 1, v + 1)
                })?;
            }
        }
        Ok(())
    });
    r.unwrap_or_else(|e| panic!("{scheme}: mix txn {i} failed: {e}"));
}

/// The hand-rolled mix through the public worker API; returns the final
/// state digest.
fn run_mix(scheme: CcScheme) -> u64 {
    let mut cat = Catalog::new();
    cat.add_ordered_table("t", Schema::key_plus_payload(3, 8), 4_000);
    let mut cfg = EngineConfig::new(scheme, 1);
    cfg.epoch_interval_us = 0; // manual epochs: nothing wall-clock-driven
    let db = Database::new(cfg, cat).unwrap();
    db.load_table(TABLE, 0..BASE_ROWS, |s, r, k| {
        row::set_u64(s, r, 0, k);
        row::set_u64(s, r, 1, 1_000);
        row::set_u64(s, r, 2, 0);
    })
    .unwrap();
    let mut ctx = db.worker(0);
    for i in 0..MIX_TXNS {
        mix_txn(&mut ctx, scheme, i);
    }
    db.state_digest()
}

/// The generator-driven YCSB-E bounded run (the benchmark driver's
/// monomorphized path); returns `(commits, aborts, tuples, scans, digest)`.
fn run_ycsbe(scheme: CcScheme) -> (u64, u64, u64, u64, u64) {
    let cfg = YcsbConfig {
        table_rows: 2_000,
        theta: 0.6,
        insert_capacity: 2_000,
        ..YcsbConfig::ycsb_e(0.3)
    };
    let db = Database::new(EngineConfig::new(scheme, 1), ycsb::catalog(&cfg)).unwrap();
    db.load_table(0, 0..cfg.table_rows, ycsb::init_row).unwrap();
    let mut g = YcsbGen::new(cfg, 0xD00D_F00D);
    let gens = vec![Box::new(move || g.next_txn()) as Box<dyn FnMut() -> TxnTemplate + Send>];
    let out = run_workers_bounded(&db, gens, 150);
    (
        out.stats.commits,
        out.stats.total_aborts(),
        out.stats.tuples_committed,
        out.stats.scans,
        db.state_digest(),
    )
}

fn observe(scheme: CcScheme) -> Golden {
    let mix_digest = run_mix(scheme);
    let (c, a, t, s, d) = run_ycsbe(scheme);
    Golden {
        scheme: scheme.name(),
        mix_digest,
        ycsbe_commits: c,
        ycsbe_aborts: a,
        ycsbe_tuples: t,
        ycsbe_scans: s,
        ycsbe_digest: d,
    }
}

fn assert_golden(scheme: CcScheme) {
    let pinned = GOLDEN
        .iter()
        .find(|g| g.scheme == scheme.name())
        .unwrap_or_else(|| panic!("{scheme}: no golden row — regenerate the table"));
    let observed = observe(scheme);
    assert_eq!(
        &observed, pinned,
        "{scheme}: seeded run diverged from its pre-refactor golden digest"
    );
}

/// Every scheme must have a golden row and vice versa (a new scheme must
/// be pinned; a removed one must be unpinned).
#[test]
fn golden_table_covers_all_schemes() {
    let pinned: Vec<&str> = GOLDEN.iter().map(|g| g.scheme).collect();
    let all: Vec<&str> = CcScheme::ALL.iter().map(|s| s.name()).collect();
    assert_eq!(pinned, all, "golden table out of sync with CcScheme::ALL");
}

macro_rules! golden_tests {
    ($($name:ident => $scheme:expr,)*) => {
        $(
            #[test]
            fn $name() {
                assert_golden($scheme);
            }
        )*
    };
}

golden_tests! {
    golden_dl_detect => CcScheme::DlDetect,
    golden_no_wait => CcScheme::NoWait,
    golden_wait_die => CcScheme::WaitDie,
    golden_timestamp => CcScheme::Timestamp,
    golden_mvcc => CcScheme::Mvcc,
    golden_occ => CcScheme::Occ,
    golden_hstore => CcScheme::HStore,
    golden_silo => CcScheme::Silo,
    golden_tictoc => CcScheme::TicToc,
}

/// Prints a fresh `GOLDEN` table. Run with
/// `cargo test --test golden_digests -- --ignored --nocapture` and paste
/// the output over the pinned table after an intentional change.
#[test]
#[ignore = "regeneration helper, not a regression test"]
fn regenerate_golden_digests() {
    for &scheme in &CcScheme::ALL {
        let g = observe(scheme);
        println!(
            "    Golden {{\n        scheme: \"{}\",\n        mix_digest: {:#018x},\n        \
             ycsbe_commits: {},\n        ycsbe_aborts: {},\n        ycsbe_tuples: {},\n        \
             ycsbe_scans: {},\n        ycsbe_digest: {:#018x},\n    }},",
            g.scheme,
            g.mix_digest,
            g.ycsbe_commits,
            g.ycsbe_aborts,
            g.ycsbe_tuples,
            g.ycsbe_scans,
            g.ycsbe_digest
        );
    }
}
