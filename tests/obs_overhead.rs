//! Observability acceptance + overhead guards.
//!
//! Four gates, run in release by the conformance CI job:
//!
//! * **coverage** — every one of the nine schemes must populate the
//!   commit/abort latency histograms from the protocol-agnostic worker
//!   hot path (count equals the commit/abort counters; quantiles are
//!   monotone);
//! * **overhead** — the observability layer must stay cheap: a raw
//!   histogram record is a few nanoseconds, and a full bounded run with
//!   event tracing *on* must finish within a bounded factor of the same
//!   run with tracing *off* (the compile-out claim, measured);
//! * **export** — the metrics snapshot serializes to JSON and Prometheus
//!   text, and the trace dump reconstructs committed/aborted attempt
//!   timelines including the WAL serial point;
//! * **conservation** — with the phase profiler on, every scheme's
//!   `phase_ns` must partition attempt wall time: Σ phases ≈ Σ attempt
//!   latencies (commit + abort histograms) within a bounded ε, and
//!   profiler-on vs profiler-off throughput stays within 1.05x.

use std::sync::Arc;
use std::time::Instant;

use abyss::common::rng::SplitMix64;
use abyss::common::{CcScheme, LatencyHisto, TxnTemplate};
use abyss::core::{run_workers_bounded, Database, EngineConfig, TxnOutcome};
use abyss::storage::FsyncPolicy;
use abyss::workload::ycsb::{self, YcsbConfig, YcsbGen};

const WORKERS: u32 = 2;

fn ycsb_cfg(scheme: CcScheme) -> YcsbConfig {
    let mut cfg = YcsbConfig {
        table_rows: 2_000,
        ..YcsbConfig::write_intensive(0.6)
    };
    if scheme == CcScheme::HStore {
        cfg.parts = WORKERS;
    }
    cfg
}

fn bounded_run(
    ecfg: EngineConfig,
    cfg: &YcsbConfig,
    txns: u64,
) -> (Arc<Database>, abyss::common::RunStats) {
    let workers = ecfg.workers;
    let db = Database::new(ecfg, ycsb::catalog(cfg)).expect("engine config");
    db.load_table(0, 0..cfg.table_rows, ycsb::init_row).unwrap();
    let gens: Vec<Box<dyn FnMut() -> TxnTemplate + Send>> = (0..workers)
        .map(|w| {
            let mut g = YcsbGen::new(cfg.clone(), 0xB0B ^ (u64::from(w) << 17)).for_worker(w);
            Box::new(move || g.next_txn()) as Box<dyn FnMut() -> TxnTemplate + Send>
        })
        .collect();
    let out = run_workers_bounded(&db, gens, txns);
    (db, out.stats)
}

fn assert_monotone(h: &LatencyHisto, what: &str) {
    let qs = [h.p50(), h.p90(), h.p99(), h.p999(), h.max()];
    assert!(
        qs.windows(2).all(|w| w[0] <= w[1]),
        "{what}: quantiles not monotone: {qs:?}"
    );
}

/// Every scheme's hot path must feed the histograms: one sample per
/// committed attempt, one per aborted attempt, no more, no less.
#[test]
fn all_nine_schemes_expose_commit_latency_quantiles() {
    for scheme in CcScheme::ALL {
        let cfg = ycsb_cfg(scheme);
        let (_db, stats) = bounded_run(EngineConfig::new(scheme, WORKERS), &cfg, 300);
        assert!(stats.commits > 0, "{scheme}: no commits");
        assert_eq!(
            stats.commit_latency.count(),
            stats.commits,
            "{scheme}: commit histogram count != commits"
        );
        assert_eq!(
            stats.abort_latency.count(),
            stats.total_aborts(),
            "{scheme}: abort histogram count != aborts"
        );
        assert!(
            stats.commit_latency.p50() > 0,
            "{scheme}: zero median commit latency"
        );
        assert_monotone(&stats.commit_latency, &format!("{scheme} commit"));
        assert_monotone(&stats.abort_latency, &format!("{scheme} abort"));
    }
}

/// A raw histogram record is branch-light integer math — guard its cost
/// so nobody turns the hot-path call into something expensive.
#[test]
fn histogram_record_cost_is_bounded() {
    const N: u64 = 1_000_000;
    let mut rng = SplitMix64::new(0x0B5E_7A11);
    let mut h = LatencyHisto::new();
    let start = Instant::now();
    for _ in 0..N {
        h.record(rng.next_u64() >> (rng.next_u64() % 48));
    }
    let ns_per_record = start.elapsed().as_nanos() as f64 / N as f64;
    assert_eq!(h.count(), N);
    // Generous even for CI noise: the real cost is a few ns in release.
    let bound = if cfg!(debug_assertions) {
        2_500.0
    } else {
        250.0
    };
    assert!(
        ns_per_record < bound,
        "histogram record cost {ns_per_record:.1} ns/op exceeds {bound} ns"
    );
}

/// The tracing compile-out claim, measured: the same seeded bounded run
/// with event tracing on must finish within 2x of tracing off (the real
/// overhead is a few percent; 2x absorbs CI scheduling noise).
#[test]
fn tracing_overhead_within_guard() {
    let cfg = ycsb_cfg(CcScheme::NoWait);
    let txns: u64 = if cfg!(debug_assertions) {
        2_000
    } else {
        10_000
    };
    let timed = |trace: bool| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let mut ecfg = EngineConfig::new(CcScheme::NoWait, 1);
            if trace {
                ecfg = ecfg.with_tracing(4096);
            }
            let start = Instant::now();
            let (_db, stats) = bounded_run(ecfg, &cfg, txns);
            assert_eq!(
                stats.commits, txns,
                "bounded run must commit every template"
            );
            best = best.min(start.elapsed().as_secs_f64());
        }
        best
    };
    let off = timed(false);
    let on = timed(true);
    let ratio = on / off;
    println!("tracing overhead: off={off:.4}s on={on:.4}s ratio={ratio:.3}");
    assert!(
        ratio <= 2.0,
        "tracing-on run took {ratio:.2}x the tracing-off run (bound 2.0)"
    );
}

/// The profiler's accounting identity, checked per scheme: with the
/// breakdown on, the seven phase buckets must partition attempt time.
/// Both sides measure the same window (`PhaseClock::start_attempt` and
/// the latency stopwatch both arm at `begin`, both close at the
/// commit/abort record), but the clock's rdtsc spans are converted
/// through a one-shot calibration against `Instant`, so allow a
/// proportional ε plus a constant slack for scheduling noise between
/// the two stamps.
#[test]
fn phase_accounting_conserves_attempt_time() {
    for scheme in CcScheme::ALL {
        let cfg = ycsb_cfg(scheme);
        let ecfg = EngineConfig::new(scheme, WORKERS).with_breakdown();
        let (db, stats) = bounded_run(ecfg, &cfg, 400);
        assert!(stats.commits > 0, "{scheme}: no commits");

        let phase_total = stats.phase_ns.total();
        assert!(phase_total > 0, "{scheme}: breakdown on but phase_ns empty");
        let attempt_total = stats.commit_latency.sum() + stats.abort_latency.sum();
        let diff = phase_total.abs_diff(attempt_total);
        let bound = attempt_total / 10 + 2_000_000; // 10% + 2 ms slack
        assert!(
            diff <= bound,
            "{scheme}: phase sum {phase_total} vs attempt time {attempt_total} \
             differ by {diff} (bound {bound})"
        );

        // The live accumulator must agree with the merged per-worker stats.
        let acc = db
            .phase_totals()
            .expect("breakdown enabled but no accumulator");
        assert_eq!(
            acc.total(),
            phase_total,
            "{scheme}: database gauge diverged from merged worker stats"
        );
    }
}

/// The compile-out claim for the phase profiler, measured the same way
/// as the tracing guard: a seeded bounded run with the breakdown on
/// must stay within 1.05x of the same run with it off (release; debug
/// builds pay relatively more for the unoptimized span arithmetic).
/// TIMESTAMP with a YCSB-E-style scan mix is the probe: scans and row
/// copies give every span real work to amortize the ~10 ns TSC stamp
/// against. (On pure sub-100 ns point ops the three stamps per access
/// are a visible double-digit percentage — the breakdown is a profiling
/// mode, enabled per run, not free on degenerate microbenchmarks.)
#[test]
fn breakdown_overhead_within_guard() {
    let scheme = CcScheme::Timestamp;
    let cfg = YcsbConfig {
        scan_pct: 0.6,
        scan_max_len: 100,
        ..ycsb_cfg(scheme)
    };
    let txns: u64 = if cfg!(debug_assertions) { 1_000 } else { 5_000 };
    let timed = |breakdown: bool| -> f64 {
        let mut ecfg = EngineConfig::new(scheme, 1);
        if breakdown {
            ecfg = ecfg.with_breakdown();
        }
        let start = Instant::now();
        let (_db, stats) = bounded_run(ecfg, &cfg, txns);
        assert!(stats.commits > 0, "bounded run produced no commits");
        start.elapsed().as_secs_f64()
    };
    // One throwaway run to settle caches and clocks, then interleave the
    // modes and keep each one's best to cancel drift.
    let _ = timed(true);
    let (mut off, mut on) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..7 {
        off = off.min(timed(false));
        on = on.min(timed(true));
    }
    let ratio = on / off;
    println!("breakdown overhead: off={off:.4}s on={on:.4}s ratio={ratio:.3}");
    let bound = if cfg!(debug_assertions) { 1.5 } else { 1.05 };
    assert!(
        ratio <= bound,
        "breakdown-on run took {ratio:.3}x the breakdown-off run (bound {bound})"
    );
}

/// End-to-end export: logging + tracing on, multi-worker run, then the
/// snapshot must serialize to both formats with the durability gauges
/// live, and the trace dump must reconstruct attempt timelines.
#[test]
fn metrics_snapshot_and_trace_dump_integrate() {
    let scheme = CcScheme::Silo;
    let cfg = ycsb_cfg(scheme);
    let wal_dir = std::env::temp_dir().join(format!("abyss-obs-overhead-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_dir);
    let ecfg = EngineConfig::new(scheme, WORKERS)
        .with_logging(&wal_dir, FsyncPolicy::Group)
        .with_tracing(1 << 14);
    let (db, stats) = bounded_run(ecfg, &cfg, 200);
    assert!(stats.commits > 0);

    let snap = db.metrics_snapshot();
    assert_eq!(snap.scheme, "SILO");
    assert!(snap.log_records > 0, "logging on but no records counted");
    assert!(snap.durable_epoch.is_some(), "durable epoch missing");
    assert!(snap.trace_events > 0, "tracing on but no events counted");

    let json = snap.to_json();
    for key in [
        "\"epoch_lag\":",
        "\"durable_epoch_lag\":",
        "\"wal_backlog_bytes\":",
        "\"log_fsyncs\":",
        "\"waitsfor_edges\":",
        "\"mempool_live_blocks\":",
        "\"tables\":",
    ] {
        assert!(json.contains(key), "snapshot JSON missing {key}: {json}");
    }

    let prom = snap.to_prometheus();
    for line in [
        "# TYPE abyss_epoch_lag gauge",
        "# TYPE abyss_wal_fsyncs_total counter",
        "abyss_epoch_durable_lag",
        "abyss_mempool_live_blocks",
        "abyss_table_live_keys{table=\"usertable\"}",
    ] {
        assert!(
            prom.contains(line),
            "prometheus text missing {line:?}:\n{prom}"
        );
    }

    let dump = db.trace_dump().expect("tracing enabled");
    let summaries = dump.txn_summaries();
    assert!(!summaries.is_empty(), "no attempts reconstructed");
    let committed: Vec<_> = summaries
        .iter()
        .filter(|s| matches!(s.outcome, TxnOutcome::Committed { .. }))
        .collect();
    assert!(!committed.is_empty(), "no committed attempts in trace");
    // Logging on: committed attempts that fit whole in the ring must
    // carry their WAL serial point, and time must move forward.
    for s in &committed {
        if let (Some(begin), TxnOutcome::Committed { wal }) = (s.begin_ns, &s.outcome) {
            assert!(begin <= s.end_ns, "txn {:#x}: time ran backwards", s.txn);
            assert!(
                wal.is_some(),
                "txn {:#x}: logged commit without serial point",
                s.txn
            );
        }
    }
    drop(db);
    let _ = std::fs::remove_dir_all(&wal_dir);
}
