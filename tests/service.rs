//! Serving-layer conformance: the transaction front end under overload.
//!
//! Producers saturate a two-priority [`TxnService`] (bounded shards,
//! non-blocking admission) until load shedding engages, then the harness
//! checks the three service-level guarantees:
//!
//! * **No accepted ticket is lost** — every `submit` that returned a
//!   ticket resolves exactly once (committed, aborted, failed, or shed),
//!   and the admission counters reconcile with the per-producer tallies.
//! * **Priority holds under overload** — with both classes admitted at
//!   the same shard-depth bound, the starvation-free high-first dequeue
//!   must give the high class a strictly better queue-to-ack tail than
//!   the 90%-share low class.
//! * **Drain is exact** — after graceful shutdown, the database state
//!   equals a serial replay of exactly the committed templates on a
//!   fresh, identically-loaded database. The stored procedures' updates
//!   are commutative increments, so any serializable interleaving must
//!   match the serial digest — a lost write, double-apply, or
//!   phantom-resolved ticket shows up as a per-key mismatch.
//!
//! Runs against NO_WAIT (abort-heavy 2PL) and SILO (epoch OCC) — the two
//! ends of the pessimistic/optimistic spectrum.

use std::sync::Arc;

use abyss::common::{CcScheme, Priority};
use abyss::core::executor::run_template;
use abyss::core::{
    Database, EngineConfig, ProcRegistry, ServeConfig, SubmitError, TicketStatus, TxnService,
    TxnTicket,
};
use abyss::storage::{row, Catalog, Schema};
use abyss::workload::procs;
use abyss::workload::ycsb::YCSB_TABLE;

const ROWS: u64 = 512;
const WORKERS: u32 = 2;
const PRODUCERS: u32 = 3;
const TXNS_PER_PRODUCER: u64 = 2_000;
const REQS_PER_TXN: usize = 8;
const HIGH_PCT: f64 = 0.10;

fn build_db(scheme: CcScheme) -> Arc<Database> {
    let mut cat = Catalog::new();
    cat.add_table("usertable", Schema::key_plus_payload(2, 8), ROWS * 2);
    let db = Database::new(EngineConfig::new(scheme, WORKERS), cat).expect("engine config");
    db.load_table(YCSB_TABLE, 0..ROWS, |s, r, k| {
        row::set_u64(s, r, 0, k);
        row::set_u64(s, r, 1, 0);
    })
    .expect("load");
    db
}

fn registry() -> ProcRegistry {
    let mut reg = ProcRegistry::new();
    for (name, f) in procs::all() {
        reg.register(name, Box::new(f));
    }
    reg
}

/// Deterministic per-producer argument stream: distinct uniform keys and
/// a 50/50 read/update mask, encoded through the same codec the service
/// decodes with.
fn draw_args(rng: &mut abyss::common::rng::Xoshiro256) -> Vec<u64> {
    let mut keys: Vec<u64> = Vec::with_capacity(REQS_PER_TXN);
    while keys.len() < REQS_PER_TXN {
        let k = rng.next_below(ROWS);
        if !keys.contains(&k) {
            keys.push(k);
        }
    }
    let mask = rng.next_u64() & ((1 << REQS_PER_TXN) - 1);
    procs::ycsb_rmw_args(mask, &keys)
}

struct ProducerLog {
    /// `(args, ticket)` for every submit that returned a ticket.
    tickets: Vec<(Vec<u64>, TxnTicket)>,
    queue_full: u64,
}

fn overload_run(scheme: CcScheme) {
    let db = build_db(scheme);
    // Equal admission bound for both classes (shed_depth == capacity, so
    // the high class's 2× depth allowance clamps to the same limit):
    // priority may only come from dequeue order, not a deeper queue.
    let cfg = ServeConfig {
        queue_capacity: 64,
        shed_depth: 64,
        block_on_full: false,
        high_burst: 8,
        producer_hint: PRODUCERS,
        ..ServeConfig::default()
    };
    let svc = Arc::new(TxnService::start(Arc::clone(&db), registry(), cfg));
    let ycsb = svc.proc_id(procs::PROC_YCSB_RMW).expect("registered");

    let mut logs: Vec<ProducerLog> = Vec::new();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let svc = Arc::clone(&svc);
            handles.push(s.spawn(move || {
                let mut rng =
                    abyss::common::rng::Xoshiro256::seed_from(0xC0FFEE ^ (u64::from(p) << 32));
                let mut log = ProducerLog {
                    tickets: Vec::new(),
                    queue_full: 0,
                };
                for _ in 0..TXNS_PER_PRODUCER {
                    let prio = if rng.chance(HIGH_PCT) {
                        Priority::High
                    } else {
                        Priority::Low
                    };
                    let args = draw_args(&mut rng);
                    match svc.submit_id(ycsb, &args, prio) {
                        Ok(t) => log.tickets.push((args, t)),
                        Err(SubmitError::QueueFull) => log.queue_full += 1,
                        Err(e) => panic!("unexpected submit error: {e}"),
                    }
                }
                log
            }));
        }
        logs = handles.into_iter().map(|h| h.join().unwrap()).collect();
    });

    let accepted = svc.accepted();
    let svc = Arc::into_inner(svc).expect("producers joined");
    let stats = svc.shutdown();

    // ---- (a) no accepted ticket lost -------------------------------------
    let mut by_status = [0u64; 4]; // committed, aborted, failed, shed
    let mut committed_args: Vec<&[u64]> = Vec::new();
    for log in &logs {
        for (args, t) in &log.tickets {
            assert!(t.is_resolved(), "unresolved ticket after shutdown");
            match t.status() {
                TicketStatus::Committed => {
                    by_status[0] += 1;
                    committed_args.push(args);
                }
                TicketStatus::Aborted(_) => by_status[1] += 1,
                TicketStatus::Failed => by_status[2] += 1,
                TicketStatus::Pending => unreachable!("resolved ticket is pending"),
                TicketStatus::Shed => by_status[3] += 1,
            }
        }
    }
    let ticketed: u64 = logs.iter().map(|l| l.tickets.len() as u64).sum();
    let queue_full: u64 = logs.iter().map(|l| l.queue_full).sum();
    assert_eq!(
        ticketed + queue_full,
        u64::from(PRODUCERS) * TXNS_PER_PRODUCER,
        "every submission accounted for"
    );
    let shed_total: u64 = stats.sheds.iter().sum();
    assert_eq!(by_status[3], shed_total, "shed tickets match shed counters");
    assert_eq!(
        by_status[0] + by_status[1] + by_status[2],
        accepted,
        "every accepted request resolved by a worker"
    );
    assert_eq!(by_status[0], stats.commits, "commit counters agree");
    assert_eq!(by_status[2], 0, "no internal failures");
    assert!(
        shed_total > 0,
        "{scheme:?}: overload never engaged shedding (accepted={accepted})"
    );

    // ---- (b) high priority beats low under overload ----------------------
    let hi = &stats.queue_ack_latency[Priority::High.idx()];
    let lo = &stats.queue_ack_latency[Priority::Low.idx()];
    assert!(hi.count() > 0 && lo.count() > 0, "both classes were served");
    // The mean would be diluted by the shallow-queue requests accepted
    // before the backlog builds; the p99 lives in the deep phase where
    // priority dequeue decides who waits.
    assert!(
        hi.p99() <= lo.p99(),
        "{scheme:?}: high-class p99 {}ns above low-class p99 {}ns under overload",
        hi.p99(),
        lo.p99()
    );

    // ---- (c) drain digest == serial replay of committed txns -------------
    let replay_db = build_db(CcScheme::NoWait);
    let mut ctx = replay_db.worker(0);
    for args in &committed_args {
        let tmpl = procs::ycsb_rmw(args);
        run_template(&mut ctx, &tmpl).expect("serial replay commits");
    }
    for k in 0..ROWS {
        let live = row::get_u64(db.schema(YCSB_TABLE), &db.peek(YCSB_TABLE, k).unwrap(), 1);
        let replayed = row::get_u64(
            replay_db.schema(YCSB_TABLE),
            &replay_db.peek(YCSB_TABLE, k).unwrap(),
            1,
        );
        assert_eq!(
            live, replayed,
            "{scheme:?}: key {k} diverged from serial replay of committed txns"
        );
    }
}

#[test]
fn overload_conformance_no_wait() {
    overload_run(CcScheme::NoWait);
}

#[test]
fn overload_conformance_silo() {
    overload_run(CcScheme::Silo);
}

/// Cancellation from a token mid-stream: producers start seeing `Stopped`,
/// the drain still resolves every accepted ticket, and shutdown returns.
#[test]
fn cancel_token_stops_admission_and_drains() {
    let db = build_db(CcScheme::NoWait);
    let svc = TxnService::start(db, registry(), ServeConfig::default());
    let ycsb = svc.proc_id(procs::PROC_YCSB_RMW).unwrap();
    let mut rng = abyss::common::rng::Xoshiro256::seed_from(7);
    let mut tickets = Vec::new();
    for _ in 0..100 {
        tickets.push(
            svc.submit_id(ycsb, &draw_args(&mut rng), Priority::Low)
                .unwrap(),
        );
    }
    let token = svc.cancel_token();
    token.cancel();
    assert_eq!(
        svc.submit_id(ycsb, &draw_args(&mut rng), Priority::High)
            .unwrap_err(),
        SubmitError::Stopped
    );
    let stats = svc.shutdown();
    for t in &tickets {
        assert!(t.is_resolved(), "cancelled service must still drain");
    }
    assert!(stats.commits <= 100);
}
