//! Deterministic serializability tests for the real engine.
//!
//! The randomized cross-scheme anomaly matrix (lost updates, write skew,
//! read-only snapshot anomalies, double-scan phantoms, delete
//! resurrection — with fault-injection power checks) lives in
//! `tests/conformance.rs`. This file keeps:
//!
//! * **read atomicity** — a transaction reading two tuples maintained as
//!   equal by writers must never observe them unequal (torn reads), for
//!   every scheme;
//! * **deterministic gap anomalies** the randomized matrix cannot
//!   construct on demand: T/O inserts/scans racing committed newer scans
//!   and deletes, and the OCC-family cross-insert write skew that
//!   node-set validation must catch.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use abyss_common::{CcScheme, PartId};
use abyss_core::{Database, EngineConfig};
use abyss_storage::{row, Catalog, Schema};

const ACCOUNTS: u64 = 64;
const WORKERS: u32 = 4;
const INITIAL: u64 = 1_000;

fn build_db(scheme: CcScheme) -> Arc<Database> {
    let mut cat = Catalog::new();
    cat.add_table("accounts", Schema::key_plus_payload(2, 8), ACCOUNTS * 2);
    let mut cfg = EngineConfig::new(scheme, WORKERS);
    // Keep DL_DETECT aggressive so the test finishes fast even when the
    // random transfers deadlock.
    cfg.dl_timeout_us = 100;
    let db = Database::new(cfg, cat).unwrap();
    db.load_table(0, 0..ACCOUNTS, |s, r, k| {
        row::set_u64(s, r, 0, k);
        row::set_u64(s, r, 1, INITIAL); // balance
                                        // Mirror column for the read-atomicity check: must start *equal*
                                        // to column 1 — the invariant holds from the initial load onward.
        row::set_u64(s, r, 2, INITIAL);
    })
    .unwrap();
    db
}

fn partitions_for(scheme: CcScheme, keys: &[u64]) -> Vec<PartId> {
    if scheme != CcScheme::HStore {
        return vec![];
    }
    let mut p: Vec<PartId> = keys
        .iter()
        .map(|k| (k % u64::from(WORKERS)) as PartId)
        .collect();
    p.sort_unstable();
    p.dedup();
    p
}

/// Cheap deterministic per-thread RNG.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

fn read_atomicity_check(scheme: CcScheme) {
    let db = build_db(scheme);
    let stop = AtomicBool::new(false);
    // Writers keep columns 1 and 2 of each tuple equal; readers must never
    // see them differ.
    crossbeam::thread::scope(|s| {
        for w in 0..2 {
            let db = Arc::clone(&db);
            let stop = &stop;
            s.spawn(move |_| {
                let mut ctx = db.worker(w);
                let mut rng = Rng(42 + u64::from(w));
                while !stop.load(Ordering::Relaxed) {
                    let key = rng.next() % 4;
                    let parts = partitions_for(scheme, &[key]);
                    ctx.run_txn(&parts, |t| {
                        t.update(0, key, |s, d| {
                            let v = row::get_u64(s, d, 1) + 1;
                            row::set_u64(s, d, 1, v);
                            row::set_u64(s, d, 2, v);
                        })
                    })
                    .unwrap();
                }
            });
        }
        for w in 2..WORKERS {
            let db = Arc::clone(&db);
            let stop = &stop;
            s.spawn(move |_| {
                let mut ctx = db.worker(w);
                let mut rng = Rng(7 + u64::from(w));
                for _ in 0..1000 {
                    let key = rng.next() % 4;
                    let parts = partitions_for(scheme, &[key]);
                    let (a, b) = ctx
                        .run_txn(&parts, |t| {
                            let a = t.read_u64(0, key, 1)?;
                            let b = t.read_u64(0, key, 2)?;
                            Ok((a, b))
                        })
                        .unwrap();
                    assert_eq!(a, b, "{scheme}: torn read on key {key}");
                }
                stop.store(true, Ordering::Relaxed);
            });
        }
    })
    .unwrap();
}

/// Deterministic T/O gap anomalies the randomized phantom check cannot
/// construct on demand: an insert by an *older* timestamp landing after a
/// *newer* scan committed (leaf `scan_rts` must kill the inserter), and a
/// scan by an older timestamp arriving after a newer delete committed
/// (leaf `del_wts` must kill the scanner).
fn to_gap_db(scheme: CcScheme) -> Arc<Database> {
    let mut cat = Catalog::new();
    cat.add_ordered_table("scanned", Schema::key_plus_payload(1, 8), 256);
    let db = Database::new(EngineConfig::new(scheme, 2), cat).unwrap();
    db.load_table(0, (0..16u64).map(|k| k * 2), |s, r, k| {
        row::set_u64(s, r, 0, k);
        row::set_u64(s, r, 1, 1);
    })
    .unwrap();
    db
}

fn older_insert_after_newer_scan_aborts(scheme: CcScheme) {
    let db = to_gap_db(scheme);
    let mut old = db.worker(0);
    let mut new = db.worker(1);
    old.begin(&[], None).unwrap(); // smaller timestamp
    new.begin(&[], None).unwrap();
    new.scan(0, 0, 40, |_, _, _| {}).unwrap();
    new.commit().unwrap();
    // The older transaction now tries to plant a key inside the range the
    // newer one already scanned and committed: it must not commit.
    old.insert(0, 5, |s, d| {
        row::set_u64(s, d, 0, 5);
        row::set_u64(s, d, 1, 1);
    })
    .unwrap();
    let r = old.commit();
    assert!(
        r.is_err(),
        "{scheme}: older insert behind a committed newer scan must abort"
    );
    assert!(db.peek(0, 5).is_err(), "{scheme}: phantom key was planted");
}

fn older_scan_after_newer_delete_aborts(scheme: CcScheme) {
    let db = to_gap_db(scheme);
    let mut old = db.worker(0);
    let mut new = db.worker(1);
    old.begin(&[], None).unwrap(); // smaller timestamp
    new.begin(&[], None).unwrap();
    new.delete(0, 8).unwrap();
    new.commit().unwrap();
    // The older scan can no longer reconstruct key 8 (no version store for
    // removed index entries): it must abort rather than silently miss it.
    let r = old.scan(0, 0, 40, |_, _, _| {});
    assert!(
        r.is_err(),
        "{scheme}: older scan across a newer committed delete must abort"
    );
    old.abort(abyss_common::AbortReason::UserAbort);
}

/// OCC/SILO/TICTOC cross-insert write skew: two transactions each scan the
/// same range and each insert a fresh key into it. Whichever commits
/// second must fail node-set validation — its scan missed the other's
/// committed insert — and a transaction inserting into its *own* scanned
/// range must still commit (the own-insert node-set refresh must not
/// absorb foreign bumps, and must not self-abort either).
fn occ_cross_insert_write_skew(scheme: CcScheme) {
    // Few enough rows that the inserts below don't split the leaf — a
    // split is a legitimate (conservative) extra abort that would mask
    // what this test pins down.
    let mut cat = Catalog::new();
    cat.add_ordered_table("scanned", Schema::key_plus_payload(1, 8), 256);
    let db = Database::new(EngineConfig::new(scheme, 2), cat).unwrap();
    db.load_table(0, (0..8u64).map(|k| k * 2), |s, r, k| {
        row::set_u64(s, r, 0, k);
        row::set_u64(s, r, 1, 1);
    })
    .unwrap();
    let mut a = db.worker(0);
    let mut b = db.worker(1);
    a.begin(&[], None).unwrap();
    b.begin(&[], None).unwrap();
    a.scan(0, 0, 100, |_, _, _| {}).unwrap();
    b.scan(0, 0, 100, |_, _, _| {}).unwrap();
    a.insert(0, 41, |s, d| row::set_u64(s, d, 0, 41)).unwrap();
    b.insert(0, 43, |s, d| row::set_u64(s, d, 0, 43)).unwrap();
    a.commit().unwrap();
    let r = b.commit();
    assert!(
        r.is_err(),
        "{scheme}: committed a scan that missed a concurrent committed insert"
    );
    assert!(db.peek(0, 41).is_ok());
    assert!(
        db.peek(0, 43).is_err(),
        "{scheme}: aborted insert left the key behind"
    );
    // Self-insert into a self-scanned range commits fine.
    a.begin(&[], None).unwrap();
    a.scan(0, 0, 100, |_, _, _| {}).unwrap();
    a.insert(0, 45, |s, d| row::set_u64(s, d, 0, 45)).unwrap();
    a.commit()
        .unwrap_or_else(|e| panic!("{scheme}: self-insert into own scan range aborted: {e}"));
}

#[test]
fn occ_cross_insert_write_skew_aborts() {
    occ_cross_insert_write_skew(CcScheme::Occ);
}

#[test]
fn silo_cross_insert_write_skew_aborts() {
    occ_cross_insert_write_skew(CcScheme::Silo);
}

#[test]
fn tictoc_cross_insert_write_skew_aborts() {
    occ_cross_insert_write_skew(CcScheme::TicToc);
}

#[test]
fn timestamp_gap_rts_blocks_older_inserter() {
    older_insert_after_newer_scan_aborts(CcScheme::Timestamp);
}

#[test]
fn mvcc_gap_rts_blocks_older_inserter() {
    older_insert_after_newer_scan_aborts(CcScheme::Mvcc);
}

#[test]
fn timestamp_del_wts_blocks_older_scanner() {
    older_scan_after_newer_delete_aborts(CcScheme::Timestamp);
}

#[test]
fn mvcc_del_wts_blocks_older_scanner() {
    older_scan_after_newer_delete_aborts(CcScheme::Mvcc);
}

macro_rules! scheme_tests {
    ($($name:ident => $scheme:expr),+ $(,)?) => {
        const LISTED_SCHEMES: &[CcScheme] = &[$($scheme),+];

        /// Sync guard: the per-scheme test list must track `CcScheme::ALL`
        /// exactly, so a new scheme cannot be silently skipped.
        #[test]
        fn read_atomicity_covers_every_scheme() {
            assert_eq!(
                LISTED_SCHEMES,
                &CcScheme::ALL,
                "read-atomicity scheme list out of sync with CcScheme::ALL"
            );
        }

        mod read_atomicity {
            use super::*;
            $(#[test] fn $name() { read_atomicity_check($scheme); })+
        }
    };
}

scheme_tests! {
    dl_detect => CcScheme::DlDetect,
    no_wait => CcScheme::NoWait,
    wait_die => CcScheme::WaitDie,
    timestamp => CcScheme::Timestamp,
    mvcc => CcScheme::Mvcc,
    occ => CcScheme::Occ,
    hstore => CcScheme::HStore,
    silo => CcScheme::Silo,
    tictoc => CcScheme::TicToc,
}
