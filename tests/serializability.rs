//! Cross-scheme serializability tests for the real engine.
//!
//! Three classic anomalies, each checked under all eight schemes (the
//! paper's seven plus SILO) with genuinely concurrent workers:
//!
//! * **lost updates** — concurrent blind increments of hot counters must
//!   all survive;
//! * **conservation** — concurrent transfers between accounts must keep
//!   the total balance constant;
//! * **read atomicity** — a transaction that reads two tuples maintained
//!   as equal by writers must never observe them unequal.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use abyss_common::{CcScheme, PartId};
use abyss_core::{Database, EngineConfig};
use abyss_storage::{row, Catalog, Schema};

const ACCOUNTS: u64 = 64;
const WORKERS: u32 = 4;
const INITIAL: u64 = 1_000;

fn build_db(scheme: CcScheme) -> Arc<Database> {
    let mut cat = Catalog::new();
    cat.add_table("accounts", Schema::key_plus_payload(2, 8), ACCOUNTS * 2);
    let mut cfg = EngineConfig::new(scheme, WORKERS);
    // Keep DL_DETECT aggressive so the test finishes fast even when the
    // random transfers deadlock.
    cfg.dl_timeout_us = 100;
    let db = Database::new(cfg, cat).unwrap();
    db.load_table(0, 0..ACCOUNTS, |s, r, k| {
        row::set_u64(s, r, 0, k);
        row::set_u64(s, r, 1, INITIAL); // balance
                                        // Mirror column for the read-atomicity check: must start *equal*
                                        // to column 1 — the invariant holds from the initial load onward.
        row::set_u64(s, r, 2, INITIAL);
    })
    .unwrap();
    db
}

fn partitions_for(scheme: CcScheme, keys: &[u64]) -> Vec<PartId> {
    if scheme != CcScheme::HStore {
        return vec![];
    }
    let mut p: Vec<PartId> = keys
        .iter()
        .map(|k| (k % u64::from(WORKERS)) as PartId)
        .collect();
    p.sort_unstable();
    p.dedup();
    p
}

/// Cheap deterministic per-thread RNG.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

fn lost_update_check(scheme: CcScheme) {
    let db = build_db(scheme);
    let committed = AtomicU64::new(0);
    crossbeam::thread::scope(|s| {
        for w in 0..WORKERS {
            let db = Arc::clone(&db);
            let committed = &committed;
            s.spawn(move |_| {
                let mut ctx = db.worker(w);
                let mut rng = Rng(0x1234_5678 + u64::from(w));
                for _ in 0..500 {
                    let key = rng.next() % 8; // 8 hot keys
                    let parts = partitions_for(scheme, &[key]);
                    ctx.run_txn(&parts, |t| {
                        t.update(0, key, |s, d| {
                            row::fetch_add_u64(s, d, 1, 1);
                        })
                    })
                    .unwrap();
                    committed.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    })
    .unwrap();
    let expected = INITIAL * 8 + committed.load(Ordering::Relaxed);
    let total: u64 = (0..8)
        .map(|k| {
            let r = db.peek(0, k).unwrap();
            row::get_u64(db.schema(0), &r, 1)
        })
        .sum();
    assert_eq!(total, expected, "{scheme}: lost updates detected");
}

fn conservation_check(scheme: CcScheme) {
    let db = build_db(scheme);
    crossbeam::thread::scope(|s| {
        for w in 0..WORKERS {
            let db = Arc::clone(&db);
            s.spawn(move |_| {
                let mut ctx = db.worker(w);
                let mut rng = Rng(0x9999 + u64::from(w));
                for _ in 0..400 {
                    let from = rng.next() % ACCOUNTS;
                    let mut to = rng.next() % ACCOUNTS;
                    if to == from {
                        to = (to + 1) % ACCOUNTS;
                    }
                    let amount = rng.next() % 10;
                    let parts = partitions_for(scheme, &[from, to]);
                    ctx.run_txn(&parts, |t| {
                        let bal = t.read_u64(0, from, 1)?;
                        let transfer = amount.min(bal);
                        t.update(0, from, |s, d| {
                            let b = row::get_u64(s, d, 1);
                            row::set_u64(s, d, 1, b - transfer);
                        })?;
                        t.update(0, to, |s, d| {
                            let b = row::get_u64(s, d, 1);
                            row::set_u64(s, d, 1, b + transfer);
                        })?;
                        Ok(())
                    })
                    .unwrap();
                }
            });
        }
    })
    .unwrap();
    assert_eq!(
        db.sum_column(0, 1),
        INITIAL * ACCOUNTS,
        "{scheme}: money created or destroyed"
    );
}

fn read_atomicity_check(scheme: CcScheme) {
    let db = build_db(scheme);
    let stop = AtomicBool::new(false);
    // Writers keep columns 1 and 2 of each tuple equal; readers must never
    // see them differ.
    crossbeam::thread::scope(|s| {
        for w in 0..2 {
            let db = Arc::clone(&db);
            let stop = &stop;
            s.spawn(move |_| {
                let mut ctx = db.worker(w);
                let mut rng = Rng(42 + u64::from(w));
                while !stop.load(Ordering::Relaxed) {
                    let key = rng.next() % 4;
                    let parts = partitions_for(scheme, &[key]);
                    ctx.run_txn(&parts, |t| {
                        t.update(0, key, |s, d| {
                            let v = row::get_u64(s, d, 1) + 1;
                            row::set_u64(s, d, 1, v);
                            row::set_u64(s, d, 2, v);
                        })
                    })
                    .unwrap();
                }
            });
        }
        for w in 2..WORKERS {
            let db = Arc::clone(&db);
            let stop = &stop;
            s.spawn(move |_| {
                let mut ctx = db.worker(w);
                let mut rng = Rng(7 + u64::from(w));
                for _ in 0..1000 {
                    let key = rng.next() % 4;
                    let parts = partitions_for(scheme, &[key]);
                    let (a, b) = ctx
                        .run_txn(&parts, |t| {
                            let a = t.read_u64(0, key, 1)?;
                            let b = t.read_u64(0, key, 2)?;
                            Ok((a, b))
                        })
                        .unwrap();
                    assert_eq!(a, b, "{scheme}: torn read on key {key}");
                }
                stop.store(true, Ordering::Relaxed);
            });
        }
    })
    .unwrap();
}

macro_rules! scheme_tests {
    ($($name:ident => $scheme:expr),+ $(,)?) => {
        mod lost_updates {
            use super::*;
            $(#[test] fn $name() { lost_update_check($scheme); })+
        }
        mod conservation {
            use super::*;
            $(#[test] fn $name() { conservation_check($scheme); })+
        }
        mod read_atomicity {
            use super::*;
            $(#[test] fn $name() { read_atomicity_check($scheme); })+
        }
    };
}

scheme_tests! {
    dl_detect => CcScheme::DlDetect,
    no_wait => CcScheme::NoWait,
    wait_die => CcScheme::WaitDie,
    timestamp => CcScheme::Timestamp,
    mvcc => CcScheme::Mvcc,
    occ => CcScheme::Occ,
    hstore => CcScheme::HStore,
    silo => CcScheme::Silo,
}
