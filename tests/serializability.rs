//! Cross-scheme serializability tests for the real engine.
//!
//! Four classic anomalies, each checked under all eight schemes (the
//! paper's seven plus SILO) with genuinely concurrent workers:
//!
//! * **lost updates** — concurrent blind increments of hot counters must
//!   all survive;
//! * **conservation** — concurrent transfers between accounts must keep
//!   the total balance constant;
//! * **read atomicity** — a transaction that reads two tuples maintained
//!   as equal by writers must never observe them unequal;
//! * **phantoms** — a committed transaction that range-scans the same
//!   window twice must see identical key sets, no matter how many
//!   concurrent transactions insert into (or delete from) that window.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use abyss_common::{CcScheme, PartId};
use abyss_core::{Database, EngineConfig};
use abyss_storage::{row, Catalog, Schema};

const ACCOUNTS: u64 = 64;
const WORKERS: u32 = 4;
const INITIAL: u64 = 1_000;

fn build_db(scheme: CcScheme) -> Arc<Database> {
    let mut cat = Catalog::new();
    cat.add_table("accounts", Schema::key_plus_payload(2, 8), ACCOUNTS * 2);
    let mut cfg = EngineConfig::new(scheme, WORKERS);
    // Keep DL_DETECT aggressive so the test finishes fast even when the
    // random transfers deadlock.
    cfg.dl_timeout_us = 100;
    let db = Database::new(cfg, cat).unwrap();
    db.load_table(0, 0..ACCOUNTS, |s, r, k| {
        row::set_u64(s, r, 0, k);
        row::set_u64(s, r, 1, INITIAL); // balance
                                        // Mirror column for the read-atomicity check: must start *equal*
                                        // to column 1 — the invariant holds from the initial load onward.
        row::set_u64(s, r, 2, INITIAL);
    })
    .unwrap();
    db
}

fn partitions_for(scheme: CcScheme, keys: &[u64]) -> Vec<PartId> {
    if scheme != CcScheme::HStore {
        return vec![];
    }
    let mut p: Vec<PartId> = keys
        .iter()
        .map(|k| (k % u64::from(WORKERS)) as PartId)
        .collect();
    p.sort_unstable();
    p.dedup();
    p
}

/// Cheap deterministic per-thread RNG.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

fn lost_update_check(scheme: CcScheme) {
    let db = build_db(scheme);
    let committed = AtomicU64::new(0);
    crossbeam::thread::scope(|s| {
        for w in 0..WORKERS {
            let db = Arc::clone(&db);
            let committed = &committed;
            s.spawn(move |_| {
                let mut ctx = db.worker(w);
                let mut rng = Rng(0x1234_5678 + u64::from(w));
                for _ in 0..500 {
                    let key = rng.next() % 8; // 8 hot keys
                    let parts = partitions_for(scheme, &[key]);
                    ctx.run_txn(&parts, |t| {
                        t.update(0, key, |s, d| {
                            row::fetch_add_u64(s, d, 1, 1);
                        })
                    })
                    .unwrap();
                    committed.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    })
    .unwrap();
    let expected = INITIAL * 8 + committed.load(Ordering::Relaxed);
    let total: u64 = (0..8)
        .map(|k| {
            let r = db.peek(0, k).unwrap();
            row::get_u64(db.schema(0), &r, 1)
        })
        .sum();
    assert_eq!(total, expected, "{scheme}: lost updates detected");
}

fn conservation_check(scheme: CcScheme) {
    let db = build_db(scheme);
    crossbeam::thread::scope(|s| {
        for w in 0..WORKERS {
            let db = Arc::clone(&db);
            s.spawn(move |_| {
                let mut ctx = db.worker(w);
                let mut rng = Rng(0x9999 + u64::from(w));
                for _ in 0..400 {
                    let from = rng.next() % ACCOUNTS;
                    let mut to = rng.next() % ACCOUNTS;
                    if to == from {
                        to = (to + 1) % ACCOUNTS;
                    }
                    let amount = rng.next() % 10;
                    let parts = partitions_for(scheme, &[from, to]);
                    ctx.run_txn(&parts, |t| {
                        let bal = t.read_u64(0, from, 1)?;
                        let transfer = amount.min(bal);
                        t.update(0, from, |s, d| {
                            let b = row::get_u64(s, d, 1);
                            row::set_u64(s, d, 1, b - transfer);
                        })?;
                        t.update(0, to, |s, d| {
                            let b = row::get_u64(s, d, 1);
                            row::set_u64(s, d, 1, b + transfer);
                        })?;
                        Ok(())
                    })
                    .unwrap();
                }
            });
        }
    })
    .unwrap();
    assert_eq!(
        db.sum_column(0, 1),
        INITIAL * ACCOUNTS,
        "{scheme}: money created or destroyed"
    );
}

fn read_atomicity_check(scheme: CcScheme) {
    let db = build_db(scheme);
    let stop = AtomicBool::new(false);
    // Writers keep columns 1 and 2 of each tuple equal; readers must never
    // see them differ.
    crossbeam::thread::scope(|s| {
        for w in 0..2 {
            let db = Arc::clone(&db);
            let stop = &stop;
            s.spawn(move |_| {
                let mut ctx = db.worker(w);
                let mut rng = Rng(42 + u64::from(w));
                while !stop.load(Ordering::Relaxed) {
                    let key = rng.next() % 4;
                    let parts = partitions_for(scheme, &[key]);
                    ctx.run_txn(&parts, |t| {
                        t.update(0, key, |s, d| {
                            let v = row::get_u64(s, d, 1) + 1;
                            row::set_u64(s, d, 1, v);
                            row::set_u64(s, d, 2, v);
                        })
                    })
                    .unwrap();
                }
            });
        }
        for w in 2..WORKERS {
            let db = Arc::clone(&db);
            let stop = &stop;
            s.spawn(move |_| {
                let mut ctx = db.worker(w);
                let mut rng = Rng(7 + u64::from(w));
                for _ in 0..1000 {
                    let key = rng.next() % 4;
                    let parts = partitions_for(scheme, &[key]);
                    let (a, b) = ctx
                        .run_txn(&parts, |t| {
                            let a = t.read_u64(0, key, 1)?;
                            let b = t.read_u64(0, key, 2)?;
                            Ok((a, b))
                        })
                        .unwrap();
                    assert_eq!(a, b, "{scheme}: torn read on key {key}");
                }
                stop.store(true, Ordering::Relaxed);
            });
        }
    })
    .unwrap();
}

/// Phantom check: the table holds even keys in `[0, 2 * PHANTOM_RANGE)`;
/// inserter workers commit odd keys (worker-disjoint) into the range one
/// per transaction, while scanner workers each run committed transactions
/// that scan the full window **twice** and require identical key sets —
/// a phantom is exactly a committed transaction whose two reads of the
/// same predicate disagree. Scanners also delete the occasional odd key
/// they observed (shrinking ranges), which must never break repeatability
/// either. Totals: ≥ 1000 committed double-scan trials per scheme, plus a
/// final exact reconciliation of the index against the committed inserts
/// and deletes.
const PHANTOM_RANGE: u64 = 64;
const PHANTOM_SCANNERS: u32 = 2;
const PHANTOM_TRIALS: u64 = 500; // per scanner ⇒ 1000 committed scans

fn phantom_check(scheme: CcScheme) {
    let mut cat = Catalog::new();
    // Generous headroom: every churn insert takes a fresh arena slot (rows
    // are never reused), aborted insert attempts leak more, and the
    // phantom guards abort inserters often.
    cat.add_ordered_table(
        "scanned",
        Schema::key_plus_payload(1, 8),
        PHANTOM_RANGE * 512,
    );
    let mut cfg = EngineConfig::new(scheme, WORKERS);
    cfg.dl_timeout_us = 100;
    let db = Database::new(cfg, cat).unwrap();
    db.load_table(0, (0..PHANTOM_RANGE).map(|k| k * 2), |s, r, k| {
        row::set_u64(s, r, 0, k);
        row::set_u64(s, r, 1, 1);
    })
    .unwrap();

    let high = PHANTOM_RANGE * 2;
    let all_parts: Vec<PartId> = if scheme == CcScheme::HStore {
        (0..WORKERS).collect()
    } else {
        Vec::new()
    };
    let inserted = AtomicU64::new(0);
    let deleted = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    // Every worker starts scanning/churning at the same instant — without
    // this, the scanners can finish all their trials before the inserter
    // threads are even scheduled, and nothing actually races.
    let start = std::sync::Barrier::new(WORKERS as usize);

    crossbeam::thread::scope(|s| {
        // Odd keys are partitioned by class c = ((k-1)/2) % 4:
        //   c == 0 / 1 — "permanent": inserter c commits each once, and
        //                scanner c may later delete observed ones;
        //   c == 2 / 3 — "churn": inserter c-2 cycles insert→delete for
        //                the whole run, so structural changes race every
        //                scan from the first trial to the last.
        for w in 0..(WORKERS - PHANTOM_SCANNERS) {
            let db = Arc::clone(&db);
            let (inserted, deleted, stop, all_parts) = (&inserted, &deleted, &stop, &all_parts);
            let start = &start;
            s.spawn(move |_| {
                let mut ctx = db.worker(w);
                start.wait();
                let ins = |ctx: &mut abyss_core::WorkerCtx, key: u64| {
                    ctx.run_txn(all_parts, |t| {
                        t.insert(0, key, |s, d| {
                            row::set_u64(s, d, 0, key);
                            row::set_u64(s, d, 1, 1);
                        })
                    })
                    .unwrap();
                    inserted.fetch_add(1, Ordering::Relaxed);
                };
                let mut perm = u64::from(w); // j = perm, class perm % 4 == w
                let mut churn = 0u64;
                // Bound churn so arena slots cannot run out even if the
                // scanners are slow (each cycle consumes a fresh slot).
                while !stop.load(Ordering::Relaxed) && churn < 2_000 {
                    if perm * 2 + 1 < high {
                        ins(&mut ctx, perm * 2 + 1);
                        perm += 4;
                    }
                    // One full churn cycle: insert then delete the same key.
                    let j = (churn % (PHANTOM_RANGE / 4)) * 4 + u64::from(w) + 2;
                    churn += 1;
                    let key = j * 2 + 1;
                    if key < high {
                        ins(&mut ctx, key);
                        ctx.run_txn(all_parts, |t| t.delete(0, key)).unwrap();
                        deleted.fetch_add(1, Ordering::Relaxed);
                    }
                    std::thread::yield_now();
                }
            });
        }
        // Scanners: double scan per committed txn; occasional deletes.
        for w in (WORKERS - PHANTOM_SCANNERS)..WORKERS {
            let db = Arc::clone(&db);
            let (deleted, stop, all_parts) = (&deleted, &stop, &all_parts);
            let start = &start;
            s.spawn(move |_| {
                let mut ctx = db.worker(w);
                start.wait();
                let mut rng = Rng(0xF00D + u64::from(w));
                for trial in 0..PHANTOM_TRIALS {
                    // Randomized sub-window, full window every 4th trial.
                    let (lo, hi) = if trial % 4 == 0 {
                        (0, high - 1)
                    } else {
                        let a = rng.next() % high;
                        let b = rng.next() % high;
                        (a.min(b), a.max(b))
                    };
                    let (first, second, body_ts) = ctx
                        .run_txn(all_parts, |t| {
                            let mut first = Vec::new();
                            t.scan(0, lo, hi, |k, _, _| first.push(k))?;
                            // Hand the (possibly single) CPU to the churn
                            // threads so structural changes land between
                            // the two scans. An optimistic scheme may then
                            // observe a discrepancy here — that is legal
                            // as long as the commit below fails; the
                            // anomaly check therefore runs only on the
                            // *committed* result.
                            std::thread::yield_now();
                            let mut second = Vec::new();
                            t.scan(0, lo, hi, |k, _, _| second.push(k))?;
                            Ok((first, second, t.current_ts()))
                        })
                        .unwrap();
                    assert_eq!(
                        first, second,
                        "{scheme}: phantom — two scans of [{lo}, {hi}] at ts \
                         {body_ts} in one committed txn disagree"
                    );
                    let keys = first;
                    // Shrink the range now and then: delete an observed
                    // *permanent* odd key from this scanner's disjoint
                    // class (never re-inserted, classes never overlap, so
                    // each committed delete removes exactly one live key).
                    if trial % 16 == 7 {
                        let sw = u64::from(w - (WORKERS - PHANTOM_SCANNERS));
                        let mine = keys
                            .iter()
                            .copied()
                            .find(|&k| k % 2 == 1 && ((k - 1) / 2) % 4 == sw);
                        if let Some(k) = mine {
                            ctx.run_txn(all_parts, |t| t.delete(0, k))
                                .unwrap_or_else(|e| panic!("{scheme}: delete failed: {e}"));
                            deleted.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                stop.store(true, Ordering::Relaxed);
            });
        }
    })
    .unwrap();

    // Reconcile: committed state == loaded evens + inserts − deletes.
    let expected =
        PHANTOM_RANGE + inserted.load(Ordering::Relaxed) - deleted.load(Ordering::Relaxed);
    let mut ctx = db.worker(0);
    let final_count = ctx
        .run_txn(&all_parts, |t| t.scan(0, 0, u64::MAX, |_, _, _| {}))
        .unwrap();
    assert_eq!(
        final_count as u64, expected,
        "{scheme}: committed inserts/deletes and final index disagree"
    );
    assert_eq!(db.index_len(0), expected, "{scheme}: hash/btree diverged");
}

/// Deterministic T/O gap anomalies the randomized phantom check cannot
/// construct on demand: an insert by an *older* timestamp landing after a
/// *newer* scan committed (leaf `scan_rts` must kill the inserter), and a
/// scan by an older timestamp arriving after a newer delete committed
/// (leaf `del_wts` must kill the scanner).
fn to_gap_db(scheme: CcScheme) -> Arc<Database> {
    let mut cat = Catalog::new();
    cat.add_ordered_table("scanned", Schema::key_plus_payload(1, 8), 256);
    let db = Database::new(EngineConfig::new(scheme, 2), cat).unwrap();
    db.load_table(0, (0..16u64).map(|k| k * 2), |s, r, k| {
        row::set_u64(s, r, 0, k);
        row::set_u64(s, r, 1, 1);
    })
    .unwrap();
    db
}

fn older_insert_after_newer_scan_aborts(scheme: CcScheme) {
    let db = to_gap_db(scheme);
    let mut old = db.worker(0);
    let mut new = db.worker(1);
    old.begin(&[], None).unwrap(); // smaller timestamp
    new.begin(&[], None).unwrap();
    new.scan(0, 0, 40, |_, _, _| {}).unwrap();
    new.commit().unwrap();
    // The older transaction now tries to plant a key inside the range the
    // newer one already scanned and committed: it must not commit.
    old.insert(0, 5, |s, d| {
        row::set_u64(s, d, 0, 5);
        row::set_u64(s, d, 1, 1);
    })
    .unwrap();
    let r = old.commit();
    assert!(
        r.is_err(),
        "{scheme}: older insert behind a committed newer scan must abort"
    );
    assert!(db.peek(0, 5).is_err(), "{scheme}: phantom key was planted");
}

fn older_scan_after_newer_delete_aborts(scheme: CcScheme) {
    let db = to_gap_db(scheme);
    let mut old = db.worker(0);
    let mut new = db.worker(1);
    old.begin(&[], None).unwrap(); // smaller timestamp
    new.begin(&[], None).unwrap();
    new.delete(0, 8).unwrap();
    new.commit().unwrap();
    // The older scan can no longer reconstruct key 8 (no version store for
    // removed index entries): it must abort rather than silently miss it.
    let r = old.scan(0, 0, 40, |_, _, _| {});
    assert!(
        r.is_err(),
        "{scheme}: older scan across a newer committed delete must abort"
    );
    old.abort(abyss_common::AbortReason::UserAbort);
}

/// OCC/SILO cross-insert write skew: two transactions each scan the same
/// range and each insert a fresh key into it. Whichever commits second
/// must fail node-set validation — its scan missed the other's committed
/// insert — and a transaction inserting into its *own* scanned range must
/// still commit (the own-insert node-set refresh must not absorb foreign
/// bumps, and must not self-abort either).
fn occ_cross_insert_write_skew(scheme: CcScheme) {
    // Few enough rows that the inserts below don't split the leaf — a
    // split is a legitimate (conservative) extra abort that would mask
    // what this test pins down.
    let mut cat = Catalog::new();
    cat.add_ordered_table("scanned", Schema::key_plus_payload(1, 8), 256);
    let db = Database::new(EngineConfig::new(scheme, 2), cat).unwrap();
    db.load_table(0, (0..8u64).map(|k| k * 2), |s, r, k| {
        row::set_u64(s, r, 0, k);
        row::set_u64(s, r, 1, 1);
    })
    .unwrap();
    let mut a = db.worker(0);
    let mut b = db.worker(1);
    a.begin(&[], None).unwrap();
    b.begin(&[], None).unwrap();
    a.scan(0, 0, 100, |_, _, _| {}).unwrap();
    b.scan(0, 0, 100, |_, _, _| {}).unwrap();
    a.insert(0, 41, |s, d| row::set_u64(s, d, 0, 41)).unwrap();
    b.insert(0, 43, |s, d| row::set_u64(s, d, 0, 43)).unwrap();
    a.commit().unwrap();
    let r = b.commit();
    assert!(
        r.is_err(),
        "{scheme}: committed a scan that missed a concurrent committed insert"
    );
    assert!(db.peek(0, 41).is_ok());
    assert!(
        db.peek(0, 43).is_err(),
        "{scheme}: aborted insert left the key behind"
    );
    // Self-insert into a self-scanned range commits fine.
    a.begin(&[], None).unwrap();
    a.scan(0, 0, 100, |_, _, _| {}).unwrap();
    a.insert(0, 45, |s, d| row::set_u64(s, d, 0, 45)).unwrap();
    a.commit()
        .unwrap_or_else(|e| panic!("{scheme}: self-insert into own scan range aborted: {e}"));
}

#[test]
fn occ_cross_insert_write_skew_aborts() {
    occ_cross_insert_write_skew(CcScheme::Occ);
}

#[test]
fn silo_cross_insert_write_skew_aborts() {
    occ_cross_insert_write_skew(CcScheme::Silo);
}

#[test]
fn timestamp_gap_rts_blocks_older_inserter() {
    older_insert_after_newer_scan_aborts(CcScheme::Timestamp);
}

#[test]
fn mvcc_gap_rts_blocks_older_inserter() {
    older_insert_after_newer_scan_aborts(CcScheme::Mvcc);
}

#[test]
fn timestamp_del_wts_blocks_older_scanner() {
    older_scan_after_newer_delete_aborts(CcScheme::Timestamp);
}

#[test]
fn mvcc_del_wts_blocks_older_scanner() {
    older_scan_after_newer_delete_aborts(CcScheme::Mvcc);
}

macro_rules! scheme_tests {
    ($($name:ident => $scheme:expr),+ $(,)?) => {
        mod lost_updates {
            use super::*;
            $(#[test] fn $name() { lost_update_check($scheme); })+
        }
        mod conservation {
            use super::*;
            $(#[test] fn $name() { conservation_check($scheme); })+
        }
        mod read_atomicity {
            use super::*;
            $(#[test] fn $name() { read_atomicity_check($scheme); })+
        }
        mod phantoms {
            use super::*;
            $(#[test] fn $name() { phantom_check($scheme); })+
        }
    };
}

scheme_tests! {
    dl_detect => CcScheme::DlDetect,
    no_wait => CcScheme::NoWait,
    wait_die => CcScheme::WaitDie,
    timestamp => CcScheme::Timestamp,
    mvcc => CcScheme::Mvcc,
    occ => CcScheme::Occ,
    hstore => CcScheme::HStore,
    silo => CcScheme::Silo,
}
