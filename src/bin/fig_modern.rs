//! fig_modern — classic vs. modern concurrency control, runnable from the
//! workspace root: `cargo run --release --bin fig_modern [--quick|--full]`.
//! The experiment itself lives in [`abyss_bench::fig_modern`].

fn main() {
    abyss_bench::fig_modern::run();
}
