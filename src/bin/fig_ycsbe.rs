//! fig_ycsbe — YCSB-E scan/insert mixes over the ordered index, runnable
//! from the workspace root:
//! `cargo run --release --bin fig_ycsbe [--quick|--full]`.
//! The experiment itself lives in [`abyss_bench::fig_ycsbe`].

fn main() {
    abyss_bench::fig_ycsbe::run();
}
