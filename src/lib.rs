//! # abyss — concurrency control at one thousand cores
//!
//! Facade crate re-exporting the workspace: a Rust reproduction of
//! *Staring into the Abyss: An Evaluation of Concurrency Control with One
//! Thousand Cores* (Yu, Bezerra, Pavlo, Devadas, Stonebraker — VLDB 2014).
//!
//! * [`common`] — ids, schemes, stats, RNG/Zipf, transaction templates.
//! * [`storage`] — catalog, row store, hash index, memory pools.
//! * [`core`] — the multi-threaded main-memory DBMS with seven pluggable
//!   concurrency-control schemes.
//! * [`sim`] — the deterministic many-core simulator (Graphite substitute)
//!   used to scale the evaluation to 1024 cores.
//! * [`workload`] — YCSB and TPC-C generators.
//! * [`bench`] — the unified benchmark harness and figure experiments
//!   (see DESIGN.md, "The bench harness").
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the system map.

pub use abyss_bench as bench;
pub use abyss_common as common;
pub use abyss_core as core;
pub use abyss_sim as sim;
pub use abyss_storage as storage;
pub use abyss_workload as workload;
