//! Criterion micro-benchmarks for the hot components, plus the §4.1
//! memory-pool ablation (custom pool vs global allocator).

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use abyss_common::rng::Xoshiro256;
use abyss_common::zipf::ZipfGen;
use abyss_common::{CcScheme, TsMethod};
use abyss_core::{Database, EngineConfig, SharedTs};
use abyss_storage::{row, Catalog, HashIndex, MemPool, Schema};

fn bench_zipf(c: &mut Criterion) {
    let mut g = c.benchmark_group("zipf");
    let zipf = ZipfGen::new(1_000_000, 0.8);
    let mut rng = Xoshiro256::seed_from(7);
    g.bench_function("draw_theta_0.8", |b| b.iter(|| black_box(zipf.next(&mut rng))));
    let uniform = ZipfGen::new(1_000_000, 0.0);
    g.bench_function("draw_uniform", |b| b.iter(|| black_box(uniform.next(&mut rng))));
    g.finish();
}

fn bench_index(c: &mut Criterion) {
    let mut g = c.benchmark_group("hash_index");
    let idx = HashIndex::new(0, 1_000_000);
    for k in 0..1_000_000u64 {
        idx.insert(k, k).unwrap();
    }
    let mut rng = Xoshiro256::seed_from(9);
    g.bench_function("probe_hit", |b| {
        b.iter(|| black_box(idx.get(rng.next_below(1_000_000)).unwrap()))
    });
    g.bench_function("probe_miss", |b| {
        b.iter(|| black_box(idx.find(1_000_000 + rng.next_below(1_000_000))))
    });
    g.finish();
}

fn bench_ts_alloc(c: &mut Criterion) {
    let mut g = c.benchmark_group("ts_alloc_real");
    for method in [
        TsMethod::Mutex,
        TsMethod::Atomic,
        TsMethod::Batched { batch: 16 },
        TsMethod::Clock,
    ] {
        let shared = SharedTs::new(method);
        let mut h = shared.handle(0);
        g.bench_function(method.label(), |b| b.iter(|| black_box(h.alloc())));
    }
    g.finish();
}

/// The §4.1 ablation: per-thread pool vs the global allocator for the
/// tuple-copy blocks that TIMESTAMP/OCC reads allocate.
fn bench_mempool(c: &mut Criterion) {
    let mut g = c.benchmark_group("malloc_ablation");
    let mut pool = MemPool::new();
    g.bench_function("pool_alloc_free_1k", |b| {
        b.iter(|| {
            let blk = pool.alloc(1008);
            black_box(&blk);
            pool.free(blk);
        })
    });
    g.bench_function("global_alloc_free_1k", |b| {
        b.iter(|| {
            // Write through the allocation so LLVM cannot elide it.
            let mut v = vec![0u8; 1008];
            v[black_box(7)] = 1;
            black_box(v.as_ptr());
            drop(v);
        })
    });
    g.finish();
}

fn scheme_db(scheme: CcScheme) -> Arc<Database> {
    let mut cat = Catalog::new();
    cat.add_table("t", Schema::key_plus_payload(10, 100), 100_000);
    let db = Database::new(EngineConfig::new(scheme, 1), cat).unwrap();
    db.load_table(0, 0..100_000u64, |s, r, k| row::set_u64(s, r, 0, k)).unwrap();
    db
}

/// Single-threaded commit path: 4 reads + 4 updates per transaction.
fn bench_txn_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("txn_commit_path");
    g.sample_size(20);
    for scheme in CcScheme::NON_PARTITIONED {
        let db = scheme_db(scheme);
        let mut ctx = db.worker(0);
        let mut rng = Xoshiro256::seed_from(11);
        g.bench_function(scheme.name(), |b| {
            b.iter(|| {
                let base = rng.next_below(90_000);
                ctx.run_txn(&[], |t| {
                    for i in 0..4 {
                        black_box(t.read(0, base + i)?);
                    }
                    for i in 4..8 {
                        t.update(0, base + i, |s, d| {
                            row::fetch_add_u64(s, d, 1, 1);
                        })?;
                    }
                    Ok(())
                })
                .unwrap();
            })
        });
    }
    g.finish();
}

fn bench_sim_kernel(c: &mut Criterion) {
    use abyss_sim::kernel::{EventKind, EventQueue};
    let mut g = c.benchmark_group("sim_kernel");
    g.bench_function("push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.push(i * 7 % 997, (i % 64) as u32, EventKind::Step { epoch: i });
            }
            while let Some(e) = q.pop() {
                black_box(e);
            }
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_zipf,
    bench_index,
    bench_ts_alloc,
    bench_mempool,
    bench_txn_path,
    bench_sim_kernel
);
criterion_main!(benches);
