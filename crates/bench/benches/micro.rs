//! Micro-benchmarks for the hot components, plus the §4.1 memory-pool
//! ablation (custom pool vs global allocator).
//!
//! Hand-rolled timing harness (`harness = false`) because the build
//! environment vendors no external bench framework. Run with
//! `cargo bench --bench micro`; each line prints ns/op over a fixed
//! iteration budget after a warmup pass.

use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use abyss_common::rng::Xoshiro256;
use abyss_common::zipf::ZipfGen;
use abyss_common::{CcScheme, TsMethod};
use abyss_core::{Database, EngineConfig, SharedTs};
use abyss_storage::{row, Catalog, HashIndex, MemPool, Schema};

/// Time `iters` runs of `f` (after `iters / 10` warmup runs) and print the
/// per-op latency.
fn bench(group: &str, name: &str, iters: u64, mut f: impl FnMut()) {
    for _ in 0..iters / 10 {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let elapsed = start.elapsed();
    let ns = elapsed.as_nanos() as f64 / iters as f64;
    println!("{group}/{name:<24} {ns:>10.1} ns/op   ({iters} iters)");
}

fn bench_zipf() {
    let zipf = ZipfGen::new(1_000_000, 0.8);
    let mut rng = Xoshiro256::seed_from(7);
    bench("zipf", "draw_theta_0.8", 1_000_000, || {
        black_box(zipf.next(&mut rng));
    });
    let uniform = ZipfGen::new(1_000_000, 0.0);
    bench("zipf", "draw_uniform", 1_000_000, || {
        black_box(uniform.next(&mut rng));
    });
}

fn bench_index() {
    let idx = HashIndex::new(0, 1_000_000);
    for k in 0..1_000_000u64 {
        idx.insert(k, k).unwrap();
    }
    let mut rng = Xoshiro256::seed_from(9);
    bench("hash_index", "probe_hit", 1_000_000, || {
        black_box(idx.get(rng.next_below(1_000_000)).unwrap());
    });
    bench("hash_index", "probe_miss", 1_000_000, || {
        black_box(idx.find(1_000_000 + rng.next_below(1_000_000)));
    });
}

fn bench_ts_alloc() {
    for method in [
        TsMethod::Mutex,
        TsMethod::Atomic,
        TsMethod::Batched { batch: 16 },
        TsMethod::Clock,
    ] {
        let shared = SharedTs::new(method);
        let mut h = shared.handle(0);
        bench("ts_alloc_real", &method.label(), 1_000_000, || {
            black_box(h.alloc());
        });
    }
}

/// The §4.1 ablation: per-thread pool vs the global allocator for the
/// tuple-copy blocks that TIMESTAMP/OCC reads allocate.
fn bench_mempool() {
    let mut pool = MemPool::new();
    bench("malloc_ablation", "pool_alloc_free_1k", 1_000_000, || {
        let blk = pool.alloc(1008);
        black_box(&blk);
        pool.free(blk);
    });
    bench("malloc_ablation", "global_alloc_free_1k", 1_000_000, || {
        // Write through the allocation so LLVM cannot elide it.
        let mut v = vec![0u8; 1008];
        v[black_box(7)] = 1;
        black_box(v.as_ptr());
        drop(v);
    });
}

fn scheme_db(scheme: CcScheme) -> Arc<Database> {
    let mut cat = Catalog::new();
    cat.add_table("t", Schema::key_plus_payload(10, 100), 100_000);
    let db = Database::new(EngineConfig::new(scheme, 1), cat).unwrap();
    db.load_table(0, 0..100_000u64, |s, r, k| row::set_u64(s, r, 0, k))
        .unwrap();
    db
}

/// Single-threaded commit path: 4 reads + 4 updates per transaction.
fn bench_txn_path() {
    for scheme in CcScheme::NON_PARTITIONED {
        let db = scheme_db(scheme);
        let mut ctx = db.worker(0);
        let mut rng = Xoshiro256::seed_from(11);
        bench("txn_commit_path", scheme.name(), 100_000, || {
            let base = rng.next_below(90_000);
            ctx.run_txn(&[], |t| {
                for i in 0..4 {
                    black_box(t.read(0, base + i)?);
                }
                for i in 4..8 {
                    t.update(0, base + i, |s, d| {
                        row::fetch_add_u64(s, d, 1, 1);
                    })?;
                }
                Ok(())
            })
            .unwrap();
        });
    }
}

fn bench_sim_kernel() {
    use abyss_sim::kernel::{EventKind, EventQueue};
    bench("sim_kernel", "push_pop_1k", 10_000, || {
        let mut q = EventQueue::new();
        for i in 0..1000u64 {
            q.push(i * 7 % 997, (i % 64) as u32, EventKind::Step { epoch: i });
        }
        while let Some(e) = q.pop() {
            black_box(e);
        }
    });
}

fn main() {
    bench_zipf();
    bench_index();
    bench_ts_alloc();
    bench_mempool();
    bench_txn_path();
    bench_sim_kernel();
}
