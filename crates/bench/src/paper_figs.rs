//! Shared driver for the paper-figure table binaries (`fig03` … `fig17`,
//! `table2`).
//!
//! Every one of those binaries used to hand-roll the same four steps:
//! build a header row of `axis + one column per series`, loop the sweep,
//! fill cells from a simulator point, then `print` + `write_csv`. That
//! skeleton lives here exactly once — a figure binary now declares its
//! axis, its series, and a cell closure, and [`series_report`] does the
//! rest. The §3.2 six-category breakdown panels (fig 8b/9b/10b/12b) share
//! [`breakdown_report`]; the TPC-C figures (16/17) share
//! [`tpcc_panels`]; fig 3's real-hardware panel shares
//! [`engine_ycsb_tput`], which times through the engine's start/stop-edge
//! drivers with the harness's uniform warmup/measure windows
//! ([`crate::harness::Windows::engine`]) instead of its own ad-hoc
//! 200 ms/800 ms pair.

use std::time::Duration;

use abyss_common::{CcScheme, PinPolicy};
use abyss_sim::SimReport;
use abyss_workload::ycsb::{self, YcsbConfig, YcsbGen};

use crate::harness::Windows;
use crate::{breakdown_cells, fmt_m, Report};

/// Build a report whose first column is `axis` and whose remaining
/// columns are one per entry of `series`, filling each cell from `cell`.
///
/// This is the shape of every throughput table in the paper: an x-axis
/// sweep (cores, theta, transaction length, read fraction, …) against a
/// family of lines (schemes, timestamp methods, timeouts, …).
pub fn series_report<X: Copy, S: Copy>(
    axis: &str,
    xs: &[X],
    series: &[S],
    label_x: impl Fn(X) -> String,
    label_s: impl Fn(S) -> String,
    mut cell: impl FnMut(X, S) -> String,
) -> Report {
    let mut headers = vec![axis.to_string()];
    headers.extend(series.iter().map(|&s| label_s(s)));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut rep = Report::new(&headers_ref);
    for &x in xs {
        let mut row = vec![label_x(x)];
        for &s in series {
            row.push(cell(x, s));
        }
        rep.row(row);
    }
    rep
}

/// [`series_report`] specialized to the most common case: scheme columns
/// whose cells are Mtxn/s from a [`SimReport`].
pub fn scheme_tput_report<X: Copy>(
    axis: &str,
    xs: &[X],
    schemes: &[CcScheme],
    label_x: impl Fn(X) -> String,
    mut point: impl FnMut(X, CcScheme) -> SimReport,
) -> Report {
    series_report(
        axis,
        xs,
        schemes,
        label_x,
        |s| s.to_string(),
        |x, s| fmt_m(point(x, s).txn_per_sec()),
    )
}

/// Column headers of the §3.2 six-category breakdown panels.
pub const BREAKDOWN_HEADERS: [&str; 7] = [
    "scheme", "useful", "abort", "ts_alloc", "index", "wait", "manager",
];

/// One breakdown panel: a row of category fractions per scheme.
pub fn breakdown_report(
    schemes: &[CcScheme],
    mut point: impl FnMut(CcScheme) -> SimReport,
) -> Report {
    let mut rep = Report::new(&BREAKDOWN_HEADERS);
    for &scheme in schemes {
        let mut row = vec![scheme.to_string()];
        row.extend(breakdown_cells(&point(scheme)));
        rep.row(row);
    }
    rep
}

/// The TPC-C figures' three panels (total, Payment-only, NewOrder-only)
/// over a core sweep, filled from one simulator point per cell.
pub fn tpcc_panels(
    sweep: &[u32],
    schemes: &[CcScheme],
    mut point: impl FnMut(u32, CcScheme) -> SimReport,
) -> (Report, Report, Report) {
    use abyss_workload::tpcc::{TAG_NEW_ORDER, TAG_PAYMENT};
    let mut headers = vec!["cores".to_string()];
    headers.extend(schemes.iter().map(|s| s.to_string()));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut total = Report::new(&headers_ref);
    let mut payment = Report::new(&headers_ref);
    let mut neworder = Report::new(&headers_ref);
    for &n in sweep {
        let mut t = vec![n.to_string()];
        let mut p = vec![n.to_string()];
        let mut o = vec![n.to_string()];
        for &scheme in schemes {
            let r = point(n, scheme);
            t.push(fmt_m(r.txn_per_sec()));
            p.push(fmt_m(r.tagged_txn_per_sec(TAG_PAYMENT)));
            o.push(fmt_m(r.tagged_txn_per_sec(TAG_NEW_ORDER)));
        }
        total.row(t);
        payment.row(p);
        neworder.row(o);
    }
    (total, payment, neworder)
}

/// Print a report and write its CSV — the tail every figure binary ends
/// with.
pub fn emit_table(rep: &Report, title: &str, csv: &str) {
    rep.print(title);
    rep.write_csv(csv);
}

/// One real-engine YCSB throughput point (fig 3b): load the table, run
/// the engine's timed driver with the harness's uniform windows, return
/// txn/s. Timing is the driver's start/stop-edge accounting — the wall
/// is the measured window between the warm boundary and the stop flag,
/// never a hand-held `Instant` pair out here.
pub fn engine_ycsb_tput(scheme: CcScheme, threads: u32, cfg: &YcsbConfig, quick: bool) -> f64 {
    use abyss_core::{run_workers, Database, EngineConfig};
    let catalog = ycsb::catalog(cfg);
    let db = Database::new(
        EngineConfig::new(scheme, threads).with_pinning(PinPolicy::RoundRobin),
        catalog,
    )
    .expect("config");
    db.load_table(ycsb::YCSB_TABLE, 0..cfg.table_rows, ycsb::init_row)
        .expect("load");
    let zipf = abyss_common::zipf::ZipfGen::new(cfg.table_rows, cfg.theta);
    let gens = (0..threads)
        .map(|w| {
            let mut g = YcsbGen::with_zipf(cfg.clone(), zipf.clone(), 42 ^ (u64::from(w) << 20));
            Box::new(move || g.next_txn()) as Box<dyn FnMut() -> abyss_common::TxnTemplate + Send>
        })
        .collect();
    let w = Windows::engine(quick);
    let out = run_workers(&db, gens, w.warmup, w.measure);
    out.txn_per_sec()
}

/// The uniform engine windows, for figure code that drives the engine
/// directly.
pub fn engine_windows(quick: bool) -> (Duration, Duration) {
    let w = Windows::engine(quick);
    (w.warmup, w.measure)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ycsb_point, HarnessArgs};
    use abyss_sim::SimConfig;

    fn tiny_args() -> HarnessArgs {
        HarnessArgs {
            quick: true,
            full: false,
        }
    }

    #[test]
    fn series_report_fills_every_cell() {
        let mut calls = 0;
        let rep = series_report(
            "x",
            &[1u32, 2],
            &["a", "b", "c"],
            |x| x.to_string(),
            |s| s.to_string(),
            |x, s| {
                calls += 1;
                format!("{x}{s}")
            },
        );
        assert_eq!(calls, 6); // 2 rows × 3 series
        drop(rep); // ragged rows would have panicked in Report::row
    }

    #[test]
    fn breakdown_report_has_one_row_per_scheme() {
        let args = tiny_args();
        let cfg = YcsbConfig {
            table_rows: 50_000,
            ..YcsbConfig::read_only()
        };
        let schemes = [CcScheme::NoWait, CcScheme::Occ];
        let mut points = 0;
        let _ = breakdown_report(&schemes, |scheme| {
            points += 1;
            let mut sim = SimConfig::new(scheme, 2);
            sim.measure = 400_000;
            sim.warmup = 40_000;
            ycsb_point(sim, &cfg, &args)
        });
        assert_eq!(points, schemes.len());
    }

    #[test]
    fn engine_point_commits_transactions() {
        let cfg = YcsbConfig {
            table_rows: 10_000,
            ..YcsbConfig::read_only()
        };
        let tput = engine_ycsb_tput(CcScheme::NoWait, 2, &cfg, true);
        assert!(tput > 0.0, "engine point produced no commits");
    }

    #[test]
    fn engine_windows_match_harness_defaults() {
        let (w, m) = engine_windows(false);
        assert_eq!(w, crate::harness::ENGINE_WARMUP);
        assert_eq!(m, crate::harness::ENGINE_MEASURE);
    }
}
