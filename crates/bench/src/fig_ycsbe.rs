//! fig_ycsbe — scan-heavy mixes over the ordered index.
//!
//! The paper's evaluation is point-access only; CCBench (Tanabe et al.)
//! shows that scan/insert mixes reshuffle the scheme ranking the paper
//! established. This experiment sweeps the YCSB-E scan fraction over
//! {0.05, 0.5, 0.95} (insert pressure fixed at YCSB-E's 5%, the remainder
//! reads) and compares all eight schemes twice:
//!
//! * **simulator** — the 1024-core projection, using the scan cost model
//!   (`CostModel::scan_entry`) and per-scheme scan admission;
//! * **real engine** — a small-table multi-threaded run on the host,
//!   additionally reporting the index-health counters (hash `max_chain`,
//!   B+-tree height / node count, scan retries) so index regressions show
//!   up in the perf trajectory.
//!
//! Output: aligned tables, plus `results/fig_ycsbe.json` in the shared
//! envelope (`sim` and `engine` sections).

use crate::harness::emit::Envelope;
use crate::harness::Windows;
use crate::{fmt_m, ycsb_gens, ycsb_sim_tables, HarnessArgs, Report};
use abyss_common::zipf::ZipfGen;
use abyss_common::{CcScheme, RunStats, TxnTemplate};
use abyss_core::{run_workers, Database, EngineConfig};
use abyss_sim::{run_sim, SimConfig};
use abyss_storage::{Catalog, Schema};
use abyss_workload::ycsb::{self, YcsbConfig, YcsbGen};

/// Scan fractions swept (YCSB-E proper is 0.95).
pub const SCAN_FRACTIONS: [f64; 3] = [0.05, 0.5, 0.95];

/// Core sweep: smaller than the figure default (24 sim series), but the
/// 1024-core point — the paper's destination — is always included.
const SIM_SWEEP: &[u32] = &[1, 16, 256, 1024];
const SIM_SWEEP_QUICK: &[u32] = &[1, 8, 64];

struct SimPoint {
    cores: u32,
    txn_per_sec: f64,
    abort_rate: f64,
    scans: u64,
}

struct EnginePoint {
    txn_per_sec: f64,
    abort_rate: f64,
    scans: u64,
    scan_retries: u64,
    hash_max_chain: usize,
    btree_height: u32,
    btree_nodes: u64,
    btree_keys: u64,
}

fn ycsb_e_cfg(scan_pct: f64, rows: u64) -> YcsbConfig {
    YcsbConfig {
        table_rows: rows,
        scan_max_len: 100.min(rows as u32 / 2).max(1),
        ..YcsbConfig::ycsb_e(scan_pct)
    }
}

fn sim_point(scheme: CcScheme, cores: u32, scan_pct: f64, args: &HarnessArgs) -> SimPoint {
    let mut sim = SimConfig::new(scheme, cores);
    args.configure(&mut sim);
    let mut cfg = ycsb_e_cfg(scan_pct, 20_000_000);
    if scheme == CcScheme::HStore {
        cfg.parts = cores.max(1);
    }
    let gens = ycsb_gens(&cfg, cores, sim.seed);
    let r = run_sim(sim, ycsb_sim_tables(), gens);
    SimPoint {
        cores,
        txn_per_sec: r.txn_per_sec(),
        abort_rate: r.stats.abort_rate(),
        scans: r.stats.scans,
    }
}

/// The engine section uses a narrow schema (key + two u64 columns): the
/// comparison target is index behavior and scheme overhead, not payload
/// bandwidth, and the small rows let the arena carry generous insert
/// headroom without a multi-hundred-megabyte allocation.
fn engine_catalog(cfg: &YcsbConfig) -> Catalog {
    let mut c = Catalog::new();
    let schema = Schema::key_plus_payload(2, 8);
    c.add_ordered_table("usertable", schema, cfg.table_rows + cfg.insert_capacity);
    c
}

fn engine_point(scheme: CcScheme, scan_pct: f64, args: &HarnessArgs) -> EnginePoint {
    let workers: u32 = 4;
    let rows: u64 = if args.quick { 4_000 } else { 20_000 };
    let mut cfg = ycsb_e_cfg(scan_pct, rows);
    // Headroom for committed inserts plus slots leaked by aborted eager
    // inserts; sized so the arena cannot fill within the run window.
    cfg.insert_capacity = if args.quick { 100_000 } else { 400_000 };
    if scheme == CcScheme::HStore {
        cfg.parts = workers;
    }
    let db = Database::new(EngineConfig::new(scheme, workers), engine_catalog(&cfg))
        .expect("engine config");
    db.load_table(ycsb::YCSB_TABLE, 0..rows, |s, r, k| {
        abyss_storage::row::set_u64(s, r, 0, k);
        abyss_storage::row::set_u64(s, r, 1, k ^ 0xABBA);
    })
    .expect("load");
    let zipf = ZipfGen::new(cfg.table_rows, cfg.theta);
    let gens: Vec<Box<dyn FnMut() -> TxnTemplate + Send>> = (0..workers)
        .map(|w| {
            let mut g = YcsbGen::with_zipf(cfg.clone(), zipf.clone(), 0xE5 ^ (u64::from(w) << 20))
                .for_worker(w);
            Box::new(move || g.next_txn()) as Box<dyn FnMut() -> TxnTemplate + Send>
        })
        .collect();
    let w = Windows::engine(args.quick);
    let out = run_workers(&db, gens, w.warmup, w.measure);
    let health = db.index_health(ycsb::YCSB_TABLE);
    let btree = health.btree.expect("usertable is ordered");
    let stats: &RunStats = &out.stats;
    EnginePoint {
        txn_per_sec: out.txn_per_sec(),
        abort_rate: stats.abort_rate(),
        scans: stats.scans,
        scan_retries: stats.scan_retries,
        hash_max_chain: health.hash_max_chain,
        btree_height: btree.height,
        btree_nodes: btree.nodes,
        btree_keys: btree.len,
    }
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "0".into()
    }
}

/// Run the full fig_ycsbe experiment (parses CLI args itself).
pub fn run() {
    let args = HarnessArgs::parse();
    let sweep: &[u32] = if args.quick {
        SIM_SWEEP_QUICK
    } else {
        SIM_SWEEP
    };
    let schemes = CcScheme::ALL;

    // ---- simulator sweep ---------------------------------------------
    let mut sim_json: Vec<String> = Vec::new();
    for &frac in &SCAN_FRACTIONS {
        let mut headers = vec!["cores".to_string()];
        headers.extend(schemes.iter().map(|s| s.to_string()));
        let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let mut rep = Report::new(&headers_ref);
        let mut series: Vec<Vec<SimPoint>> = schemes.iter().map(|_| Vec::new()).collect();
        for &n in sweep {
            let mut row = vec![n.to_string()];
            for (i, &scheme) in schemes.iter().enumerate() {
                let p = sim_point(scheme, n, frac, &args);
                row.push(fmt_m(p.txn_per_sec));
                series[i].push(p);
            }
            rep.row(row);
        }
        rep.print(&format!(
            "fig_ycsbe sim — YCSB-E scan fraction {frac} (Mtxn/s)"
        ));
        let schemes_json: Vec<String> = schemes
            .iter()
            .zip(&series)
            .map(|(&scheme, pts)| {
                let pts: Vec<String> = pts
                    .iter()
                    .map(|p| {
                        format!(
                            "{{\"cores\":{},\"txn_per_sec\":{:.1},\"abort_rate\":{},\"scans\":{}}}",
                            p.cores,
                            p.txn_per_sec,
                            json_f(p.abort_rate),
                            p.scans
                        )
                    })
                    .collect();
                format!(
                    "{{\"scheme\":\"{}\",\"points\":[{}]}}",
                    scheme.name(),
                    pts.join(",")
                )
            })
            .collect();
        sim_json.push(format!(
            "{{\"scan_pct\":{frac},\"schemes\":[{}]}}",
            schemes_json.join(",")
        ));
    }

    // ---- real engine (index health) ----------------------------------
    let mut engine_json: Vec<String> = Vec::new();
    for &frac in &SCAN_FRACTIONS {
        let headers = [
            "scheme",
            "Mtxn/s",
            "abort%",
            "scans",
            "scan_retries",
            "hash_chain",
            "bt_height",
            "bt_nodes",
        ];
        let mut rep = Report::new(&headers);
        let mut points: Vec<String> = Vec::new();
        for &scheme in schemes.iter() {
            let p = engine_point(scheme, frac, &args);
            rep.row(vec![
                scheme.to_string(),
                fmt_m(p.txn_per_sec),
                format!("{:.1}", p.abort_rate * 100.0),
                p.scans.to_string(),
                p.scan_retries.to_string(),
                p.hash_max_chain.to_string(),
                p.btree_height.to_string(),
                p.btree_nodes.to_string(),
            ]);
            points.push(format!(
                "{{\"scheme\":\"{}\",\"txn_per_sec\":{:.1},\"abort_rate\":{},\
                 \"scans\":{},\"scan_retries\":{},\"index\":{{\"hash_max_chain\":{},\
                 \"btree_height\":{},\"btree_nodes\":{},\"btree_keys\":{}}}}}",
                scheme.name(),
                p.txn_per_sec,
                json_f(p.abort_rate),
                p.scans,
                p.scan_retries,
                p.hash_max_chain,
                p.btree_height,
                p.btree_nodes,
                p.btree_keys,
            ));
        }
        rep.print(&format!(
            "fig_ycsbe engine — YCSB-E scan fraction {frac}, 4 workers"
        ));
        engine_json.push(format!(
            "{{\"scan_pct\":{frac},\"schemes\":[{}]}}",
            points.join(",")
        ));
    }

    // ---- JSON comparison (shared envelope) ---------------------------
    let fractions = SCAN_FRACTIONS
        .iter()
        .map(|f| f.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let cores = sweep
        .iter()
        .map(|n| n.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let mut env = Envelope::new("fig_ycsbe");
    env.meta_raw("scan_fractions", &format!("[{fractions}]"))
        .section(
            "sim",
            &format!(
                "{{\"cores\":[{cores}],\"series\":[{}]}}",
                sim_json.join(",")
            ),
        )
        .section(
            "engine",
            &format!("{{\"workers\":4,\"series\":[{}]}}", engine_json.join(",")),
        );
    env.write().expect("write results/fig_ycsbe.json");
}
