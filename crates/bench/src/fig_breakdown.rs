//! fig_breakdown — the paper's "where does time go" accounting (§3.2).
//!
//! The stacked-bar companion to every throughput figure: each scheme's
//! execution time attributed to the seven phases (the paper's six
//! categories plus Logging, split out of Manager). Two sections:
//!
//! * **simulator** — the deterministic 1024-core point (64 under
//!   `--quick`) per scheme, across the YCSB contention sweep and a
//!   4-warehouse TPC-C mix whose multi-partition Payments starve
//!   H-STORE's partition locks;
//! * **real engine** — a multi-threaded host run with the per-worker
//!   [`abyss_core::obs::PhaseClock`] enabled, so the same seven-phase
//!   stack comes out of rdtsc spans instead of scheduled event costs.
//!
//! The qualitative story CI pins: DL_DETECT becomes wait-dominated as
//! theta rises while the optimistic schemes (OCC/TICTOC) shift into
//! abort, and H-STORE's useful-work fraction collapses under
//! multi-partition load.
//!
//! Output: aligned tables + `results/fig_breakdown_{sim,engine}.csv`,
//! machine-readable JSON at `results/fig_breakdown.json`, and one
//! engine run's Prometheus exposition text at
//! `results/fig_breakdown.prom` (CI parses the histogram lines).

use std::io::Write as _;

use crate::harness::emit::Envelope;
use crate::harness::Windows;
use crate::{fig_durability::engine_workers, fmt_m, tpcc_point, ycsb_point, HarnessArgs, Report};
use abyss_common::zipf::ZipfGen;
use abyss_common::{CcScheme, Phase, PhaseBreakdown, TxnTemplate};
use abyss_core::{run_workers, Database, EngineConfig};
use abyss_sim::SimConfig;
use abyss_storage::{Catalog, Schema};
use abyss_workload::tpcc::TpccConfig;
use abyss_workload::ycsb::{self, YcsbConfig, YcsbGen};

/// The contention sweep: uniform, the paper's medium-skew point, and
/// high skew where thrashing/validation failure dominates.
pub const THETAS: [f64; 3] = [0.0, 0.6, 0.8];

/// One stacked bar: a scheme × workload point and its phase fractions.
struct Stack {
    scheme: CcScheme,
    workload: &'static str,
    /// YCSB skew; `None` for the TPC-C mix.
    theta: Option<f64>,
    txn_per_sec: f64,
    phases: PhaseBreakdown,
}

impl Stack {
    fn json(&self) -> String {
        let theta = match self.theta {
            Some(t) => format!("{t:.1}"),
            None => "null".to_string(),
        };
        format!(
            "{{\"scheme\":\"{}\",\"workload\":\"{}\",\"theta\":{theta},\
             \"txn_per_sec\":{:.1},\"fractions\":{{{}}}}}",
            self.scheme.name(),
            self.workload,
            self.txn_per_sec,
            Phase::ALL
                .iter()
                .map(|&p| format!("\"{}\":{:.4}", p.key(), self.phases.fraction(p)))
                .collect::<Vec<_>>()
                .join(",")
        )
    }

    fn cells(&self) -> Vec<String> {
        let mut row = vec![
            self.scheme.name().to_string(),
            self.theta
                .map(|t| format!("{t:.1}"))
                .unwrap_or_else(|| "-".to_string()),
            fmt_m(self.txn_per_sec),
        ];
        row.extend(
            Phase::ALL
                .iter()
                .map(|&p| format!("{:.0}%", self.phases.fraction(p) * 100.0)),
        );
        row
    }
}

fn headers() -> Vec<&'static str> {
    let mut h = vec!["scheme", "theta", "Mtxn/s"];
    h.extend(["useful", "abort", "ts", "index", "wait", "mgr", "log"]);
    h
}

fn sim_ycsb(scheme: CcScheme, theta: f64, cores: u32, args: &HarnessArgs) -> Stack {
    let mut cfg = YcsbConfig::write_intensive(theta);
    if scheme == CcScheme::HStore {
        cfg.parts = cores;
    }
    let r = ycsb_point(SimConfig::new(scheme, cores), &cfg, args);
    Stack {
        scheme,
        workload: "ycsb",
        theta: Some(theta),
        txn_per_sec: r.txn_per_sec(),
        phases: r.stats.phase_ns,
    }
}

fn sim_tpcc(scheme: CcScheme, cores: u32, args: &HarnessArgs) -> Stack {
    // Four warehouses regardless of core count: the contended TPC-C
    // configuration (Fig. 15's regime) where cross-warehouse Payments
    // make most transactions multi-partition for H-STORE.
    let cfg = TpccConfig {
        warehouses: 4,
        ..TpccConfig::default()
    };
    let r = tpcc_point(SimConfig::new(scheme, cores), &cfg, args);
    Stack {
        scheme,
        workload: "tpcc_4wh",
        theta: None,
        txn_per_sec: r.txn_per_sec(),
        phases: r.stats.phase_ns,
    }
}

/// One engine run with the phase profiler on; returns the stack plus the
/// run's Prometheus exposition (histograms + phase counters included).
fn engine_stack(scheme: CcScheme, theta: f64, args: &HarnessArgs) -> (Stack, String) {
    let workers = engine_workers();
    let rows: u64 = if args.quick { 4_000 } else { 20_000 };
    let mut cfg = YcsbConfig {
        table_rows: rows,
        ..YcsbConfig::write_intensive(theta)
    };
    if scheme == CcScheme::HStore {
        cfg.parts = workers;
    }
    let mut cat = Catalog::new();
    cat.add_table("usertable", Schema::key_plus_payload(2, 8), rows * 2);
    let ecfg = EngineConfig::new(scheme, workers).with_breakdown();
    let db = Database::new(ecfg, cat).expect("engine config");
    db.load_table(ycsb::YCSB_TABLE, 0..rows, |s, r, k| {
        abyss_storage::row::set_u64(s, r, 0, k);
        abyss_storage::row::set_u64(s, r, 1, k ^ 0xBEEF);
    })
    .expect("load");
    let zipf = ZipfGen::new(cfg.table_rows, cfg.theta);
    let gens: Vec<Box<dyn FnMut() -> TxnTemplate + Send>> = (0..workers)
        .map(|w| {
            let mut g =
                YcsbGen::with_zipf(cfg.clone(), zipf.clone(), 0xFACE ^ (u64::from(w) << 20))
                    .for_worker(w);
            Box::new(move || g.next_txn()) as Box<dyn FnMut() -> TxnTemplate + Send>
        })
        .collect();
    let w = Windows::engine(args.quick);
    let out = run_workers(&db, gens, w.warmup, w.measure);
    let prom = db
        .metrics_snapshot()
        .with_run_stats(&out.stats)
        .to_prometheus();
    let stack = Stack {
        scheme,
        workload: "ycsb",
        theta: Some(theta),
        txn_per_sec: out.txn_per_sec(),
        phases: out.stats.phase_ns,
    };
    (stack, prom)
}

/// Run the full fig_breakdown experiment (parses CLI args itself).
pub fn run() {
    let args = HarnessArgs::parse();
    let sim_cores: u32 = if args.quick { 64 } else { 1024 };
    let h = headers();

    // ---- simulator ----------------------------------------------------
    let mut sim_series: Vec<Stack> = Vec::new();
    for &theta in &THETAS {
        for scheme in CcScheme::ALL {
            sim_series.push(sim_ycsb(scheme, theta, sim_cores, &args));
        }
    }
    for scheme in CcScheme::ALL {
        sim_series.push(sim_tpcc(scheme, sim_cores, &args));
    }
    let mut rep = Report::new(&h);
    for s in &sim_series {
        rep.row(s.cells());
    }
    rep.print(&format!(
        "fig_breakdown sim — {sim_cores} cores, YCSB theta sweep + TPC-C 4wh (phase fractions)"
    ));
    rep.write_csv("fig_breakdown_sim");

    // ---- real engine --------------------------------------------------
    let mut engine_series: Vec<Stack> = Vec::new();
    let mut prom_sample = String::new();
    for &theta in &THETAS {
        for scheme in CcScheme::ALL {
            let (stack, prom) = engine_stack(scheme, theta, &args);
            // Keep one exposition with live histograms as the artifact.
            if scheme == CcScheme::Silo && prom.contains("abyss_commit_latency_ns_bucket") {
                prom_sample = prom;
            }
            engine_series.push(stack);
        }
    }
    let mut rep = Report::new(&h);
    for s in &engine_series {
        rep.row(s.cells());
    }
    rep.print(&format!(
        "fig_breakdown engine — {} workers, rdtsc phase spans (phase fractions)",
        engine_workers()
    ));
    rep.write_csv("fig_breakdown_engine");

    // ---- JSON (shared envelope) + Prometheus artifacts ----------------
    let phases = Phase::ALL
        .iter()
        .map(|p| format!("\"{}\"", p.key()))
        .collect::<Vec<_>>()
        .join(",");
    let thetas = THETAS
        .iter()
        .map(|t| format!("{t:.1}"))
        .collect::<Vec<_>>()
        .join(",");
    let mut env = Envelope::new("fig_breakdown");
    env.meta_raw("phases", &format!("[{phases}]"))
        .meta_raw("thetas", &format!("[{thetas}]"))
        .section(
            "sim",
            &format!(
                "{{\"cores\":{sim_cores},\"series\":[{}]}}",
                sim_series
                    .iter()
                    .map(Stack::json)
                    .collect::<Vec<_>>()
                    .join(",")
            ),
        )
        .section(
            "engine",
            &format!(
                "{{\"workers\":{},\"series\":[{}]}}",
                engine_workers(),
                engine_series
                    .iter()
                    .map(Stack::json)
                    .collect::<Vec<_>>()
                    .join(",")
            ),
        );
    env.write().expect("write results/fig_breakdown.json");
    if !prom_sample.is_empty() {
        if let Ok(mut f) = std::fs::File::create("results/fig_breakdown.prom") {
            let _ = f.write_all(prom_sample.as_bytes());
            println!("  [prom] results/fig_breakdown.prom");
        }
    }
}
