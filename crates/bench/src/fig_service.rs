//! fig_service — open-loop serving: offered load vs. queue-to-ack latency.
//!
//! The paper's harness (and every other figure here) is *closed-loop*:
//! each worker generates its next transaction the moment the previous one
//! finishes, so the system is never asked for more than it can do and
//! queueing delay is invisible. A serving front end inverts that: clients
//! submit at an *offered* rate regardless of completion, and the
//! interesting regime is around and past saturation — where queue-to-ack
//! latency either explodes (unbounded queues) or admission control sheds
//! load to keep the accepted requests' tail bounded.
//!
//! The experiment:
//!
//! 1. **Peak** — a closed-loop [`run_workers`] run over the same YCSB
//!    read/update templates fixes the engine's saturation throughput
//!    (uniform [`Windows::engine`] warmup/measure).
//! 2. **Sweep** — an open-loop [`TxnService`] run per offered-load
//!    fraction of that peak (under to 2× over). Producer threads are a
//!    harness [`BenchSpec`] driven by [`harness::run_timed`]: every
//!    producer starts on the barrier edge, paces submissions through the
//!    harness [`Pacer`] (1 ms ticks, bounded catch-up), and stops on the
//!    runner's stop edge — the measured wall is the flag window, not any
//!    per-thread clock. 10% high- / 90% low-priority, non-blocking
//!    admission, depth-based shedding enabled.
//!
//! Reported per point: achieved committed throughput, shed rate, and the
//! per-priority queue-to-ack quantiles from the service's merged
//! [`abyss_common::RunStats`]. CI asserts quantile monotonicity and that
//! the admission counters reconcile (accepted + shed + queue_full ==
//! submitted) via `validate_results`.
//!
//! Output: aligned table + `results/fig_service.json` in the shared
//! envelope (one `sweep` section).

use std::sync::Arc;
use std::time::Duration;

use crate::harness::emit::Envelope;
use crate::harness::{self, BenchContext, BenchSpec, Pacer, PinPolicy, Windows};
use crate::{fig_durability::engine_workers, harness_rng, HarnessArgs, Report};
use abyss_common::rng::Xoshiro256;
use abyss_common::{CcScheme, LatencyHisto, Priority, TxnTemplate};
use abyss_core::{run_workers, Database, EngineConfig, ProcRegistry, ServeConfig, TxnService};
use abyss_storage::{Catalog, Schema};
use abyss_workload::procs;
use abyss_workload::ycsb::YCSB_TABLE;

/// The scheme driven by the service sweep. NO_WAIT is the paper's
/// best-scaling 2PL variant and aborts rather than blocks, so worker
/// drain rate stays steady under contention — queueing effects, not
/// scheme pathology, dominate the curve.
pub const SCHEME: CcScheme = CcScheme::NoWait;

/// Offered-load fractions of the closed-loop peak.
pub const LOADS: [f64; 5] = [0.25, 0.5, 0.75, 1.0, 2.0];
/// Quick sweep: one clearly-under and one clearly-over point.
pub const LOADS_QUICK: [f64; 2] = [0.25, 2.0];

/// Accesses per transaction (smaller than the paper's 16 to keep the
/// service's per-request overhead visible in the quick sweep).
const REQS_PER_TXN: usize = 8;
/// Rows in the YCSB table.
const ROWS: u64 = 16 * 1024;
/// Fraction of submissions in the high-priority class.
const HIGH_PCT: f64 = 0.10;
/// Producer pacing tick.
const TICK: Duration = Duration::from_millis(1);
/// Open-loop measured window per swept point. Longer than the closed-loop
/// [`Windows::engine`] measure: shed-rate estimates need enough ticks
/// past the queue's fill transient to stabilize.
const SERVICE_MEASURE: Duration = Duration::from_millis(800);
/// Open-loop window under `--quick`.
const SERVICE_MEASURE_QUICK: Duration = Duration::from_millis(250);

/// One latency distribution, flattened for the report/JSON.
struct Dist {
    count: u64,
    p50: u64,
    p99: u64,
    p999: u64,
    max: u64,
}

impl Dist {
    fn of(h: &LatencyHisto) -> Self {
        Self {
            count: h.count(),
            p50: h.p50(),
            p99: h.p99(),
            p999: h.p999(),
            max: h.max(),
        }
    }

    fn json(&self) -> String {
        format!(
            "{{\"count\":{},\"p50\":{},\"p99\":{},\"p999\":{},\"max\":{}}}",
            self.count, self.p50, self.p99, self.p999, self.max
        )
    }
}

/// One swept point of the open-loop run.
struct ServicePoint {
    offered: f64,
    submitted: u64,
    accepted: u64,
    shed: u64,
    queue_full: u64,
    achieved: f64,
    high: Dist,
    low: Dist,
}

impl ServicePoint {
    fn shed_rate(&self) -> f64 {
        if self.submitted == 0 {
            return 0.0;
        }
        (self.shed + self.queue_full) as f64 / self.submitted as f64
    }

    fn json(&self) -> String {
        format!(
            "{{\"offered\":{:.0},\"submitted\":{},\"accepted\":{},\"shed\":{},\
             \"queue_full\":{},\"achieved\":{:.0},\"shed_rate\":{:.4},\
             \"high\":{},\"low\":{}}}",
            self.offered,
            self.submitted,
            self.accepted,
            self.shed,
            self.queue_full,
            self.achieved,
            self.shed_rate(),
            self.high.json(),
            self.low.json()
        )
    }
}

/// Build the service database: one YCSB-shaped table (key + two u64
/// payload columns; the executor's update bumps column 1).
fn build_db(workers: u32) -> Arc<Database> {
    let mut cat = Catalog::new();
    cat.add_table("usertable", Schema::key_plus_payload(2, 8), ROWS * 2);
    let db = Database::new(EngineConfig::new(SCHEME, workers), cat).expect("engine config");
    db.load_table(YCSB_TABLE, 0..ROWS, |s, r, k| {
        abyss_storage::row::set_u64(s, r, 0, k);
        abyss_storage::row::set_u64(s, r, 1, 0);
    })
    .expect("load");
    db
}

/// Draw one `ycsb_rmw` argument vector: uniform distinct keys, 50/50
/// read/update mask.
fn draw_args(rng: &mut Xoshiro256, scratch: &mut Vec<u64>) -> Vec<u64> {
    scratch.clear();
    while scratch.len() < REQS_PER_TXN {
        let k = rng.next_below(ROWS);
        if !scratch.contains(&k) {
            scratch.push(k);
        }
    }
    let mask = rng.next_u64() & ((1 << REQS_PER_TXN) - 1);
    procs::ycsb_rmw_args(mask, scratch)
}

/// Closed-loop peak throughput of the same templates on the same engine —
/// the saturation point the offered-load sweep is calibrated against.
fn closed_loop_peak(args: &HarnessArgs) -> f64 {
    let workers = engine_workers();
    let db = build_db(workers);
    let gens: Vec<Box<dyn FnMut() -> TxnTemplate + Send>> = (0..workers)
        .map(|w| {
            let mut rng = harness_rng(0x5E7 ^ (u64::from(w) << 20));
            let mut scratch = Vec::new();
            Box::new(move || procs::ycsb_rmw(&draw_args(&mut rng, &mut scratch)))
                as Box<dyn FnMut() -> TxnTemplate + Send>
        })
        .collect();
    let w = Windows::engine(args.quick);
    run_workers(&db, gens, w.warmup, w.measure).txn_per_sec()
}

/// The stored-procedure registry the service runs: everything
/// [`abyss_workload::procs`] ships.
pub fn registry() -> ProcRegistry {
    let mut reg = ProcRegistry::new();
    for (name, f) in procs::all() {
        reg.register(name, Box::new(f));
    }
    reg
}

/// Per-producer tally, merged across threads by the harness.
#[derive(Default, Clone, Copy)]
struct ProducerCounts {
    submitted: u64,
    queue_full: u64,
}

impl std::ops::AddAssign for ProducerCounts {
    fn add_assign(&mut self, rhs: Self) {
        self.submitted += rhs.submitted;
        self.queue_full += rhs.queue_full;
    }
}

/// The open-loop producer pool as a harness spec: each thread paces
/// submissions into the service until the runner's stop edge.
/// `rate = None` submits flat-out (no pacing) — the calibration run that
/// measures the service's own saturation throughput under the same
/// producer CPU load the paced points experience.
struct Producers<'a> {
    svc: &'a TxnService,
    ycsb: abyss_core::ProcId,
    /// Total offered rate (submissions/sec), split evenly across threads.
    rate: Option<f64>,
}

impl BenchSpec for Producers<'_> {
    type Result = ProducerCounts;

    fn run(&self, ctx: &mut BenchContext<'_>) -> ProducerCounts {
        let mut rng = harness_rng(0xFACE ^ (u64::from(ctx.thread_id) << 24));
        let mut scratch = Vec::new();
        ctx.wait_for_start();
        // The pacer anchors to the barrier edge: every producer's first
        // tick boundary lands one TICK after the group released together.
        let mut pacer = self
            .rate
            .map(|r| Pacer::new(r / f64::from(ctx.threads), TICK));
        let mut out = ProducerCounts::default();
        while ctx.is_running() {
            let batch = match pacer.as_mut() {
                Some(p) => p.next_batch(),
                // Flat-out: a tick's worth back-to-back, then yield so
                // the drain workers run.
                None => 256,
            };
            for _ in 0..batch {
                let prio = if rng.chance(HIGH_PCT) {
                    Priority::High
                } else {
                    Priority::Low
                };
                let args = draw_args(&mut rng, &mut scratch);
                out.submitted += 1;
                match self.svc.submit_id(self.ycsb, &args, prio) {
                    Ok(_) => {}
                    Err(abyss_core::SubmitError::QueueFull) => out.queue_full += 1,
                    Err(e) => panic!("unexpected submit error: {e}"),
                }
            }
            if pacer.is_none() {
                std::thread::yield_now();
            }
        }
        out
    }
}

/// Single-vs-batched submission probe: one producer pushes `total`
/// requests either one [`TxnService::submit`] call at a time or in
/// [`TxnService::submit_batch`] chunks, into a queue sized to absorb the
/// whole run (no shedding, no bouncing) while the workers drain
/// concurrently. The measured wall is the bounded runner's start→finish
/// edge, so ns/submission isolates the producer-side cost the batch API
/// amortizes — one shard pick, one lock acquisition, and one wakeup per
/// chunk instead of per request.
struct SubmitProbe<'a> {
    svc: &'a TxnService,
    total: u64,
    /// Chunk size; 1 selects the single-submit path.
    batch: usize,
}

impl BenchSpec for SubmitProbe<'_> {
    type Result = ProducerCounts;

    fn run(&self, ctx: &mut BenchContext<'_>) -> ProducerCounts {
        let mut rng = harness_rng(0xBA7C ^ (u64::from(ctx.thread_id) << 24));
        let mut scratch = Vec::new();
        ctx.wait_for_start();
        let mut out = ProducerCounts::default();
        if self.batch <= 1 {
            for _ in 0..self.total {
                let args = draw_args(&mut rng, &mut scratch);
                out.submitted += 1;
                match self.svc.submit(procs::PROC_YCSB_RMW, &args, Priority::High) {
                    Ok(_) => {}
                    Err(abyss_core::SubmitError::QueueFull) => out.queue_full += 1,
                    Err(e) => panic!("unexpected submit error: {e}"),
                }
            }
        } else {
            let mut remaining = self.total;
            while remaining > 0 {
                let n = remaining.min(self.batch as u64) as usize;
                let argsets: Vec<Vec<u64>> =
                    (0..n).map(|_| draw_args(&mut rng, &mut scratch)).collect();
                let chunk: Vec<(&str, &[u64], Priority)> = argsets
                    .iter()
                    .map(|a| (procs::PROC_YCSB_RMW, a.as_slice(), Priority::High))
                    .collect();
                out.submitted += n as u64;
                match self.svc.submit_batch(&chunk) {
                    Ok(_) => {}
                    Err(abyss_core::SubmitError::QueueFull) => out.queue_full += n as u64,
                    Err(e) => panic!("unexpected submit error: {e}"),
                }
                remaining -= n as u64;
            }
        }
        out
    }
}

/// One probe run; returns (ns/submission, commits, bounced).
fn batch_point(batch: usize, total: u64) -> (f64, u64, u64) {
    let workers = engine_workers();
    let db = build_db(workers);
    let cfg = ServeConfig {
        // Absorb the whole bounded run: shedding/backpressure would
        // short-circuit pushes and skew the per-call cost comparison.
        queue_capacity: total as usize + 1024,
        shed_depth: total as usize + 1024,
        block_on_full: false,
        producer_hint: 1,
        ..ServeConfig::default()
    };
    let svc = TxnService::start(db, registry(), cfg);
    let mut spec = SubmitProbe {
        svc: &svc,
        total,
        batch,
    };
    let out = harness::run_bounded(&mut spec, 1, PinPolicy::None);
    let ns = out.wall.as_nanos() as f64 / out.merged.submitted.max(1) as f64;
    let stats = svc.shutdown();
    (ns, stats.commits, out.merged.queue_full)
}

/// Chunk size for the batched submission probe.
const BATCH_SIZE: usize = 32;

fn batch_section(args: &HarnessArgs) -> String {
    let total: u64 = if args.quick { 6_000 } else { 30_000 };
    // Warm both paths (registry, queue allocation, worker spin-up).
    let _ = batch_point(1, total / 10 + 1);
    let _ = batch_point(BATCH_SIZE, total / 10 + 1);
    let (single_ns, single_commits, single_bounced) = batch_point(1, total);
    let (batch_ns, batch_commits, batch_bounced) = batch_point(BATCH_SIZE, total);
    let ratio = single_ns / batch_ns;
    let mut rep = Report::new(&["path", "ns/submit", "commits", "bounced"]);
    rep.row(vec![
        "single".into(),
        format!("{single_ns:.1}"),
        single_commits.to_string(),
        single_bounced.to_string(),
    ]);
    rep.row(vec![
        format!("batch x{BATCH_SIZE}"),
        format!("{batch_ns:.1}"),
        batch_commits.to_string(),
        batch_bounced.to_string(),
    ]);
    rep.print(&format!(
        "submission path: {total} requests, 1 producer (single/batch = {ratio:.3})"
    ));
    format!(
        "{{\"total\":{total},\"batch_size\":{BATCH_SIZE},\
         \"single_ns_per_submit\":{},\"batch_ns_per_submit\":{},\
         \"single_over_batch\":{},\"single_commits\":{single_commits},\
         \"batch_commits\":{batch_commits}}}",
        crate::harness::emit::num(single_ns),
        crate::harness::emit::num(batch_ns),
        crate::harness::emit::num(ratio),
    )
}

/// One open-loop point: pace `offered` submissions/sec across `producers`
/// threads for `measure`, then drain and collect the merged stats.
fn service_point(offered: Option<f64>, producers: u32, measure: Duration) -> ServicePoint {
    let workers = engine_workers();
    let db = build_db(workers);
    let cfg = ServeConfig {
        queue_capacity: 1024,
        shed_depth: 256,
        block_on_full: false,
        producer_hint: producers,
        ..ServeConfig::default()
    };
    let svc = TxnService::start(db, registry(), cfg);
    let ycsb = svc
        .proc_id(procs::PROC_YCSB_RMW)
        .expect("ycsb_rmw registered");

    let mut spec = Producers {
        svc: &svc,
        ycsb,
        rate: offered,
    };
    // Producers stay unpinned: they share cores with the service's drain
    // workers, and pinning them onto worker cores would measure
    // placement, not admission.
    let out = harness::run_timed(&mut spec, producers, measure, PinPolicy::None);

    let accepted = svc.accepted();
    let stats = svc.shutdown();
    ServicePoint {
        offered: offered.unwrap_or(0.0),
        submitted: out.merged.submitted,
        accepted,
        shed: stats.sheds.iter().sum(),
        queue_full: out.merged.queue_full,
        achieved: stats.commits as f64 / out.wall.as_secs_f64(),
        high: Dist::of(&stats.queue_ack_latency[Priority::High.idx()]),
        low: Dist::of(&stats.queue_ack_latency[Priority::Low.idx()]),
    }
}

/// Run the full fig_service experiment (parses CLI args itself).
pub fn run() {
    let args = HarnessArgs::parse();
    let workers = engine_workers();
    let producers: u32 = 2;
    let loads: &[f64] = if args.quick { &LOADS_QUICK } else { &LOADS };
    let measure = if args.quick {
        SERVICE_MEASURE_QUICK
    } else {
        SERVICE_MEASURE
    };

    println!("fig_service: calibrating closed-loop peak ({workers} workers)...");
    let closed_peak = closed_loop_peak(&args);
    println!("  closed-loop peak = {closed_peak:.0} txn/s");
    // The service's own saturation point, measured with the same producer
    // threads the paced points run — on small machines producers steal
    // cycles from workers, so this (not the closed-loop number) is the
    // right 1.0 for the offered-load axis. The ratio of the two is the
    // serving overhead the figure reports.
    let cal = service_point(None, producers, measure);
    let peak = cal.achieved.max(1000.0);
    println!(
        "  service peak     = {peak:.0} txn/s ({:.0}% of closed-loop)",
        100.0 * peak / closed_peak
    );

    let mut rep = Report::new(&[
        "offered/peak",
        "offered",
        "achieved",
        "shed%",
        "hi_p50",
        "hi_p99",
        "lo_p50",
        "lo_p99",
    ]);
    let mut series: Vec<String> = Vec::new();
    for &frac in loads {
        let offered = (peak * frac).max(500.0);
        let pt = service_point(Some(offered), producers, measure);
        rep.row(vec![
            format!("{frac:.2}"),
            format!("{:.0}", pt.offered),
            format!("{:.0}", pt.achieved),
            format!("{:.1}%", pt.shed_rate() * 100.0),
            pt.high.p50.to_string(),
            pt.high.p99.to_string(),
            pt.low.p50.to_string(),
            pt.low.p99.to_string(),
        ]);
        series.push(pt.json());
    }
    rep.print(&format!(
        "fig_service — open-loop YCSB rmw, {SCHEME:?}, {workers} workers, \
         {producers} producers (queue-to-ack ns)"
    ));
    rep.write_csv("fig_service");

    let batch = batch_section(&args);

    let mut env = Envelope::new("fig_service");
    env.meta_str("scheme", SCHEME.name())
        .meta_num("workers", f64::from(workers))
        .meta_num("producers", f64::from(producers))
        .meta_num("closed_loop_peak", closed_peak.round())
        .meta_num("service_peak", peak.round())
        .section("sweep", &format!("{{\"series\":[{}]}}", series.join(",")))
        .section("batch", &batch);
    env.write().expect("write results/fig_service.json");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_open_loop_point_sheds_under_gross_overload() {
        // 50k/s offered against a tiny window: the sweep machinery must
        // pace, submit, shed (or run clean at this size), and drain
        // without losing a ticket.
        let pt = service_point(Some(50_000.0), 2, Duration::from_millis(120));
        assert!(pt.submitted > 0);
        assert_eq!(
            pt.accepted + pt.shed + pt.queue_full,
            pt.submitted,
            "every submission accepted, shed, or bounced"
        );
        // All accepted requests were acked: the histograms saw them.
        assert_eq!(pt.high.count + pt.low.count, pt.accepted);
    }
}
