//! # abyss-bench
//!
//! The harness that regenerates every figure of the paper's evaluation
//! (§4–§5). One binary per figure (`fig03` … `fig17`, plus `table2`);
//! each prints the paper's series as an aligned table and writes
//! `results/figNN.csv`.
//!
//! Conventions:
//!
//! * `--quick` shrinks sweeps and windows (CI smoke);
//! * `--full` runs the paper's complete core-count grid;
//! * the default is a representative sweep that preserves every figure's
//!   shape in minutes instead of hours.

pub mod fig_breakdown;
pub mod fig_durability;
pub mod fig_latency;
pub mod fig_modern;
pub mod fig_regulate;
pub mod fig_service;
pub mod fig_ycsbe;
pub mod harness;
pub mod paper_figs;

use std::io::Write as _;
use std::path::Path;

use abyss_common::rng::Xoshiro256;
use abyss_common::zipf::ZipfGen;
use abyss_common::{CcScheme, TxnTemplate};
use abyss_sim::{run_sim, SimConfig, SimReport, SimTable};
use abyss_workload::tpcc::{self, TpccConfig, TpccGen};
use abyss_workload::ycsb::{self, YcsbConfig, YcsbGen};

/// Default core-count sweep (log-spaced, preserves the curve shapes).
pub const SWEEP: &[u32] = &[1, 4, 16, 64, 256, 512, 1024];
/// The paper's full grid.
pub const SWEEP_FULL: &[u32] = &[1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 800, 1024];
/// Quick smoke sweep.
pub const SWEEP_QUICK: &[u32] = &[1, 8, 64];

/// Parsed command-line options shared by every figure binary.
#[derive(Debug, Clone, Copy)]
pub struct HarnessArgs {
    /// Shrink everything (CI smoke).
    pub quick: bool,
    /// Run the paper's full grid.
    pub full: bool,
}

impl HarnessArgs {
    /// Parse from `std::env::args`.
    pub fn parse() -> Self {
        let mut a = Self {
            quick: false,
            full: false,
        };
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--quick" => a.quick = true,
                "--full" => a.full = true,
                other => {
                    eprintln!("unknown argument {other:?} (expected --quick/--full)");
                    std::process::exit(2);
                }
            }
        }
        a
    }

    /// The core sweep for this invocation.
    pub fn sweep(&self) -> &'static [u32] {
        if self.quick {
            SWEEP_QUICK
        } else if self.full {
            SWEEP_FULL
        } else {
            SWEEP
        }
    }

    /// Measured window in cycles.
    pub fn measure(&self) -> u64 {
        if self.quick {
            1_500_000
        } else {
            8_000_000
        }
    }

    /// Warmup window in cycles.
    pub fn warmup(&self) -> u64 {
        if self.quick {
            300_000
        } else {
            1_500_000
        }
    }

    /// Apply the windows to a [`SimConfig`].
    pub fn configure(&self, cfg: &mut SimConfig) {
        cfg.warmup = self.warmup();
        cfg.measure = self.measure();
    }
}

/// Build the simulator's table metadata for the YCSB database.
pub fn ycsb_sim_tables() -> Vec<SimTable> {
    let schema =
        abyss_storage::Schema::key_plus_payload(ycsb::PAYLOAD_COLUMNS, ycsb::PAYLOAD_WIDTH);
    vec![SimTable {
        row_size: schema.row_size(),
        counter_init: 0,
    }]
}

/// Build the simulator's table metadata for TPC-C.
pub fn tpcc_sim_tables(cfg: &TpccConfig) -> Vec<SimTable> {
    tpcc::catalog(cfg)
        .tables()
        .iter()
        .map(|t| SimTable {
            row_size: t.schema.row_size(),
            counter_init: if t.id == tpcc::TpccTable::District.id() {
                tpcc::FIRST_NEW_ORDER_ID
            } else {
                0
            },
        })
        .collect()
}

/// Per-core YCSB generators sharing one Zipf table (the zeta sum over 20M
/// rows is expensive; compute it once).
pub fn ycsb_gens(cfg: &YcsbConfig, cores: u32, seed: u64) -> Vec<Box<dyn FnMut() -> TxnTemplate>> {
    let zipf = ZipfGen::new(cfg.table_rows, cfg.theta);
    (0..cores)
        .map(|c| {
            let mut g = YcsbGen::with_zipf(cfg.clone(), zipf.clone(), seed ^ (u64::from(c) << 20))
                .for_worker(c);
            Box::new(move || g.next_txn()) as Box<dyn FnMut() -> TxnTemplate>
        })
        .collect()
}

/// Per-core TPC-C generators.
pub fn tpcc_gens(cfg: &TpccConfig, cores: u32, seed: u64) -> Vec<Box<dyn FnMut() -> TxnTemplate>> {
    (0..cores)
        .map(|c| {
            let mut g = TpccGen::new(cfg.clone(), c, seed ^ (u64::from(c) << 20));
            Box::new(move || g.next_txn()) as Box<dyn FnMut() -> TxnTemplate>
        })
        .collect()
}

/// Run one YCSB point in the simulator.
pub fn ycsb_point(mut sim: SimConfig, ycsb_cfg: &YcsbConfig, args: &HarnessArgs) -> SimReport {
    args.configure(&mut sim);
    let gens = ycsb_gens(ycsb_cfg, sim.cores, sim.seed);
    run_sim(sim, ycsb_sim_tables(), gens)
}

/// Run one TPC-C point in the simulator. H-STORE partitions by warehouse.
pub fn tpcc_point(mut sim: SimConfig, tpcc_cfg: &TpccConfig, args: &HarnessArgs) -> SimReport {
    args.configure(&mut sim);
    if sim.scheme == CcScheme::HStore {
        sim.hstore_parts = tpcc_cfg.warehouses;
    }
    let mut cfg = tpcc_cfg.clone();
    cfg.workers = sim.cores;
    let gens = tpcc_gens(&cfg, sim.cores, sim.seed);
    run_sim(sim, tpcc_sim_tables(&cfg), gens)
}

/// A result table accumulated by a figure binary.
#[derive(Debug, Default)]
pub struct Report {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Report {
    /// Start a report with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Print as an aligned table with a title.
    pub fn print(&self, title: &str) {
        println!("\n== {title} ==");
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |cells: &[String]| {
            let cols: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            println!("  {}", cols.join("  "));
        };
        line(&self.headers);
        for row in &self.rows {
            line(row);
        }
    }

    /// Write `results/<name>.csv`.
    pub fn write_csv(&self, name: &str) {
        let dir = Path::new("results");
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let path = dir.join(format!("{name}.csv"));
        let mut f = match std::fs::File::create(&path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("cannot write {}: {e}", path.display());
                return;
            }
        };
        let _ = writeln!(f, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(f, "{}", row.join(","));
        }
        println!("  [csv] {}", path.display());
    }
}

/// Format a throughput in million-per-second units (the paper's axes).
pub fn fmt_m(v: f64) -> String {
    format!("{:.3}", v / 1e6)
}

/// Format a fraction as a percentage.
pub fn fmt_pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Print a §3.2 six-category breakdown line for a report row.
pub fn breakdown_cells(report: &SimReport) -> Vec<String> {
    report
        .stats
        .breakdown
        .fractions()
        .iter()
        .map(|f| format!("{:.2}", f))
        .collect()
}

/// Deterministic helper RNG for harness-side decisions.
pub fn harness_rng(seed: u64) -> Xoshiro256 {
    Xoshiro256::seed_from(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_are_increasing() {
        for sweep in [SWEEP, SWEEP_FULL, SWEEP_QUICK] {
            assert!(sweep.windows(2).all(|w| w[0] < w[1]));
            assert!(*sweep.last().unwrap() <= 1024);
        }
    }

    #[test]
    fn ycsb_tables_have_paper_row_size() {
        let t = ycsb_sim_tables();
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].row_size, 1008);
    }

    #[test]
    fn tpcc_tables_mark_district_counter() {
        let t = tpcc_sim_tables(&TpccConfig::default());
        assert_eq!(t.len(), 9);
        assert_eq!(
            t[tpcc::TpccTable::District.id() as usize].counter_init,
            3000
        );
        assert_eq!(t[tpcc::TpccTable::Stock.id() as usize].counter_init, 0);
    }

    #[test]
    fn report_rejects_ragged_rows() {
        let mut r = Report::new(&["a", "b"]);
        r.row(vec!["1".into(), "2".into()]);
        let bad =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| r.row(vec!["1".into()])));
        assert!(bad.is_err());
    }

    #[test]
    fn tiny_end_to_end_ycsb_point() {
        let args = HarnessArgs {
            quick: true,
            full: false,
        };
        let ycsb_cfg = YcsbConfig {
            table_rows: 100_000,
            ..YcsbConfig::read_only()
        };
        let mut sim = SimConfig::new(CcScheme::NoWait, 2);
        sim.measure = 500_000;
        sim.warmup = 50_000;
        let r = ycsb_point(sim, &ycsb_cfg, &args);
        assert!(r.stats.commits > 0);
    }
}
