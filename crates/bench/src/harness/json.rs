//! Minimal JSON parser + the results-envelope validator.
//!
//! The workspace deliberately vendors no serde; the figure binaries
//! hand-format their JSON through [`super::emit`]. This module is the
//! read side: a small recursive-descent parser (objects keep insertion
//! order; numbers are `f64`) and [`validate_envelope`], the single set
//! of rules every `results/*.json` must pass — CI runs it via the
//! `validate_results` binary, and the harness tests round-trip a freshly
//! emitted envelope through it.
//!
//! Envelope rules:
//!
//! 1. top level is `{figure, meta, sections}`; `figure` is a non-empty
//!    string;
//! 2. `meta` carries at least `git`, `ts_method_effective` (which must
//!    name a realizable allocator, never the simulator-only hardware
//!    counter), and `host` with a positive `cores`;
//! 3. `sections` is a non-empty array of objects, each with a unique
//!    non-empty `name`;
//! 4. everywhere in the document: an object carrying percentile keys
//!    must be monotone (`p50 ≤ p90 ≤ p99 ≤ p999 ≤ max`, over whichever
//!    of those keys are present), with `0 < mean ≤ max` when a `mean`
//!    accompanies a non-empty `count`;
//! 5. everywhere in the document: an object carrying admission counters
//!    must reconcile (`accepted + shed + queue_full == submitted`).

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object's fields, if it is one.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(o) => Some(o),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Num(n) => write!(f, "{n}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Arr(a) => write!(f, "[...{} items]", a.len()),
            Value::Obj(o) => write!(f, "{{...{} fields}}", o.len()),
        }
    }
}

/// Parse a JSON document. Errors carry the byte offset.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        s.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number {s:?} at byte {start}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| "bad \\u escape")?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            // Surrogates are not expected in bench output;
                            // map unpaired ones to the replacement char.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                Some(_) => {
                    // Multi-byte UTF-8 passes through untouched.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xC0 == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| "invalid utf-8 in string")?,
                    );
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }
}

/// The simulator-only allocator label that must never appear as an
/// engine run's effective method (PR 4 fixed exactly this misreport).
const HARDWARE_LABEL: &str = "HW Counter";

/// Validate a parsed `results/*.json` document against the shared
/// envelope (see the [module docs](self) for the rules).
pub fn validate_envelope(doc: &Value) -> Result<(), String> {
    let figure = doc
        .get("figure")
        .and_then(Value::as_str)
        .ok_or("missing top-level \"figure\" string")?;
    if figure.is_empty() {
        return Err("empty \"figure\" tag".into());
    }
    let meta = doc.get("meta").ok_or("missing \"meta\" object")?;
    meta.as_obj().ok_or("\"meta\" is not an object")?;
    meta.get("git")
        .and_then(Value::as_str)
        .ok_or("meta.git missing")?;
    let ts = meta
        .get("ts_method_effective")
        .and_then(Value::as_str)
        .ok_or("meta.ts_method_effective missing")?;
    if ts == HARDWARE_LABEL {
        return Err(format!(
            "meta.ts_method_effective is {HARDWARE_LABEL:?} — the simulator-only method \
             cannot be what the engine actually ran"
        ));
    }
    let host = meta.get("host").ok_or("meta.host missing")?;
    let cores = host
        .get("cores")
        .and_then(Value::as_f64)
        .ok_or("meta.host.cores missing")?;
    if cores < 1.0 {
        return Err(format!("meta.host.cores = {cores}"));
    }
    let sections = doc
        .get("sections")
        .and_then(Value::as_arr)
        .ok_or("missing \"sections\" array")?;
    if sections.is_empty() {
        return Err("empty \"sections\" array".into());
    }
    let mut names: Vec<&str> = Vec::new();
    for (i, s) in sections.iter().enumerate() {
        let name = s
            .get("name")
            .and_then(Value::as_str)
            .ok_or(format!("sections[{i}] has no \"name\""))?;
        if name.is_empty() {
            return Err(format!("sections[{i}] has an empty name"));
        }
        if names.contains(&name) {
            return Err(format!("duplicate section name {name:?}"));
        }
        names.push(name);
    }
    walk(doc, "$")
}

/// The percentile chain, least to greatest, as emitted by
/// `LatencyHisto`-backed distributions.
const PERCENTILE_CHAIN: [&str; 5] = ["p50", "p90", "p99", "p999", "max"];

fn walk(v: &Value, path: &str) -> Result<(), String> {
    match v {
        Value::Obj(fields) => {
            check_percentiles(v, path)?;
            check_accounting(v, path)?;
            for (k, child) in fields {
                walk(child, &format!("{path}.{k}"))?;
            }
        }
        Value::Arr(items) => {
            for (i, child) in items.iter().enumerate() {
                walk(child, &format!("{path}[{i}]"))?;
            }
        }
        _ => {}
    }
    Ok(())
}

fn check_percentiles(obj: &Value, path: &str) -> Result<(), String> {
    let present: Vec<(&str, f64)> = PERCENTILE_CHAIN
        .iter()
        .filter_map(|k| obj.get(k).and_then(Value::as_f64).map(|v| (*k, v)))
        .collect();
    // A lone "max" (e.g. a config knob) is not a distribution; require at
    // least two chain keys before enforcing anything.
    if present.len() < 2 {
        return Ok(());
    }
    if let Some(count) = obj.get("count").and_then(Value::as_f64) {
        if count == 0.0 {
            // An empty histogram may carry all-zero percentiles; nothing
            // meaningful to check (and mean is legitimately 0).
            return Ok(());
        }
    }
    for pair in present.windows(2) {
        let ((ka, va), (kb, vb)) = (pair[0], pair[1]);
        if va > vb {
            return Err(format!(
                "{path}: percentiles not monotone: {ka}={va} > {kb}={vb}"
            ));
        }
    }
    if let (Some(mean), Some(max)) = (
        obj.get("mean").and_then(Value::as_f64),
        obj.get("max").and_then(Value::as_f64),
    ) {
        let nonempty = obj.get("count").and_then(Value::as_f64).unwrap_or(1.0) > 0.0;
        if nonempty && !(mean > 0.0 && mean <= max) {
            return Err(format!("{path}: mean {mean} outside (0, max={max}]"));
        }
    }
    Ok(())
}

fn check_accounting(obj: &Value, path: &str) -> Result<(), String> {
    let keys = ["submitted", "accepted", "shed", "queue_full"];
    let vals: Vec<Option<f64>> = keys
        .iter()
        .map(|k| obj.get(k).and_then(Value::as_f64))
        .collect();
    if vals.iter().all(Option::is_none) {
        return Ok(());
    }
    let [submitted, accepted, shed, queue_full] = vals[..] else {
        unreachable!()
    };
    let (Some(submitted), Some(accepted), Some(shed), Some(queue_full)) =
        (submitted, accepted, shed, queue_full)
    else {
        return Err(format!(
            "{path}: partial admission counters (need all of {keys:?})"
        ));
    };
    if accepted + shed + queue_full != submitted {
        return Err(format!(
            "{path}: admission accounting does not reconcile: \
             {accepted} + {shed} + {queue_full} != {submitted}"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v =
            parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny"}, "d": null, "e": true}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("d"), Some(&Value::Null));
        assert_eq!(v.get("e"), Some(&Value::Bool(true)));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a": }"#).is_err());
        assert!(parse(r#"{"a": 1} trailing"#).is_err());
        assert!(parse("[1, 2,]").is_err());
    }

    fn envelope(sections: &str) -> String {
        format!(
            r#"{{"figure":"f","meta":{{"git":"abc","ts_method_effective":"Atomic",
               "host":{{"cores":8}}}},"sections":[{sections}]}}"#
        )
    }

    #[test]
    fn accepts_a_minimal_envelope() {
        let doc = parse(&envelope(r#"{"name":"sim","points":[]}"#)).unwrap();
        validate_envelope(&doc).unwrap();
    }

    #[test]
    fn rejects_structural_violations() {
        for (bad, why) in [
            (r#"{"figure":"f"}"#.to_string(), "no meta"),
            (envelope(r#"{"points":[]}"#), "unnamed section"),
            (
                envelope(r#"{"name":"a"},{"name":"a"}"#),
                "duplicate section",
            ),
            (
                r#"{"figure":"f","meta":{"git":"x","ts_method_effective":"HW Counter",
                   "host":{"cores":8}},"sections":[{"name":"a"}]}"#
                    .to_string(),
                "hardware label",
            ),
        ] {
            let doc = parse(&bad).unwrap();
            assert!(validate_envelope(&doc).is_err(), "accepted: {why}");
        }
    }

    #[test]
    fn percentile_monotonicity_is_enforced_everywhere() {
        let good = envelope(
            r#"{"name":"a","hist":{"count":10,"p50":1,"p90":2,"p99":3,"p999":3,"max":9,"mean":2}}"#,
        );
        validate_envelope(&parse(&good).unwrap()).unwrap();
        let bad =
            envelope(r#"{"name":"a","deep":[{"hist":{"count":10,"p50":5,"p99":3,"max":9}}]}"#);
        let err = validate_envelope(&parse(&bad).unwrap()).unwrap_err();
        assert!(err.contains("not monotone"), "{err}");
        // Empty histograms are exempt.
        let empty = envelope(r#"{"name":"a","hist":{"count":0,"p50":0,"p99":0,"max":0}}"#);
        validate_envelope(&parse(&empty).unwrap()).unwrap();
    }

    #[test]
    fn admission_accounting_must_reconcile() {
        let good = envelope(r#"{"name":"a","submitted":10,"accepted":7,"shed":2,"queue_full":1}"#);
        validate_envelope(&parse(&good).unwrap()).unwrap();
        let bad = envelope(r#"{"name":"a","submitted":10,"accepted":7,"shed":2,"queue_full":2}"#);
        let err = validate_envelope(&parse(&bad).unwrap()).unwrap_err();
        assert!(err.contains("reconcile"), "{err}");
        let partial = envelope(r#"{"name":"a","submitted":10,"accepted":7}"#);
        assert!(validate_envelope(&parse(&partial).unwrap()).is_err());
    }
}
