//! The one JSON emitter behind every `results/*.json`.
//!
//! Each figure binary builds an [`Envelope`], adds its sections, and
//! calls [`Envelope::write`]. The envelope shape is uniform across all
//! outputs:
//!
//! ```json
//! {
//!   "figure": "fig_latency",
//!   "meta": {
//!     "git": "abc1234",
//!     "ts_method_effective": "Atomic",
//!     "host": {"cores": 8, "arch": "x86_64", "os": "linux"},
//!     ...figure-specific meta...
//!   },
//!   "sections": [
//!     {"name": "sim", ...},
//!     {"name": "engine", ...}
//!   ]
//! }
//! ```
//!
//! Section bodies stay figure-specific (a throughput sweep, a latency
//! table, a padding audit); the envelope is what the CI validator
//! ([`super::json::validate_envelope`]) checks, so every file shares
//! provenance (`meta.git`), the effective timestamp method the engine
//! actually ran (never the simulator-only hardware counter), and the
//! host shape the numbers came from.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

use abyss_common::TsMethod;

/// Escape a string for inclusion in JSON output.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` for JSON output: finite values as-is, the rest as 0
/// (JSON has no NaN/Infinity, and a bench emitting one is a bug better
/// caught by the validator's monotonicity rules than by a parse error).
pub fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".into()
    }
}

/// The label the envelope records as the timestamp method the engine
/// actually allocated with: the configured method after hardware-counter
/// degradation (no real hardware counter exists off the simulator, so
/// [`TsMethod::Hardware`] runs as atomic-increment — the misreport PR 4
/// fixed).
pub fn effective_ts_label(method: TsMethod) -> String {
    match method {
        TsMethod::Hardware => TsMethod::Atomic.label(),
        m => m.label(),
    }
}

/// Builder for one results file in the shared envelope shape.
pub struct Envelope {
    figure: String,
    /// Meta fields as (key, pre-rendered JSON value), in insertion order.
    meta: Vec<(String, String)>,
    /// Pre-rendered section objects, `"name"` already spliced in.
    sections: Vec<String>,
}

impl Envelope {
    /// Start an envelope for `figure` (also the output filename stem).
    ///
    /// Meta starts with the uniform keys: `git` (short commit hash, or
    /// `"unknown"` outside a checkout), `ts_method_effective` (the
    /// engine default, [`TsMethod::Atomic`] — override with
    /// [`Envelope::ts_method`] if the figure configures another), and
    /// `host`.
    pub fn new(figure: &str) -> Self {
        let mut e = Self {
            figure: figure.to_string(),
            meta: Vec::new(),
            sections: Vec::new(),
        };
        e.meta_str("git", &git_short_sha());
        e.meta_str("ts_method_effective", &effective_ts_label(TsMethod::Atomic));
        e.meta.push(("host".into(), host_json()));
        e
    }

    /// Record the timestamp method this figure configured; the envelope
    /// stores the *effective* label (hardware degrades to atomic).
    pub fn ts_method(&mut self, method: TsMethod) -> &mut Self {
        let label = effective_ts_label(method);
        self.set_meta("ts_method_effective", format!("\"{}\"", escape(&label)));
        self
    }

    /// Add (or replace) a string meta field.
    pub fn meta_str(&mut self, key: &str, value: &str) -> &mut Self {
        self.set_meta(key, format!("\"{}\"", escape(value)));
        self
    }

    /// Add (or replace) a numeric meta field.
    pub fn meta_num(&mut self, key: &str, value: f64) -> &mut Self {
        self.set_meta(key, num(value));
        self
    }

    /// Add (or replace) a raw JSON meta field (arrays, objects).
    pub fn meta_raw(&mut self, key: &str, value: &str) -> &mut Self {
        self.set_meta(key, value.to_string());
        self
    }

    fn set_meta(&mut self, key: &str, rendered: String) {
        if let Some(slot) = self.meta.iter_mut().find(|(k, _)| k == key) {
            slot.1 = rendered;
        } else {
            self.meta.push((key.to_string(), rendered));
        }
    }

    /// Append a section. `body` must be a rendered JSON object (`{...}`);
    /// the section's `"name"` is spliced in as its first field.
    pub fn section(&mut self, name: &str, body: &str) -> &mut Self {
        let body = body.trim();
        assert!(
            body.starts_with('{') && body.ends_with('}'),
            "section body must be a JSON object, got: {}",
            &body[..body.len().min(40)]
        );
        let rest = body[1..].trim_start();
        let spliced = if rest == "}" {
            format!("{{\"name\":\"{}\"}}", escape(name))
        } else {
            format!("{{\"name\":\"{}\",{}", escape(name), rest)
        };
        self.sections.push(spliced);
        self
    }

    /// Render the full document.
    pub fn to_json(&self) -> String {
        let meta: Vec<String> = self
            .meta
            .iter()
            .map(|(k, v)| format!("\"{}\":{}", escape(k), v))
            .collect();
        format!(
            "{{\n\"figure\":\"{}\",\n\"meta\":{{{}}},\n\"sections\":[\n{}\n]\n}}\n",
            escape(&self.figure),
            meta.join(","),
            self.sections.join(",\n")
        )
    }

    /// Write the document to `<dir>/<figure>.json`, creating `dir`.
    pub fn write_to(&self, dir: impl AsRef<Path>) -> std::io::Result<PathBuf> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.figure));
        fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Write the document to `results/<figure>.json` and report the path
    /// on stdout (the convention every figure binary follows).
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let path = self.write_to("results")?;
        println!("wrote {}", path.display());
        Ok(path)
    }
}

fn git_short_sha() -> String {
    Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

fn host_json() -> String {
    format!(
        "{{\"cores\":{},\"arch\":\"{}\",\"os\":\"{}\"}}",
        abyss_common::available_cores(),
        escape(std::env::consts::ARCH),
        escape(std::env::consts::OS),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::json::{parse, validate_envelope};

    #[test]
    fn envelope_round_trips_through_the_validator() {
        let mut e = Envelope::new("unit_emit");
        e.meta_num("threads", 4.0)
            .section("sim", r#"{"points":[{"threads":1,"tput":123.5}]}"#)
            .section("engine", "{}");
        let doc = parse(&e.to_json()).expect("emitted JSON parses");
        validate_envelope(&doc).expect("emitted JSON validates");
        assert_eq!(doc.get("figure").unwrap().as_str(), Some("unit_emit"));
        let sections = doc.get("sections").unwrap().as_arr().unwrap();
        assert_eq!(sections.len(), 2);
        assert_eq!(sections[0].get("name").unwrap().as_str(), Some("sim"));
        assert_eq!(
            sections[0].get("points").unwrap().as_arr().unwrap()[0]
                .get("tput")
                .unwrap()
                .as_f64(),
            Some(123.5)
        );
        assert_eq!(sections[1].get("name").unwrap().as_str(), Some("engine"));
    }

    #[test]
    fn meta_fields_replace_not_duplicate() {
        let mut e = Envelope::new("unit_meta");
        e.meta_str("git", "feedface");
        e.ts_method(TsMethod::Hardware);
        let doc = parse(&e.to_json()).unwrap();
        assert_eq!(
            doc.get("meta").unwrap().get("git").unwrap().as_str(),
            Some("feedface")
        );
        // Hardware degrades to the atomic label — never "HW Counter".
        assert_eq!(
            doc.get("meta")
                .unwrap()
                .get("ts_method_effective")
                .unwrap()
                .as_str(),
            Some(effective_ts_label(TsMethod::Atomic).as_str())
        );
        let rendered = e.to_json();
        assert_eq!(rendered.matches("\"git\"").count(), 1);
    }

    #[test]
    fn host_meta_reports_positive_cores() {
        let doc = parse(&Envelope::new("unit_host").section("s", "{}").to_json()).unwrap();
        let cores = doc
            .get("meta")
            .unwrap()
            .get("host")
            .unwrap()
            .get("cores")
            .unwrap()
            .as_f64()
            .unwrap();
        assert!(cores >= 1.0);
    }

    #[test]
    fn non_finite_numbers_render_as_zero() {
        assert_eq!(num(f64::NAN), "0");
        assert_eq!(num(f64::INFINITY), "0");
        assert_eq!(num(2.5), "2.5");
    }

    #[test]
    fn writes_named_file_into_directory() {
        let dir = std::env::temp_dir().join(format!("abyss_emit_test_{}", std::process::id()));
        let mut e = Envelope::new("unit_write");
        e.section("only", r#"{"v":1}"#);
        let path = e.write_to(&dir).unwrap();
        assert!(path.ends_with("unit_write.json"));
        let doc = parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        validate_envelope(&doc).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
