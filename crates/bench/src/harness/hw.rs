//! Hardware performance counters via `perf_event_open` — best-effort.
//!
//! Figures that want cycles/instructions alongside their wall-clock
//! numbers open a [`HwCounters`] pair around the measured region. The
//! syscall is frequently unavailable (containers without
//! `CAP_PERFMON`, `perf_event_paranoid` locked down, non-Linux hosts),
//! so everything here degrades to `None` instead of erroring — a figure
//! must never fail because the host hides its PMU. Like the rest of the
//! repo's OS glue ([`abyss_common::affinity`]), the syscalls are raw:
//! no libc binding, no new dependency.

/// One open perf-event fd counting a hardware event for this thread.
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod imp {
    /// `PERF_TYPE_HARDWARE` generalized event ids.
    const PERF_COUNT_HW_CPU_CYCLES: u64 = 0;
    const PERF_COUNT_HW_INSTRUCTIONS: u64 = 1;

    /// `perf_event_attr`, laid out as the kernel reads it. Only the
    /// leading words matter for a plain counting event; the rest stay
    /// zero. `size` is `PERF_ATTR_SIZE_VER0` (64) — the kernel accepts
    /// any published size and zero-fills forward.
    const ATTR_WORDS: usize = 8;
    const ATTR_SIZE: u64 = 64;
    /// Flag bits in word 5: `disabled=0` (count immediately),
    /// `exclude_kernel` (bit 5) and `exclude_hv` (bit 6) — user cycles
    /// only, and the unprivileged-friendly mode.
    const ATTR_FLAGS: u64 = (1 << 5) | (1 << 6);

    #[cfg(target_arch = "x86_64")]
    const SYS_PERF_EVENT_OPEN: i64 = 298;
    #[cfg(target_arch = "aarch64")]
    const SYS_PERF_EVENT_OPEN: i64 = 241;
    #[cfg(target_arch = "x86_64")]
    const SYS_READ: i64 = 0;
    #[cfg(target_arch = "aarch64")]
    const SYS_READ: i64 = 63;
    #[cfg(target_arch = "x86_64")]
    const SYS_CLOSE: i64 = 3;
    #[cfg(target_arch = "aarch64")]
    const SYS_CLOSE: i64 = 57;

    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall4(nr: i64, a: i64, b: i64, c: i64, d: i64) -> i64 {
        let ret: i64;
        // SAFETY: caller supplies arguments valid for `nr`; the syscall
        // instruction clobbers rcx/r11 only.
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") nr => ret,
                in("rdi") a,
                in("rsi") b,
                in("rdx") c,
                in("r10") d,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall4(nr: i64, a: i64, b: i64, c: i64, d: i64) -> i64 {
        let ret: i64;
        // SAFETY: caller supplies arguments valid for `nr`.
        unsafe {
            std::arch::asm!(
                "svc #0",
                in("x8") nr,
                inlateout("x0") a => ret,
                in("x1") b,
                in("x2") c,
                in("x3") d,
                options(nostack),
            );
        }
        ret
    }

    /// Open one counting event for the calling thread, any CPU,
    /// standalone (no group), no flags.
    fn open_counter(config: u64) -> Option<i32> {
        let mut attr = [0u64; ATTR_WORDS];
        attr[0] = ATTR_SIZE << 32; // type = PERF_TYPE_HARDWARE (0), size
        attr[1] = config;
        attr[5] = ATTR_FLAGS;
        let fd = unsafe {
            syscall5(
                SYS_PERF_EVENT_OPEN,
                attr.as_ptr() as i64,
                0,  // pid: calling thread
                -1, // cpu: any
                -1, // group_fd: standalone
                0,  // flags
            )
        };
        (fd >= 0).then_some(fd as i32)
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall5(nr: i64, a: i64, b: i64, c: i64, d: i64, e: i64) -> i64 {
        let ret: i64;
        // SAFETY: as syscall4, with the fifth argument in r8.
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") nr => ret,
                in("rdi") a,
                in("rsi") b,
                in("rdx") c,
                in("r10") d,
                in("r8") e,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall5(nr: i64, a: i64, b: i64, c: i64, d: i64, e: i64) -> i64 {
        let ret: i64;
        // SAFETY: as syscall4, with the fifth argument in x4.
        unsafe {
            std::arch::asm!(
                "svc #0",
                in("x8") nr,
                inlateout("x0") a => ret,
                in("x1") b,
                in("x2") c,
                in("x3") d,
                in("x4") e,
                options(nostack),
            );
        }
        ret
    }

    fn read_counter(fd: i32) -> Option<u64> {
        let mut value = 0u64;
        let n = unsafe {
            syscall4(
                SYS_READ,
                i64::from(fd),
                std::ptr::from_mut(&mut value) as i64,
                8,
                0,
            )
        };
        (n == 8).then_some(value)
    }

    /// A cycles + instructions counter pair for the calling thread.
    /// Construction fails (`None`) wherever the kernel refuses the
    /// syscall — callers report "unavailable" and move on.
    pub struct HwCounters {
        cycles_fd: i32,
        instrs_fd: i32,
    }

    impl HwCounters {
        pub fn start() -> Option<Self> {
            let cycles_fd = open_counter(PERF_COUNT_HW_CPU_CYCLES)?;
            let Some(instrs_fd) = open_counter(PERF_COUNT_HW_INSTRUCTIONS) else {
                unsafe { syscall4(SYS_CLOSE, i64::from(cycles_fd), 0, 0, 0) };
                return None;
            };
            Some(Self {
                cycles_fd,
                instrs_fd,
            })
        }

        pub fn read(&self) -> Option<(u64, u64)> {
            Some((read_counter(self.cycles_fd)?, read_counter(self.instrs_fd)?))
        }
    }

    impl Drop for HwCounters {
        fn drop(&mut self) {
            unsafe {
                syscall4(SYS_CLOSE, i64::from(self.cycles_fd), 0, 0, 0);
                syscall4(SYS_CLOSE, i64::from(self.instrs_fd), 0, 0, 0);
            }
        }
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod imp {
    /// Portable stub: no PMU access off Linux/x86_64/aarch64.
    pub struct HwCounters {}

    impl HwCounters {
        pub fn start() -> Option<Self> {
            None
        }

        pub fn read(&self) -> Option<(u64, u64)> {
            None
        }
    }
}

pub use imp::HwCounters;

/// One-word availability label for figure metadata.
pub fn hw_counters_label() -> &'static str {
    if HwCounters::start().is_some() {
        "available"
    } else {
        "unavailable"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_degrade_gracefully_or_count_forward() {
        // Containers routinely deny perf_event_open: None is a valid
        // outcome. When the PMU is reachable, cycles must advance across
        // real work and reads must never error.
        let Some(ctr) = HwCounters::start() else {
            return;
        };
        let (c0, i0) = ctr.read().expect("open counter reads");
        let mut sink = 0u64;
        for i in 0..100_000u64 {
            sink = sink.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        std::hint::black_box(sink);
        let (c1, i1) = ctr.read().expect("open counter reads");
        assert!(c1 >= c0, "cycles ran backwards: {c0} -> {c1}");
        assert!(i1 > i0, "instructions did not advance: {i0} -> {i1}");
    }

    #[test]
    fn label_is_stable() {
        let a = hw_counters_label();
        let b = hw_counters_label();
        assert_eq!(a, b);
        assert!(a == "available" || a == "unavailable");
    }
}
