//! The unified benchmark harness (shumai idiom).
//!
//! Every figure binary in this crate used to hand-roll its own thread
//! spawning, warmup, measurement window, and JSON emission — so no two
//! figures measured quite the same way, and no perf claim was comparable
//! across PRs. This module is now the only place in `abyss-bench` that
//! spawns threads or reads a wall clock (a source-guard test pins that),
//! in the shape of the shumai benchmark framework:
//!
//! * a [`BenchSpec`] trait — `load → run → cleanup`, with per-thread
//!   results merged via `AddAssign`;
//! * a per-thread [`BenchContext`] carrying a ready-count start barrier
//!   plus a running flag, so every thread starts and stops on the same
//!   edge (no straggler is measured while its siblings still spawn);
//! * declarative run shapes: bounded ([`run_bounded`]) and timed
//!   ([`run_timed`]) runs, repeats with min/median/max
//!   ([`repeat`]/[`summarize`]), and the uniform engine warmup/measure
//!   windows ([`Windows`]) every engine-backed figure shares;
//! * core pinning via [`abyss_common::affinity`] (round-robin and
//!   compact placement, portable no-op fallback);
//! * exactly one JSON emitter ([`emit::Envelope`]) producing the uniform
//!   `{figure, meta, sections}` envelope all `results/*.json` share, and
//!   a minimal parser + validator ([`json`]) that CI runs over every one
//!   of them.
//!
//! Engine-backed figures delegate their measured loop to
//! `abyss_core::run_workers`, which carries the same barrier +
//! pinning discipline inside the engine crate; the harness runner below
//! is for bench-owned threads (microbenchmarks, open-loop producers).

pub mod emit;
pub mod hw;
pub mod json;
pub mod time;

use std::ops::AddAssign;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

pub use abyss_common::{available_cores, pin_to_core, PinPolicy};
pub use time::{Pacer, Stopwatch};

/// Uniform engine warmup (full runs). Chosen as the repo-wide default in
/// PR 9 — long enough that every scheme's caches, epoch ticker, and WAL
/// flusher reach steady state on the small engine tables, short enough
/// that a six-series figure still runs in seconds. Documented in
/// DESIGN.md ("The bench harness").
pub const ENGINE_WARMUP: Duration = Duration::from_millis(150);
/// Uniform engine measurement window (full runs).
pub const ENGINE_MEASURE: Duration = Duration::from_millis(600);
/// Uniform engine warmup under `--quick` (CI smoke).
pub const ENGINE_WARMUP_QUICK: Duration = Duration::from_millis(40);
/// Uniform engine measurement window under `--quick`.
pub const ENGINE_MEASURE_QUICK: Duration = Duration::from_millis(150);

/// The warmup/measure pair an engine-backed figure runs with. One source
/// of truth: before the harness, fig_latency warmed for 150 ms,
/// fig_ycsbe for 150 ms but measured 500 ms, fig03's real panel warmed
/// 200 ms, and fig_service's peak probe 100 ms — with no stated reason
/// for any of the differences.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Windows {
    /// Time to run before statistics reset.
    pub warmup: Duration,
    /// Measured window after the reset.
    pub measure: Duration,
}

impl Windows {
    /// The uniform engine windows for this invocation.
    pub fn engine(quick: bool) -> Self {
        if quick {
            Self {
                warmup: ENGINE_WARMUP_QUICK,
                measure: ENGINE_MEASURE_QUICK,
            }
        } else {
            Self {
                warmup: ENGINE_WARMUP,
                measure: ENGINE_MEASURE,
            }
        }
    }
}

/// Per-thread handle into a harness run.
///
/// `run` implementations do their thread-local setup first, then call
/// [`BenchContext::wait_for_start`] exactly once; the runner releases
/// every thread on the same edge. Timed specs loop `while
/// ctx.is_running()`; bounded specs just run to completion.
pub struct BenchContext<'a> {
    /// This thread's index, `0..threads`.
    pub thread_id: u32,
    /// Total threads in the run.
    pub threads: u32,
    ready: &'a AtomicU64,
    running: &'a AtomicBool,
}

impl BenchContext<'_> {
    /// Report ready and spin until the runner releases the whole group.
    pub fn wait_for_start(&self) {
        self.ready.fetch_add(1, Ordering::AcqRel);
        while !self.running.load(Ordering::Acquire) {
            std::hint::spin_loop();
        }
    }

    /// True until the runner arms the stop edge (timed runs); always true
    /// for bounded runs.
    #[inline]
    pub fn is_running(&self) -> bool {
        self.running.load(Ordering::Relaxed)
    }
}

/// A multi-threaded benchmark in the shumai idiom: `load` once on the
/// coordinating thread, `run` on every worker thread, `cleanup` once
/// after the join. Per-thread results merge with `+=`.
pub trait BenchSpec: Sync {
    /// Per-thread result; merging must be associative and commutative
    /// (the runner folds per-thread results in thread order, repeats
    /// fold in repeat order).
    type Result: Default + AddAssign + Clone + Send;

    /// One-time setup before any thread spawns.
    fn load(&mut self) {}

    /// The per-thread body. Must call [`BenchContext::wait_for_start`]
    /// after thread-local setup; timed runs must poll
    /// [`BenchContext::is_running`].
    fn run(&self, ctx: &mut BenchContext<'_>) -> Self::Result;

    /// One-time teardown after every thread joined.
    fn cleanup(&mut self) {}
}

/// Outcome of one harness run.
#[derive(Debug, Clone)]
pub struct RunOutcome<R> {
    /// All per-thread results folded with `+=`.
    pub merged: R,
    /// Each thread's own result, in thread order.
    pub per_thread: Vec<R>,
    /// Start-edge wall: barrier release → stop edge (timed: the moment
    /// the running flag was cleared; bounded: the last thread finishing).
    /// Thread spawn and `load` cost are never inside the window.
    pub wall: Duration,
}

fn run_inner<S: BenchSpec>(
    spec: &mut S,
    threads: u32,
    pin: PinPolicy,
    timed: Option<Duration>,
) -> RunOutcome<S::Result> {
    assert!(threads > 0, "a run needs at least one thread");
    spec.load();
    let ready = AtomicU64::new(0);
    let running = AtomicBool::new(false);
    let mut per_thread: Vec<S::Result> = Vec::with_capacity(threads as usize);
    let mut wall = Duration::ZERO;
    {
        let spec: &S = spec;
        std::thread::scope(|scope| {
            let ready = &ready;
            let running = &running;
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    scope.spawn(move || {
                        pin.apply(t, threads);
                        let mut ctx = BenchContext {
                            thread_id: t,
                            threads,
                            ready,
                            running,
                        };
                        spec.run(&mut ctx)
                    })
                })
                .collect();
            while ready.load(Ordering::Acquire) < u64::from(threads) {
                std::hint::spin_loop();
            }
            let clock = Stopwatch::start();
            running.store(true, Ordering::Release);
            if let Some(measure) = timed {
                std::thread::sleep(measure);
                running.store(false, Ordering::Release);
                wall = clock.elapsed();
            }
            for h in handles {
                per_thread.push(h.join().expect("bench thread panicked"));
            }
            if timed.is_none() {
                wall = clock.elapsed();
            }
        });
    }
    spec.cleanup();
    let mut merged = S::Result::default();
    for r in &per_thread {
        merged += r.clone();
    }
    RunOutcome {
        merged,
        per_thread,
        wall,
    }
}

/// Run `spec` on `threads` threads until every thread's `run` returns
/// (fixed work per thread). The wall covers barrier release → last
/// thread done.
pub fn run_bounded<S: BenchSpec>(
    spec: &mut S,
    threads: u32,
    pin: PinPolicy,
) -> RunOutcome<S::Result> {
    run_inner(spec, threads, pin, None)
}

/// Run `spec` on `threads` threads for `measure`: the runner releases
/// the barrier, sleeps, clears the running flag, and joins. Specs must
/// loop on [`BenchContext::is_running`].
pub fn run_timed<S: BenchSpec>(
    spec: &mut S,
    threads: u32,
    measure: Duration,
    pin: PinPolicy,
) -> RunOutcome<S::Result> {
    run_inner(spec, threads, pin, Some(measure))
}

/// min/median/max over a repeat series (the declarative `repeats` knob).
#[derive(Debug, Clone, PartialEq)]
pub struct RepeatSummary {
    /// Best repeat.
    pub min: f64,
    /// Median repeat (lower-middle for even counts).
    pub median: f64,
    /// Worst repeat.
    pub max: f64,
    /// Every repeat's metric, in run order.
    pub runs: Vec<f64>,
}

impl RepeatSummary {
    /// Render as a JSON object fragment.
    pub fn json(&self) -> String {
        format!(
            "{{\"min\":{:.1},\"median\":{:.1},\"max\":{:.1},\"repeats\":{}}}",
            self.min,
            self.median,
            self.max,
            self.runs.len()
        )
    }
}

/// Summarize a repeat series. Panics on an empty series — a figure that
/// ran zero repeats has nothing to report.
pub fn summarize(runs: Vec<f64>) -> RepeatSummary {
    assert!(!runs.is_empty(), "summarize() needs at least one run");
    let mut sorted = runs.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN metric"));
    RepeatSummary {
        min: sorted[0],
        median: sorted[(sorted.len() - 1) / 2],
        max: sorted[sorted.len() - 1],
        runs,
    }
}

/// Run `f` `repeats` times; merge every repeat's full result with `+=`
/// (histograms keep *all* samples — reporting only the last repeat was
/// the fig_latency p999 bug) and summarize the scalar metric each repeat
/// returned alongside.
pub fn repeat<R: Default + AddAssign>(
    repeats: u32,
    mut f: impl FnMut(u32) -> (R, f64),
) -> (R, RepeatSummary) {
    assert!(repeats > 0, "repeat() needs at least one repeat");
    let mut merged = R::default();
    let mut metrics = Vec::with_capacity(repeats as usize);
    for i in 0..repeats {
        let (r, metric) = f(i);
        merged += r;
        metrics.push(metric);
    }
    (merged, summarize(metrics))
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountSpec {
        per_thread: u64,
        loads: u32,
        cleanups: u32,
    }

    impl BenchSpec for CountSpec {
        type Result = u64;
        fn load(&mut self) {
            self.loads += 1;
        }
        fn run(&self, ctx: &mut BenchContext<'_>) -> u64 {
            ctx.wait_for_start();
            let mut n = 0;
            for _ in 0..self.per_thread {
                n += 1;
            }
            n
        }
        fn cleanup(&mut self) {
            self.cleanups += 1;
        }
    }

    #[test]
    fn bounded_run_merges_per_thread_results() {
        let mut spec = CountSpec {
            per_thread: 1000,
            loads: 0,
            cleanups: 0,
        };
        let out = run_bounded(&mut spec, 4, PinPolicy::None);
        assert_eq!(out.merged, 4000);
        assert_eq!(out.per_thread, vec![1000; 4]);
        assert_eq!((spec.loads, spec.cleanups), (1, 1));
        assert!(out.wall > Duration::ZERO);
    }

    struct SpinSpec;
    impl BenchSpec for SpinSpec {
        type Result = u64;
        fn run(&self, ctx: &mut BenchContext<'_>) -> u64 {
            ctx.wait_for_start();
            let mut n = 0;
            while ctx.is_running() {
                n += 1;
                std::hint::spin_loop();
            }
            n
        }
    }

    #[test]
    fn timed_run_stops_on_the_stop_edge() {
        let out = run_timed(&mut SpinSpec, 2, Duration::from_millis(20), PinPolicy::None);
        assert!(out.merged > 0);
        assert!(out.wall >= Duration::from_millis(20));
        // The stop edge is sharp: wall is the flag window, not the joins.
        assert!(out.wall < Duration::from_millis(200));
    }

    #[test]
    fn summarize_orders_min_median_max() {
        let s = summarize(vec![3.0, 1.0, 2.0]);
        assert_eq!((s.min, s.median, s.max), (1.0, 2.0, 3.0));
        let s = summarize(vec![4.0, 1.0]);
        assert_eq!((s.min, s.median, s.max), (1.0, 1.0, 4.0));
    }

    #[test]
    fn repeat_merges_across_repeats() {
        #[derive(Default, Clone, PartialEq, Debug)]
        struct Samples(Vec<u32>);
        impl AddAssign for Samples {
            fn add_assign(&mut self, rhs: Self) {
                self.0.extend(rhs.0);
            }
        }
        // Three repeats each contribute their histogram-like payload: the
        // merged result must hold all of them, not just the last.
        let (merged, summary) = repeat(3, |i| (Samples(vec![i]), f64::from(i)));
        assert_eq!(merged, Samples(vec![0, 1, 2]));
        assert_eq!(summary.runs, vec![0.0, 1.0, 2.0]);
        assert_eq!(summary.median, 1.0);
    }

    #[test]
    fn engine_windows_are_uniform() {
        let full = Windows::engine(false);
        assert_eq!(full.warmup, ENGINE_WARMUP);
        assert_eq!(full.measure, ENGINE_MEASURE);
        let quick = Windows::engine(true);
        assert!(quick.warmup < full.warmup && quick.measure < full.measure);
    }
}
