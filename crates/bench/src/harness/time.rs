//! The harness's clocks.
//!
//! Wall-clock reads in `abyss-bench` live here and nowhere else (the
//! source guard enforces it), so every figure times the same way: a
//! [`Stopwatch`] for elapsed-time windows and a [`Pacer`] for open-loop
//! request pacing. Figures that hand-rolled `Instant` pairs inside their
//! measured loops (dispatch_micro, fig_service) moved onto these plus
//! the engine drivers' start/stop-edge accounting.

use std::time::{Duration, Instant};

/// A started wall clock.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Start the clock now.
    pub fn start() -> Self {
        Self {
            started: Instant::now(),
        }
    }

    /// Time since the clock started.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Time since the clock started, in nanoseconds.
    pub fn elapsed_ns(&self) -> u64 {
        self.elapsed().as_nanos() as u64
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

/// Open-loop request pacing: a fixed offered rate sliced into ticks.
///
/// Each [`Pacer::next_batch`] sleeps to the next tick boundary and
/// returns how many requests the caller should submit to stay on its
/// rate. Fractional per-tick budgets accumulate (a 3.5-request tick
/// alternates 3 and 4); when the producer falls behind — the submission
/// path itself blocked — the catch-up burst is bounded to
/// [`Pacer::MAX_CATCH_UP_TICKS`] ticks' worth so a long stall doesn't
/// turn into one giant spike that measures the backlog, not the service.
#[derive(Debug)]
pub struct Pacer {
    tick: Duration,
    per_tick: f64,
    /// Accumulated fractional budget not yet released.
    carry: f64,
    next: Instant,
}

impl Pacer {
    /// A stalled producer releases at most this many ticks of backlog in
    /// one batch.
    pub const MAX_CATCH_UP_TICKS: f64 = 4.0;

    /// Pace `rate_per_sec` requests in `tick`-sized slices, starting now.
    pub fn new(rate_per_sec: f64, tick: Duration) -> Self {
        assert!(rate_per_sec > 0.0 && tick > Duration::ZERO);
        Self {
            tick,
            per_tick: rate_per_sec * tick.as_secs_f64(),
            carry: 0.0,
            next: Instant::now() + tick,
        }
    }

    /// Sleep to the next tick boundary, then return the number of
    /// requests to submit now.
    pub fn next_batch(&mut self) -> u64 {
        let now = Instant::now();
        if let Some(wait) = self.next.checked_duration_since(now) {
            std::thread::sleep(wait);
            self.carry += self.per_tick;
        } else {
            // Behind schedule: credit the missed ticks, bounded.
            let behind = now.duration_since(self.next).as_secs_f64() / self.tick.as_secs_f64();
            let ticks = (1.0 + behind).min(Self::MAX_CATCH_UP_TICKS);
            self.carry += self.per_tick * ticks;
        }
        self.next += self.tick;
        if self.next < Instant::now() {
            // Re-anchor after a long stall so we don't burst for many
            // iterations trying to replay the past.
            self.next = Instant::now() + self.tick;
        }
        let batch = self.carry.floor();
        self.carry -= batch;
        batch as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_moves_forward() {
        let sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(2));
        assert!(sw.elapsed() >= Duration::from_millis(2));
        assert!(sw.elapsed_ns() > 0);
    }

    #[test]
    fn pacer_hits_its_rate_roughly() {
        // 10k/s over 50 ms of 1 ms ticks ≈ 500 requests.
        let mut p = Pacer::new(10_000.0, Duration::from_millis(1));
        let sw = Stopwatch::start();
        let mut total = 0u64;
        while sw.elapsed() < Duration::from_millis(50) {
            total += p.next_batch();
        }
        assert!(
            (200..=1200).contains(&total),
            "paced {total} requests in 50ms at 10k/s"
        );
    }

    #[test]
    fn pacer_bounds_catch_up_bursts() {
        let mut p = Pacer::new(100_000.0, Duration::from_millis(1));
        // Simulate a long stall: sleep 50 ticks' worth.
        std::thread::sleep(Duration::from_millis(50));
        let burst = p.next_batch();
        // Unbounded catch-up would be ~5000; the cap holds it to ≤ 4 ticks.
        assert!(
            burst <= (100.0 * Pacer::MAX_CATCH_UP_TICKS) as u64 + 1,
            "burst {burst} exceeds the catch-up bound"
        );
    }

    #[test]
    fn fractional_budgets_accumulate() {
        // 1500/s at 1 ms ticks = 1.5/tick: batches alternate 1 and 2.
        let mut p = Pacer::new(1_500.0, Duration::from_millis(1));
        let batches: Vec<u64> = (0..6).map(|_| p.next_batch()).collect();
        let total: u64 = batches.iter().sum();
        assert!(
            (7..=12).contains(&total),
            "6 ticks at 1.5/tick paced {batches:?}"
        );
    }
}
