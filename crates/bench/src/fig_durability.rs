//! fig_durability — what durability costs at one thousand cores.
//!
//! The paper evaluates every scheme with logging switched off; CCBench
//! (Tanabe et al.) shows protocol rankings shift once commit-path I/O is
//! modeled, and Hekaton/SiloR pair main-memory CC with group-commit
//! logging as a matter of course. This experiment measures three commit
//! paths:
//!
//! * **off** — the paper's baseline (no logging anywhere);
//! * **group** — per-worker redo shards + epoch group commit (durability
//!   acknowledged when the commit's epoch is fully flushed);
//! * **fsync** — the classical per-commit force policy.
//!
//! Two sections, like `fig_ycsbe`:
//!
//! * **simulator** — the deterministic core-count sweep; the group/fsync
//!   throughput ratios against logging-off at the largest swept core
//!   count are the figure's headline (group must stay ≥ 80%, per-commit
//!   fsync must not);
//! * **real engine** — a small-table multi-threaded run on the host with
//!   the actual WAL underneath (files, flusher thread, fsyncs), also
//!   reporting log volume, fsync counts, the durable-epoch lag, and an
//!   estimated durable-ack latency per mode. Note the engine section's
//!   24-byte rows make the baseline transaction ~2 µs, so the fixed
//!   per-commit capture cost reads as a larger *fraction* there than it
//!   would against realistic row sizes — the headline ratios therefore
//!   come from the simulator sweep, where the cost model holds the
//!   workload fixed across modes.
//!
//! Output: aligned tables + `results/fig_durability.json` in the shared
//! envelope (`ratios`, `sim`, and `engine` sections).

use crate::harness::emit::Envelope;
use crate::harness::Windows;
use crate::{fmt_m, ycsb_sim_tables, HarnessArgs, Report};
use abyss_common::zipf::ZipfGen;
use abyss_common::{CcScheme, TxnTemplate};
use abyss_core::{run_workers, Database, EngineConfig};
use abyss_sim::{run_sim, SimConfig, SimDurability};
use abyss_storage::{Catalog, FsyncPolicy, Schema};
use abyss_workload::ycsb::{self, YcsbConfig, YcsbGen};

/// The schemes compared: the modern epoch-based commit path (SILO — the
/// natural group-commit host) and the classic 2PL baseline.
pub const SCHEMES: [CcScheme; 2] = [CcScheme::Silo, CcScheme::NoWait];

/// The three durability modes, in table order.
const SIM_MODES: [SimDurability; 3] = [
    SimDurability::Off,
    SimDurability::GroupCommit,
    SimDurability::PerCommitFsync,
];

struct SimPoint {
    cores: u32,
    txn_per_sec: f64,
    log_bytes: u64,
}

fn sim_point(
    scheme: CcScheme,
    cores: u32,
    durability: SimDurability,
    args: &HarnessArgs,
) -> SimPoint {
    let mut sim = SimConfig::new(scheme, cores);
    sim.durability = durability;
    args.configure(&mut sim);
    let cfg = YcsbConfig {
        table_rows: 20_000_000,
        ..YcsbConfig::write_intensive(0.6)
    };
    let gens = crate::ycsb_gens(&cfg, cores, sim.seed);
    let r = run_sim(sim, ycsb_sim_tables(), gens);
    SimPoint {
        cores,
        txn_per_sec: r.txn_per_sec(),
        log_bytes: r.stats.log_bytes,
    }
}

struct EnginePoint {
    mode: &'static str,
    txn_per_sec: f64,
    abort_rate: f64,
    log_records: u64,
    log_bytes: u64,
    log_flushes: u64,
    log_fsyncs: u64,
    durable_epoch_lag: u64,
    /// Rough durable-ack latency: 0 when logging is off; the group
    /// interval under group commit (an ack waits for the next fence); the
    /// mean commit duration under per-commit fsync.
    ack_latency_us: f64,
}

/// Engine mode: logging off, epoch group commit, or per-commit fsync.
const ENGINE_MODES: [&str; 3] = ["off", "group", "fsync"];

/// Worker count for the engine section: capped by the host's actual
/// parallelism — oversubscribed workers would bill the flusher/ticker
/// threads' CPU time against whichever mode runs them, skewing the
/// comparison.
pub fn engine_workers() -> u32 {
    std::thread::available_parallelism()
        .map(|n| n.get() as u32)
        .unwrap_or(1)
        .min(4)
}

fn engine_point(scheme: CcScheme, mode: &'static str, args: &HarnessArgs) -> EnginePoint {
    let workers: u32 = engine_workers();
    let rows: u64 = if args.quick { 4_000 } else { 20_000 };
    let mut cfg = YcsbConfig {
        table_rows: rows,
        ..YcsbConfig::write_intensive(0.6)
    };
    if scheme == CcScheme::HStore {
        cfg.parts = workers;
    }
    let group_interval_us = 10_000u64;
    let mut ecfg = EngineConfig::new(scheme, workers);
    let wal_dir = std::env::temp_dir().join(format!(
        "abyss-fig-durability-{}-{scheme}-{mode}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&wal_dir);
    match mode {
        "off" => {}
        "group" => {
            ecfg = ecfg.with_logging(&wal_dir, FsyncPolicy::Group);
            ecfg.log.group_interval_us = group_interval_us;
            ecfg.epoch_interval_us = group_interval_us;
        }
        "fsync" => {
            ecfg = ecfg.with_logging(&wal_dir, FsyncPolicy::EveryCommit);
            ecfg.log.group_interval_us = group_interval_us;
            ecfg.epoch_interval_us = group_interval_us;
        }
        other => panic!("unknown engine mode {other}"),
    }
    // Narrow rows, like the fig_ycsbe engine section: the comparison
    // target is the *commit-path* cost of each durability mode (fsyncs,
    // group fences, append bookkeeping), not raw value-log bandwidth —
    // 1 KB rows would turn the figure into a disk-throughput test.
    let mut cat = Catalog::new();
    cat.add_table("usertable", Schema::key_plus_payload(2, 8), rows * 2);
    let db = Database::new(ecfg, cat).expect("engine config");
    db.load_table(ycsb::YCSB_TABLE, 0..rows, |s, r, k| {
        abyss_storage::row::set_u64(s, r, 0, k);
        abyss_storage::row::set_u64(s, r, 1, k ^ 0xD00D);
    })
    .expect("load");
    let zipf = ZipfGen::new(cfg.table_rows, cfg.theta);
    let gens: Vec<Box<dyn FnMut() -> TxnTemplate + Send>> = (0..workers)
        .map(|w| {
            let mut g = YcsbGen::with_zipf(cfg.clone(), zipf.clone(), 0xD7 ^ (u64::from(w) << 20))
                .for_worker(w);
            Box::new(move || g.next_txn()) as Box<dyn FnMut() -> TxnTemplate + Send>
        })
        .collect();
    let w = Windows::engine(args.quick);
    let out = run_workers(&db, gens, w.warmup, w.measure);
    let tps = out.txn_per_sec();
    let ack_latency_us = match mode {
        "group" => group_interval_us as f64,
        "fsync" if tps > 0.0 => f64::from(workers) * 1e6 / tps,
        _ => 0.0,
    };
    let stats = &out.stats;
    let p = EnginePoint {
        mode,
        txn_per_sec: tps,
        abort_rate: stats.abort_rate(),
        log_records: stats.log_records,
        log_bytes: stats.log_bytes,
        log_flushes: stats.log_flushes,
        log_fsyncs: stats.log_fsyncs,
        durable_epoch_lag: stats.durable_epoch_lag,
        ack_latency_us,
    };
    drop(db);
    let _ = std::fs::remove_dir_all(&wal_dir);
    p
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "0".into()
    }
}

/// Run the full fig_durability experiment (parses CLI args itself).
pub fn run() {
    let args = HarnessArgs::parse();
    let sweep = args.sweep();

    // ---- simulator sweep ---------------------------------------------
    let mut sim_json: Vec<String> = Vec::new();
    // txn/s at the largest swept core count, per (scheme, mode) — the
    // ratio basis.
    let mut headline: Vec<(CcScheme, [f64; 3])> = Vec::new();
    for &scheme in &SCHEMES {
        let mut headers = vec!["cores".to_string()];
        headers.extend(SIM_MODES.iter().map(|m| m.label().to_string()));
        let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let mut rep = Report::new(&headers_ref);
        let mut series: Vec<Vec<SimPoint>> = SIM_MODES.iter().map(|_| Vec::new()).collect();
        for &n in sweep {
            let mut row = vec![n.to_string()];
            for (i, &mode) in SIM_MODES.iter().enumerate() {
                let p = sim_point(scheme, n, mode, &args);
                row.push(fmt_m(p.txn_per_sec));
                series[i].push(p);
            }
            rep.row(row);
        }
        rep.print(&format!(
            "fig_durability sim — {scheme}, YCSB theta=0.6 50/50 (Mtxn/s)"
        ));
        rep.write_csv(&format!("fig_durability_{}", scheme.name().to_lowercase()));
        let tops: Vec<f64> = series
            .iter()
            .map(|pts| pts.last().map(|p| p.txn_per_sec).unwrap_or(0.0))
            .collect();
        headline.push((scheme, [tops[0], tops[1], tops[2]]));
        let modes_json: Vec<String> = SIM_MODES
            .iter()
            .zip(&series)
            .map(|(&mode, pts)| {
                let pts: Vec<String> = pts
                    .iter()
                    .map(|p| {
                        format!(
                            "{{\"cores\":{},\"txn_per_sec\":{:.1},\"log_bytes\":{}}}",
                            p.cores, p.txn_per_sec, p.log_bytes
                        )
                    })
                    .collect();
                format!(
                    "{{\"mode\":\"{}\",\"points\":[{}]}}",
                    mode.label(),
                    pts.join(",")
                )
            })
            .collect();
        sim_json.push(format!(
            "{{\"scheme\":\"{}\",\"modes\":[{}]}}",
            scheme.name(),
            modes_json.join(",")
        ));
    }

    // ---- real engine --------------------------------------------------
    let mut engine_json: Vec<String> = Vec::new();
    for &scheme in &SCHEMES {
        let headers = [
            "mode", "Mtxn/s", "abort%", "records", "log_MB", "flushes", "fsyncs", "lag", "ack_us",
        ];
        let mut rep = Report::new(&headers);
        let mut points: Vec<String> = Vec::new();
        for mode in ENGINE_MODES {
            let p = engine_point(scheme, mode, &args);
            rep.row(vec![
                p.mode.to_string(),
                fmt_m(p.txn_per_sec),
                format!("{:.1}", p.abort_rate * 100.0),
                p.log_records.to_string(),
                format!("{:.2}", p.log_bytes as f64 / 1e6),
                p.log_flushes.to_string(),
                p.log_fsyncs.to_string(),
                p.durable_epoch_lag.to_string(),
                format!("{:.0}", p.ack_latency_us),
            ]);
            points.push(format!(
                "{{\"mode\":\"{}\",\"txn_per_sec\":{:.1},\"abort_rate\":{},\
                 \"log_records\":{},\"log_bytes\":{},\"log_flushes\":{},\"log_fsyncs\":{},\
                 \"durable_epoch_lag\":{},\"ack_latency_us\":{:.1}}}",
                p.mode,
                p.txn_per_sec,
                json_f(p.abort_rate),
                p.log_records,
                p.log_bytes,
                p.log_flushes,
                p.log_fsyncs,
                p.durable_epoch_lag,
                p.ack_latency_us,
            ));
        }
        rep.print(&format!(
            "fig_durability engine — {scheme}, {} workers, YCSB theta=0.6 50/50",
            engine_workers()
        ));
        engine_json.push(format!(
            "{{\"scheme\":\"{}\",\"modes\":[{}]}}",
            scheme.name(),
            points.join(",")
        ));
    }

    // ---- headline ratios (deterministic: sim, largest core count) -----
    let max_cores = *sweep.last().unwrap();
    let ratios: Vec<String> = headline
        .iter()
        .map(|(scheme, [off, group, fsync])| {
            let g = if *off > 0.0 { group / off } else { 0.0 };
            let f = if *off > 0.0 { fsync / off } else { 0.0 };
            println!("  [{scheme} @ {max_cores} sim cores] group/off = {g:.3}, fsync/off = {f:.3}");
            format!(
                "{{\"scheme\":\"{}\",\"group_ratio\":{},\"fsync_ratio\":{}}}",
                scheme.name(),
                json_f(g),
                json_f(f)
            )
        })
        .collect();

    // Label the run with the *effective* timestamp method (the engine
    // degrades Hardware to Atomic; misreporting that would mislabel the
    // whole figure).
    let ts_probe = Database::new(
        EngineConfig::new(CcScheme::NoWait, 1),
        ycsb::catalog(&YcsbConfig {
            table_rows: 16,
            ..YcsbConfig::read_only()
        }),
    )
    .expect("probe db");
    let cores = sweep
        .iter()
        .map(|n| n.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let mut env = Envelope::new("fig_durability");
    env.ts_method(ts_probe.config().ts_method)
        .meta_raw("cores", &format!("[{cores}]"))
        .meta_num("ratio_basis_cores", f64::from(max_cores))
        .section("ratios", &format!("{{\"schemes\":[{}]}}", ratios.join(",")))
        .section("sim", &format!("{{\"series\":[{}]}}", sim_json.join(",")))
        .section(
            "engine",
            &format!(
                "{{\"workers\":{},\"series\":[{}]}}",
                engine_workers(),
                engine_json.join(",")
            ),
        );
    env.write().expect("write results/fig_durability.json");
}
