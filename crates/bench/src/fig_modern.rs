//! fig_modern — classic vs. modern concurrency control.
//!
//! The experiment the paper's §4.3 analysis asks for: every classic
//! scheme is capped either by lock thrashing or by centralized timestamp
//! allocation at 1000 cores, so how do the *modern* schemes — SILO
//! (epoch-based OCC) and TICTOC (data-driven timestamps), both of which
//! allocate **zero** global timestamps per transaction — compare? The
//! SILO-vs-TICTOC-vs-OCC series is the head-to-head CCBench identifies as
//! the interesting one under contention. Two workloads:
//!
//! * YCSB at medium contention (theta = 0.6, 50/50 read/update), the
//!   Fig. 9 setting where both failure modes are visible;
//! * TPC-C with one warehouse per core (the scalable configuration of
//!   Fig. 17), Payment + NewOrder.
//!
//! Output: aligned tables + `results/fig_modern*.csv` like every other
//! figure binary, plus `results/fig_modern.json` in the shared envelope
//! (one section per workload).

use crate::harness::emit::Envelope;
use crate::{fmt_m, tpcc_point, ycsb_point, HarnessArgs, Report};
use abyss_common::CcScheme;
use abyss_sim::{SimConfig, SimReport};
use abyss_workload::tpcc::TpccConfig;
use abyss_workload::ycsb::YcsbConfig;

/// One measured point of a scheme's series.
struct Point {
    cores: u32,
    txn_per_sec: f64,
    abort_rate: f64,
    ts_allocated: u64,
    rts_extensions: u64,
}

/// Escape nothing: every string we emit is `[A-Z0-9_.-]`. Kept as a
/// function so a future field with richer content has one place to fix.
fn json_str(s: &str) -> String {
    format!("\"{s}\"")
}

fn series_json(scheme: CcScheme, points: &[Point]) -> String {
    let pts: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "{{\"cores\":{},\"txn_per_sec\":{:.1},\"abort_rate\":{:.4},\
                 \"ts_allocated\":{},\"rts_extensions\":{}}}",
                p.cores, p.txn_per_sec, p.abort_rate, p.ts_allocated, p.rts_extensions
            )
        })
        .collect();
    format!(
        "{{\"scheme\":{},\"points\":[{}]}}",
        json_str(scheme.name()),
        pts.join(",")
    )
}

fn point(r: &SimReport, cores: u32) -> Point {
    Point {
        cores,
        txn_per_sec: r.txn_per_sec(),
        abort_rate: r.stats.abort_rate(),
        ts_allocated: r.stats.ts_allocated,
        rts_extensions: r.stats.rts_extensions,
    }
}

/// Run the full fig_modern experiment (parses CLI args itself).
pub fn run() {
    let args = HarnessArgs::parse();
    let sweep = args.sweep();
    let schemes = CcScheme::MODERN_COMPARISON;

    let mut headers = vec!["cores".to_string()];
    headers.extend(schemes.iter().map(|s| s.to_string()));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();

    // ---- YCSB, medium contention -------------------------------------
    let ycsb_cfg = YcsbConfig::write_intensive(0.6);
    let mut ycsb_rep = Report::new(&headers_ref);
    let mut ycsb_series: Vec<Vec<Point>> = schemes.iter().map(|_| Vec::new()).collect();
    for &n in sweep {
        let mut row = vec![n.to_string()];
        for (i, &scheme) in schemes.iter().enumerate() {
            let r = ycsb_point(SimConfig::new(scheme, n), &ycsb_cfg, &args);
            row.push(fmt_m(r.txn_per_sec()));
            ycsb_series[i].push(point(&r, n));
        }
        ycsb_rep.row(row);
    }
    ycsb_rep.print("fig_modern a — YCSB theta=0.6 50/50, classic vs SILO/TICTOC (Mtxn/s)");
    ycsb_rep.write_csv("fig_modern_ycsb");

    // ---- TPC-C, one warehouse per core -------------------------------
    let mut tpcc_rep = Report::new(&headers_ref);
    let mut tpcc_series: Vec<Vec<Point>> = schemes.iter().map(|_| Vec::new()).collect();
    for &n in sweep {
        let tpcc_cfg = TpccConfig {
            warehouses: n.max(4),
            ..TpccConfig::default()
        };
        let mut row = vec![n.to_string()];
        for (i, &scheme) in schemes.iter().enumerate() {
            let r = tpcc_point(SimConfig::new(scheme, n), &tpcc_cfg, &args);
            row.push(fmt_m(r.txn_per_sec()));
            tpcc_series[i].push(point(&r, n));
        }
        tpcc_rep.row(row);
    }
    tpcc_rep.print("fig_modern b — TPC-C 1 warehouse/core, classic vs SILO/TICTOC (Mtxn/s)");
    tpcc_rep.write_csv("fig_modern_tpcc");

    // ---- JSON comparison (shared envelope, one section per workload) --
    let workload_body = |series: &[Vec<Point>]| {
        let s: Vec<String> = schemes
            .iter()
            .zip(series)
            .map(|(&scheme, pts)| series_json(scheme, pts))
            .collect();
        format!("{{\"series\":[{}]}}", s.join(","))
    };
    let cores = sweep
        .iter()
        .map(|n| n.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let mut env = Envelope::new("fig_modern");
    env.meta_raw("cores", &format!("[{cores}]"))
        .section("ycsb_theta_0.6", &workload_body(&ycsb_series))
        .section("tpcc_wh_per_core", &workload_body(&tpcc_series));
    env.write().expect("write results/fig_modern.json");
}
