//! fig_latency — commit/abort latency distributions across schemes.
//!
//! The paper reports throughput and its §3.2 time breakdown; this figure
//! adds the axis those averages hide: the *shape* of per-attempt latency.
//! A scheme can match another's mean while its p999 tail is an order of
//! magnitude worse — exactly the regime where lock waits, validation
//! retries and timestamp conflicts live.
//!
//! Two sections, like `fig_durability`:
//!
//! * **sim** — the deterministic 1024-core point (64 under `--quick`)
//!   per scheme × YCSB theta, with commit latency quantiles in simulated
//!   nanoseconds;
//! * **engine** — a multi-threaded host run recording wall-clock attempt
//!   latency via [`abyss_common::LatencyHisto`] in the worker hot path,
//!   reporting both the commit and abort distributions. Each point runs
//!   [`ENGINE_REPEATS`] times and the histograms are **merged across
//!   repeats** (`LatencyHisto`'s `AddAssign`), so the reported p999
//!   reflects every sample taken, not just the final repeat's.
//!
//! Output: aligned tables + `results/fig_latency.json` in the shared
//! envelope. CI's `validate_results` checks every distribution for
//! quantile monotonicity (p50 ≤ p90 ≤ p99 ≤ p999 ≤ max).

use std::ops::AddAssign;

use crate::harness::emit::Envelope;
use crate::harness::{self, Windows};
use crate::{fig_durability::engine_workers, ycsb_sim_tables, HarnessArgs, Report};
use abyss_common::zipf::ZipfGen;
use abyss_common::{CcScheme, LatencyHisto, TxnTemplate};
use abyss_core::{run_workers, Database, EngineConfig};
use abyss_sim::SimConfig;
use abyss_storage::{Catalog, Schema};
use abyss_workload::ycsb::{self, YcsbConfig, YcsbGen};

/// The schemes compared: the two 2PL deadlock policies the paper leads
/// with, plus the OCC pair (classic and epoch-based) whose validation
/// aborts shape the tail differently from lock waits.
pub const SCHEMES: [CcScheme; 4] = [
    CcScheme::DlDetect,
    CcScheme::NoWait,
    CcScheme::Occ,
    CcScheme::Silo,
];

/// The contention sweep: uniform, the paper's medium-skew point, and
/// high skew where the tail decouples from the median.
pub const THETAS: [f64; 3] = [0.0, 0.6, 0.8];

/// Engine repeats per point (1 under `--quick`); distributions merge
/// across all of them.
pub const ENGINE_REPEATS: u32 = 3;

/// One latency distribution, flattened for the report/JSON.
struct Dist {
    count: u64,
    p50: u64,
    p90: u64,
    p99: u64,
    p999: u64,
    max: u64,
    mean: u64,
}

impl Dist {
    fn of(h: &LatencyHisto) -> Self {
        Self {
            count: h.count(),
            p50: h.p50(),
            p90: h.p90(),
            p99: h.p99(),
            p999: h.p999(),
            max: h.max(),
            mean: h.mean(),
        }
    }

    fn json(&self) -> String {
        format!(
            "{{\"count\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{},\"max\":{},\"mean\":{}}}",
            self.count, self.p50, self.p90, self.p99, self.p999, self.max, self.mean
        )
    }

    fn cells(&self) -> Vec<String> {
        vec![
            self.count.to_string(),
            self.p50.to_string(),
            self.p90.to_string(),
            self.p99.to_string(),
            self.p999.to_string(),
            self.max.to_string(),
        ]
    }
}

/// Commit + abort histograms accumulated across engine repeats.
#[derive(Default)]
struct HistoPair {
    commit: LatencyHisto,
    abort: LatencyHisto,
}

impl AddAssign for HistoPair {
    fn add_assign(&mut self, rhs: Self) {
        self.commit += &rhs.commit;
        self.abort += &rhs.abort;
    }
}

fn sim_point(scheme: CcScheme, theta: f64, cores: u32, args: &HarnessArgs) -> (Dist, Dist) {
    let mut sim = SimConfig::new(scheme, cores);
    args.configure(&mut sim);
    let cfg = YcsbConfig {
        table_rows: 20_000_000,
        ..YcsbConfig::write_intensive(theta)
    };
    let gens = crate::ycsb_gens(&cfg, cores, sim.seed);
    let r = abyss_sim::run_sim(sim, ycsb_sim_tables(), gens);
    (
        Dist::of(&r.stats.commit_latency),
        Dist::of(&r.stats.abort_latency),
    )
}

/// One engine configuration point: repeats × timed runs, histograms
/// merged across every repeat.
fn engine_point(scheme: CcScheme, theta: f64, args: &HarnessArgs) -> (Dist, Dist) {
    let workers = engine_workers();
    let rows: u64 = if args.quick { 4_000 } else { 20_000 };
    let mut cfg = YcsbConfig {
        table_rows: rows,
        ..YcsbConfig::write_intensive(theta)
    };
    if scheme == CcScheme::HStore {
        cfg.parts = workers;
    }
    let repeats = if args.quick { 1 } else { ENGINE_REPEATS };
    let w = Windows::engine(args.quick);
    let (merged, _tput) = harness::repeat(repeats, |_round| {
        let mut cat = Catalog::new();
        cat.add_table("usertable", Schema::key_plus_payload(2, 8), rows * 2);
        let db = Database::new(EngineConfig::new(scheme, workers), cat).expect("engine config");
        db.load_table(ycsb::YCSB_TABLE, 0..rows, |s, r, k| {
            abyss_storage::row::set_u64(s, r, 0, k);
            abyss_storage::row::set_u64(s, r, 1, k ^ 0xBEEF);
        })
        .expect("load");
        let zipf = ZipfGen::new(cfg.table_rows, cfg.theta);
        let gens: Vec<Box<dyn FnMut() -> TxnTemplate + Send>> = (0..workers)
            .map(|wk| {
                let mut g =
                    YcsbGen::with_zipf(cfg.clone(), zipf.clone(), 0xA1 ^ (u64::from(wk) << 20))
                        .for_worker(wk);
                Box::new(move || g.next_txn()) as Box<dyn FnMut() -> TxnTemplate + Send>
            })
            .collect();
        let out = run_workers(&db, gens, w.warmup, w.measure);
        let tput = out.txn_per_sec();
        (
            HistoPair {
                commit: out.stats.commit_latency,
                abort: out.stats.abort_latency,
            },
            tput,
        )
    });
    (Dist::of(&merged.commit), Dist::of(&merged.abort))
}

/// Run the full fig_latency experiment (parses CLI args itself).
pub fn run() {
    let args = HarnessArgs::parse();
    let sim_cores: u32 = if args.quick { 64 } else { 1024 };

    let headers = [
        "scheme", "theta", "commits", "p50", "p90", "p99", "p999", "max",
    ];

    // ---- simulator (simulated ns at the paper's core count) -----------
    let mut sim_json: Vec<String> = Vec::new();
    let mut rep = Report::new(&headers);
    for &scheme in &SCHEMES {
        for &theta in &THETAS {
            let (commit, abort) = sim_point(scheme, theta, sim_cores, &args);
            let mut row = vec![scheme.name().to_string(), format!("{theta:.1}")];
            row.extend(commit.cells());
            rep.row(row);
            sim_json.push(format!(
                "{{\"scheme\":\"{}\",\"theta\":{theta:.1},\"commit\":{},\"abort\":{}}}",
                scheme.name(),
                commit.json(),
                abort.json()
            ));
        }
    }
    rep.print(&format!(
        "fig_latency sim — YCSB 50/50, {sim_cores} cores (commit latency, sim ns)"
    ));
    rep.write_csv("fig_latency_sim");

    // ---- real engine (wall-clock ns, merged across repeats) -----------
    let repeats = if args.quick { 1 } else { ENGINE_REPEATS };
    let mut engine_json: Vec<String> = Vec::new();
    let mut rep = Report::new(&headers);
    for &scheme in &SCHEMES {
        for &theta in &THETAS {
            let (commit, abort) = engine_point(scheme, theta, &args);
            let mut row = vec![scheme.name().to_string(), format!("{theta:.1}")];
            row.extend(commit.cells());
            rep.row(row);
            engine_json.push(format!(
                "{{\"scheme\":\"{}\",\"theta\":{theta:.1},\"commit\":{},\"abort\":{}}}",
                scheme.name(),
                commit.json(),
                abort.json()
            ));
        }
    }
    rep.print(&format!(
        "fig_latency engine — YCSB 50/50, {} workers × {repeats} repeats (commit latency, wall ns)",
        engine_workers()
    ));
    rep.write_csv("fig_latency_engine");

    let mut env = Envelope::new("fig_latency");
    env.meta_num("sim_cores", f64::from(sim_cores))
        .meta_num("engine_workers", f64::from(engine_workers()))
        .meta_num("engine_repeats", f64::from(repeats))
        .section("sim", &format!("{{\"series\":[{}]}}", sim_json.join(",")))
        .section(
            "engine",
            &format!(
                "{{\"workers\":{},\"repeats\":{repeats},\"series\":[{}]}}",
                engine_workers(),
                engine_json.join(",")
            ),
        );
    env.write().expect("write results/fig_latency.json");
}
