//! fig_regulate — adaptive contention regulation: feedback backoff vs the
//! fixed restart schedule, plus the read-only fast path's commit cost.
//!
//! The paper's abort analysis (§4.2) shows the optimistic family (OCC,
//! SILO, TICTOC) thrashing under skew: every conflict wastes the whole
//! transaction, and an immediate retry usually re-collides with the same
//! hot tuple. The engine's answer is a per-worker AIMD controller
//! (`abyss_core::BackoffCtl`): the abort rate over a sliding window sets
//! the retry delay, per-scheme gain constants (`CcProtocol`
//! capabilities) make OCC-family schemes regulate aggressively while 2PL
//! barely moves, and commits decay the delay back toward zero. This
//! figure measures what the controller buys:
//!
//! 1. **Sweep** (`sweep` section): YCSB write-intensive theta sweep, the
//!    fixed restart schedule vs the adaptive controller, on four
//!    contrasting schemes (NO_WAIT as the 2PL control, OCC/SILO/TICTOC
//!    as the regulated family). Workers deliberately oversubscribe small
//!    hosts ([`SWEEP_WORKERS`] threads regardless of cores): contention
//!    regulation only matters when conflicting transactions actually
//!    interleave, and a backed-off worker donates its timeslice to the
//!    conflict winner — the effect the controller exists to exploit.
//!    Caveat for interpreting the artifact: on a host without true
//!    parallelism, optimistic validation almost never observes a
//!    conflict (transactions overlap only across a preemption), so the
//!    OCC-family columns mainly demonstrate that the controller is free
//!    when it has nothing to regulate; the scheme that does abort under
//!    timeslicing (NO_WAIT, whose held locks outlive a preemption) is
//!    where the controller visibly engages. The high-contention
//!    OCC-family claim is carried by the 1024-core model section, where
//!    conflicts are real.
//! 2. **Read-only fast path** (`ro_fastpath` section): bounded
//!    single-worker runs of a statically read-only YCSB mix with
//!    `EngineConfig::ro_fast_path` on vs off. For OCC
//!    (`RO_COMMIT_SKIPS_TS`) the fast path drops the commit-time
//!    validation-timestamp allocation — half of OCC's two allocator
//!    trips per transaction. The saving is nanoseconds per transaction,
//!    so the section measures paired rounds (both modes back-to-back,
//!    alternating order) and reports the median per-round `off/on`
//!    ratio, plus the `ts_allocated` counters that prove the skip
//!    deterministically.
//! 3. **1024-core model** (`sim_1024` section): the cost-model simulator
//!    at the paper's core count, theta 0.8, the fixed restart delay
//!    (DBx1000's 25 µs `ABORT_PENALTY`) vs the regulated model: the
//!    delay the feedback controller converges to, taken as the best
//!    operating point over [`REG_CANDIDATES`]. The fixed delay is in
//!    the candidate set, so regulation is no-regret by construction;
//!    the interesting output is which multiplier each scheme lands on.
//!    Deterministic — CI asserts the regulated model never loses.
//!
//! Output: aligned tables + `results/fig_regulate.json` in the shared
//! envelope. `--quick` shrinks the sweep for CI smoke.

use std::sync::Arc;

use crate::harness::emit::{num, Envelope};
use crate::harness::hw::hw_counters_label;
use crate::harness::Windows;
use crate::{ycsb_point, HarnessArgs, Report};
use abyss_common::zipf::ZipfGen;
use abyss_common::{CcScheme, RunStats, TxnTemplate};
use abyss_core::{run_workers, run_workers_bounded, Database, EngineConfig};
use abyss_sim::{CostModel, SimConfig};
use abyss_workload::ycsb::{self, YcsbConfig, YcsbGen, YCSB_TABLE};

/// The four contrasting schemes: the paper's best-scaling 2PL variant as
/// the control (gain 10%, barely regulates) against the optimistic
/// family (gain 100%, the schemes the controller is for).
pub const SCHEMES: [CcScheme; 4] = [
    CcScheme::NoWait,
    CcScheme::Occ,
    CcScheme::Silo,
    CcScheme::TicToc,
];

/// Zipf skew sweep: uniform through the paper's thrashing regime.
pub const THETAS: [f64; 5] = [0.0, 0.4, 0.6, 0.8, 0.9];
/// Quick sweep: the uncontended guard point and one hot point.
pub const THETAS_QUICK: [f64; 2] = [0.0, 0.8];

/// Sweep worker threads. Intentionally *not* capped by the host's cores
/// (see the module docs): four conflicting streams exist even on a
/// one-core host, and the park table's early-yield ladder turns adaptive
/// pauses into timeslice donations there.
pub const SWEEP_WORKERS: u32 = 4;

/// Rows in the sweep's YCSB table — small enough that theta 0.8+ makes
/// hot tuples genuinely hot at four workers.
const SWEEP_ROWS: u64 = 16 * 1024;

/// Read-only fast-path probe: short transactions over a cache-resident
/// table, so the per-commit constant cost the fast path removes is a
/// visible fraction of the loop.
const RO_ROWS: u64 = 4 * 1024;
const RO_REQS_PER_TXN: usize = 2;

/// One measured mode (fixed or adaptive) of one sweep point.
pub struct ModeStats {
    pub tput: f64,
    pub abort_rate: f64,
    pub backoffs: u64,
    pub backoff_ns: u64,
    pub backoff_delay_ns: u64,
}

impl ModeStats {
    fn of(stats: &RunStats, tput: f64) -> Self {
        Self {
            tput,
            abort_rate: stats.abort_rate(),
            backoffs: stats.backoffs,
            backoff_ns: stats.backoff_ns,
            backoff_delay_ns: stats.backoff_delay_ns,
        }
    }

    fn json(&self) -> String {
        format!(
            "{{\"tput\":{},\"abort_rate\":{},\"backoffs\":{},\
             \"backoff_ns\":{},\"backoff_delay_ns\":{}}}",
            num(self.tput.round()),
            num((self.abort_rate * 10_000.0).round() / 10_000.0),
            self.backoffs,
            self.backoff_ns,
            self.backoff_delay_ns,
        )
    }
}

/// Per-worker write-intensive YCSB generators sharing one Zipf table.
fn sweep_gens(
    cfg: &YcsbConfig,
    workers: u32,
    seed: u64,
) -> Vec<Box<dyn FnMut() -> TxnTemplate + Send>> {
    let zipf = ZipfGen::new(cfg.table_rows, cfg.theta);
    (0..workers)
        .map(|w| {
            let mut g = YcsbGen::with_zipf(cfg.clone(), zipf.clone(), seed ^ (u64::from(w) << 20))
                .for_worker(w);
            Box::new(move || g.next_txn()) as Box<dyn FnMut() -> TxnTemplate + Send>
        })
        .collect()
}

fn sweep_db(scheme: CcScheme, cfg: &YcsbConfig, adaptive: bool, workers: u32) -> Arc<Database> {
    let mut ecfg = EngineConfig::new(scheme, workers);
    if adaptive {
        ecfg = ecfg.with_adaptive_backoff();
    }
    let db = Database::new(ecfg, ycsb::catalog(cfg)).expect("engine config");
    db.load_table(YCSB_TABLE, 0..cfg.table_rows, ycsb::init_row)
        .expect("load");
    db
}

/// One timed engine point: `scheme` at `theta`, fixed or adaptive backoff.
pub fn sweep_point(scheme: CcScheme, theta: f64, adaptive: bool, windows: Windows) -> ModeStats {
    let cfg = YcsbConfig {
        table_rows: SWEEP_ROWS,
        ..YcsbConfig::write_intensive(theta)
    };
    let db = sweep_db(scheme, &cfg, adaptive, SWEEP_WORKERS);
    let seed = 0x9E6A ^ (u64::from(adaptive) << 32) ^ scheme as u64;
    let gens = sweep_gens(&cfg, SWEEP_WORKERS, seed);
    let out = run_workers(&db, gens, windows.warmup, windows.measure);
    let tput = out.txn_per_sec();
    ModeStats::of(&out.stats, tput)
}

fn sweep_section(args: &HarnessArgs) -> String {
    let thetas: &[f64] = if args.quick { &THETAS_QUICK } else { &THETAS };
    let windows = Windows::engine(args.quick);
    let mut rep = Report::new(&[
        "scheme",
        "theta",
        "fixed tput",
        "adaptive tput",
        "adp/fix",
        "fix abrt",
        "adp abrt",
        "max delay us",
    ]);
    let mut series = Vec::new();
    for &scheme in &SCHEMES {
        for &theta in thetas {
            let fixed = sweep_point(scheme, theta, false, windows);
            let adaptive = sweep_point(scheme, theta, true, windows);
            let ratio = adaptive.tput / fixed.tput.max(1.0);
            rep.row(vec![
                scheme.name().to_string(),
                format!("{theta:.1}"),
                format!("{:.0}", fixed.tput),
                format!("{:.0}", adaptive.tput),
                format!("{ratio:.3}"),
                format!("{:.2}", fixed.abort_rate),
                format!("{:.2}", adaptive.abort_rate),
                format!("{:.0}", adaptive.backoff_delay_ns as f64 / 1_000.0),
            ]);
            series.push(format!(
                "{{\"scheme\":\"{}\",\"theta\":{theta},\"fixed\":{},\
                 \"adaptive\":{},\"adaptive_over_fixed\":{}}}",
                scheme.name(),
                fixed.json(),
                adaptive.json(),
                num((ratio * 1_000.0).round() / 1_000.0),
            ));
        }
    }
    rep.print(&format!(
        "fig_regulate — YCSB write-intensive, {SWEEP_WORKERS} workers, \
         {SWEEP_ROWS} rows: fixed vs adaptive backoff"
    ));
    format!(
        "{{\"workload\":\"ycsb_write_intensive\",\"table_rows\":{SWEEP_ROWS},\
         \"workers\":{SWEEP_WORKERS},\"series\":[{}]}}",
        series.join(",")
    )
}

/// One bounded read-only run; returns (ns/txn, ts_allocated).
fn ro_run(scheme: CcScheme, fast_path: bool, txns: u64) -> (f64, u64) {
    let cfg = YcsbConfig {
        table_rows: RO_ROWS,
        reqs_per_txn: RO_REQS_PER_TXN,
        ..YcsbConfig::read_only()
    };
    let ecfg = EngineConfig::new(scheme, 1).with_ro_fast_path(fast_path);
    let db = Database::new(ecfg, ycsb::catalog(&cfg)).expect("engine config");
    db.load_table(YCSB_TABLE, 0..cfg.table_rows, ycsb::init_row)
        .expect("load");
    let mut g = YcsbGen::new(cfg, 0xFA57_0001);
    let gens = vec![Box::new(move || g.next_txn()) as Box<dyn FnMut() -> TxnTemplate + Send>];
    let out = run_workers_bounded(&db, gens, txns);
    assert_eq!(out.stats.commits, txns, "{scheme}: read-only txn aborted");
    (
        out.wall.as_nanos() as f64 / txns as f64,
        out.stats.ts_allocated,
    )
}

/// Median of `xs` (destructive; `xs` must be non-empty).
fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// Paired measurement of the fast path: each round runs both modes
/// back-to-back (alternating which goes first) so background-load drift
/// hits both legs of a pair roughly equally, then the per-round
/// `off/on` ratios are reduced by median. The effect being resolved is
/// a handful of nanoseconds per transaction, far below this host's
/// run-to-run swing — pairing plus medians is what makes it visible.
/// Returns `(on_ns, on_ts, off_ns, off_ts, off_over_on)`.
fn ro_paired(scheme: CcScheme, txns: u64, rounds: u32) -> (f64, u64, f64, u64, f64) {
    let mut on_ns = Vec::new();
    let mut off_ns = Vec::new();
    let mut ratios = Vec::new();
    let (mut on_ts, mut off_ts) = (0, 0);
    for round in 0..rounds {
        let on_first = round % 2 == 0;
        let (mut on, mut off) = (0.0, 0.0);
        for leg in 0..2 {
            let fast_path = (leg == 0) == on_first;
            let (ns, t) = ro_run(scheme, fast_path, txns);
            if fast_path {
                on = ns;
                on_ts = t;
            } else {
                off = ns;
                off_ts = t;
            }
        }
        on_ns.push(on);
        off_ns.push(off);
        ratios.push(off / on);
    }
    (
        median(&mut on_ns),
        on_ts,
        median(&mut off_ns),
        off_ts,
        median(&mut ratios),
    )
}

fn ro_section(args: &HarnessArgs) -> String {
    // Long runs (the interference on small shared hosts is bursty on a
    // scale of hundreds of milliseconds — short runs land entirely
    // inside or outside a burst) and odd round counts for the median.
    let (txns, rounds) = if args.quick {
        (50_000u64, 3u32)
    } else if args.full {
        (2_000_000, 11)
    } else {
        (1_000_000, 9)
    };
    let mut rep = Report::new(&[
        "scheme",
        "fast ns/txn",
        "slow ns/txn",
        "slow/fast",
        "fast ts_alloc",
        "slow ts_alloc",
    ]);
    let mut rows = Vec::new();
    for scheme in [CcScheme::Occ, CcScheme::Silo] {
        // Warm both configurations before timing.
        let _ = ro_run(scheme, true, txns / 10 + 1);
        let _ = ro_run(scheme, false, txns / 10 + 1);
        let (on_ns, on_ts, off_ns, off_ts, ratio) = ro_paired(scheme, txns, rounds);
        rep.row(vec![
            scheme.name().to_string(),
            format!("{on_ns:.1}"),
            format!("{off_ns:.1}"),
            format!("{ratio:.3}"),
            on_ts.to_string(),
            off_ts.to_string(),
        ]);
        rows.push(format!(
            "{{\"scheme\":\"{}\",\"on_ns_per_txn\":{},\"off_ns_per_txn\":{},\
             \"off_over_on\":{},\"on_ts_allocated\":{on_ts},\"off_ts_allocated\":{off_ts}}}",
            scheme.name(),
            num(on_ns),
            num(off_ns),
            num(ratio),
        ));
    }
    rep.print(&format!(
        "read-only fast path: 1 worker, {RO_REQS_PER_TXN}-read txns over \
         {RO_ROWS} rows, {txns} txns, median of {rounds} paired rounds"
    ));
    format!(
        "{{\"workload\":\"ycsb_read_only\",\"table_rows\":{RO_ROWS},\
         \"reqs_per_txn\":{RO_REQS_PER_TXN},\"workers\":1,\
         \"txns_per_round\":{txns},\"rounds\":{rounds},\"schemes\":[{}]}}",
        rows.join(",")
    )
}

/// Restart-delay multipliers the regulated model may converge to. The
/// fixed baseline (1x, DBx1000's 25 µs `ABORT_PENALTY`) is deliberately
/// in the set: a feedback controller that finds no better operating
/// point falls back to the fixed behaviour, so regulation is no-regret
/// against the fixed delay by construction — the interesting output is
/// *which* multiplier each scheme converges to.
pub const REG_CANDIDATES: [f64; 5] = [0.5, 1.0, 2.0, 4.0, 10.0];

/// The default cost model with the abort-restart delay scaled by `mult`.
fn scaled_cost(mult: f64) -> CostModel {
    let mut cost = CostModel::default();
    cost.abort_penalty = ((cost.abort_penalty as f64) * mult) as u64;
    cost
}

/// The paper's core count for the 1024-core model section.
pub const SIM_CORES: u32 = 1024;
/// Skew for the model section: inside the thrashing regime.
pub const SIM_THETA: f64 = 0.8;

/// One simulator point at `cores`, theta [`SIM_THETA`], with `cost`.
pub fn sim_point(scheme: CcScheme, cores: u32, cost: CostModel, args: &HarnessArgs) -> (f64, f64) {
    let mut sim = SimConfig::new(scheme, cores);
    sim.cost = cost;
    let ycsb_cfg = YcsbConfig::write_intensive(SIM_THETA);
    let r = ycsb_point(sim, &ycsb_cfg, args);
    (r.txn_per_sec(), r.stats.abort_rate())
}

/// The operating point the regulated model converges to at `cores`:
/// best throughput over [`REG_CANDIDATES`], as `(mult, tput, abort)`.
pub fn regulated_point(scheme: CcScheme, cores: u32, args: &HarnessArgs) -> (f64, f64, f64) {
    let mut best = (1.0, 0.0, 0.0);
    for &mult in &REG_CANDIDATES {
        let (t, a) = sim_point(scheme, cores, scaled_cost(mult), args);
        if t > best.1 {
            best = (mult, t, a);
        }
    }
    best
}

fn sim_section(args: &HarnessArgs) -> String {
    let default_penalty = CostModel::default().abort_penalty;
    let mut rep = Report::new(&[
        "scheme",
        "default tput",
        "regulated tput",
        "reg/def",
        "mult",
        "def abrt",
        "reg abrt",
    ]);
    let mut series = Vec::new();
    for &scheme in &SCHEMES {
        let (d_tput, d_abrt) = sim_point(scheme, SIM_CORES, CostModel::default(), args);
        let (mult, r_tput, r_abrt) = regulated_point(scheme, SIM_CORES, args);
        let ratio = r_tput / d_tput.max(1.0);
        rep.row(vec![
            scheme.name().to_string(),
            format!("{d_tput:.0}"),
            format!("{r_tput:.0}"),
            format!("{ratio:.3}"),
            format!("{mult}x"),
            format!("{d_abrt:.2}"),
            format!("{r_abrt:.2}"),
        ]);
        series.push(format!(
            "{{\"scheme\":\"{}\",\"default_tput\":{},\"regulated_tput\":{},\
             \"regulated_over_default\":{},\"regulated_penalty_mult\":{},\
             \"default_abort_rate\":{},\"regulated_abort_rate\":{}}}",
            scheme.name(),
            num(d_tput.round()),
            num(r_tput.round()),
            num((ratio * 1_000.0).round() / 1_000.0),
            num(mult),
            num((d_abrt * 10_000.0).round() / 10_000.0),
            num((r_abrt * 10_000.0).round() / 10_000.0),
        ));
    }
    rep.print(&format!(
        "1024-core model, theta {SIM_THETA}: fixed vs regulated restart delay"
    ));
    format!(
        "{{\"cores\":{SIM_CORES},\"theta\":{SIM_THETA},\
         \"abort_penalty_default\":{default_penalty},\
         \"penalty_mult_candidates\":{:?},\"series\":[{}]}}",
        REG_CANDIDATES,
        series.join(",")
    )
}

/// Run the full fig_regulate experiment (parses CLI args itself).
pub fn run() {
    let args = HarnessArgs::parse();
    let sweep = sweep_section(&args);
    let ro = ro_section(&args);
    let sim = sim_section(&args);

    // The validator holds quick (CI-smoke) artifacts to structural
    // checks only; perf-margin claims apply to pinned default/full runs.
    let mode = if args.quick {
        "quick"
    } else if args.full {
        "full"
    } else {
        "default"
    };
    let mut env = Envelope::new("fig_regulate");
    env.meta_num("sweep_workers", f64::from(SWEEP_WORKERS))
        .meta_str("mode", mode)
        .meta_str("hw_counters", hw_counters_label())
        .section("sweep", &sweep)
        .section("ro_fastpath", &ro)
        .section("sim_1024", &sim);
    env.write().expect("write results/fig_regulate.json");
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn adaptive_sweep_point_regulates_under_skew() {
        // A tiny hot-skew OCC point with the controller on must still
        // make progress, and the exported controller gauges must move
        // (aborts exist at four oversubscribed workers on a hot table).
        let w = Windows {
            warmup: Duration::from_millis(20),
            measure: Duration::from_millis(80),
        };
        let adaptive = sweep_point(CcScheme::Occ, 0.9, true, w);
        assert!(adaptive.tput > 0.0);
        assert!(
            adaptive.abort_rate == 0.0 || adaptive.backoff_delay_ns > 0,
            "aborts occurred but the controller never chose a delay"
        );
        // The fixed path must report no controller activity at all.
        let fixed = sweep_point(CcScheme::Occ, 0.9, false, w);
        assert_eq!(fixed.backoffs, 0);
        assert_eq!(fixed.backoff_delay_ns, 0);
    }

    #[test]
    fn ro_fast_path_skips_occ_validation_ts() {
        // OCC draws two timestamps per transaction (begin + validation);
        // the fast path drops exactly the validation one.
        let (_, on_ts) = ro_run(CcScheme::Occ, true, 200);
        let (_, off_ts) = ro_run(CcScheme::Occ, false, 200);
        assert_eq!(on_ts, 200, "begin timestamp must still be allocated");
        assert_eq!(off_ts, 400, "slow path must pay the validation ts too");
    }

    #[test]
    fn regulated_model_never_loses_at_scale() {
        // Deterministic simulator: check the no-regret claim at a small
        // core count so the test stays fast; the figure pins 1024. The
        // 1x candidate makes `regulated >= default` structural — this
        // guards the wiring (candidate set, argmax) rather than physics.
        let args = HarnessArgs {
            quick: true,
            full: false,
        };
        for scheme in [CcScheme::Occ, CcScheme::Silo] {
            let (d, _) = sim_point(scheme, 16, CostModel::default(), &args);
            let (mult, r, _) = regulated_point(scheme, 16, &args);
            assert!(
                REG_CANDIDATES.contains(&mult),
                "{scheme}: converged multiplier {mult} not a candidate"
            );
            assert!(
                r >= d,
                "{scheme}: regulated {r:.0} < default {d:.0} despite 1x candidate"
            );
        }
    }
}
