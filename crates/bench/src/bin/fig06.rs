//! Fig. 6 — Timestamp-allocation micro-benchmark.
//!
//! Every core allocates timestamps in a tight loop; the six methods of
//! §4.3 sweep 1 → 1024 cores. Expected ceilings: mutex ≈ 1M ts/s, atomic
//! peaks ~30M then falls toward ~10M (cache-line round trip ≈ 100 cycles
//! at 1024 cores), batching multiplies the atomic ceiling, the hardware
//! counter saturates at 1B ts/s, and the clock scales linearly.

use abyss_bench::paper_figs::{emit_table, series_report};
use abyss_bench::HarnessArgs;
use abyss_common::TsMethod;
use abyss_sim::cost::{BoundCosts, CostModel};
use abyss_sim::microbench;

fn main() {
    let args = HarnessArgs::parse();
    let duration = if args.quick { 200_000 } else { 1_000_000 };

    let rep = series_report(
        "cores",
        args.sweep(),
        &TsMethod::FIG6,
        |n| n.to_string(),
        |m| m.label(),
        |n, method| {
            let costs = BoundCosts::new(CostModel::default(), n);
            format!("{:.1}", microbench(method, n, &costs, duration) / 1e6)
        },
    );
    emit_table(
        &rep,
        "Fig 6 — Timestamp allocation throughput (Mts/s)",
        "fig06",
    );
}
