//! Fig. 6 — Timestamp-allocation micro-benchmark.
//!
//! Every core allocates timestamps in a tight loop; the six methods of
//! §4.3 sweep 1 → 1024 cores. Expected ceilings: mutex ≈ 1M ts/s, atomic
//! peaks ~30M then falls toward ~10M (cache-line round trip ≈ 100 cycles
//! at 1024 cores), batching multiplies the atomic ceiling, the hardware
//! counter saturates at 1B ts/s, and the clock scales linearly.

use abyss_bench::{HarnessArgs, Report};
use abyss_common::TsMethod;
use abyss_sim::cost::{BoundCosts, CostModel};
use abyss_sim::microbench;

fn main() {
    let args = HarnessArgs::parse();
    let duration = if args.quick { 200_000 } else { 1_000_000 };

    let mut headers = vec!["cores".to_string()];
    headers.extend(TsMethod::FIG6.iter().map(|m| m.label()));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();

    let mut rep = Report::new(&headers_ref);
    for &n in args.sweep() {
        let costs = BoundCosts::new(CostModel::default(), n);
        let mut row = vec![n.to_string()];
        for method in TsMethod::FIG6 {
            let rate = microbench(method, n, &costs, duration);
            row.push(format!("{:.1}", rate / 1e6));
        }
        rep.row(row);
    }
    rep.print("Fig 6 — Timestamp allocation throughput (Mts/s)");
    rep.write_csv("fig06");
}
