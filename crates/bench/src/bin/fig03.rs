//! Fig. 3 — Simulator vs. real hardware.
//!
//! The paper validates Graphite by running the same read-intensive,
//! medium-contention YCSB workload (theta = 0.6) on a real Xeon and in the
//! simulator at 1–32 cores. We do the same: (a) the discrete-event
//! simulator, (b) the real multi-threaded engine on the host CPU. Shapes
//! (relative scheme ordering, T/O dip from timestamp allocation at higher
//! thread counts) are the comparison target, not absolute numbers.

use abyss_bench::paper_figs::{emit_table, engine_ycsb_tput, scheme_tput_report, series_report};
use abyss_bench::{fmt_m, ycsb_point, HarnessArgs};
use abyss_common::CcScheme;
use abyss_sim::SimConfig;
use abyss_workload::ycsb::YcsbConfig;

/// Real-engine table size: scaled from the paper's 20M rows so a run fits
/// in host memory; contention depends on theta, which is unchanged.
const REAL_ROWS: u64 = 1_000_000;

fn main() {
    let args = HarnessArgs::parse();
    let threads: &[u32] = if args.quick {
        &[1, 4]
    } else {
        &[1, 2, 4, 8, 16, 32]
    };

    let sim_cfg = YcsbConfig::read_intensive(0.6);
    let real_cfg = YcsbConfig {
        table_rows: REAL_ROWS,
        ..YcsbConfig::read_intensive(0.6)
    };

    let rep_sim = scheme_tput_report(
        "cores",
        threads,
        &CcScheme::NON_PARTITIONED,
        |n| n.to_string(),
        |n, scheme| ycsb_point(SimConfig::new(scheme, n), &sim_cfg, &args),
    );
    emit_table(
        &rep_sim,
        "Fig 3a — Graphite-substitute simulation (Mtxn/s), YCSB read-intensive theta=0.6",
        "fig03a_sim",
    );

    let rep_real = series_report(
        "cores",
        threads,
        &CcScheme::NON_PARTITIONED,
        |n| n.to_string(),
        |s| s.to_string(),
        |n, scheme| fmt_m(engine_ycsb_tput(scheme, n, &real_cfg, args.quick)),
    );
    emit_table(
        &rep_real,
        "Fig 3b — Real host hardware (Mtxn/s), YCSB read-intensive theta=0.6",
        "fig03b_real",
    );
}
