//! Fig. 3 — Simulator vs. real hardware.
//!
//! The paper validates Graphite by running the same read-intensive,
//! medium-contention YCSB workload (theta = 0.6) on a real Xeon and in the
//! simulator at 1–32 cores. We do the same: (a) the discrete-event
//! simulator, (b) the real multi-threaded engine on the host CPU. Shapes
//! (relative scheme ordering, T/O dip from timestamp allocation at higher
//! thread counts) are the comparison target, not absolute numbers.

use std::time::Duration;

use abyss_bench::{fmt_m, ycsb_point, HarnessArgs, Report};
use abyss_common::CcScheme;
use abyss_core::{executor, run_workers, Database, EngineConfig};
use abyss_sim::SimConfig;
use abyss_workload::ycsb::{self, YcsbConfig, YcsbGen};

/// Real-engine table size: scaled from the paper's 20M rows so a run fits
/// in host memory; contention depends on theta, which is unchanged.
const REAL_ROWS: u64 = 1_000_000;

fn real_point(scheme: CcScheme, threads: u32, cfg: &YcsbConfig, quick: bool) -> f64 {
    let catalog = ycsb::catalog(cfg);
    let db = Database::new(EngineConfig::new(scheme, threads), catalog).expect("config");
    db.load_table(ycsb::YCSB_TABLE, 0..cfg.table_rows, ycsb::init_row)
        .expect("load");
    let zipf = abyss_common::zipf::ZipfGen::new(cfg.table_rows, cfg.theta);
    let gens = (0..threads)
        .map(|w| {
            let mut g = YcsbGen::with_zipf(cfg.clone(), zipf.clone(), 42 ^ (u64::from(w) << 20));
            Box::new(move || g.next_txn()) as Box<dyn FnMut() -> abyss_common::TxnTemplate + Send>
        })
        .collect();
    let (warm, meas) = if quick {
        (Duration::from_millis(50), Duration::from_millis(200))
    } else {
        (Duration::from_millis(200), Duration::from_millis(800))
    };
    let out = run_workers(&db, gens, warm, meas);
    // Keep the executor linked the same way the workers use it.
    let _ = executor::HOT_COL;
    out.txn_per_sec()
}

fn main() {
    let args = HarnessArgs::parse();
    let threads: &[u32] = if args.quick {
        &[1, 4]
    } else {
        &[1, 2, 4, 8, 16, 32]
    };

    let sim_cfg = YcsbConfig::read_intensive(0.6);
    let real_cfg = YcsbConfig {
        table_rows: REAL_ROWS,
        ..YcsbConfig::read_intensive(0.6)
    };

    let mut headers = vec!["cores".to_string()];
    headers.extend(CcScheme::NON_PARTITIONED.iter().map(|s| s.to_string()));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();

    let mut rep_sim = Report::new(&headers_ref);
    for &n in threads {
        let mut row = vec![n.to_string()];
        for scheme in CcScheme::NON_PARTITIONED {
            let r = ycsb_point(SimConfig::new(scheme, n), &sim_cfg, &args);
            row.push(fmt_m(r.txn_per_sec()));
        }
        rep_sim.row(row);
    }
    rep_sim
        .print("Fig 3a — Graphite-substitute simulation (Mtxn/s), YCSB read-intensive theta=0.6");
    rep_sim.write_csv("fig03a_sim");

    let mut rep_real = Report::new(&headers_ref);
    for &n in threads {
        let mut row = vec![n.to_string()];
        for scheme in CcScheme::NON_PARTITIONED {
            row.push(fmt_m(real_point(scheme, n, &real_cfg, args.quick)));
        }
        rep_real.row(row);
    }
    rep_real.print("Fig 3b — Real host hardware (Mtxn/s), YCSB read-intensive theta=0.6");
    rep_real.write_csv("fig03b_real");
}
