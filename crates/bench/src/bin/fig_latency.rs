//! fig_latency binary — see [`abyss_bench::fig_latency`].

fn main() {
    abyss_bench::fig_latency::run();
}
