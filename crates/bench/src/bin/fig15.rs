//! Fig. 15 — H-STORE multi-partition sensitivity.
//!
//! (a) 64 cores, sweeping the fraction of multi-partition transactions
//! (read-only vs read-write — identical by design: partition locks do not
//! distinguish); (b) 10% multi-partition transactions touching 1–16
//! partitions across rising core counts.

use abyss_bench::paper_figs::{emit_table, series_report};
use abyss_bench::{fmt_m, ycsb_point, HarnessArgs};
use abyss_common::CcScheme;
use abyss_sim::SimConfig;
use abyss_workload::ycsb::YcsbConfig;

fn main() {
    let args = HarnessArgs::parse();

    // Panel (a): multi-partition percentage at 64 cores.
    let pcts: &[f64] = if args.quick {
        &[0.0, 0.2, 1.0]
    } else {
        &[0.0, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0]
    };
    let rep_a = series_report(
        "mpt_pct",
        pcts,
        &[true, false],
        |pct| format!("{:.0}%", pct * 100.0),
        |read_only| if read_only { "readonly" } else { "readwrite" }.to_string(),
        |pct, read_only| {
            let ycsb_cfg = YcsbConfig {
                parts: 64,
                multi_part_pct: pct,
                parts_per_txn: 2,
                read_pct: if read_only { 1.0 } else { 0.5 },
                ..YcsbConfig::write_intensive(0.0)
            };
            let mut sim = SimConfig::new(CcScheme::HStore, 64);
            sim.hstore_parts = 64;
            fmt_m(ycsb_point(sim, &ycsb_cfg, &args).txn_per_sec())
        },
    );
    emit_table(
        &rep_a,
        "Fig 15a — multi-partition % at 64 cores, H-STORE (Mtxn/s)",
        "fig15a",
    );

    // Panel (b): partitions per transaction across core counts.
    let ppt: &[u32] = if args.quick {
        &[1, 4]
    } else {
        &[1, 2, 4, 8, 16]
    };
    let sweep: Vec<u32> = args.sweep().iter().copied().filter(|&n| n >= 16).collect();
    let rep_b = series_report(
        "cores",
        &sweep,
        ppt,
        |n| n.to_string(),
        |p| format!("part={p}"),
        |n, p| {
            let ycsb_cfg = YcsbConfig {
                parts: n,
                multi_part_pct: if p == 1 { 0.0 } else { 0.1 },
                parts_per_txn: p.min(n),
                ..YcsbConfig::write_intensive(0.0)
            };
            let mut sim = SimConfig::new(CcScheme::HStore, n);
            sim.hstore_parts = n;
            fmt_m(ycsb_point(sim, &ycsb_cfg, &args).txn_per_sec())
        },
    );
    emit_table(
        &rep_b,
        "Fig 15b — partitions per txn (10% MPT), H-STORE (Mtxn/s)",
        "fig15b",
    );
}
