//! Fig. 8 — Read-only YCSB scalability.
//!
//! Uniform access, 16 reads per transaction. 2PL schemes scale ~linearly;
//! TIMESTAMP and OCC lag from copying every tuple they read, and every
//! T/O scheme flattens once the atomic timestamp allocator saturates
//! (OCC first — it allocates two per transaction). Panel (b) is the §3.2
//! six-category breakdown at 1024 cores.

use abyss_bench::{breakdown_cells, fmt_m, ycsb_point, HarnessArgs, Report};
use abyss_common::CcScheme;
use abyss_sim::SimConfig;
use abyss_workload::ycsb::YcsbConfig;

fn main() {
    let args = HarnessArgs::parse();
    let ycsb_cfg = YcsbConfig::read_only();

    let mut headers = vec!["cores".to_string()];
    headers.extend(CcScheme::NON_PARTITIONED.iter().map(|s| s.to_string()));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();

    let mut rep = Report::new(&headers_ref);
    for &n in args.sweep() {
        let mut row = vec![n.to_string()];
        for scheme in CcScheme::NON_PARTITIONED {
            let r = ycsb_point(SimConfig::new(scheme, n), &ycsb_cfg, &args);
            row.push(fmt_m(r.txn_per_sec()));
        }
        rep.row(row);
    }
    rep.print("Fig 8a — Read-only YCSB (Mtxn/s)");
    rep.write_csv("fig08a");

    let peak = *args.sweep().last().unwrap();
    let mut brk = Report::new(&[
        "scheme", "useful", "abort", "ts_alloc", "index", "wait", "manager",
    ]);
    for scheme in CcScheme::NON_PARTITIONED {
        let r = ycsb_point(SimConfig::new(scheme, peak), &ycsb_cfg, &args);
        let mut row = vec![scheme.to_string()];
        row.extend(breakdown_cells(&r));
        brk.row(row);
    }
    brk.print(&format!(
        "Fig 8b — time breakdown at {peak} cores (fractions)"
    ));
    brk.write_csv("fig08b");
}
