//! Fig. 8 — Read-only YCSB scalability.
//!
//! Uniform access, 16 reads per transaction. 2PL schemes scale ~linearly;
//! TIMESTAMP and OCC lag from copying every tuple they read, and every
//! T/O scheme flattens once the atomic timestamp allocator saturates
//! (OCC first — it allocates two per transaction). Panel (b) is the §3.2
//! six-category breakdown at 1024 cores.

use abyss_bench::paper_figs::{breakdown_report, emit_table, scheme_tput_report};
use abyss_bench::{ycsb_point, HarnessArgs};
use abyss_common::CcScheme;
use abyss_sim::SimConfig;
use abyss_workload::ycsb::YcsbConfig;

fn main() {
    let args = HarnessArgs::parse();
    let ycsb_cfg = YcsbConfig::read_only();

    let rep = scheme_tput_report(
        "cores",
        args.sweep(),
        &CcScheme::NON_PARTITIONED,
        |n| n.to_string(),
        |n, scheme| ycsb_point(SimConfig::new(scheme, n), &ycsb_cfg, &args),
    );
    emit_table(&rep, "Fig 8a — Read-only YCSB (Mtxn/s)", "fig08a");

    let peak = *args.sweep().last().unwrap();
    let brk = breakdown_report(&CcScheme::NON_PARTITIONED, |scheme| {
        ycsb_point(SimConfig::new(scheme, peak), &ycsb_cfg, &args)
    });
    emit_table(
        &brk,
        &format!("Fig 8b — time breakdown at {peak} cores (fractions)"),
        "fig08b",
    );
}
