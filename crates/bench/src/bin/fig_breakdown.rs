//! fig_breakdown binary — see [`abyss_bench::fig_breakdown`].

fn main() {
    abyss_bench::fig_breakdown::run();
}
