//! Fig. 12 — Working-set size at 512 cores (theta = 0.6).
//!
//! Transactions of 1–16 accesses; the y-axis is *tuples* per second since
//! short transactions commit more often. Short transactions expose the
//! timestamp-allocation bottleneck of the T/O schemes (amortized over one
//! access instead of sixteen); long transactions expose DL_DETECT's
//! thrashing. Panel (b): breakdown at transaction length 1.

use abyss_bench::{breakdown_cells, fmt_m, ycsb_point, HarnessArgs, Report};
use abyss_common::CcScheme;
use abyss_sim::SimConfig;
use abyss_workload::ycsb::YcsbConfig;

fn main() {
    let args = HarnessArgs::parse();
    let lengths: &[usize] = if args.quick {
        &[1, 8]
    } else {
        &[1, 2, 4, 8, 12, 16]
    };
    let cores = if args.quick { 64 } else { 512 };

    let mut headers = vec!["reqs/txn".to_string()];
    headers.extend(CcScheme::NON_PARTITIONED.iter().map(|s| s.to_string()));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();

    let mut rep = Report::new(&headers_ref);
    for &len in lengths {
        let ycsb_cfg = YcsbConfig {
            reqs_per_txn: len,
            ..YcsbConfig::write_intensive(0.6)
        };
        let mut row = vec![len.to_string()];
        for scheme in CcScheme::NON_PARTITIONED {
            let r = ycsb_point(SimConfig::new(scheme, cores), &ycsb_cfg, &args);
            row.push(fmt_m(r.tuples_per_sec()));
        }
        rep.row(row);
    }
    rep.print(&format!(
        "Fig 12a — tuples/s (M) vs transaction length, {cores} cores"
    ));
    rep.write_csv("fig12a");

    let mut brk = Report::new(&[
        "scheme", "useful", "abort", "ts_alloc", "index", "wait", "manager",
    ]);
    let one = YcsbConfig {
        reqs_per_txn: 1,
        ..YcsbConfig::write_intensive(0.6)
    };
    for scheme in CcScheme::NON_PARTITIONED {
        let r = ycsb_point(SimConfig::new(scheme, cores), &one, &args);
        let mut row = vec![scheme.to_string()];
        row.extend(breakdown_cells(&r));
        brk.row(row);
    }
    brk.print("Fig 12b — time breakdown at transaction length 1 (fractions)");
    brk.write_csv("fig12b");
}
