//! Fig. 12 — Working-set size at 512 cores (theta = 0.6).
//!
//! Transactions of 1–16 accesses; the y-axis is *tuples* per second since
//! short transactions commit more often. Short transactions expose the
//! timestamp-allocation bottleneck of the T/O schemes (amortized over one
//! access instead of sixteen); long transactions expose DL_DETECT's
//! thrashing. Panel (b): breakdown at transaction length 1.

use abyss_bench::paper_figs::{breakdown_report, emit_table, series_report};
use abyss_bench::{fmt_m, ycsb_point, HarnessArgs};
use abyss_common::CcScheme;
use abyss_sim::SimConfig;
use abyss_workload::ycsb::YcsbConfig;

fn main() {
    let args = HarnessArgs::parse();
    let lengths: &[usize] = if args.quick {
        &[1, 8]
    } else {
        &[1, 2, 4, 8, 12, 16]
    };
    let cores = if args.quick { 64 } else { 512 };

    let rep = series_report(
        "reqs/txn",
        lengths,
        &CcScheme::NON_PARTITIONED,
        |len| len.to_string(),
        |s| s.to_string(),
        |len, scheme| {
            let ycsb_cfg = YcsbConfig {
                reqs_per_txn: len,
                ..YcsbConfig::write_intensive(0.6)
            };
            fmt_m(ycsb_point(SimConfig::new(scheme, cores), &ycsb_cfg, &args).tuples_per_sec())
        },
    );
    emit_table(
        &rep,
        &format!("Fig 12a — tuples/s (M) vs transaction length, {cores} cores"),
        "fig12a",
    );

    let one = YcsbConfig {
        reqs_per_txn: 1,
        ..YcsbConfig::write_intensive(0.6)
    };
    let brk = breakdown_report(&CcScheme::NON_PARTITIONED, |scheme| {
        ycsb_point(SimConfig::new(scheme, cores), &one, &args)
    });
    emit_table(
        &brk,
        "Fig 12b — time breakdown at transaction length 1 (fractions)",
        "fig12b",
    );
}
