//! Fig. 10 — Write-intensive YCSB, high contention (theta = 0.8).
//!
//! Nothing scales past ~64 cores. NO_WAIT leads early then thrashes on
//! retries; OCC wins at 1024 cores because one transaction always commits
//! per validation round. Panel (b): breakdown at 64 cores.

use abyss_bench::paper_figs::{breakdown_report, emit_table, scheme_tput_report};
use abyss_bench::{ycsb_point, HarnessArgs};
use abyss_common::CcScheme;
use abyss_sim::SimConfig;
use abyss_workload::ycsb::YcsbConfig;

fn main() {
    let args = HarnessArgs::parse();
    let ycsb_cfg = YcsbConfig::write_intensive(0.8);

    let rep = scheme_tput_report(
        "cores",
        args.sweep(),
        &CcScheme::NON_PARTITIONED,
        |n| n.to_string(),
        |n, scheme| ycsb_point(SimConfig::new(scheme, n), &ycsb_cfg, &args),
    );
    emit_table(
        &rep,
        "Fig 10a — Write-intensive YCSB, theta=0.8 (Mtxn/s)",
        "fig10a",
    );

    let brk = breakdown_report(&CcScheme::NON_PARTITIONED, |scheme| {
        ycsb_point(SimConfig::new(scheme, 64), &ycsb_cfg, &args)
    });
    emit_table(
        &brk,
        "Fig 10b — time breakdown at 64 cores (fractions)",
        "fig10b",
    );
}
