//! Fig. 10 — Write-intensive YCSB, high contention (theta = 0.8).
//!
//! Nothing scales past ~64 cores. NO_WAIT leads early then thrashes on
//! retries; OCC wins at 1024 cores because one transaction always commits
//! per validation round. Panel (b): breakdown at 64 cores.

use abyss_bench::{breakdown_cells, fmt_m, ycsb_point, HarnessArgs, Report};
use abyss_common::CcScheme;
use abyss_sim::SimConfig;
use abyss_workload::ycsb::YcsbConfig;

fn main() {
    let args = HarnessArgs::parse();
    let ycsb_cfg = YcsbConfig::write_intensive(0.8);

    let mut headers = vec!["cores".to_string()];
    headers.extend(CcScheme::NON_PARTITIONED.iter().map(|s| s.to_string()));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();

    let mut rep = Report::new(&headers_ref);
    for &n in args.sweep() {
        let mut row = vec![n.to_string()];
        for scheme in CcScheme::NON_PARTITIONED {
            let r = ycsb_point(SimConfig::new(scheme, n), &ycsb_cfg, &args);
            row.push(fmt_m(r.txn_per_sec()));
        }
        rep.row(row);
    }
    rep.print("Fig 10a — Write-intensive YCSB, theta=0.8 (Mtxn/s)");
    rep.write_csv("fig10a");

    let mut brk = Report::new(&[
        "scheme", "useful", "abort", "ts_alloc", "index", "wait", "manager",
    ]);
    for scheme in CcScheme::NON_PARTITIONED {
        let r = ycsb_point(SimConfig::new(scheme, 64), &ycsb_cfg, &args);
        let mut row = vec![scheme.to_string()];
        row.extend(breakdown_cells(&r));
        brk.row(row);
    }
    brk.print("Fig 10b — time breakdown at 64 cores (fractions)");
    brk.write_csv("fig10b");
}
