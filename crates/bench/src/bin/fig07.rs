//! Fig. 7 — Timestamp allocation inside the DBMS.
//!
//! Write-intensive YCSB under TIMESTAMP with every allocation method:
//! (a) no contention (theta = 0) — the Fig. 6 ordering carries over;
//! (b) medium contention (theta = 0.6) — batching collapses, because a
//! restarted transaction keeps drawing already-stale timestamps from its
//! local batch and re-aborts until the batch drains.

use abyss_bench::paper_figs::{emit_table, series_report};
use abyss_bench::{fmt_m, ycsb_point, HarnessArgs};
use abyss_common::{CcScheme, TsMethod};
use abyss_sim::SimConfig;
use abyss_workload::ycsb::YcsbConfig;

fn run_panel(args: &HarnessArgs, theta: f64, title: &str, csv: &str) {
    let ycsb_cfg = YcsbConfig::write_intensive(theta);
    let rep = series_report(
        "cores",
        args.sweep(),
        &TsMethod::FIG6,
        |n| n.to_string(),
        |m| m.label(),
        |n, method| {
            let mut sim = SimConfig::new(CcScheme::Timestamp, n);
            sim.ts_method = method;
            fmt_m(ycsb_point(sim, &ycsb_cfg, args).txn_per_sec())
        },
    );
    emit_table(&rep, title, csv);
}

fn main() {
    let args = HarnessArgs::parse();
    run_panel(
        &args,
        0.0,
        "Fig 7a — TIMESTAMP, no contention (Mtxn/s)",
        "fig07a",
    );
    run_panel(
        &args,
        0.6,
        "Fig 7b — TIMESTAMP, medium contention (Mtxn/s)",
        "fig07b",
    );
}
