//! Fig. 7 — Timestamp allocation inside the DBMS.
//!
//! Write-intensive YCSB under TIMESTAMP with every allocation method:
//! (a) no contention (theta = 0) — the Fig. 6 ordering carries over;
//! (b) medium contention (theta = 0.6) — batching collapses, because a
//! restarted transaction keeps drawing already-stale timestamps from its
//! local batch and re-aborts until the batch drains.

use abyss_bench::{fmt_m, ycsb_point, HarnessArgs, Report};
use abyss_common::{CcScheme, TsMethod};
use abyss_sim::SimConfig;
use abyss_workload::ycsb::YcsbConfig;

fn run_panel(args: &HarnessArgs, theta: f64, title: &str, csv: &str) {
    let methods = [
        TsMethod::Clock,
        TsMethod::Hardware,
        TsMethod::Batched { batch: 16 },
        TsMethod::Batched { batch: 8 },
        TsMethod::Atomic,
        TsMethod::Mutex,
    ];
    let mut headers = vec!["cores".to_string()];
    headers.extend(methods.iter().map(|m| m.label()));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();

    let ycsb_cfg = YcsbConfig::write_intensive(theta);
    let mut rep = Report::new(&headers_ref);
    for &n in args.sweep() {
        let mut row = vec![n.to_string()];
        for method in methods {
            let mut sim = SimConfig::new(CcScheme::Timestamp, n);
            sim.ts_method = method;
            let r = ycsb_point(sim, &ycsb_cfg, args);
            row.push(fmt_m(r.txn_per_sec()));
        }
        rep.row(row);
    }
    rep.print(title);
    rep.write_csv(csv);
}

fn main() {
    let args = HarnessArgs::parse();
    run_panel(
        &args,
        0.0,
        "Fig 7a — TIMESTAMP, no contention (Mtxn/s)",
        "fig07a",
    );
    run_panel(
        &args,
        0.6,
        "Fig 7b — TIMESTAMP, medium contention (Mtxn/s)",
        "fig07b",
    );
}
