//! fig_service binary — see [`abyss_bench::fig_service`].

fn main() {
    abyss_bench::fig_service::run();
}
