//! fig_durability binary — see [`abyss_bench::fig_durability`].

fn main() {
    abyss_bench::fig_durability::run();
}
