//! Fig. 13 — Read/write mixture at 64 cores, high skew (theta = 0.8).
//!
//! Sweeping the fraction of read accesses from 0% to 100%. MVCC shines on
//! read-mostly mixes (non-blocking reads against older versions);
//! TIMESTAMP and OCC trail from read copies.

use abyss_bench::paper_figs::{emit_table, scheme_tput_report};
use abyss_bench::{ycsb_point, HarnessArgs};
use abyss_common::CcScheme;
use abyss_sim::SimConfig;
use abyss_workload::ycsb::YcsbConfig;

fn main() {
    let args = HarnessArgs::parse();
    let mixes: &[f64] = if args.quick {
        &[0.0, 0.5, 1.0]
    } else {
        &[0.0, 0.2, 0.4, 0.6, 0.8, 0.9, 1.0]
    };

    let rep = scheme_tput_report(
        "read_pct",
        mixes,
        &CcScheme::NON_PARTITIONED,
        |read_pct| format!("{:.0}%", read_pct * 100.0),
        |read_pct, scheme| {
            let ycsb_cfg = YcsbConfig {
                read_pct,
                theta: 0.8,
                ..YcsbConfig::default()
            };
            ycsb_point(SimConfig::new(scheme, 64), &ycsb_cfg, &args)
        },
    );
    emit_table(
        &rep,
        "Fig 13 — read/write mixture at 64 cores, theta=0.8 (Mtxn/s)",
        "fig13",
    );
}
