//! Fig. 13 — Read/write mixture at 64 cores, high skew (theta = 0.8).
//!
//! Sweeping the fraction of read accesses from 0% to 100%. MVCC shines on
//! read-mostly mixes (non-blocking reads against older versions);
//! TIMESTAMP and OCC trail from read copies.

use abyss_bench::{fmt_m, ycsb_point, HarnessArgs, Report};
use abyss_common::CcScheme;
use abyss_sim::SimConfig;
use abyss_workload::ycsb::YcsbConfig;

fn main() {
    let args = HarnessArgs::parse();
    let mixes: &[f64] = if args.quick {
        &[0.0, 0.5, 1.0]
    } else {
        &[0.0, 0.2, 0.4, 0.6, 0.8, 0.9, 1.0]
    };

    let mut headers = vec!["read_pct".to_string()];
    headers.extend(CcScheme::NON_PARTITIONED.iter().map(|s| s.to_string()));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();

    let mut rep = Report::new(&headers_ref);
    for &read_pct in mixes {
        let ycsb_cfg = YcsbConfig {
            read_pct,
            theta: 0.8,
            ..YcsbConfig::default()
        };
        let mut row = vec![format!("{:.0}%", read_pct * 100.0)];
        for scheme in CcScheme::NON_PARTITIONED {
            let r = ycsb_point(SimConfig::new(scheme, 64), &ycsb_cfg, &args);
            row.push(fmt_m(r.txn_per_sec()));
        }
        rep.row(row);
    }
    rep.print("Fig 13 — read/write mixture at 64 cores, theta=0.8 (Mtxn/s)");
    rep.write_csv("fig13");
}
