//! Fig. 4 — Lock thrashing.
//!
//! DL_DETECT *without* deadlock detection, transactions acquiring locks in
//! primary-key order (deadlock-free by construction), write-intensive YCSB
//! at theta ∈ {0, 0.6, 0.8}. Throughput rises, peaks, then collapses as
//! transactions hold ever-longer lock chains — the paper's headline 2PL
//! bottleneck.

use abyss_bench::{fmt_m, ycsb_point, HarnessArgs, Report};
use abyss_common::CcScheme;
use abyss_sim::SimConfig;
use abyss_workload::ycsb::YcsbConfig;

fn main() {
    let args = HarnessArgs::parse();
    let thetas = [0.0, 0.6, 0.8];

    let mut rep = Report::new(&["cores", "theta=0", "theta=0.6", "theta=0.8"]);
    for &n in args.sweep() {
        let mut row = vec![n.to_string()];
        for theta in thetas {
            let ycsb_cfg = YcsbConfig {
                ordered_keys: true,
                ..YcsbConfig::write_intensive(theta)
            };
            let mut sim = SimConfig::new(CcScheme::DlDetect, n);
            sim.dl_detect = false; // ordered locking cannot deadlock
            sim.dl_timeout = None; // pure waiting — expose the thrashing
            let r = ycsb_point(sim, &ycsb_cfg, &args);
            row.push(fmt_m(r.txn_per_sec()));
        }
        rep.row(row);
    }
    rep.print("Fig 4 — Lock thrashing (Mtxn/s), ordered locking, no detection");
    rep.write_csv("fig04");
}
