//! Fig. 4 — Lock thrashing.
//!
//! DL_DETECT *without* deadlock detection, transactions acquiring locks in
//! primary-key order (deadlock-free by construction), write-intensive YCSB
//! at theta ∈ {0, 0.6, 0.8}. Throughput rises, peaks, then collapses as
//! transactions hold ever-longer lock chains — the paper's headline 2PL
//! bottleneck.

use abyss_bench::paper_figs::{emit_table, series_report};
use abyss_bench::{fmt_m, ycsb_point, HarnessArgs};
use abyss_common::CcScheme;
use abyss_sim::SimConfig;
use abyss_workload::ycsb::YcsbConfig;

fn main() {
    let args = HarnessArgs::parse();
    let thetas: &[f64] = &[0.0, 0.6, 0.8];

    let rep = series_report(
        "cores",
        args.sweep(),
        thetas,
        |n| n.to_string(),
        |theta| format!("theta={theta}"),
        |n, theta| {
            let ycsb_cfg = YcsbConfig {
                ordered_keys: true,
                ..YcsbConfig::write_intensive(theta)
            };
            let mut sim = SimConfig::new(CcScheme::DlDetect, n);
            sim.dl_detect = false; // ordered locking cannot deadlock
            sim.dl_timeout = None; // pure waiting — expose the thrashing
            fmt_m(ycsb_point(sim, &ycsb_cfg, &args).txn_per_sec())
        },
    );
    emit_table(
        &rep,
        "Fig 4 — Lock thrashing (Mtxn/s), ordered locking, no detection",
        "fig04",
    );
}
