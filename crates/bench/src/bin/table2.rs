//! Table 2 — the per-scheme bottleneck summary, regenerated from data.
//!
//! For every scheme, run the low-contention and high-contention YCSB
//! configurations at a high core count and report which §3.2 category
//! dominates its lost time — the measured counterpart of the paper's
//! qualitative table.

use abyss_bench::paper_figs::emit_table;
use abyss_bench::{fmt_m, ycsb_point, HarnessArgs, Report};
use abyss_common::stats::Category;
use abyss_common::CcScheme;
use abyss_sim::SimConfig;
use abyss_workload::ycsb::YcsbConfig;

fn dominant_overhead(r: &abyss_sim::SimReport) -> String {
    // The largest non-useful-work category.
    Category::ALL
        .into_iter()
        .filter(|c| *c != Category::UsefulWork)
        .max_by(|a, b| {
            r.stats
                .breakdown
                .fraction(*a)
                .partial_cmp(&r.stats.breakdown.fraction(*b))
                .unwrap()
        })
        .map(|c| format!("{} ({:.0}%)", c, r.stats.breakdown.fraction(c) * 100.0))
        .unwrap()
}

fn main() {
    let args = HarnessArgs::parse();
    let cores = if args.quick { 64 } else { 1024 };
    let low = YcsbConfig::write_intensive(0.0);
    let high = YcsbConfig::write_intensive(0.8);

    let mut rep = Report::new(&[
        "scheme",
        "low-cont Mtxn/s",
        "low-cont bottleneck",
        "high-cont Mtxn/s",
        "high-cont bottleneck",
        "high-cont abort rate",
    ]);
    for scheme in CcScheme::NON_PARTITIONED {
        let rl = ycsb_point(SimConfig::new(scheme, cores), &low, &args);
        let rh = ycsb_point(SimConfig::new(scheme, cores), &high, &args);
        rep.row(vec![
            scheme.to_string(),
            fmt_m(rl.txn_per_sec()),
            dominant_overhead(&rl),
            fmt_m(rh.txn_per_sec()),
            dominant_overhead(&rh),
            format!("{:.2}", rh.stats.abort_rate()),
        ]);
    }
    emit_table(
        &rep,
        &format!("Table 2 — measured bottleneck summary at {cores} cores"),
        "table2",
    );
}
