//! Fig. 17 — TPC-C with 1024 warehouses, up to 1024 cores.
//!
//! Workers ≤ warehouses: the Payment bottleneck disappears, H-STORE
//! exploits the partitioning best (~12% multi-partition transactions),
//! and the T/O schemes flatten at the timestamp-allocation ceiling.

use abyss_bench::{fmt_m, tpcc_point, HarnessArgs, Report};
use abyss_common::CcScheme;
use abyss_sim::SimConfig;
use abyss_workload::tpcc::{TpccConfig, TAG_NEW_ORDER, TAG_PAYMENT};

fn main() {
    let args = HarnessArgs::parse();
    let tpcc_cfg = TpccConfig {
        warehouses: 1024,
        ..TpccConfig::default()
    };

    let mut headers = vec!["cores".to_string()];
    headers.extend(CcScheme::ALL.iter().map(|s| s.to_string()));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();

    let mut total = Report::new(&headers_ref);
    let mut payment = Report::new(&headers_ref);
    let mut neworder = Report::new(&headers_ref);
    for &n in args.sweep() {
        let mut t = vec![n.to_string()];
        let mut p = vec![n.to_string()];
        let mut o = vec![n.to_string()];
        for scheme in CcScheme::ALL {
            let r = tpcc_point(SimConfig::new(scheme, n), &tpcc_cfg, &args);
            t.push(fmt_m(r.txn_per_sec()));
            p.push(fmt_m(r.tagged_txn_per_sec(TAG_PAYMENT)));
            o.push(fmt_m(r.tagged_txn_per_sec(TAG_NEW_ORDER)));
        }
        total.row(t);
        payment.row(p);
        neworder.row(o);
    }
    total.print("Fig 17a — TPC-C 1024 warehouses, Payment+NewOrder (Mtxn/s)");
    total.write_csv("fig17a");
    payment.print("Fig 17b — Payment only (Mtxn/s)");
    payment.write_csv("fig17b");
    neworder.print("Fig 17c — NewOrder only (Mtxn/s)");
    neworder.write_csv("fig17c");
}
