//! Fig. 17 — TPC-C with 1024 warehouses, up to 1024 cores.
//!
//! Workers ≤ warehouses: the Payment bottleneck disappears, H-STORE
//! exploits the partitioning best (~12% multi-partition transactions),
//! and the T/O schemes flatten at the timestamp-allocation ceiling.

use abyss_bench::paper_figs::{emit_table, tpcc_panels};
use abyss_bench::{tpcc_point, HarnessArgs};
use abyss_common::CcScheme;
use abyss_sim::SimConfig;
use abyss_workload::tpcc::TpccConfig;

fn main() {
    let args = HarnessArgs::parse();
    let tpcc_cfg = TpccConfig {
        warehouses: 1024,
        ..TpccConfig::default()
    };

    let (total, payment, neworder) = tpcc_panels(args.sweep(), &CcScheme::ALL, |n, scheme| {
        tpcc_point(SimConfig::new(scheme, n), &tpcc_cfg, &args)
    });
    emit_table(
        &total,
        "Fig 17a — TPC-C 1024 warehouses, Payment+NewOrder (Mtxn/s)",
        "fig17a",
    );
    emit_table(&payment, "Fig 17b — Payment only (Mtxn/s)", "fig17b");
    emit_table(&neworder, "Fig 17c — NewOrder only (Mtxn/s)", "fig17c");
}
