//! Fig. 9 — Write-intensive YCSB, medium contention (theta = 0.6).
//!
//! 16 accesses per transaction, each updating with 50% probability.
//! NO_WAIT and WAIT_DIE are the only 2PL schemes that scale past 512
//! cores; DL_DETECT thrashes; TIMESTAMP/MVCC overlap operations; OCC pays
//! for aborted work. Panel (b): breakdown at 512 cores.

use abyss_bench::paper_figs::{breakdown_report, emit_table, scheme_tput_report};
use abyss_bench::{ycsb_point, HarnessArgs};
use abyss_common::CcScheme;
use abyss_sim::SimConfig;
use abyss_workload::ycsb::YcsbConfig;

fn main() {
    let args = HarnessArgs::parse();
    let ycsb_cfg = YcsbConfig::write_intensive(0.6);

    let rep = scheme_tput_report(
        "cores",
        args.sweep(),
        &CcScheme::NON_PARTITIONED,
        |n| n.to_string(),
        |n, scheme| ycsb_point(SimConfig::new(scheme, n), &ycsb_cfg, &args),
    );
    emit_table(
        &rep,
        "Fig 9a — Write-intensive YCSB, theta=0.6 (Mtxn/s)",
        "fig09a",
    );

    let at = if args.quick {
        *args.sweep().last().unwrap()
    } else {
        512
    };
    let brk = breakdown_report(&CcScheme::NON_PARTITIONED, |scheme| {
        ycsb_point(SimConfig::new(scheme, at), &ycsb_cfg, &args)
    });
    emit_table(
        &brk,
        &format!("Fig 9b — time breakdown at {at} cores (fractions)"),
        "fig09b",
    );
}
