//! Fig. 9 — Write-intensive YCSB, medium contention (theta = 0.6).
//!
//! 16 accesses per transaction, each updating with 50% probability.
//! NO_WAIT and WAIT_DIE are the only 2PL schemes that scale past 512
//! cores; DL_DETECT thrashes; TIMESTAMP/MVCC overlap operations; OCC pays
//! for aborted work. Panel (b): breakdown at 512 cores.

use abyss_bench::{breakdown_cells, fmt_m, ycsb_point, HarnessArgs, Report};
use abyss_common::CcScheme;
use abyss_sim::SimConfig;
use abyss_workload::ycsb::YcsbConfig;

fn main() {
    let args = HarnessArgs::parse();
    let ycsb_cfg = YcsbConfig::write_intensive(0.6);

    let mut headers = vec!["cores".to_string()];
    headers.extend(CcScheme::NON_PARTITIONED.iter().map(|s| s.to_string()));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();

    let mut rep = Report::new(&headers_ref);
    for &n in args.sweep() {
        let mut row = vec![n.to_string()];
        for scheme in CcScheme::NON_PARTITIONED {
            let r = ycsb_point(SimConfig::new(scheme, n), &ycsb_cfg, &args);
            row.push(fmt_m(r.txn_per_sec()));
        }
        rep.row(row);
    }
    rep.print("Fig 9a — Write-intensive YCSB, theta=0.6 (Mtxn/s)");
    rep.write_csv("fig09a");

    let at = if args.quick {
        *args.sweep().last().unwrap()
    } else {
        512
    };
    let mut brk = Report::new(&[
        "scheme", "useful", "abort", "ts_alloc", "index", "wait", "manager",
    ]);
    for scheme in CcScheme::NON_PARTITIONED {
        let r = ycsb_point(SimConfig::new(scheme, at), &ycsb_cfg, &args);
        let mut row = vec![scheme.to_string()];
        row.extend(breakdown_cells(&r));
        brk.row(row);
    }
    brk.print(&format!(
        "Fig 9b — time breakdown at {at} cores (fractions)"
    ));
    brk.write_csv("fig09b");
}
