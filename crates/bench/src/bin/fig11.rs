//! Fig. 11 — Contention sweep at 64 cores.
//!
//! Write-intensive YCSB, theta 0 → 0.9. Below theta ≈ 0.6 skew barely
//! matters; above it every scheme's throughput collapses toward zero.

use abyss_bench::paper_figs::{emit_table, scheme_tput_report};
use abyss_bench::{ycsb_point, HarnessArgs};
use abyss_common::CcScheme;
use abyss_sim::SimConfig;
use abyss_workload::ycsb::YcsbConfig;

fn main() {
    let args = HarnessArgs::parse();
    let thetas: &[f64] = if args.quick {
        &[0.0, 0.6, 0.8]
    } else {
        &[0.0, 0.2, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]
    };

    let rep = scheme_tput_report(
        "theta",
        thetas,
        &CcScheme::NON_PARTITIONED,
        |theta| format!("{theta:.1}"),
        |theta, scheme| {
            let ycsb_cfg = YcsbConfig::write_intensive(theta);
            ycsb_point(SimConfig::new(scheme, 64), &ycsb_cfg, &args)
        },
    );
    emit_table(
        &rep,
        "Fig 11 — contention sweep at 64 cores (Mtxn/s)",
        "fig11",
    );
}
