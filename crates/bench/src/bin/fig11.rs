//! Fig. 11 — Contention sweep at 64 cores.
//!
//! Write-intensive YCSB, theta 0 → 0.9. Below theta ≈ 0.6 skew barely
//! matters; above it every scheme's throughput collapses toward zero.

use abyss_bench::{fmt_m, ycsb_point, HarnessArgs, Report};
use abyss_common::CcScheme;
use abyss_sim::SimConfig;
use abyss_workload::ycsb::YcsbConfig;

fn main() {
    let args = HarnessArgs::parse();
    let thetas: &[f64] = if args.quick {
        &[0.0, 0.6, 0.8]
    } else {
        &[0.0, 0.2, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]
    };

    let mut headers = vec!["theta".to_string()];
    headers.extend(CcScheme::NON_PARTITIONED.iter().map(|s| s.to_string()));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();

    let mut rep = Report::new(&headers_ref);
    for &theta in thetas {
        let ycsb_cfg = YcsbConfig::write_intensive(theta);
        let mut row = vec![format!("{theta:.1}")];
        for scheme in CcScheme::NON_PARTITIONED {
            let r = ycsb_point(SimConfig::new(scheme, 64), &ycsb_cfg, &args);
            row.push(fmt_m(r.txn_per_sec()));
        }
        rep.row(row);
    }
    rep.print("Fig 11 — contention sweep at 64 cores (Mtxn/s)");
    rep.write_csv("fig11");
}
