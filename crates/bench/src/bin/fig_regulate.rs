//! fig_regulate binary — see [`abyss_bench::fig_regulate`].

fn main() {
    abyss_bench::fig_regulate::run();
}
