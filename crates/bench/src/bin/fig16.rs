//! Fig. 16 — TPC-C with 4 warehouses, up to 256 cores.
//!
//! More workers than warehouses: every Payment serializes on its
//! warehouse's `W_YTD` update, so nothing scales. TIMESTAMP/MVCC keep
//! NewOrder moving (writes don't block reads); H-STORE idles all but four
//! partitions' worth of workers.

use abyss_bench::{fmt_m, tpcc_point, HarnessArgs, Report};
use abyss_common::CcScheme;
use abyss_sim::SimConfig;
use abyss_workload::tpcc::{TpccConfig, TAG_NEW_ORDER, TAG_PAYMENT};

fn main() {
    let args = HarnessArgs::parse();
    let sweep: Vec<u32> = args.sweep().iter().copied().filter(|&n| n <= 256).collect();
    let tpcc_cfg = TpccConfig {
        warehouses: 4,
        ..TpccConfig::default()
    };

    let mut headers = vec!["cores".to_string()];
    headers.extend(CcScheme::ALL.iter().map(|s| s.to_string()));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();

    let mut total = Report::new(&headers_ref);
    let mut payment = Report::new(&headers_ref);
    let mut neworder = Report::new(&headers_ref);
    for &n in &sweep {
        let mut t = vec![n.to_string()];
        let mut p = vec![n.to_string()];
        let mut o = vec![n.to_string()];
        for scheme in CcScheme::ALL {
            let r = tpcc_point(SimConfig::new(scheme, n), &tpcc_cfg, &args);
            t.push(fmt_m(r.txn_per_sec()));
            p.push(fmt_m(r.tagged_txn_per_sec(TAG_PAYMENT)));
            o.push(fmt_m(r.tagged_txn_per_sec(TAG_NEW_ORDER)));
        }
        total.row(t);
        payment.row(p);
        neworder.row(o);
    }
    total.print("Fig 16a — TPC-C 4 warehouses, Payment+NewOrder (Mtxn/s)");
    total.write_csv("fig16a");
    payment.print("Fig 16b — Payment only (Mtxn/s)");
    payment.write_csv("fig16b");
    neworder.print("Fig 16c — NewOrder only (Mtxn/s)");
    neworder.write_csv("fig16c");
}
