//! Fig. 16 — TPC-C with 4 warehouses, up to 256 cores.
//!
//! More workers than warehouses: every Payment serializes on its
//! warehouse's `W_YTD` update, so nothing scales. TIMESTAMP/MVCC keep
//! NewOrder moving (writes don't block reads); H-STORE idles all but four
//! partitions' worth of workers.

use abyss_bench::paper_figs::{emit_table, tpcc_panels};
use abyss_bench::{tpcc_point, HarnessArgs};
use abyss_common::CcScheme;
use abyss_sim::SimConfig;
use abyss_workload::tpcc::TpccConfig;

fn main() {
    let args = HarnessArgs::parse();
    let sweep: Vec<u32> = args.sweep().iter().copied().filter(|&n| n <= 256).collect();
    let tpcc_cfg = TpccConfig {
        warehouses: 4,
        ..TpccConfig::default()
    };

    let (total, payment, neworder) = tpcc_panels(&sweep, &CcScheme::ALL, |n, scheme| {
        tpcc_point(SimConfig::new(scheme, n), &tpcc_cfg, &args)
    });
    emit_table(
        &total,
        "Fig 16a — TPC-C 4 warehouses, Payment+NewOrder (Mtxn/s)",
        "fig16a",
    );
    emit_table(&payment, "Fig 16b — Payment only (Mtxn/s)", "fig16b");
    emit_table(&neworder, "Fig 16c — NewOrder only (Mtxn/s)", "fig16c");
}
