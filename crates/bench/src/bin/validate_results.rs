//! validate_results — CI's single gate over every benchmark artifact.
//!
//! Replaces the per-figure python heredocs that used to live in the
//! workflow: every `results/*.json` must parse with the harness's own
//! parser and satisfy the shared envelope contract
//! ([`json::validate_envelope`]: figure tag, meta provenance, uniquely
//! named sections, percentile monotonicity everywhere, admission
//! accounting reconciliation). On top of the generic contract, figures
//! CI smokes get targeted semantic checks — the qualitative claims each
//! figure exists to pin:
//!
//! * `dispatch_micro` — all schemes timed on both dispatch paths with
//!   positive costs; the padding audit covers the 2PL lockword and the
//!   epoch slots with positive padded and unpadded costs; the NUMA
//!   arena churn hits the node arena on the same-node pattern.
//! * `fig_modern` — SILO and TICTOC allocate **zero** global timestamps;
//!   OCC pays the allocator (the contrast the figure is about).
//! * `fig_regulate` — the adaptive backoff controller matches or beats
//!   the fixed schedule for at least one OCC-family scheme in the hot
//!   regime (theta >= 0.8) and idles at theta 0; the read-only fast
//!   path halves OCC's timestamp allocations (begin stays, validation
//!   goes) with a wall-clock win; the 1024-core regulated restart delay
//!   never loses and wins >= 1% for the optimistic family. Wall-clock
//!   margins are only enforced on non-quick (pinned) artifacts.
//! * `fig_service` — shedding is zero at the lowest offered point and
//!   nonzero at the highest (admission control engages past saturation);
//!   the batched-submission probe ran both paths to commit.
//! * `fig_breakdown` — DL_DETECT's wait fraction rises with theta in the
//!   simulator section (the paper's headline thrashing story).
//! * `fig_durability` — group commit keeps ≥ 80% of undurable
//!   throughput while per-commit fsync doesn't, and log counters match
//!   each mode (off logs nothing, fsync forces every commit record).
//!
//! `results/fig_breakdown.prom`, when present, is parsed as Prometheus
//! exposition text: cumulative histogram buckets must be monotone and
//!   end in `+Inf` matching `_count`.
//!
//! Usage: `validate_results [dir]` (default `results`). Exits nonzero on
//! the first missing contract; prints one line per validated file.

use std::process::ExitCode;

use abyss_bench::harness::json::{self, Value};

fn fail(msg: &str) -> ExitCode {
    eprintln!("validate_results: {msg}");
    ExitCode::FAILURE
}

/// Pull `sections[name]` out of a parsed envelope.
fn section<'a>(doc: &'a Value, name: &str) -> Option<&'a Value> {
    doc.get("sections")?
        .as_arr()?
        .iter()
        .find(|s| s.get("name").and_then(Value::as_str) == Some(name))
}

fn num(v: &Value, key: &str) -> Option<f64> {
    v.get(key)?.as_f64()
}

// ---------------------------------------------------------------------
// Per-figure semantic checks
// ---------------------------------------------------------------------

fn check_dispatch_micro(doc: &Value) -> Result<(), String> {
    let dispatch = section(doc, "dispatch").ok_or("missing dispatch section")?;
    let schemes = dispatch
        .get("schemes")
        .and_then(Value::as_arr)
        .ok_or("dispatch: no schemes array")?;
    if schemes.len() < 9 {
        return Err(format!(
            "dispatch: expected >= 9 schemes, got {}",
            schemes.len()
        ));
    }
    for s in schemes {
        let name = s.get("scheme").and_then(Value::as_str).unwrap_or("?");
        for key in ["enum_ns_per_txn", "mono_ns_per_txn"] {
            if num(s, key).is_none_or(|v| v <= 0.0) {
                return Err(format!("dispatch/{name}: non-positive {key}"));
            }
        }
    }
    let audit = section(doc, "padding_audit").ok_or("missing padding_audit section")?;
    let cases = audit
        .get("cases")
        .and_then(Value::as_arr)
        .ok_or("padding_audit: no cases array")?;
    for want in ["2pl_lockword", "epoch_slots"] {
        let case = cases
            .iter()
            .find(|c| c.get("hot_word").and_then(Value::as_str) == Some(want))
            .ok_or_else(|| format!("padding_audit: missing {want} case"))?;
        for key in ["padded_ns_per_op", "unpadded_ns_per_op"] {
            if num(case, key).is_none_or(|v| v <= 0.0) {
                return Err(format!("padding_audit/{want}: non-positive {key}"));
            }
        }
    }
    let numa = section(doc, "numa").ok_or("missing numa section")?;
    if num(numa, "nodes").is_none_or(|n| n < 1.0) {
        return Err("numa: node count < 1".into());
    }
    let cases = numa
        .get("cases")
        .and_then(Value::as_arr)
        .ok_or("numa: no cases array")?;
    for want in ["local", "interleaved"] {
        let case = cases
            .iter()
            .find(|c| c.get("pattern").and_then(Value::as_str) == Some(want))
            .ok_or_else(|| format!("numa: missing {want} case"))?;
        if num(case, "ns_per_alloc").is_none_or(|v| v <= 0.0) {
            return Err(format!("numa/{want}: non-positive ns_per_alloc"));
        }
    }
    // Steady-state same-node churn must recycle parked blocks out of the
    // node arena — a zero hit rate means the arena path is dead code.
    let local = cases
        .iter()
        .find(|c| c.get("pattern").and_then(Value::as_str) == Some("local"))
        .unwrap();
    if num(local, "arena_hit_rate").is_none_or(|v| v <= 0.0) {
        return Err("numa/local: arena never hit".into());
    }
    Ok(())
}

fn check_fig_regulate(doc: &Value) -> Result<(), String> {
    // Quick (CI-smoke) regenerations are too short for the wall-clock
    // margin claims — hold them to the structural and deterministic
    // checks only. The pinned artifact is a default or full run.
    let quick = doc
        .get("meta")
        .and_then(|m| m.get("mode"))
        .and_then(Value::as_str)
        == Some("quick");
    // --- sweep: the adaptive controller's engine-side claim ---
    let sweep = section(doc, "sweep").ok_or("missing sweep section")?;
    let series = sweep
        .get("series")
        .and_then(Value::as_arr)
        .ok_or("sweep: no series")?;
    if series.is_empty() {
        return Err("sweep: empty series".into());
    }
    let occ_family = ["OCC", "SILO", "TICTOC"];
    let mut hot_win = false;
    for pt in series {
        let scheme = pt.get("scheme").and_then(Value::as_str).unwrap_or("?");
        let theta = num(pt, "theta").unwrap_or(-1.0);
        let fixed = num(pt.get("fixed").ok_or("sweep point missing fixed")?, "tput").unwrap_or(0.0);
        let adaptive = num(
            pt.get("adaptive").ok_or("sweep point missing adaptive")?,
            "tput",
        )
        .unwrap_or(0.0);
        if fixed <= 0.0 || adaptive <= 0.0 {
            return Err(format!("sweep/{scheme}@{theta}: zero throughput"));
        }
        // Uncontended guard: the controller must idle at theta 0 — a big
        // regression there means it fires without aborts. Loose bound;
        // the pinned artifact is held to ±2%.
        if !quick && theta == 0.0 && adaptive < 0.85 * fixed {
            return Err(format!(
                "sweep/{scheme}@0: adaptive {adaptive:.0} lost >15% vs fixed {fixed:.0}"
            ));
        }
        if occ_family.contains(&scheme) && theta >= 0.8 && adaptive >= fixed {
            hot_win = true;
        }
    }
    if !quick && !hot_win {
        return Err(
            "sweep: adaptive never matched fixed for any OCC-family scheme at theta >= 0.8".into(),
        );
    }
    // --- ro_fastpath: the commit-skip mechanism and its cost ---
    let ro = section(doc, "ro_fastpath").ok_or("missing ro_fastpath section")?;
    let schemes = ro
        .get("schemes")
        .and_then(Value::as_arr)
        .ok_or("ro_fastpath: no schemes array")?;
    let occ = schemes
        .iter()
        .find(|s| s.get("scheme").and_then(Value::as_str) == Some("OCC"))
        .ok_or("ro_fastpath: missing OCC")?;
    // OCC pays two allocator trips per transaction (begin + validation);
    // the fast path must drop exactly the validation one.
    let on_ts = num(occ, "on_ts_allocated").unwrap_or(-1.0);
    let off_ts = num(occ, "off_ts_allocated").unwrap_or(-1.0);
    if on_ts <= 0.0 || off_ts != 2.0 * on_ts {
        return Err(format!(
            "ro_fastpath/OCC: expected the fast path to halve ts allocation \
             (on {on_ts}, off {off_ts})"
        ));
    }
    // The paired-median off/on ratio is the wall-clock claim: a real
    // (if small) win for OCC, no harm for schemes that skip nothing.
    if !quick && num(occ, "off_over_on").unwrap_or(0.0) <= 1.0 {
        return Err("ro_fastpath/OCC: no wall-clock win from the commit-ts skip".into());
    }
    for s in schemes {
        let name = s.get("scheme").and_then(Value::as_str).unwrap_or("?");
        let on = num(s, "on_ns_per_txn").unwrap_or(0.0);
        let off = num(s, "off_ns_per_txn").unwrap_or(0.0);
        if on <= 0.0 || off <= 0.0 {
            return Err(format!("ro_fastpath/{name}: non-positive ns/txn"));
        }
        if !quick && num(s, "off_over_on").unwrap_or(0.0) < 0.95 {
            return Err(format!(
                "ro_fastpath/{name}: fast path >5% slower than slow path ({on:.1} vs {off:.1})"
            ));
        }
    }
    // --- sim_1024: the deterministic 1024-core model claim ---
    let sim = section(doc, "sim_1024").ok_or("missing sim_1024 section")?;
    if num(sim, "cores").unwrap_or(0.0) != 1024.0 {
        return Err("sim_1024: not run at 1024 cores".into());
    }
    // `regulated >= default` is structural (the fixed delay is in the
    // candidate set); the real finding is a non-trivial margin for the
    // optimistic family, which only appears if a *different* restart
    // delay genuinely wins in the thrash regime.
    let mut sim_margin = false;
    for s in sim.get("series").and_then(Value::as_arr).unwrap_or(&[]) {
        let name = s.get("scheme").and_then(Value::as_str).unwrap_or("?");
        let d = num(s, "default_tput").unwrap_or(0.0);
        let r = num(s, "regulated_tput").unwrap_or(0.0);
        if d <= 0.0 || r <= 0.0 {
            return Err(format!("sim_1024/{name}: zero throughput"));
        }
        if occ_family.contains(&name) {
            if r < d {
                return Err(format!(
                    "sim_1024/{name}: regulated model lost ({r:.0} vs {d:.0})"
                ));
            }
            if r >= d * 1.01 {
                sim_margin = true;
            }
        }
    }
    if !quick && !sim_margin {
        return Err(
            "sim_1024: no OCC-family scheme shows a >=1% regulated win at 1024 cores".into(),
        );
    }
    Ok(())
}

fn check_fig_modern(doc: &Value) -> Result<(), String> {
    let sections = doc.get("sections").and_then(Value::as_arr).unwrap_or(&[]);
    let mut saw_rts = false;
    for sec in sections {
        let where_ = sec.get("name").and_then(Value::as_str).unwrap_or("?");
        let series = sec
            .get("series")
            .and_then(Value::as_arr)
            .ok_or_else(|| format!("{where_}: no series"))?;
        for s in series {
            let scheme = s.get("scheme").and_then(Value::as_str).unwrap_or("?");
            let points = s.get("points").and_then(Value::as_arr).unwrap_or(&[]);
            if points.is_empty() {
                return Err(format!("{where_}/{scheme}: empty points"));
            }
            for p in points {
                let ts = num(p, "ts_allocated").unwrap_or(-1.0);
                match scheme {
                    // The figure's whole point: the modern schemes never
                    // touch the central allocator.
                    "SILO" | "TICTOC" => {
                        if ts != 0.0 {
                            return Err(format!(
                                "{where_}/{scheme}: allocated {ts} global timestamps"
                            ));
                        }
                        if num(p, "txn_per_sec").is_none_or(|v| v <= 0.0) {
                            return Err(format!("{where_}/{scheme}: zero throughput"));
                        }
                        if scheme == "TICTOC" && num(p, "rts_extensions").unwrap_or(0.0) > 0.0 {
                            saw_rts = true;
                        }
                    }
                    "OCC" if ts <= 0.0 => {
                        return Err(format!("{where_}/OCC: allocator-free? ts_allocated={ts}"));
                    }
                    _ => {}
                }
            }
        }
    }
    if !saw_rts {
        return Err("TICTOC reported zero rts extensions everywhere".into());
    }
    Ok(())
}

fn check_fig_service(doc: &Value) -> Result<(), String> {
    for key in ["closed_loop_peak", "service_peak"] {
        if doc
            .get("meta")
            .and_then(|m| num(m, key))
            .is_none_or(|v| v <= 0.0)
        {
            return Err(format!("meta.{key} missing or non-positive"));
        }
    }
    let sweep = section(doc, "sweep").ok_or("missing sweep section")?;
    let series = sweep
        .get("series")
        .and_then(Value::as_arr)
        .ok_or("sweep: no series")?;
    if series.len() < 2 {
        return Err("sweep: need an under- and an over-load point".into());
    }
    for pt in series {
        let acked = num(pt.get("high").ok_or("point missing high dist")?, "count").unwrap_or(0.0)
            + num(pt.get("low").ok_or("point missing low dist")?, "count").unwrap_or(0.0);
        let accepted = num(pt, "accepted").unwrap_or(-1.0);
        if acked != accepted {
            return Err(format!("{accepted} accepted but {acked} acked"));
        }
    }
    // The envelope validator already reconciled the admission counters;
    // here we pin the *shape*: no shedding well under saturation, some
    // shedding at the 2x overload point.
    let first = &series[0];
    let last = &series[series.len() - 1];
    if num(first, "shed_rate").unwrap_or(1.0) != 0.0 {
        return Err(format!(
            "shedding at the lowest offered point ({:?}/s)",
            num(first, "offered")
        ));
    }
    if num(last, "shed_rate").unwrap_or(0.0) <= 0.0 {
        return Err("no shedding at the overload point".into());
    }
    if num(last, "achieved").unwrap_or(0.0) <= 0.0 {
        return Err("overloaded service made no progress".into());
    }
    // Batched-submission probe: both paths must have run and committed.
    let batch = section(doc, "batch").ok_or("missing batch section")?;
    for key in ["single_ns_per_submit", "batch_ns_per_submit"] {
        if num(batch, key).is_none_or(|v| v <= 0.0) {
            return Err(format!("batch: non-positive {key}"));
        }
    }
    for key in ["single_commits", "batch_commits"] {
        if num(batch, key).is_none_or(|v| v <= 0.0) {
            return Err(format!("batch: no commits ({key})"));
        }
    }
    Ok(())
}

fn check_fig_breakdown(doc: &Value) -> Result<(), String> {
    let sim = section(doc, "sim").ok_or("missing sim section")?;
    let series = sim
        .get("series")
        .and_then(Value::as_arr)
        .ok_or("sim: no series")?;
    // The paper's headline shift: DL_DETECT becomes wait-dominated as
    // contention rises.
    let mut dl: Vec<(f64, f64)> = series
        .iter()
        .filter(|s| {
            s.get("scheme").and_then(Value::as_str) == Some("DL_DETECT")
                && s.get("workload").and_then(Value::as_str) == Some("ycsb")
        })
        .filter_map(|s| {
            Some((
                num(s, "theta")?,
                s.get("fractions").and_then(|f| num(f, "wait"))?,
            ))
        })
        .collect();
    dl.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    if dl.len() < 2 {
        return Err(format!(
            "sim: {} DL_DETECT ycsb points, need >= 2",
            dl.len()
        ));
    }
    let waits: Vec<f64> = dl.iter().map(|p| p.1).collect();
    if waits.windows(2).any(|w| w[0] > w[1]) {
        return Err(format!(
            "DL_DETECT wait fraction not monotone in theta: {dl:?}"
        ));
    }
    if waits[waits.len() - 1] <= waits[0] {
        return Err(format!(
            "DL_DETECT wait fraction flat across thetas: {dl:?}"
        ));
    }
    Ok(())
}

fn check_fig_durability(doc: &Value) -> Result<(), String> {
    let ratios = section(doc, "ratios").ok_or("missing ratios section")?;
    let schemes = ratios
        .get("schemes")
        .and_then(Value::as_arr)
        .ok_or("ratios: no schemes array")?;
    for want in ["SILO", "NO_WAIT"] {
        let r = schemes
            .iter()
            .find(|s| s.get("scheme").and_then(Value::as_str) == Some(want))
            .ok_or_else(|| format!("ratios: missing {want}"))?;
        let group = num(r, "group_ratio").unwrap_or(0.0);
        if group < 0.8 {
            return Err(format!("{want}: group commit lost too much ({group})"));
        }
        let fsync = num(r, "fsync_ratio").unwrap_or(1.0);
        if fsync >= 0.8 {
            return Err(format!(
                "{want}: per-commit fsync suspiciously cheap ({fsync})"
            ));
        }
    }
    let engine = section(doc, "engine").ok_or("missing engine section")?;
    for s in engine.get("series").and_then(Value::as_arr).unwrap_or(&[]) {
        let scheme = s.get("scheme").and_then(Value::as_str).unwrap_or("?");
        for m in s.get("modes").and_then(Value::as_arr).unwrap_or(&[]) {
            let mode = m.get("mode").and_then(Value::as_str).unwrap_or("?");
            let records = num(m, "log_records").unwrap_or(-1.0);
            match mode {
                "off" if records != 0.0 => {
                    return Err(format!("{scheme}/off: logged {records} records"));
                }
                "group" | "fsync" if records <= 0.0 => {
                    return Err(format!("{scheme}/{mode}: logged nothing"));
                }
                "fsync" if num(m, "log_fsyncs").unwrap_or(0.0) < records => {
                    return Err(format!("{scheme}/fsync: fewer fsyncs than commit records"));
                }
                _ => {}
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Prometheus exposition (fig_breakdown.prom)
// ---------------------------------------------------------------------

fn check_prom(text: &str) -> Result<(), String> {
    let mut samples: Vec<(&str, f64)> = Vec::new();
    for ln in text.lines() {
        if ln.is_empty() || ln.starts_with('#') {
            continue;
        }
        let (name, value) = ln
            .rsplit_once(' ')
            .ok_or_else(|| format!("unparseable sample line: {ln}"))?;
        let value: f64 = value
            .parse()
            .map_err(|_| format!("non-numeric sample value: {ln}"))?;
        samples.push((name, value));
    }
    if !samples
        .iter()
        .any(|(k, _)| k.starts_with("abyss_phase_ns_total{"))
    {
        return Err("no abyss_phase_ns_total samples".into());
    }
    for hist in ["abyss_commit_latency_ns", "abyss_abort_latency_ns"] {
        let prefix = format!("{hist}_bucket{{");
        let le_of = |key: &str| -> Result<f64, String> {
            let raw = key
                .split("le=\"")
                .nth(1)
                .and_then(|s| s.split('"').next())
                .ok_or_else(|| format!("{hist}: bucket without le: {key}"))?;
            Ok(if raw == "+Inf" {
                f64::INFINITY
            } else {
                raw.parse().map_err(|_| format!("{hist}: bad le {raw}"))?
            })
        };
        let mut buckets: Vec<(f64, f64)> = Vec::new();
        for (k, v) in &samples {
            if k.starts_with(&prefix) {
                buckets.push((le_of(k)?, *v));
            }
        }
        if buckets.is_empty() {
            return Err(format!("{hist}: no _bucket samples"));
        }
        buckets.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        if buckets.windows(2).any(|w| w[0].1 > w[1].1) {
            return Err(format!("{hist}: cumulative bucket counts not monotone"));
        }
        let (last_le, last_count) = buckets[buckets.len() - 1];
        if last_le != f64::INFINITY {
            return Err(format!("{hist}: no +Inf bucket"));
        }
        let count = samples
            .iter()
            .find(|(k, _)| *k == format!("{hist}_count"))
            .map(|(_, v)| *v)
            .ok_or_else(|| format!("{hist}: missing _count"))?;
        if last_count != count {
            return Err(format!(
                "{hist}: +Inf bucket {last_count} != _count {count}"
            ));
        }
        if !samples.iter().any(|(k, _)| *k == format!("{hist}_sum")) {
            return Err(format!("{hist}: missing _sum"));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------

fn main() -> ExitCode {
    let dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results".to_string());
    let entries = match std::fs::read_dir(&dir) {
        Ok(e) => e,
        Err(e) => return fail(&format!("cannot read {dir}: {e}")),
    };
    let mut paths: Vec<_> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return fail(&format!("{dir} holds no *.json to validate"));
    }

    let mut validated = 0usize;
    for path in &paths {
        let name = path.display();
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => return fail(&format!("{name}: {e}")),
        };
        let doc = match json::parse(&text) {
            Ok(d) => d,
            Err(e) => return fail(&format!("{name}: parse error: {e}")),
        };
        if let Err(e) = json::validate_envelope(&doc) {
            return fail(&format!("{name}: envelope violation: {e}"));
        }
        let figure = doc.get("figure").and_then(Value::as_str).unwrap_or("");
        let semantic = match figure {
            "dispatch_micro" => check_dispatch_micro(&doc),
            "fig_modern" => check_fig_modern(&doc),
            "fig_regulate" => check_fig_regulate(&doc),
            "fig_service" => check_fig_service(&doc),
            "fig_breakdown" => check_fig_breakdown(&doc),
            "fig_durability" => check_fig_durability(&doc),
            _ => Ok(()),
        };
        if let Err(e) = semantic {
            return fail(&format!("{name}: {figure} semantic check failed: {e}"));
        }
        println!("validate_results: {name} OK ({figure})");
        validated += 1;
    }

    let prom = std::path::Path::new(&dir).join("fig_breakdown.prom");
    if let Ok(text) = std::fs::read_to_string(&prom) {
        if let Err(e) = check_prom(&text) {
            return fail(&format!("{}: {e}", prom.display()));
        }
        println!("validate_results: {} OK (prometheus)", prom.display());
        validated += 1;
    }

    println!("validate_results: {validated} artifact(s) validated in {dir}/");
    ExitCode::SUCCESS
}
