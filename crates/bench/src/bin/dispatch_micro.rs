//! Dispatch micro-comparison plus the hot-word padding audit — the
//! measured backing for two structural claims:
//!
//! 1. **Dispatch** (`dispatch` section): the enum-match shim vs the
//!    monomorphized protocol on a read-only YCSB loop. Both paths execute
//!    the *identical* seeded workload (same generator seed, same bounded
//!    transaction count, one worker — no contention, so the only
//!    difference is dispatch structure): `DispatchMode::Enum` drives
//!    `WorkerCtx<AnyScheme>` (one scheme match per operation, the
//!    pre-refactor engine's hot path); `DispatchMode::Mono` drives the
//!    statically instantiated protocol (`run_workers`' normal path).
//!    Timing is the bounded driver's start/stop-edge wall (barrier
//!    release → last worker join), not a hand-held `Instant` pair.
//!
//! 2. **Padding** (`padding_audit` section): the engine wraps its
//!    contended hot words (2PL park-table lockwords, epoch slots, the
//!    shared timestamp counter, waits-for heads) in
//!    `abyss_common::Padded`. This audit measures what that buys: the
//!    same per-thread slot hammering run twice through the harness, once
//!    with `Padded` (128-byte-aligned slots, no false sharing) and once
//!    with `Unpadded` (`repr(transparent)` — adjacent slots share cache
//!    lines), reporting ns/op for each and the unpadded/padded ratio.
//!
//! Prints per-scheme tables and writes `results/dispatch_micro.json` in
//! the shared envelope. `--quick` shrinks budgets (CI smoke); `--full`
//! grows them.

use std::ops::AddAssign;
use std::sync::atomic::{AtomicU64, Ordering};

use abyss_bench::harness::emit::{num, Envelope};
use abyss_bench::harness::{self, BenchContext, BenchSpec, PinPolicy};
use abyss_bench::{HarnessArgs, Report};
use abyss_common::{CcScheme, PadWrap, Padded, TxnTemplate, Unpadded};
use abyss_core::{run_workers_bounded_via, Database, DispatchMode, EngineConfig};
use abyss_storage::mempool::{arena_depth, MemPool};
use abyss_workload::ycsb::{self, YcsbConfig, YcsbGen};

const SEED: u64 = 0xD15B_A7C4_0000_0001;
const TABLE_ROWS: u64 = 100_000;

fn workload() -> YcsbConfig {
    YcsbConfig {
        table_rows: TABLE_ROWS,
        theta: 0.6,
        ..YcsbConfig::read_only()
    }
}

/// One bounded single-worker run; returns ns per committed transaction.
fn run_once(scheme: CcScheme, txns: u64, mode: DispatchMode) -> f64 {
    let cfg = workload();
    let db = Database::new(EngineConfig::new(scheme, 1), ycsb::catalog(&cfg)).unwrap();
    db.load_table(0, 0..cfg.table_rows, ycsb::init_row).unwrap();
    let mut g = YcsbGen::new(cfg, SEED);
    let gens = vec![Box::new(move || g.next_txn()) as Box<dyn FnMut() -> TxnTemplate + Send>];
    let out = run_workers_bounded_via(&db, gens, txns, mode);
    assert_eq!(out.stats.commits, txns, "{scheme}: read-only txn aborted");
    out.wall.as_nanos() as f64 / txns as f64
}

/// Best-of-N to shed scheduler noise (single worker, read-only: the
/// minimum is the cleanest estimate of the loop's cost).
fn best_of(scheme: CcScheme, txns: u64, rounds: u32, mode: DispatchMode) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        best = best.min(run_once(scheme, txns, mode));
    }
    best
}

fn dispatch_section(args: &HarnessArgs) -> String {
    let (txns, rounds) = if args.quick {
        (5_000u64, 2u32)
    } else if args.full {
        (100_000, 5)
    } else {
        (30_000, 3)
    };
    println!(
        "dispatch_micro: read-only YCSB (theta 0.6, {TABLE_ROWS} rows), 1 worker, \
         {txns} txns x best-of-{rounds}\n"
    );

    let mut report = Report::new(&["scheme", "enum ns/txn", "mono ns/txn", "mono/enum"]);
    let mut rows_json = Vec::new();
    for &scheme in &CcScheme::ALL {
        // Warm both paths once (allocator, page faults) before timing.
        let _ = run_once(scheme, txns / 10 + 1, DispatchMode::Enum);
        let _ = run_once(scheme, txns / 10 + 1, DispatchMode::Mono);
        let enum_ns = best_of(scheme, txns, rounds, DispatchMode::Enum);
        let mono_ns = best_of(scheme, txns, rounds, DispatchMode::Mono);
        let ratio = mono_ns / enum_ns;
        report.row(vec![
            scheme.name().to_string(),
            format!("{enum_ns:.1}"),
            format!("{mono_ns:.1}"),
            format!("{ratio:.3}"),
        ]);
        rows_json.push(format!(
            "{{\"scheme\":\"{}\",\"enum_ns_per_txn\":{},\
             \"mono_ns_per_txn\":{},\"mono_over_enum\":{}}}",
            scheme.name(),
            num(enum_ns),
            num(mono_ns),
            num(ratio),
        ));
    }
    report.print("enum-match shim vs monomorphized worker loop");

    format!(
        "{{\"workload\":\"ycsb_read_only\",\"theta\":0.6,\"table_rows\":{TABLE_ROWS},\
         \"workers\":1,\"txns_per_round\":{txns},\"rounds\":{rounds},\"schemes\":[{}]}}",
        rows_json.join(",")
    )
}

// ---------------------------------------------------------------------
// Padding audit
// ---------------------------------------------------------------------

/// Per-thread op counter merged across the harness's workers.
#[derive(Default, Clone)]
struct Ops(u64);

impl AddAssign for Ops {
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

/// What a padding case hammers per iteration on its thread's slot.
#[derive(Clone, Copy)]
enum Pattern {
    /// A 2PL lockword handoff: CAS 0→1 (acquire) then store 0 (release) —
    /// the park-table / lock-table hot word.
    Lockword,
    /// An epoch slot: publish a monotonically rising local epoch, then
    /// read a neighbor's slot the way the epoch advancer scans the ring.
    EpochSlot,
}

impl Pattern {
    fn name(self) -> &'static str {
        match self {
            Pattern::Lockword => "2pl_lockword",
            Pattern::EpochSlot => "epoch_slots",
        }
    }
}

/// A bank of per-thread hot words, generic over the padding wrapper so
/// the padded and compile-time-unpadded controls run the same code.
struct PadAudit<P: PadWrap<AtomicU64>> {
    slots: Vec<P>,
    ops_per_thread: u64,
    pattern: Pattern,
}

impl<P: PadWrap<AtomicU64>> PadAudit<P> {
    fn new(threads: u32, ops_per_thread: u64, pattern: Pattern) -> Self {
        Self {
            slots: (0..threads).map(|_| P::wrap(AtomicU64::new(0))).collect(),
            ops_per_thread,
            pattern,
        }
    }
}

impl<P: PadWrap<AtomicU64>> BenchSpec for PadAudit<P> {
    type Result = Ops;

    fn run(&self, ctx: &mut BenchContext<'_>) -> Ops {
        let mine = self.slots[ctx.thread_id as usize].get();
        let next = self.slots[(ctx.thread_id as usize + 1) % self.slots.len()].get();
        ctx.wait_for_start();
        let mut done = 0u64;
        match self.pattern {
            Pattern::Lockword => {
                while done < self.ops_per_thread {
                    while mine
                        .compare_exchange_weak(0, 1, Ordering::Acquire, Ordering::Relaxed)
                        .is_err()
                    {
                        std::hint::spin_loop();
                    }
                    mine.store(0, Ordering::Release);
                    done += 1;
                }
            }
            Pattern::EpochSlot => {
                while done < self.ops_per_thread {
                    mine.store(done, Ordering::Release);
                    std::hint::black_box(next.load(Ordering::Acquire));
                    done += 1;
                }
            }
        }
        Ops(done)
    }
}

/// Best-of-N ns/op for one wrapper type.
fn audit_case<P: PadWrap<AtomicU64>>(threads: u32, ops: u64, rounds: u32, pattern: Pattern) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let mut spec = PadAudit::<P>::new(threads, ops, pattern);
        let out = harness::run_bounded(&mut spec, threads, PinPolicy::Compact);
        assert_eq!(out.merged.0, u64::from(threads) * ops);
        best = best.min(out.wall.as_nanos() as f64 / (u64::from(threads) * ops) as f64);
    }
    best
}

fn padding_section(args: &HarnessArgs) -> String {
    let threads = (abyss_common::available_cores() as u32).clamp(2, 4);
    let (ops, rounds) = if args.quick {
        (200_000u64, 2u32)
    } else if args.full {
        (4_000_000, 5)
    } else {
        (1_000_000, 3)
    };

    let mut table = Report::new(&[
        "hot word",
        "padded ns/op",
        "unpadded ns/op",
        "unpadded/padded",
    ]);
    let mut cases = Vec::new();
    for pattern in [Pattern::Lockword, Pattern::EpochSlot] {
        let padded = audit_case::<Padded<AtomicU64>>(threads, ops, rounds, pattern);
        let unpadded = audit_case::<Unpadded<AtomicU64>>(threads, ops, rounds, pattern);
        let ratio = unpadded / padded;
        table.row(vec![
            pattern.name().to_string(),
            format!("{padded:.1}"),
            format!("{unpadded:.1}"),
            format!("{ratio:.3}"),
        ]);
        cases.push(format!(
            "{{\"hot_word\":\"{}\",\"padded_ns_per_op\":{},\
             \"unpadded_ns_per_op\":{},\"unpadded_over_padded\":{}}}",
            pattern.name(),
            num(padded),
            num(unpadded),
            num(ratio),
        ));
    }
    table.print(&format!(
        "padding audit: {threads} compact-pinned threads, {ops} ops each, best-of-{rounds}"
    ));

    format!(
        "{{\"threads\":{threads},\"ops_per_thread\":{ops},\"rounds\":{rounds},\
         \"pin\":\"compact\",\"cases\":[{}]}}",
        cases.join(",")
    )
}

// ---------------------------------------------------------------------
// NUMA arena refill
// ---------------------------------------------------------------------

/// Per-thread tally for the arena-churn spec.
#[derive(Default, Clone, Copy)]
struct Churn {
    allocs: u64,
    arena_hits: u64,
    refilled: u64,
}

impl AddAssign for Churn {
    fn add_assign(&mut self, rhs: Self) {
        self.allocs += rhs.allocs;
        self.arena_hits += rhs.arena_hits;
        self.refilled += rhs.refilled;
    }
}

/// Block size the churn hammers — the pool's row-copy sweet spot.
const CHURN_BLOCK: usize = 256;
/// Blocks allocated per pool lifecycle.
const CHURN_BURST: usize = 64;

/// Pool-lifecycle churn against the node arenas: each round builds a
/// pool bound to one node, allocates a burst, frees it, and drops the
/// pool — parking its cache into that node's arena, where the next
/// same-node pool's refill recycles it. `nodes` round-robins the target:
/// a single entry is the local steady state (arena hits every round
/// after the first); listing every node is the interleaved pattern a
/// non-NUMA-aware allocator produces. Single-node hosts collapse both
/// cases to identical behavior — the figure reports the topology so the
/// validator knows when the delta is meaningful.
struct ArenaChurn {
    nodes: Vec<usize>,
    rounds: u64,
}

impl BenchSpec for ArenaChurn {
    type Result = Churn;

    fn run(&self, ctx: &mut BenchContext<'_>) -> Churn {
        ctx.wait_for_start();
        let mut out = Churn::default();
        let mut blocks = Vec::with_capacity(CHURN_BURST);
        for r in 0..self.rounds {
            let node = self.nodes[(r as usize) % self.nodes.len()];
            let mut pool = MemPool::new_on_node(node);
            for _ in 0..CHURN_BURST {
                blocks.push(pool.alloc(CHURN_BLOCK));
            }
            out.allocs += CHURN_BURST as u64;
            for b in blocks.drain(..) {
                pool.free(b);
            }
            let st = pool.stats();
            out.arena_hits += st.arena_hits;
            out.refilled += st.refilled_blocks;
        }
        out
    }
}

/// Best-of-N ns/alloc for one node pattern, plus the arena hit rate:
/// the fraction of refilled blocks recycled from the node arena rather
/// than carved fresh (deterministic given the pattern, so any rep
/// serves).
fn churn_case(nodes: Vec<usize>, rounds: u64, reps: u32) -> (f64, f64) {
    let mut best = f64::INFINITY;
    let mut hit_rate = 0.0;
    for _ in 0..reps {
        let mut spec = ArenaChurn {
            nodes: nodes.clone(),
            rounds,
        };
        let out = harness::run_bounded(&mut spec, 1, PinPolicy::Compact);
        best = best.min(out.wall.as_nanos() as f64 / out.merged.allocs as f64);
        hit_rate = out.merged.arena_hits as f64 / out.merged.refilled.max(1) as f64;
    }
    (best, hit_rate)
}

fn numa_section(args: &HarnessArgs) -> String {
    let topo = abyss_common::numa_topology();
    let here = abyss_common::current_node();
    let (rounds, reps) = if args.quick {
        (2_000u64, 2u32)
    } else if args.full {
        (40_000, 5)
    } else {
        (10_000, 3)
    };
    let all_nodes: Vec<usize> = (0..topo.nodes()).collect();

    // Prime every node's arena once so the timed cases measure steady
    // state, not first-touch allocation.
    churn_case(all_nodes.clone(), 64.max(rounds / 10), 1);

    let mut table = Report::new(&["pattern", "ns/alloc", "arena hit rate"]);
    let mut cases = Vec::new();
    let mut by_name = [0.0f64; 2];
    for (i, (name, nodes)) in [("local", vec![here]), ("interleaved", all_nodes.clone())]
        .into_iter()
        .enumerate()
    {
        let (ns, hits) = churn_case(nodes, rounds, reps);
        by_name[i] = ns;
        table.row(vec![
            name.to_string(),
            format!("{ns:.1}"),
            format!("{hits:.3}"),
        ]);
        cases.push(format!(
            "{{\"pattern\":\"{name}\",\"ns_per_alloc\":{},\"arena_hit_rate\":{}}}",
            num(ns),
            num(hits),
        ));
    }
    table.print(&format!(
        "numa arena refill: {} node(s), {CHURN_BURST}x{CHURN_BLOCK}B bursts, \
         {rounds} pool lifecycles x best-of-{reps}",
        topo.nodes()
    ));

    format!(
        "{{\"nodes\":{},\"current_node\":{here},\"block_size\":{CHURN_BLOCK},\
         \"burst\":{CHURN_BURST},\"rounds\":{rounds},\"reps\":{reps},\
         \"arena_depth_local\":{},\"interleaved_over_local\":{},\"cases\":[{}]}}",
        topo.nodes(),
        arena_depth(here, CHURN_BLOCK),
        num(by_name[1] / by_name[0]),
        cases.join(",")
    )
}

fn main() {
    let args = HarnessArgs::parse();
    let dispatch = dispatch_section(&args);
    let padding = padding_section(&args);
    let numa = numa_section(&args);

    let mut env = Envelope::new("dispatch_micro");
    env.section("dispatch", &dispatch)
        .section("padding_audit", &padding)
        .section("numa", &numa);
    env.write().expect("write results/dispatch_micro.json");
}
