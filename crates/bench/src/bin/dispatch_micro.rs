//! Dispatch micro-comparison: the enum-match shim vs the monomorphized
//! protocol on a read-only YCSB loop — the measured backing for the
//! `CcProtocol` refactor's speed claim.
//!
//! Both paths execute the *identical* seeded workload (same generator
//! seed, same bounded transaction count, one worker — no contention, so
//! the only difference is dispatch structure): `DispatchMode::Enum`
//! drives `WorkerCtx<AnyScheme>` (one scheme match per operation, the
//! pre-refactor engine's hot path); `DispatchMode::Mono` drives the
//! statically instantiated protocol (`run_workers`' normal path). A
//! read-only mix keeps per-access work minimal, which maximizes the
//! relative weight of dispatch itself — the comparison is an upper bound
//! on what monomorphization wins per access, not a macro-benchmark.
//!
//! Prints a per-scheme table and writes `results/dispatch_micro.json`.
//! `--quick` shrinks the iteration budget (CI smoke); `--full` grows it.

use std::io::Write as _;

use abyss_bench::{HarnessArgs, Report};
use abyss_common::{CcScheme, TxnTemplate};
use abyss_core::{run_workers_bounded_via, Database, DispatchMode, EngineConfig};
use abyss_workload::ycsb::{self, YcsbConfig, YcsbGen};

const SEED: u64 = 0xD15B_A7C4_0000_0001;
const TABLE_ROWS: u64 = 100_000;

fn workload() -> YcsbConfig {
    YcsbConfig {
        table_rows: TABLE_ROWS,
        theta: 0.6,
        ..YcsbConfig::read_only()
    }
}

/// One bounded single-worker run; returns ns per committed transaction.
fn run_once(scheme: CcScheme, txns: u64, mode: DispatchMode) -> f64 {
    let cfg = workload();
    let db = Database::new(EngineConfig::new(scheme, 1), ycsb::catalog(&cfg)).unwrap();
    db.load_table(0, 0..cfg.table_rows, ycsb::init_row).unwrap();
    let mut g = YcsbGen::new(cfg, SEED);
    let gens = vec![Box::new(move || g.next_txn()) as Box<dyn FnMut() -> TxnTemplate + Send>];
    let out = run_workers_bounded_via(&db, gens, txns, mode);
    assert_eq!(out.stats.commits, txns, "{scheme}: read-only txn aborted");
    out.wall.as_nanos() as f64 / txns as f64
}

/// Best-of-N to shed scheduler noise (single worker, read-only: the
/// minimum is the cleanest estimate of the loop's cost).
fn best_of(scheme: CcScheme, txns: u64, rounds: u32, mode: DispatchMode) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        best = best.min(run_once(scheme, txns, mode));
    }
    best
}

fn main() {
    let args = HarnessArgs::parse();
    let (txns, rounds) = if args.quick {
        (5_000u64, 2u32)
    } else if args.full {
        (100_000, 5)
    } else {
        (30_000, 3)
    };
    println!(
        "dispatch_micro: read-only YCSB (theta 0.6, {TABLE_ROWS} rows), 1 worker, \
         {txns} txns x best-of-{rounds}\n"
    );

    let mut report = Report::new(&["scheme", "enum ns/txn", "mono ns/txn", "mono/enum"]);
    let mut rows_json = Vec::new();
    for &scheme in &CcScheme::ALL {
        // Warm both paths once (allocator, page faults) before timing.
        let _ = run_once(scheme, txns / 10 + 1, DispatchMode::Enum);
        let _ = run_once(scheme, txns / 10 + 1, DispatchMode::Mono);
        let enum_ns = best_of(scheme, txns, rounds, DispatchMode::Enum);
        let mono_ns = best_of(scheme, txns, rounds, DispatchMode::Mono);
        let ratio = mono_ns / enum_ns;
        report.row(vec![
            scheme.name().to_string(),
            format!("{enum_ns:.1}"),
            format!("{mono_ns:.1}"),
            format!("{ratio:.3}"),
        ]);
        rows_json.push(format!(
            "{{\"scheme\":\"{}\",\"enum_ns_per_txn\":{enum_ns:.1},\
             \"mono_ns_per_txn\":{mono_ns:.1},\"mono_over_enum\":{ratio:.4}}}",
            scheme.name()
        ));
    }
    report.print("enum-match shim vs monomorphized worker loop");

    let json = format!(
        "{{\"figure\":\"dispatch_micro\",\"workload\":\"ycsb_read_only\",\
         \"theta\":0.6,\"table_rows\":{TABLE_ROWS},\"workers\":1,\
         \"txns_per_round\":{txns},\"rounds\":{rounds},\"schemes\":[{}]}}",
        rows_json.join(",")
    );
    println!("\n{json}");
    if std::fs::create_dir_all("results").is_ok() {
        if let Ok(mut f) = std::fs::File::create("results/dispatch_micro.json") {
            let _ = writeln!(f, "{json}");
            println!("  [json] results/dispatch_micro.json");
        }
    }
}
