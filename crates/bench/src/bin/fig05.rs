//! Fig. 5 — Waiting vs. aborting.
//!
//! DL_DETECT on high-contention YCSB (theta = 0.8) at 64 cores, sweeping
//! the wait-timeout threshold from 0 (equivalent to NO_WAIT) to 100 ms.
//! Short timeouts trade a high abort rate for reduced thrashing; the paper
//! settles on 100 µs as its default.

use abyss_bench::{fmt_m, ycsb_point, HarnessArgs, Report};
use abyss_common::CcScheme;
use abyss_sim::SimConfig;
use abyss_workload::ycsb::YcsbConfig;

fn main() {
    let args = HarnessArgs::parse();
    // (label, cycles at 1 GHz)
    let timeouts: &[(&str, u64)] = if args.quick {
        &[("0", 0), ("10us", 10_000), ("1ms", 1_000_000)]
    } else {
        &[
            ("0", 0),
            ("1us", 1_000),
            ("10us", 10_000),
            ("100us", 100_000),
            ("1ms", 1_000_000),
            ("10ms", 10_000_000),
            ("100ms", 100_000_000),
        ]
    };

    let ycsb_cfg = YcsbConfig::write_intensive(0.8);
    let mut rep = Report::new(&["timeout", "Mtxn/s", "aborts/s(M)", "abort_rate"]);
    for &(label, cycles) in timeouts {
        let mut sim = SimConfig::new(CcScheme::DlDetect, 64);
        sim.dl_timeout = Some(cycles);
        let r = ycsb_point(sim, &ycsb_cfg, &args);
        rep.row(vec![
            label.to_string(),
            fmt_m(r.txn_per_sec()),
            fmt_m(r.aborts_per_sec()),
            format!("{:.3}", r.stats.abort_rate()),
        ]);
    }
    abyss_bench::paper_figs::emit_table(
        &rep,
        "Fig 5 — DL_DETECT timeout sweep, YCSB theta=0.8, 64 cores",
        "fig05",
    );
}
