//! Fig. 14 — Database partitioning, single-partition transactions.
//!
//! Write-intensive uniform YCSB on a database hash-partitioned into as
//! many partitions as cores. H-STORE's coarse partition locks beat every
//! per-tuple scheme up to ~800 cores, then its timestamp allocation
//! catches up with it.

use abyss_bench::{fmt_m, ycsb_point, HarnessArgs, Report};
use abyss_common::CcScheme;
use abyss_sim::SimConfig;
use abyss_workload::ycsb::YcsbConfig;

fn main() {
    let args = HarnessArgs::parse();

    let mut headers = vec!["cores".to_string()];
    headers.extend(CcScheme::ALL.iter().map(|s| s.to_string()));
    let headers_ref: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();

    let mut rep = Report::new(&headers_ref);
    for &n in args.sweep() {
        let mut row = vec![n.to_string()];
        for scheme in CcScheme::ALL {
            let ycsb_cfg = YcsbConfig {
                parts: if scheme == CcScheme::HStore { n } else { 1 },
                multi_part_pct: 0.0,
                ..YcsbConfig::write_intensive(0.0)
            };
            let mut sim = SimConfig::new(scheme, n);
            if scheme == CcScheme::HStore {
                sim.hstore_parts = n;
            }
            let r = ycsb_point(sim, &ycsb_cfg, &args);
            row.push(fmt_m(r.txn_per_sec()));
        }
        rep.row(row);
    }
    rep.print("Fig 14 — partitioned YCSB, single-partition txns (Mtxn/s)");
    rep.write_csv("fig14");
}
