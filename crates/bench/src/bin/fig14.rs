//! Fig. 14 — Database partitioning, single-partition transactions.
//!
//! Write-intensive uniform YCSB on a database hash-partitioned into as
//! many partitions as cores. H-STORE's coarse partition locks beat every
//! per-tuple scheme up to ~800 cores, then its timestamp allocation
//! catches up with it.

use abyss_bench::paper_figs::{emit_table, scheme_tput_report};
use abyss_bench::{ycsb_point, HarnessArgs};
use abyss_common::CcScheme;
use abyss_sim::SimConfig;
use abyss_workload::ycsb::YcsbConfig;

fn main() {
    let args = HarnessArgs::parse();

    let rep = scheme_tput_report(
        "cores",
        args.sweep(),
        &CcScheme::ALL,
        |n| n.to_string(),
        |n, scheme| {
            let ycsb_cfg = YcsbConfig {
                parts: if scheme == CcScheme::HStore { n } else { 1 },
                multi_part_pct: 0.0,
                ..YcsbConfig::write_intensive(0.0)
            };
            let mut sim = SimConfig::new(scheme, n);
            if scheme == CcScheme::HStore {
                sim.hstore_parts = n;
            }
            ycsb_point(sim, &ycsb_cfg, &args)
        },
    );
    emit_table(
        &rep,
        "Fig 14 — partitioned YCSB, single-partition txns (Mtxn/s)",
        "fig14",
    );
}
