//! Per-phase attempt-time accounting — the paper's §3.2 "where does time
//! go" breakdown, measured on the real engine.
//!
//! [`PhaseClock`] is a zero-allocation stopwatch carried by each
//! `WorkerCtx`. The worker hot path stamps *phase transitions* at the
//! existing instrumentation seams (begin, ts allocation, index access,
//! protocol calls, WAL append, commit/abort); the clock charges the time
//! since the previous stamp to the phase that was running. Per attempt the
//! seven [`Phase`] buckets partition the interval from `attempt_started`
//! to commit/abort — the same window the commit/abort latency histograms
//! record — which is the conservation invariant `tests/obs_overhead.rs`
//! checks. Inter-attempt backoff sleeps are deliberately *not* charged:
//! the breakdown attributes attempt time, and excluding backoff keeps the
//! invariant exact.
//!
//! Two costs matter:
//!
//! * **Disabled** (the default): every `set()` is a single branch on a
//!   bool — the runtime-flag compile-out idiom shared with tracing.
//! * **Enabled**: each transition is one timestamp read plus integer
//!   arithmetic. `Instant::now()` costs ~20–25 ns, which at three or four
//!   transitions per operation would break the ≤1.05× overhead budget, so
//!   on x86-64 the clock reads the TSC directly (`_rdtsc`, a few ns) and
//!   converts ticks → ns with one multiply using a once-calibrated rate.
//!   Other targets fall back to `Instant`.
//!
//! Wait time is a special case: the park sites in `SchemeEnv::record_wait`
//! already measure the blocked interval precisely, and that interval is
//! *inside* whatever phase span encloses the park (Manager, usually). The
//! clock therefore takes waits as an explicit deduction
//! ([`PhaseClock::note_wait`]): the waited nanoseconds go to
//! [`Phase::Wait`] and are subtracted from the enclosing span when it
//! closes, so nothing is double-counted.

use abyss_common::stats::{Phase, PhaseBreakdown};
use abyss_common::RunStats;

/// Monotonic tick source: raw TSC on x86-64, `Instant` elsewhere.
#[cfg(target_arch = "x86_64")]
#[inline(always)]
fn ticks() -> u64 {
    // Safe on every x86-64 CPU we target; the paper's experiments assume
    // an invariant TSC (constant rate across idle states), as do all
    // modern profilers.
    unsafe { core::arch::x86_64::_rdtsc() }
}

#[cfg(not(target_arch = "x86_64"))]
#[inline(always)]
fn ticks() -> u64 {
    use std::sync::OnceLock;
    use std::time::Instant;
    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    ORIGIN.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Nanoseconds per tick, calibrated once per process.
#[cfg(target_arch = "x86_64")]
fn ns_per_tick() -> f64 {
    use std::sync::OnceLock;
    use std::time::Instant;
    static RATE: OnceLock<f64> = OnceLock::new();
    *RATE.get_or_init(|| {
        // Spin ~5 ms against Instant; long enough that the ~20 ns cost of
        // the Instant reads vanishes into the interval.
        let (t0, i0) = (ticks(), Instant::now());
        let spin_until = i0 + std::time::Duration::from_millis(5);
        while Instant::now() < spin_until {
            std::hint::spin_loop();
        }
        let (t1, i1) = (ticks(), Instant::now());
        let dt = t1.saturating_sub(t0).max(1);
        i1.duration_since(i0).as_nanos() as f64 / dt as f64
    })
}

#[cfg(not(target_arch = "x86_64"))]
fn ns_per_tick() -> f64 {
    1.0
}

/// Per-worker phase stopwatch. All fields are plain integers; the struct
/// lives inline in `WorkerCtx` and never allocates.
///
/// The hot path (`set`) is integer-only: spans accumulate in raw *ticks*
/// and are converted to nanoseconds once per attempt at flush time —
/// seven multiplies per attempt instead of one per transition, which is
/// what keeps the enabled clock inside the ≤1.05× overhead budget.
#[derive(Debug)]
pub struct PhaseClock {
    enabled: bool,
    /// Phase the open span is charged to.
    cur: Phase,
    /// Tick stamp at which the open span started.
    since: u64,
    /// Ticks parked inside the open span (already charged to Wait);
    /// deducted when the span closes.
    wait_deduct: u64,
    /// ns-per-tick, copied out of the calibration `OnceLock` so the hot
    /// path never touches shared state.
    rate: f64,
    /// ticks-per-ns, for converting the wait sites' measured ns inward.
    inv_rate: f64,
    /// This attempt's per-phase *ticks*, converted to ns on flush.
    scratch: PhaseBreakdown,
}

impl PhaseClock {
    /// A clock; disabled clocks never read the time source.
    pub fn new(enabled: bool) -> Self {
        // Calibrate eagerly (outside the measured run) so the first
        // attempt doesn't pay the 5 ms spin.
        let rate = if enabled { ns_per_tick() } else { 0.0 };
        Self {
            enabled,
            cur: Phase::Manager,
            since: 0,
            wait_deduct: 0,
            rate,
            inv_rate: if enabled { 1.0 / rate } else { 0.0 },
            scratch: PhaseBreakdown::new(),
        }
    }

    /// Whether accounting is on (used by the worker to skip flushes).
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Start a new attempt: reset the scratch buckets and open a
    /// [`Phase::Manager`] span (begin bookkeeping runs first).
    #[inline]
    pub fn start_attempt(&mut self) {
        if !self.enabled {
            return;
        }
        self.scratch = PhaseBreakdown::new();
        self.cur = Phase::Manager;
        self.wait_deduct = 0;
        self.since = ticks();
    }

    /// Close the open span, charging it to the current phase, and open a
    /// new span in `next`. One TSC read plus integer arithmetic.
    #[inline]
    pub fn set(&mut self, next: Phase) {
        if !self.enabled {
            return;
        }
        let now = ticks();
        let span = now.saturating_sub(self.since);
        self.scratch
            .record(self.cur, span.saturating_sub(self.wait_deduct));
        self.wait_deduct = 0;
        self.cur = next;
        self.since = now;
    }

    /// Record `waited_ns` spent parked (measured by the caller with its
    /// own clock). Charged to [`Phase::Wait`] now and deducted from the
    /// enclosing span when it closes. Park sites are rare relative to
    /// transitions, so the ns → ticks multiply is off the common path.
    #[inline]
    pub fn note_wait(&mut self, waited_ns: u64) {
        if !self.enabled {
            return;
        }
        let waited_ticks = (waited_ns as f64 * self.inv_rate) as u64;
        self.scratch.record(Phase::Wait, waited_ticks);
        self.wait_deduct += waited_ticks;
    }

    /// Convert the accumulated tick scratch to nanoseconds and reset it.
    fn drain_ns(&mut self) -> PhaseBreakdown {
        let mut out = PhaseBreakdown::new();
        for p in Phase::ALL {
            let t = self.scratch.get(p);
            if t != 0 {
                out.record(p, (t as f64 * self.rate) as u64);
            }
        }
        self.scratch = PhaseBreakdown::new();
        out
    }

    /// Close the attempt as committed: final span charged to the current
    /// phase, scratch flushed into `stats.phase_ns`. Returns the attempt's
    /// delta so the caller can forward it to a live accumulator.
    #[inline]
    pub fn finish_commit(&mut self, stats: &mut RunStats) -> Option<PhaseBreakdown> {
        if !self.enabled {
            return None;
        }
        self.set(Phase::Manager); // close the open span
        let delta = self.drain_ns();
        stats.phase_ns += delta;
        Some(delta)
    }

    /// Close the attempt as aborted. Everything the attempt did outside
    /// [`Phase::Wait`] was wasted, so UsefulWork/Index/Manager/TsAlloc/
    /// Logging fold into [`Phase::Abort`] (the paper's definition: abort
    /// time = rollback + the wasted attempt). Wait stays Wait — that is
    /// what keeps DL_DETECT wait-dominated and OCC abort-dominated.
    #[inline]
    pub fn finish_abort(&mut self, stats: &mut RunStats) -> Option<PhaseBreakdown> {
        if !self.enabled {
            return None;
        }
        self.set(Phase::Abort); // close the rollback span
        let ns = self.drain_ns();
        let mut folded = PhaseBreakdown::new();
        folded.record(Phase::Wait, ns.get(Phase::Wait));
        folded.record(Phase::Abort, ns.total() - ns.get(Phase::Wait));
        stats.phase_ns += folded;
        Some(folded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_clock_records_nothing() {
        let mut c = PhaseClock::new(false);
        let mut stats = RunStats::default();
        c.start_attempt();
        c.set(Phase::Index);
        c.note_wait(1_000_000);
        c.finish_commit(&mut stats);
        assert_eq!(stats.phase_ns.total(), 0);
    }

    #[test]
    fn spans_partition_the_attempt() {
        let mut c = PhaseClock::new(true);
        let mut stats = RunStats::default();
        c.start_attempt();
        let t0 = std::time::Instant::now();
        c.set(Phase::UsefulWork);
        std::thread::sleep(std::time::Duration::from_millis(2));
        c.set(Phase::Index);
        std::thread::sleep(std::time::Duration::from_millis(1));
        c.finish_commit(&mut stats);
        let wall = t0.elapsed().as_nanos() as u64;
        let total = stats.phase_ns.total();
        assert!(stats.phase_ns.get(Phase::UsefulWork) >= 1_000_000);
        assert!(stats.phase_ns.get(Phase::Index) >= 500_000);
        // Σ phases tracks wall time within calibration error + sleep
        // overshoot slack (generous for CI).
        assert!(total <= wall * 2, "total {total} vs wall {wall}");
    }

    #[test]
    fn wait_is_deducted_from_enclosing_span() {
        let mut c = PhaseClock::new(true);
        let mut stats = RunStats::default();
        c.start_attempt();
        c.set(Phase::Manager);
        std::thread::sleep(std::time::Duration::from_millis(2));
        // Pretend the whole sleep was a park measured by record_wait.
        c.note_wait(2_000_000);
        c.finish_commit(&mut stats);
        assert!(stats.phase_ns.get(Phase::Wait) >= 2_000_000);
        // The Manager span must not also contain those 2 ms.
        assert!(
            stats.phase_ns.get(Phase::Manager) < 2_000_000,
            "wait not deducted: manager={}",
            stats.phase_ns.get(Phase::Manager)
        );
    }

    #[test]
    fn abort_folds_wasted_time_but_keeps_wait() {
        let mut c = PhaseClock::new(true);
        let mut stats = RunStats::default();
        c.start_attempt();
        c.set(Phase::UsefulWork);
        std::thread::sleep(std::time::Duration::from_millis(1));
        c.note_wait(500_000);
        c.set(Phase::Abort);
        c.finish_abort(&mut stats);
        assert_eq!(stats.phase_ns.get(Phase::UsefulWork), 0);
        assert!(stats.phase_ns.get(Phase::Abort) > 0);
        assert_eq!(stats.phase_ns.get(Phase::Wait), 500_000);
    }
}
