//! Lock-free per-worker transaction event tracing.
//!
//! Each worker owns one [`TraceRing`]: a fixed-capacity, overwrite-oldest
//! buffer of [`TraceEvent`]s. The owning worker is the only writer
//! (mirroring the single-writer contract of [`crate::waitsfor::WaitsFor`]
//! slots), so recording is wait-free: one relaxed load, one slot store,
//! one release store of the head counter. Readers ([`TraceSet::dump`])
//! run post-run, when workers are quiescent.
//!
//! Tracing is off by default ([`crate::config::TraceConfig`]); when off,
//! the [`crate::db::Database`] holds no [`TraceSet`] at all and every
//! event site reduces to an `Option` check.

use std::cell::UnsafeCell;
use std::collections::HashMap;
use std::time::Instant;

use abyss_common::Padded;
use abyss_common::{AbortReason, TxnId};
use std::sync::atomic::{AtomicU64, Ordering};

/// What happened (the trace event vocabulary).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// Transaction attempt began.
    Begin,
    /// First conflict of this attempt: the scheme blocked for the first
    /// time (emitted once per attempt, timestamped at the wait's start).
    FirstConflict,
    /// The scheme started blocking (lock queue, partition fence, MVCC
    /// prewrite, T/O value wait).
    WaitStart,
    /// The blocking wait resolved (granted, timed out, or killed — the
    /// outcome shows up as the attempt's eventual `Commit`/`Abort`).
    WaitEnd,
    /// Attempt aborted, with its cause.
    Abort(AbortReason),
    /// Attempt committed.
    Commit,
    /// The WAL serial point: the redo record was stamped `(epoch, seq)`
    /// and appended, inside the commit's exclusion window.
    WalSerialPoint {
        /// The record's commit epoch.
        epoch: u64,
        /// The record's serial within the epoch.
        seq: u64,
    },
}

/// One traced event.
#[derive(Debug, Clone, Copy)]
pub struct TraceEvent {
    /// Nanoseconds since the [`TraceSet`] was created (a single origin
    /// for all workers, so cross-worker merges sort correctly).
    pub t_ns: u64,
    /// The transaction attempt (fresh id per attempt — retries of one
    /// template are separate attempts on the same worker).
    pub txn: TxnId,
    /// What happened.
    pub kind: TraceEventKind,
}

const FILLER: TraceEvent = TraceEvent {
    t_ns: 0,
    txn: 0,
    kind: TraceEventKind::Begin,
};

/// A single worker's fixed-capacity, overwrite-oldest event ring.
pub struct TraceRing {
    slots: Box<[UnsafeCell<TraceEvent>]>,
    /// Events ever written (monotonic); `head % capacity` is the next
    /// slot. `head − capacity..head` are the retained events.
    head: AtomicU64,
}

// SAFETY: single-writer contract — only the owning worker calls
// `record`, and `dump` requires external quiescence (workers joined).
// The release store on `head` orders each slot write before the count
// that publishes it.
unsafe impl Sync for TraceRing {}

impl TraceRing {
    fn new(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let mut slots = Vec::with_capacity(cap);
        slots.resize_with(cap, || UnsafeCell::new(FILLER));
        Self {
            slots: slots.into_boxed_slice(),
            head: AtomicU64::new(0),
        }
    }

    /// Append one event, overwriting the oldest when full. Owning worker
    /// only (see the module docs).
    #[inline]
    pub fn record(&self, ev: TraceEvent) {
        let head = self.head.load(Ordering::Relaxed);
        let idx = head as usize & (self.slots.len() - 1);
        // SAFETY: single writer; no concurrent reader until quiescence.
        unsafe { *self.slots[idx].get() = ev };
        self.head.store(head + 1, Ordering::Release);
    }

    /// Events ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Events lost to overwrite.
    pub fn overwritten(&self) -> u64 {
        self.recorded().saturating_sub(self.slots.len() as u64)
    }

    /// The retained events, oldest first. Quiescent use only.
    pub fn dump(&self) -> Vec<TraceEvent> {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let start = head.saturating_sub(cap);
        (start..head)
            // SAFETY: quiescent (documented contract).
            .map(|i| unsafe { *self.slots[(i % cap) as usize].get() })
            .collect()
    }
}

impl std::fmt::Debug for TraceRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRing")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.recorded())
            .finish()
    }
}

/// One ring per worker plus the shared time origin.
#[derive(Debug)]
pub struct TraceSet {
    rings: Box<[Padded<TraceRing>]>,
    origin: Instant,
}

impl TraceSet {
    /// Rings for `workers` workers, each retaining `capacity` events
    /// (rounded up to a power of two).
    pub fn new(workers: u32, capacity: usize) -> Self {
        let mut rings = Vec::with_capacity(workers as usize);
        rings.resize_with(workers as usize, || Padded::new(TraceRing::new(capacity)));
        Self {
            rings: rings.into_boxed_slice(),
            origin: Instant::now(),
        }
    }

    /// Nanoseconds since this set's origin.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    /// `worker`'s ring.
    #[inline]
    pub fn ring(&self, worker: u32) -> &TraceRing {
        &self.rings[worker as usize]
    }

    /// Events recorded across all rings.
    pub fn total_recorded(&self) -> u64 {
        self.rings.iter().map(|r| r.recorded()).sum()
    }

    /// Events lost to overwrite across all rings.
    pub fn total_overwritten(&self) -> u64 {
        self.rings.iter().map(|r| r.overwritten()).sum()
    }

    /// Snapshot every ring. Quiescent use only (workers joined).
    pub fn dump(&self) -> TraceDump {
        TraceDump {
            workers: self
                .rings
                .iter()
                .enumerate()
                .map(|(w, r)| WorkerTrace {
                    worker: w as u32,
                    recorded: r.recorded(),
                    overwritten: r.overwritten(),
                    events: r.dump(),
                })
                .collect(),
        }
    }
}

/// One worker's retained trace.
#[derive(Debug, Clone)]
pub struct WorkerTrace {
    /// The worker id.
    pub worker: u32,
    /// Events ever recorded by this worker.
    pub recorded: u64,
    /// Events lost to ring overwrite.
    pub overwritten: u64,
    /// Retained events, oldest first.
    pub events: Vec<TraceEvent>,
}

/// How a traced attempt ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnOutcome {
    /// Committed (`wal` carries the serial point when logging was on).
    Committed {
        /// The WAL `(epoch, seq)` serial point, when logged.
        wal: Option<(u64, u64)>,
    },
    /// Aborted with this cause.
    Aborted(AbortReason),
    /// The trace window closed mid-attempt (or the begin was overwritten).
    Incomplete,
}

/// Per-attempt reconstruction from a [`TraceDump`].
#[derive(Debug, Clone, Copy)]
pub struct TxnSummary {
    /// The attempt's transaction id.
    pub txn: TxnId,
    /// The worker that executed it.
    pub worker: u32,
    /// `Begin` timestamp (None when overwritten out of the ring).
    pub begin_ns: Option<u64>,
    /// Timestamp of the attempt's last retained event.
    pub end_ns: u64,
    /// Blocking waits observed.
    pub waits: u32,
    /// Total nanoseconds spent in those waits.
    pub wait_ns: u64,
    /// How the attempt ended.
    pub outcome: TxnOutcome,
}

/// A post-run snapshot of every worker's ring, with timeline
/// reconstruction helpers.
#[derive(Debug, Clone)]
pub struct TraceDump {
    /// Per-worker traces, indexed by worker id.
    pub workers: Vec<WorkerTrace>,
}

impl TraceDump {
    /// All retained events as `(worker, event)`, sorted by timestamp —
    /// the cross-worker interleaving.
    pub fn events_sorted(&self) -> Vec<(u32, TraceEvent)> {
        let mut all: Vec<(u32, TraceEvent)> = self
            .workers
            .iter()
            .flat_map(|w| w.events.iter().map(|&e| (w.worker, e)))
            .collect();
        all.sort_by_key(|(_, e)| e.t_ns);
        all
    }

    /// The retained events of one transaction attempt, in time order.
    pub fn timeline(&self, txn: TxnId) -> Vec<TraceEvent> {
        let mut evs: Vec<TraceEvent> = self
            .workers
            .iter()
            .flat_map(|w| w.events.iter().filter(|e| e.txn == txn).copied())
            .collect();
        evs.sort_by_key(|e| e.t_ns);
        evs
    }

    /// Reconstruct every retained attempt. Within one worker the
    /// summaries are in execution order, so a run of `Aborted` summaries
    /// followed by a `Committed` one *is* that template's retry chain
    /// (each retry gets a fresh txn id on the same worker).
    pub fn txn_summaries(&self) -> Vec<TxnSummary> {
        let mut out = Vec::new();
        for w in &self.workers {
            // A worker executes attempts one at a time, so its ring is a
            // concatenation of per-attempt segments; group by txn id to
            // tolerate a truncated first segment.
            let mut order: Vec<TxnId> = Vec::new();
            let mut by_txn: HashMap<TxnId, TxnSummary> = HashMap::new();
            // Wait starts not yet matched by an end, per txn — a WaitEnd
            // whose start was overwritten out of the ring is dropped
            // rather than corrupting the wait total.
            let mut open: HashMap<TxnId, Vec<u64>> = HashMap::new();
            for e in &w.events {
                let s = by_txn.entry(e.txn).or_insert_with(|| {
                    order.push(e.txn);
                    TxnSummary {
                        txn: e.txn,
                        worker: w.worker,
                        begin_ns: None,
                        end_ns: e.t_ns,
                        waits: 0,
                        wait_ns: 0,
                        outcome: TxnOutcome::Incomplete,
                    }
                });
                s.end_ns = s.end_ns.max(e.t_ns);
                match e.kind {
                    TraceEventKind::Begin => s.begin_ns = Some(e.t_ns),
                    TraceEventKind::WaitStart => {
                        s.waits += 1;
                        open.entry(e.txn).or_default().push(e.t_ns);
                    }
                    TraceEventKind::WaitEnd => {
                        if let Some(start) = open.get_mut(&e.txn).and_then(Vec::pop) {
                            s.wait_ns += e.t_ns.saturating_sub(start);
                        }
                    }
                    TraceEventKind::Commit => {
                        let wal = match s.outcome {
                            TxnOutcome::Committed { wal } => wal,
                            _ => None,
                        };
                        s.outcome = TxnOutcome::Committed { wal };
                    }
                    TraceEventKind::WalSerialPoint { epoch, seq } => {
                        s.outcome = TxnOutcome::Committed {
                            wal: Some((epoch, seq)),
                        };
                    }
                    TraceEventKind::Abort(r) => s.outcome = TxnOutcome::Aborted(r),
                    TraceEventKind::FirstConflict => {}
                }
            }
            out.extend(order.into_iter().map(|t| by_txn[&t]));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t_ns: u64, txn: TxnId, kind: TraceEventKind) -> TraceEvent {
        TraceEvent { t_ns, txn, kind }
    }

    #[test]
    fn ring_retains_newest_in_order_after_wraparound() {
        let ring = TraceRing::new(8);
        for i in 0..20u64 {
            ring.record(ev(i, i, TraceEventKind::Begin));
        }
        assert_eq!(ring.recorded(), 20);
        assert_eq!(ring.overwritten(), 12);
        let events = ring.dump();
        assert_eq!(events.len(), 8);
        // Overwrite-oldest: exactly the last 8 events, oldest first.
        let got: Vec<u64> = events.iter().map(|e| e.t_ns).collect();
        assert_eq!(got, (12..20).collect::<Vec<u64>>());
    }

    #[test]
    fn ring_below_capacity_returns_everything() {
        let ring = TraceRing::new(8);
        ring.record(ev(5, 1, TraceEventKind::Begin));
        ring.record(ev(9, 1, TraceEventKind::Commit));
        assert_eq!(ring.overwritten(), 0);
        let events = ring.dump();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].t_ns, 5);
        assert_eq!(events[1].t_ns, 9);
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        let ring = TraceRing::new(5);
        for i in 0..8u64 {
            ring.record(ev(i, i, TraceEventKind::Begin));
        }
        assert_eq!(ring.overwritten(), 0, "5 rounds up to 8 slots");
    }

    #[test]
    fn summaries_reconstruct_waits_and_outcomes() {
        let set = TraceSet::new(1, 64);
        let r = set.ring(0);
        // Attempt 1: begins, waits 30 ns, aborts.
        r.record(ev(10, 1, TraceEventKind::Begin));
        r.record(ev(20, 1, TraceEventKind::FirstConflict));
        r.record(ev(20, 1, TraceEventKind::WaitStart));
        r.record(ev(50, 1, TraceEventKind::WaitEnd));
        r.record(ev(55, 1, TraceEventKind::Abort(AbortReason::Deadlock)));
        // Attempt 2 (the retry): commits with a WAL serial point.
        r.record(ev(60, 2, TraceEventKind::Begin));
        r.record(ev(
            70,
            2,
            TraceEventKind::WalSerialPoint { epoch: 3, seq: 9 },
        ));
        r.record(ev(72, 2, TraceEventKind::Commit));
        let dump = set.dump();
        let s = dump.txn_summaries();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].txn, 1);
        assert_eq!(s[0].begin_ns, Some(10));
        assert_eq!(s[0].waits, 1);
        assert_eq!(s[0].wait_ns, 30);
        assert_eq!(s[0].end_ns, 55);
        assert_eq!(s[0].outcome, TxnOutcome::Aborted(AbortReason::Deadlock));
        assert_eq!(s[1].outcome, TxnOutcome::Committed { wal: Some((3, 9)) });
        assert_eq!(dump.timeline(1).len(), 5);
        assert_eq!(dump.events_sorted().len(), 8);
    }

    #[test]
    fn truncated_attempt_is_incomplete() {
        let set = TraceSet::new(1, 2);
        let r = set.ring(0);
        r.record(ev(10, 1, TraceEventKind::Begin));
        r.record(ev(20, 1, TraceEventKind::WaitStart));
        r.record(ev(30, 1, TraceEventKind::WaitEnd));
        // Begin fell out of the 2-slot ring.
        let s = set.dump().txn_summaries();
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].begin_ns, None);
        assert_eq!(s[0].outcome, TxnOutcome::Incomplete);
    }

    #[test]
    fn rings_are_readable_across_threads_when_quiescent() {
        let set = std::sync::Arc::new(TraceSet::new(2, 16));
        let s2 = std::sync::Arc::clone(&set);
        std::thread::spawn(move || {
            s2.ring(1).record(ev(1, 7, TraceEventKind::Begin));
            s2.ring(1).record(ev(2, 7, TraceEventKind::Commit));
        })
        .join()
        .unwrap();
        assert_eq!(set.total_recorded(), 2);
        assert_eq!(set.dump().timeline(7).len(), 2);
    }
}
