//! The live metrics registry: a pull-model snapshot of the engine's
//! gauges and counters, serializable to JSON and to the Prometheus text
//! exposition format.
//!
//! [`crate::db::Database::metrics_snapshot`] assembles one from shared
//! state (epoch watermarks, WAL counters, the waits-for graph, index
//! health, the process-wide mempool gauge) — it never touches per-worker
//! state, so it can be scraped while a run is in flight. After a run,
//! [`MetricsSnapshot::with_run_stats`] attaches the merged per-worker
//! data (commit/abort latency histograms, the phase breakdown) so the
//! exporters can serve the full picture.

use abyss_common::{LatencyHisto, Phase, PhaseBreakdown, Priority, RunStats};

/// Per-table index gauges (one entry per catalog table).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableMetrics {
    /// Catalog table name.
    pub name: String,
    /// Live keys in the hash index.
    pub live_keys: u64,
    /// Row slots allocated in the arena (≥ live keys; aborted eager
    /// inserts leave unreachable slots).
    pub row_slots: u64,
    /// Longest hash-bucket chain (load-factor health).
    pub hash_max_chain: u64,
    /// B+-tree node count, when the table carries an ordered index.
    pub btree_nodes: Option<u64>,
    /// B+-tree height, when ordered.
    pub btree_height: Option<u64>,
}

/// A point-in-time snapshot of the engine's observable state.
///
/// Gauges (epoch lag, WAL backlog, waits-for edges, mempool blocks) are
/// instantaneous and racy by nature; counters (log records/flushes) are
/// cumulative since the database opened.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// The paper-style scheme name (`DL_DETECT`, `SILO`, ...).
    pub scheme: &'static str,
    /// Configured worker threads.
    pub workers: u32,
    /// The global epoch counter.
    pub current_epoch: u64,
    /// The quiescence horizon: every worker has observed this epoch.
    pub safe_epoch: u64,
    /// `current_epoch − safe_epoch` — how far stragglers lag the ticker.
    pub epoch_lag: u64,
    /// The durable-epoch watermark (`None` when logging is off).
    pub durable_epoch: Option<u64>,
    /// `current_epoch − durable_epoch` — the group-commit acknowledgement
    /// lag, live (0 when logging is off).
    pub durable_epoch_lag: u64,
    /// Bytes buffered in WAL shards awaiting the next flush.
    pub wal_backlog_bytes: u64,
    /// WAL commit records appended since open.
    pub log_records: u64,
    /// WAL bytes appended since open.
    pub log_bytes: u64,
    /// WAL buffer drains to the OS since open.
    pub log_flushes: u64,
    /// WAL fsync calls since open.
    pub log_fsyncs: u64,
    /// A WAL write/sync failed; the durable epoch is frozen.
    pub wal_failed: bool,
    /// Wait-for edges currently published in the waits-for graph.
    pub waitsfor_edges: u64,
    /// Process-wide mempool blocks alive (cached or borrowed).
    pub mempool_live_blocks: u64,
    /// Trace events recorded across all rings (0 when tracing is off).
    pub trace_events: u64,
    /// Trace events lost to ring overwrite.
    pub trace_dropped: u64,
    /// Live per-phase attempt-time totals in nanoseconds (`None` when
    /// breakdown accounting is off).
    pub phase_ns: Option<PhaseBreakdown>,
    /// Commit-latency histogram, attached by
    /// [`MetricsSnapshot::with_run_stats`] (`None` on a bare snapshot).
    pub commit_latency: Option<LatencyHisto>,
    /// Abort-latency histogram, attached like
    /// [`MetricsSnapshot::commit_latency`].
    pub abort_latency: Option<LatencyHisto>,
    /// Queue-to-ack latency per priority class (submit → ticket
    /// resolution), attached by [`MetricsSnapshot::with_run_stats`] from a
    /// serving-layer run (`None` on bare snapshots and closed-loop runs).
    pub queue_ack_latency: Option<[LatencyHisto; Priority::COUNT]>,
    /// Requests shed at admission by the serving layer, per priority class
    /// (indexed by [`Priority::idx`]; all zero outside serving runs).
    pub sheds: [u64; Priority::COUNT],
    /// Adaptive-backoff delays executed, attached by
    /// [`MetricsSnapshot::with_run_stats`] (0 on bare snapshots and on
    /// runs using the fixed schedule).
    pub backoffs: u64,
    /// Total nanoseconds workers spent in adaptive backoff delays.
    pub backoff_ns: u64,
    /// Peak AIMD controller delay any worker chose during the run (ns) —
    /// a gauge of how contended the run got.
    pub backoff_delay_ns: u64,
    /// Per-table index gauges.
    pub tables: Vec<TableMetrics>,
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

impl MetricsSnapshot {
    /// Attach a finished run's merged per-worker data: the commit/abort
    /// latency histograms (exported as Prometheus histogram series) and,
    /// when the run accounted phases, its phase breakdown (overriding the
    /// live gauge totals with the run's warmup-reset view).
    pub fn with_run_stats(mut self, stats: &RunStats) -> Self {
        self.commit_latency = Some(stats.commit_latency.clone());
        self.abort_latency = Some(stats.abort_latency.clone());
        if stats.phase_ns.total() > 0 {
            self.phase_ns = Some(stats.phase_ns);
        }
        if stats.queue_ack_latency.iter().any(|h| h.count() > 0) {
            self.queue_ack_latency = Some(stats.queue_ack_latency.clone());
        }
        self.sheds = stats.sheds;
        self.backoffs = stats.backoffs;
        self.backoff_ns = stats.backoff_ns;
        self.backoff_delay_ns = stats.backoff_delay_ns;
        self
    }

    /// Serialize as a JSON object (hand-rolled, like the bench exports —
    /// the repo carries no serde).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str(&format!("  \"scheme\": \"{}\",\n", self.scheme));
        out.push_str(&format!("  \"workers\": {},\n", self.workers));
        out.push_str(&format!("  \"current_epoch\": {},\n", self.current_epoch));
        out.push_str(&format!("  \"safe_epoch\": {},\n", self.safe_epoch));
        out.push_str(&format!("  \"epoch_lag\": {},\n", self.epoch_lag));
        match self.durable_epoch {
            Some(e) => out.push_str(&format!("  \"durable_epoch\": {e},\n")),
            None => out.push_str("  \"durable_epoch\": null,\n"),
        }
        out.push_str(&format!(
            "  \"durable_epoch_lag\": {},\n",
            self.durable_epoch_lag
        ));
        out.push_str(&format!(
            "  \"wal_backlog_bytes\": {},\n",
            self.wal_backlog_bytes
        ));
        out.push_str(&format!("  \"log_records\": {},\n", self.log_records));
        out.push_str(&format!("  \"log_bytes\": {},\n", self.log_bytes));
        out.push_str(&format!("  \"log_flushes\": {},\n", self.log_flushes));
        out.push_str(&format!("  \"log_fsyncs\": {},\n", self.log_fsyncs));
        out.push_str(&format!("  \"wal_failed\": {},\n", self.wal_failed));
        out.push_str(&format!("  \"waitsfor_edges\": {},\n", self.waitsfor_edges));
        out.push_str(&format!(
            "  \"mempool_live_blocks\": {},\n",
            self.mempool_live_blocks
        ));
        out.push_str(&format!("  \"trace_events\": {},\n", self.trace_events));
        out.push_str(&format!("  \"trace_dropped\": {},\n", self.trace_dropped));
        match &self.phase_ns {
            Some(p) => {
                out.push_str("  \"phase_ns\": {");
                for (i, ph) in Phase::ALL.into_iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&format!("\"{}\": {}", ph.key(), p.get(ph)));
                }
                out.push_str("},\n");
            }
            None => out.push_str("  \"phase_ns\": null,\n"),
        }
        for (key, h) in [
            ("commit_latency", &self.commit_latency),
            ("abort_latency", &self.abort_latency),
        ] {
            match h {
                Some(h) => out.push_str(&format!("  \"{key}\": {},\n", Self::latency_json(h))),
                None => out.push_str(&format!("  \"{key}\": null,\n")),
            }
        }
        match &self.queue_ack_latency {
            Some(qs) => {
                out.push_str("  \"queue_ack_latency\": {");
                for (i, p) in Priority::ALL.into_iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&format!(
                        "\"{}\": {}",
                        p.key(),
                        Self::latency_json(&qs[p.idx()])
                    ));
                }
                out.push_str("},\n");
            }
            None => out.push_str("  \"queue_ack_latency\": null,\n"),
        }
        out.push_str("  \"sheds\": {");
        for (i, p) in Priority::ALL.into_iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": {}", p.key(), self.sheds[p.idx()]));
        }
        out.push_str("},\n");
        out.push_str(&format!("  \"backoffs\": {},\n", self.backoffs));
        out.push_str(&format!("  \"backoff_ns\": {},\n", self.backoff_ns));
        out.push_str(&format!(
            "  \"backoff_delay_ns\": {},\n",
            self.backoff_delay_ns
        ));
        out.push_str("  \"tables\": [");
        for (i, t) in self.tables.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"name\": \"{}\", \"live_keys\": {}, \"row_slots\": {}, \"hash_max_chain\": {}, \"btree_nodes\": {}, \"btree_height\": {}}}",
                json_escape(&t.name),
                t.live_keys,
                t.row_slots,
                t.hash_max_chain,
                t.btree_nodes.map_or("null".into(), |n| n.to_string()),
                t.btree_height.map_or("null".into(), |n| n.to_string()),
            ));
        }
        if !self.tables.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Serialize in the Prometheus text exposition format (version 0.0.4:
    /// `# HELP` / `# TYPE` comment lines, one `name{labels} value` sample
    /// per line) — what a `/metrics` endpoint would serve.
    pub fn to_prometheus(&self) -> String {
        let scheme = &[("scheme", self.scheme.to_string())][..];
        let mut out = String::with_capacity(2048);
        let mut gauge = |name: &str, help: &str, labels: &[(&str, String)], v: u64| {
            out.push_str(&format!("# HELP abyss_{name} {help}\n"));
            out.push_str(&format!("# TYPE abyss_{name} gauge\n"));
            Self::sample(&mut out, name, labels, v);
        };
        gauge(
            "workers",
            "Configured worker threads.",
            scheme,
            self.workers as u64,
        );
        gauge(
            "epoch_current",
            "The global epoch counter.",
            &[],
            self.current_epoch,
        );
        gauge(
            "epoch_safe",
            "Quiescence horizon epoch.",
            &[],
            self.safe_epoch,
        );
        gauge(
            "epoch_lag",
            "current_epoch - safe_epoch.",
            &[],
            self.epoch_lag,
        );
        if let Some(e) = self.durable_epoch {
            gauge("epoch_durable", "Durable-epoch watermark.", &[], e);
            gauge(
                "epoch_durable_lag",
                "current_epoch - durable_epoch (group-commit ack lag).",
                &[],
                self.durable_epoch_lag,
            );
        }
        gauge(
            "wal_backlog_bytes",
            "Bytes buffered in WAL shards awaiting flush.",
            &[],
            self.wal_backlog_bytes,
        );
        gauge(
            "wal_failed",
            "1 if a WAL write/sync failed (durable epoch frozen).",
            &[],
            self.wal_failed as u64,
        );
        gauge(
            "waitsfor_edges",
            "Wait-for edges currently published.",
            &[],
            self.waitsfor_edges,
        );
        gauge(
            "mempool_live_blocks",
            "Pool blocks alive process-wide.",
            &[],
            self.mempool_live_blocks,
        );
        gauge(
            "trace_events",
            "Trace events recorded across worker rings.",
            &[],
            self.trace_events,
        );
        gauge(
            "trace_dropped",
            "Trace events lost to ring overwrite.",
            &[],
            self.trace_dropped,
        );
        gauge(
            "backoff_delay_ns",
            "Peak adaptive-backoff delay any worker chose (ns).",
            &[],
            self.backoff_delay_ns,
        );
        let mut counter = |name: &str, help: &str, v: u64| {
            out.push_str(&format!("# HELP abyss_{name} {help}\n"));
            out.push_str(&format!("# TYPE abyss_{name} counter\n"));
            Self::sample(&mut out, name, &[], v);
        };
        counter(
            "wal_records_total",
            "WAL commit records appended.",
            self.log_records,
        );
        counter("wal_bytes_total", "WAL bytes appended.", self.log_bytes);
        counter(
            "wal_flushes_total",
            "WAL buffer drains to the OS.",
            self.log_flushes,
        );
        counter("wal_fsyncs_total", "WAL fsync calls.", self.log_fsyncs);
        counter(
            "backoffs_total",
            "Adaptive-backoff delays executed by workers.",
            self.backoffs,
        );
        counter(
            "backoff_ns_total",
            "Nanoseconds workers spent in adaptive backoff delays.",
            self.backoff_ns,
        );
        out.push_str("# HELP abyss_shed_total Requests shed at admission by the serving layer.\n");
        out.push_str("# TYPE abyss_shed_total counter\n");
        for pr in Priority::ALL {
            Self::sample(
                &mut out,
                "shed_total",
                &[("priority", pr.key().to_string())],
                self.sheds[pr.idx()],
            );
        }
        if let Some(p) = &self.phase_ns {
            out.push_str(
                "# HELP abyss_phase_ns_total Attempt time attributed to each phase (ns).\n",
            );
            out.push_str("# TYPE abyss_phase_ns_total counter\n");
            for ph in Phase::ALL {
                Self::sample(
                    &mut out,
                    "phase_ns_total",
                    &[("phase", ph.key().to_string())],
                    p.get(ph),
                );
            }
        }
        for (name, help, h) in [
            (
                "commit_latency_ns",
                "Latency of committed attempts, begin to commit ack (ns).",
                &self.commit_latency,
            ),
            (
                "abort_latency_ns",
                "Latency of aborted attempts, begin to abort (ns).",
                &self.abort_latency,
            ),
        ] {
            if let Some(h) = h {
                Self::histogram(&mut out, name, help, &[(&[][..], h)]);
            }
        }
        if let Some(qs) = &self.queue_ack_latency {
            let labels: Vec<Vec<(&str, String)>> = Priority::ALL
                .iter()
                .map(|p| vec![("priority", p.key().to_string())])
                .collect();
            let series: Vec<(&[(&str, String)], &LatencyHisto)> = Priority::ALL
                .iter()
                .enumerate()
                .map(|(i, p)| (&labels[i][..], &qs[p.idx()]))
                .collect();
            Self::histogram(
                &mut out,
                "queue_ack_latency_ns",
                "Queue-to-ack latency of served requests, submit to ticket resolution (ns).",
                &series,
            );
        }
        for (name, help, get) in [
            (
                "table_live_keys",
                "Live keys in the hash index.",
                (|t: &TableMetrics| Some(t.live_keys)) as fn(&TableMetrics) -> Option<u64>,
            ),
            (
                "table_row_slots",
                "Row slots allocated in the arena.",
                |t| Some(t.row_slots),
            ),
            ("table_hash_max_chain", "Longest hash-bucket chain.", |t| {
                Some(t.hash_max_chain)
            }),
            ("table_btree_nodes", "B+-tree nodes allocated.", |t| {
                t.btree_nodes
            }),
            ("table_btree_height", "B+-tree height.", |t| t.btree_height),
        ] {
            if self.tables.iter().all(|t| get(t).is_none()) {
                continue;
            }
            out.push_str(&format!("# HELP abyss_{name} {help}\n"));
            out.push_str(&format!("# TYPE abyss_{name} gauge\n"));
            for t in &self.tables {
                if let Some(v) = get(t) {
                    Self::sample(&mut out, name, &[("table", t.name.clone())], v);
                }
            }
        }
        out
    }

    /// One latency histogram as a compact JSON summary object. A
    /// saturated sum is reported as `null` (plus the `sum_saturated`
    /// flag) — never as the clamped value, which would corrupt rate math
    /// downstream.
    fn latency_json(h: &LatencyHisto) -> String {
        let sum = if h.sum_saturated() {
            "null".to_string()
        } else {
            h.sum().to_string()
        };
        format!(
            "{{\"count\": {}, \"sum\": {}, \"sum_saturated\": {}, \"p50\": {}, \"p99\": {}, \"p999\": {}, \"max\": {}}}",
            h.count(),
            sum,
            h.sum_saturated(),
            h.p50(),
            h.p99(),
            h.p999(),
            h.max(),
        )
    }

    /// Emit one full Prometheus histogram family, one series per
    /// `(labels, histogram)` entry: cumulative `_bucket{le="..."}` lines
    /// (upper bounds from the log-linear buckets), the mandatory
    /// `le="+Inf"` bucket, `_sum`, `_count`. A saturated sum is *omitted*
    /// and replaced with a `{name}_sum_saturated 1` marker sample —
    /// `_bucket`/`_count` stay exact past saturation, only `_sum` lies.
    fn histogram(
        out: &mut String,
        name: &str,
        help: &str,
        series: &[(&[(&str, String)], &LatencyHisto)],
    ) {
        out.push_str(&format!("# HELP abyss_{name} {help}\n"));
        out.push_str(&format!("# TYPE abyss_{name} histogram\n"));
        let bucket = format!("{name}_bucket");
        for (labels, h) in series {
            let mut with_le: Vec<(&str, String)> = labels.to_vec();
            with_le.push(("le", String::new()));
            for (le, cum) in h.iter_cumulative() {
                with_le.last_mut().unwrap().1 = le.to_string();
                Self::sample(out, &bucket, &with_le, cum);
            }
            with_le.last_mut().unwrap().1 = "+Inf".to_string();
            Self::sample(out, &bucket, &with_le, h.count());
            if h.sum_saturated() {
                Self::sample(out, &format!("{name}_sum_saturated"), labels, 1);
            } else {
                Self::sample(out, &format!("{name}_sum"), labels, h.sum());
            }
            Self::sample(out, &format!("{name}_count"), labels, h.count());
        }
    }

    fn sample(out: &mut String, name: &str, labels: &[(&str, String)], v: u64) {
        out.push_str("abyss_");
        out.push_str(name);
        if !labels.is_empty() {
            out.push('{');
            for (i, (k, val)) in labels.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{k}=\"{}\"", json_escape(val)));
            }
            out.push('}');
        }
        out.push_str(&format!(" {v}\n"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap() -> MetricsSnapshot {
        MetricsSnapshot {
            scheme: "NO_WAIT",
            workers: 4,
            current_epoch: 12,
            safe_epoch: 11,
            epoch_lag: 1,
            durable_epoch: Some(10),
            durable_epoch_lag: 2,
            wal_backlog_bytes: 512,
            log_records: 1000,
            log_bytes: 65536,
            log_flushes: 9,
            log_fsyncs: 3,
            wal_failed: false,
            waitsfor_edges: 0,
            mempool_live_blocks: 128,
            trace_events: 42,
            trace_dropped: 0,
            phase_ns: None,
            commit_latency: None,
            abort_latency: None,
            queue_ack_latency: None,
            sheds: [0; Priority::COUNT],
            backoffs: 0,
            backoff_ns: 0,
            backoff_delay_ns: 0,
            tables: vec![TableMetrics {
                name: "usertable".into(),
                live_keys: 100,
                row_slots: 101,
                hash_max_chain: 3,
                btree_nodes: Some(7),
                btree_height: Some(2),
            }],
        }
    }

    #[test]
    fn json_has_every_field_and_balances() {
        let j = snap().to_json();
        for key in [
            "\"scheme\": \"NO_WAIT\"",
            "\"durable_epoch\": 10",
            "\"durable_epoch_lag\": 2",
            "\"wal_backlog_bytes\": 512",
            "\"log_flushes\": 9",
            "\"log_fsyncs\": 3",
            "\"mempool_live_blocks\": 128",
            "\"btree_nodes\": 7",
            "\"name\": \"usertable\"",
        ] {
            assert!(j.contains(key), "missing {key} in\n{j}");
        }
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn json_renders_null_without_logging() {
        let mut s = snap();
        s.durable_epoch = None;
        assert!(s.to_json().contains("\"durable_epoch\": null"));
    }

    #[test]
    fn prometheus_format_is_well_formed() {
        let p = snap().to_prometheus();
        for line in p.lines() {
            assert!(
                line.starts_with("# HELP abyss_")
                    || line.starts_with("# TYPE abyss_")
                    || line.starts_with("abyss_"),
                "stray line: {line}"
            );
        }
        // Every sample line ends in a numeric value.
        for line in p.lines().filter(|l| !l.starts_with('#')) {
            let val = line.rsplit(' ').next().unwrap();
            val.parse::<u64>()
                .unwrap_or_else(|_| panic!("bad sample: {line}"));
        }
        assert!(p.contains("abyss_workers{scheme=\"NO_WAIT\"} 4"));
        assert!(p.contains("abyss_epoch_durable_lag 2"));
        assert!(p.contains("abyss_wal_fsyncs_total 3"));
        assert!(p.contains("abyss_table_btree_nodes{table=\"usertable\"} 7"));
        // TYPE comments precede their samples.
        let type_idx = p.find("# TYPE abyss_epoch_current").unwrap();
        let sample_idx = p.find("\nabyss_epoch_current ").unwrap();
        assert!(type_idx < sample_idx);
    }

    #[test]
    fn json_renders_phase_and_latency_blocks() {
        let mut stats = RunStats::default();
        stats.phase_ns.record(Phase::Wait, 30);
        stats.phase_ns.record(Phase::UsefulWork, 70);
        stats.commit_latency.record(1_000);
        stats.abort_latency.record(500);
        let j = snap().with_run_stats(&stats).to_json();
        for key in [
            "\"phase_ns\": {",
            "\"wait\": 30",
            "\"useful\": 70",
            "\"commit_latency\": {\"count\": 1,",
            "\"abort_latency\": {\"count\": 1,",
        ] {
            assert!(j.contains(key), "missing {key} in\n{j}");
        }
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        // A bare snapshot renders the same keys as nulls.
        let bare = snap().to_json();
        assert!(bare.contains("\"phase_ns\": null"));
        assert!(bare.contains("\"commit_latency\": null"));
    }

    #[test]
    fn prometheus_histograms_are_well_formed() {
        let mut stats = RunStats::default();
        for v in [100u64, 100, 2_000, 150_000] {
            stats.commit_latency.record(v);
        }
        stats.abort_latency.record(77);
        stats.phase_ns.record(Phase::Manager, 9);
        let p = snap().with_run_stats(&stats).to_prometheus();
        assert!(p.contains("# TYPE abyss_commit_latency_ns histogram"));
        assert!(p.contains("# TYPE abyss_abort_latency_ns histogram"));
        assert!(p.contains("abyss_phase_ns_total{phase=\"manager\"} 9"));
        // Bucket series: cumulative, capped by the +Inf bucket = count.
        let bucket_lines: Vec<&str> = p
            .lines()
            .filter(|l| l.starts_with("abyss_commit_latency_ns_bucket"))
            .collect();
        assert!(bucket_lines.len() >= 2, "need le buckets + +Inf:\n{p}");
        let counts: Vec<u64> = bucket_lines
            .iter()
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]));
        assert!(bucket_lines.last().unwrap().contains("le=\"+Inf\""));
        assert_eq!(*counts.last().unwrap(), 4);
        assert!(p.contains("abyss_commit_latency_ns_count 4"));
        assert!(p.contains(&format!(
            "abyss_commit_latency_ns_sum {}",
            stats.commit_latency.sum()
        )));
        // The well-formedness contract of the base exporter still holds.
        for line in p.lines() {
            assert!(
                line.starts_with("# HELP abyss_")
                    || line.starts_with("# TYPE abyss_")
                    || line.starts_with("abyss_"),
                "stray line: {line}"
            );
        }
        for line in p.lines().filter(|l| !l.starts_with('#')) {
            let val = line.rsplit(' ').next().unwrap();
            val.parse::<u64>()
                .unwrap_or_else(|_| panic!("bad sample: {line}"));
        }
    }

    #[test]
    fn serving_metrics_export_per_priority() {
        let mut stats = RunStats::default();
        stats.sheds[Priority::High.idx()] = 2;
        stats.sheds[Priority::Low.idx()] = 40;
        for v in [1_000u64, 2_000, 3_000] {
            stats.queue_ack_latency[Priority::High.idx()].record(v);
        }
        stats.queue_ack_latency[Priority::Low.idx()].record(90_000);
        let s = snap().with_run_stats(&stats);
        let j = s.to_json();
        for key in [
            "\"sheds\": {\"high\": 2, \"low\": 40}",
            "\"queue_ack_latency\": {\"high\": {\"count\": 3,",
            "\"low\": {\"count\": 1,",
        ] {
            assert!(j.contains(key), "missing {key} in\n{j}");
        }
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        let p = s.to_prometheus();
        assert!(p.contains("# TYPE abyss_queue_ack_latency_ns histogram"));
        assert!(p.contains("abyss_shed_total{priority=\"high\"} 2"));
        assert!(p.contains("abyss_shed_total{priority=\"low\"} 40"));
        assert!(p.contains("abyss_queue_ack_latency_ns_count{priority=\"high\"} 3"));
        assert!(p.contains("abyss_queue_ack_latency_ns_count{priority=\"low\"} 1"));
        assert!(p.contains("abyss_queue_ack_latency_ns_bucket{priority=\"low\",le=\"+Inf\"} 1"));
        // One HELP/TYPE header for the whole family, not one per series.
        assert_eq!(
            p.matches("# TYPE abyss_queue_ack_latency_ns histogram")
                .count(),
            1
        );
        // Bare snapshots render the shed counters (zeros) and a null block.
        let bare = snap();
        assert!(bare.to_json().contains("\"queue_ack_latency\": null"));
        assert!(bare
            .to_json()
            .contains("\"sheds\": {\"high\": 0, \"low\": 0}"));
        assert!(bare
            .to_prometheus()
            .contains("abyss_shed_total{priority=\"high\"} 0"));
    }

    #[test]
    fn backoff_counters_export_in_both_formats() {
        let stats = RunStats {
            backoffs: 12,
            backoff_ns: 34_000,
            backoff_delay_ns: 2_000_000,
            ..Default::default()
        };
        let s = snap().with_run_stats(&stats);
        let j = s.to_json();
        for key in [
            "\"backoffs\": 12",
            "\"backoff_ns\": 34000",
            "\"backoff_delay_ns\": 2000000",
        ] {
            assert!(j.contains(key), "missing {key} in\n{j}");
        }
        let p = s.to_prometheus();
        assert!(p.contains("abyss_backoffs_total 12"));
        assert!(p.contains("abyss_backoff_ns_total 34000"));
        assert!(p.contains("abyss_backoff_delay_ns 2000000"));
        // Bare snapshots render zeros, not missing keys.
        let bare = snap().to_json();
        assert!(bare.contains("\"backoffs\": 0"));
    }

    #[test]
    fn saturated_sum_is_marked_not_exported() {
        let mut stats = RunStats::default();
        stats.commit_latency.record(u64::MAX);
        stats.commit_latency.record(u64::MAX);
        assert!(stats.commit_latency.sum_saturated());
        stats.abort_latency.record(500);
        let s = snap().with_run_stats(&stats);
        let j = s.to_json();
        assert!(
            j.contains("\"commit_latency\": {\"count\": 2, \"sum\": null, \"sum_saturated\": true"),
            "saturated sum must render as null:\n{j}"
        );
        assert!(
            j.contains("\"abort_latency\": {\"count\": 1, \"sum\": 500, \"sum_saturated\": false")
        );
        let p = s.to_prometheus();
        assert!(
            !p.contains("abyss_commit_latency_ns_sum "),
            "saturated _sum must be omitted:\n{p}"
        );
        assert!(p.contains("abyss_commit_latency_ns_sum_saturated 1"));
        assert!(p.contains("abyss_commit_latency_ns_count 2"));
        // The unsaturated family is untouched.
        assert!(p.contains("abyss_abort_latency_ns_sum 500"));
        assert!(!p.contains("abyss_abort_latency_ns_sum_saturated"));
    }

    #[test]
    fn prometheus_omits_durable_epoch_without_logging() {
        let mut s = snap();
        s.durable_epoch = None;
        let p = s.to_prometheus();
        assert!(!p.contains("abyss_epoch_durable"));
        // Counters remain (zeros are valid counter samples).
        assert!(p.contains("abyss_wal_records_total"));
    }
}
