//! Engine observability: per-worker transaction event tracing and the
//! live metrics snapshot.
//!
//! Three instruments, three costs:
//!
//! * **Latency histograms** ([`abyss_common::LatencyHisto`], recorded by
//!   the generic worker path in [`crate::worker`]) — always on; a few
//!   bit operations per attempt.
//! * **Event tracing** ([`trace`]) — off by default; when enabled via
//!   [`crate::config::TraceConfig`], each worker appends txn lifecycle
//!   events to a private fixed-capacity ring (overwrite-oldest). Disabled
//!   tracing costs one `Option` check per event site.
//! * **Metrics snapshot** ([`metrics`]) — pull-only; reading the gauges
//!   touches shared counters but never the worker hot path.

pub mod metrics;
pub mod trace;

pub use metrics::{MetricsSnapshot, TableMetrics};
pub use trace::{TraceDump, TraceEvent, TraceEventKind, TraceSet, TxnOutcome, TxnSummary};
