//! Engine observability: per-worker transaction event tracing, per-phase
//! time accounting, and the live metrics snapshot.
//!
//! Four instruments, four costs:
//!
//! * **Latency histograms** ([`abyss_common::LatencyHisto`], recorded by
//!   the generic worker path in [`crate::worker`]) — always on; a few
//!   bit operations per attempt.
//! * **Event tracing** ([`trace`]) — off by default; when enabled via
//!   [`crate::config::TraceConfig`], each worker appends txn lifecycle
//!   events to a private fixed-capacity ring (overwrite-oldest). Disabled
//!   tracing costs one `Option` check per event site.
//! * **Phase breakdown** ([`breakdown`]) — off by default; when enabled
//!   via `EngineConfig::breakdown`, each worker attributes every
//!   nanosecond of an attempt to one of the paper's §3.2 phases with a
//!   TSC-based stopwatch. Disabled accounting costs one branch per
//!   transition site.
//! * **Metrics snapshot** ([`metrics`]) — pull-only; reading the gauges
//!   touches shared counters but never the worker hot path.

pub mod breakdown;
pub mod metrics;
pub mod trace;

pub use breakdown::PhaseClock;
pub use metrics::{MetricsSnapshot, TableMetrics};
pub use trace::{TraceDump, TraceEvent, TraceEventKind, TraceSet, TxnOutcome, TxnSummary};
