//! Per-thread worker contexts: the public transaction API, scheme
//! dispatch, and the multi-threaded benchmark driver.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use abyss_common::{AbortReason, CcScheme, DbError, Key, PartId, RunStats, TableId, Ts};
use abyss_storage::{MemPool, Schema};

use crate::db::Database;
use crate::schemes::{hstore, mvcc, occ, silo, timestamp, twopl, ReadRef, SchemeEnv};
use crate::ts::TsHandle;
use crate::txn::{make_txn_id, TxnState};

/// Errors surfaced by the transaction API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnError {
    /// The transaction must abort (possibly retryable).
    Abort(AbortReason),
    /// A non-transactional error (missing key, bad schema, ...).
    Db(DbError),
}

impl From<AbortReason> for TxnError {
    fn from(r: AbortReason) -> Self {
        TxnError::Abort(r)
    }
}

impl From<DbError> for TxnError {
    fn from(e: DbError) -> Self {
        TxnError::Db(e)
    }
}

impl std::fmt::Display for TxnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TxnError::Abort(r) => write!(f, "transaction aborted: {r}"),
            TxnError::Db(e) => write!(f, "database error: {e}"),
        }
    }
}

impl std::error::Error for TxnError {}

/// A per-thread execution context. Create one per worker thread with
/// [`Database::worker`]; it is `Send` but not `Sync` (one thread at a
/// time), mirroring the paper's one-worker-per-core model.
pub struct WorkerCtx {
    pub(crate) db: Arc<Database>,
    pub(crate) worker: u32,
    pub(crate) ts_handle: TsHandle,
    pub(crate) seq: u64,
    pub(crate) pool: MemPool,
    pub(crate) st: TxnState,
    /// Per-worker statistics (commits/aborts recorded by the driver; wait
    /// time recorded by the schemes).
    pub stats: RunStats,
    in_txn: bool,
    /// Cheap xorshift state for abort backoff jitter.
    jitter: u64,
    /// Consecutive scheduler aborts of the current template (drives the
    /// exponential abort penalty; reset on commit).
    consec_aborts: u32,
    /// SILO: this worker's previous commit TID (epoch-composed, see
    /// [`crate::epoch`]); successive commit TIDs are strictly increasing.
    last_tid: u64,
}

impl WorkerCtx {
    pub(crate) fn new(db: Arc<Database>, worker: u32) -> Self {
        let ts_handle = db.ts.handle(worker);
        Self {
            db,
            worker,
            ts_handle,
            seq: 0,
            pool: MemPool::new(),
            st: TxnState::default(),
            stats: RunStats::default(),
            in_txn: false,
            jitter: 0x9E37_79B9 ^ u64::from(worker) << 16 | 1,
            consec_aborts: 0,
            last_tid: 0,
        }
    }

    /// The worker id.
    pub fn worker_id(&self) -> u32 {
        self.worker
    }

    /// The database this context executes against.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// The timestamp of the current transaction (0 when the scheme uses
    /// none).
    pub fn current_ts(&self) -> Ts {
        self.st.ts
    }

    /// SILO: the TID of this worker's most recent commit (0 before the
    /// first one). Other schemes always report 0.
    pub fn last_commit_tid(&self) -> u64 {
        self.last_tid
    }

    fn env(&mut self) -> SchemeEnv<'_> {
        SchemeEnv {
            db: &self.db,
            st: &mut self.st,
            pool: &mut self.pool,
            worker: self.worker,
            stats: &mut self.stats,
        }
    }

    /// Begin a transaction. `partitions` must list every partition the
    /// transaction will touch (H-STORE requirement; other schemes ignore
    /// it). `reuse_ts` re-installs a prior timestamp (WAIT_DIE restarts
    /// keep their age; everything else must pass `None`).
    pub fn begin(&mut self, partitions: &[PartId], reuse_ts: Option<Ts>) -> Result<(), TxnError> {
        assert!(!self.in_txn, "begin() while a transaction is active");
        self.seq += 1;
        self.st.txn_id = make_txn_id(self.worker, self.seq);
        let scheme = self.db.cfg.scheme;
        self.st.ts = if scheme.needs_start_ts() {
            match (scheme, reuse_ts) {
                (CcScheme::WaitDie, Some(ts)) => ts,
                _ => {
                    self.stats.ts_allocated += 1;
                    self.ts_handle.alloc()
                }
            }
        } else {
            0
        };
        if scheme == CcScheme::DlDetect {
            self.db.waits.set_active(self.worker, self.st.txn_id);
        }
        if scheme == CcScheme::Silo {
            // Register in the current epoch (quiescence tracking).
            self.db.epoch.enter(self.worker);
        }
        self.in_txn = true;
        if scheme == CcScheme::HStore {
            let sorted = {
                let mut p = partitions.to_vec();
                p.sort_unstable();
                p.dedup();
                p
            };
            if let Err(r) = hstore::acquire_partitions(&mut self.env(), &sorted) {
                self.rollback(r);
                return Err(TxnError::Abort(r));
            }
        }
        Ok(())
    }

    /// Read the row for `key`, returning its bytes. Under 2PL/H-STORE this
    /// is the row in place (stable until commit); under the T/O schemes it
    /// is the transaction's private copy.
    pub fn read(&mut self, table: TableId, key: Key) -> Result<&[u8], TxnError> {
        debug_assert!(self.in_txn, "read outside a transaction");
        let row = self.db.index_get(table, key)?;
        let len = self.db.tables[table as usize].row_size();
        let r = match self.db.cfg.scheme {
            CcScheme::NoWait | CcScheme::DlDetect | CcScheme::WaitDie => {
                twopl::read(&mut self.env(), table, row)
            }
            CcScheme::Timestamp => timestamp::read(&mut self.env(), table, row),
            CcScheme::Mvcc => mvcc::read(&mut self.env(), table, row),
            CcScheme::Occ => occ::read(&mut self.env(), table, row),
            CcScheme::HStore => hstore::read(&mut self.env(), table, row),
            CcScheme::Silo => silo::read(&mut self.env(), table, row),
        }?;
        Ok(match r {
            // SAFETY: the pointer targets the table arena; the scheme
            // guarantees stability until commit/abort, and `&mut self`
            // prevents any interleaved write through this context.
            ReadRef::InPlace { ptr, len } => unsafe { std::slice::from_raw_parts(ptr, len) },
            ReadRef::Rbuf(i) => &self.st.rbuf[i].data[..len],
        })
    }

    /// Read one `u64` column of `key`'s row.
    pub fn read_u64(&mut self, table: TableId, key: Key, col: usize) -> Result<u64, TxnError> {
        let schema = self.db.schema(table).clone();
        let data = self.read(table, key)?;
        Ok(abyss_storage::row::get_u64(&schema, data, col))
    }

    /// Read-modify-write the row for `key`: `f` receives the schema and
    /// the (current) row image to mutate.
    pub fn update(
        &mut self,
        table: TableId,
        key: Key,
        f: impl FnOnce(&Schema, &mut [u8]),
    ) -> Result<(), TxnError> {
        debug_assert!(self.in_txn, "update outside a transaction");
        let row = self.db.index_get(table, key)?;
        match self.db.cfg.scheme {
            CcScheme::NoWait | CcScheme::DlDetect | CcScheme::WaitDie => {
                twopl::write(&mut self.env(), table, row, f)
            }
            CcScheme::Timestamp => timestamp::write(&mut self.env(), table, row, f),
            CcScheme::Mvcc => mvcc::write(&mut self.env(), table, row, f),
            CcScheme::Occ => occ::write(&mut self.env(), table, row, f),
            CcScheme::HStore => hstore::write(&mut self.env(), table, row, f),
            CcScheme::Silo => silo::write(&mut self.env(), table, row, f),
        }
        .map_err(TxnError::Abort)
    }

    /// Atomically add `delta` to a `u64` column, returning the previous
    /// value as this transaction observes it (TPC-C's `D_NEXT_O_ID`).
    pub fn update_counter(
        &mut self,
        table: TableId,
        key: Key,
        col: usize,
        delta: u64,
    ) -> Result<u64, TxnError> {
        let mut old = 0;
        self.update(table, key, |schema, row| {
            old = abyss_storage::row::fetch_add_u64(schema, row, col, delta);
        })?;
        Ok(old)
    }

    /// Insert a fresh row under `key`; `f` initializes the image.
    pub fn insert(
        &mut self,
        table: TableId,
        key: Key,
        f: impl FnOnce(&Schema, &mut [u8]),
    ) -> Result<(), TxnError> {
        debug_assert!(self.in_txn, "insert outside a transaction");
        match self.db.cfg.scheme {
            CcScheme::NoWait | CcScheme::DlDetect | CcScheme::WaitDie => {
                twopl::insert(&mut self.env(), table, key, f)
            }
            CcScheme::Timestamp => timestamp::insert(&mut self.env(), table, key, f),
            CcScheme::Mvcc => mvcc::insert(&mut self.env(), table, key, f),
            CcScheme::Occ => occ::insert(&mut self.env(), table, key, f),
            CcScheme::HStore => hstore::insert(&mut self.env(), table, key, f),
            CcScheme::Silo => silo::insert(&mut self.env(), table, key, f),
        }
        .map_err(TxnError::Abort)
    }

    /// Commit. May abort (OCC validation, insert races); the transaction
    /// is fully rolled back before the error returns.
    pub fn commit(&mut self) -> Result<(), TxnError> {
        debug_assert!(self.in_txn, "commit outside a transaction");
        let result = match self.db.cfg.scheme {
            CcScheme::NoWait | CcScheme::DlDetect | CcScheme::WaitDie => {
                twopl::commit(&mut self.env());
                Ok(())
            }
            CcScheme::Timestamp => timestamp::commit(&mut self.env()),
            CcScheme::Mvcc => mvcc::commit(&mut self.env()),
            CcScheme::Occ => {
                // The second (validation) timestamp — OCC's extra trip to
                // the allocator (§5.1).
                self.stats.ts_allocated += 1;
                let _validation_ts = self.ts_handle.alloc();
                occ::commit(&mut self.env())
            }
            CcScheme::HStore => {
                hstore::commit(&mut self.env());
                Ok(())
            }
            CcScheme::Silo => {
                // No validation timestamp: the commit TID comes from the
                // epoch subsystem plus per-tuple observations.
                let last = self.last_tid;
                let r = silo::commit(&mut self.env(), last);
                match r {
                    Ok(tid) => {
                        self.last_tid = tid;
                        Ok(())
                    }
                    Err(reason) => Err(reason),
                }
            }
        };
        match result {
            Ok(()) => {
                self.finish();
                Ok(())
            }
            Err(reason) => {
                self.rollback(reason);
                Err(TxnError::Abort(reason))
            }
        }
    }

    /// Abort the current transaction (user-initiated or after an op
    /// returned an abort error). Rolls everything back.
    pub fn abort(&mut self, reason: AbortReason) {
        debug_assert!(self.in_txn, "abort outside a transaction");
        self.rollback(reason);
    }

    fn rollback(&mut self, _reason: AbortReason) {
        match self.db.cfg.scheme {
            CcScheme::NoWait | CcScheme::DlDetect | CcScheme::WaitDie => {
                twopl::abort(&mut self.env())
            }
            CcScheme::Timestamp => timestamp::abort(&mut self.env()),
            CcScheme::Mvcc => mvcc::abort(&mut self.env()),
            CcScheme::Occ => occ::abort(&mut self.env()),
            CcScheme::HStore => hstore::abort(&mut self.env()),
            CcScheme::Silo => silo::abort(&mut self.env()),
        }
        self.finish();
    }

    fn finish(&mut self) {
        if self.db.cfg.scheme == CcScheme::DlDetect {
            self.db.waits.clear_active(self.worker);
        }
        if self.db.cfg.scheme == CcScheme::Silo {
            self.db.epoch.exit(self.worker);
        }
        self.st.reset(&mut self.pool);
        self.in_txn = false;
    }

    /// Run `body` as a transaction, retrying scheduler aborts until it
    /// commits. Returns the body's value, the first non-retryable abort,
    /// or the first database error.
    pub fn run_txn<R>(
        &mut self,
        partitions: &[PartId],
        mut body: impl FnMut(&mut WorkerCtx) -> Result<R, TxnError>,
    ) -> Result<R, TxnError> {
        // The abort penalty escalates per retry of *this* template only.
        self.consec_aborts = 0;
        let mut reuse_ts = None;
        loop {
            match self.begin(partitions, reuse_ts) {
                Ok(()) => {}
                Err(TxnError::Abort(r)) if r.is_retryable() => {
                    self.stats.record_abort(r);
                    self.backoff();
                    continue;
                }
                Err(e) => return Err(e),
            }
            reuse_ts = Some(self.st.ts);
            match body(self) {
                Ok(v) => match self.commit() {
                    Ok(()) => return Ok(v),
                    Err(TxnError::Abort(r)) if r.is_retryable() => {
                        self.stats.record_abort(r);
                        self.backoff();
                    }
                    Err(e) => return Err(e),
                },
                Err(TxnError::Abort(r)) => {
                    self.abort(r);
                    if r.is_retryable() {
                        self.stats.record_abort(r);
                        self.backoff();
                    } else {
                        return Err(TxnError::Abort(r));
                    }
                }
                Err(e) => {
                    self.abort(AbortReason::UserAbort);
                    return Err(e);
                }
            }
        }
    }

    /// Randomized abort penalty before a restart (the paper's
    /// restart-in-same-worker model; DBx1000's `ABORT_PENALTY` is 25 µs).
    ///
    /// The first retry only spins briefly, but repeated aborts of the same
    /// template escalate exponentially into real (descheduling) sleeps.
    /// Without the escalation, hot-key restart storms under the T/O
    /// schemes can livelock an oversubscribed host: every worker keeps
    /// re-reading with a fresh timestamp, pushing the tuple's `rts` past
    /// every concurrent writer, and no one ever commits.
    pub(crate) fn backoff(&mut self) {
        self.consec_aborts = self.consec_aborts.saturating_add(1);
        self.jitter ^= self.jitter << 13;
        self.jitter ^= self.jitter >> 7;
        self.jitter ^= self.jitter << 17;
        if self.consec_aborts <= 2 {
            let spins = 64 + (self.jitter & 0x3FF);
            for _ in 0..spins {
                std::hint::spin_loop();
            }
            return;
        }
        // Base 25 µs, doubling per consecutive abort up to 1.6 ms, then
        // jittered into [base/2, 1.5·base) — worst case ≈ 2.4 ms.
        let shift = (self.consec_aborts - 3).min(6);
        let base_us = 25u64 << shift;
        let us = base_us / 2 + self.jitter % base_us;
        std::thread::sleep(Duration::from_micros(us));
    }
}

impl std::fmt::Debug for WorkerCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerCtx")
            .field("worker", &self.worker)
            .field("in_txn", &self.in_txn)
            .finish()
    }
}

/// Result of a timed multi-worker run.
#[derive(Debug, Clone)]
pub struct BenchOutcome {
    /// Merged statistics (elapsed is in nanoseconds).
    pub stats: RunStats,
    /// Wall-clock time measured by the driver.
    pub wall: Duration,
}

impl BenchOutcome {
    /// Committed transactions per second.
    pub fn txn_per_sec(&self) -> f64 {
        self.stats.commits as f64 / self.wall.as_secs_f64()
    }
}

/// Drive `db.config().workers` threads, each repeatedly fetching a
/// transaction template from its generator and executing it to commit
/// (retrying scheduler aborts). Statistics reset after `warmup`; the run
/// ends after `warmup + measure`.
pub fn run_workers(
    db: &Arc<Database>,
    mut generators: Vec<Box<dyn FnMut() -> abyss_common::TxnTemplate + Send>>,
    warmup: Duration,
    measure: Duration,
) -> BenchOutcome {
    let n = db.cfg.workers as usize;
    assert_eq!(generators.len(), n, "one generator per worker required");
    let stop = AtomicBool::new(false);
    let start = Instant::now();
    let warm_deadline = start + warmup;

    let mut merged = RunStats::default();
    let mut wall = Duration::ZERO;
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for (w, mut generator) in generators.drain(..).enumerate() {
            let stop = &stop;
            let db = Arc::clone(db);
            handles.push(scope.spawn(move |_| {
                let mut ctx = db.worker(w as u32);
                let mut warmed = false;
                let mut measured_start = Instant::now();
                while !stop.load(Ordering::Relaxed) {
                    if !warmed && Instant::now() >= warm_deadline {
                        ctx.stats = RunStats::default();
                        measured_start = Instant::now();
                        warmed = true;
                    }
                    let tmpl = generator();
                    crate::executor::run_to_commit(&mut ctx, &tmpl, stop);
                }
                ctx.stats.elapsed = measured_start.elapsed().as_nanos() as u64;
                ctx.stats
            }));
        }
        // Timer thread: arm the stop flag when the measurement ends.
        std::thread::sleep(warmup + measure);
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            merged.merge(&h.join().expect("worker panicked"));
        }
        wall = start.elapsed().saturating_sub(warmup);
    })
    .expect("worker scope");

    BenchOutcome {
        stats: merged,
        wall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abyss_storage::{row, Catalog, Schema};

    fn db(scheme: CcScheme, workers: u32) -> Arc<Database> {
        let mut cat = Catalog::new();
        cat.add_table("t", Schema::key_plus_payload(2, 8), 1000);
        let db = Database::new(crate::config::EngineConfig::new(scheme, workers), cat).unwrap();
        db.load_table(0, 0..100u64, |s, r, k| {
            row::set_u64(s, r, 0, k);
            row::set_u64(s, r, 1, 100);
        })
        .unwrap();
        db
    }

    fn smoke_single_worker(scheme: CcScheme) {
        let db = db(scheme, 2);
        let mut ctx = db.worker(0);
        // read + update + commit
        ctx.run_txn(&[0, 1], |t| {
            let v = t.read_u64(0, 5, 1)?;
            assert_eq!(v, 100);
            t.update(0, 5, |s, r| row::set_u64(s, r, 1, v + 1))?;
            Ok(())
        })
        .unwrap();
        // the write is visible to the next transaction
        ctx.run_txn(&[0, 1], |t| {
            assert_eq!(t.read_u64(0, 5, 1)?, 101);
            Ok(())
        })
        .unwrap();
        // user abort rolls back
        let r: Result<(), TxnError> = ctx.run_txn(&[0, 1], |t| {
            t.update(0, 5, |s, r| row::set_u64(s, r, 1, 999))?;
            Err(TxnError::Abort(AbortReason::UserAbort))
        });
        assert!(matches!(r, Err(TxnError::Abort(AbortReason::UserAbort))));
        ctx.run_txn(&[0, 1], |t| {
            assert_eq!(t.read_u64(0, 5, 1)?, 101, "user abort must roll back");
            Ok(())
        })
        .unwrap();
        // counter update returns the old value
        let old = ctx
            .run_txn(&[0, 1], |t| t.update_counter(0, 7, 1, 5))
            .unwrap();
        assert_eq!(old, 100);
        assert_eq!(ctx.run_txn(&[0, 1], |t| t.read_u64(0, 7, 1)).unwrap(), 105);
        // insert then read back
        ctx.run_txn(&[0, 1], |t| {
            t.insert(0, 500, |s, r| {
                row::set_u64(s, r, 0, 500);
                row::set_u64(s, r, 1, 42);
            })
        })
        .unwrap();
        assert_eq!(ctx.run_txn(&[0, 1], |t| t.read_u64(0, 500, 1)).unwrap(), 42);
    }

    #[test]
    fn single_worker_no_wait() {
        smoke_single_worker(CcScheme::NoWait);
    }

    #[test]
    fn single_worker_dl_detect() {
        smoke_single_worker(CcScheme::DlDetect);
    }

    #[test]
    fn single_worker_wait_die() {
        smoke_single_worker(CcScheme::WaitDie);
    }

    #[test]
    fn single_worker_timestamp() {
        smoke_single_worker(CcScheme::Timestamp);
    }

    #[test]
    fn single_worker_mvcc() {
        smoke_single_worker(CcScheme::Mvcc);
    }

    #[test]
    fn single_worker_occ() {
        smoke_single_worker(CcScheme::Occ);
    }

    #[test]
    fn single_worker_hstore() {
        smoke_single_worker(CcScheme::HStore);
    }

    #[test]
    fn single_worker_silo() {
        smoke_single_worker(CcScheme::Silo);
    }

    #[test]
    fn missing_key_is_a_db_error_not_an_abort() {
        let db = db(CcScheme::NoWait, 1);
        let mut ctx = db.worker(0);
        ctx.begin(&[], None).unwrap();
        let r = ctx.read(0, 9999);
        assert!(matches!(r, Err(TxnError::Db(DbError::KeyNotFound { .. }))));
        ctx.abort(AbortReason::UserAbort);
    }
}
