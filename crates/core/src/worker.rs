//! Per-thread worker contexts — the public transaction API — and the
//! multi-threaded benchmark drivers.
//!
//! [`WorkerCtx`] is generic over a [`CcProtocol`] impl: the benchmark
//! drivers instantiate it with the configured scheme's static type (via
//! `dispatch_protocol!`, once per run), so the steady-state loop contains
//! no scheme dispatch at all — the protocol inlines into the access
//! path. The default type parameter, [`AnyScheme`], recovers classic
//! enum dispatch (one match per operation) for callers that cannot name
//! the scheme in their types; [`crate::db::Database::worker`] hands out
//! that flavor.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use abyss_common::{AbortReason, DbError, Key, PartId, Phase, RowIdx, RunStats, TableId, Ts};
use abyss_storage::{MemPool, Schema};

use crate::backoff::BackoffCtl;
use crate::db::Database;
use crate::obs::PhaseClock;
use crate::schemes::{AnyScheme, CcProtocol, ReadRef, SchemeEnv};
use crate::ts::TsHandle;
use crate::txn::{make_txn_id, NodeSetEntry, RedoEntry, TxnState};

/// Errors surfaced by the transaction API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnError {
    /// The transaction must abort (possibly retryable).
    Abort(AbortReason),
    /// A non-transactional error (missing key, bad schema, ...).
    Db(DbError),
}

impl From<AbortReason> for TxnError {
    fn from(r: AbortReason) -> Self {
        TxnError::Abort(r)
    }
}

impl From<DbError> for TxnError {
    fn from(e: DbError) -> Self {
        TxnError::Db(e)
    }
}

impl std::fmt::Display for TxnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TxnError::Abort(r) => write!(f, "transaction aborted: {r}"),
            TxnError::Db(e) => write!(f, "database error: {e}"),
        }
    }
}

impl std::error::Error for TxnError {}

/// A per-thread execution context. Create one per worker thread with
/// [`Database::worker`]; it is `Send` but not `Sync` (one thread at a
/// time), mirroring the paper's one-worker-per-core model.
///
/// The type parameter is the concurrency-control protocol the context
/// executes (see the module docs); the default, [`AnyScheme`], dispatches
/// on the database's configured scheme at runtime.
pub struct WorkerCtx<P: CcProtocol = AnyScheme> {
    pub(crate) db: Arc<Database>,
    pub(crate) worker: u32,
    pub(crate) ts_handle: TsHandle,
    pub(crate) seq: u64,
    pub(crate) pool: MemPool,
    pub(crate) st: TxnState,
    /// Per-worker statistics (commits/aborts recorded by the driver; wait
    /// time recorded by the schemes).
    pub stats: RunStats,
    in_txn: bool,
    /// When the current attempt began — the per-attempt latency clock
    /// behind [`RunStats::commit_latency`] / [`RunStats::abort_latency`].
    attempt_started: Instant,
    /// Per-phase attempt accounting (no-op unless `cfg.breakdown`).
    phases: PhaseClock,
    /// Cheap xorshift state for abort backoff jitter.
    jitter: u64,
    /// Consecutive scheduler aborts of the current template (drives the
    /// exponential abort penalty; reset on commit).
    consec_aborts: u32,
    /// Adaptive AIMD backoff controller (`cfg.adaptive_backoff` only;
    /// `None` keeps the paper's fixed escalation schedule bit-for-bit).
    backoff_ctl: Option<BackoffCtl>,
    /// SILO: this worker's previous commit TID (epoch-composed, see
    /// [`crate::epoch`]); successive commit TIDs are strictly increasing.
    last_tid: u64,
    /// `fn() -> P` keeps the context `Send` regardless of `P`.
    _protocol: PhantomData<fn() -> P>,
}

impl<P: CcProtocol> WorkerCtx<P> {
    pub(crate) fn new(db: Arc<Database>, worker: u32) -> Self {
        assert!(
            P::STATIC_SCHEME.is_none_or(|s| s == db.cfg.scheme),
            "protocol {:?} instantiated against a {} database",
            P::STATIC_SCHEME,
            db.cfg.scheme
        );
        let ts_handle = db.ts.handle(worker);
        let phases = PhaseClock::new(db.cfg.breakdown);
        let backoff_ctl = db.cfg.adaptive_backoff.then(|| {
            let scheme = db.cfg.scheme;
            BackoffCtl::new(P::backoff_gain_pct(scheme), P::backoff_ceiling_us(scheme))
        });
        Self {
            db,
            worker,
            ts_handle,
            seq: 0,
            pool: MemPool::new(),
            st: TxnState::default(),
            stats: RunStats::default(),
            in_txn: false,
            attempt_started: Instant::now(),
            phases,
            jitter: jitter_seed(worker),
            consec_aborts: 0,
            backoff_ctl,
            last_tid: 0,
            _protocol: PhantomData,
        }
    }

    /// The worker id.
    pub fn worker_id(&self) -> u32 {
        self.worker
    }

    /// The database this context executes against.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// The timestamp of the current transaction (0 when the scheme uses
    /// none).
    pub fn current_ts(&self) -> Ts {
        self.st.ts
    }

    /// SILO: the TID of this worker's most recent commit (0 before the
    /// first one). Other schemes always report 0.
    pub fn last_commit_tid(&self) -> u64 {
        self.last_tid
    }

    pub(crate) fn env(&mut self) -> SchemeEnv<'_> {
        SchemeEnv {
            db: &self.db,
            st: &mut self.st,
            pool: &mut self.pool,
            worker: self.worker,
            stats: &mut self.stats,
            ts: &mut self.ts_handle,
            last_tid: &mut self.last_tid,
            phases: &mut self.phases,
        }
    }

    /// Begin a transaction. `partitions` must list every partition the
    /// transaction will touch (H-STORE requirement; other schemes ignore
    /// it). `reuse_ts` re-installs a prior timestamp (WAIT_DIE restarts
    /// keep their age; everything else must pass `None`).
    pub fn begin(&mut self, partitions: &[PartId], reuse_ts: Option<Ts>) -> Result<(), TxnError> {
        self.begin_inner(partitions, reuse_ts, false)
    }

    /// [`begin`](Self::begin) with the read-only fast-path flag. The flag
    /// is per-attempt (never sticky — a stale hint on a writing
    /// transaction would skip the WAL's epoch registration and let the
    /// group-commit horizon fence past an unflushed record), so only the
    /// retry loops thread it and everything else passes `false`.
    fn begin_inner(
        &mut self,
        partitions: &[PartId],
        reuse_ts: Option<Ts>,
        read_only: bool,
    ) -> Result<(), TxnError> {
        assert!(!self.in_txn, "begin() while a transaction is active");
        self.seq += 1;
        self.attempt_started = Instant::now();
        self.phases.start_attempt();
        self.st.txn_id = make_txn_id(self.worker, self.seq);
        self.db.trace_event(
            self.worker,
            self.st.txn_id,
            crate::obs::TraceEventKind::Begin,
        );
        let scheme = self.db.cfg.scheme;
        self.st.ts = if P::needs_ts(scheme) {
            match reuse_ts {
                Some(ts) if P::ts_reuse_on_restart(scheme) => ts,
                _ => {
                    self.stats.ts_allocated += 1;
                    self.phases.set(Phase::TsAlloc);
                    let ts = self.ts_handle.alloc();
                    self.phases.set(Phase::Manager);
                    ts
                }
            }
        } else {
            0
        };
        if P::tracks_waits(scheme) {
            self.db.waits.set_active(self.worker, self.st.txn_id);
        }
        self.st.read_only = read_only;
        if P::uses_epoch(scheme) || (self.db.wal.is_some() && !read_only) {
            // Register in the current epoch (SILO: commit identity + GC;
            // TICTOC: the quiescence horizon alone; with logging on,
            // every scheme: the group-commit flush horizon — a worker
            // stays registered from begin until after its WAL append, so
            // `safe_epoch` bounds the epochs unflushed records can carry).
            // Read-only fast path: a transaction that statically cannot
            // write never appends a WAL record, so when the registration
            // exists only for the flush horizon it is skipped.
            self.db.epoch.enter(self.worker);
        }
        self.in_txn = true;
        if let Err(r) = P::begin(&mut self.env(), partitions) {
            self.rollback(r);
            return Err(TxnError::Abort(r));
        }
        // Begin bookkeeping done; the application body runs next.
        self.phases.set(Phase::UsefulWork);
        Ok(())
    }

    /// Post-access delete guard: the key→row binding must still hold
    /// *after* the scheme admitted the access. A concurrent transactional
    /// delete that committed between our index probe and the scheme's
    /// admission has already withdrawn the entry (2PL holds the X lock
    /// through its commit-time removal; OCC/SILO bump the word; MVCC
    /// resolves after removal), so a stale row reference surfaces here as
    /// the same `KeyNotFound` a fresh probe would produce — instead of
    /// resurrecting the dead row. Schemes with `GUARDS_DELETED = false`
    /// need no probe (TIMESTAMP tombstones deleted rows with `wts = ∞`;
    /// H-STORE's partition ownership excludes concurrent deleters).
    fn check_not_deleted(&self, table: TableId, key: Key, row: RowIdx) -> Result<(), TxnError> {
        if !P::guards_deleted(self.db.cfg.scheme) {
            return Ok(());
        }
        if self.db.indexes[table as usize].find(key) == Some(row) {
            Ok(())
        } else {
            Err(TxnError::Db(DbError::KeyNotFound { table, key }))
        }
    }

    /// Read the row for `key`, returning its bytes. Under 2PL/H-STORE this
    /// is the row in place (stable until commit); under the T/O schemes it
    /// is the transaction's private copy.
    pub fn read(&mut self, table: TableId, key: Key) -> Result<&[u8], TxnError> {
        debug_assert!(self.in_txn, "read outside a transaction");
        self.phases.set(Phase::Index);
        let row = self.db.index_get(table, key)?;
        let len = self.db.tables[table as usize].row_size();
        self.phases.set(Phase::Manager);
        let r = P::read(&mut self.env(), table, row)?;
        self.check_not_deleted(table, key, row)?;
        self.phases.set(Phase::UsefulWork);
        Ok(match r {
            // SAFETY: the pointer targets the table arena; the scheme
            // guarantees stability until commit/abort, and `&mut self`
            // prevents any interleaved write through this context.
            ReadRef::InPlace { ptr, len } => unsafe { std::slice::from_raw_parts(ptr, len) },
            ReadRef::Rbuf(i) => &self.st.rbuf[i].data[..len],
        })
    }

    /// Read one `u64` column of `key`'s row.
    pub fn read_u64(&mut self, table: TableId, key: Key, col: usize) -> Result<u64, TxnError> {
        let schema = self.db.schema(table).clone();
        let data = self.read(table, key)?;
        Ok(abyss_storage::row::get_u64(&schema, data, col))
    }

    /// When logging is on: a pool block (plus the row length) to capture
    /// a write's after-image into, right where the scheme applies the
    /// user's mutation — scheme-independent, whether the bytes land in a
    /// private workspace (T/O, OCC) or the table arena (2PL, H-STORE).
    fn log_capture_buf(
        &mut self,
        table: TableId,
    ) -> Option<(abyss_storage::mempool::PoolBlock, usize)> {
        if self.db.wal.is_some() {
            let len = self.db.tables[table as usize].row_size();
            // Uninit is safe: the wrapper copies the full `len` prefix and
            // the WAL append reads exactly that prefix.
            Some((self.pool.alloc_uninit(len), len))
        } else {
            None
        }
    }

    /// Record `key`'s captured after-image in the transaction's redo
    /// buffer (latest write per key wins).
    fn redo_put(&mut self, table: TableId, key: Key, image: abyss_storage::mempool::PoolBlock) {
        if let Some(e) = self
            .st
            .redo
            .iter_mut()
            .find(|e| e.table == table && e.key == key)
        {
            if let Some(old) = e.image.replace(image) {
                self.pool.free(old);
            }
            return;
        }
        self.st.redo.push(RedoEntry {
            table,
            key,
            image: Some(image),
        });
    }

    /// Record `key`'s deletion in the transaction's redo buffer.
    fn redo_del(&mut self, table: TableId, key: Key) {
        if let Some(e) = self
            .st
            .redo
            .iter_mut()
            .find(|e| e.table == table && e.key == key)
        {
            if let Some(old) = e.image.take() {
                self.pool.free(old);
            }
            return;
        }
        self.st.redo.push(RedoEntry {
            table,
            key,
            image: None,
        });
    }

    /// Read-modify-write the row for `key`: `f` receives the schema and
    /// the (current) row image to mutate.
    pub fn update(
        &mut self,
        table: TableId,
        key: Key,
        f: impl FnOnce(&Schema, &mut [u8]),
    ) -> Result<(), TxnError> {
        debug_assert!(self.in_txn, "update outside a transaction");
        debug_assert!(
            !self.st.read_only,
            "update under the read-only fast path (template mislabeled)"
        );
        self.phases.set(Phase::Index);
        let row = self.db.index_get(table, key)?;
        self.phases.set(Phase::Manager);
        let mut cap = self.log_capture_buf(table);
        let wrap = |s: &Schema, d: &mut [u8]| {
            f(s, d);
            if let Some((buf, len)) = cap.as_mut() {
                buf[..*len].copy_from_slice(&d[..*len]);
            }
        };
        let res = P::write(&mut self.env(), table, row, wrap);
        match (res, cap) {
            (Ok(()), Some((buf, _))) => {
                self.redo_put(table, key, buf);
            }
            (Ok(()), None) => {}
            (Err(r), cap) => {
                if let Some((buf, _)) = cap {
                    self.pool.free(buf);
                }
                return Err(TxnError::Abort(r));
            }
        }
        let r = self.check_not_deleted(table, key, row);
        self.phases.set(Phase::UsefulWork);
        r
    }

    /// Atomically add `delta` to a `u64` column, returning the previous
    /// value as this transaction observes it (TPC-C's `D_NEXT_O_ID`).
    pub fn update_counter(
        &mut self,
        table: TableId,
        key: Key,
        col: usize,
        delta: u64,
    ) -> Result<u64, TxnError> {
        let mut old = 0;
        self.update(table, key, |schema, row| {
            old = abyss_storage::row::fetch_add_u64(schema, row, col, delta);
        })?;
        Ok(old)
    }

    /// Insert a fresh row under `key`; `f` initializes the image.
    pub fn insert(
        &mut self,
        table: TableId,
        key: Key,
        f: impl FnOnce(&Schema, &mut [u8]),
    ) -> Result<(), TxnError> {
        debug_assert!(self.in_txn, "insert outside a transaction");
        debug_assert!(
            !self.st.read_only,
            "insert under the read-only fast path (template mislabeled)"
        );
        // The whole insert (index publication + CC registration) counts
        // as Manager; the user's init closure runs inside the span.
        self.phases.set(Phase::Manager);
        let mut cap = self.log_capture_buf(table);
        let wrap = |s: &Schema, d: &mut [u8]| {
            f(s, d);
            if let Some((buf, len)) = cap.as_mut() {
                buf[..*len].copy_from_slice(&d[..*len]);
            }
        };
        let res = P::insert(&mut self.env(), table, key, wrap);
        let r = match (res, cap) {
            (Ok(()), Some((buf, _))) => {
                self.redo_put(table, key, buf);
                Ok(())
            }
            (Ok(()), None) => Ok(()),
            (Err(r), cap) => {
                if let Some((buf, _)) = cap {
                    self.pool.free(buf);
                }
                Err(TxnError::Abort(r))
            }
        };
        self.phases.set(Phase::UsefulWork);
        r
    }

    /// Transactionally delete `key`'s row: the hash and ordered indexes
    /// are maintained together, and an abort restores them. Eager schemes
    /// (2PL holds the X lock and withdraws at commit; H-STORE withdraws
    /// immediately under partition ownership); buffered schemes register
    /// the delete and apply it during their commit's write phase.
    pub fn delete(&mut self, table: TableId, key: Key) -> Result<(), TxnError> {
        debug_assert!(self.in_txn, "delete outside a transaction");
        debug_assert!(
            !self.st.read_only,
            "delete under the read-only fast path (template mislabeled)"
        );
        self.phases.set(Phase::Index);
        let row = self.db.index_get(table, key)?;
        self.phases.set(Phase::Manager);
        P::delete(&mut self.env(), table, key, row).map_err(TxnError::Abort)?;
        if self.db.wal.is_some() {
            self.redo_del(table, key);
        }
        let r = self.check_not_deleted(table, key, row);
        self.phases.set(Phase::UsefulWork);
        r
    }

    /// Range-scan `table` over `low..=high` (requires an ordered index),
    /// invoking `f` with each qualifying row. Returns the number of rows
    /// observed. Phantom protection is per scheme (each protocol picks
    /// one of the drivers below):
    ///
    /// * **2PL** — a next-key walk: each row (plus the first row beyond
    ///   `high`, or the table's +∞ gap anchor) is S-locked *before* the
    ///   gap below it is trusted, and inserters take an instant X on their
    ///   successor, so no key can appear in a scanned gap;
    /// * **TIMESTAMP / MVCC** — the scan tags every visited leaf with its
    ///   timestamp (`scan_rts`); structural writers with smaller
    ///   timestamps abort at commit, and the scan revalidates leaf
    ///   versions after its reads (MVCC additionally skips rows invisible
    ///   at its snapshot);
    /// * **OCC / SILO / TICTOC** — the visited leaves and their versions
    ///   join the transaction's node set, re-validated at commit
    ///   (Silo/Masstree);
    /// * **H-STORE** — partition ownership already serializes the scan.
    pub fn scan(
        &mut self,
        table: TableId,
        low: Key,
        high: Key,
        mut f: impl FnMut(Key, &Schema, &[u8]),
    ) -> Result<usize, TxnError> {
        debug_assert!(self.in_txn, "scan outside a transaction");
        self.db.require_ordered(table)?;
        self.stats.scans += 1;
        // The whole scan (tree walk + per-row admission) counts as Index;
        // waits inside it are deducted by `note_wait` as usual.
        self.phases.set(Phase::Index);
        let r = P::scan(self, table, low, high, &mut f);
        self.phases.set(Phase::UsefulWork);
        r
    }

    /// Sum one `u64` column over a key range (scan convenience).
    pub fn scan_sum_u64(
        &mut self,
        table: TableId,
        low: Key,
        high: Key,
        col: usize,
    ) -> Result<(usize, u64), TxnError> {
        let mut sum = 0u64;
        let n = self.scan(table, low, high, |_, schema, data| {
            sum = sum.wrapping_add(abyss_storage::row::get_u64(schema, data, col));
        })?;
        Ok((n, sum))
    }

    /// H-STORE scan driver: the owned partitions make the walk exclusive.
    pub(crate) fn scan_hstore(
        &mut self,
        table: TableId,
        low: Key,
        high: Key,
        f: &mut dyn FnMut(Key, &Schema, &[u8]),
    ) -> Result<usize, TxnError> {
        let sr = self.db.require_ordered(table)?.scan(low, high);
        self.stats.scan_retries += sr.retries;
        let t = &self.db.tables[table as usize];
        for &(k, row) in &sr.entries {
            // SAFETY: the transaction owns every partition it touches.
            let data = unsafe { t.row(row) };
            f(k, t.schema(), data);
        }
        Ok(sr.entries.len())
    }

    /// TIMESTAMP / MVCC scan driver: leaf-tag the range, read per row
    /// (through [`CcProtocol::read_for_scan`], so MVCC skips rows
    /// invisible at its snapshot), then revalidate leaf versions (see
    /// [`WorkerCtx::scan`]).
    pub(crate) fn scan_to(
        &mut self,
        table: TableId,
        low: Key,
        high: Key,
        f: &mut dyn FnMut(Key, &Schema, &[u8]),
    ) -> Result<usize, TxnError> {
        let ts = self.st.ts;
        let mut attempts = 0u32;
        // Read copies taken by an attempt that fails leaf revalidation are
        // dead; recycle them instead of letting them pile up in rbuf until
        // transaction end (64 retries × scan length would otherwise pin
        // that many pool blocks on the hot scan path).
        let rbuf_base = self.st.rbuf.len();
        'retry: loop {
            attempts += 1;
            if attempts > 64 {
                return Err(TxnError::Abort(AbortReason::ValidationFail));
            }
            for rc in self.st.rbuf.drain(rbuf_base..) {
                self.pool.free(rc.data);
            }
            let (entries, leaves) = {
                let tree = self.db.require_ordered(table)?;
                let sr = tree.scan(low, high);
                self.stats.scan_retries += sr.retries;
                (sr.entries, sr.leaves)
            };
            {
                let tree = self.db.require_ordered(table)?;
                for &(leaf, _) in &leaves {
                    // Publish "a transaction at `ts` read this key range"
                    // *before* reading rows: structural writers with
                    // smaller timestamps will abort against it.
                    tree.leaf_bump_scan_rts(leaf, ts);
                    if tree.leaf_del_wts(leaf) > ts {
                        // A delete serialized after us already removed a
                        // key from this range; this snapshot cannot be
                        // reconstructed.
                        return Err(TxnError::Abort(AbortReason::TsOrderViolation));
                    }
                }
            }
            let mut got: Vec<(Key, usize)> = Vec::with_capacity(entries.len());
            for &(k, row) in &entries {
                let r = P::read_for_scan(&mut self.env(), table, row).map_err(TxnError::Abort)?;
                match r {
                    Some(ReadRef::Rbuf(i)) => got.push((k, i)),
                    Some(ReadRef::InPlace { .. }) => {
                        unreachable!("T/O reads always copy")
                    }
                    None => {} // created after this snapshot: skip
                }
            }
            // Revalidate after the reads: any structural change since the
            // leaf snapshot (insert by a later ts, delete, split) restarts
            // the scan so the entry list and the row reads agree.
            let changed = {
                let tree = self.db.require_ordered(table)?;
                leaves.iter().any(|&(l, v)| tree.leaf_version(l) != v)
            };
            if changed {
                self.stats.scan_retries += 1;
                continue 'retry;
            }
            let t = &self.db.tables[table as usize];
            let schema = t.schema();
            let len = t.row_size();
            for &(k, i) in &got {
                f(k, schema, &self.st.rbuf[i].data[..len]);
            }
            return Ok(got.len());
        }
    }

    /// OCC / SILO / TICTOC scan driver: record the node set, read
    /// optimistically.
    pub(crate) fn scan_occ(
        &mut self,
        table: TableId,
        low: Key,
        high: Key,
        f: &mut dyn FnMut(Key, &Schema, &[u8]),
    ) -> Result<usize, TxnError> {
        let (entries, leaves) = {
            let tree = self.db.require_ordered(table)?;
            let sr = tree.scan(low, high);
            self.stats.scan_retries += sr.retries;
            (sr.entries, sr.leaves)
        };
        for &(leaf, version) in &leaves {
            self.st.node_set.push(NodeSetEntry {
                table,
                leaf,
                version,
            });
        }
        let mut got: Vec<(Key, usize)> = Vec::with_capacity(entries.len());
        for &(k, row) in &entries {
            let r = P::read(&mut self.env(), table, row).map_err(TxnError::Abort)?;
            match r {
                ReadRef::Rbuf(i) => got.push((k, i)),
                ReadRef::InPlace { .. } => unreachable!("OCC reads always copy"),
            }
        }
        let t = &self.db.tables[table as usize];
        let schema = t.schema();
        let len = t.row_size();
        for &(k, i) in &got {
            f(k, schema, &self.st.rbuf[i].data[..len]);
        }
        Ok(got.len())
    }

    /// Commit. May abort (OCC validation, insert races); the transaction
    /// is fully rolled back before the error returns. The scheme's commit
    /// passes its WAL commit point inside its own exclusion window (locks
    /// still held / prewrites pending / latches validated).
    pub fn commit(&mut self) -> Result<(), TxnError> {
        debug_assert!(self.in_txn, "commit outside a transaction");
        self.phases.set(Phase::Manager);
        match P::commit(&mut self.env()) {
            Ok(()) => {
                // The redo record was appended at the scheme's WAL commit
                // point, inside its exclusion window and before this
                // worker exits its epoch slot (finish) — the group-commit
                // horizon can never fence past a committed-but-unappended
                // record.
                debug_assert!(
                    self.st.redo.is_empty() || self.db.wal.is_none() || self.st.log_epoch != 0,
                    "scheme committed a write set without passing its WAL commit point"
                );
                self.stats
                    .commit_latency
                    .record(self.attempt_started.elapsed().as_nanos() as u64);
                if let Some(delta) = self.phases.finish_commit(&mut self.stats) {
                    self.db.phase_accumulate(&delta);
                }
                self.db.trace_event(
                    self.worker,
                    self.st.txn_id,
                    crate::obs::TraceEventKind::Commit,
                );
                self.finish();
                Ok(())
            }
            Err(reason) => {
                self.rollback(reason);
                Err(TxnError::Abort(reason))
            }
        }
    }

    /// Abort the current transaction (user-initiated or after an op
    /// returned an abort error). Rolls everything back.
    pub fn abort(&mut self, reason: AbortReason) {
        debug_assert!(self.in_txn, "abort outside a transaction");
        self.rollback(reason);
    }

    fn rollback(&mut self, reason: AbortReason) {
        self.phases.set(Phase::Abort);
        P::abort(&mut self.env());
        self.stats
            .abort_latency
            .record(self.attempt_started.elapsed().as_nanos() as u64);
        if let Some(delta) = self.phases.finish_abort(&mut self.stats) {
            self.db.phase_accumulate(&delta);
        }
        self.db.trace_event(
            self.worker,
            self.st.txn_id,
            crate::obs::TraceEventKind::Abort(reason),
        );
        self.finish();
    }

    fn finish(&mut self) {
        let scheme = self.db.cfg.scheme;
        if P::tracks_waits(scheme) {
            self.db.waits.clear_active(self.worker);
        }
        // Mirror of begin_inner's enter condition — evaluated before
        // `reset` clears `read_only`, so enter/exit always pair up.
        if P::uses_epoch(scheme) || (self.db.wal.is_some() && !self.st.read_only) {
            self.db.epoch.exit(self.worker);
        }
        self.st.reset(&mut self.pool);
        self.in_txn = false;
    }

    /// Run `body` as a transaction, retrying scheduler aborts until it
    /// commits. Returns the body's value, the first non-retryable abort,
    /// or the first database error.
    pub fn run_txn<R>(
        &mut self,
        partitions: &[PartId],
        body: impl FnMut(&mut Self) -> Result<R, TxnError>,
    ) -> Result<R, TxnError> {
        self.run_txn_with_hint(partitions, false, body)
    }

    /// [`run_txn`](Self::run_txn) with a static read-only hint: `true`
    /// promises the body performs no update/insert/delete (debug-asserted)
    /// and lets the engine skip write-side bookkeeping the transaction can
    /// never need — WAL-horizon epoch registration, OCC's
    /// validation-timestamp allocation. The executor passes
    /// `tmpl.is_read_only()` here when `cfg.ro_fast_path` is on.
    pub fn run_txn_with_hint<R>(
        &mut self,
        partitions: &[PartId],
        read_only: bool,
        mut body: impl FnMut(&mut Self) -> Result<R, TxnError>,
    ) -> Result<R, TxnError> {
        // The abort penalty escalates per retry of *this* template only.
        self.consec_aborts = 0;
        let mut reuse_ts = None;
        loop {
            match self.begin_inner(partitions, reuse_ts, read_only) {
                Ok(()) => {}
                Err(TxnError::Abort(r)) if r.is_retryable() => {
                    self.stats.record_abort(r);
                    self.backoff();
                    continue;
                }
                Err(e) => return Err(e),
            }
            reuse_ts = Some(self.st.ts);
            match body(self) {
                Ok(v) => match self.commit() {
                    Ok(()) => {
                        if let Some(ctl) = self.backoff_ctl.as_mut() {
                            ctl.on_commit();
                        }
                        return Ok(v);
                    }
                    Err(TxnError::Abort(r)) if r.is_retryable() => {
                        self.stats.record_abort(r);
                        self.backoff();
                    }
                    Err(e) => return Err(e),
                },
                Err(TxnError::Abort(r)) => {
                    self.abort(r);
                    if r.is_retryable() {
                        self.stats.record_abort(r);
                        self.backoff();
                    } else {
                        return Err(TxnError::Abort(r));
                    }
                }
                Err(e) => {
                    self.abort(AbortReason::UserAbort);
                    return Err(e);
                }
            }
        }
    }

    /// Randomized abort penalty before a restart (the paper's
    /// restart-in-same-worker model; DBx1000's `ABORT_PENALTY` is 25 µs).
    ///
    /// Default (fixed) schedule: the first retry only spins briefly, but
    /// repeated aborts of the same template escalate exponentially into
    /// real (descheduling) sleeps. Without the escalation, hot-key restart
    /// storms under the T/O schemes can livelock an oversubscribed host:
    /// every worker keeps re-reading with a fresh timestamp, pushing the
    /// tuple's `rts` past every concurrent writer, and no one ever
    /// commits.
    ///
    /// With `cfg.adaptive_backoff` the delay comes from the AIMD
    /// controller instead ([`crate::backoff`]): it tracks the worker's
    /// windowed abort rate, so the penalty follows *system* contention
    /// rather than one template's streak.
    pub(crate) fn backoff(&mut self) {
        self.consec_aborts = self.consec_aborts.saturating_add(1);
        let jitter = self.jitter_draw();
        if let Some(ctl) = self.backoff_ctl.as_mut() {
            let delay = ctl.on_abort();
            self.stats.backoff_delay_ns = self.stats.backoff_delay_ns.max(delay);
            if delay == 0 {
                return;
            }
            self.stats.backoffs += 1;
            // Jitter into [delay/2, 1.5·delay] so co-aborting workers
            // don't re-collide on a synchronized retry edge.
            let ns = delay / 2 + jitter % (delay + 1);
            self.stats.backoff_ns += ns;
            if ns < 4_000 {
                // Too short for the scheduler: busy-wait it out.
                let until = Instant::now() + Duration::from_nanos(ns);
                while Instant::now() < until {
                    std::hint::spin_loop();
                }
            } else if self.db.park.early_yield() {
                // Oversubscribed host: hand the core to a sibling instead
                // of descheduling for a kernel-rounded sleep.
                let until = Instant::now() + Duration::from_nanos(ns);
                while Instant::now() < until {
                    std::thread::yield_now();
                }
            } else {
                std::thread::sleep(Duration::from_nanos(ns));
            }
            return;
        }
        if self.consec_aborts <= 2 {
            let spins = 64 + (jitter & 0x3FF);
            for _ in 0..spins {
                std::hint::spin_loop();
            }
            return;
        }
        // Base 25 µs, doubling per consecutive abort up to 1.6 ms, then
        // jittered into [base/2, 1.5·base) — worst case ≈ 2.4 ms.
        let shift = (self.consec_aborts - 3).min(6);
        let base_us = 25u64 << shift;
        let us = base_us / 2 + jitter % base_us;
        std::thread::sleep(Duration::from_micros(us));
    }

    /// Advance the xorshift64 state and return the next jitter draw.
    /// Factored out of [`backoff`](Self::backoff) so the seeding can be
    /// regression-tested without timing a real backoff.
    #[inline]
    pub(crate) fn jitter_draw(&mut self) -> u64 {
        self.jitter ^= self.jitter << 13;
        self.jitter ^= self.jitter >> 7;
        self.jitter ^= self.jitter << 17;
        self.jitter
    }
}

/// Backoff-jitter seed for `worker`: a SplitMix64 scramble of the worker
/// id, so every worker starts its xorshift from a distinct, well-mixed,
/// non-zero state.
///
/// The previous expression, `0x9E37_79B9 ^ u64::from(worker) << 16 | 1`,
/// parsed as `(0x9E37_79B9 ^ (worker << 16)) | 1` thanks to operator
/// precedence: seeds differed only in bits 16..16+log2(workers), so
/// neighboring workers' xorshift streams started highly correlated and
/// their backoff sleeps marched in near-lockstep — exactly the
/// synchronized restart storm backoff jitter exists to break up.
fn jitter_seed(worker: u32) -> u64 {
    let seed =
        abyss_common::rng::SplitMix64::new(0x9E37_79B9_7F4A_7C15 ^ u64::from(worker)).next_u64();
    // xorshift has a single absorbing zero state; SplitMix64 emits 0 for
    // exactly one seed, so guard it.
    if seed == 0 {
        0x9E37_79B9_7F4A_7C15
    } else {
        seed
    }
}

impl<P: CcProtocol> std::fmt::Debug for WorkerCtx<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerCtx")
            .field("worker", &self.worker)
            .field("in_txn", &self.in_txn)
            .finish()
    }
}

/// Result of a timed multi-worker run.
#[derive(Debug, Clone)]
pub struct BenchOutcome {
    /// Merged statistics (elapsed is in nanoseconds).
    pub stats: RunStats,
    /// Wall-clock time measured by the driver.
    pub wall: Duration,
}

impl BenchOutcome {
    /// Committed transactions per second.
    pub fn txn_per_sec(&self) -> f64 {
        self.stats.commits as f64 / self.wall.as_secs_f64()
    }
}

/// A per-worker transaction stream.
type Generator = Box<dyn FnMut() -> abyss_common::TxnTemplate + Send>;

/// How the benchmark drivers bind the scheme to the worker loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchMode {
    /// One enum match per operation ([`AnyScheme`]) — the
    /// pre-monomorphization engine's hot path, kept as the measured
    /// baseline.
    Enum,
    /// The scheme's protocol monomorphized into the loop (zero dispatch
    /// per access) — what [`run_workers`] / [`run_workers_bounded`] use.
    Mono,
}

/// Driver epilogue when logging is on: record the durable-epoch lag the
/// run ended with (group-commit ack latency, in epochs), then run the
/// clean-shutdown flush (workers are joined ⇒ quiescent) and export the
/// flush counters. `base` is the counter snapshot taken when the
/// measurement window opened (after warmup), so the exported flush/fsync
/// counts cover the same window as the workers' warmup-reset
/// `log_records`/`log_bytes` — not the process lifetime.
fn finalize_wal(db: &Arc<Database>, stats: &mut RunStats, base: Option<abyss_storage::WalStats>) {
    if let Some(w) = db.wal_stats() {
        stats.durable_epoch_lag = db.epoch_manager().current().saturating_sub(w.durable_epoch);
        db.log_flush_all();
        let w = db.wal_stats().expect("wal stats present");
        let base = base.unwrap_or_default();
        stats.log_flushes = w.flushes.saturating_sub(base.flushes);
        stats.log_fsyncs = w.fsyncs.saturating_sub(base.fsyncs);
    }
}

/// The shared benchmark scaffolding: spawn one thread per worker running
/// `body` against its generator, run `control` on the spawning thread
/// (e.g. a stop-flag timer), then join and merge every worker's stats.
/// Both public drivers differ only in their loop-termination policy.
///
/// Every worker pins itself per [`crate::config::EngineConfig::pin`],
/// constructs its context, and then parks on a ready-count start barrier;
/// the spawning thread releases all of them on one edge once the last
/// worker has reported in, and only then starts `control`'s clock. Without
/// the barrier, the first-spawned worker runs (and its warmup deadline
/// drifts) while later siblings are still paying thread-creation and
/// context-construction cost — stragglers then get measured mid-warmup.
///
/// Returns the merged stats plus the start-edge wall: barrier release →
/// last worker finished. Bounded drivers use it directly; timed drivers
/// derive a tighter window from their own stop timer.
fn drive_workers<P: CcProtocol>(
    db: &Arc<Database>,
    mut generators: Vec<Generator>,
    body: impl Fn(&mut WorkerCtx<P>, &mut dyn FnMut() -> abyss_common::TxnTemplate) + Sync,
    control: impl FnOnce(),
) -> (RunStats, Duration) {
    let n = db.cfg.workers as usize;
    assert_eq!(generators.len(), n, "one generator per worker required");
    let pin = db.cfg.pin;
    let ready = AtomicU64::new(0);
    let running = AtomicBool::new(false);
    let mut merged = RunStats::default();
    let mut wall = Duration::ZERO;
    crossbeam::thread::scope(|scope| {
        let ready = &ready;
        let running = &running;
        let mut handles = Vec::with_capacity(n);
        for (w, mut generator) in generators.drain(..).enumerate() {
            let db = Arc::clone(db);
            let body = &body;
            handles.push(scope.spawn(move |_| {
                pin.apply(w as u32, n as u32);
                let mut ctx = WorkerCtx::<P>::new(db, w as u32);
                ready.fetch_add(1, Ordering::AcqRel);
                while !running.load(Ordering::Acquire) {
                    std::hint::spin_loop();
                }
                body(&mut ctx, &mut *generator);
                ctx.stats
            }));
        }
        while ready.load(Ordering::Acquire) < n as u64 {
            std::hint::spin_loop();
        }
        let start_edge = Instant::now();
        running.store(true, Ordering::Release);
        control();
        for h in handles {
            merged.merge(&h.join().expect("worker panicked"));
        }
        wall = start_edge.elapsed();
    })
    .expect("worker scope");
    (merged, wall)
}

/// [`run_workers`] instantiated for one protocol — the single-scheme
/// entry point for binaries that name their scheme statically.
pub fn run_workers_typed<P: CcProtocol>(
    db: &Arc<Database>,
    generators: Vec<Generator>,
    warmup: Duration,
    measure: Duration,
) -> BenchOutcome {
    let stop = AtomicBool::new(false);
    // WAL counter snapshot at the warmup boundary, so the exported
    // flush/fsync counts match the workers' warmup-reset statistics.
    let warm_base = std::sync::Mutex::new(None);
    // The measured window as the stop timer saw it: warmup boundary →
    // stop edge. Measured on the control thread, whose clock starts at
    // the same barrier release the workers' warm deadlines derive from.
    let window = std::sync::Mutex::new(Duration::ZERO);
    let (stats, _) = drive_workers::<P>(
        db,
        generators,
        |ctx, generator| {
            // All workers leave the barrier within one spin round, so each
            // derives the shared warmup deadline from its own release.
            let warm_deadline = Instant::now() + warmup;
            let mut warmed = false;
            let mut measured_start = Instant::now();
            while !stop.load(Ordering::Relaxed) {
                if !warmed && Instant::now() >= warm_deadline {
                    ctx.stats = RunStats::default();
                    measured_start = Instant::now();
                    warmed = true;
                }
                let tmpl = generator();
                crate::executor::run_to_commit(ctx, &tmpl, &stop);
            }
            ctx.stats.elapsed = measured_start.elapsed().as_nanos() as u64;
        },
        // Timer on the spawning thread (running only after the barrier
        // released every worker): snapshot the WAL counters when the
        // warmup ends, arm the stop flag when the measurement ends.
        || {
            std::thread::sleep(warmup);
            let warm_at = Instant::now();
            *warm_base.lock().unwrap() = db.wal_stats();
            std::thread::sleep(measure);
            stop.store(true, Ordering::Relaxed);
            *window.lock().unwrap() = warm_at.elapsed();
        },
    );
    let mut stats = stats;
    let base = warm_base.lock().unwrap().take();
    finalize_wal(db, &mut stats, base);
    let wall = *window.lock().unwrap();
    BenchOutcome { stats, wall }
}

/// Drive `db.config().workers` threads, each repeatedly fetching a
/// transaction template from its generator and executing it to commit
/// (retrying scheduler aborts). Statistics reset after `warmup`; the run
/// ends after `warmup + measure`. The worker loop is monomorphized over
/// the configured scheme — this call is the run's single dispatch point.
pub fn run_workers(
    db: &Arc<Database>,
    generators: Vec<Generator>,
    warmup: Duration,
    measure: Duration,
) -> BenchOutcome {
    crate::schemes::dispatch_protocol!(db.cfg.scheme, P => {
        run_workers_typed::<P>(db, generators, warmup, measure)
    })
}

/// [`run_workers_bounded`] instantiated for one protocol — the
/// single-scheme entry point for binaries that name their scheme
/// statically.
pub fn run_workers_bounded_typed<P: CcProtocol>(
    db: &Arc<Database>,
    generators: Vec<Generator>,
    txns_per_worker: u64,
) -> BenchOutcome {
    let never_stop = AtomicBool::new(false);
    // Start-edge accounting: the wall runs from the barrier release (all
    // workers constructed and pinned) to the last worker finishing its
    // quota — thread spawn and context construction are not measured.
    let (stats, wall) = drive_workers::<P>(
        db,
        generators,
        |ctx, generator| {
            let began = Instant::now();
            for _ in 0..txns_per_worker {
                let tmpl = generator();
                crate::executor::run_to_commit(ctx, &tmpl, &never_stop);
            }
            ctx.stats.elapsed = began.elapsed().as_nanos() as u64;
        },
        || {},
    );
    let mut stats = stats;
    // No warmup reset here: the whole bounded run is the window.
    finalize_wal(db, &mut stats, None);
    BenchOutcome { stats, wall }
}

/// Like [`run_workers`], but each worker executes **exactly**
/// `txns_per_worker` templates instead of running for a wall-clock window.
/// With one worker (no cross-thread interleaving) the outcome — commit and
/// abort counts, final database state — is a pure function of the
/// generator seeds, which is what the seeded-replay determinism tests pin:
/// any nondeterminism they catch is a regression in the workload
/// generators or the engine, not scheduling noise.
pub fn run_workers_bounded(
    db: &Arc<Database>,
    generators: Vec<Generator>,
    txns_per_worker: u64,
) -> BenchOutcome {
    run_workers_bounded_via(db, generators, txns_per_worker, DispatchMode::Mono)
}

/// [`run_workers_bounded`] with an explicit [`DispatchMode`] — the
/// dispatch micro-comparison drives both paths over identical seeded
/// workloads and reports the difference.
pub fn run_workers_bounded_via(
    db: &Arc<Database>,
    generators: Vec<Generator>,
    txns_per_worker: u64,
    mode: DispatchMode,
) -> BenchOutcome {
    match mode {
        DispatchMode::Enum => {
            run_workers_bounded_typed::<AnyScheme>(db, generators, txns_per_worker)
        }
        DispatchMode::Mono => crate::schemes::dispatch_protocol!(db.cfg.scheme, P => {
            run_workers_bounded_typed::<P>(db, generators, txns_per_worker)
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abyss_common::CcScheme;
    use abyss_storage::{row, Catalog, Schema};

    fn db(scheme: CcScheme, workers: u32) -> Arc<Database> {
        let mut cat = Catalog::new();
        cat.add_table("t", Schema::key_plus_payload(2, 8), 1000);
        let db = Database::new(crate::config::EngineConfig::new(scheme, workers), cat).unwrap();
        db.load_table(0, 0..100u64, |s, r, k| {
            row::set_u64(s, r, 0, k);
            row::set_u64(s, r, 1, 100);
        })
        .unwrap();
        db
    }

    fn smoke_worker<P: CcProtocol>(db: &Arc<Database>) {
        let scheme = db.scheme();
        let mut ctx = db.worker_as::<P>(0);
        // read + update + commit
        ctx.run_txn(&[0, 1], |t| {
            let v = t.read_u64(0, 5, 1)?;
            assert_eq!(v, 100);
            t.update(0, 5, |s, r| row::set_u64(s, r, 1, v + 1))?;
            Ok(())
        })
        .unwrap();
        // the write is visible to the next transaction
        ctx.run_txn(&[0, 1], |t| {
            assert_eq!(t.read_u64(0, 5, 1)?, 101);
            Ok(())
        })
        .unwrap();
        // user abort rolls back
        let r: Result<(), TxnError> = ctx.run_txn(&[0, 1], |t| {
            t.update(0, 5, |s, r| row::set_u64(s, r, 1, 999))?;
            Err(TxnError::Abort(AbortReason::UserAbort))
        });
        assert!(matches!(r, Err(TxnError::Abort(AbortReason::UserAbort))));
        ctx.run_txn(&[0, 1], |t| {
            assert_eq!(
                t.read_u64(0, 5, 1)?,
                101,
                "{scheme}: user abort must roll back"
            );
            Ok(())
        })
        .unwrap();
        // counter update returns the old value
        let old = ctx
            .run_txn(&[0, 1], |t| t.update_counter(0, 7, 1, 5))
            .unwrap();
        assert_eq!(old, 100);
        assert_eq!(ctx.run_txn(&[0, 1], |t| t.read_u64(0, 7, 1)).unwrap(), 105);
        // insert then read back
        ctx.run_txn(&[0, 1], |t| {
            t.insert(0, 500, |s, r| {
                row::set_u64(s, r, 0, 500);
                row::set_u64(s, r, 1, 42);
            })
        })
        .unwrap();
        assert_eq!(ctx.run_txn(&[0, 1], |t| t.read_u64(0, 500, 1)).unwrap(), 42);
    }

    /// The same smoke transaction flow through the runtime shim *and* the
    /// monomorphized protocol — both dispatch flavors must behave alike.
    fn smoke_single_worker(scheme: CcScheme) {
        let shim_db = db(scheme, 2);
        smoke_worker::<AnyScheme>(&shim_db);
        let mono_db = db(scheme, 2);
        crate::schemes::dispatch_protocol!(scheme, P => smoke_worker::<P>(&mono_db));
    }

    #[test]
    fn single_worker_no_wait() {
        smoke_single_worker(CcScheme::NoWait);
    }

    /// Regression: backoff jitter seeds must be distinct, well-mixed, and
    /// non-zero per worker. The old seed expression differed only in a few
    /// middle bits across workers (and not at all in the xorshift-relevant
    /// low/high bits), so neighboring workers drew near-identical jitter
    /// and backed off in lockstep.
    #[test]
    fn backoff_jitter_streams_differ_across_workers() {
        let db = db(CcScheme::NoWait, 4);
        let mut a = db.worker(0);
        let mut b = db.worker(1);
        let draws_a: Vec<u64> = (0..8).map(|_| a.jitter_draw()).collect();
        let draws_b: Vec<u64> = (0..8).map(|_| b.jitter_draw()).collect();
        for (i, (x, y)) in draws_a.iter().zip(&draws_b).enumerate() {
            assert_ne!(x, y, "draw {i} identical across workers");
            assert_ne!(*x, 0, "worker 0 draw {i} is zero (absorbing state)");
            assert_ne!(*y, 0, "worker 1 draw {i} is zero (absorbing state)");
        }
        // The sleep path uses `jitter % base_us`: the *low bits* must
        // decorrelate too, not just the full words.
        let low_a: Vec<u64> = draws_a.iter().map(|v| v % 25).collect();
        let low_b: Vec<u64> = draws_b.iter().map(|v| v % 25).collect();
        assert_ne!(low_a, low_b, "low-bit jitter identical across workers");
    }

    #[test]
    fn single_worker_dl_detect() {
        smoke_single_worker(CcScheme::DlDetect);
    }

    #[test]
    fn single_worker_wait_die() {
        smoke_single_worker(CcScheme::WaitDie);
    }

    #[test]
    fn single_worker_timestamp() {
        smoke_single_worker(CcScheme::Timestamp);
    }

    #[test]
    fn single_worker_mvcc() {
        smoke_single_worker(CcScheme::Mvcc);
    }

    #[test]
    fn single_worker_occ() {
        smoke_single_worker(CcScheme::Occ);
    }

    #[test]
    fn single_worker_hstore() {
        smoke_single_worker(CcScheme::HStore);
    }

    #[test]
    fn single_worker_silo() {
        smoke_single_worker(CcScheme::Silo);
    }

    #[test]
    fn single_worker_tictoc() {
        smoke_single_worker(CcScheme::TicToc);
    }

    /// The shim's hand-written scheme→scan-driver mapping must stay in
    /// lockstep with the static impls' `CcProtocol::scan` choices: run an
    /// identical insert/delete/scan history through both flavors and
    /// compare what the scans observed (rows and retry accounting).
    #[test]
    fn shim_and_mono_scan_drivers_agree() {
        fn scan_history<P: CcProtocol>(db: &Arc<Database>) -> (usize, u64, Vec<u64>) {
            let scheme = db.scheme();
            let parts: &[u32] = if scheme == CcScheme::HStore {
                &[0]
            } else {
                &[]
            };
            let mut ctx = db.worker_as::<P>(0);
            ctx.run_txn(parts, |t| {
                t.insert(0, 25, |s, d| {
                    row::set_u64(s, d, 0, 25);
                    row::set_u64(s, d, 1, 7)
                })
            })
            .unwrap();
            ctx.run_txn(parts, |t| t.delete(0, 22)).unwrap();
            let mut keys = Vec::new();
            let n = ctx
                .run_txn(parts, |t| {
                    keys.clear();
                    t.scan(0, 18, 27, |k, _, _| keys.push(k))
                })
                .unwrap();
            (n, ctx.stats.scans, keys)
        }
        for scheme in CcScheme::ALL {
            let build = || {
                let mut cat = Catalog::new();
                cat.add_ordered_table("t", Schema::key_plus_payload(2, 8), 100);
                let db = Database::new(crate::config::EngineConfig::new(scheme, 1), cat).unwrap();
                db.load_table(0, (0..40u64).filter(|k| k % 2 == 0), |s, r, k| {
                    row::set_u64(s, r, 0, k);
                    row::set_u64(s, r, 1, k)
                })
                .unwrap();
                db
            };
            let shim = scan_history::<AnyScheme>(&build());
            let mono = crate::schemes::dispatch_protocol!(scheme, P => scan_history::<P>(&build()));
            assert_eq!(shim, mono, "{scheme}: shim and mono scans diverged");
            assert_eq!(
                shim.2,
                vec![18, 20, 24, 25, 26],
                "{scheme}: wrong scan result"
            );
        }
    }

    #[test]
    #[should_panic(expected = "instantiated against")]
    fn mismatched_protocol_is_rejected() {
        let db = db(CcScheme::NoWait, 1);
        let _ = WorkerCtx::<crate::schemes::Silo>::new(db, 0);
    }

    #[test]
    fn insert_then_delete_then_abort_leaves_no_trace() {
        // Eager schemes publish inserts and withdraw deletes immediately;
        // an abort after insert+delete of the same key must not resurrect
        // the key from the delete's undo record.
        for scheme in [CcScheme::NoWait, CcScheme::HStore] {
            let mut cat = Catalog::new();
            cat.add_ordered_table("t", Schema::key_plus_payload(1, 8), 100);
            let db = Database::new(crate::config::EngineConfig::new(scheme, 2), cat).unwrap();
            let mut ctx = db.worker(0);
            let r: Result<(), TxnError> = ctx.run_txn(&[0, 1], |t| {
                t.insert(0, 7, |s, d| row::set_u64(s, d, 0, 7))?;
                t.delete(0, 7)?;
                Err(TxnError::Abort(AbortReason::UserAbort))
            });
            assert!(matches!(r, Err(TxnError::Abort(AbortReason::UserAbort))));
            assert!(
                db.peek(0, 7).is_err(),
                "{scheme}: aborted insert+delete resurrected the key"
            );
            // The key space is clean: a fresh insert succeeds.
            ctx.run_txn(&[0, 1], |t| t.insert(0, 7, |s, d| row::set_u64(s, d, 0, 7)))
                .unwrap();
            assert!(db.peek(0, 7).is_ok());
        }
    }

    #[test]
    fn missing_key_is_a_db_error_not_an_abort() {
        let db = db(CcScheme::NoWait, 1);
        let mut ctx = db.worker(0);
        ctx.begin(&[], None).unwrap();
        let r = ctx.read(0, 9999);
        assert!(matches!(r, Err(TxnError::Db(DbError::KeyNotFound { .. }))));
        ctx.abort(AbortReason::UserAbort);
    }
}
