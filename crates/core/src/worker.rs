//! Per-thread worker contexts: the public transaction API, scheme
//! dispatch, and the multi-threaded benchmark driver.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use abyss_common::{AbortReason, CcScheme, DbError, Key, PartId, RowIdx, RunStats, TableId, Ts};
use abyss_storage::{MemPool, Schema};

use crate::db::Database;
use crate::schemes::{hstore, mvcc, occ, silo, tictoc, timestamp, twopl, ReadRef, SchemeEnv};
use crate::ts::TsHandle;
use crate::txn::{make_txn_id, NodeSetEntry, RedoEntry, TxnState, GAP_ROW};

/// Errors surfaced by the transaction API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnError {
    /// The transaction must abort (possibly retryable).
    Abort(AbortReason),
    /// A non-transactional error (missing key, bad schema, ...).
    Db(DbError),
}

impl From<AbortReason> for TxnError {
    fn from(r: AbortReason) -> Self {
        TxnError::Abort(r)
    }
}

impl From<DbError> for TxnError {
    fn from(e: DbError) -> Self {
        TxnError::Db(e)
    }
}

impl std::fmt::Display for TxnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TxnError::Abort(r) => write!(f, "transaction aborted: {r}"),
            TxnError::Db(e) => write!(f, "database error: {e}"),
        }
    }
}

impl std::error::Error for TxnError {}

/// A per-thread execution context. Create one per worker thread with
/// [`Database::worker`]; it is `Send` but not `Sync` (one thread at a
/// time), mirroring the paper's one-worker-per-core model.
pub struct WorkerCtx {
    pub(crate) db: Arc<Database>,
    pub(crate) worker: u32,
    pub(crate) ts_handle: TsHandle,
    pub(crate) seq: u64,
    pub(crate) pool: MemPool,
    pub(crate) st: TxnState,
    /// Per-worker statistics (commits/aborts recorded by the driver; wait
    /// time recorded by the schemes).
    pub stats: RunStats,
    in_txn: bool,
    /// Cheap xorshift state for abort backoff jitter.
    jitter: u64,
    /// Consecutive scheduler aborts of the current template (drives the
    /// exponential abort penalty; reset on commit).
    consec_aborts: u32,
    /// SILO: this worker's previous commit TID (epoch-composed, see
    /// [`crate::epoch`]); successive commit TIDs are strictly increasing.
    last_tid: u64,
}

impl WorkerCtx {
    pub(crate) fn new(db: Arc<Database>, worker: u32) -> Self {
        let ts_handle = db.ts.handle(worker);
        Self {
            db,
            worker,
            ts_handle,
            seq: 0,
            pool: MemPool::new(),
            st: TxnState::default(),
            stats: RunStats::default(),
            in_txn: false,
            jitter: 0x9E37_79B9 ^ u64::from(worker) << 16 | 1,
            consec_aborts: 0,
            last_tid: 0,
        }
    }

    /// The worker id.
    pub fn worker_id(&self) -> u32 {
        self.worker
    }

    /// The database this context executes against.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// The timestamp of the current transaction (0 when the scheme uses
    /// none).
    pub fn current_ts(&self) -> Ts {
        self.st.ts
    }

    /// SILO: the TID of this worker's most recent commit (0 before the
    /// first one). Other schemes always report 0.
    pub fn last_commit_tid(&self) -> u64 {
        self.last_tid
    }

    fn env(&mut self) -> SchemeEnv<'_> {
        SchemeEnv {
            db: &self.db,
            st: &mut self.st,
            pool: &mut self.pool,
            worker: self.worker,
            stats: &mut self.stats,
        }
    }

    /// Begin a transaction. `partitions` must list every partition the
    /// transaction will touch (H-STORE requirement; other schemes ignore
    /// it). `reuse_ts` re-installs a prior timestamp (WAIT_DIE restarts
    /// keep their age; everything else must pass `None`).
    pub fn begin(&mut self, partitions: &[PartId], reuse_ts: Option<Ts>) -> Result<(), TxnError> {
        assert!(!self.in_txn, "begin() while a transaction is active");
        self.seq += 1;
        self.st.txn_id = make_txn_id(self.worker, self.seq);
        let scheme = self.db.cfg.scheme;
        self.st.ts = if scheme.needs_start_ts() {
            match (scheme, reuse_ts) {
                (CcScheme::WaitDie, Some(ts)) => ts,
                _ => {
                    self.stats.ts_allocated += 1;
                    self.ts_handle.alloc()
                }
            }
        } else {
            0
        };
        if scheme == CcScheme::DlDetect {
            self.db.waits.set_active(self.worker, self.st.txn_id);
        }
        if matches!(scheme, CcScheme::Silo | CcScheme::TicToc) || self.db.wal.is_some() {
            // Register in the current epoch (SILO: commit identity + GC;
            // TICTOC: the quiescence horizon alone; with logging on,
            // every scheme: the group-commit flush horizon — a worker
            // stays registered from begin until after its WAL append, so
            // `safe_epoch` bounds the epochs unflushed records can carry).
            self.db.epoch.enter(self.worker);
        }
        self.in_txn = true;
        if scheme == CcScheme::HStore {
            let sorted = {
                let mut p = partitions.to_vec();
                p.sort_unstable();
                p.dedup();
                p
            };
            if let Err(r) = hstore::acquire_partitions(&mut self.env(), &sorted) {
                self.rollback(r);
                return Err(TxnError::Abort(r));
            }
        }
        Ok(())
    }

    /// Post-access delete guard: the key→row binding must still hold
    /// *after* the scheme admitted the access. A concurrent transactional
    /// delete that committed between our index probe and the scheme's
    /// admission has already withdrawn the entry (2PL holds the X lock
    /// through its commit-time removal; OCC/SILO bump the word; MVCC
    /// resolves after removal), so a stale row reference surfaces here as
    /// the same `KeyNotFound` a fresh probe would produce — instead of
    /// resurrecting the dead row. TIMESTAMP needs no probe (deleted rows
    /// are tombstoned with `wts = ∞`), and H-STORE's partition ownership
    /// excludes concurrent deleters entirely.
    fn check_not_deleted(&self, table: TableId, key: Key, row: RowIdx) -> Result<(), TxnError> {
        match self.db.cfg.scheme {
            CcScheme::Timestamp | CcScheme::HStore => Ok(()),
            _ => {
                if self.db.indexes[table as usize].find(key) == Some(row) {
                    Ok(())
                } else {
                    Err(TxnError::Db(DbError::KeyNotFound { table, key }))
                }
            }
        }
    }

    /// Read the row for `key`, returning its bytes. Under 2PL/H-STORE this
    /// is the row in place (stable until commit); under the T/O schemes it
    /// is the transaction's private copy.
    pub fn read(&mut self, table: TableId, key: Key) -> Result<&[u8], TxnError> {
        debug_assert!(self.in_txn, "read outside a transaction");
        let row = self.db.index_get(table, key)?;
        let len = self.db.tables[table as usize].row_size();
        let r = match self.db.cfg.scheme {
            CcScheme::NoWait | CcScheme::DlDetect | CcScheme::WaitDie => {
                twopl::read(&mut self.env(), table, row)
            }
            CcScheme::Timestamp => timestamp::read(&mut self.env(), table, row),
            CcScheme::Mvcc => mvcc::read(&mut self.env(), table, row),
            CcScheme::Occ => occ::read(&mut self.env(), table, row),
            CcScheme::HStore => hstore::read(&mut self.env(), table, row),
            CcScheme::Silo => silo::read(&mut self.env(), table, row),
            CcScheme::TicToc => tictoc::read(&mut self.env(), table, row),
        }?;
        self.check_not_deleted(table, key, row)?;
        Ok(match r {
            // SAFETY: the pointer targets the table arena; the scheme
            // guarantees stability until commit/abort, and `&mut self`
            // prevents any interleaved write through this context.
            ReadRef::InPlace { ptr, len } => unsafe { std::slice::from_raw_parts(ptr, len) },
            ReadRef::Rbuf(i) => &self.st.rbuf[i].data[..len],
        })
    }

    /// Read one `u64` column of `key`'s row.
    pub fn read_u64(&mut self, table: TableId, key: Key, col: usize) -> Result<u64, TxnError> {
        let schema = self.db.schema(table).clone();
        let data = self.read(table, key)?;
        Ok(abyss_storage::row::get_u64(&schema, data, col))
    }

    /// When logging is on: a pool block (plus the row length) to capture
    /// a write's after-image into, right where the scheme applies the
    /// user's mutation — scheme-independent, whether the bytes land in a
    /// private workspace (T/O, OCC) or the table arena (2PL, H-STORE).
    fn log_capture_buf(
        &mut self,
        table: TableId,
    ) -> Option<(abyss_storage::mempool::PoolBlock, usize)> {
        if self.db.wal.is_some() {
            let len = self.db.tables[table as usize].row_size();
            // Uninit is safe: the wrapper copies the full `len` prefix and
            // the WAL append reads exactly that prefix.
            Some((self.pool.alloc_uninit(len), len))
        } else {
            None
        }
    }

    /// Record `key`'s captured after-image in the transaction's redo
    /// buffer (latest write per key wins).
    fn redo_put(&mut self, table: TableId, key: Key, image: abyss_storage::mempool::PoolBlock) {
        if let Some(e) = self
            .st
            .redo
            .iter_mut()
            .find(|e| e.table == table && e.key == key)
        {
            if let Some(old) = e.image.replace(image) {
                self.pool.free(old);
            }
            return;
        }
        self.st.redo.push(RedoEntry {
            table,
            key,
            image: Some(image),
        });
    }

    /// Record `key`'s deletion in the transaction's redo buffer.
    fn redo_del(&mut self, table: TableId, key: Key) {
        if let Some(e) = self
            .st
            .redo
            .iter_mut()
            .find(|e| e.table == table && e.key == key)
        {
            if let Some(old) = e.image.take() {
                self.pool.free(old);
            }
            return;
        }
        self.st.redo.push(RedoEntry {
            table,
            key,
            image: None,
        });
    }

    /// Read-modify-write the row for `key`: `f` receives the schema and
    /// the (current) row image to mutate.
    pub fn update(
        &mut self,
        table: TableId,
        key: Key,
        f: impl FnOnce(&Schema, &mut [u8]),
    ) -> Result<(), TxnError> {
        debug_assert!(self.in_txn, "update outside a transaction");
        let row = self.db.index_get(table, key)?;
        let mut cap = self.log_capture_buf(table);
        let wrap = |s: &Schema, d: &mut [u8]| {
            f(s, d);
            if let Some((buf, len)) = cap.as_mut() {
                buf[..*len].copy_from_slice(&d[..*len]);
            }
        };
        let res = match self.db.cfg.scheme {
            CcScheme::NoWait | CcScheme::DlDetect | CcScheme::WaitDie => {
                twopl::write(&mut self.env(), table, row, wrap)
            }
            CcScheme::Timestamp => timestamp::write(&mut self.env(), table, row, wrap),
            CcScheme::Mvcc => mvcc::write(&mut self.env(), table, row, wrap),
            CcScheme::Occ => occ::write(&mut self.env(), table, row, wrap),
            CcScheme::HStore => hstore::write(&mut self.env(), table, row, wrap),
            CcScheme::Silo => silo::write(&mut self.env(), table, row, wrap),
            CcScheme::TicToc => tictoc::write(&mut self.env(), table, row, wrap),
        };
        match (res, cap) {
            (Ok(()), Some((buf, _))) => {
                self.redo_put(table, key, buf);
            }
            (Ok(()), None) => {}
            (Err(r), cap) => {
                if let Some((buf, _)) = cap {
                    self.pool.free(buf);
                }
                return Err(TxnError::Abort(r));
            }
        }
        self.check_not_deleted(table, key, row)
    }

    /// Atomically add `delta` to a `u64` column, returning the previous
    /// value as this transaction observes it (TPC-C's `D_NEXT_O_ID`).
    pub fn update_counter(
        &mut self,
        table: TableId,
        key: Key,
        col: usize,
        delta: u64,
    ) -> Result<u64, TxnError> {
        let mut old = 0;
        self.update(table, key, |schema, row| {
            old = abyss_storage::row::fetch_add_u64(schema, row, col, delta);
        })?;
        Ok(old)
    }

    /// Insert a fresh row under `key`; `f` initializes the image.
    pub fn insert(
        &mut self,
        table: TableId,
        key: Key,
        f: impl FnOnce(&Schema, &mut [u8]),
    ) -> Result<(), TxnError> {
        debug_assert!(self.in_txn, "insert outside a transaction");
        let mut cap = self.log_capture_buf(table);
        let wrap = |s: &Schema, d: &mut [u8]| {
            f(s, d);
            if let Some((buf, len)) = cap.as_mut() {
                buf[..*len].copy_from_slice(&d[..*len]);
            }
        };
        let res = match self.db.cfg.scheme {
            CcScheme::NoWait | CcScheme::DlDetect | CcScheme::WaitDie => {
                twopl::insert(&mut self.env(), table, key, wrap)
            }
            CcScheme::Timestamp => timestamp::insert(&mut self.env(), table, key, wrap),
            CcScheme::Mvcc => mvcc::insert(&mut self.env(), table, key, wrap),
            CcScheme::Occ => occ::insert(&mut self.env(), table, key, wrap),
            CcScheme::HStore => hstore::insert(&mut self.env(), table, key, wrap),
            CcScheme::Silo => silo::insert(&mut self.env(), table, key, wrap),
            CcScheme::TicToc => tictoc::insert(&mut self.env(), table, key, wrap),
        };
        match (res, cap) {
            (Ok(()), Some((buf, _))) => {
                self.redo_put(table, key, buf);
                Ok(())
            }
            (Ok(()), None) => Ok(()),
            (Err(r), cap) => {
                if let Some((buf, _)) = cap {
                    self.pool.free(buf);
                }
                Err(TxnError::Abort(r))
            }
        }
    }

    /// Transactionally delete `key`'s row: the hash and ordered indexes
    /// are maintained together, and an abort restores them. Eager schemes
    /// (2PL holds the X lock and withdraws at commit; H-STORE withdraws
    /// immediately under partition ownership); buffered schemes register
    /// the delete and apply it during their commit's write phase.
    pub fn delete(&mut self, table: TableId, key: Key) -> Result<(), TxnError> {
        debug_assert!(self.in_txn, "delete outside a transaction");
        let row = self.db.index_get(table, key)?;
        match self.db.cfg.scheme {
            CcScheme::NoWait | CcScheme::DlDetect | CcScheme::WaitDie => {
                twopl::delete(&mut self.env(), table, key, row)
            }
            CcScheme::Timestamp => timestamp::delete(&mut self.env(), table, key, row),
            CcScheme::Mvcc => mvcc::delete(&mut self.env(), table, key, row),
            CcScheme::Occ => occ::delete(&mut self.env(), table, key, row),
            CcScheme::HStore => hstore::delete(&mut self.env(), table, key, row),
            CcScheme::Silo => silo::delete(&mut self.env(), table, key, row),
            CcScheme::TicToc => tictoc::delete(&mut self.env(), table, key, row),
        }
        .map_err(TxnError::Abort)?;
        if self.db.wal.is_some() {
            self.redo_del(table, key);
        }
        self.check_not_deleted(table, key, row)
    }

    /// Range-scan `table` over `low..=high` (requires an ordered index),
    /// invoking `f` with each qualifying row. Returns the number of rows
    /// observed. Phantom protection is per scheme:
    ///
    /// * **2PL** — a next-key walk: each row (plus the first row beyond
    ///   `high`, or the table's +∞ gap anchor) is S-locked *before* the
    ///   gap below it is trusted, and inserters take an instant X on their
    ///   successor, so no key can appear in a scanned gap;
    /// * **TIMESTAMP / MVCC** — the scan tags every visited leaf with its
    ///   timestamp (`scan_rts`); structural writers with smaller
    ///   timestamps abort at commit, and the scan revalidates leaf
    ///   versions after its reads (MVCC additionally skips rows invisible
    ///   at its snapshot);
    /// * **OCC / SILO / TICTOC** — the visited leaves and their versions
    ///   join the transaction's node set, re-validated at commit
    ///   (Silo/Masstree);
    /// * **H-STORE** — partition ownership already serializes the scan.
    pub fn scan(
        &mut self,
        table: TableId,
        low: Key,
        high: Key,
        mut f: impl FnMut(Key, &Schema, &[u8]),
    ) -> Result<usize, TxnError> {
        debug_assert!(self.in_txn, "scan outside a transaction");
        self.db.require_ordered(table)?;
        self.stats.scans += 1;
        match self.db.cfg.scheme {
            CcScheme::NoWait | CcScheme::DlDetect | CcScheme::WaitDie => {
                self.scan_2pl(table, low, high, &mut f)
            }
            CcScheme::HStore => self.scan_hstore(table, low, high, &mut f),
            CcScheme::Timestamp | CcScheme::Mvcc => self.scan_to(table, low, high, &mut f),
            CcScheme::Occ | CcScheme::Silo | CcScheme::TicToc => {
                self.scan_occ(table, low, high, &mut f)
            }
        }
    }

    /// Sum one `u64` column over a key range (scan convenience).
    pub fn scan_sum_u64(
        &mut self,
        table: TableId,
        low: Key,
        high: Key,
        col: usize,
    ) -> Result<(usize, u64), TxnError> {
        let mut sum = 0u64;
        let n = self.scan(table, low, high, |_, schema, data| {
            sum = sum.wrapping_add(abyss_storage::row::get_u64(schema, data, col));
        })?;
        Ok((n, sum))
    }

    /// 2PL scan: the next-key walk described on [`WorkerCtx::scan`].
    fn scan_2pl(
        &mut self,
        table: TableId,
        low: Key,
        high: Key,
        f: &mut dyn FnMut(Key, &Schema, &[u8]),
    ) -> Result<usize, TxnError> {
        let mut count = 0usize;
        let mut cursor = low;
        loop {
            let succ = self.db.require_ordered(table)?.successor_inclusive(cursor);
            match succ {
                None => {
                    // Lock the +∞ gap anchor, then confirm the tail gap is
                    // still empty (an insert may have raced the lock).
                    {
                        let mut env = self.env();
                        twopl::lock_shared(&mut env, table, GAP_ROW).map_err(TxnError::Abort)?;
                    }
                    if self
                        .db
                        .require_ordered(table)?
                        .successor_inclusive(cursor)
                        .is_some()
                    {
                        self.stats.scan_retries += 1;
                        continue;
                    }
                    break;
                }
                Some((k, row)) => {
                    {
                        let mut env = self.env();
                        twopl::lock_shared(&mut env, table, row).map_err(TxnError::Abort)?;
                    }
                    // Holding S on the successor freezes the gap below it;
                    // re-verify nothing slipped in (or that the row itself
                    // was deleted) before the lock landed.
                    match self.db.require_ordered(table)?.successor_inclusive(cursor) {
                        Some((k2, r2)) if k2 == k && r2 == row => {
                            if k > high {
                                // Boundary row locked: the (last-in-range,
                                // successor) gap is protected. Done.
                                break;
                            }
                            let t = &self.db.tables[table as usize];
                            // SAFETY: the S lock held to commit/abort
                            // excludes writers.
                            let data = unsafe { t.row(row) };
                            f(k, t.schema(), data);
                            count += 1;
                            cursor = match k.checked_add(1) {
                                Some(c) => c,
                                None => break,
                            };
                        }
                        _ => {
                            self.stats.scan_retries += 1;
                        }
                    }
                }
            }
        }
        Ok(count)
    }

    /// H-STORE scan: the owned partitions make the walk exclusive.
    fn scan_hstore(
        &mut self,
        table: TableId,
        low: Key,
        high: Key,
        f: &mut dyn FnMut(Key, &Schema, &[u8]),
    ) -> Result<usize, TxnError> {
        let sr = self.db.require_ordered(table)?.scan(low, high);
        self.stats.scan_retries += sr.retries;
        let t = &self.db.tables[table as usize];
        for &(k, row) in &sr.entries {
            // SAFETY: the transaction owns every partition it touches.
            let data = unsafe { t.row(row) };
            f(k, t.schema(), data);
        }
        Ok(sr.entries.len())
    }

    /// TIMESTAMP / MVCC scan: leaf-tag the range, read per row, then
    /// revalidate leaf versions (see [`WorkerCtx::scan`]).
    fn scan_to(
        &mut self,
        table: TableId,
        low: Key,
        high: Key,
        f: &mut dyn FnMut(Key, &Schema, &[u8]),
    ) -> Result<usize, TxnError> {
        let ts = self.st.ts;
        let is_mvcc = self.db.cfg.scheme == CcScheme::Mvcc;
        let mut attempts = 0u32;
        // Read copies taken by an attempt that fails leaf revalidation are
        // dead; recycle them instead of letting them pile up in rbuf until
        // transaction end (64 retries × scan length would otherwise pin
        // that many pool blocks on the hot scan path).
        let rbuf_base = self.st.rbuf.len();
        'retry: loop {
            attempts += 1;
            if attempts > 64 {
                return Err(TxnError::Abort(AbortReason::ValidationFail));
            }
            for rc in self.st.rbuf.drain(rbuf_base..) {
                self.pool.free(rc.data);
            }
            let (entries, leaves) = {
                let tree = self.db.require_ordered(table)?;
                let sr = tree.scan(low, high);
                self.stats.scan_retries += sr.retries;
                (sr.entries, sr.leaves)
            };
            {
                let tree = self.db.require_ordered(table)?;
                for &(leaf, _) in &leaves {
                    // Publish "a transaction at `ts` read this key range"
                    // *before* reading rows: structural writers with
                    // smaller timestamps will abort against it.
                    tree.leaf_bump_scan_rts(leaf, ts);
                    if tree.leaf_del_wts(leaf) > ts {
                        // A delete serialized after us already removed a
                        // key from this range; this snapshot cannot be
                        // reconstructed.
                        return Err(TxnError::Abort(AbortReason::TsOrderViolation));
                    }
                }
            }
            let mut got: Vec<(Key, usize)> = Vec::with_capacity(entries.len());
            for &(k, row) in &entries {
                let r = {
                    let mut env = self.env();
                    if is_mvcc {
                        mvcc::read_visible(&mut env, table, row).map_err(TxnError::Abort)?
                    } else {
                        Some(timestamp::read(&mut env, table, row).map_err(TxnError::Abort)?)
                    }
                };
                match r {
                    Some(ReadRef::Rbuf(i)) => got.push((k, i)),
                    Some(ReadRef::InPlace { .. }) => {
                        unreachable!("T/O reads always copy")
                    }
                    None => {} // created after this snapshot: skip
                }
            }
            // Revalidate after the reads: any structural change since the
            // leaf snapshot (insert by a later ts, delete, split) restarts
            // the scan so the entry list and the row reads agree.
            let changed = {
                let tree = self.db.require_ordered(table)?;
                leaves.iter().any(|&(l, v)| tree.leaf_version(l) != v)
            };
            if changed {
                self.stats.scan_retries += 1;
                continue 'retry;
            }
            let t = &self.db.tables[table as usize];
            let schema = t.schema();
            let len = t.row_size();
            for &(k, i) in &got {
                f(k, schema, &self.st.rbuf[i].data[..len]);
            }
            return Ok(got.len());
        }
    }

    /// OCC / SILO / TICTOC scan: record the node set, read optimistically.
    fn scan_occ(
        &mut self,
        table: TableId,
        low: Key,
        high: Key,
        f: &mut dyn FnMut(Key, &Schema, &[u8]),
    ) -> Result<usize, TxnError> {
        let (entries, leaves) = {
            let tree = self.db.require_ordered(table)?;
            let sr = tree.scan(low, high);
            self.stats.scan_retries += sr.retries;
            (sr.entries, sr.leaves)
        };
        for &(leaf, version) in &leaves {
            self.st.node_set.push(NodeSetEntry {
                table,
                leaf,
                version,
            });
        }
        let mut got: Vec<(Key, usize)> = Vec::with_capacity(entries.len());
        for &(k, row) in &entries {
            let r = {
                let mut env = self.env();
                occ::read(&mut env, table, row).map_err(TxnError::Abort)?
            };
            match r {
                ReadRef::Rbuf(i) => got.push((k, i)),
                ReadRef::InPlace { .. } => unreachable!("OCC reads always copy"),
            }
        }
        let t = &self.db.tables[table as usize];
        let schema = t.schema();
        let len = t.row_size();
        for &(k, i) in &got {
            f(k, schema, &self.st.rbuf[i].data[..len]);
        }
        Ok(got.len())
    }

    /// Commit. May abort (OCC validation, insert races); the transaction
    /// is fully rolled back before the error returns.
    pub fn commit(&mut self) -> Result<(), TxnError> {
        debug_assert!(self.in_txn, "commit outside a transaction");
        let result = match self.db.cfg.scheme {
            CcScheme::NoWait | CcScheme::DlDetect | CcScheme::WaitDie => {
                // WAL commit point: every X lock is still held and the
                // commit below cannot fail — the record is appended (and
                // under per-commit fsync, forced) before any lock
                // releases, so a conflicting successor can neither draw
                // an earlier serial nor become durable without us.
                self.db
                    .wal_commit_point_csn(self.worker, &mut self.st, &mut self.stats);
                twopl::commit(&mut self.env());
                Ok(())
            }
            // T/O and MVCC serialize by their start timestamp; their WAL
            // commit point sits inside the scheme commit, after the only
            // fallible step (insert publication) and while every prewrite
            // is still pending.
            CcScheme::Timestamp => timestamp::commit(&mut self.env()),
            CcScheme::Mvcc => mvcc::commit(&mut self.env()),
            CcScheme::Occ => {
                // The second (validation) timestamp — OCC's extra trip to
                // the allocator (§5.1).
                self.stats.ts_allocated += 1;
                let _validation_ts = self.ts_handle.alloc();
                occ::commit(&mut self.env())
            }
            CcScheme::HStore => {
                // WAL commit point: the partitions are still owned.
                self.db
                    .wal_commit_point_csn(self.worker, &mut self.st, &mut self.stats);
                hstore::commit(&mut self.env());
                Ok(())
            }
            CcScheme::Silo => {
                // No validation timestamp: the commit TID comes from the
                // epoch subsystem plus per-tuple observations.
                let last = self.last_tid;
                let r = silo::commit(&mut self.env(), last);
                match r {
                    Ok(tid) => {
                        self.last_tid = tid;
                        Ok(())
                    }
                    Err(reason) => Err(reason),
                }
            }
            CcScheme::TicToc => {
                // No timestamp of any kind from outside: the commit
                // timestamp is computed from the read/write sets' tuple
                // words inside the commit itself.
                tictoc::commit(&mut self.env())
            }
        };
        match result {
            Ok(()) => {
                // The redo record was appended at the scheme's WAL commit
                // point, inside its exclusion window and before this
                // worker exits its epoch slot (finish) — the group-commit
                // horizon can never fence past a committed-but-unappended
                // record.
                debug_assert!(
                    self.st.redo.is_empty() || self.db.wal.is_none() || self.st.log_epoch != 0,
                    "scheme committed a write set without passing its WAL commit point"
                );
                self.finish();
                Ok(())
            }
            Err(reason) => {
                self.rollback(reason);
                Err(TxnError::Abort(reason))
            }
        }
    }

    /// Abort the current transaction (user-initiated or after an op
    /// returned an abort error). Rolls everything back.
    pub fn abort(&mut self, reason: AbortReason) {
        debug_assert!(self.in_txn, "abort outside a transaction");
        self.rollback(reason);
    }

    fn rollback(&mut self, _reason: AbortReason) {
        match self.db.cfg.scheme {
            CcScheme::NoWait | CcScheme::DlDetect | CcScheme::WaitDie => {
                twopl::abort(&mut self.env())
            }
            CcScheme::Timestamp => timestamp::abort(&mut self.env()),
            CcScheme::Mvcc => mvcc::abort(&mut self.env()),
            CcScheme::Occ => occ::abort(&mut self.env()),
            CcScheme::HStore => hstore::abort(&mut self.env()),
            CcScheme::Silo => silo::abort(&mut self.env()),
            CcScheme::TicToc => tictoc::abort(&mut self.env()),
        }
        self.finish();
    }

    fn finish(&mut self) {
        if self.db.cfg.scheme == CcScheme::DlDetect {
            self.db.waits.clear_active(self.worker);
        }
        if matches!(self.db.cfg.scheme, CcScheme::Silo | CcScheme::TicToc) || self.db.wal.is_some()
        {
            self.db.epoch.exit(self.worker);
        }
        self.st.reset(&mut self.pool);
        self.in_txn = false;
    }

    /// Run `body` as a transaction, retrying scheduler aborts until it
    /// commits. Returns the body's value, the first non-retryable abort,
    /// or the first database error.
    pub fn run_txn<R>(
        &mut self,
        partitions: &[PartId],
        mut body: impl FnMut(&mut WorkerCtx) -> Result<R, TxnError>,
    ) -> Result<R, TxnError> {
        // The abort penalty escalates per retry of *this* template only.
        self.consec_aborts = 0;
        let mut reuse_ts = None;
        loop {
            match self.begin(partitions, reuse_ts) {
                Ok(()) => {}
                Err(TxnError::Abort(r)) if r.is_retryable() => {
                    self.stats.record_abort(r);
                    self.backoff();
                    continue;
                }
                Err(e) => return Err(e),
            }
            reuse_ts = Some(self.st.ts);
            match body(self) {
                Ok(v) => match self.commit() {
                    Ok(()) => return Ok(v),
                    Err(TxnError::Abort(r)) if r.is_retryable() => {
                        self.stats.record_abort(r);
                        self.backoff();
                    }
                    Err(e) => return Err(e),
                },
                Err(TxnError::Abort(r)) => {
                    self.abort(r);
                    if r.is_retryable() {
                        self.stats.record_abort(r);
                        self.backoff();
                    } else {
                        return Err(TxnError::Abort(r));
                    }
                }
                Err(e) => {
                    self.abort(AbortReason::UserAbort);
                    return Err(e);
                }
            }
        }
    }

    /// Randomized abort penalty before a restart (the paper's
    /// restart-in-same-worker model; DBx1000's `ABORT_PENALTY` is 25 µs).
    ///
    /// The first retry only spins briefly, but repeated aborts of the same
    /// template escalate exponentially into real (descheduling) sleeps.
    /// Without the escalation, hot-key restart storms under the T/O
    /// schemes can livelock an oversubscribed host: every worker keeps
    /// re-reading with a fresh timestamp, pushing the tuple's `rts` past
    /// every concurrent writer, and no one ever commits.
    pub(crate) fn backoff(&mut self) {
        self.consec_aborts = self.consec_aborts.saturating_add(1);
        self.jitter ^= self.jitter << 13;
        self.jitter ^= self.jitter >> 7;
        self.jitter ^= self.jitter << 17;
        if self.consec_aborts <= 2 {
            let spins = 64 + (self.jitter & 0x3FF);
            for _ in 0..spins {
                std::hint::spin_loop();
            }
            return;
        }
        // Base 25 µs, doubling per consecutive abort up to 1.6 ms, then
        // jittered into [base/2, 1.5·base) — worst case ≈ 2.4 ms.
        let shift = (self.consec_aborts - 3).min(6);
        let base_us = 25u64 << shift;
        let us = base_us / 2 + self.jitter % base_us;
        std::thread::sleep(Duration::from_micros(us));
    }
}

impl std::fmt::Debug for WorkerCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerCtx")
            .field("worker", &self.worker)
            .field("in_txn", &self.in_txn)
            .finish()
    }
}

/// Result of a timed multi-worker run.
#[derive(Debug, Clone)]
pub struct BenchOutcome {
    /// Merged statistics (elapsed is in nanoseconds).
    pub stats: RunStats,
    /// Wall-clock time measured by the driver.
    pub wall: Duration,
}

impl BenchOutcome {
    /// Committed transactions per second.
    pub fn txn_per_sec(&self) -> f64 {
        self.stats.commits as f64 / self.wall.as_secs_f64()
    }
}

/// A per-worker transaction stream.
type Generator = Box<dyn FnMut() -> abyss_common::TxnTemplate + Send>;

/// Driver epilogue when logging is on: record the durable-epoch lag the
/// run ended with (group-commit ack latency, in epochs), then run the
/// clean-shutdown flush (workers are joined ⇒ quiescent) and export the
/// flush counters. `base` is the counter snapshot taken when the
/// measurement window opened (after warmup), so the exported flush/fsync
/// counts cover the same window as the workers' warmup-reset
/// `log_records`/`log_bytes` — not the process lifetime.
fn finalize_wal(db: &Arc<Database>, stats: &mut RunStats, base: Option<abyss_storage::WalStats>) {
    if let Some(w) = db.wal_stats() {
        stats.durable_epoch_lag = db.epoch_manager().current().saturating_sub(w.durable_epoch);
        db.log_flush_all();
        let w = db.wal_stats().expect("wal stats present");
        let base = base.unwrap_or_default();
        stats.log_flushes = w.flushes.saturating_sub(base.flushes);
        stats.log_fsyncs = w.fsyncs.saturating_sub(base.fsyncs);
    }
}

/// The shared benchmark scaffolding: spawn one thread per worker running
/// `body` against its generator, run `control` on the spawning thread
/// (e.g. a stop-flag timer), then join and merge every worker's stats.
/// Both public drivers differ only in their loop-termination policy.
fn drive_workers(
    db: &Arc<Database>,
    mut generators: Vec<Generator>,
    body: impl Fn(&mut WorkerCtx, &mut dyn FnMut() -> abyss_common::TxnTemplate) + Sync,
    control: impl FnOnce(),
) -> RunStats {
    let n = db.cfg.workers as usize;
    assert_eq!(generators.len(), n, "one generator per worker required");
    let mut merged = RunStats::default();
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for (w, mut generator) in generators.drain(..).enumerate() {
            let db = Arc::clone(db);
            let body = &body;
            handles.push(scope.spawn(move |_| {
                let mut ctx = db.worker(w as u32);
                body(&mut ctx, &mut *generator);
                ctx.stats
            }));
        }
        control();
        for h in handles {
            merged.merge(&h.join().expect("worker panicked"));
        }
    })
    .expect("worker scope");
    merged
}

/// Drive `db.config().workers` threads, each repeatedly fetching a
/// transaction template from its generator and executing it to commit
/// (retrying scheduler aborts). Statistics reset after `warmup`; the run
/// ends after `warmup + measure`.
pub fn run_workers(
    db: &Arc<Database>,
    generators: Vec<Generator>,
    warmup: Duration,
    measure: Duration,
) -> BenchOutcome {
    let stop = AtomicBool::new(false);
    let start = Instant::now();
    let warm_deadline = start + warmup;
    // WAL counter snapshot at the warmup boundary, so the exported
    // flush/fsync counts match the workers' warmup-reset statistics.
    let warm_base = std::sync::Mutex::new(None);
    let stats = drive_workers(
        db,
        generators,
        |ctx, generator| {
            let mut warmed = false;
            let mut measured_start = Instant::now();
            while !stop.load(Ordering::Relaxed) {
                if !warmed && Instant::now() >= warm_deadline {
                    ctx.stats = RunStats::default();
                    measured_start = Instant::now();
                    warmed = true;
                }
                let tmpl = generator();
                crate::executor::run_to_commit(ctx, &tmpl, &stop);
            }
            ctx.stats.elapsed = measured_start.elapsed().as_nanos() as u64;
        },
        // Timer on the spawning thread: snapshot the WAL counters when
        // the warmup ends, arm the stop flag when the measurement ends.
        || {
            std::thread::sleep(warmup);
            *warm_base.lock().unwrap() = db.wal_stats();
            std::thread::sleep(measure);
            stop.store(true, Ordering::Relaxed);
        },
    );
    let mut stats = stats;
    let base = warm_base.lock().unwrap().take();
    finalize_wal(db, &mut stats, base);
    BenchOutcome {
        stats,
        wall: start.elapsed().saturating_sub(warmup),
    }
}

/// Like [`run_workers`], but each worker executes **exactly**
/// `txns_per_worker` templates instead of running for a wall-clock window.
/// With one worker (no cross-thread interleaving) the outcome — commit and
/// abort counts, final database state — is a pure function of the
/// generator seeds, which is what the seeded-replay determinism tests pin:
/// any nondeterminism they catch is a regression in the workload
/// generators or the engine, not scheduling noise.
pub fn run_workers_bounded(
    db: &Arc<Database>,
    generators: Vec<Generator>,
    txns_per_worker: u64,
) -> BenchOutcome {
    let never_stop = AtomicBool::new(false);
    let start = Instant::now();
    let stats = drive_workers(
        db,
        generators,
        |ctx, generator| {
            let began = Instant::now();
            for _ in 0..txns_per_worker {
                let tmpl = generator();
                crate::executor::run_to_commit(ctx, &tmpl, &never_stop);
            }
            ctx.stats.elapsed = began.elapsed().as_nanos() as u64;
        },
        || {},
    );
    let mut stats = stats;
    // No warmup reset here: the whole bounded run is the window.
    finalize_wal(db, &mut stats, None);
    BenchOutcome {
        stats,
        wall: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abyss_storage::{row, Catalog, Schema};

    fn db(scheme: CcScheme, workers: u32) -> Arc<Database> {
        let mut cat = Catalog::new();
        cat.add_table("t", Schema::key_plus_payload(2, 8), 1000);
        let db = Database::new(crate::config::EngineConfig::new(scheme, workers), cat).unwrap();
        db.load_table(0, 0..100u64, |s, r, k| {
            row::set_u64(s, r, 0, k);
            row::set_u64(s, r, 1, 100);
        })
        .unwrap();
        db
    }

    fn smoke_single_worker(scheme: CcScheme) {
        let db = db(scheme, 2);
        let mut ctx = db.worker(0);
        // read + update + commit
        ctx.run_txn(&[0, 1], |t| {
            let v = t.read_u64(0, 5, 1)?;
            assert_eq!(v, 100);
            t.update(0, 5, |s, r| row::set_u64(s, r, 1, v + 1))?;
            Ok(())
        })
        .unwrap();
        // the write is visible to the next transaction
        ctx.run_txn(&[0, 1], |t| {
            assert_eq!(t.read_u64(0, 5, 1)?, 101);
            Ok(())
        })
        .unwrap();
        // user abort rolls back
        let r: Result<(), TxnError> = ctx.run_txn(&[0, 1], |t| {
            t.update(0, 5, |s, r| row::set_u64(s, r, 1, 999))?;
            Err(TxnError::Abort(AbortReason::UserAbort))
        });
        assert!(matches!(r, Err(TxnError::Abort(AbortReason::UserAbort))));
        ctx.run_txn(&[0, 1], |t| {
            assert_eq!(t.read_u64(0, 5, 1)?, 101, "user abort must roll back");
            Ok(())
        })
        .unwrap();
        // counter update returns the old value
        let old = ctx
            .run_txn(&[0, 1], |t| t.update_counter(0, 7, 1, 5))
            .unwrap();
        assert_eq!(old, 100);
        assert_eq!(ctx.run_txn(&[0, 1], |t| t.read_u64(0, 7, 1)).unwrap(), 105);
        // insert then read back
        ctx.run_txn(&[0, 1], |t| {
            t.insert(0, 500, |s, r| {
                row::set_u64(s, r, 0, 500);
                row::set_u64(s, r, 1, 42);
            })
        })
        .unwrap();
        assert_eq!(ctx.run_txn(&[0, 1], |t| t.read_u64(0, 500, 1)).unwrap(), 42);
    }

    #[test]
    fn single_worker_no_wait() {
        smoke_single_worker(CcScheme::NoWait);
    }

    #[test]
    fn single_worker_dl_detect() {
        smoke_single_worker(CcScheme::DlDetect);
    }

    #[test]
    fn single_worker_wait_die() {
        smoke_single_worker(CcScheme::WaitDie);
    }

    #[test]
    fn single_worker_timestamp() {
        smoke_single_worker(CcScheme::Timestamp);
    }

    #[test]
    fn single_worker_mvcc() {
        smoke_single_worker(CcScheme::Mvcc);
    }

    #[test]
    fn single_worker_occ() {
        smoke_single_worker(CcScheme::Occ);
    }

    #[test]
    fn single_worker_hstore() {
        smoke_single_worker(CcScheme::HStore);
    }

    #[test]
    fn single_worker_silo() {
        smoke_single_worker(CcScheme::Silo);
    }

    #[test]
    fn single_worker_tictoc() {
        smoke_single_worker(CcScheme::TicToc);
    }

    #[test]
    fn insert_then_delete_then_abort_leaves_no_trace() {
        // Eager schemes publish inserts and withdraw deletes immediately;
        // an abort after insert+delete of the same key must not resurrect
        // the key from the delete's undo record.
        for scheme in [CcScheme::NoWait, CcScheme::HStore] {
            let mut cat = Catalog::new();
            cat.add_ordered_table("t", Schema::key_plus_payload(1, 8), 100);
            let db = Database::new(crate::config::EngineConfig::new(scheme, 2), cat).unwrap();
            let mut ctx = db.worker(0);
            let r: Result<(), TxnError> = ctx.run_txn(&[0, 1], |t| {
                t.insert(0, 7, |s, d| row::set_u64(s, d, 0, 7))?;
                t.delete(0, 7)?;
                Err(TxnError::Abort(AbortReason::UserAbort))
            });
            assert!(matches!(r, Err(TxnError::Abort(AbortReason::UserAbort))));
            assert!(
                db.peek(0, 7).is_err(),
                "{scheme}: aborted insert+delete resurrected the key"
            );
            // The key space is clean: a fresh insert succeeds.
            ctx.run_txn(&[0, 1], |t| t.insert(0, 7, |s, d| row::set_u64(s, d, 0, 7)))
                .unwrap();
            assert!(db.peek(0, 7).is_ok());
        }
    }

    #[test]
    fn missing_key_is_a_db_error_not_an_abort() {
        let db = db(CcScheme::NoWait, 1);
        let mut ctx = db.worker(0);
        ctx.begin(&[], None).unwrap();
        let r = ctx.read(0, 9999);
        assert!(matches!(r, Err(TxnError::Db(DbError::KeyNotFound { .. }))));
        ctx.abort(AbortReason::UserAbort);
    }
}
