//! MVCC — multi-version timestamp ordering (§2.2).
//!
//! Every committed write appends a version tagged with the writer's
//! timestamp to the tuple's chain ([`crate::meta::MvccChain`]). Reads find
//! the newest version with `wts ≤ ts` — they are never rejected for
//! arriving "late" (the paper's headline benefit: non-blocking reads under
//! read-mostly mixes, Fig. 13) — but must wait when an *uncommitted* write
//! with a timestamp between that version and the reader is pending.
//! Writes follow MVTO: if the visible version has already been read by a
//! later transaction (`rts > ts`) or a newer committed version exists, the
//! writer aborts.
//!
//! Chains are garbage-collected to `mvcc_max_versions`; a reader whose
//! timestamp predates the oldest retained version aborts (practically
//! unobserved — it would need to lag by `max_versions` commits).

use std::time::{Duration, Instant};

use abyss_common::{AbortReason, Key, RowIdx, TableId};
use abyss_storage::Schema;

use abyss_common::CcScheme;

use super::{CcProtocol, ReadRef, SchemeEnv};
use crate::meta::{TsWaiter, Version};
use crate::txn::{DeleteEntry, InsertEntry, ReadCopy, WriteEntry};
use crate::worker::{TxnError, WorkerCtx};

/// Multi-version timestamp ordering (version chains per tuple).
pub struct Mvcc;

impl CcProtocol for Mvcc {
    super::scheme_caps!(CcScheme::Mvcc);

    #[inline]
    fn read(env: &mut SchemeEnv<'_>, table: TableId, row: RowIdx) -> Result<ReadRef, AbortReason> {
        read(env, table, row)
    }

    #[inline]
    fn write(
        env: &mut SchemeEnv<'_>,
        table: TableId,
        row: RowIdx,
        f: impl FnOnce(&Schema, &mut [u8]),
    ) -> Result<(), AbortReason> {
        write(env, table, row, f)
    }

    #[inline]
    fn insert(
        env: &mut SchemeEnv<'_>,
        table: TableId,
        key: Key,
        f: impl FnOnce(&Schema, &mut [u8]),
    ) -> Result<(), AbortReason> {
        insert(env, table, key, f)
    }

    #[inline]
    fn delete(
        env: &mut SchemeEnv<'_>,
        table: TableId,
        key: Key,
        row: RowIdx,
    ) -> Result<(), AbortReason> {
        delete(env, table, key, row)
    }

    /// Snapshot-bounded scan read: rows created after this snapshot are
    /// *skipped*, not aborted on.
    #[inline]
    fn read_for_scan(
        env: &mut SchemeEnv<'_>,
        table: TableId,
        row: RowIdx,
    ) -> Result<Option<ReadRef>, AbortReason> {
        read_visible(env, table, row)
    }

    #[inline]
    fn scan(
        ctx: &mut WorkerCtx<Self>,
        table: TableId,
        low: Key,
        high: Key,
        f: &mut dyn FnMut(Key, &Schema, &[u8]),
    ) -> Result<usize, TxnError> {
        ctx.scan_to(table, low, high, f)
    }

    fn commit(env: &mut SchemeEnv<'_>) -> Result<(), AbortReason> {
        commit(env)
    }

    fn abort(env: &mut SchemeEnv<'_>) {
        abort(env);
    }
}

/// Copy the current table row — the chain's initial version on first touch.
fn seed<'a>(t: &'a abyss_storage::Table, row: RowIdx) -> impl FnOnce() -> Box<[u8]> + 'a {
    move || {
        // SAFETY: MVCC never writes the arena row after load; the loaded
        // image is immutable.
        unsafe { t.row(row) }.to_vec().into_boxed_slice()
    }
}

/// MVCC read (see module docs).
fn read(env: &mut SchemeEnv<'_>, table: TableId, row: RowIdx) -> Result<ReadRef, AbortReason> {
    match read_visible(env, table, row)? {
        Some(r) => Ok(r),
        // Required version was garbage-collected (or the row was created
        // after this snapshot — indistinguishable at a point access).
        None => Err(AbortReason::TsOrderViolation),
    }
}

/// MVCC read returning `None` when the tuple has no version visible at
/// this snapshot. The scan path uses this to *skip* rows created by
/// transactions serialized after the scanner (their `wts > ts`) instead
/// of aborting — the snapshot-bounded scan semantics.
pub(super) fn read_visible(
    env: &mut SchemeEnv<'_>,
    table: TableId,
    row: RowIdx,
) -> Result<Option<ReadRef>, AbortReason> {
    if let Some(i) = env.st.wbuf_idx(table, row) {
        let mut copy = env.pool.alloc(env.st.wbuf[i].data.capacity());
        copy.as_mut_slice().copy_from_slice(&env.st.wbuf[i].data);
        env.st.rbuf.push(ReadCopy {
            table,
            row,
            data: copy,
        });
        return Ok(Some(ReadRef::Rbuf(env.st.rbuf.len() - 1)));
    }
    let ts = env.st.ts;
    let me = env.st.txn_id;
    let started = Instant::now();
    let deadline = started + Duration::from_micros(env.db.cfg.wait_cap_us);
    loop {
        let t = &env.db.tables[table as usize];
        {
            let meta = env.db.row_meta(table, row);
            let mut chain = meta.mvcc_chain(seed(t, row));
            let Some(vi) = chain.visible_version(ts) else {
                return Ok(None);
            };
            let vwts = chain.versions[vi].wts;
            let pending = chain
                .prewrites
                .iter()
                .any(|&(p, t2)| p > vwts && p < ts && t2 != me);
            if !pending {
                let v = &mut chain.versions[vi];
                v.rts = v.rts.max(ts);
                let mut buf = env.pool.alloc(v.data.len());
                buf[..v.data.len()].copy_from_slice(&v.data);
                env.st.rbuf.push(ReadCopy {
                    table,
                    row,
                    data: buf,
                });
                return Ok(Some(ReadRef::Rbuf(env.st.rbuf.len() - 1)));
            }
            env.db.park.arm(env.worker);
            chain.waiters.push(TsWaiter {
                ts,
                worker: env.worker,
            });
        }
        let out = env.db.park.wait(env.worker, deadline);
        env.record_wait(started);
        if out == crate::park::WaitOutcome::TimedOut {
            let mut chain = env.db.row_meta(table, row).mvcc_chain(seed(t, row));
            chain.waiters.retain(|w| w.worker != env.worker);
            env.db.park.reset(env.worker);
            return Err(AbortReason::WaitTimeout);
        }
    }
}

/// MVCC read-modify-write (see module docs).
fn write(
    env: &mut SchemeEnv<'_>,
    table: TableId,
    row: RowIdx,
    f: impl FnOnce(&Schema, &mut [u8]),
) -> Result<(), AbortReason> {
    if let Some(i) = env.st.wbuf_idx(table, row) {
        let schema = env.db.tables[table as usize].schema();
        f(schema, env.st.wbuf[i].data.as_mut_slice());
        return Ok(());
    }
    let ts = env.st.ts;
    let me = env.st.txn_id;
    let started = Instant::now();
    let deadline = started + Duration::from_micros(env.db.cfg.wait_cap_us);
    loop {
        let t = &env.db.tables[table as usize];
        let mut buf;
        {
            let meta = env.db.row_meta(table, row);
            let mut chain = meta.mvcc_chain(seed(t, row));
            let Some(vi) = chain.visible_version(ts) else {
                return Err(AbortReason::TsOrderViolation);
            };
            // MVTO write rules.
            if vi != chain.versions.len() - 1 {
                // A committed version newer than ts exists.
                return Err(AbortReason::MvccWriteConflict);
            }
            if chain.versions[vi].rts > ts {
                // A later reader already saw the version we would replace.
                return Err(AbortReason::MvccWriteConflict);
            }
            let vwts = chain.versions[vi].wts;
            let pending = chain
                .prewrites
                .iter()
                .any(|&(p, t2)| p > vwts && p < ts && t2 != me);
            if pending {
                env.db.park.arm(env.worker);
                chain.waiters.push(TsWaiter {
                    ts,
                    worker: env.worker,
                });
                drop(chain);
                let out = env.db.park.wait(env.worker, deadline);
                env.record_wait(started);
                if out == crate::park::WaitOutcome::TimedOut {
                    let mut chain = env.db.row_meta(table, row).mvcc_chain(seed(t, row));
                    chain.waiters.retain(|w| w.worker != env.worker);
                    env.db.park.reset(env.worker);
                    return Err(AbortReason::WaitTimeout);
                }
                continue;
            }
            // A pending prewrite *above* ts means a younger RMW writer based
            // itself on the same version; its rts bump hasn't happened (it
            // reads at its own ts > ours), but committing under it would
            // hand it a stale base. MVTO resolution: abort the older writer.
            if chain.prewrites.iter().any(|&(p, t2)| p > ts && t2 != me) {
                return Err(AbortReason::MvccWriteConflict);
            }
            // The RMW reads the visible version.
            let v = &mut chain.versions[vi];
            v.rts = v.rts.max(ts);
            buf = env.pool.alloc(v.data.len());
            buf[..v.data.len()].copy_from_slice(&v.data);
            chain.prewrites.push((ts, me));
        }
        let schema = t.schema();
        f(schema, &mut buf[..t.row_size()]);
        env.st.wbuf.push(WriteEntry {
            table,
            row,
            data: buf,
        });
        env.st.prewrites.push((table, row));
        return Ok(());
    }
}

/// MVCC delete: admitted under the MVTO write rules (newest version
/// visible, `rts <= ts`, no interfering prewrites — the `rts` check is
/// what stops a delete from serializing before a scan that already
/// observed the row), then registered as a prewrite; the index entries
/// are withdrawn at commit.
fn delete(
    env: &mut SchemeEnv<'_>,
    table: TableId,
    key: Key,
    row: RowIdx,
) -> Result<(), AbortReason> {
    let ts = env.st.ts;
    let me = env.st.txn_id;
    let started = Instant::now();
    let deadline = started + Duration::from_micros(env.db.cfg.wait_cap_us);
    loop {
        let t = &env.db.tables[table as usize];
        {
            let meta = env.db.row_meta(table, row);
            let mut chain = meta.mvcc_chain(seed(t, row));
            let Some(vi) = chain.visible_version(ts) else {
                return Err(AbortReason::TsOrderViolation);
            };
            if vi != chain.versions.len() - 1 || chain.versions[vi].rts > ts {
                return Err(AbortReason::MvccWriteConflict);
            }
            let vwts = chain.versions[vi].wts;
            let pending = chain
                .prewrites
                .iter()
                .any(|&(p, t2)| p > vwts && p < ts && t2 != me);
            if pending {
                env.db.park.arm(env.worker);
                chain.waiters.push(TsWaiter {
                    ts,
                    worker: env.worker,
                });
                drop(chain);
                let out = env.db.park.wait(env.worker, deadline);
                env.record_wait(started);
                if out == crate::park::WaitOutcome::TimedOut {
                    let mut chain = env.db.row_meta(table, row).mvcc_chain(seed(t, row));
                    chain.waiters.retain(|w| w.worker != env.worker);
                    env.db.park.reset(env.worker);
                    return Err(AbortReason::WaitTimeout);
                }
                continue;
            }
            if chain.prewrites.iter().any(|&(p, t2)| p > ts && t2 != me) {
                return Err(AbortReason::MvccWriteConflict);
            }
            let v = &mut chain.versions[vi];
            v.rts = v.rts.max(ts);
            chain.prewrites.push((ts, me));
        }
        env.st.prewrites.push((table, row));
        env.st.deletes.push(DeleteEntry {
            table,
            key,
            row,
            applied: false,
        });
        return Ok(());
    }
}

/// MVCC insert: buffered; the new tuple's chain starts at commit.
fn insert(
    env: &mut SchemeEnv<'_>,
    table: TableId,
    key: Key,
    f: impl FnOnce(&Schema, &mut [u8]),
) -> Result<(), AbortReason> {
    let t = &env.db.tables[table as usize];
    let mut buf = env.pool.alloc(t.row_size());
    f(t.schema(), &mut buf[..t.row_size()]);
    env.st.inserts.push(InsertEntry {
        table,
        key,
        row: None,
        data: Some(buf),
        indexed: false,
    });
    Ok(())
}

/// Commit: turn prewrites into committed versions; publish inserts.
///
/// Inserts run first — they are the only fallible step (duplicate-key
/// races) — and withdraw themselves on failure, so a failed commit leaves
/// the transaction in its uncommitted state for the abort path.
fn commit(env: &mut SchemeEnv<'_>) -> Result<(), AbortReason> {
    let ts = env.st.ts;
    let me = env.st.txn_id;
    let max_versions = env.db.cfg.mvcc_max_versions;

    {
        let inserts = std::mem::take(&mut env.st.inserts);
        let mut applied: Vec<(abyss_common::TableId, Key)> = Vec::new();
        let mut failed = false;
        for ins in inserts {
            let t = &env.db.tables[ins.table as usize];
            let data = ins.data.expect("buffered insert has an image");
            if !failed {
                if let Ok(row) = t.allocate_row() {
                    // SAFETY: fresh unindexed row; also seeds the chain below.
                    unsafe { t.row_mut(row) }.copy_from_slice(&data[..t.row_size()]);
                    {
                        let meta = env.db.row_meta(ins.table, row);
                        let mut chain = meta.mvcc_chain(seed(t, row));
                        // Replace the seed (wts 0) with the creation version.
                        chain.versions[0].wts = ts;
                        chain.versions[0].rts = ts;
                    }
                    // Gap check atomic with publication (leaf lock): a
                    // committed scan with a *later* snapshot already
                    // covered this leaf's range — planting a key behind
                    // it would be a phantom — and an in-flight one fails
                    // its leaf revalidation.
                    match env.db.index_insert_guarded(ins.table, ins.key, row, ts) {
                        Ok(crate::db::OrderedPublish::Done(_)) => {
                            applied.push((ins.table, ins.key));
                        }
                        Ok(crate::db::OrderedPublish::GapProtected) | Err(_) => failed = true,
                    }
                } else {
                    failed = true;
                }
            }
            env.pool.free(data);
        }
        if failed {
            for (table, key) in applied {
                env.db.index_remove(table, key);
            }
            return Err(AbortReason::MvccWriteConflict);
        }
    }

    // WAL commit point: inserts (the only fallible step) are published,
    // every prewrite is still pending — serialization is by `ts`.
    env.wal_commit_point_seq(ts);

    for w in std::mem::take(&mut env.st.wbuf) {
        if env
            .st
            .deletes
            .iter()
            .any(|d| d.table == w.table && d.row == w.row)
        {
            // Written then deleted in the same transaction: the delete wins.
            env.pool.free(w.data);
            continue;
        }
        let t = &env.db.tables[w.table as usize];
        let meta = env.db.row_meta(w.table, w.row);
        let mut chain = meta.mvcc_chain(seed(t, w.row));
        chain.remove_prewrite(me);
        debug_assert!(
            chain.versions.back().map(|v| v.wts < ts).unwrap_or(true),
            "version chain must stay ordered"
        );
        let data = w.data[..t.row_size()].to_vec().into_boxed_slice();
        chain.versions.push_back(Version {
            wts: ts,
            rts: ts,
            data,
        });
        chain.gc(max_versions);
        for waiter in chain.waiters.drain(..) {
            env.db.park.grant(waiter.worker);
        }
        drop(chain);
        env.pool.free(w.data);
    }
    // Deletes: pull the key out of the indexes FIRST — while the prewrite
    // is still pending, so any reader that finds the stale row reference
    // keeps waiting instead of slipping through a "resolved but not yet
    // removed" window — then resolve the prewrite and wake waiters.
    // Scanners holding a stale B+-tree snapshot catch the removal through
    // leaf revalidation; later-arriving scanners with an *older* snapshot
    // abort on `del_wts` (raised atomically with the removal, under the
    // leaf lock).
    for d in std::mem::take(&mut env.st.deletes) {
        let t = &env.db.tables[d.table as usize];
        env.db.index_remove_tagged(d.table, d.key, ts);
        {
            let mut chain = env.db.row_meta(d.table, d.row).mvcc_chain(seed(t, d.row));
            chain.remove_prewrite(me);
            for waiter in chain.waiters.drain(..) {
                env.db.park.grant(waiter.worker);
            }
        }
    }
    env.st.prewrites.clear();
    Ok(())
}

/// Abort: withdraw prewrites and wake blocked readers/writers.
fn abort(env: &mut SchemeEnv<'_>) {
    let me = env.st.txn_id;
    for (table, row) in std::mem::take(&mut env.st.prewrites) {
        let t = &env.db.tables[table as usize];
        let mut chain = env.db.row_meta(table, row).mvcc_chain(seed(t, row));
        chain.remove_prewrite(me);
        for waiter in chain.waiters.drain(..) {
            env.db.park.grant(waiter.worker);
        }
    }
}
