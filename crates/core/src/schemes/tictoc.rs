//! TICTOC — data-driven timestamp OCC (Yu et al., SIGMOD'16), the ninth
//! scheme, and the second modern one grown on top of the paper's seven.
//!
//! Where every T/O scheme in the paper *allocates* timestamps up front —
//! and §4.3 shows the allocator capping all of them by 1000 cores — TICTOC
//! *computes* each transaction's commit timestamp at commit time, purely
//! from the per-tuple `wts`/`rts` words its read and write sets already
//! touched ([`crate::lockword::tictoc`]). Nothing on the commit path is
//! centralized: no allocator (unlike TIMESTAMP/MVCC/OCC) and no global
//! epoch read either (unlike SILO). The protocol:
//!
//! 1. **Read phase** — OCC's, verbatim: seqlock-stable copies against each
//!    tuple's word, the observed (unlocked) word recorded in the read set,
//!    writes buffered privately (shared code in [`super::occ`]).
//! 2. **Lock** — the write + delete sets are latched in canonical
//!    `(table, row)` order via the shared bit-63 lock (deadlock-free).
//! 3. **Commit timestamp** — computed, not allocated:
//!    `ct = max( max over writes of rts+1 , max over reads of wts )`.
//! 4. **Validate + extend** — every read-set entry must still carry its
//!    recorded `wts`; if its current `rts < ct` the entry is revalidated
//!    by *extending* `rts` to `ct` with a CAS (counted in
//!    [`abyss_common::RunStats::rts_extensions`]) rather than aborting —
//!    the read stays valid through `ct` without being re-read. An entry
//!    locked by another committer that still needs an extension aborts.
//!    When an extension overflows the packed delta, the tuple's `wts` is
//!    bumped (`rts` stays exact; concurrent readers abort conservatively).
//! 5. **Node-set validation** — phantom protection for range scans, shared
//!    with OCC/SILO: buffered inserts publish first (rows latched), then
//!    every scanned leaf must still carry its recorded version.
//! 6. **Install** — workspace rows are copied in place and every written,
//!    inserted or deleted tuple's word is released to `wts = rts = ct`.
//!
//! Serializability: reads are valid over `[wts, rts]`, writes happen at
//! `ct > rts` of everything they overwrite and `ct ≥ wts` of everything
//! read, so every committed transaction has a single logical time at which
//! all its accesses are simultaneously valid — timestamp order embeds the
//! serial order with no coordination beyond the tuples themselves.
//!
//! TICTOC registers with the epoch subsystem ([`crate::epoch`]) exactly
//! like SILO — not for commit identity, but to reuse its quiescence
//! horizon as the GC fence for future reclamation (freed rows, retired
//! leaf nodes): `safe_epoch()` bounds what any in-flight TICTOC
//! transaction can still reference.

use std::sync::atomic::Ordering;

use abyss_common::{AbortReason, CcScheme, Key, RowIdx, TableId};
use abyss_storage::Schema;

use super::occ;
use super::{CcProtocol, ReadRef, SchemeEnv};
use crate::lockword::tictoc;
use crate::worker::{TxnError, WorkerCtx};

/// Data-driven timestamp OCC (TicToc, SIGMOD'16).
pub struct TicToc;

impl CcProtocol for TicToc {
    super::scheme_caps!(CcScheme::TicToc);

    /// TICTOC read: optimistic seqlock copy + read-set recording of the
    /// whole `wts`/`rts` word (OCC's read phase, reused verbatim — the
    /// recorded `version` *is* the packed word).
    #[inline]
    fn read(env: &mut SchemeEnv<'_>, table: TableId, row: RowIdx) -> Result<ReadRef, AbortReason> {
        occ::read(env, table, row)
    }

    /// TICTOC write: read-modify-write into the private workspace.
    #[inline]
    fn write(
        env: &mut SchemeEnv<'_>,
        table: TableId,
        row: RowIdx,
        f: impl FnOnce(&Schema, &mut [u8]),
    ) -> Result<(), AbortReason> {
        occ::write(env, table, row, f)
    }

    /// TICTOC insert: buffered until the commit's write phase.
    #[inline]
    fn insert(
        env: &mut SchemeEnv<'_>,
        table: TableId,
        key: Key,
        f: impl FnOnce(&Schema, &mut [u8]),
    ) -> Result<(), AbortReason> {
        occ::insert(env, table, key, f)
    }

    /// TICTOC delete: observed like a read, removed during the write phase.
    #[inline]
    fn delete(
        env: &mut SchemeEnv<'_>,
        table: TableId,
        key: Key,
        row: RowIdx,
    ) -> Result<(), AbortReason> {
        occ::delete(env, table, key, row)
    }

    #[inline]
    fn scan(
        ctx: &mut WorkerCtx<Self>,
        table: TableId,
        low: Key,
        high: Key,
        f: &mut dyn FnMut(Key, &Schema, &[u8]),
    ) -> Result<usize, TxnError> {
        ctx.scan_occ(table, low, high, f)
    }

    /// Validation + write phase (steps 2–6 of the module docs).
    fn commit(env: &mut SchemeEnv<'_>) -> Result<(), AbortReason> {
        commit(env)
    }

    fn abort(env: &mut SchemeEnv<'_>) {
        occ::abort(env);
    }
}

fn commit(env: &mut SchemeEnv<'_>) -> Result<(), AbortReason> {
    let targets = occ::take_commit_lock_targets(env);
    let r = commit_locked(env, &targets);
    occ::put_back_lock_targets(env, targets);
    r
}

fn commit_locked(
    env: &mut SchemeEnv<'_>,
    targets: &[(TableId, RowIdx)],
) -> Result<(), AbortReason> {
    // Step 2: latch the write + delete sets in canonical order.
    occ::lock_targets(env, targets)?;

    // Step 3: compute the commit timestamp from tuple metadata alone.
    // Writes must serialize after every committed read of their targets
    // (rts + 1); reads must serialize at or after the writes they saw.
    let mut commit_ts = 0u64;
    for &(table, row) in targets {
        let word = env.db.row_meta(table, row).word.load(Ordering::Acquire);
        commit_ts = commit_ts.max(tictoc::rts(word) + 1);
    }
    for r in env.st.rset.iter() {
        commit_ts = commit_ts.max(tictoc::wts(r.version));
    }

    // Step 4: validate the read set, extending rts where the recorded
    // window does not yet cover the commit timestamp.
    for r in env.st.rset.iter() {
        let own = targets.binary_search(&(r.table, r.row)).is_ok();
        let word = &env.db.row_meta(r.table, r.row).word;
        let mut cur = word.load(Ordering::Acquire);
        loop {
            if tictoc::wts(cur) != tictoc::wts(r.version) {
                // Someone committed a write over this read since we copied
                // it; the read cannot be valid at any single timestamp.
                occ::unlock_targets(env, targets);
                return Err(AbortReason::ValidationFail);
            }
            if own || tictoc::rts(cur) >= commit_ts {
                break;
            }
            if tictoc::is_locked(cur) {
                // A foreign committer is installing a new wts here; our
                // read window cannot be extended past it.
                occ::unlock_targets(env, targets);
                return Err(AbortReason::ValidationFail);
            }
            let next = tictoc::extend_rts(cur, commit_ts);
            match word.compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => {
                    env.stats.rts_extensions += 1;
                    break;
                }
                Err(now) => cur = now,
            }
        }
    }

    // Step 5: publish inserts (rows latched until install), refresh the
    // node set for our own leaf bumps, then validate the node set — the
    // same phantom fence OCC/SILO use.
    let inserted = match occ::publish_buffered_inserts(env) {
        Ok(v) => v,
        Err(reason) => {
            occ::unlock_targets(env, targets);
            return Err(reason);
        }
    };
    occ::refresh_own_node_set(env, &inserted);
    if !occ::validate_node_set(env) {
        occ::withdraw_published_inserts(env, &inserted);
        occ::unlock_targets(env, targets);
        return Err(AbortReason::ValidationFail);
    }

    // WAL commit point: the computed commit timestamp is the record's
    // serial — a later conflicting writer's cts strictly exceeds ours
    // (its cts ≥ our installed rts + 1), so replay order matches — and
    // the append lands before any write lock releases.
    env.wal_commit_point_seq(commit_ts);

    // Step 6: nothing can fail now. Every touched tuple's word is released
    // to wts = rts = ct: fresh rows become readable, deleted rows' stale
    // readers fail their wts check, written rows carry the new write time.
    let new_word = tictoc::pack(commit_ts, commit_ts);
    for &(table, _, row, _) in &inserted {
        env.db
            .row_meta(table, row)
            .word
            .store(new_word, Ordering::Release);
    }
    let deletes = std::mem::take(&mut env.st.deletes);
    for d in deletes.iter() {
        env.db.index_remove(d.table, d.key);
        env.db
            .row_meta(d.table, d.row)
            .word
            .store(new_word, Ordering::Release);
    }
    for w in std::mem::take(&mut env.st.wbuf) {
        if deletes.iter().any(|d| d.table == w.table && d.row == w.row) {
            env.pool.free(w.data);
            continue;
        }
        let t = &env.db.tables[w.table as usize];
        // SAFETY: we hold the tuple's lock bit; readers' seqlock re-check
        // rejects any copy that overlapped this write.
        let data = unsafe { t.row_mut(w.row) };
        data.copy_from_slice(&w.data[..data.len()]);
        env.db
            .row_meta(w.table, w.row)
            .word
            .store(new_word, Ordering::Release);
        env.pool.free(w.data);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use abyss_common::CcScheme;
    use abyss_storage::{row, Catalog, Schema};

    use crate::config::EngineConfig;
    use crate::db::Database;
    use crate::lockword::tictoc;

    fn tictoc_db(workers: u32) -> Arc<Database> {
        let mut cat = Catalog::new();
        cat.add_table("t", Schema::key_plus_payload(2, 8), 1000);
        let db = Database::new(EngineConfig::new(CcScheme::TicToc, workers), cat).unwrap();
        db.load_table(0, 0..100u64, |s, r, k| {
            row::set_u64(s, r, 0, k);
            row::set_u64(s, r, 1, 100);
        })
        .unwrap();
        db
    }

    fn word_of(db: &Database, key: u64) -> u64 {
        let row = db.index_get(0, key).unwrap();
        db.row_meta(0, row)
            .word
            .load(std::sync::atomic::Ordering::Acquire)
    }

    #[test]
    fn written_tuple_carries_wts_equal_rts() {
        let db = tictoc_db(1);
        let mut ctx = db.worker(0);
        ctx.run_txn(&[], |t| t.update(0, 7, |s, d| row::set_u64(s, d, 1, 777)))
            .unwrap();
        let w = word_of(&db, 7);
        assert!(!tictoc::is_locked(w));
        assert!(tictoc::wts(w) > 0, "committed write must advance wts");
        assert_eq!(tictoc::wts(w), tictoc::rts(w));
    }

    #[test]
    fn wts_is_monotonic_across_commits() {
        let db = tictoc_db(1);
        let mut ctx = db.worker(0);
        let mut last = 0u64;
        for i in 0..5u64 {
            ctx.run_txn(&[], |t| {
                t.update(0, 3, |s, d| row::set_u64(s, d, 1, 200 + i))
            })
            .unwrap();
            let wts = tictoc::wts(word_of(&db, 3));
            assert!(wts > last, "wts must strictly increase on rewrites");
            last = wts;
        }
    }

    #[test]
    fn read_then_write_elsewhere_extends_rts() {
        let db = tictoc_db(1);
        let mut ctx = db.worker(0);
        // Drive key 9's rts up by writing it twice, then commit a txn that
        // reads key 5 and writes key 9: its computed commit timestamp is
        // rts(9)+1 > rts(5), so validating the read of 5 must extend it.
        for _ in 0..2 {
            ctx.run_txn(&[], |t| t.update(0, 9, |s, d| row::set_u64(s, d, 1, 1)))
                .unwrap();
        }
        let rts5_before = tictoc::rts(word_of(&db, 5));
        let ext_before = ctx.stats.rts_extensions;
        ctx.run_txn(&[], |t| {
            let v = t.read_u64(0, 5, 1)?;
            t.update(0, 9, |s, d| row::set_u64(s, d, 1, v))
        })
        .unwrap();
        assert!(
            ctx.stats.rts_extensions > ext_before,
            "commit must extend the read tuple's rts"
        );
        assert!(tictoc::rts(word_of(&db, 5)) > rts5_before);
        // The extension validated the read without changing its data...
        assert_eq!(
            tictoc::wts(word_of(&db, 5)),
            0,
            "rts extension must not disturb wts"
        );
    }

    #[test]
    fn stale_read_set_fails_validation() {
        let db = tictoc_db(2);
        let mut a = db.worker(0);
        let mut b = db.worker(1);
        a.begin(&[], None).unwrap();
        let v = a.read_u64(0, 5, 1).unwrap();
        assert_eq!(v, 100);
        a.update(0, 6, |s, d| row::set_u64(s, d, 1, v + 1)).unwrap();
        b.run_txn(&[], |t| t.update(0, 5, |s, d| row::set_u64(s, d, 1, 999)))
            .unwrap();
        let r = a.commit();
        assert!(
            matches!(
                r,
                Err(crate::worker::TxnError::Abort(
                    abyss_common::AbortReason::ValidationFail
                ))
            ),
            "stale read must fail validation, got {r:?}"
        );
    }

    #[test]
    fn read_only_txn_commits_against_concurrent_writer() {
        // TicToc's headline behaviour: a read-only transaction whose reads
        // span two writer commits still commits — each read is valid over
        // its [wts, rts] window and the computed commit timestamp picks a
        // point inside all of them (no re-read, no abort).
        let db = tictoc_db(2);
        let mut reader = db.worker(0);
        let mut writer = db.worker(1);
        reader.begin(&[], None).unwrap();
        let a = reader.read_u64(0, 1, 1).unwrap();
        // A writer commits to an *unrelated* key between the reads.
        writer
            .run_txn(&[], |t| t.update(0, 50, |s, d| row::set_u64(s, d, 1, 7)))
            .unwrap();
        let b = reader.read_u64(0, 2, 1).unwrap();
        assert_eq!((a, b), (100, 100));
        reader.commit().unwrap();
    }

    #[test]
    fn delta_overflow_during_extension_bumps_wts() {
        // Force a commit timestamp more than DELTA_MAX above a read
        // tuple's wts: the extension must bump the tuple's wts rather than
        // truncate rts, and the committing transaction itself must not be
        // tripped up by its own bump.
        let db = tictoc_db(1);
        let row5 = db.index_get(0, 5).unwrap();
        let row9 = db.index_get(0, 9).unwrap();
        // Plant metadata directly: key 9 already valid far in the future,
        // key 5 untouched. A txn reading 5 and writing 9 commits at
        // rts(9)+1, which overflows 5's delta.
        let far = tictoc::DELTA_MAX + 1000;
        db.row_meta(0, row9)
            .word
            .store(tictoc::pack(far, far), std::sync::atomic::Ordering::Release);
        let mut ctx = db.worker(0);
        ctx.run_txn(&[], |t| {
            let v = t.read_u64(0, 5, 1)?;
            t.update(0, 9, |s, d| row::set_u64(s, d, 1, v))
        })
        .unwrap();
        let w5 = db
            .row_meta(0, row5)
            .word
            .load(std::sync::atomic::Ordering::Acquire);
        assert_eq!(tictoc::rts(w5), far + 1, "rts must reach the commit ts");
        assert_eq!(
            tictoc::wts(w5),
            far + 1 - tictoc::DELTA_MAX,
            "delta overflow must bump wts, not truncate rts"
        );
    }

    #[test]
    fn epoch_quiescence_tracks_tictoc_txns() {
        // TICTOC reuses the epoch subsystem as its GC horizon: a worker
        // inside a transaction pins its entry epoch; outside, it is
        // quiescent.
        let db = tictoc_db(1);
        let em = db.epoch_manager();
        assert_eq!(em.min_active(), None);
        let mut ctx = db.worker(0);
        ctx.begin(&[], None).unwrap();
        let pinned = em.min_active().expect("txn must register in the epoch");
        em.advance();
        assert_eq!(em.min_active(), Some(pinned), "entry epoch stays pinned");
        assert_eq!(em.safe_epoch(), pinned);
        ctx.commit().unwrap();
        assert_eq!(em.min_active(), None, "commit must quiesce the worker");
        assert_eq!(em.safe_epoch(), em.current());
    }
}
