//! The three two-phase-locking variants: NO_WAIT, DL_DETECT, WAIT_DIE.
//!
//! * **NO_WAIT** never touches a queue: shared/exclusive counts live in a
//!   single atomic word per tuple ([`crate::lockword::rw`]) and any denied
//!   CAS aborts the requester — "no centralized point of contention"
//!   (Table 2).
//! * **DL_DETECT** uses per-tuple wait queues plus the partitioned
//!   lock-free waits-for graph of §4.2. The *waiting* thread runs cycle
//!   detection periodically and aborts itself when it finds one (the
//!   cheapest victim that is guaranteed to break the cycle); a configurable
//!   timeout (Fig. 5) bounds the wait either way.
//! * **WAIT_DIE** grants whenever the request is compatible with the
//!   current *owners* (the classical formulation — waiter queues never
//!   block compatible readers), otherwise the requester waits iff it is
//!   older than every conflicting owner and dies otherwise. Every wait
//!   edge therefore points old → young, so no deadlock can form, and
//!   restarted transactions keep their original timestamp so they
//!   eventually become the oldest.
//!
//! Lock upgrades (S → X by the same transaction) are supported on the
//! queue variants when grantable, and otherwise abort; the paper's
//! workloads never upgrade (YCSB deduplicates keys per transaction; TPC-C
//! reads and updates disjoint tuples).

use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use abyss_common::{AbortReason, CcScheme, Key, RowIdx, TableId, TxnId};
use abyss_storage::Schema;

use super::{CcProtocol, ReadRef, SchemeEnv};
use crate::db::Database;
use crate::lockword::rw;
use crate::meta::{LockMode, Owner, RowMeta, Waiter};
use crate::park::WaitOutcome;
use crate::txn::{DeleteEntry, HeldLock, InsertEntry, TxnState, UndoEntry, GAP_ROW};
use crate::worker::{TxnError, WorkerCtx};

/// 2PL with non-waiting deadlock prevention (deny => abort).
pub struct NoWait;
/// 2PL with waits-for-graph deadlock detection.
pub struct DlDetect;
/// 2PL with wait-die deadlock prevention (older waits, younger dies).
pub struct WaitDie;

/// The variant-specific slice of the 2PL protocol: the grant discipline
/// and where lock ownership lives (NO_WAIT packs it into the atomic
/// word; the queue variants keep owner/waiter lists). Everything else —
/// hold tracking, gap locking, undo, the shrink phase — is shared code
/// generic over this trait. [`super::AnyScheme`] implements it by
/// dispatching on the configured scheme.
pub(crate) trait Variant: CcProtocol {
    /// Acquire `mode` on the tuple (the transaction does not hold it yet;
    /// `upgrade` means it holds S and wants X).
    fn acquire(
        env: &mut SchemeEnv<'_>,
        meta: &RowMeta,
        mode: LockMode,
        upgrade: bool,
    ) -> Result<(), AbortReason>;

    /// Release one held lock (shrink phase, failed-insert unwind),
    /// granting any newly compatible waiters.
    fn release_one(db: &Database, txn: TxnId, meta: &RowMeta, mode: LockMode);

    /// Install X ownership of a freshly allocated row *before* it becomes
    /// index-reachable (insert publication).
    fn seed_exclusive(db: &Database, st: &TxnState, meta: &RowMeta);
}

impl Variant for NoWait {
    fn acquire(
        _env: &mut SchemeEnv<'_>,
        meta: &RowMeta,
        mode: LockMode,
        upgrade: bool,
    ) -> Result<(), AbortReason> {
        acquire_no_wait(meta, mode, upgrade)
    }

    fn release_one(_db: &Database, _txn: TxnId, meta: &RowMeta, mode: LockMode) {
        match mode {
            LockMode::Shared => {
                meta.word.fetch_sub(1, Ordering::AcqRel);
            }
            LockMode::Exclusive => {
                meta.word.store(0, Ordering::Release);
            }
        }
    }

    fn seed_exclusive(_db: &Database, _st: &TxnState, meta: &RowMeta) {
        meta.word.store(rw::WRITER, Ordering::Release);
    }
}

impl Variant for DlDetect {
    fn acquire(
        env: &mut SchemeEnv<'_>,
        meta: &RowMeta,
        mode: LockMode,
        upgrade: bool,
    ) -> Result<(), AbortReason> {
        acquire_dl_detect(env, meta, mode, upgrade)
    }

    fn release_one(db: &Database, txn: TxnId, meta: &RowMeta, mode: LockMode) {
        queue_release(db, txn, meta, mode);
    }

    fn seed_exclusive(_db: &Database, st: &TxnState, meta: &RowMeta) {
        queue_seed(st, meta);
    }
}

impl Variant for WaitDie {
    fn acquire(
        env: &mut SchemeEnv<'_>,
        meta: &RowMeta,
        mode: LockMode,
        upgrade: bool,
    ) -> Result<(), AbortReason> {
        acquire_wait_die(env, meta, mode, upgrade)
    }

    fn release_one(db: &Database, txn: TxnId, meta: &RowMeta, mode: LockMode) {
        queue_release(db, txn, meta, mode);
    }

    fn seed_exclusive(_db: &Database, st: &TxnState, meta: &RowMeta) {
        queue_seed(st, meta);
    }
}

/// Queue-variant release: drop ownership, grant newly compatible waiters.
fn queue_release(db: &Database, txn: TxnId, meta: &RowMeta, _mode: LockMode) {
    let mut q = meta.lock_queue();
    q.remove_owner(txn);
    grant_waiters(db, &mut q);
}

/// Queue-variant fresh-row ownership (the queue is necessarily empty: the
/// row is not yet reachable).
fn queue_seed(st: &TxnState, meta: &RowMeta) {
    let mut q = meta.lock_queue();
    q.owners.push(Owner {
        txn: st.txn_id,
        mode: LockMode::Exclusive,
        ts: st.ts,
    });
}

/// The shared [`CcProtocol`] surface of the three variants.
macro_rules! twopl_protocol {
    ($ty:ident, $scheme:expr) => {
        impl CcProtocol for $ty {
            super::scheme_caps!($scheme);

            #[inline]
            fn read(
                env: &mut SchemeEnv<'_>,
                table: TableId,
                row: RowIdx,
            ) -> Result<ReadRef, AbortReason> {
                read::<Self>(env, table, row)
            }

            #[inline]
            fn write(
                env: &mut SchemeEnv<'_>,
                table: TableId,
                row: RowIdx,
                f: impl FnOnce(&Schema, &mut [u8]),
            ) -> Result<(), AbortReason> {
                write::<Self>(env, table, row, f)
            }

            #[inline]
            fn insert(
                env: &mut SchemeEnv<'_>,
                table: TableId,
                key: Key,
                f: impl FnOnce(&Schema, &mut [u8]),
            ) -> Result<(), AbortReason> {
                insert::<Self>(env, table, key, f)
            }

            #[inline]
            fn delete(
                env: &mut SchemeEnv<'_>,
                table: TableId,
                key: Key,
                row: RowIdx,
            ) -> Result<(), AbortReason> {
                delete::<Self>(env, table, key, row)
            }

            #[inline]
            fn scan(
                ctx: &mut WorkerCtx<Self>,
                table: TableId,
                low: Key,
                high: Key,
                f: &mut dyn FnMut(Key, &Schema, &[u8]),
            ) -> Result<usize, TxnError> {
                scan_2pl::<Self>(ctx, table, low, high, f)
            }

            fn commit(env: &mut SchemeEnv<'_>) -> Result<(), AbortReason> {
                // WAL commit point: every X lock is still held and the
                // commit below cannot fail — the record is appended (and
                // under per-commit fsync, forced) before any lock
                // releases, so a conflicting successor can neither draw
                // an earlier serial nor become durable without us.
                env.wal_commit_point_csn();
                commit::<Self>(env);
                Ok(())
            }

            fn abort(env: &mut SchemeEnv<'_>) {
                abort::<Self>(env);
            }
        }
    };
}

twopl_protocol!(NoWait, CcScheme::NoWait);
twopl_protocol!(DlDetect, CcScheme::DlDetect);
twopl_protocol!(WaitDie, CcScheme::WaitDie);

/// Acquire `mode` on `(table, row)` under variant `V`.
fn acquire<V: Variant>(
    env: &mut SchemeEnv<'_>,
    table: TableId,
    row: RowIdx,
    mode: LockMode,
) -> Result<(), AbortReason> {
    if env.st.holds(table, row, mode) {
        return Ok(());
    }
    let upgrade = mode == LockMode::Exclusive && env.st.holds(table, row, LockMode::Shared);
    let meta = env.db.row_meta(table, row);
    V::acquire(env, meta, mode, upgrade)?;
    if upgrade {
        for h in env.st.held.iter_mut() {
            if h.table == table && h.row == row {
                h.mode = LockMode::Exclusive;
            }
        }
    } else {
        env.st.held.push(HeldLock { table, row, mode });
    }
    Ok(())
}

/// NO_WAIT: single-word CAS protocol; denial aborts.
fn acquire_no_wait(meta: &RowMeta, mode: LockMode, upgrade: bool) -> Result<(), AbortReason> {
    let word = &meta.word;
    if upgrade {
        // Sole reader may swap its S for an X atomically.
        return word
            .compare_exchange(1, rw::WRITER, Ordering::AcqRel, Ordering::Acquire)
            .map(drop)
            .map_err(|_| AbortReason::LockConflict);
    }
    match mode {
        LockMode::Shared => {
            let mut w = word.load(Ordering::Acquire);
            loop {
                if rw::has_writer(w) {
                    return Err(AbortReason::LockConflict);
                }
                match word.compare_exchange_weak(
                    w,
                    rw::add_reader(w),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => return Ok(()),
                    Err(cur) => w = cur,
                }
            }
        }
        LockMode::Exclusive => word
            .compare_exchange(0, rw::WRITER, Ordering::AcqRel, Ordering::Acquire)
            .map(drop)
            .map_err(|_| AbortReason::LockConflict),
    }
}

/// Can `w` be granted right now given `q`'s owners (and, for non-upgrades,
/// an empty-or-jumpable queue position)?
fn grantable(q: &crate::meta::LockQueue, txn: u64, mode: LockMode, upgrade: bool) -> bool {
    if upgrade {
        q.owners.iter().all(|o| o.txn == txn)
    } else {
        q.compatible_with_owners(mode, txn)
    }
}

/// DL_DETECT: queue behind conflicts, publish waits-for edges, detect.
fn acquire_dl_detect(
    env: &mut SchemeEnv<'_>,
    meta: &RowMeta,
    mode: LockMode,
    upgrade: bool,
) -> Result<(), AbortReason> {
    let me = env.st.txn_id;
    let cfg = &env.db.cfg;
    let waitees: Vec<u64> = {
        let mut q = meta.lock_queue();
        // FIFO fairness: a new request must queue behind existing waiters
        // (upgrades jump the queue — they already hold S and granting them
        // first is the only way the queue can ever drain).
        if grantable(&q, me, mode, upgrade) && (upgrade || q.waiters.is_empty()) {
            if upgrade {
                for o in q.owners.iter_mut().filter(|o| o.txn == me) {
                    o.mode = LockMode::Exclusive;
                }
            } else {
                q.owners.push(Owner {
                    txn: me,
                    mode,
                    ts: 0,
                });
            }
            return Ok(());
        }
        env.db.park.arm(env.worker);
        let w = Waiter {
            txn: me,
            worker: env.worker,
            mode,
            ts: 0,
            upgrade,
        };
        q.waiters.push_back(w);
        // Waits-for edges: the conflicting owners plus everyone queued
        // ahead of us (we cannot be granted before them).
        q.conflicting_owners(mode, me)
            .map(|o| o.txn)
            .chain(q.waiters.iter().filter(|x| x.txn != me).map(|x| x.txn))
            .collect()
    };
    env.db.waits.publish_waits(env.worker, waitees);

    let started = Instant::now();
    let timeout = cfg.dl_timeout_us.min(cfg.wait_cap_us);
    let deadline = started + Duration::from_micros(timeout);
    let interval = Duration::from_micros(cfg.dl_detect_interval_us.max(1));
    let waits = &env.db.waits;
    let out = env
        .db
        .park
        .wait_with_check(env.worker, deadline, interval, || waits.detect_cycle(me));
    env.record_wait(started);
    env.db.waits.clear_waits(env.worker);

    match out {
        WaitOutcome::Granted => Ok(()),
        WaitOutcome::TimedOut => {
            let mut q = meta.lock_queue();
            if q.remove_waiter(me) {
                env.db.park.reset(env.worker);
                drop(q);
                if env.db.waits.detect_cycle(me) {
                    Err(AbortReason::Deadlock)
                } else {
                    Err(AbortReason::WaitTimeout)
                }
            } else {
                // The grant raced our timeout: we are an owner now.
                drop(q);
                env.db.park.reset(env.worker);
                Ok(())
            }
        }
    }
}

/// WAIT_DIE: older waits, younger dies; grants keyed off owners only.
fn acquire_wait_die(
    env: &mut SchemeEnv<'_>,
    meta: &RowMeta,
    mode: LockMode,
    upgrade: bool,
) -> Result<(), AbortReason> {
    let me = env.st.txn_id;
    let my_ts = env.st.ts;
    {
        let mut q = meta.lock_queue();
        if grantable(&q, me, mode, upgrade) {
            if upgrade {
                for o in q.owners.iter_mut().filter(|o| o.txn == me) {
                    o.mode = LockMode::Exclusive;
                }
            } else {
                q.owners.push(Owner {
                    txn: me,
                    mode,
                    ts: my_ts,
                });
            }
            return Ok(());
        }
        // Deny or wait: wait iff older (smaller ts) than every conflicting
        // owner — "dies" otherwise.
        let youngest_conflict = q
            .conflicting_owners(mode, me)
            .map(|o| o.ts)
            .min()
            .expect("conflict exists");
        if my_ts >= youngest_conflict {
            return Err(AbortReason::WaitDieKilled);
        }
        env.db.park.arm(env.worker);
        let w = Waiter {
            txn: me,
            worker: env.worker,
            mode,
            ts: my_ts,
            upgrade,
        };
        // Keep the queue sorted by ts ascending (oldest first).
        let pos = q
            .waiters
            .iter()
            .position(|x| x.ts > my_ts)
            .unwrap_or(q.waiters.len());
        q.waiters.insert(pos, w);
    }

    let started = Instant::now();
    let deadline = started + Duration::from_micros(env.db.cfg.wait_cap_us);
    let out = env.db.park.wait(env.worker, deadline);
    env.record_wait(started);
    match out {
        WaitOutcome::Granted => Ok(()),
        WaitOutcome::TimedOut => {
            let mut q = meta.lock_queue();
            if q.remove_waiter(me) {
                env.db.park.reset(env.worker);
                Err(AbortReason::WaitTimeout)
            } else {
                drop(q);
                env.db.park.reset(env.worker);
                Ok(())
            }
        }
    }
}

/// Grant queued waiters that have become compatible (caller holds the
/// tuple latch and has already removed itself from the owner list).
pub(crate) fn grant_waiters(db: &crate::db::Database, q: &mut crate::meta::LockQueue) {
    while let Some(w) = q.waiters.front().copied() {
        if !grantable(q, w.txn, w.mode, w.upgrade) {
            break;
        }
        q.waiters.pop_front();
        if w.upgrade {
            for o in q.owners.iter_mut().filter(|o| o.txn == w.txn) {
                o.mode = LockMode::Exclusive;
            }
        } else {
            q.owners.push(Owner {
                txn: w.txn,
                mode: w.mode,
                ts: w.ts,
            });
        }
        db.park.grant(w.worker);
    }
}

/// Release every held lock (commit and abort paths).
fn release_all<V: Variant>(env: &mut SchemeEnv<'_>) {
    let txn = env.st.txn_id;
    for h in std::mem::take(&mut env.st.held) {
        let meta = env.db.row_meta(h.table, h.row);
        V::release_one(env.db, txn, meta, h.mode);
    }
}

/// S-lock `(table, row)` without reading it — the scan path's next-key
/// locking primitive (rows in range, the boundary row, the gap anchor).
pub(crate) fn lock_shared<V: Variant>(
    env: &mut SchemeEnv<'_>,
    table: TableId,
    row: RowIdx,
) -> Result<(), AbortReason> {
    acquire::<V>(env, table, row, LockMode::Shared)
}

/// The next-key lock an inserter must take before publishing `key`: the
/// successor entry's row, or the table's +∞ gap anchor when none exists.
fn gap_target(env: &SchemeEnv<'_>, table: TableId, key: Key) -> Option<RowIdx> {
    let tree = env.db.ordered_index(table)?;
    Some(
        key.checked_add(1)
            .and_then(|from| tree.successor_inclusive(from))
            .map(|(_, row)| row)
            .unwrap_or(GAP_ROW),
    )
}

/// Acquire the inserter's gap (next-key) X lock. Returns the rows whose
/// lock must be dropped again right after the insert is published —
/// ARIES/IM-style instant duration. A lock the transaction already held
/// (or upgraded) stays held to commit.
fn acquire_gap_lock<V: Variant>(
    env: &mut SchemeEnv<'_>,
    table: TableId,
    row: RowIdx,
) -> Result<Option<RowIdx>, AbortReason> {
    if env.st.holds(table, row, LockMode::Exclusive) {
        return Ok(None);
    }
    let upgraded = env.st.holds(table, row, LockMode::Shared);
    acquire::<V>(env, table, row, LockMode::Exclusive)?;
    Ok(if upgraded { None } else { Some(row) })
}

/// 2PL read: S-lock then read in place.
fn read<V: Variant>(
    env: &mut SchemeEnv<'_>,
    table: TableId,
    row: RowIdx,
) -> Result<ReadRef, AbortReason> {
    acquire::<V>(env, table, row, LockMode::Shared)?;
    let t = &env.db.tables[table as usize];
    // SAFETY: the S lock held until commit/abort excludes writers.
    let data = unsafe { t.row(row) };
    Ok(ReadRef::InPlace {
        ptr: data.as_ptr(),
        len: data.len(),
    })
}

/// 2PL write: X-lock, log the before-image, mutate in place.
fn write<V: Variant>(
    env: &mut SchemeEnv<'_>,
    table: TableId,
    row: RowIdx,
    f: impl FnOnce(&Schema, &mut [u8]),
) -> Result<(), AbortReason> {
    acquire::<V>(env, table, row, LockMode::Exclusive)?;
    let t = &env.db.tables[table as usize];
    if !env.st.undo.iter().any(|u| u.table == table && u.row == row) {
        // Uninit is safe: `copy_row_into` fills the full row prefix and
        // the abort path reads exactly that prefix.
        let mut image = env.pool.alloc_uninit(t.row_size());
        // SAFETY: X lock held.
        unsafe { t.copy_row_into(row, &mut image) };
        env.st.undo.push(UndoEntry { table, row, image });
    }
    // SAFETY: X lock held.
    let data = unsafe { t.row_mut(row) };
    f(t.schema(), data);
    Ok(())
}

/// 2PL insert: take the next-key (gap) lock when the table is ordered,
/// allocate, fill, take the new row's X lock, publish in the indexes, and
/// only then drop the instant-duration gap lock. A scanner protecting the
/// target gap holds S on the successor, so the gap X conflicts — that is
/// the phantom guard.
fn insert<V: Variant>(
    env: &mut SchemeEnv<'_>,
    table: TableId,
    key: Key,
    f: impl FnOnce(&Schema, &mut [u8]),
) -> Result<(), AbortReason> {
    // Lock the next key, then re-verify it still *is* the next key — a
    // concurrent insert/delete between computing the target and locking it
    // would otherwise leave the wrong row guarding the gap (and a scanner
    // trusting the real successor unprotected). Mirrors the lock-then-
    // recheck step of the scan's next-key walk.
    let mut attempts = 0u32;
    let instant_gap = loop {
        match gap_target(env, table, key) {
            None => break None, // no ordered index: no gap to guard
            Some(gap_row) => {
                let acquired = acquire_gap_lock::<V>(env, table, gap_row)?;
                if gap_target(env, table, key) == Some(gap_row) {
                    break acquired;
                }
                if let Some(row) = acquired {
                    release_last_lock::<V>(env, table, row);
                }
                attempts += 1;
                if attempts > 128 {
                    return Err(AbortReason::LockConflict);
                }
            }
        }
    };
    let release_gap = |env: &mut SchemeEnv<'_>| {
        if let Some(row) = instant_gap {
            release_last_lock::<V>(env, table, row);
        }
    };

    let t = &env.db.tables[table as usize];
    let row = match t.allocate_row() {
        Ok(row) => row,
        Err(_) => {
            release_gap(env);
            return Err(AbortReason::LockConflict);
        }
    };
    // SAFETY: freshly allocated, unindexed row — we are the only accessor.
    let data = unsafe { t.row_mut(row) };
    f(t.schema(), data);

    // Take the lock before the row becomes reachable through the index.
    let meta = env.db.row_meta(table, row);
    V::seed_exclusive(env.db, env.st, meta);
    env.st.held.push(HeldLock {
        table,
        row,
        mode: LockMode::Exclusive,
    });

    if env.db.index_insert(table, key, row).is_err() {
        // Lost an insert race on the same key: roll this slot back out.
        release_last_lock::<V>(env, table, row);
        release_gap(env);
        return Err(AbortReason::LockConflict);
    }
    release_gap(env);
    env.st.inserts.push(InsertEntry {
        table,
        key,
        row: Some(row),
        data: None,
        indexed: true,
    });
    Ok(())
}

/// 2PL delete: X-lock the row now, withdraw the index entries at commit
/// (while the lock is still held), so a concurrent reader either blocks on
/// the X lock or misses the key entirely — never observes an uncommitted
/// delete.
fn delete<V: Variant>(
    env: &mut SchemeEnv<'_>,
    table: TableId,
    key: Key,
    row: RowIdx,
) -> Result<(), AbortReason> {
    acquire::<V>(env, table, row, LockMode::Exclusive)?;
    env.st.deletes.push(DeleteEntry {
        table,
        key,
        row,
        applied: false,
    });
    Ok(())
}

/// Undo the lock taken by a failed insert (rare path).
fn release_last_lock<V: Variant>(env: &mut SchemeEnv<'_>, table: TableId, row: RowIdx) {
    env.st.held.retain(|h| !(h.table == table && h.row == row));
    let meta = env.db.row_meta(table, row);
    V::release_one(env.db, env.st.txn_id, meta, LockMode::Exclusive);
}

/// 2PL scan driver: the next-key walk described on
/// [`crate::worker::WorkerCtx::scan`]. Only lockable protocols (the
/// three 2PL variants, plus the runtime shim) can instantiate it.
pub(crate) fn scan_2pl<V: Variant>(
    ctx: &mut WorkerCtx<V>,
    table: TableId,
    low: Key,
    high: Key,
    f: &mut dyn FnMut(Key, &Schema, &[u8]),
) -> Result<usize, TxnError> {
    let mut count = 0usize;
    let mut cursor = low;
    loop {
        let succ = ctx.db.require_ordered(table)?.successor_inclusive(cursor);
        match succ {
            None => {
                // Lock the +∞ gap anchor, then confirm the tail gap is
                // still empty (an insert may have raced the lock).
                lock_shared::<V>(&mut ctx.env(), table, GAP_ROW).map_err(TxnError::Abort)?;
                if ctx
                    .db
                    .require_ordered(table)?
                    .successor_inclusive(cursor)
                    .is_some()
                {
                    ctx.stats.scan_retries += 1;
                    continue;
                }
                break;
            }
            Some((k, row)) => {
                lock_shared::<V>(&mut ctx.env(), table, row).map_err(TxnError::Abort)?;
                // Holding S on the successor freezes the gap below it;
                // re-verify nothing slipped in (or that the row itself
                // was deleted) before the lock landed.
                match ctx.db.require_ordered(table)?.successor_inclusive(cursor) {
                    Some((k2, r2)) if k2 == k && r2 == row => {
                        if k > high {
                            // Boundary row locked: the (last-in-range,
                            // successor) gap is protected. Done.
                            break;
                        }
                        let t = &ctx.db.tables[table as usize];
                        // SAFETY: the S lock held to commit/abort
                        // excludes writers.
                        let data = unsafe { t.row(row) };
                        f(k, t.schema(), data);
                        count += 1;
                        cursor = match k.checked_add(1) {
                            Some(c) => c,
                            None => break,
                        };
                    }
                    _ => {
                        ctx.stats.scan_retries += 1;
                    }
                }
            }
        }
    }
    Ok(count)
}

/// Commit: apply deferred deletes (X locks still held), drop before-images,
/// release everything (the shrink phase).
fn commit<V: Variant>(env: &mut SchemeEnv<'_>) {
    for d in std::mem::take(&mut env.st.deletes) {
        if !d.applied {
            env.db.index_remove(d.table, d.key);
        }
    }
    release_all::<V>(env);
}

/// Abort: restore before-images, unpublish inserts, release everything.
/// Deferred deletes never touched the indexes, so they need no undo.
fn abort<V: Variant>(env: &mut SchemeEnv<'_>) {
    // Undo in reverse order; X locks are still held so in-place writes are
    // exclusive.
    for u in std::mem::take(&mut env.st.undo).into_iter().rev() {
        let t = &env.db.tables[u.table as usize];
        // SAFETY: X lock held until release_all below.
        let data = unsafe { t.row_mut(u.row) };
        data.copy_from_slice(&u.image[..data.len()]);
        env.pool.free(u.image);
    }
    for ins in env.st.inserts.drain(..) {
        if ins.indexed {
            env.db.index_remove(ins.table, ins.key);
        }
    }
    env.st.deletes.clear();
    release_all::<V>(env);
}
