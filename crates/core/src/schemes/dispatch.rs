//! The runtime-dispatch shim: [`AnyScheme`] implements [`CcProtocol`] by
//! matching the database's configured [`CcScheme`] **per operation** and
//! forwarding to the static per-scheme impls.
//!
//! This is the pre-monomorphization engine's dispatch structure, kept for
//! two jobs:
//!
//! * the convenience API — [`crate::db::Database::worker`] hands out a
//!   `WorkerCtx<AnyScheme>` so callers that cannot name the scheme in
//!   their types (tests iterating [`CcScheme::ALL`], examples, ad-hoc
//!   tools) keep working unchanged;
//! * the measured baseline of the dispatch micro-comparison
//!   (`dispatch_micro` in `abyss-bench`): enum-match-per-access vs the
//!   monomorphized loop `run_workers` actually uses.
//!
//! Every capability hook is overridden to answer from the configured
//! scheme; the associated consts are never consulted for this type (the
//! `capability_surfaces_agree` test in [`super`] pins the hooks to the
//! static impls' consts).

use abyss_common::{AbortReason, CcScheme, Key, PartId, RowIdx, TableId, TxnId};
use abyss_storage::Schema;

use super::twopl;
use super::{dispatch_protocol, CcProtocol, ReadRef, SchemeEnv};
use crate::db::Database;
use crate::meta::{LockMode, RowMeta};
use crate::txn::TxnState;
use crate::worker::{TxnError, WorkerCtx};

/// Runtime dispatch over all nine schemes (see the module docs).
pub struct AnyScheme;

impl CcProtocol for AnyScheme {
    const STATIC_SCHEME: Option<CcScheme> = None;
    // Unused for this type: every capability hook below answers from the
    // run's configured scheme instead.
    const NEEDS_TS: bool = false;
    const TS_REUSE_ON_RESTART: bool = false;
    const USES_EPOCH: bool = false;
    const ACQUIRES_PARTITIONS: bool = false;
    const TRACKS_WAITS: bool = false;
    const GUARDS_DELETED: bool = true;
    const BACKOFF_GAIN_PCT: u32 = 0;
    const BACKOFF_CEILING_US: u64 = 0;
    const RO_COMMIT_SKIPS_TS: bool = false;

    #[inline]
    fn needs_ts(scheme: CcScheme) -> bool {
        scheme.needs_start_ts()
    }

    #[inline]
    fn ts_reuse_on_restart(scheme: CcScheme) -> bool {
        scheme.reuses_ts_on_restart()
    }

    #[inline]
    fn uses_epoch(scheme: CcScheme) -> bool {
        scheme.uses_epoch()
    }

    #[inline]
    fn tracks_waits(scheme: CcScheme) -> bool {
        scheme.tracks_waits()
    }

    #[inline]
    fn guards_deleted(scheme: CcScheme) -> bool {
        scheme.guards_deleted_rows()
    }

    #[inline]
    fn backoff_gain_pct(scheme: CcScheme) -> u32 {
        scheme.backoff_gain_pct()
    }

    #[inline]
    fn backoff_ceiling_us(scheme: CcScheme) -> u64 {
        scheme.backoff_ceiling_us()
    }

    #[inline]
    fn ro_commit_skips_ts(scheme: CcScheme) -> bool {
        scheme.ro_commit_skips_ts()
    }

    fn begin(env: &mut SchemeEnv<'_>, partitions: &[PartId]) -> Result<(), AbortReason> {
        dispatch_protocol!(env.db.cfg.scheme, P => P::begin(env, partitions))
    }

    fn read(env: &mut SchemeEnv<'_>, table: TableId, row: RowIdx) -> Result<ReadRef, AbortReason> {
        dispatch_protocol!(env.db.cfg.scheme, P => P::read(env, table, row))
    }

    fn write(
        env: &mut SchemeEnv<'_>,
        table: TableId,
        row: RowIdx,
        f: impl FnOnce(&Schema, &mut [u8]),
    ) -> Result<(), AbortReason> {
        dispatch_protocol!(env.db.cfg.scheme, P => P::write(env, table, row, f))
    }

    fn insert(
        env: &mut SchemeEnv<'_>,
        table: TableId,
        key: Key,
        f: impl FnOnce(&Schema, &mut [u8]),
    ) -> Result<(), AbortReason> {
        dispatch_protocol!(env.db.cfg.scheme, P => P::insert(env, table, key, f))
    }

    fn delete(
        env: &mut SchemeEnv<'_>,
        table: TableId,
        key: Key,
        row: RowIdx,
    ) -> Result<(), AbortReason> {
        dispatch_protocol!(env.db.cfg.scheme, P => P::delete(env, table, key, row))
    }

    fn read_for_scan(
        env: &mut SchemeEnv<'_>,
        table: TableId,
        row: RowIdx,
    ) -> Result<Option<ReadRef>, AbortReason> {
        dispatch_protocol!(env.db.cfg.scheme, P => P::read_for_scan(env, table, row))
    }

    /// Scan cannot forward to `P::scan` (the context is typed
    /// `WorkerCtx<AnyScheme>`, not `WorkerCtx<P>`), so it selects the same
    /// driver the static impl would. This mapping MUST mirror each
    /// scheme's `CcProtocol::scan` choice — the worker test
    /// `shim_and_mono_scan_drivers_agree` runs an identical scan history
    /// through both flavors to keep it honest.
    fn scan(
        ctx: &mut WorkerCtx<Self>,
        table: TableId,
        low: Key,
        high: Key,
        f: &mut dyn FnMut(Key, &Schema, &[u8]),
    ) -> Result<usize, TxnError> {
        match ctx.db.cfg.scheme {
            CcScheme::NoWait | CcScheme::DlDetect | CcScheme::WaitDie => {
                twopl::scan_2pl::<Self>(ctx, table, low, high, f)
            }
            CcScheme::HStore => ctx.scan_hstore(table, low, high, f),
            CcScheme::Timestamp | CcScheme::Mvcc => ctx.scan_to(table, low, high, f),
            CcScheme::Occ | CcScheme::Silo | CcScheme::TicToc => ctx.scan_occ(table, low, high, f),
        }
    }

    fn commit(env: &mut SchemeEnv<'_>) -> Result<(), AbortReason> {
        dispatch_protocol!(env.db.cfg.scheme, P => P::commit(env))
    }

    fn abort(env: &mut SchemeEnv<'_>) {
        dispatch_protocol!(env.db.cfg.scheme, P => P::abort(env))
    }
}

/// The 2PL scan driver's lock primitive needs a [`twopl::Variant`]; the
/// shim provides it by dispatching on the three locking schemes (anything
/// else never reaches these hooks).
impl twopl::Variant for AnyScheme {
    fn acquire(
        env: &mut SchemeEnv<'_>,
        meta: &RowMeta,
        mode: LockMode,
        upgrade: bool,
    ) -> Result<(), AbortReason> {
        match env.db.cfg.scheme {
            CcScheme::NoWait => twopl::NoWait::acquire(env, meta, mode, upgrade),
            CcScheme::DlDetect => twopl::DlDetect::acquire(env, meta, mode, upgrade),
            CcScheme::WaitDie => twopl::WaitDie::acquire(env, meta, mode, upgrade),
            other => unreachable!("2PL lock acquire under {other}"),
        }
    }

    fn release_one(db: &Database, txn: TxnId, meta: &RowMeta, mode: LockMode) {
        match db.cfg.scheme {
            CcScheme::NoWait => twopl::NoWait::release_one(db, txn, meta, mode),
            CcScheme::DlDetect => twopl::DlDetect::release_one(db, txn, meta, mode),
            CcScheme::WaitDie => twopl::WaitDie::release_one(db, txn, meta, mode),
            other => unreachable!("2PL lock release under {other}"),
        }
    }

    fn seed_exclusive(db: &Database, st: &TxnState, meta: &RowMeta) {
        match db.cfg.scheme {
            CcScheme::NoWait => twopl::NoWait::seed_exclusive(db, st, meta),
            CcScheme::DlDetect => twopl::DlDetect::seed_exclusive(db, st, meta),
            CcScheme::WaitDie => twopl::WaitDie::seed_exclusive(db, st, meta),
            other => unreachable!("2PL lock seed under {other}"),
        }
    }
}
