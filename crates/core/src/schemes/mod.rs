//! The nine concurrency-control scheme implementations — the paper's
//! seven plus the modern epoch-based [`silo`] and data-driven-timestamp
//! [`tictoc`] — behind one type-level dispatch surface.
//!
//! [`CcProtocol`] captures the full per-scheme surface the engine needs:
//! the access operations (`read` / `write` / `insert` / `delete` /
//! `scan`), the lifecycle hooks (`begin` / `commit` / `abort`), and the
//! capability metadata (`NEEDS_TS`, `USES_EPOCH`, …) that used to live as
//! scattered `matches!(scheme, …)` conditions in the worker. Each scheme
//! is a zero-sized type implementing the trait; [`crate::worker`]
//! monomorphizes the whole execution loop over one of them, so the
//! steady-state hot path contains **no** scheme branches — the protocol
//! inlines straight into the access loop.
//!
//! [`dispatch::AnyScheme`] is the runtime-dispatch shim: one enum match
//! per operation, forwarding to the static impls. It backs the
//! convenience API ([`crate::db::Database::worker`]) and serves as the
//! measured baseline of the dispatch micro-comparison. The
//! [`dispatch_protocol!`](dispatch_protocol) macro is the single
//! monomorphization point a run goes through.
//!
//! Adding a tenth scheme means: one new module with a zero-sized type
//! implementing [`CcProtocol`], one arm in [`dispatch_protocol!`], one
//! [`abyss_common::CcScheme`] variant (+ its capability metadata there),
//! and nothing else — no engine edits.

pub mod dispatch;
pub mod hstore;
pub mod mvcc;
pub mod occ;
pub mod silo;
pub mod tictoc;
pub mod timestamp;
pub mod twopl;

pub use dispatch::AnyScheme;
pub use hstore::HStore;
pub use mvcc::Mvcc;
pub use occ::Occ;
pub use silo::Silo;
pub use tictoc::TicToc;
pub use timestamp::Timestamp;
pub use twopl::{DlDetect, NoWait, WaitDie};

use abyss_common::stats::RunStats;
use abyss_common::{AbortReason, CcScheme, CoreId, Key, PartId, RowIdx, TableId};
use abyss_storage::{MemPool, Schema};

use crate::db::Database;
use crate::obs::PhaseClock;
use crate::ts::TsHandle;
use crate::txn::TxnState;
use crate::worker::{TxnError, WorkerCtx};

/// Disjoint borrows of the worker context handed to scheme code. Opaque
/// outside the crate: schemes live next to the engine internals they
/// coordinate with.
pub struct SchemeEnv<'a> {
    /// The shared database.
    pub(crate) db: &'a Database,
    /// This transaction's state.
    pub(crate) st: &'a mut TxnState,
    /// The worker's memory pool (read copies, undo images, write buffers).
    pub(crate) pool: &'a mut MemPool,
    /// The worker id (park-table slot).
    pub(crate) worker: CoreId,
    /// Per-worker statistics (wait-time accounting).
    pub(crate) stats: &'a mut RunStats,
    /// The worker's timestamp-allocator handle (OCC's validation ts).
    pub(crate) ts: &'a mut TsHandle,
    /// SILO: the worker's previous commit TID (next one must exceed it).
    pub(crate) last_tid: &'a mut u64,
    /// The worker's per-phase stopwatch (no-op unless `cfg.breakdown`).
    pub(crate) phases: &'a mut PhaseClock,
}

impl SchemeEnv<'_> {
    /// Close out a blocking wait that `started` opened: charge the §3.2
    /// Wait category and, when tracing is on, emit the attempt's
    /// `FirstConflict` (once) plus the `WaitStart`/`WaitEnd` pair — the
    /// start back-dated by the measured duration, so cross-worker merges
    /// place the events where the wait actually happened. Every scheme
    /// wait site funnels through here.
    pub(crate) fn record_wait(&mut self, started: std::time::Instant) {
        let waited = started.elapsed().as_nanos() as u64;
        self.stats
            .breakdown
            .record(abyss_common::Category::Wait, waited);
        self.phases.note_wait(waited);
        if self.db.trace_enabled() {
            use crate::obs::TraceEventKind;
            let txn = self.st.txn_id;
            let end = self.db.trace_set().expect("tracing enabled").now_ns();
            let start = end.saturating_sub(waited);
            if !self.st.traced_conflict {
                self.st.traced_conflict = true;
                self.db
                    .trace_event_at(self.worker, txn, start, TraceEventKind::FirstConflict);
            }
            self.db
                .trace_event_at(self.worker, txn, start, TraceEventKind::WaitStart);
            self.db
                .trace_event_at(self.worker, txn, end, TraceEventKind::WaitEnd);
        }
    }

    /// WAL commit point drawing a fresh commit sequence number — the
    /// phase-accounted front door every scheme's commit goes through
    /// (charged to [`abyss_common::Phase::Logging`], then back to
    /// Manager for the rest of the commit window).
    pub(crate) fn wal_commit_point_csn(&mut self) {
        self.phases.set(abyss_common::Phase::Logging);
        self.db
            .wal_commit_point_csn(self.worker, self.st, self.stats);
        self.phases.set(abyss_common::Phase::Manager);
    }

    /// WAL commit point at the scheme's own serial number (T/O schemes
    /// log at their commit timestamp). Phase-accounted like
    /// [`SchemeEnv::wal_commit_point_csn`].
    pub(crate) fn wal_commit_point_seq(&mut self, seq: u64) {
        self.phases.set(abyss_common::Phase::Logging);
        self.db
            .wal_commit_point_seq(self.worker, self.st, self.stats, seq);
        self.phases.set(abyss_common::Phase::Manager);
    }

    /// WAL commit point at an explicit `(epoch, seq)` (SILO logs at its
    /// epoch-composed TID). Phase-accounted like
    /// [`SchemeEnv::wal_commit_point_csn`].
    pub(crate) fn wal_commit_point_at(&mut self, epoch: u64, seq: u64) {
        self.phases.set(abyss_common::Phase::Logging);
        self.db
            .wal_commit_point_at(self.worker, self.st, self.stats, epoch, seq);
        self.phases.set(abyss_common::Phase::Manager);
    }
}

/// Where a read's bytes live.
#[derive(Debug, Clone, Copy)]
pub enum ReadRef {
    /// Directly in the table arena (2PL / H-STORE: protected by a held
    /// lock or an owned partition until commit).
    InPlace {
        /// Pointer into the table arena.
        ptr: *const u8,
        /// Row length.
        len: usize,
    },
    /// In the transaction's read-copy buffer at this index (T/O, MVCC, OCC).
    Rbuf(usize),
}

/// One concurrency-control scheme, as a type.
///
/// The worker ([`crate::worker::WorkerCtx`]) is generic over an impl of
/// this trait; instantiating it with a static scheme type compiles the
/// protocol straight into the transaction loop (zero dispatch per
/// access), while [`AnyScheme`] recovers the classic one-match-per-access
/// runtime dispatch for contexts that cannot name the scheme statically.
///
/// The capability consts mirror [`CcScheme`]'s metadata; the parallel
/// `fn` hooks exist so the runtime shim can answer from the configured
/// scheme instead — static impls must leave the defaults (which return
/// the consts) untouched.
pub trait CcProtocol: Sized + 'static {
    /// `Some(scheme)` for the per-scheme impls ([`crate::worker`] asserts
    /// it against the database's configured scheme); `None` for the
    /// runtime shim.
    const STATIC_SCHEME: Option<CcScheme>;
    /// Allocates a start timestamp at begin.
    const NEEDS_TS: bool;
    /// Restarts keep their original timestamp (WAIT_DIE's age).
    const TS_REUSE_ON_RESTART: bool;
    /// Registers every transaction in the epoch subsystem.
    const USES_EPOCH: bool;
    /// Acquires its declared partition set at begin (H-STORE).
    /// Informational metadata only: the acquisition itself is the
    /// scheme's own [`CcProtocol::begin`] hook, not engine behavior
    /// keyed off this const — a partitioned scheme must implement
    /// `begin`.
    const ACQUIRES_PARTITIONS: bool;
    /// Maintains the waits-for graph (DL_DETECT).
    const TRACKS_WAITS: bool;
    /// Point accesses re-probe the index against committed deletes.
    const GUARDS_DELETED: bool;
    /// Adaptive backoff: multiplicative-increase gain, percent per unit
    /// abort rate (see [`crate::backoff::BackoffCtl`]).
    const BACKOFF_GAIN_PCT: u32;
    /// Adaptive backoff: per-scheme delay ceiling, microseconds.
    const BACKOFF_CEILING_US: u64;
    /// Read-only transactions skip the scheme's commit-time timestamp
    /// allocation (OCC's validation ts — an empty write set has an empty
    /// validation window).
    const RO_COMMIT_SKIPS_TS: bool;

    /// Runtime-capable mirror of [`CcProtocol::NEEDS_TS`].
    #[inline(always)]
    fn needs_ts(_scheme: CcScheme) -> bool {
        Self::NEEDS_TS
    }
    /// Runtime-capable mirror of [`CcProtocol::TS_REUSE_ON_RESTART`].
    #[inline(always)]
    fn ts_reuse_on_restart(_scheme: CcScheme) -> bool {
        Self::TS_REUSE_ON_RESTART
    }
    /// Runtime-capable mirror of [`CcProtocol::USES_EPOCH`].
    #[inline(always)]
    fn uses_epoch(_scheme: CcScheme) -> bool {
        Self::USES_EPOCH
    }
    /// Runtime-capable mirror of [`CcProtocol::TRACKS_WAITS`].
    #[inline(always)]
    fn tracks_waits(_scheme: CcScheme) -> bool {
        Self::TRACKS_WAITS
    }
    /// Runtime-capable mirror of [`CcProtocol::GUARDS_DELETED`].
    #[inline(always)]
    fn guards_deleted(_scheme: CcScheme) -> bool {
        Self::GUARDS_DELETED
    }
    /// Runtime-capable mirror of [`CcProtocol::BACKOFF_GAIN_PCT`].
    #[inline(always)]
    fn backoff_gain_pct(_scheme: CcScheme) -> u32 {
        Self::BACKOFF_GAIN_PCT
    }
    /// Runtime-capable mirror of [`CcProtocol::BACKOFF_CEILING_US`].
    #[inline(always)]
    fn backoff_ceiling_us(_scheme: CcScheme) -> u64 {
        Self::BACKOFF_CEILING_US
    }
    /// Runtime-capable mirror of [`CcProtocol::RO_COMMIT_SKIPS_TS`].
    #[inline(always)]
    fn ro_commit_skips_ts(_scheme: CcScheme) -> bool {
        Self::RO_COMMIT_SKIPS_TS
    }

    /// Scheme admission work at transaction begin, after the worker has
    /// installed the timestamp / epoch / waits-for registrations.
    /// `partitions` is the caller-declared partition set (H-STORE sorts,
    /// deduplicates and acquires it; everyone else ignores it).
    #[inline]
    fn begin(env: &mut SchemeEnv<'_>, partitions: &[PartId]) -> Result<(), AbortReason> {
        let _ = (env, partitions);
        Ok(())
    }

    /// Admit and perform a point read of `(table, row)`.
    fn read(env: &mut SchemeEnv<'_>, table: TableId, row: RowIdx) -> Result<ReadRef, AbortReason>;

    /// Admit a read-modify-write of `(table, row)`; `f` mutates the
    /// current image (in place or in the private workspace).
    fn write(
        env: &mut SchemeEnv<'_>,
        table: TableId,
        row: RowIdx,
        f: impl FnOnce(&Schema, &mut [u8]),
    ) -> Result<(), AbortReason>;

    /// Admit an insert of a fresh row under `key`; `f` initializes it.
    fn insert(
        env: &mut SchemeEnv<'_>,
        table: TableId,
        key: Key,
        f: impl FnOnce(&Schema, &mut [u8]),
    ) -> Result<(), AbortReason>;

    /// Admit a delete of `key`'s row.
    fn delete(
        env: &mut SchemeEnv<'_>,
        table: TableId,
        key: Key,
        row: RowIdx,
    ) -> Result<(), AbortReason>;

    /// Scan-path read: `None` means "invisible at this snapshot, skip"
    /// (MVCC's snapshot-bounded scans); everyone else reads like
    /// [`CcProtocol::read`].
    #[inline]
    fn read_for_scan(
        env: &mut SchemeEnv<'_>,
        table: TableId,
        row: RowIdx,
    ) -> Result<Option<ReadRef>, AbortReason> {
        Self::read(env, table, row).map(Some)
    }

    /// Range-scan `low..=high` with this scheme's phantom protection,
    /// invoking `f` per qualifying row. Impls pick one of the worker's
    /// scan drivers (next-key-locked walk, leaf-tagged T/O scan, node-set
    /// scan, partition-exclusive walk).
    fn scan(
        ctx: &mut WorkerCtx<Self>,
        table: TableId,
        low: Key,
        high: Key,
        f: &mut dyn FnMut(Key, &Schema, &[u8]),
    ) -> Result<usize, TxnError>;

    /// Validate (where applicable), pass the WAL commit point inside the
    /// commit's exclusion window, and install the transaction. On `Err`
    /// the transaction is left in its uncommitted state for
    /// [`CcProtocol::abort`] to roll back.
    fn commit(env: &mut SchemeEnv<'_>) -> Result<(), AbortReason>;

    /// Roll back everything the scheme published or holds.
    fn abort(env: &mut SchemeEnv<'_>);
}

/// Expands to the capability consts of [`CcProtocol`], derived from the
/// scheme's own [`CcScheme`] metadata — the impls cannot drift from the
/// enum.
macro_rules! scheme_caps {
    ($scheme:expr) => {
        const STATIC_SCHEME: Option<abyss_common::CcScheme> = Some($scheme);
        const NEEDS_TS: bool = $scheme.needs_start_ts();
        const TS_REUSE_ON_RESTART: bool = $scheme.reuses_ts_on_restart();
        const USES_EPOCH: bool = $scheme.uses_epoch();
        const ACQUIRES_PARTITIONS: bool = $scheme.partition_locked();
        const TRACKS_WAITS: bool = $scheme.tracks_waits();
        const GUARDS_DELETED: bool = $scheme.guards_deleted_rows();
        const BACKOFF_GAIN_PCT: u32 = $scheme.backoff_gain_pct();
        const BACKOFF_CEILING_US: u64 = $scheme.backoff_ceiling_us();
        const RO_COMMIT_SKIPS_TS: bool = $scheme.ro_commit_skips_ts();
    };
}
pub(crate) use scheme_caps;

/// Binds `$P` to the [`CcProtocol`] impl for `$scheme` and evaluates
/// `$body` — the one place a runtime [`CcScheme`] value becomes a static
/// protocol type. [`crate::worker::run_workers`] goes through this once
/// per run; [`AnyScheme`] goes through it once per operation.
macro_rules! dispatch_protocol {
    ($scheme:expr, $P:ident => $body:expr) => {
        match $scheme {
            abyss_common::CcScheme::DlDetect => {
                type $P = $crate::schemes::DlDetect;
                $body
            }
            abyss_common::CcScheme::NoWait => {
                type $P = $crate::schemes::NoWait;
                $body
            }
            abyss_common::CcScheme::WaitDie => {
                type $P = $crate::schemes::WaitDie;
                $body
            }
            abyss_common::CcScheme::Timestamp => {
                type $P = $crate::schemes::Timestamp;
                $body
            }
            abyss_common::CcScheme::Mvcc => {
                type $P = $crate::schemes::Mvcc;
                $body
            }
            abyss_common::CcScheme::Occ => {
                type $P = $crate::schemes::Occ;
                $body
            }
            abyss_common::CcScheme::HStore => {
                type $P = $crate::schemes::HStore;
                $body
            }
            abyss_common::CcScheme::Silo => {
                type $P = $crate::schemes::Silo;
                $body
            }
            abyss_common::CcScheme::TicToc => {
                type $P = $crate::schemes::TicToc;
                $body
            }
        }
    };
}
pub(crate) use dispatch_protocol;

#[cfg(test)]
mod tests {
    use super::*;

    /// The static impls' capability consts, the runtime shim's hooks, and
    /// the [`CcScheme`] metadata must agree for every scheme — a new
    /// capability added to one surface but not the others fails here.
    #[test]
    fn capability_surfaces_agree() {
        for scheme in CcScheme::ALL {
            dispatch_protocol!(scheme, P => {
                assert_eq!(P::STATIC_SCHEME, Some(scheme));
                assert_eq!(P::NEEDS_TS, scheme.needs_start_ts(), "{scheme}: NEEDS_TS");
                assert_eq!(
                    P::TS_REUSE_ON_RESTART,
                    scheme.reuses_ts_on_restart(),
                    "{scheme}: TS_REUSE_ON_RESTART"
                );
                assert_eq!(P::USES_EPOCH, scheme.uses_epoch(), "{scheme}: USES_EPOCH");
                assert_eq!(
                    P::ACQUIRES_PARTITIONS,
                    scheme.partition_locked(),
                    "{scheme}: ACQUIRES_PARTITIONS"
                );
                assert_eq!(P::TRACKS_WAITS, scheme.tracks_waits(), "{scheme}: TRACKS_WAITS");
                assert_eq!(
                    P::GUARDS_DELETED,
                    scheme.guards_deleted_rows(),
                    "{scheme}: GUARDS_DELETED"
                );
                assert_eq!(
                    P::BACKOFF_GAIN_PCT,
                    scheme.backoff_gain_pct(),
                    "{scheme}: BACKOFF_GAIN_PCT"
                );
                assert_eq!(
                    P::BACKOFF_CEILING_US,
                    scheme.backoff_ceiling_us(),
                    "{scheme}: BACKOFF_CEILING_US"
                );
                assert_eq!(
                    P::RO_COMMIT_SKIPS_TS,
                    scheme.ro_commit_skips_ts(),
                    "{scheme}: RO_COMMIT_SKIPS_TS"
                );
                // The shim must answer exactly like the static impl.
                assert_eq!(AnyScheme::needs_ts(scheme), P::NEEDS_TS);
                assert_eq!(AnyScheme::ts_reuse_on_restart(scheme), P::TS_REUSE_ON_RESTART);
                assert_eq!(AnyScheme::uses_epoch(scheme), P::USES_EPOCH);
                assert_eq!(AnyScheme::tracks_waits(scheme), P::TRACKS_WAITS);
                assert_eq!(AnyScheme::guards_deleted(scheme), P::GUARDS_DELETED);
                assert_eq!(AnyScheme::backoff_gain_pct(scheme), P::BACKOFF_GAIN_PCT);
                assert_eq!(AnyScheme::backoff_ceiling_us(scheme), P::BACKOFF_CEILING_US);
                assert_eq!(AnyScheme::ro_commit_skips_ts(scheme), P::RO_COMMIT_SKIPS_TS);
            });
        }
    }
}
