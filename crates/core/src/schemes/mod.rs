//! The nine concurrency-control scheme implementations: the paper's
//! seven plus the modern epoch-based [`silo`] and data-driven-timestamp
//! [`tictoc`].
//!
//! Each module exposes `read` / `write` / `insert` / `commit` / `abort`
//! operating on a `SchemeEnv` — the disjoint borrow of everything a
//! scheme needs from the worker context. [`crate::worker::WorkerCtx`]
//! dispatches on the configured [`abyss_common::CcScheme`].

pub mod hstore;
pub mod mvcc;
pub mod occ;
pub mod silo;
pub mod tictoc;
pub mod timestamp;
pub mod twopl;

use abyss_common::stats::RunStats;
use abyss_common::CoreId;
use abyss_storage::MemPool;

use crate::db::Database;
use crate::txn::TxnState;

/// Disjoint borrows of the worker context handed to scheme code.
pub(crate) struct SchemeEnv<'a> {
    /// The shared database.
    pub db: &'a Database,
    /// This transaction's state.
    pub st: &'a mut TxnState,
    /// The worker's memory pool (read copies, undo images, write buffers).
    pub pool: &'a mut MemPool,
    /// The worker id (park-table slot).
    pub worker: CoreId,
    /// Per-worker statistics (wait-time accounting).
    pub stats: &'a mut RunStats,
}

/// Where a read's bytes live.
#[derive(Debug, Clone, Copy)]
pub(crate) enum ReadRef {
    /// Directly in the table arena (2PL / H-STORE: protected by a held
    /// lock or an owned partition until commit).
    InPlace {
        /// Pointer into the table arena.
        ptr: *const u8,
        /// Row length.
        len: usize,
    },
    /// In the transaction's read-copy buffer at this index (T/O, MVCC, OCC).
    Rbuf(usize),
}
