//! OCC — optimistic concurrency control with distributed, per-tuple
//! validation (§2.2, §4.3 "Distributed Validation").
//!
//! The read phase copies tuples optimistically with a seqlock protocol
//! against each tuple's version+lock word ([`crate::lockword::silo`]) and
//! buffers writes in a private workspace. Validation latches the write set
//! in canonical `(table, row)` order (deadlock-free), re-checks every read
//! against the recorded version — per-tuple checks, no global critical
//! section, the design the paper adopts from Hekaton/Silo — then installs
//! the workspace and bumps versions.
//!
//! OCC allocates **two** timestamps per transaction (start + validation),
//! which is why it hits the allocator bottleneck at half the throughput of
//! the other T/O schemes (Fig. 8b, Fig. 12).

use std::sync::atomic::Ordering;

use abyss_common::{AbortReason, Key, RowIdx, TableId};
use abyss_storage::mempool::PoolBlock;
use abyss_storage::Schema;

use abyss_common::CcScheme;

use super::{CcProtocol, ReadRef, SchemeEnv};
use crate::lockword::silo;
use crate::txn::{DeleteEntry, InsertEntry, ReadCopy, ReadEntry, WriteEntry};
use crate::worker::{TxnError, WorkerCtx};

/// Optimistic concurrency control with per-tuple (distributed) validation.
pub struct Occ;

impl CcProtocol for Occ {
    super::scheme_caps!(CcScheme::Occ);

    #[inline]
    fn read(env: &mut SchemeEnv<'_>, table: TableId, row: RowIdx) -> Result<ReadRef, AbortReason> {
        read(env, table, row)
    }

    #[inline]
    fn write(
        env: &mut SchemeEnv<'_>,
        table: TableId,
        row: RowIdx,
        f: impl FnOnce(&Schema, &mut [u8]),
    ) -> Result<(), AbortReason> {
        write(env, table, row, f)
    }

    #[inline]
    fn insert(
        env: &mut SchemeEnv<'_>,
        table: TableId,
        key: Key,
        f: impl FnOnce(&Schema, &mut [u8]),
    ) -> Result<(), AbortReason> {
        insert(env, table, key, f)
    }

    #[inline]
    fn delete(
        env: &mut SchemeEnv<'_>,
        table: TableId,
        key: Key,
        row: RowIdx,
    ) -> Result<(), AbortReason> {
        delete(env, table, key, row)
    }

    #[inline]
    fn scan(
        ctx: &mut WorkerCtx<Self>,
        table: TableId,
        low: Key,
        high: Key,
        f: &mut dyn FnMut(Key, &Schema, &[u8]),
    ) -> Result<usize, TxnError> {
        ctx.scan_occ(table, low, high, f)
    }

    fn commit(env: &mut SchemeEnv<'_>) -> Result<(), AbortReason> {
        // The second (validation) timestamp — OCC's extra trip to the
        // allocator (§5.1). A statically read-only transaction installs
        // nothing, so the fast path skips the trip (RO_COMMIT_SKIPS_TS):
        // validation still runs in full against the read + node sets.
        if !(Self::RO_COMMIT_SKIPS_TS && env.st.read_only) {
            env.stats.ts_allocated += 1;
            let _validation_ts = env.ts.alloc();
        }
        commit(env)
    }

    fn abort(env: &mut SchemeEnv<'_>) {
        abort(env);
    }
}

/// Bounded seqlock read: copy the row at a stable version. Shared with
/// the SILO scheme, whose read phase is identical (the recorded `version`
/// is a TID word there).
fn stable_copy(
    env: &mut SchemeEnv<'_>,
    table: TableId,
    row: RowIdx,
) -> Result<(PoolBlock, u64), AbortReason> {
    let t = &env.db.tables[table as usize];
    let word = &env.db.row_meta(table, row).word;
    // Uninit is safe here: `copy_row_into` overwrites the full row and
    // readers only ever see `buf[..row_size]`.
    let mut buf = env.pool.alloc_uninit(t.row_size());
    let mut spins = 0u32;
    loop {
        let w1 = word.load(Ordering::Acquire);
        if !silo::is_locked(w1) {
            // SAFETY: seqlock protocol — the copy is only *used* if the
            // version word is unchanged (and unlocked) afterwards, proving
            // no writer overlapped.
            unsafe { t.copy_row_into(row, &mut buf) };
            // The fence keeps the copy's loads from sinking below the
            // re-check (an acquire *load* alone only orders later ops).
            std::sync::atomic::fence(Ordering::Acquire);
            let w2 = word.load(Ordering::Relaxed);
            if w1 == w2 {
                return Ok((buf, silo::version(w1)));
            }
        }
        spins += 1;
        if spins > 1_000_000 {
            // A writer died mid-install (cannot happen barring a panic) —
            // fail loudly rather than hang.
            env.pool.free(buf);
            return Err(AbortReason::ValidationFail);
        }
        std::hint::spin_loop();
    }
}

/// OCC read: optimistic copy + read-set entry.
pub(super) fn read(
    env: &mut SchemeEnv<'_>,
    table: TableId,
    row: RowIdx,
) -> Result<ReadRef, AbortReason> {
    if let Some(i) = env.st.wbuf_idx(table, row) {
        let mut copy = env.pool.alloc(env.st.wbuf[i].data.capacity());
        copy.as_mut_slice().copy_from_slice(&env.st.wbuf[i].data);
        env.st.rbuf.push(ReadCopy {
            table,
            row,
            data: copy,
        });
        return Ok(ReadRef::Rbuf(env.st.rbuf.len() - 1));
    }
    let (buf, version) = stable_copy(env, table, row)?;
    env.st.rset.push(ReadEntry {
        table,
        row,
        version,
    });
    env.st.rbuf.push(ReadCopy {
        table,
        row,
        data: buf,
    });
    Ok(ReadRef::Rbuf(env.st.rbuf.len() - 1))
}

/// OCC write: read-modify-write into the private workspace.
pub(super) fn write(
    env: &mut SchemeEnv<'_>,
    table: TableId,
    row: RowIdx,
    f: impl FnOnce(&Schema, &mut [u8]),
) -> Result<(), AbortReason> {
    if let Some(i) = env.st.wbuf_idx(table, row) {
        let schema = env.db.tables[table as usize].schema();
        f(schema, env.st.wbuf[i].data.as_mut_slice());
        return Ok(());
    }
    let (mut buf, version) = stable_copy(env, table, row)?;
    let schema = env.db.tables[table as usize].schema();
    let len = env.db.tables[table as usize].row_size();
    f(schema, &mut buf[..len]);
    // The RMW read is validated like any other read.
    env.st.rset.push(ReadEntry {
        table,
        row,
        version,
    });
    env.st.wbuf.push(WriteEntry {
        table,
        row,
        data: buf,
    });
    Ok(())
}

/// OCC insert: buffered until the write phase.
pub(super) fn insert(
    env: &mut SchemeEnv<'_>,
    table: TableId,
    key: Key,
    f: impl FnOnce(&Schema, &mut [u8]),
) -> Result<(), AbortReason> {
    let t = &env.db.tables[table as usize];
    let mut buf = env.pool.alloc(t.row_size());
    f(t.schema(), &mut buf[..t.row_size()]);
    env.st.inserts.push(InsertEntry {
        table,
        key,
        row: None,
        data: Some(buf),
        indexed: false,
    });
    Ok(())
}

/// The rows a committing transaction must latch: its write set plus its
/// delete set, deduplicated, in canonical `(table, row)` order
/// (deadlock-free). Reuses the transaction's scratch vector so the hot
/// commit path never allocates; the caller returns it via
/// [`put_back_lock_targets`]. Shared with the SILO scheme.
pub(super) fn take_commit_lock_targets(env: &mut SchemeEnv<'_>) -> Vec<(TableId, RowIdx)> {
    let mut v = std::mem::take(&mut env.st.lock_scratch);
    v.clear();
    v.extend(env.st.wbuf.iter().map(|w| (w.table, w.row)));
    v.extend(env.st.deletes.iter().map(|d| (d.table, d.row)));
    v.sort_unstable();
    v.dedup();
    v
}

/// Return the scratch lock set for reuse by the next transaction.
pub(super) fn put_back_lock_targets(env: &mut SchemeEnv<'_>, v: Vec<(TableId, RowIdx)>) {
    env.st.lock_scratch = v;
}

/// Latch every row in `targets` via its word. On a spin-cap abort every
/// acquired lock has already been released. Shared with the SILO scheme.
pub(super) fn lock_targets(
    env: &mut SchemeEnv<'_>,
    targets: &[(TableId, RowIdx)],
) -> Result<(), AbortReason> {
    for (locked, &(table, row)) in targets.iter().enumerate() {
        let word = &env.db.row_meta(table, row).word;
        let mut spins = 0u32;
        loop {
            let cur = word.load(Ordering::Acquire);
            if !silo::is_locked(cur)
                && word
                    .compare_exchange_weak(
                        cur,
                        silo::lock(cur),
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    )
                    .is_ok()
            {
                break;
            }
            spins += 1;
            // Canonical order makes waiting deadlock-free, but bound it so
            // pathological stalls surface as aborts instead of hangs.
            if spins > 10_000_000 {
                unlock_targets(env, &targets[..locked]);
                return Err(AbortReason::ValidationFail);
            }
            std::hint::spin_loop();
        }
    }
    Ok(())
}

/// Unlock latched rows without bumping versions (validation failed;
/// nothing was installed). Shared with SILO.
pub(super) fn unlock_targets(env: &mut SchemeEnv<'_>, targets: &[(TableId, RowIdx)]) {
    for &(table, row) in targets {
        let word = &env.db.row_meta(table, row).word;
        let cur = word.load(Ordering::Acquire);
        debug_assert!(silo::is_locked(cur));
        word.store(silo::unlock(cur), Ordering::Release);
    }
}

/// Validate the recorded B+-tree node set: every leaf observed by a range
/// scan must still carry the version the scan saw — otherwise a structural
/// change (insert, delete, split) touched the scanned key range and the
/// scan may have missed a phantom. Shared with SILO.
pub(super) fn validate_node_set(env: &SchemeEnv<'_>) -> bool {
    env.st.node_set.iter().all(|ns| {
        env.db
            .ordered_index(ns.table)
            .is_some_and(|tree| tree.leaf_version(ns.leaf) == ns.version)
    })
}

/// OCC delete: observe the tuple's version like a read (so validation
/// catches any interleaved change), buffer the removal until the write
/// phase. A repeated delete of the same row is a no-op — a duplicate
/// entry would double-release the tuple word at commit.
pub(super) fn delete(
    env: &mut SchemeEnv<'_>,
    table: TableId,
    key: Key,
    row: RowIdx,
) -> Result<(), AbortReason> {
    if env
        .st
        .deletes
        .iter()
        .any(|d| d.table == table && d.row == row)
    {
        return Ok(());
    }
    let word = env.db.row_meta(table, row).word.load(Ordering::Acquire);
    env.st.rset.push(ReadEntry {
        table,
        row,
        version: silo::version(word),
    });
    env.st.deletes.push(DeleteEntry {
        table,
        key,
        row,
        applied: false,
    });
    Ok(())
}

/// Validation + write phase. The caller has already allocated the second
/// (validation) timestamp.
fn commit(env: &mut SchemeEnv<'_>) -> Result<(), AbortReason> {
    let targets = take_commit_lock_targets(env);
    let r = commit_locked(env, &targets);
    put_back_lock_targets(env, targets);
    r
}

fn commit_locked(
    env: &mut SchemeEnv<'_>,
    targets: &[(TableId, RowIdx)],
) -> Result<(), AbortReason> {
    // Lock the write + delete sets in canonical order — per-tuple latches.
    lock_targets(env, targets)?;

    // Validate the read set: versions unchanged, no foreign locks.
    for r in env.st.rset.iter() {
        let word = env.db.row_meta(r.table, r.row).word.load(Ordering::Acquire);
        let own = targets.binary_search(&(r.table, r.row)).is_ok();
        if silo::version(word) != r.version || (silo::is_locked(word) && !own) {
            unlock_targets(env, targets);
            return Err(AbortReason::ValidationFail);
        }
    }

    // Publish inserts BEFORE node-set validation (their rows stay latched
    // until commit, so nothing can read them early): two committers
    // concurrently inserting into each other's scanned ranges then both
    // see the other's leaf bump and at least one aborts — published-first
    // is what makes the node set able to observe concurrent inserts at
    // all (Silo inserts into the tree before validating for this reason).
    let inserted = match publish_buffered_inserts(env) {
        Ok(v) => v,
        Err(reason) => {
            unlock_targets(env, targets);
            return Err(reason);
        }
    };
    // Our own inserts legitimately bumped leaves we may have scanned
    // ourselves; refresh those node-set entries so self-inserts into a
    // self-scanned range do not self-abort.
    refresh_own_node_set(env, &inserted);

    // Validate the node set (phantom protection for range scans).
    if !validate_node_set(env) {
        withdraw_published_inserts(env, &inserted);
        unlock_targets(env, targets);
        return Err(AbortReason::ValidationFail);
    }

    // WAL commit point: validated, every write-set latch still held, and
    // nothing below can fail — the record is appended (and, under
    // per-commit fsync, forced) before any latch releases, so a
    // conflicting successor can neither draw an earlier serial nor
    // become durable without us.
    env.wal_commit_point_csn();

    // Nothing can fail past this point. Release the fresh rows at version
    // 0 — OCC's "never written" state — making the inserts readable.
    for &(table, _, row, _) in &inserted {
        env.db.row_meta(table, row).word.store(0, Ordering::Release);
    }

    // Delete phase: withdraw index entries (bumping the covering leaf's
    // version, which fails any in-flight scanner's node set), then bump
    // and release the tuple word so stale readers fail validation.
    let deletes = std::mem::take(&mut env.st.deletes);
    for d in deletes.iter() {
        env.db.index_remove(d.table, d.key);
        let word = &env.db.row_meta(d.table, d.row).word;
        let cur = word.load(Ordering::Acquire);
        word.store(silo::bump_and_unlock(cur), Ordering::Release);
    }

    // Write phase: install the workspace and bump versions.
    for w in std::mem::take(&mut env.st.wbuf) {
        if deletes.iter().any(|d| d.table == w.table && d.row == w.row) {
            // Written then deleted in this transaction: the delete won and
            // its word is already released.
            env.pool.free(w.data);
            continue;
        }
        let t = &env.db.tables[w.table as usize];
        // SAFETY: we hold the tuple's silo lock; readers' seqlock re-check
        // rejects any copy that overlapped this write.
        let data = unsafe { t.row_mut(w.row) };
        data.copy_from_slice(&w.data[..data.len()]);
        let word = &env.db.row_meta(w.table, w.row).word;
        let cur = word.load(Ordering::Acquire);
        word.store(silo::bump_and_unlock(cur), Ordering::Release);
        env.pool.free(w.data);
    }
    Ok(())
}

/// A published-but-not-yet-committed insert: table, key, fresh row, and
/// the B+-tree landing leaf with its pre-insert version (when the table
/// is ordered).
pub(super) type PublishedInsert = (
    TableId,
    Key,
    RowIdx,
    Option<(abyss_storage::btree::LeafId, u64)>,
);

/// Publish buffered inserts into the table arenas and indexes, with each
/// fresh row's word **latched** — readers and scanners that find the new
/// entries spin/abort instead of observing an uncommitted insert, and the
/// committer releases the words only after validation succeeds (SILO
/// stamps them with the commit TID, OCC with version 0). On a
/// duplicate-key race every already-applied insert of this transaction is
/// withdrawn and the whole batch fails. Shared with the SILO scheme.
pub(super) fn publish_buffered_inserts(
    env: &mut SchemeEnv<'_>,
) -> Result<Vec<PublishedInsert>, AbortReason> {
    let inserts = std::mem::take(&mut env.st.inserts);
    let mut applied: Vec<PublishedInsert> = Vec::new();
    let mut failed = false;
    for ins in inserts {
        let t = &env.db.tables[ins.table as usize];
        let data = ins.data.expect("buffered insert has an image");
        if !failed {
            if let Ok(row) = t.allocate_row() {
                // SAFETY: fresh unindexed row.
                unsafe { t.row_mut(row) }.copy_from_slice(&data[..t.row_size()]);
                // Latch before the row becomes reachable.
                env.db
                    .row_meta(ins.table, row)
                    .word
                    .store(silo::LOCKED, Ordering::Release);
                match env.db.index_insert_tracked(ins.table, ins.key, row) {
                    Ok(leaf) => applied.push((ins.table, ins.key, row, leaf)),
                    Err(_) => failed = true,
                }
            } else {
                failed = true;
            }
        }
        env.pool.free(data);
    }
    if failed {
        withdraw_published_inserts(env, &applied);
        return Err(AbortReason::ValidationFail);
    }
    Ok(applied)
}

/// Undo a publication that cannot commit: withdraw the index entries and
/// release the fresh rows' words (back to the untouched version-0 state;
/// the slots are unreachable afterwards). Shared with the SILO scheme.
pub(super) fn withdraw_published_inserts(env: &mut SchemeEnv<'_>, applied: &[PublishedInsert]) {
    for &(table, key, row, _) in applied {
        env.db.index_remove(table, key);
        env.db.row_meta(table, row).word.store(0, Ordering::Release);
    }
}

/// Advance the node-set entries for leaves this transaction's *own*
/// inserts bumped, so inserting into a self-scanned range does not
/// self-abort — but only when the leaf's pre-insert version (captured
/// under the leaf lock at publication) still equals what the scan
/// recorded. A foreign modification anywhere in between leaves the entry
/// behind and validation (correctly) fails; blindly re-reading the
/// current version here would absorb a concurrent committer's bump and
/// admit the exact cross-insert phantom the node set exists to catch.
/// Shared with the SILO scheme.
pub(super) fn refresh_own_node_set(env: &mut SchemeEnv<'_>, inserted: &[PublishedInsert]) {
    for &(table, _, _, leaf) in inserted {
        let Some((leaf, prev_version)) = leaf else {
            continue;
        };
        for ns in env.st.node_set.iter_mut() {
            if ns.table == table && ns.leaf == leaf && ns.version == prev_version {
                ns.version = prev_version + 1;
            }
        }
    }
}

/// Abort during the read phase: nothing is shared yet; buffers are dropped
/// by the caller's state reset.
pub(super) fn abort(_env: &mut SchemeEnv<'_>) {}
