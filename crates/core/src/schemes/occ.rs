//! OCC — optimistic concurrency control with distributed, per-tuple
//! validation (§2.2, §4.3 "Distributed Validation").
//!
//! The read phase copies tuples optimistically with a seqlock protocol
//! against each tuple's version+lock word ([`crate::lockword::silo`]) and
//! buffers writes in a private workspace. Validation latches the write set
//! in canonical `(table, row)` order (deadlock-free), re-checks every read
//! against the recorded version — per-tuple checks, no global critical
//! section, the design the paper adopts from Hekaton/Silo — then installs
//! the workspace and bumps versions.
//!
//! OCC allocates **two** timestamps per transaction (start + validation),
//! which is why it hits the allocator bottleneck at half the throughput of
//! the other T/O schemes (Fig. 8b, Fig. 12).

use std::sync::atomic::Ordering;

use abyss_common::{AbortReason, Key, RowIdx, TableId};
use abyss_storage::mempool::PoolBlock;
use abyss_storage::Schema;

use super::{ReadRef, SchemeEnv};
use crate::lockword::silo;
use crate::txn::{InsertEntry, ReadCopy, ReadEntry, WriteEntry};

/// Bounded seqlock read: copy the row at a stable version. Shared with
/// the SILO scheme, whose read phase is identical (the recorded `version`
/// is a TID word there).
pub(crate) fn stable_copy(
    env: &mut SchemeEnv<'_>,
    table: TableId,
    row: RowIdx,
) -> Result<(PoolBlock, u64), AbortReason> {
    let t = &env.db.tables[table as usize];
    let word = &env.db.row_meta(table, row).word;
    let mut buf = env.pool.alloc(t.row_size());
    let mut spins = 0u32;
    loop {
        let w1 = word.load(Ordering::Acquire);
        if !silo::is_locked(w1) {
            // SAFETY: seqlock protocol — the copy is only *used* if the
            // version word is unchanged (and unlocked) afterwards, proving
            // no writer overlapped.
            unsafe { t.copy_row_into(row, &mut buf) };
            // The fence keeps the copy's loads from sinking below the
            // re-check (an acquire *load* alone only orders later ops).
            std::sync::atomic::fence(Ordering::Acquire);
            let w2 = word.load(Ordering::Relaxed);
            if w1 == w2 {
                return Ok((buf, silo::version(w1)));
            }
        }
        spins += 1;
        if spins > 1_000_000 {
            // A writer died mid-install (cannot happen barring a panic) —
            // fail loudly rather than hang.
            env.pool.free(buf);
            return Err(AbortReason::ValidationFail);
        }
        std::hint::spin_loop();
    }
}

/// OCC read: optimistic copy + read-set entry.
pub(crate) fn read(
    env: &mut SchemeEnv<'_>,
    table: TableId,
    row: RowIdx,
) -> Result<ReadRef, AbortReason> {
    if let Some(i) = env.st.wbuf_idx(table, row) {
        let mut copy = env.pool.alloc(env.st.wbuf[i].data.capacity());
        copy.as_mut_slice().copy_from_slice(&env.st.wbuf[i].data);
        env.st.rbuf.push(ReadCopy {
            table,
            row,
            data: copy,
        });
        return Ok(ReadRef::Rbuf(env.st.rbuf.len() - 1));
    }
    let (buf, version) = stable_copy(env, table, row)?;
    env.st.rset.push(ReadEntry {
        table,
        row,
        version,
    });
    env.st.rbuf.push(ReadCopy {
        table,
        row,
        data: buf,
    });
    Ok(ReadRef::Rbuf(env.st.rbuf.len() - 1))
}

/// OCC write: read-modify-write into the private workspace.
pub(crate) fn write(
    env: &mut SchemeEnv<'_>,
    table: TableId,
    row: RowIdx,
    f: impl FnOnce(&Schema, &mut [u8]),
) -> Result<(), AbortReason> {
    if let Some(i) = env.st.wbuf_idx(table, row) {
        let schema = env.db.tables[table as usize].schema();
        f(schema, env.st.wbuf[i].data.as_mut_slice());
        return Ok(());
    }
    let (mut buf, version) = stable_copy(env, table, row)?;
    let schema = env.db.tables[table as usize].schema();
    let len = env.db.tables[table as usize].row_size();
    f(schema, &mut buf[..len]);
    // The RMW read is validated like any other read.
    env.st.rset.push(ReadEntry {
        table,
        row,
        version,
    });
    env.st.wbuf.push(WriteEntry {
        table,
        row,
        data: buf,
    });
    Ok(())
}

/// OCC insert: buffered until the write phase.
pub(crate) fn insert(
    env: &mut SchemeEnv<'_>,
    table: TableId,
    key: Key,
    f: impl FnOnce(&Schema, &mut [u8]),
) -> Result<(), AbortReason> {
    let t = &env.db.tables[table as usize];
    let mut buf = env.pool.alloc(t.row_size());
    f(t.schema(), &mut buf[..t.row_size()]);
    env.st.inserts.push(InsertEntry {
        table,
        key,
        row: None,
        data: Some(buf),
        indexed: false,
    });
    Ok(())
}

/// Lock the whole write set via each tuple's word, in canonical
/// `(table, row)` order (deadlock-free). On success returns the number of
/// locked entries; on a spin-cap abort every acquired lock has already
/// been released. Shared with the SILO scheme.
pub(crate) fn lock_write_set(env: &mut SchemeEnv<'_>) -> Result<usize, AbortReason> {
    env.st.wbuf.sort_unstable_by_key(|w| (w.table, w.row));
    let mut locked = 0usize;
    for w in env.st.wbuf.iter() {
        let word = &env.db.row_meta(w.table, w.row).word;
        let mut spins = 0u32;
        loop {
            let cur = word.load(Ordering::Acquire);
            if !silo::is_locked(cur)
                && word
                    .compare_exchange_weak(
                        cur,
                        silo::lock(cur),
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    )
                    .is_ok()
            {
                break;
            }
            spins += 1;
            // Canonical order makes waiting deadlock-free, but bound it so
            // pathological stalls surface as aborts instead of hangs.
            if spins > 10_000_000 {
                unlock_first(env, locked);
                return Err(AbortReason::ValidationFail);
            }
            std::hint::spin_loop();
        }
        locked += 1;
    }
    Ok(locked)
}

/// Validation + write phase. The caller has already allocated the second
/// (validation) timestamp.
pub(crate) fn commit(env: &mut SchemeEnv<'_>) -> Result<(), AbortReason> {
    // Lock the write set in canonical order — per-tuple latches only.
    let locked = lock_write_set(env)?;

    // Validate the read set: versions unchanged, no foreign locks.
    for r in env.st.rset.iter() {
        let word = env.db.row_meta(r.table, r.row).word.load(Ordering::Acquire);
        let own = env
            .st
            .wbuf
            .iter()
            .any(|w| w.table == r.table && w.row == r.row);
        if silo::version(word) != r.version || (silo::is_locked(word) && !own) {
            unlock_first(env, locked);
            return Err(AbortReason::ValidationFail);
        }
    }

    // Publish inserts before installing writes: the insert is the only
    // fallible step (duplicate-key race), and it withdraws itself on
    // failure so the abort path sees an uncommitted transaction.
    if let Err(reason) = publish_buffered_inserts(env) {
        unlock_first(env, locked);
        return Err(reason);
    }

    // Write phase: install the workspace and bump versions.
    for w in std::mem::take(&mut env.st.wbuf) {
        let t = &env.db.tables[w.table as usize];
        // SAFETY: we hold the tuple's silo lock; readers' seqlock re-check
        // rejects any copy that overlapped this write.
        let data = unsafe { t.row_mut(w.row) };
        data.copy_from_slice(&w.data[..data.len()]);
        let word = &env.db.row_meta(w.table, w.row).word;
        let cur = word.load(Ordering::Acquire);
        word.store(silo::bump_and_unlock(cur), Ordering::Release);
        env.pool.free(w.data);
    }
    Ok(())
}

/// Publish buffered inserts into the table arenas and indexes. On a
/// duplicate-key race every already-applied insert of this transaction is
/// withdrawn and the whole batch fails. On success returns the published
/// `(table, row)` slots so SILO can stamp them with the commit TID (OCC
/// leaves fresh rows at version 0). Shared with the SILO scheme.
pub(crate) fn publish_buffered_inserts(
    env: &mut SchemeEnv<'_>,
) -> Result<Vec<(TableId, RowIdx)>, AbortReason> {
    let inserts = std::mem::take(&mut env.st.inserts);
    let mut applied: Vec<(TableId, Key, RowIdx)> = Vec::new();
    let mut failed = false;
    for ins in inserts {
        let t = &env.db.tables[ins.table as usize];
        let data = ins.data.expect("buffered insert has an image");
        if !failed {
            if let Ok(row) = t.allocate_row() {
                // SAFETY: fresh unindexed row.
                unsafe { t.row_mut(row) }.copy_from_slice(&data[..t.row_size()]);
                if env.db.indexes[ins.table as usize]
                    .insert(ins.key, row)
                    .is_ok()
                {
                    applied.push((ins.table, ins.key, row));
                } else {
                    failed = true;
                }
            } else {
                failed = true;
            }
        }
        env.pool.free(data);
    }
    if failed {
        for (table, key, _) in applied {
            env.db.indexes[table as usize].remove(key);
        }
        return Err(AbortReason::ValidationFail);
    }
    Ok(applied
        .into_iter()
        .map(|(table, _, row)| (table, row))
        .collect())
}

/// Unlock the first `n` locked write-set entries without bumping versions
/// (validation failed; nothing was installed). Shared with SILO.
pub(crate) fn unlock_first(env: &mut SchemeEnv<'_>, n: usize) {
    for w in env.st.wbuf.iter().take(n) {
        let word = &env.db.row_meta(w.table, w.row).word;
        let cur = word.load(Ordering::Acquire);
        debug_assert!(silo::is_locked(cur));
        word.store(silo::unlock(cur), Ordering::Release);
    }
}

/// Abort during the read phase: nothing is shared yet; buffers are dropped
/// by the caller's state reset.
pub(crate) fn abort(_env: &mut SchemeEnv<'_>) {}
