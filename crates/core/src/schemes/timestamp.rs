//! TIMESTAMP — basic timestamp ordering with a decentralized (per-tuple)
//! scheduler, as in §2.2/§4.3 of the paper.
//!
//! Per-tuple state ([`crate::meta::TsState`]): the largest committed write
//! timestamp `wts`, the largest read timestamp `rts`, and the set of
//! uncommitted *prewrites*. The rules:
//!
//! * `read(ts)` rejects if `ts < wts`; waits while a prewrite with a
//!   smaller timestamp is pending (its value is "not ready yet", §3.2
//!   WAIT); otherwise copies the tuple into the transaction's local buffer
//!   (reads are not protected by locks, so repeatable reads require the
//!   copy — the paper calls out exactly this copy as TIMESTAMP's overhead)
//!   and advances `rts`.
//! * `write(ts)` rejects if `ts < rts` or `ts < wts`; our writes are all
//!   read-modify-writes, so the write also waits on smaller pending
//!   prewrites, advances `rts`, registers its prewrite, and buffers the new
//!   image privately until commit.
//!
//! Every wait is by a higher timestamp on a lower one, so waits are
//! acyclic; the engine's global wait cap is only a safety valve.
//!
//! Aborted transactions restart with a *fresh* timestamp (§2.2).

use std::time::{Duration, Instant};

use abyss_common::{AbortReason, Key, RowIdx, TableId};
use abyss_storage::Schema;

use abyss_common::CcScheme;

use super::{CcProtocol, ReadRef, SchemeEnv};
use crate::meta::TsWaiter;
use crate::txn::{DeleteEntry, InsertEntry, ReadCopy, WriteEntry};
use crate::worker::{TxnError, WorkerCtx};

/// Basic timestamp ordering with per-tuple read/write timestamps.
pub struct Timestamp;

impl CcProtocol for Timestamp {
    super::scheme_caps!(CcScheme::Timestamp);

    #[inline]
    fn read(env: &mut SchemeEnv<'_>, table: TableId, row: RowIdx) -> Result<ReadRef, AbortReason> {
        read(env, table, row)
    }

    #[inline]
    fn write(
        env: &mut SchemeEnv<'_>,
        table: TableId,
        row: RowIdx,
        f: impl FnOnce(&Schema, &mut [u8]),
    ) -> Result<(), AbortReason> {
        write(env, table, row, f)
    }

    #[inline]
    fn insert(
        env: &mut SchemeEnv<'_>,
        table: TableId,
        key: Key,
        f: impl FnOnce(&Schema, &mut [u8]),
    ) -> Result<(), AbortReason> {
        insert(env, table, key, f)
    }

    #[inline]
    fn delete(
        env: &mut SchemeEnv<'_>,
        table: TableId,
        key: Key,
        row: RowIdx,
    ) -> Result<(), AbortReason> {
        delete(env, table, key, row)
    }

    #[inline]
    fn scan(
        ctx: &mut WorkerCtx<Self>,
        table: TableId,
        low: Key,
        high: Key,
        f: &mut dyn FnMut(Key, &Schema, &[u8]),
    ) -> Result<usize, TxnError> {
        ctx.scan_to(table, low, high, f)
    }

    fn commit(env: &mut SchemeEnv<'_>) -> Result<(), AbortReason> {
        commit(env)
    }

    fn abort(env: &mut SchemeEnv<'_>) {
        abort(env);
    }
}

/// Block until no prewrite below `ts` is pending on the tuple, or fail.
/// Returns with the tuple latch *released*; callers re-latch and re-check.
fn wait_for_prewrites(
    env: &mut SchemeEnv<'_>,
    table: TableId,
    row: RowIdx,
) -> Result<(), AbortReason> {
    let started = Instant::now();
    let deadline = started + Duration::from_micros(env.db.cfg.wait_cap_us);
    let me = env.st.txn_id;
    let ts = env.st.ts;
    loop {
        {
            let mut s = env.db.row_meta(table, row).ts_state();
            let pending_other = s.prewrites.iter().any(|&(p, t)| p < ts && t != me);
            if !pending_other {
                return Ok(());
            }
            env.db.park.arm(env.worker);
            s.waiters.push(TsWaiter {
                ts,
                worker: env.worker,
            });
        }
        let out = env.db.park.wait(env.worker, deadline);
        env.record_wait(started);
        match out {
            crate::park::WaitOutcome::Granted => continue,
            crate::park::WaitOutcome::TimedOut => {
                let mut s = env.db.row_meta(table, row).ts_state();
                s.waiters.retain(|w| w.worker != env.worker);
                env.db.park.reset(env.worker);
                return Err(AbortReason::WaitTimeout);
            }
        }
    }
}

/// Wake every waiter parked on the tuple (they re-check the prewrite set).
fn wake_waiters(db: &crate::db::Database, s: &mut crate::meta::TsState) {
    for w in s.waiters.drain(..) {
        db.park.grant(w.worker);
    }
}

/// T/O read (see module docs).
fn read(env: &mut SchemeEnv<'_>, table: TableId, row: RowIdx) -> Result<ReadRef, AbortReason> {
    // Read-own-write: serve from the private workspace.
    if let Some(i) = env.st.wbuf_idx(table, row) {
        let data = env.pool.alloc(env.st.wbuf[i].data.capacity());
        let mut copy = data;
        copy.as_mut_slice().copy_from_slice(&env.st.wbuf[i].data);
        env.st.rbuf.push(ReadCopy {
            table,
            row,
            data: copy,
        });
        return Ok(ReadRef::Rbuf(env.st.rbuf.len() - 1));
    }
    let ts = env.st.ts;
    loop {
        wait_for_prewrites(env, table, row)?;
        let t = &env.db.tables[table as usize];
        let meta = env.db.row_meta(table, row);
        let mut s = meta.ts_state();
        if ts < s.wts {
            return Err(AbortReason::TsOrderViolation);
        }
        // A smaller prewrite may have appeared between the wait and this
        // re-latch; loop if so.
        if s.prewrites
            .iter()
            .any(|&(p, t2)| p < ts && t2 != env.st.txn_id)
        {
            continue;
        }
        s.rts = s.rts.max(ts);
        let mut buf = env.pool.alloc(t.row_size());
        // SAFETY: T/O writers install data only while holding this tuple's
        // latch (see commit), which we hold.
        unsafe { t.copy_row_into(row, &mut buf) };
        env.st.rbuf.push(ReadCopy {
            table,
            row,
            data: buf,
        });
        return Ok(ReadRef::Rbuf(env.st.rbuf.len() - 1));
    }
}

/// T/O read-modify-write (see module docs).
fn write(
    env: &mut SchemeEnv<'_>,
    table: TableId,
    row: RowIdx,
    f: impl FnOnce(&Schema, &mut [u8]),
) -> Result<(), AbortReason> {
    // Second write to the same tuple mutates the buffered image.
    if let Some(i) = env.st.wbuf_idx(table, row) {
        let schema = env.db.tables[table as usize].schema();
        f(schema, env.st.wbuf[i].data.as_mut_slice());
        return Ok(());
    }
    let ts = env.st.ts;
    loop {
        wait_for_prewrites(env, table, row)?;
        let t = &env.db.tables[table as usize];
        let meta = env.db.row_meta(table, row);
        let mut s = meta.ts_state();
        if ts < s.wts || ts < s.rts {
            return Err(AbortReason::TsOrderViolation);
        }
        if s.prewrites
            .iter()
            .any(|&(p, t2)| p < ts && t2 != env.st.txn_id)
        {
            continue;
        }
        // The RMW reads the tuple: advance rts as a reader would.
        s.rts = s.rts.max(ts);
        s.prewrites.push((ts, env.st.txn_id));
        let mut buf = env.pool.alloc(t.row_size());
        // SAFETY: latch held (see read).
        unsafe { t.copy_row_into(row, &mut buf) };
        drop(s);
        f(t.schema(), &mut buf[..t.row_size()]);
        env.st.wbuf.push(WriteEntry {
            table,
            row,
            data: buf,
        });
        env.st.prewrites.push((table, row));
        return Ok(());
    }
}

/// T/O delete: admitted under the write rules (`ts >= wts`, `ts >= rts`,
/// no smaller pending prewrite — the `rts` check is what stops a delete
/// from serializing *before* a scan that already observed the row), then
/// registered as a prewrite. The index entries are withdrawn at commit.
fn delete(
    env: &mut SchemeEnv<'_>,
    table: TableId,
    key: Key,
    row: RowIdx,
) -> Result<(), AbortReason> {
    let ts = env.st.ts;
    let me = env.st.txn_id;
    loop {
        wait_for_prewrites(env, table, row)?;
        let meta = env.db.row_meta(table, row);
        let mut s = meta.ts_state();
        if ts < s.wts || ts < s.rts {
            return Err(AbortReason::TsOrderViolation);
        }
        if s.prewrites.iter().any(|&(p, t2)| p < ts && t2 != me) {
            continue;
        }
        s.rts = s.rts.max(ts);
        s.prewrites.push((ts, me));
        drop(s);
        env.st.prewrites.push((table, row));
        env.st.deletes.push(DeleteEntry {
            table,
            key,
            row,
            applied: false,
        });
        return Ok(());
    }
}

/// T/O insert: buffered; becomes visible at commit.
fn insert(
    env: &mut SchemeEnv<'_>,
    table: TableId,
    key: Key,
    f: impl FnOnce(&Schema, &mut [u8]),
) -> Result<(), AbortReason> {
    let t = &env.db.tables[table as usize];
    let mut buf = env.pool.alloc(t.row_size());
    f(t.schema(), &mut buf[..t.row_size()]);
    env.st.inserts.push(InsertEntry {
        table,
        key,
        row: None,
        data: Some(buf),
        indexed: false,
    });
    Ok(())
}

/// Install buffered writes and inserts; resolve prewrites; wake waiters.
///
/// Inserts are applied *first*: they are the only fallible step, and the
/// contract with [`crate::worker::WorkerCtx::commit`] is that a failed
/// commit leaves the transaction in its uncommitted state so the normal
/// abort path can finish the rollback.
fn commit(env: &mut SchemeEnv<'_>) -> Result<(), AbortReason> {
    apply_inserts(env, AbortReason::TsOrderViolation)?;
    let ts = env.st.ts;
    // WAL commit point: inserts (the only fallible step) are published,
    // every prewrite is still pending — serialization is by `ts`, and a
    // conflicting writer cannot install (or log) past our prewrites.
    env.wal_commit_point_seq(ts);
    let me = env.st.txn_id;
    for w in std::mem::take(&mut env.st.wbuf) {
        // A row both written and deleted in this transaction is resolved by
        // the delete below; skip the dead install.
        if env
            .st
            .deletes
            .iter()
            .any(|d| d.table == w.table && d.row == w.row)
        {
            env.pool.free(w.data);
            continue;
        }
        let t = &env.db.tables[w.table as usize];
        let meta = env.db.row_meta(w.table, w.row);
        let mut s = meta.ts_state();
        debug_assert!(
            s.wts <= ts,
            "commit of a stale prewrite (wts {} > ts {ts})",
            s.wts
        );
        // SAFETY: all T/O data access happens under the tuple latch.
        let data = unsafe { t.row_mut(w.row) };
        data.copy_from_slice(&w.data[..data.len()]);
        s.wts = s.wts.max(ts);
        s.remove_prewrite(me);
        wake_waiters(env.db, &mut s);
        drop(s);
        env.pool.free(w.data);
    }
    apply_deletes(env);
    env.st.prewrites.clear();
    Ok(())
}

/// Withdraw this transaction's deletes from the indexes. The tuple's
/// `wts` is tombstoned to `u64::MAX` first, so a scanner holding a stale
/// row reference from a pre-delete B+-tree snapshot aborts (read-too-late)
/// instead of resurrecting the row; the leaf's `del_wts` tag then aborts
/// scanners whose timestamp predates the delete but who arrive after it.
fn apply_deletes(env: &mut SchemeEnv<'_>) {
    let ts = env.st.ts;
    let me = env.st.txn_id;
    for d in std::mem::take(&mut env.st.deletes) {
        // Withdraw the index entries FIRST — while the prewrite is still
        // pending, so a reader holding a stale row reference keeps waiting
        // instead of slipping through a "resolved but not yet removed"
        // window — then tombstone, resolve the prewrite and wake waiters.
        // `del_wts` is raised atomically with the removal (leaf lock), so
        // a scan missing the key is guaranteed to see the tag.
        env.db.index_remove_tagged(d.table, d.key, ts);
        let meta = env.db.row_meta(d.table, d.row);
        let mut s = meta.ts_state();
        s.wts = u64::MAX;
        s.remove_prewrite(me);
        wake_waiters(env.db, &mut s);
    }
}

/// Publish buffered inserts; new tuples start with `wts = rts = ts`.
/// On a duplicate-key race (a conflict the timestamp checks cannot see),
/// or when the target B+-tree leaf has already been scanned by a *later*
/// timestamp (`scan_rts > ts` — committing would plant a phantom behind
/// that scan), every already-published insert is withdrawn before `fail`
/// returns, so the caller can abort cleanly.
fn apply_inserts(env: &mut SchemeEnv<'_>, fail: AbortReason) -> Result<(), AbortReason> {
    let ts = env.st.ts;
    let inserts = std::mem::take(&mut env.st.inserts);
    let mut applied: Vec<(abyss_common::TableId, Key)> = Vec::new();
    let mut failed = false;
    for ins in inserts {
        let t = &env.db.tables[ins.table as usize];
        let data = ins.data.expect("buffered insert has an image");
        if !failed {
            if let Ok(row) = t.allocate_row() {
                // SAFETY: fresh unindexed row.
                unsafe { t.row_mut(row) }.copy_from_slice(&data[..t.row_size()]);
                {
                    let mut s = env.db.row_meta(ins.table, row).ts_state();
                    s.wts = ts;
                    s.rts = ts;
                }
                // The gap check (leaf `scan_rts` vs our timestamp) runs
                // atomically with publication, under the leaf lock: a
                // *committed* later scan left its tag behind and refuses
                // us here; an in-flight one fails its leaf revalidation.
                match env.db.index_insert_guarded(ins.table, ins.key, row, ts) {
                    Ok(crate::db::OrderedPublish::Done(_)) => {
                        applied.push((ins.table, ins.key));
                    }
                    Ok(crate::db::OrderedPublish::GapProtected) | Err(_) => failed = true,
                }
            } else {
                failed = true;
            }
        }
        env.pool.free(data);
    }
    if failed {
        for (table, key) in applied {
            env.db.index_remove(table, key);
        }
        return Err(fail);
    }
    Ok(())
}

/// Abort: withdraw prewrites and wake anyone waiting on them.
fn abort(env: &mut SchemeEnv<'_>) {
    let me = env.st.txn_id;
    for (table, row) in std::mem::take(&mut env.st.prewrites) {
        let mut s = env.db.row_meta(table, row).ts_state();
        s.remove_prewrite(me);
        wake_waiters(env.db, &mut s);
    }
}
