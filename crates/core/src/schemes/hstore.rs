//! H-STORE — timestamp ordering with partition-level locking (§2.2).
//!
//! The database is split into disjoint partitions, each protected by one
//! coarse lock with a timestamp-ordered grant queue. A transaction must
//! name all its partitions up front (§2.2: "this requires the DBMS to know
//! what partitions each individual transaction will access before it
//! begins"), acquires them, then runs with *no per-tuple concurrency
//! control at all* — which is why its per-access overhead is by far the
//! lowest (Fig. 14) and why multi-partition transactions collapse its
//! parallelism (Fig. 15).
//!
//! Two deliberate adaptations, both from §4.3 "Local Partitions":
//!
//! * threads access remote partitions directly through shared memory
//!   rather than shipping queries to a partition-owning engine;
//! * partitions are acquired in sorted partition order, which makes
//!   hold-and-wait cycles impossible while preserving the
//!   oldest-timestamp-first grant discipline within each queue.

use std::time::{Duration, Instant};

use abyss_common::{AbortReason, CoreId, Key, RowIdx, TableId, Ts};
use abyss_storage::Schema;

use abyss_common::CcScheme;

use super::{CcProtocol, ReadRef, SchemeEnv};
use crate::park::WaitOutcome;
use crate::txn::{DeleteEntry, InsertEntry, UndoEntry};
use crate::worker::{TxnError, WorkerCtx};

/// T/O with partition-level locking (H-Store / Smallbase model).
pub struct HStore;

impl CcProtocol for HStore {
    super::scheme_caps!(CcScheme::HStore);

    /// Sort + deduplicate the declared partition set, then acquire it in
    /// partition order (hold-and-wait cycles impossible, §4.3).
    fn begin(
        env: &mut SchemeEnv<'_>,
        partitions: &[abyss_common::PartId],
    ) -> Result<(), AbortReason> {
        let sorted = {
            let mut p = partitions.to_vec();
            p.sort_unstable();
            p.dedup();
            p
        };
        acquire_partitions(env, &sorted)
    }

    #[inline]
    fn read(env: &mut SchemeEnv<'_>, table: TableId, row: RowIdx) -> Result<ReadRef, AbortReason> {
        read(env, table, row)
    }

    #[inline]
    fn write(
        env: &mut SchemeEnv<'_>,
        table: TableId,
        row: RowIdx,
        f: impl FnOnce(&Schema, &mut [u8]),
    ) -> Result<(), AbortReason> {
        write(env, table, row, f)
    }

    #[inline]
    fn insert(
        env: &mut SchemeEnv<'_>,
        table: TableId,
        key: Key,
        f: impl FnOnce(&Schema, &mut [u8]),
    ) -> Result<(), AbortReason> {
        insert(env, table, key, f)
    }

    #[inline]
    fn delete(
        env: &mut SchemeEnv<'_>,
        table: TableId,
        key: Key,
        row: RowIdx,
    ) -> Result<(), AbortReason> {
        delete(env, table, key, row)
    }

    #[inline]
    fn scan(
        ctx: &mut WorkerCtx<Self>,
        table: TableId,
        low: Key,
        high: Key,
        f: &mut dyn FnMut(Key, &Schema, &[u8]),
    ) -> Result<usize, TxnError> {
        ctx.scan_hstore(table, low, high, f)
    }

    fn commit(env: &mut SchemeEnv<'_>) -> Result<(), AbortReason> {
        // WAL commit point: the partitions are still owned.
        env.wal_commit_point_csn();
        commit(env);
        Ok(())
    }

    fn abort(env: &mut SchemeEnv<'_>) {
        abort(env);
    }
}

/// One partition's lock state: a busy flag plus a ts-ordered wait queue.
#[derive(Debug, Default)]
pub struct PartState {
    /// Is the partition currently owned?
    pub busy: bool,
    /// Waiting transactions, sorted by timestamp ascending.
    pub queue: Vec<(Ts, CoreId)>,
}

impl PartState {
    /// Insert keeping ts order (oldest first).
    fn enqueue(&mut self, ts: Ts, worker: CoreId) {
        let pos = self
            .queue
            .iter()
            .position(|&(t, _)| t > ts)
            .unwrap_or(self.queue.len());
        self.queue.insert(pos, (ts, worker));
    }
}

/// Acquire every partition in `partitions` (sorted, deduplicated by the
/// workload generator). Called from `begin`.
fn acquire_partitions(env: &mut SchemeEnv<'_>, partitions: &[u32]) -> Result<(), AbortReason> {
    debug_assert!(
        partitions.windows(2).all(|w| w[0] < w[1]),
        "partitions must be sorted+unique"
    );
    for &p in partitions {
        let ts = env.st.ts;
        let slot = &env.db.parts[p as usize];
        let granted = {
            let mut s = slot.lock();
            if !s.busy {
                s.busy = true;
                true
            } else {
                env.db.park.arm(env.worker);
                s.enqueue(ts, env.worker);
                false
            }
        };
        if !granted {
            let started = Instant::now();
            let deadline = started + Duration::from_micros(env.db.cfg.wait_cap_us);
            let out = env.db.park.wait(env.worker, deadline);
            env.record_wait(started);
            if out == WaitOutcome::TimedOut {
                let mut s = slot.lock();
                let pos = s.queue.iter().position(|&(_, w)| w == env.worker);
                if let Some(i) = pos {
                    s.queue.remove(i);
                    drop(s);
                    env.db.park.reset(env.worker);
                    release_partitions(env);
                    return Err(AbortReason::WaitTimeout);
                }
                // Grant raced the timeout; we own the partition.
                drop(s);
                env.db.park.reset(env.worker);
            }
        }
        env.st.parts.push(p);
    }
    Ok(())
}

/// Release held partitions, granting each queue's oldest waiter.
fn release_partitions(env: &mut SchemeEnv<'_>) {
    for p in std::mem::take(&mut env.st.parts) {
        let mut s = env.db.parts[p as usize].lock();
        if s.queue.is_empty() {
            s.busy = false;
        } else {
            let (_, worker) = s.queue.remove(0);
            // busy stays true: ownership transfers to the woken waiter.
            env.db.park.grant(worker);
        }
    }
}

/// Read in place: the owned partition is exclusive.
fn read(env: &mut SchemeEnv<'_>, table: TableId, row: RowIdx) -> Result<ReadRef, AbortReason> {
    let t = &env.db.tables[table as usize];
    // SAFETY: the transaction owns every partition it touches.
    let data = unsafe { t.row(row) };
    Ok(ReadRef::InPlace {
        ptr: data.as_ptr(),
        len: data.len(),
    })
}

/// Write in place with a before-image (user aborts still roll back).
fn write(
    env: &mut SchemeEnv<'_>,
    table: TableId,
    row: RowIdx,
    f: impl FnOnce(&Schema, &mut [u8]),
) -> Result<(), AbortReason> {
    let t = &env.db.tables[table as usize];
    if !env.st.undo.iter().any(|u| u.table == table && u.row == row) {
        // Uninit is safe: `copy_row_into` fills the full row prefix and
        // the abort path reads exactly that prefix.
        let mut image = env.pool.alloc_uninit(t.row_size());
        // SAFETY: owned partition.
        unsafe { t.copy_row_into(row, &mut image) };
        env.st.undo.push(UndoEntry { table, row, image });
    }
    // SAFETY: owned partition.
    let data = unsafe { t.row_mut(row) };
    f(t.schema(), data);
    Ok(())
}

/// Insert immediately; the partition lock covers visibility.
fn insert(
    env: &mut SchemeEnv<'_>,
    table: TableId,
    key: Key,
    f: impl FnOnce(&Schema, &mut [u8]),
) -> Result<(), AbortReason> {
    let t = &env.db.tables[table as usize];
    let row = t.allocate_row().map_err(|_| AbortReason::LockConflict)?;
    // SAFETY: fresh unindexed row in an owned partition.
    let data = unsafe { t.row_mut(row) };
    f(t.schema(), data);
    if env.db.index_insert(table, key, row).is_err() {
        return Err(AbortReason::LockConflict);
    }
    env.st.inserts.push(InsertEntry {
        table,
        key,
        row: Some(row),
        data: None,
        indexed: true,
    });
    Ok(())
}

/// Delete immediately (owned partitions are exclusive); abort re-publishes
/// the index entries. Deleting a key this transaction itself inserted
/// instead cancels the insert — the abort path must not re-publish a row
/// born in the same (aborted) transaction.
fn delete(
    env: &mut SchemeEnv<'_>,
    table: TableId,
    key: Key,
    row: RowIdx,
) -> Result<(), AbortReason> {
    env.db.index_remove(table, key);
    if let Some(ins) = env
        .st
        .inserts
        .iter_mut()
        .find(|i| i.table == table && i.key == key && i.indexed)
    {
        ins.indexed = false; // withdrawn now; nothing to undo on abort
        return Ok(());
    }
    env.st.deletes.push(DeleteEntry {
        table,
        key,
        row,
        applied: true,
    });
    Ok(())
}

/// Commit: just hand the partitions to the next transactions in line.
fn commit(env: &mut SchemeEnv<'_>) {
    release_partitions(env);
}

/// Abort (user aborts only — H-STORE has no scheduler conflicts): restore
/// before-images, unpublish inserts, release partitions.
fn abort(env: &mut SchemeEnv<'_>) {
    for u in std::mem::take(&mut env.st.undo).into_iter().rev() {
        let t = &env.db.tables[u.table as usize];
        // SAFETY: partitions still owned.
        let data = unsafe { t.row_mut(u.row) };
        data.copy_from_slice(&u.image[..data.len()]);
        env.pool.free(u.image);
    }
    for ins in env.st.inserts.drain(..) {
        if ins.indexed {
            env.db.index_remove(ins.table, ins.key);
        }
    }
    for d in env.st.deletes.drain(..) {
        if d.applied {
            let _ = env.db.index_insert(d.table, d.key, d.row);
        }
    }
    release_partitions(env);
}
