//! SILO — modern epoch-based OCC (Tu et al., SOSP'13), the eighth scheme
//! grown on top of the paper's seven.
//!
//! Where the paper's OCC pays **two** trips to the global timestamp
//! allocator per transaction (start + validation, §4.3/Fig. 8b), SILO
//! pays **zero**: commit identity comes from an epoch-tagged 64-bit TID
//! word per tuple (layout in [`crate::epoch`]). The protocol:
//!
//! 1. **Read phase** — identical to OCC's: seqlock-stable copies against
//!    each tuple's TID word, the observed word recorded in the read set,
//!    writes buffered in a private workspace (shared code in
//!    [`super::occ`]).
//! 2. **Lock** — the write set is sorted into canonical `(table, row)`
//!    order and each tuple's TID word is latched via its lock bit
//!    ([`crate::lockword::silo`]), making concurrent validation
//!    deadlock-free.
//! 3. **Epoch fence** — the global epoch is read *after* all write locks
//!    are held; this is the transaction's serialization point.
//! 4. **Validate** — every read-set entry must still carry its recorded
//!    TID and must not be locked by another transaction.
//! 5. **Commit TID** — the smallest TID that is greater than every TID
//!    observed in the read/write sets and the worker's previous commit
//!    TID, and that carries the fenced epoch.
//! 6. **Install** — workspace rows are copied in place and each written
//!    tuple's word is released to the new TID.
//!
//! The worker-local TID monotonicity plus the per-tuple observations make
//! TID order embed the serial order within an epoch; the epoch fence
//! orders transactions across epochs. No step touches a centralized
//! counter, which is exactly the property the paper's §4.3 calls for at
//! one thousand cores.

use std::sync::atomic::Ordering;

use abyss_common::{AbortReason, CcScheme, Key, RowIdx, TableId};
use abyss_storage::Schema;

use super::occ;
use super::{CcProtocol, ReadRef, SchemeEnv};
use crate::epoch;
use crate::lockword::silo;
use crate::worker::{TxnError, WorkerCtx};

/// Epoch-based OCC (Silo, SOSP'13).
pub struct Silo;

impl CcProtocol for Silo {
    super::scheme_caps!(CcScheme::Silo);

    /// SILO read: optimistic seqlock copy + read-set TID recording (OCC's
    /// read phase, reused verbatim — the recorded `version` is the TID
    /// word).
    #[inline]
    fn read(env: &mut SchemeEnv<'_>, table: TableId, row: RowIdx) -> Result<ReadRef, AbortReason> {
        occ::read(env, table, row)
    }

    /// SILO write: read-modify-write into the private workspace.
    #[inline]
    fn write(
        env: &mut SchemeEnv<'_>,
        table: TableId,
        row: RowIdx,
        f: impl FnOnce(&Schema, &mut [u8]),
    ) -> Result<(), AbortReason> {
        occ::write(env, table, row, f)
    }

    /// SILO insert: buffered until the commit's write phase.
    #[inline]
    fn insert(
        env: &mut SchemeEnv<'_>,
        table: TableId,
        key: Key,
        f: impl FnOnce(&Schema, &mut [u8]),
    ) -> Result<(), AbortReason> {
        occ::insert(env, table, key, f)
    }

    /// SILO delete: observed like a read, removed during the write phase
    /// (OCC's buffered delete, shared).
    #[inline]
    fn delete(
        env: &mut SchemeEnv<'_>,
        table: TableId,
        key: Key,
        row: RowIdx,
    ) -> Result<(), AbortReason> {
        occ::delete(env, table, key, row)
    }

    #[inline]
    fn scan(
        ctx: &mut WorkerCtx<Self>,
        table: TableId,
        low: Key,
        high: Key,
        f: &mut dyn FnMut(Key, &Schema, &[u8]),
    ) -> Result<usize, TxnError> {
        ctx.scan_occ(table, low, high, f)
    }

    /// Validation + write phase; the commit TID comes from the epoch
    /// subsystem plus per-tuple observations (no validation timestamp).
    fn commit(env: &mut SchemeEnv<'_>) -> Result<(), AbortReason> {
        let last = *env.last_tid;
        let tid = commit(env, last)?;
        *env.last_tid = tid;
        Ok(())
    }

    fn abort(env: &mut SchemeEnv<'_>) {
        occ::abort(env);
    }
}

/// Validation + write phase. `last_tid` is the worker's previous commit
/// TID; on success the new (strictly greater) commit TID is returned for
/// the worker to remember.
fn commit(env: &mut SchemeEnv<'_>, last_tid: u64) -> Result<u64, AbortReason> {
    let targets = occ::take_commit_lock_targets(env);
    let r = commit_locked(env, &targets, last_tid);
    occ::put_back_lock_targets(env, targets);
    r
}

fn commit_locked(
    env: &mut SchemeEnv<'_>,
    targets: &[(TableId, RowIdx)],
    last_tid: u64,
) -> Result<u64, AbortReason> {
    // Phase 1: lock the write + delete sets in canonical order — per-tuple
    // latches only, bounded spins so a pathological stall aborts instead
    // of hanging (OCC's lock phase, shared).
    occ::lock_targets(env, targets)?;

    // Phase 2: the epoch fence — the serialization point. Reading the
    // global epoch *after* every write lock is held guarantees no TID this
    // transaction observed can carry a later epoch.
    std::sync::atomic::fence(Ordering::SeqCst);
    let commit_epoch = env.db.epoch.current();

    // Phase 3: validate the read set — TIDs unchanged, no foreign locks —
    // and fold every observed TID into the commit-TID floor.
    let mut max_observed = last_tid.max(epoch::compose_tid(commit_epoch, 0));
    for r in env.st.rset.iter() {
        let word = env.db.row_meta(r.table, r.row).word.load(Ordering::Acquire);
        let own = targets.binary_search(&(r.table, r.row)).is_ok();
        if silo::version(word) != r.version || (silo::is_locked(word) && !own) {
            occ::unlock_targets(env, targets);
            return Err(AbortReason::ValidationFail);
        }
        max_observed = max_observed.max(r.version);
    }

    // Phase 3b: publish inserts — their rows stay latched until phase 4 —
    // *before* the node-set check, so concurrent committers inserting
    // into each other's scanned ranges see each other's leaf bumps and at
    // least one aborts (Silo inserts into Masstree before validating for
    // exactly this reason).
    let inserted = match occ::publish_buffered_inserts(env) {
        Ok(v) => v,
        Err(reason) => {
            occ::unlock_targets(env, targets);
            return Err(reason);
        }
    };
    occ::refresh_own_node_set(env, &inserted);

    // Phase 3c: node-set validation — the leaves every range scan read
    // must be structurally unchanged, or a phantom may have slipped into
    // a scanned gap (Silo's Masstree node-set check).
    if !occ::validate_node_set(env) {
        occ::withdraw_published_inserts(env, &inserted);
        occ::unlock_targets(env, targets);
        return Err(AbortReason::ValidationFail);
    }
    let commit_tid = max_observed + 1;
    debug_assert_eq!(
        epoch::tid_epoch(commit_tid),
        commit_epoch,
        "per-epoch sequence space exhausted"
    );
    // WAL commit point: the commit TID (which embeds the fenced epoch) is
    // the record's serial — conflicting transactions' TIDs order exactly
    // as their installs do — and the append lands before any write lock
    // releases.
    env.wal_commit_point_at(commit_epoch, commit_tid);

    // Phase 4: nothing can fail now. Release the fresh rows at the commit
    // TID — every committed tuple's word carries its commit epoch (the
    // invariant `safe_epoch` consumers rely on) — then apply deletes and
    // install the workspace, releasing each word to the commit TID.
    for &(table, _, row, _) in &inserted {
        env.db
            .row_meta(table, row)
            .word
            .store(commit_tid, Ordering::Release);
    }
    // Deletes: withdraw the index entries (bumping the covering leaf's
    // version — in-flight scanners fail their node set), then release the
    // word at the commit TID so stale readers fail validation.
    let deletes = std::mem::take(&mut env.st.deletes);
    for d in deletes.iter() {
        env.db.index_remove(d.table, d.key);
        env.db
            .row_meta(d.table, d.row)
            .word
            .store(commit_tid, Ordering::Release);
    }
    for w in std::mem::take(&mut env.st.wbuf) {
        if deletes.iter().any(|d| d.table == w.table && d.row == w.row) {
            env.pool.free(w.data);
            continue;
        }
        let t = &env.db.tables[w.table as usize];
        // SAFETY: we hold the tuple's lock bit; readers' seqlock re-check
        // rejects any copy that overlapped this write.
        let data = unsafe { t.row_mut(w.row) };
        data.copy_from_slice(&w.data[..data.len()]);
        env.db
            .row_meta(w.table, w.row)
            .word
            .store(commit_tid, Ordering::Release);
        env.pool.free(w.data);
    }
    Ok(commit_tid)
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use abyss_common::CcScheme;
    use abyss_storage::{row, Catalog, Schema};

    use crate::config::EngineConfig;
    use crate::db::Database;

    fn silo_db(workers: u32) -> Arc<Database> {
        let mut cat = Catalog::new();
        cat.add_table("t", Schema::key_plus_payload(2, 8), 1000);
        let db = Database::new(EngineConfig::new(CcScheme::Silo, workers), cat).unwrap();
        db.load_table(0, 0..100u64, |s, r, k| {
            row::set_u64(s, r, 0, k);
            row::set_u64(s, r, 1, 100);
        })
        .unwrap();
        db
    }

    #[test]
    fn commit_tids_are_monotonic_and_epoch_tagged() {
        let db = silo_db(1);
        let mut ctx = db.worker(0);
        let mut last = 0u64;
        for i in 0..5u64 {
            ctx.run_txn(&[], |t| {
                t.update(0, i, |s, d| row::set_u64(s, d, 1, 200 + i))
            })
            .unwrap();
            let tid = ctx.last_commit_tid();
            assert!(tid > last, "commit TIDs must be strictly increasing");
            assert!(crate::epoch::tid_epoch(tid) >= crate::epoch::FIRST_EPOCH);
            last = tid;
        }
    }

    #[test]
    fn written_tuple_carries_the_commit_tid() {
        let db = silo_db(1);
        let mut ctx = db.worker(0);
        ctx.run_txn(&[], |t| t.update(0, 7, |s, d| row::set_u64(s, d, 1, 777)))
            .unwrap();
        let meta = db.row_meta(0, db.index_get(0, 7).unwrap());
        assert_eq!(meta.tid(), ctx.last_commit_tid());
        let word = meta.word.load(std::sync::atomic::Ordering::Acquire);
        assert!(!crate::lockword::silo::is_locked(word));
    }

    #[test]
    fn inserted_rows_carry_the_commit_tid() {
        let db = silo_db(1);
        let mut ctx = db.worker(0);
        ctx.run_txn(&[], |t| {
            t.insert(0, 500, |s, d| {
                row::set_u64(s, d, 0, 500);
                row::set_u64(s, d, 1, 1);
            })
        })
        .unwrap();
        let meta = db.row_meta(0, db.index_get(0, 500).unwrap());
        assert_eq!(meta.tid(), ctx.last_commit_tid());
        assert!(crate::epoch::tid_epoch(meta.tid()) >= crate::epoch::FIRST_EPOCH);
    }

    #[test]
    fn epoch_advance_raises_commit_epochs() {
        let db = silo_db(1);
        let mut ctx = db.worker(0);
        ctx.run_txn(&[], |t| t.update(0, 1, |s, d| row::set_u64(s, d, 1, 1)))
            .unwrap();
        let e1 = crate::epoch::tid_epoch(ctx.last_commit_tid());
        db.epoch_manager().advance();
        db.epoch_manager().advance();
        ctx.run_txn(&[], |t| t.update(0, 1, |s, d| row::set_u64(s, d, 1, 2)))
            .unwrap();
        let e2 = crate::epoch::tid_epoch(ctx.last_commit_tid());
        assert!(
            e2 >= e1 + 2,
            "commit epoch must follow the advanced global epoch"
        );
    }

    #[test]
    fn epoch_advance_mid_transaction_lands_in_commit_tid() {
        // The epoch fence reads the global epoch *after* the write locks
        // are held — so an advance that races the transaction (between its
        // reads and its commit) must be reflected in the commit TID, not
        // the epoch current at begin().
        let db = silo_db(1);
        let mut ctx = db.worker(0);
        ctx.begin(&[], None).unwrap();
        let v = ctx.read_u64(0, 1, 1).unwrap();
        let advanced = db.epoch_manager().advance();
        ctx.update(0, 1, |s, d| row::set_u64(s, d, 1, v + 1))
            .unwrap();
        ctx.commit().unwrap();
        assert_eq!(
            crate::epoch::tid_epoch(ctx.last_commit_tid()),
            advanced,
            "commit epoch must be read at the fence, not at begin"
        );
    }

    #[test]
    fn stale_read_set_fails_validation() {
        let db = silo_db(2);
        let mut a = db.worker(0);
        let mut b = db.worker(1);
        // a reads key 5, then b commits a write to it; a's commit (which
        // also writes, so it cannot be a blind no-op) must abort.
        a.begin(&[], None).unwrap();
        let v = a.read_u64(0, 5, 1).unwrap();
        assert_eq!(v, 100);
        a.update(0, 6, |s, d| row::set_u64(s, d, 1, v + 1)).unwrap();
        b.run_txn(&[], |t| t.update(0, 5, |s, d| row::set_u64(s, d, 1, 999)))
            .unwrap();
        let r = a.commit();
        assert!(
            matches!(
                r,
                Err(crate::worker::TxnError::Abort(
                    abyss_common::AbortReason::ValidationFail
                ))
            ),
            "stale read must fail validation, got {r:?}"
        );
    }
}
