//! The database: catalog-driven tables, indexes, per-tuple CC metadata, and
//! the shared machinery (timestamp allocator, park table, waits-for graph,
//! partition locks) that the scheme implementations coordinate through.

use std::sync::Arc;
use std::time::Duration;

use abyss_common::{CcScheme, DbError, Key, RowIdx, TableId};
use abyss_storage::{Catalog, HashIndex, Schema, Table};
use crossbeam_utils::CachePadded;
use parking_lot::Mutex;

use crate::config::EngineConfig;
use crate::epoch::{EpochManager, EpochTicker};
use crate::meta::RowMeta;
use crate::park::ParkTable;
use crate::schemes::hstore::PartState;
use crate::ts::SharedTs;
use crate::waitsfor::WaitsFor;
use crate::worker::WorkerCtx;

/// A main-memory database running one concurrency-control scheme.
///
/// Construction allocates every table arena, hash index and per-tuple
/// metadata array up front; [`Database::load_table`] populates rows;
/// [`Database::worker`] creates per-thread contexts that execute
/// transactions (see [`crate::worker::WorkerCtx`]).
pub struct Database {
    pub(crate) cfg: EngineConfig,
    pub(crate) catalog: Catalog,
    pub(crate) tables: Vec<Table>,
    pub(crate) indexes: Vec<HashIndex>,
    pub(crate) meta: Vec<Box<[RowMeta]>>,
    pub(crate) ts: SharedTs,
    pub(crate) park: ParkTable,
    pub(crate) waits: WaitsFor,
    pub(crate) parts: Box<[CachePadded<Mutex<PartState>>]>,
    /// The epoch subsystem (SILO commit TIDs, quiescence detection). Always
    /// present — it is a handful of cache lines — but the background ticker
    /// only runs for schemes that consume epochs.
    pub(crate) epoch: Arc<EpochManager>,
    /// Background epoch ticker; advancing stops when the database drops.
    _ticker: Option<EpochTicker>,
}

impl Database {
    /// Build a database for `catalog` under `cfg`.
    pub fn new(cfg: EngineConfig, catalog: Catalog) -> Result<Arc<Self>, DbError> {
        cfg.validate().map_err(DbError::SchemaViolation)?;
        let mut tables = Vec::with_capacity(catalog.len());
        let mut indexes = Vec::with_capacity(catalog.len());
        let mut meta = Vec::with_capacity(catalog.len());
        for def in catalog.tables() {
            tables.push(Table::new(def.schema.clone(), def.capacity));
            indexes.push(HashIndex::new(def.id, def.capacity));
            let mut m = Vec::with_capacity(def.capacity as usize);
            m.resize_with(def.capacity as usize, RowMeta::default);
            meta.push(m.into_boxed_slice());
        }
        let parts_n = cfg.partitions as usize;
        let mut parts = Vec::with_capacity(parts_n);
        parts.resize_with(parts_n, || {
            CachePadded::new(Mutex::new(PartState::default()))
        });
        let epoch = Arc::new(EpochManager::new(cfg.workers));
        let ticker = if cfg.scheme == CcScheme::Silo && cfg.epoch_interval_us > 0 {
            Some(EpochTicker::start(
                Arc::clone(&epoch),
                Duration::from_micros(cfg.epoch_interval_us),
            ))
        } else {
            None
        };
        Ok(Arc::new(Self {
            ts: SharedTs::new(cfg.ts_method),
            park: ParkTable::new(cfg.workers),
            waits: WaitsFor::new(cfg.workers),
            parts: parts.into_boxed_slice(),
            catalog,
            tables,
            indexes,
            meta,
            cfg,
            epoch,
            _ticker: ticker,
        }))
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// The active concurrency-control scheme.
    pub fn scheme(&self) -> CcScheme {
        self.cfg.scheme
    }

    /// The catalog this database was built from.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The epoch subsystem (see [`crate::epoch`]). Schemes read it on
    /// their commit path; tests and tools may advance it manually.
    pub fn epoch_manager(&self) -> &EpochManager {
        &self.epoch
    }

    /// Schema of `table`.
    pub fn schema(&self, table: TableId) -> &Schema {
        self.tables[table as usize].schema()
    }

    /// Number of row *slots* allocated in `table`. Aborted eager inserts
    /// (2PL, H-STORE) leave unreachable slots behind, so this can exceed
    /// [`Database::index_len`]; use the latter to count live rows.
    pub fn table_len(&self, table: TableId) -> u64 {
        self.tables[table as usize].len()
    }

    /// Number of live (indexed) rows in `table`. Walks the index buckets —
    /// diagnostics and post-run checks, not for hot paths.
    pub fn index_len(&self, table: TableId) -> u64 {
        self.indexes[table as usize].len() as u64
    }

    /// Per-tuple metadata of a row.
    #[inline]
    pub(crate) fn row_meta(&self, table: TableId, row: RowIdx) -> &RowMeta {
        &self.meta[table as usize][row as usize]
    }

    /// Index probe.
    #[inline]
    pub(crate) fn index_get(&self, table: TableId, key: Key) -> Result<RowIdx, DbError> {
        self.indexes[table as usize].get(key)
    }

    /// Bulk-load rows into `table`. Not transactional; run before workers
    /// start. `init` fills each freshly allocated row.
    pub fn load_table(
        &self,
        table: TableId,
        keys: impl IntoIterator<Item = Key>,
        mut init: impl FnMut(&Schema, &mut [u8], Key),
    ) -> Result<u64, DbError> {
        let t = &self.tables[table as usize];
        let idx = &self.indexes[table as usize];
        let mut n = 0;
        for key in keys {
            let row = t.allocate_row()?;
            // SAFETY: the row was just allocated and is not yet indexed, so
            // no other thread can reach it.
            let data = unsafe { t.row_mut(row) };
            init(t.schema(), data, key);
            idx.insert(key, row)?;
            n += 1;
        }
        Ok(n)
    }

    /// Create the execution context for `worker` (one per thread).
    pub fn worker(self: &Arc<Self>, worker: u32) -> WorkerCtx {
        assert!(worker < self.cfg.workers, "worker id {worker} out of range");
        WorkerCtx::new(Arc::clone(self), worker)
    }

    /// Direct unprotected read of a row by key — for tests and post-run
    /// verification only (no concurrency control!).
    pub fn peek(&self, table: TableId, key: Key) -> Result<Vec<u8>, DbError> {
        let row = self.index_get(table, key)?;
        let t = &self.tables[table as usize];
        // For MVCC the table row may be stale (committed data lives in the
        // version chain); return the newest version instead.
        if self.cfg.scheme == CcScheme::Mvcc {
            let meta = self.row_meta(table, row);
            let chain = meta.mvcc_chain(|| {
                // SAFETY: quiescent access (documented contract of peek).
                unsafe { t.row(row).to_vec().into_boxed_slice() }
            });
            if let Some(v) = chain.versions.back() {
                return Ok(v.data.to_vec());
            }
        }
        // SAFETY: quiescent access (documented contract of peek).
        Ok(unsafe { t.row(row).to_vec() })
    }

    /// Sum a `u64` column over all rows of `table` — post-run invariant
    /// checks (no concurrency control; call when workers are stopped).
    pub fn sum_column(&self, table: TableId, col: usize) -> u64 {
        let t = &self.tables[table as usize];
        let mut sum = 0u64;
        for row in 0..t.len() {
            if self.cfg.scheme == CcScheme::Mvcc {
                let meta = self.row_meta(table, row);
                let chain = meta.mvcc_chain(|| unsafe { t.row(row).to_vec().into_boxed_slice() });
                if let Some(v) = chain.versions.back() {
                    sum = sum.wrapping_add(abyss_storage::row::get_u64(t.schema(), &v.data, col));
                    continue;
                }
            }
            // SAFETY: quiescent access (documented contract).
            let data = unsafe { t.row(row) };
            sum = sum.wrapping_add(abyss_storage::row::get_u64(t.schema(), data, col));
        }
        sum
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("scheme", &self.cfg.scheme)
            .field("workers", &self.cfg.workers)
            .field("tables", &self.tables.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abyss_storage::row;

    fn tiny_db(scheme: CcScheme) -> Arc<Database> {
        let mut cat = Catalog::new();
        cat.add_table("t", Schema::key_plus_payload(1, 8), 100);
        let db = Database::new(EngineConfig::new(scheme, 2), cat).unwrap();
        db.load_table(0, 0..50, |s, r, k| {
            row::set_u64(s, r, 0, k);
            row::set_u64(s, r, 1, k * 10);
        })
        .unwrap();
        db
    }

    #[test]
    fn load_and_peek() {
        let db = tiny_db(CcScheme::NoWait);
        assert_eq!(db.table_len(0), 50);
        let r = db.peek(0, 7).unwrap();
        assert_eq!(row::get_u64(db.schema(0), &r, 0), 7);
        assert_eq!(row::get_u64(db.schema(0), &r, 1), 70);
        assert!(db.peek(0, 99).is_err());
    }

    #[test]
    fn sum_column_over_load() {
        let db = tiny_db(CcScheme::NoWait);
        // sum of k*10 for k in 0..50
        assert_eq!(db.sum_column(0, 1), (0..50u64).map(|k| k * 10).sum());
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut cat = Catalog::new();
        cat.add_table("t", Schema::key_plus_payload(1, 8), 10);
        let mut cfg = EngineConfig::new(CcScheme::NoWait, 1);
        cfg.workers = 0;
        assert!(Database::new(cfg, cat).is_err());
    }

    #[test]
    fn worker_id_bounds_checked() {
        let db = tiny_db(CcScheme::NoWait);
        let _ok = db.worker(1);
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| db.worker(5)));
        assert!(res.is_err());
    }
}
