//! The database: catalog-driven tables, indexes, per-tuple CC metadata, and
//! the shared machinery (timestamp allocator, park table, waits-for graph,
//! partition locks) that the scheme implementations coordinate through.

use std::sync::Arc;
use std::time::Duration;

use abyss_common::{CcScheme, DbError, Key, RowIdx, TableId};
use abyss_storage::btree::{GuardedInsert, LeafId};
use abyss_storage::{BPlusTree, BtreeHealth, Catalog, HashIndex, Schema, Table};
use crossbeam_utils::CachePadded;
use parking_lot::Mutex;

use crate::config::EngineConfig;
use crate::epoch::{EpochManager, EpochTicker};
use crate::meta::RowMeta;
use crate::park::ParkTable;
use crate::schemes::hstore::PartState;
use crate::ts::SharedTs;
use crate::waitsfor::WaitsFor;
use crate::worker::WorkerCtx;

/// A main-memory database running one concurrency-control scheme.
///
/// Construction allocates every table arena, hash index and per-tuple
/// metadata array up front; [`Database::load_table`] populates rows;
/// [`Database::worker`] creates per-thread contexts that execute
/// transactions (see [`crate::worker::WorkerCtx`]).
pub struct Database {
    pub(crate) cfg: EngineConfig,
    pub(crate) catalog: Catalog,
    pub(crate) tables: Vec<Table>,
    pub(crate) indexes: Vec<HashIndex>,
    /// Ordered (B+-tree) index per table marked `ordered` in the catalog.
    pub(crate) ordered: Vec<Option<BPlusTree>>,
    /// Per-table "+∞ key" lock anchor: 2PL next-key locking needs a
    /// lockable successor even when a scan range has none (see
    /// [`crate::txn::GAP_ROW`]).
    pub(crate) gap_meta: Vec<RowMeta>,
    pub(crate) meta: Vec<Box<[RowMeta]>>,
    pub(crate) ts: SharedTs,
    pub(crate) park: ParkTable,
    pub(crate) waits: WaitsFor,
    pub(crate) parts: Box<[CachePadded<Mutex<PartState>>]>,
    /// The epoch subsystem (SILO commit TIDs, quiescence detection). Always
    /// present — it is a handful of cache lines — but the background ticker
    /// only runs for schemes that consume epochs.
    pub(crate) epoch: Arc<EpochManager>,
    /// Background epoch ticker; advancing stops when the database drops.
    _ticker: Option<EpochTicker>,
}

impl Database {
    /// Build a database for `catalog` under `cfg`.
    pub fn new(cfg: EngineConfig, catalog: Catalog) -> Result<Arc<Self>, DbError> {
        cfg.validate().map_err(DbError::SchemaViolation)?;
        let mut tables = Vec::with_capacity(catalog.len());
        let mut indexes = Vec::with_capacity(catalog.len());
        let mut ordered = Vec::with_capacity(catalog.len());
        let mut gap_meta = Vec::with_capacity(catalog.len());
        let mut meta = Vec::with_capacity(catalog.len());
        for def in catalog.tables() {
            tables.push(Table::new(def.schema.clone(), def.capacity));
            indexes.push(HashIndex::new(def.id, def.capacity));
            ordered.push(def.ordered.then(|| BPlusTree::new(def.id)));
            gap_meta.push(RowMeta::default());
            let mut m = Vec::with_capacity(def.capacity as usize);
            m.resize_with(def.capacity as usize, RowMeta::default);
            meta.push(m.into_boxed_slice());
        }
        let parts_n = cfg.partitions as usize;
        let mut parts = Vec::with_capacity(parts_n);
        parts.resize_with(parts_n, || {
            CachePadded::new(Mutex::new(PartState::default()))
        });
        let epoch = Arc::new(EpochManager::new(cfg.workers));
        let ticker = if matches!(cfg.scheme, CcScheme::Silo | CcScheme::TicToc)
            && cfg.epoch_interval_us > 0
        {
            Some(EpochTicker::start(
                Arc::clone(&epoch),
                Duration::from_micros(cfg.epoch_interval_us),
            ))
        } else {
            None
        };
        Ok(Arc::new(Self {
            ts: SharedTs::new(cfg.ts_method),
            park: ParkTable::new(cfg.workers),
            waits: WaitsFor::new(cfg.workers),
            parts: parts.into_boxed_slice(),
            catalog,
            tables,
            indexes,
            ordered,
            gap_meta,
            meta,
            cfg,
            epoch,
            _ticker: ticker,
        }))
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// The active concurrency-control scheme.
    pub fn scheme(&self) -> CcScheme {
        self.cfg.scheme
    }

    /// The catalog this database was built from.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The epoch subsystem (see [`crate::epoch`]). Schemes read it on
    /// their commit path; tests and tools may advance it manually.
    pub fn epoch_manager(&self) -> &EpochManager {
        &self.epoch
    }

    /// Schema of `table`.
    pub fn schema(&self, table: TableId) -> &Schema {
        self.tables[table as usize].schema()
    }

    /// Number of row *slots* allocated in `table`. Aborted eager inserts
    /// (2PL, H-STORE) leave unreachable slots behind, so this can exceed
    /// [`Database::index_len`]; use the latter to count live rows.
    pub fn table_len(&self, table: TableId) -> u64 {
        self.tables[table as usize].len()
    }

    /// Number of live (indexed) rows in `table`. Walks the index buckets —
    /// diagnostics and post-run checks, not for hot paths.
    pub fn index_len(&self, table: TableId) -> u64 {
        self.indexes[table as usize].len() as u64
    }

    /// Per-tuple metadata of a row. [`crate::txn::GAP_ROW`] addresses the
    /// table's "+∞" gap anchor instead of a real slot.
    #[inline]
    pub(crate) fn row_meta(&self, table: TableId, row: RowIdx) -> &RowMeta {
        if row == crate::txn::GAP_ROW {
            &self.gap_meta[table as usize]
        } else {
            &self.meta[table as usize][row as usize]
        }
    }

    /// Index probe.
    #[inline]
    pub(crate) fn index_get(&self, table: TableId, key: Key) -> Result<RowIdx, DbError> {
        self.indexes[table as usize].get(key)
    }

    /// The ordered index of `table`, if the catalog declared one.
    #[inline]
    pub(crate) fn ordered_index(&self, table: TableId) -> Option<&BPlusTree> {
        self.ordered[table as usize].as_ref()
    }

    /// The ordered index of `table`, or the error scan callers surface.
    #[inline]
    pub(crate) fn require_ordered(&self, table: TableId) -> Result<&BPlusTree, DbError> {
        self.ordered_index(table).ok_or(DbError::Unsupported(
            "range scan on a table without an ordered index",
        ))
    }

    /// Publish `key → row` in every index of `table` (hash, plus the
    /// ordered index when present). Returns the B+-tree leaf the key
    /// landed in so timestamp schemes can run their gap checks against it.
    /// Atomic across indexes: a duplicate rolls the hash insert back.
    pub(crate) fn index_insert(
        &self,
        table: TableId,
        key: Key,
        row: RowIdx,
    ) -> Result<Option<LeafId>, DbError> {
        self.indexes[table as usize].insert(key, row)?;
        if let Some(tree) = self.ordered_index(table) {
            match tree.insert(key, row) {
                Ok(leaf) => Ok(Some(leaf)),
                Err(e) => {
                    // Hash uniqueness makes this unreachable in practice,
                    // but keep the pair consistent regardless.
                    self.indexes[table as usize].remove(key);
                    Err(e)
                }
            }
        } else {
            Ok(None)
        }
    }

    /// Withdraw `key` from every index of `table`. Returns the row it
    /// mapped to and the B+-tree leaf it was removed from (when ordered).
    pub(crate) fn index_remove(
        &self,
        table: TableId,
        key: Key,
    ) -> Option<(RowIdx, Option<LeafId>)> {
        let row = self.indexes[table as usize].remove(key)?;
        let leaf = self
            .ordered_index(table)
            .and_then(|tree| tree.remove(key).map(|(_, leaf)| leaf));
        Some((row, leaf))
    }

    /// [`Database::index_remove`] for the timestamp schemes: the covering
    /// leaf's `del_wts` tag is raised to `ts` atomically with the removal
    /// (under the leaf lock), so a scan that misses the key is guaranteed
    /// to also see the tag.
    pub(crate) fn index_remove_tagged(
        &self,
        table: TableId,
        key: Key,
        ts: abyss_common::Ts,
    ) -> Option<(RowIdx, Option<LeafId>)> {
        let row = self.indexes[table as usize].remove(key)?;
        let leaf = self
            .ordered_index(table)
            .and_then(|tree| tree.remove_tagged(key, ts).map(|(_, leaf)| leaf));
        Some((row, leaf))
    }

    /// [`Database::index_insert`] for the timestamp schemes: refuses the
    /// insert (rolling the hash entry back) when the covering leaf's
    /// `scan_rts` tag exceeds `ts`. The check is atomic with publication
    /// (under the leaf lock), so a committed scan that missed this key
    /// either raised the tag first — and we refuse — or observes the key
    /// through its leaf revalidation.
    pub(crate) fn index_insert_guarded(
        &self,
        table: TableId,
        key: Key,
        row: RowIdx,
        ts: abyss_common::Ts,
    ) -> Result<OrderedPublish, DbError> {
        self.indexes[table as usize].insert(key, row)?;
        let Some(tree) = self.ordered_index(table) else {
            return Ok(OrderedPublish::Done(None));
        };
        match tree.insert_guarded(key, row, ts) {
            Ok(GuardedInsert::Inserted { leaf, .. }) => Ok(OrderedPublish::Done(Some(leaf))),
            Ok(GuardedInsert::GapProtected) => {
                self.indexes[table as usize].remove(key);
                Ok(OrderedPublish::GapProtected)
            }
            Err(e) => {
                self.indexes[table as usize].remove(key);
                Err(e)
            }
        }
    }

    /// [`Database::index_insert`] additionally reporting the B+-tree
    /// leaf's pre-insert version (OCC/SILO own-node-set accounting).
    pub(crate) fn index_insert_tracked(
        &self,
        table: TableId,
        key: Key,
        row: RowIdx,
    ) -> Result<Option<(LeafId, u64)>, DbError> {
        self.indexes[table as usize].insert(key, row)?;
        let Some(tree) = self.ordered_index(table) else {
            return Ok(None);
        };
        match tree.insert_tracked(key, row) {
            Ok(info) => Ok(Some(info)),
            Err(e) => {
                self.indexes[table as usize].remove(key);
                Err(e)
            }
        }
    }

    /// Bulk-load rows into `table`. Not transactional; run before workers
    /// start. `init` fills each freshly allocated row.
    pub fn load_table(
        &self,
        table: TableId,
        keys: impl IntoIterator<Item = Key>,
        mut init: impl FnMut(&Schema, &mut [u8], Key),
    ) -> Result<u64, DbError> {
        let t = &self.tables[table as usize];
        let mut n = 0;
        for key in keys {
            let row = t.allocate_row()?;
            // SAFETY: the row was just allocated and is not yet indexed, so
            // no other thread can reach it.
            let data = unsafe { t.row_mut(row) };
            init(t.schema(), data, key);
            self.index_insert(table, key, row)?;
            n += 1;
        }
        Ok(n)
    }

    /// Diagnostics: `(version, scan_rts, del_wts)` of the B+-tree leaf
    /// covering `key`'s position, when the table is ordered.
    #[doc(hidden)]
    pub fn debug_leaf_tags(&self, table: TableId, key: Key) -> Option<(u64, u64, u64)> {
        let tree = self.ordered_index(table)?;
        let sr = tree.scan(key, key);
        let &(leaf, v) = sr.leaves.first()?;
        Some((v, tree.leaf_scan_rts(leaf), tree.leaf_del_wts(leaf)))
    }

    /// Index-health snapshot for `table` — the regression surface the
    /// bench binaries export (hash chain length, B+-tree shape).
    pub fn index_health(&self, table: TableId) -> IndexHealth {
        IndexHealth {
            hash_len: self.indexes[table as usize].len(),
            hash_max_chain: self.indexes[table as usize].max_chain(),
            btree: self.ordered_index(table).map(|t| t.health()),
        }
    }

    /// Create the execution context for `worker` (one per thread).
    pub fn worker(self: &Arc<Self>, worker: u32) -> WorkerCtx {
        assert!(worker < self.cfg.workers, "worker id {worker} out of range");
        WorkerCtx::new(Arc::clone(self), worker)
    }

    /// Direct unprotected read of a row by key — for tests and post-run
    /// verification only (no concurrency control!).
    pub fn peek(&self, table: TableId, key: Key) -> Result<Vec<u8>, DbError> {
        let row = self.index_get(table, key)?;
        let t = &self.tables[table as usize];
        // For MVCC the table row may be stale (committed data lives in the
        // version chain); return the newest version instead.
        if self.cfg.scheme == CcScheme::Mvcc {
            let meta = self.row_meta(table, row);
            let chain = meta.mvcc_chain(|| {
                // SAFETY: quiescent access (documented contract of peek).
                unsafe { t.row(row).to_vec().into_boxed_slice() }
            });
            if let Some(v) = chain.versions.back() {
                return Ok(v.data.to_vec());
            }
        }
        // SAFETY: quiescent access (documented contract of peek).
        Ok(unsafe { t.row(row).to_vec() })
    }

    /// Sum a `u64` column over all rows of `table` — post-run invariant
    /// checks (no concurrency control; call when workers are stopped).
    pub fn sum_column(&self, table: TableId, col: usize) -> u64 {
        let t = &self.tables[table as usize];
        let mut sum = 0u64;
        for row in 0..t.len() {
            if self.cfg.scheme == CcScheme::Mvcc {
                let meta = self.row_meta(table, row);
                let chain = meta.mvcc_chain(|| unsafe { t.row(row).to_vec().into_boxed_slice() });
                if let Some(v) = chain.versions.back() {
                    sum = sum.wrapping_add(abyss_storage::row::get_u64(t.schema(), &v.data, col));
                    continue;
                }
            }
            // SAFETY: quiescent access (documented contract).
            let data = unsafe { t.row(row) };
            sum = sum.wrapping_add(abyss_storage::row::get_u64(t.schema(), data, col));
        }
        sum
    }
}

/// Outcome of [`Database::index_insert_guarded`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum OrderedPublish {
    /// Published in every index (the leaf, when the table is ordered).
    Done(Option<LeafId>),
    /// Refused: a later-timestamp scan already covered the target gap.
    GapProtected,
}

/// Index-health snapshot of one table (see [`Database::index_health`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexHealth {
    /// Live keys in the hash index.
    pub hash_len: usize,
    /// Longest hash bucket chain (load-factor regression signal).
    pub hash_max_chain: usize,
    /// B+-tree shape, when the table carries an ordered index.
    pub btree: Option<BtreeHealth>,
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("scheme", &self.cfg.scheme)
            .field("workers", &self.cfg.workers)
            .field("tables", &self.tables.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abyss_storage::row;

    fn tiny_db(scheme: CcScheme) -> Arc<Database> {
        let mut cat = Catalog::new();
        cat.add_table("t", Schema::key_plus_payload(1, 8), 100);
        let db = Database::new(EngineConfig::new(scheme, 2), cat).unwrap();
        db.load_table(0, 0..50, |s, r, k| {
            row::set_u64(s, r, 0, k);
            row::set_u64(s, r, 1, k * 10);
        })
        .unwrap();
        db
    }

    #[test]
    fn load_and_peek() {
        let db = tiny_db(CcScheme::NoWait);
        assert_eq!(db.table_len(0), 50);
        let r = db.peek(0, 7).unwrap();
        assert_eq!(row::get_u64(db.schema(0), &r, 0), 7);
        assert_eq!(row::get_u64(db.schema(0), &r, 1), 70);
        assert!(db.peek(0, 99).is_err());
    }

    #[test]
    fn sum_column_over_load() {
        let db = tiny_db(CcScheme::NoWait);
        // sum of k*10 for k in 0..50
        assert_eq!(db.sum_column(0, 1), (0..50u64).map(|k| k * 10).sum());
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut cat = Catalog::new();
        cat.add_table("t", Schema::key_plus_payload(1, 8), 10);
        let mut cfg = EngineConfig::new(CcScheme::NoWait, 1);
        cfg.workers = 0;
        assert!(Database::new(cfg, cat).is_err());
    }

    #[test]
    fn worker_id_bounds_checked() {
        let db = tiny_db(CcScheme::NoWait);
        let _ok = db.worker(1);
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| db.worker(5)));
        assert!(res.is_err());
    }
}
