//! The database: catalog-driven tables, indexes, per-tuple CC metadata, and
//! the shared machinery (timestamp allocator, park table, waits-for graph,
//! partition locks) that the scheme implementations coordinate through.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use abyss_common::fxhash;
use abyss_common::Padded;
use abyss_common::{CcScheme, DbError, Key, RowIdx, TableId};
use abyss_storage::btree::{GuardedInsert, LeafId};
use abyss_storage::wal::{self, RecOp, WalSet, WalStats};
use abyss_storage::{BPlusTree, BtreeHealth, Catalog, FsyncPolicy, HashIndex, Schema, Table};
use parking_lot::Mutex;

use crate::config::EngineConfig;
use crate::epoch::{EpochManager, EpochTicker};
use crate::meta::RowMeta;
use crate::obs::metrics::{MetricsSnapshot, TableMetrics};
use crate::obs::trace::{TraceDump, TraceEvent, TraceEventKind, TraceSet};
use crate::park::ParkTable;
use crate::schemes::hstore::PartState;
use crate::ts::SharedTs;
use crate::txn::TxnState;
use crate::waitsfor::WaitsFor;
use crate::worker::WorkerCtx;

/// A main-memory database running one concurrency-control scheme.
///
/// Construction allocates every table arena, hash index and per-tuple
/// metadata array up front; [`Database::load_table`] populates rows;
/// [`Database::worker`] creates per-thread contexts that execute
/// transactions (see [`crate::worker::WorkerCtx`]).
pub struct Database {
    pub(crate) cfg: EngineConfig,
    pub(crate) catalog: Catalog,
    pub(crate) tables: Vec<Table>,
    pub(crate) indexes: Vec<HashIndex>,
    /// Ordered (B+-tree) index per table marked `ordered` in the catalog.
    pub(crate) ordered: Vec<Option<BPlusTree>>,
    /// Per-table "+∞ key" lock anchor: 2PL next-key locking needs a
    /// lockable successor even when a scan range has none (see
    /// [`crate::txn::GAP_ROW`]).
    pub(crate) gap_meta: Vec<RowMeta>,
    pub(crate) meta: Vec<Box<[RowMeta]>>,
    pub(crate) ts: SharedTs,
    pub(crate) park: ParkTable,
    pub(crate) waits: WaitsFor,
    pub(crate) parts: Box<[Padded<Mutex<PartState>>]>,
    /// The epoch subsystem (SILO commit TIDs, quiescence detection). Always
    /// present — it is a handful of cache lines — but the background ticker
    /// only runs for schemes that consume epochs (or when logging makes
    /// every scheme consume them as the group-commit horizon).
    pub(crate) epoch: Arc<EpochManager>,
    /// The write-ahead log (None = durability off, the paper's setting).
    pub(crate) wal: Option<Arc<WalSet>>,
    /// Per-worker txn event rings (None = tracing off, the default; the
    /// event sites then cost one Option check).
    pub(crate) trace: Option<TraceSet>,
    /// Live per-phase attempt-time totals (None = breakdown off, the
    /// default). Workers flush one relaxed add per non-zero phase per
    /// attempt; `metrics_snapshot` reads them as gauges mid-run.
    pub(crate) phase_acc: Option<Box<[AtomicU64]>>,
    /// Commit-window serial numbers for WAL records of schemes without a
    /// natural commit ordinal (2PL, H-STORE, OCC) — drawn *inside* the
    /// committing transaction's exclusion window, so per-key serial order
    /// matches install order (see [`Database::wal_commit_point_csn`]).
    pub(crate) log_csn: AtomicU64,
    /// Background epoch ticker; advancing stops when the database drops.
    _ticker: Option<EpochTicker>,
    /// Background group-commit flusher; stops when the database drops.
    _flusher: Option<WalFlusher>,
}

impl Database {
    /// Build a database for `catalog` under `cfg`.
    pub fn new(cfg: EngineConfig, catalog: Catalog) -> Result<Arc<Self>, DbError> {
        cfg.validate().map_err(DbError::SchemaViolation)?;
        let mut tables = Vec::with_capacity(catalog.len());
        let mut indexes = Vec::with_capacity(catalog.len());
        let mut ordered = Vec::with_capacity(catalog.len());
        let mut gap_meta = Vec::with_capacity(catalog.len());
        let mut meta = Vec::with_capacity(catalog.len());
        for def in catalog.tables() {
            tables.push(Table::new(def.schema.clone(), def.capacity));
            indexes.push(HashIndex::new(def.id, def.capacity));
            ordered.push(def.ordered.then(|| BPlusTree::new(def.id)));
            gap_meta.push(RowMeta::default());
            let mut m = Vec::with_capacity(def.capacity as usize);
            m.resize_with(def.capacity as usize, RowMeta::default);
            meta.push(m.into_boxed_slice());
        }
        let parts_n = cfg.partitions as usize;
        let mut parts = Vec::with_capacity(parts_n);
        parts.resize_with(parts_n, || Padded::new(Mutex::new(PartState::default())));
        let epoch = Arc::new(EpochManager::new(cfg.workers));
        let wal = if cfg.log.enabled {
            let set = WalSet::open(
                &cfg.log.dir,
                cfg.workers,
                cfg.log.fsync,
                cfg.log.group_max_bytes,
            )
            .map_err(|e| DbError::Io(format!("open WAL in {}: {e}", cfg.log.dir.display())))?;
            Some(Arc::new(set))
        } else {
            None
        };
        // Epochs drive SILO commit TIDs and TICTOC GC — and, when logging
        // is on, the group-commit horizon for *every* scheme.
        let ticker = if (cfg.scheme.uses_epoch() || wal.is_some()) && cfg.epoch_interval_us > 0 {
            Some(EpochTicker::start(
                Arc::clone(&epoch),
                Duration::from_micros(cfg.epoch_interval_us),
            ))
        } else {
            None
        };
        let flusher = match &wal {
            Some(w) if cfg.log.group_interval_us > 0 => Some(WalFlusher::start(
                Arc::clone(w),
                Arc::clone(&epoch),
                Duration::from_micros(cfg.log.group_interval_us),
            )),
            _ => None,
        };
        // Oversubscription is decided against the cores the pin policy
        // actually lets workers run on, not the machine's core count — a
        // `compact:N` policy squeezing 8 workers onto 2 cores is
        // oversubscribed on a 64-core host.
        let park = ParkTable::new(cfg.workers);
        let cores = abyss_common::available_cores();
        park.set_early_yield(cfg.workers as usize > cfg.pin.distinct_cores(cfg.workers, cores));
        Ok(Arc::new(Self {
            ts: SharedTs::new(cfg.ts_method),
            park,
            waits: WaitsFor::new(cfg.workers),
            parts: parts.into_boxed_slice(),
            catalog,
            tables,
            indexes,
            ordered,
            gap_meta,
            meta,
            trace: cfg
                .trace
                .enabled
                .then(|| TraceSet::new(cfg.workers, cfg.trace.capacity)),
            phase_acc: cfg.breakdown.then(|| {
                (0..abyss_common::Phase::COUNT)
                    .map(|_| AtomicU64::new(0))
                    .collect()
            }),
            cfg,
            epoch,
            wal,
            log_csn: AtomicU64::new(0),
            _ticker: ticker,
            _flusher: flusher,
        }))
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// The active concurrency-control scheme.
    pub fn scheme(&self) -> CcScheme {
        self.cfg.scheme
    }

    /// The catalog this database was built from.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The epoch subsystem (see [`crate::epoch`]). Schemes read it on
    /// their commit path; tests and tools may advance it manually.
    pub fn epoch_manager(&self) -> &EpochManager {
        &self.epoch
    }

    /// Is write-ahead logging enabled?
    pub fn logging_enabled(&self) -> bool {
        self.wal.is_some()
    }

    /// The timestamp method actually running (the engine silently
    /// degrades [`abyss_common::TsMethod::Hardware`] to `Atomic`; label
    /// runs with this, not the configured method — see
    /// [`crate::ts::SharedTs::effective_method`]).
    pub fn ts_method_effective(&self) -> abyss_common::TsMethod {
        self.ts.effective_method()
    }

    /// WAL counter snapshot, when logging is enabled.
    pub fn wal_stats(&self) -> Option<WalStats> {
        self.wal.as_ref().map(|w| w.stats())
    }

    /// Is transaction event tracing enabled?
    pub fn trace_enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// The trace rings, when tracing is enabled.
    pub fn trace_set(&self) -> Option<&TraceSet> {
        self.trace.as_ref()
    }

    /// Snapshot every worker's trace ring (quiescent use: workers joined
    /// or between transactions). `None` when tracing is off.
    pub fn trace_dump(&self) -> Option<TraceDump> {
        self.trace.as_ref().map(|t| t.dump())
    }

    /// Is per-phase attempt-time accounting enabled?
    pub fn breakdown_enabled(&self) -> bool {
        self.phase_acc.is_some()
    }

    /// Fold one attempt's phase delta into the live totals. No-op when
    /// breakdown is off (workers also skip the call via their disabled
    /// `PhaseClock`).
    #[inline]
    pub(crate) fn phase_accumulate(&self, delta: &abyss_common::PhaseBreakdown) {
        if let Some(acc) = &self.phase_acc {
            for p in abyss_common::Phase::ALL {
                let v = delta.get(p);
                if v != 0 {
                    acc[p.idx()].fetch_add(v, Ordering::Relaxed);
                }
            }
        }
    }

    /// Live per-phase attempt-time totals since the database was built
    /// (nanoseconds, summed over workers and attempts). `None` when
    /// breakdown is off.
    pub fn phase_totals(&self) -> Option<abyss_common::PhaseBreakdown> {
        self.phase_acc.as_ref().map(|acc| {
            let mut out = abyss_common::PhaseBreakdown::new();
            for p in abyss_common::Phase::ALL {
                out.record(p, acc[p.idx()].load(Ordering::Relaxed));
            }
            out
        })
    }

    /// Record a trace event for `worker`, timestamped now. No-op when
    /// tracing is off.
    #[inline]
    pub(crate) fn trace_event(&self, worker: u32, txn: abyss_common::TxnId, kind: TraceEventKind) {
        if let Some(t) = &self.trace {
            t.ring(worker).record(TraceEvent {
                t_ns: t.now_ns(),
                txn,
                kind,
            });
        }
    }

    /// [`Database::trace_event`] with an explicit timestamp (reconstructed
    /// wait starts). No-op when tracing is off.
    #[inline]
    pub(crate) fn trace_event_at(
        &self,
        worker: u32,
        txn: abyss_common::TxnId,
        t_ns: u64,
        kind: TraceEventKind,
    ) {
        if let Some(t) = &self.trace {
            t.ring(worker).record(TraceEvent { t_ns, txn, kind });
        }
    }

    /// A point-in-time [`MetricsSnapshot`] of the engine's gauges and
    /// counters. Reads only shared state (epoch watermarks, WAL counters,
    /// the waits-for graph, index health), so it can be scraped while a
    /// run is in flight.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let current = self.epoch.current();
        let safe = self.epoch.safe_epoch();
        let wal = self.wal_stats();
        let durable = wal.as_ref().map(|w| w.durable_epoch);
        let tables = self
            .catalog
            .tables()
            .iter()
            .map(|def| {
                let health = self.index_health(def.id);
                TableMetrics {
                    name: def.name.clone(),
                    live_keys: health.hash_len as u64,
                    row_slots: self.table_len(def.id),
                    hash_max_chain: health.hash_max_chain as u64,
                    btree_nodes: health.btree.map(|b| b.nodes),
                    btree_height: health.btree.map(|b| b.height as u64),
                }
            })
            .collect();
        MetricsSnapshot {
            scheme: self.cfg.scheme.name(),
            workers: self.cfg.workers,
            current_epoch: current,
            safe_epoch: safe,
            epoch_lag: current.saturating_sub(safe),
            durable_epoch: durable,
            durable_epoch_lag: durable.map_or(0, |d| current.saturating_sub(d)),
            wal_backlog_bytes: self.wal.as_ref().map_or(0, |w| w.backlog_bytes()),
            log_records: wal.as_ref().map_or(0, |w| w.records),
            log_bytes: wal.as_ref().map_or(0, |w| w.bytes),
            log_flushes: wal.as_ref().map_or(0, |w| w.flushes),
            log_fsyncs: wal.as_ref().map_or(0, |w| w.fsyncs),
            wal_failed: wal.as_ref().is_some_and(|w| w.failed),
            waitsfor_edges: self.waits.published_edges(),
            mempool_live_blocks: abyss_storage::mempool::live_blocks(),
            trace_events: self.trace.as_ref().map_or(0, |t| t.total_recorded()),
            trace_dropped: self.trace.as_ref().map_or(0, |t| t.total_overwritten()),
            phase_ns: self.phase_totals(),
            commit_latency: None,
            abort_latency: None,
            queue_ack_latency: None,
            sheds: [0; abyss_common::Priority::COUNT],
            backoffs: 0,
            backoff_ns: 0,
            backoff_delay_ns: 0,
            tables,
        }
    }

    /// The durable epoch: every commit whose record carries an epoch `≤`
    /// this has reached the log device (per the configured
    /// [`FsyncPolicy`]). `None` when logging is off.
    pub fn durable_epoch(&self) -> Option<u64> {
        self.wal.as_ref().map(|w| w.durable_epoch())
    }

    /// Run one group-commit fence now (what the background flusher does
    /// every `log.group_interval_us`): flush every shard and advance the
    /// durable epoch to `safe_epoch − 1`. Horizon soundness: a record not
    /// yet appended belongs to a worker still registered in its entry
    /// epoch `e₀ ≤` its commit epoch, so `safe_epoch ≤ e₀` and the record
    /// is beyond the horizon.
    pub fn log_group_flush(&self) {
        if let Some(w) = &self.wal {
            w.group_flush(self.epoch.safe_epoch().saturating_sub(1));
        }
    }

    /// Clean-shutdown flush: declare everything buffered durable through
    /// the *current* epoch. Only sound when no worker is mid-transaction
    /// (the run drivers call it after joining their workers).
    pub fn log_flush_all(&self) {
        if let Some(w) = &self.wal {
            w.flush_all_quiescent(self.epoch.current());
        }
    }

    /// WAL commit point for schemes without a natural commit ordinal
    /// (2PL, H-STORE, OCC): draw a global commit-window serial, stamp the
    /// record's epoch, and **append the redo record now**. Must be called
    /// at the commit's point of no return, **inside the transaction's
    /// exclusion window** — write locks / partition ownership / validated
    /// latches still held, no fallible step remaining — so that:
    ///
    /// * for any two conflicting commits the `(epoch, seq)` order matches
    ///   the install order, and
    /// * under [`FsyncPolicy::EveryCommit`] a transaction's record is
    ///   durable *before* its locks release — a dependent successor can
    ///   never be durable without it, keeping the replayed set
    ///   dependency-closed.
    #[inline]
    pub(crate) fn wal_commit_point_csn(
        &self,
        worker: u32,
        st: &mut TxnState,
        stats: &mut abyss_common::RunStats,
    ) {
        if self.wal.is_some() {
            st.log_seq = self.log_csn.fetch_add(1, Ordering::Relaxed) + 1;
            st.log_epoch = self.epoch.current();
            self.wal_append(worker, st, stats);
        }
    }

    /// WAL commit point for schemes whose commit ordinal *is* their
    /// timestamp/TID (T/O, MVCC: the start timestamp; TICTOC: the
    /// computed commit timestamp; SILO: its commit TID + fenced epoch via
    /// [`Database::wal_commit_point_at`]). Same point-of-no-return /
    /// exclusion-window contract as [`Database::wal_commit_point_csn`].
    #[inline]
    pub(crate) fn wal_commit_point_seq(
        &self,
        worker: u32,
        st: &mut TxnState,
        stats: &mut abyss_common::RunStats,
        seq: u64,
    ) {
        if self.wal.is_some() {
            st.log_seq = seq;
            st.log_epoch = self.epoch.current();
            self.wal_append(worker, st, stats);
        }
    }

    /// [`Database::wal_commit_point_seq`] with an explicit epoch (SILO's
    /// fenced commit epoch, already embedded in its TID).
    #[inline]
    pub(crate) fn wal_commit_point_at(
        &self,
        worker: u32,
        st: &mut TxnState,
        stats: &mut abyss_common::RunStats,
        epoch: u64,
        seq: u64,
    ) {
        if self.wal.is_some() {
            st.log_seq = seq;
            st.log_epoch = epoch;
            self.wal_append(worker, st, stats);
        }
    }

    /// Append the stamped redo record to `worker`'s shard (no-op when the
    /// transaction wrote nothing). Only called from the commit points
    /// above, inside the exclusion window and before the worker exits its
    /// epoch slot — both the group-commit horizon argument and the
    /// per-commit-fsync dependency argument hang on that placement.
    fn wal_append(&self, worker: u32, st: &TxnState, stats: &mut abyss_common::RunStats) {
        let Some(wal) = &self.wal else { return };
        if st.redo.is_empty() {
            return;
        }
        debug_assert!(st.log_epoch != 0, "WAL append without a stamped epoch");
        let mut ops = Vec::with_capacity(st.redo.len());
        for r in &st.redo {
            ops.push(match &r.image {
                Some(img) => {
                    let len = self.tables[r.table as usize].row_size();
                    abyss_storage::wal::LogOp::Put {
                        table: r.table,
                        key: r.key,
                        image: &img[..len],
                    }
                }
                None => abyss_storage::wal::LogOp::Del {
                    table: r.table,
                    key: r.key,
                },
            });
        }
        let bytes = wal.append_commit(worker, st.log_epoch, st.log_seq, &ops);
        stats.log_records += 1;
        stats.log_bytes += bytes as u64;
        self.trace_event(
            worker,
            st.txn_id,
            TraceEventKind::WalSerialPoint {
                epoch: st.log_epoch,
                seq: st.log_seq,
            },
        );
    }

    /// Schema of `table`.
    pub fn schema(&self, table: TableId) -> &Schema {
        self.tables[table as usize].schema()
    }

    /// Number of row *slots* allocated in `table`. Aborted eager inserts
    /// (2PL, H-STORE) leave unreachable slots behind, so this can exceed
    /// [`Database::index_len`]; use the latter to count live rows.
    pub fn table_len(&self, table: TableId) -> u64 {
        self.tables[table as usize].len()
    }

    /// Number of live (indexed) rows in `table`. Walks the index buckets —
    /// diagnostics and post-run checks, not for hot paths.
    pub fn index_len(&self, table: TableId) -> u64 {
        self.indexes[table as usize].len() as u64
    }

    /// Per-tuple metadata of a row. [`crate::txn::GAP_ROW`] addresses the
    /// table's "+∞" gap anchor instead of a real slot.
    #[inline]
    pub(crate) fn row_meta(&self, table: TableId, row: RowIdx) -> &RowMeta {
        if row == crate::txn::GAP_ROW {
            &self.gap_meta[table as usize]
        } else {
            &self.meta[table as usize][row as usize]
        }
    }

    /// Index probe.
    #[inline]
    pub(crate) fn index_get(&self, table: TableId, key: Key) -> Result<RowIdx, DbError> {
        self.indexes[table as usize].get(key)
    }

    /// The ordered index of `table`, if the catalog declared one.
    #[inline]
    pub(crate) fn ordered_index(&self, table: TableId) -> Option<&BPlusTree> {
        self.ordered[table as usize].as_ref()
    }

    /// The ordered index of `table`, or the error scan callers surface.
    #[inline]
    pub(crate) fn require_ordered(&self, table: TableId) -> Result<&BPlusTree, DbError> {
        self.ordered_index(table).ok_or(DbError::Unsupported(
            "range scan on a table without an ordered index",
        ))
    }

    /// Publish `key → row` in every index of `table` (hash, plus the
    /// ordered index when present). Returns the B+-tree leaf the key
    /// landed in so timestamp schemes can run their gap checks against it.
    /// Atomic across indexes: a duplicate rolls the hash insert back.
    pub(crate) fn index_insert(
        &self,
        table: TableId,
        key: Key,
        row: RowIdx,
    ) -> Result<Option<LeafId>, DbError> {
        self.indexes[table as usize].insert(key, row)?;
        if let Some(tree) = self.ordered_index(table) {
            match tree.insert(key, row) {
                Ok(leaf) => Ok(Some(leaf)),
                Err(e) => {
                    // Hash uniqueness makes this unreachable in practice,
                    // but keep the pair consistent regardless.
                    self.indexes[table as usize].remove(key);
                    Err(e)
                }
            }
        } else {
            Ok(None)
        }
    }

    /// Withdraw `key` from every index of `table`. Returns the row it
    /// mapped to and the B+-tree leaf it was removed from (when ordered).
    pub(crate) fn index_remove(
        &self,
        table: TableId,
        key: Key,
    ) -> Option<(RowIdx, Option<LeafId>)> {
        let row = self.indexes[table as usize].remove(key)?;
        let leaf = self
            .ordered_index(table)
            .and_then(|tree| tree.remove(key).map(|(_, leaf)| leaf));
        Some((row, leaf))
    }

    /// [`Database::index_remove`] for the timestamp schemes: the covering
    /// leaf's `del_wts` tag is raised to `ts` atomically with the removal
    /// (under the leaf lock), so a scan that misses the key is guaranteed
    /// to also see the tag.
    pub(crate) fn index_remove_tagged(
        &self,
        table: TableId,
        key: Key,
        ts: abyss_common::Ts,
    ) -> Option<(RowIdx, Option<LeafId>)> {
        let row = self.indexes[table as usize].remove(key)?;
        let leaf = self
            .ordered_index(table)
            .and_then(|tree| tree.remove_tagged(key, ts).map(|(_, leaf)| leaf));
        Some((row, leaf))
    }

    /// [`Database::index_insert`] for the timestamp schemes: refuses the
    /// insert (rolling the hash entry back) when the covering leaf's
    /// `scan_rts` tag exceeds `ts`. The check is atomic with publication
    /// (under the leaf lock), so a committed scan that missed this key
    /// either raised the tag first — and we refuse — or observes the key
    /// through its leaf revalidation.
    pub(crate) fn index_insert_guarded(
        &self,
        table: TableId,
        key: Key,
        row: RowIdx,
        ts: abyss_common::Ts,
    ) -> Result<OrderedPublish, DbError> {
        self.indexes[table as usize].insert(key, row)?;
        let Some(tree) = self.ordered_index(table) else {
            return Ok(OrderedPublish::Done(None));
        };
        match tree.insert_guarded(key, row, ts) {
            Ok(GuardedInsert::Inserted { leaf, .. }) => Ok(OrderedPublish::Done(Some(leaf))),
            Ok(GuardedInsert::GapProtected) => {
                self.indexes[table as usize].remove(key);
                Ok(OrderedPublish::GapProtected)
            }
            Err(e) => {
                self.indexes[table as usize].remove(key);
                Err(e)
            }
        }
    }

    /// [`Database::index_insert`] additionally reporting the B+-tree
    /// leaf's pre-insert version (OCC/SILO own-node-set accounting).
    pub(crate) fn index_insert_tracked(
        &self,
        table: TableId,
        key: Key,
        row: RowIdx,
    ) -> Result<Option<(LeafId, u64)>, DbError> {
        self.indexes[table as usize].insert(key, row)?;
        let Some(tree) = self.ordered_index(table) else {
            return Ok(None);
        };
        match tree.insert_tracked(key, row) {
            Ok(info) => Ok(Some(info)),
            Err(e) => {
                self.indexes[table as usize].remove(key);
                Err(e)
            }
        }
    }

    /// Bulk-load rows into `table`. Not transactional; run before workers
    /// start. `init` fills each freshly allocated row.
    pub fn load_table(
        &self,
        table: TableId,
        keys: impl IntoIterator<Item = Key>,
        mut init: impl FnMut(&Schema, &mut [u8], Key),
    ) -> Result<u64, DbError> {
        let t = &self.tables[table as usize];
        let mut n = 0;
        for key in keys {
            let row = t.allocate_row()?;
            // SAFETY: the row was just allocated and is not yet indexed, so
            // no other thread can reach it.
            let data = unsafe { t.row_mut(row) };
            init(t.schema(), data, key);
            self.index_insert(table, key, row)?;
            n += 1;
        }
        Ok(n)
    }

    /// Diagnostics: `(version, scan_rts, del_wts)` of the B+-tree leaf
    /// covering `key`'s position, when the table is ordered.
    #[doc(hidden)]
    pub fn debug_leaf_tags(&self, table: TableId, key: Key) -> Option<(u64, u64, u64)> {
        let tree = self.ordered_index(table)?;
        let sr = tree.scan(key, key);
        let &(leaf, v) = sr.leaves.first()?;
        Some((v, tree.leaf_scan_rts(leaf), tree.leaf_del_wts(leaf)))
    }

    /// Index-health snapshot for `table` — the regression surface the
    /// bench binaries export (hash chain length, B+-tree shape).
    pub fn index_health(&self, table: TableId) -> IndexHealth {
        IndexHealth {
            hash_len: self.indexes[table as usize].len(),
            hash_max_chain: self.indexes[table as usize].max_chain(),
            btree: self.ordered_index(table).map(|t| t.health()),
        }
    }

    /// Crash recovery: replay the write-ahead log onto this database's
    /// freshly **loaded** state (the load is the checkpoint; only
    /// transactional writes are logged). Call before any worker starts —
    /// replay is quiescent, like [`Database::load_table`].
    ///
    /// * The replay bound is the persisted durable epoch for group-commit
    ///   policies, or "every intact record" under
    ///   [`FsyncPolicy::EveryCommit`] (each commit was acknowledged
    ///   durable at its own fsync).
    /// * Records from every shard are merged and applied in
    ///   `(epoch, seq)` order — last-writer-wins by commit TID /
    ///   commit-ts — covering inserts, updates and deletes (ordered
    ///   tables included: index publication goes through the same
    ///   hash+B+-tree paths as the engine).
    /// * Replay is idempotent: puts overwrite, deletes ignore absent
    ///   keys, so recovering twice converges to the same state.
    /// * The non-durable (or torn) tail of each shard is truncated, and
    ///   the epoch manager is advanced past every replayed epoch, so the
    ///   recovered engine appends strictly after what it replayed.
    pub fn recover_from_log(&self) -> Result<RecoveryReport, DbError> {
        let wal = self.wal.as_ref().ok_or(DbError::Unsupported(
            "recover_from_log requires logging to be enabled",
        ))?;
        let io = |e: std::io::Error| DbError::Io(format!("WAL recovery: {e}"));
        let scans = wal::scan_dir(wal.dir()).map_err(io)?;
        let bound = match wal.policy() {
            FsyncPolicy::EveryCommit => u64::MAX,
            _ => wal::read_meta(wal.dir()).unwrap_or(0),
        };
        // Truncate each shard's non-durable / torn tail so it can never
        // resurrect in a later recovery or interleave with new appends.
        let mut report = RecoveryReport::default();
        let mut ordered: Vec<&wal::Record> = Vec::new();
        for scan in &scans {
            let keep_len = scan
                .records
                .iter()
                .take_while(|r| r.epoch <= bound)
                .last()
                .map(|r| r.end_offset)
                .unwrap_or(scan.valid_len.min(wal::HEADER_BYTES));
            let file_len = std::fs::metadata(&scan.path).map_err(io)?.len();
            if keep_len < file_len {
                wal::truncate_shard(&scan.path, keep_len).map_err(io)?;
                report.truncated_shards += 1;
            }
            for r in scan.records.iter().take_while(|r| r.epoch <= bound) {
                ordered.push(r);
            }
        }
        // Merge shards into replay order. The sort is stable, but two
        // records never carry the same (epoch, seq) *and* conflict: equal
        // seqs only occur between non-conflicting transactions.
        ordered.sort_by_key(|r| (r.epoch, r.seq));
        for rec in ordered {
            report.records_applied += 1;
            report.max_epoch = report.max_epoch.max(rec.epoch);
            for op in &rec.ops {
                report.ops_applied += 1;
                match op {
                    RecOp::Put { table, key, image } => self.replay_put(*table, *key, image)?,
                    RecOp::Del { table, key } => {
                        self.index_remove(*table, *key);
                    }
                }
            }
        }
        report.durable_epoch = bound.min(report.max_epoch.max(wal.durable_epoch()));
        // New commits must serialize (and log) strictly after everything
        // replayed: push the epoch past the newest replayed record.
        while self.epoch.current() <= report.max_epoch {
            self.epoch.advance();
        }
        Ok(report)
    }

    /// Apply one recovered after-image: overwrite the row in place when
    /// the key exists, otherwise allocate + publish a fresh row.
    fn replay_put(&self, table: TableId, key: Key, image: &[u8]) -> Result<(), DbError> {
        let t = &self.tables[table as usize];
        let n = t.row_size().min(image.len());
        if let Some(row) = self.indexes[table as usize].find(key) {
            // SAFETY: recovery is quiescent (documented contract).
            let data = unsafe { t.row_mut(row) };
            data[..n].copy_from_slice(&image[..n]);
            return Ok(());
        }
        let row = t.allocate_row()?;
        // SAFETY: fresh unindexed row.
        let data = unsafe { t.row_mut(row) };
        data[..n].copy_from_slice(&image[..n]);
        self.index_insert(table, key, row)?;
        Ok(())
    }

    /// Order-independent digest of the committed state: every live key's
    /// row bytes (via [`Database::peek`], so MVCC version chains resolve),
    /// folded per table. Quiescent use only — the recovery tests compare
    /// a recovered database against a reference run with this.
    pub fn state_digest(&self) -> u64 {
        let mut digest = 0u64;
        for (tid, index) in self.indexes.iter().enumerate() {
            let mut keys = Vec::with_capacity(index.len());
            index.for_each(|k, _| keys.push(k));
            keys.sort_unstable();
            let mut h = 0xCBF2_9CE4_8422_2325u64;
            for k in keys {
                let bytes = self.peek(tid as TableId, k).expect("indexed key peeks");
                h = fxhash::hash_u64(h ^ fxhash::hash_u64(k) ^ fxhash::hash_bytes(&bytes));
            }
            digest ^= fxhash::hash_u64(h ^ (tid as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        }
        digest
    }

    /// Create the execution context for `worker` (one per thread). The
    /// context dispatches on the configured scheme at runtime
    /// ([`crate::schemes::AnyScheme`]); use [`Database::worker_as`] to
    /// monomorphize a single scheme instead.
    pub fn worker(self: &Arc<Self>, worker: u32) -> WorkerCtx {
        self.worker_as::<crate::schemes::AnyScheme>(worker)
    }

    /// [`Database::worker`] monomorphized over one protocol — the
    /// single-scheme escape hatch (no per-access dispatch, and a binary
    /// that only names one scheme type instantiates only that one).
    /// Panics if `P` names a different scheme than the configuration.
    pub fn worker_as<P: crate::schemes::CcProtocol>(self: &Arc<Self>, worker: u32) -> WorkerCtx<P> {
        assert!(worker < self.cfg.workers, "worker id {worker} out of range");
        WorkerCtx::new(Arc::clone(self), worker)
    }

    /// Direct unprotected read of a row by key — for tests and post-run
    /// verification only (no concurrency control!).
    pub fn peek(&self, table: TableId, key: Key) -> Result<Vec<u8>, DbError> {
        let row = self.index_get(table, key)?;
        let t = &self.tables[table as usize];
        // For MVCC the table row may be stale (committed data lives in the
        // version chain); return the newest version instead.
        if self.cfg.scheme == CcScheme::Mvcc {
            let meta = self.row_meta(table, row);
            let chain = meta.mvcc_chain(|| {
                // SAFETY: quiescent access (documented contract of peek).
                unsafe { t.row(row).to_vec().into_boxed_slice() }
            });
            if let Some(v) = chain.versions.back() {
                return Ok(v.data.to_vec());
            }
        }
        // SAFETY: quiescent access (documented contract of peek).
        Ok(unsafe { t.row(row).to_vec() })
    }

    /// Sum a `u64` column over all rows of `table` — post-run invariant
    /// checks (no concurrency control; call when workers are stopped).
    pub fn sum_column(&self, table: TableId, col: usize) -> u64 {
        let t = &self.tables[table as usize];
        let mut sum = 0u64;
        for row in 0..t.len() {
            if self.cfg.scheme == CcScheme::Mvcc {
                let meta = self.row_meta(table, row);
                let chain = meta.mvcc_chain(|| unsafe { t.row(row).to_vec().into_boxed_slice() });
                if let Some(v) = chain.versions.back() {
                    sum = sum.wrapping_add(abyss_storage::row::get_u64(t.schema(), &v.data, col));
                    continue;
                }
            }
            // SAFETY: quiescent access (documented contract).
            let data = unsafe { t.row(row) };
            sum = sum.wrapping_add(abyss_storage::row::get_u64(t.schema(), data, col));
        }
        sum
    }
}

/// What [`Database::recover_from_log`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// The epoch recovery replayed through (the durability guarantee).
    pub durable_epoch: u64,
    /// Commit records applied.
    pub records_applied: u64,
    /// Individual put/delete operations applied.
    pub ops_applied: u64,
    /// Shards whose non-durable or torn tail was truncated.
    pub truncated_shards: u64,
    /// Newest epoch seen among applied records.
    pub max_epoch: u64,
}

/// Background group-commit thread: runs one
/// [`Database::log_group_flush`]-equivalent fence per interval. Stops
/// (and joins) on drop.
#[derive(Debug)]
struct WalFlusher {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl WalFlusher {
    fn start(wal: Arc<WalSet>, epoch: Arc<EpochManager>, interval: Duration) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("abyss-wal-flusher".into())
            .spawn(move || {
                // Short sleep slices so dropping the database never waits
                // a full group interval (same pattern as the epoch ticker).
                let slice = interval
                    .min(Duration::from_millis(5))
                    .max(Duration::from_micros(50));
                let mut slept = Duration::ZERO;
                while !stop2.load(Ordering::Acquire) {
                    std::thread::sleep(slice);
                    slept += slice;
                    if slept >= interval {
                        wal.group_flush(epoch.safe_epoch().saturating_sub(1));
                        slept = Duration::ZERO;
                    }
                }
            })
            .expect("spawn WAL flusher");
        Self {
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for WalFlusher {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Outcome of [`Database::index_insert_guarded`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum OrderedPublish {
    /// Published in every index (the leaf, when the table is ordered).
    Done(Option<LeafId>),
    /// Refused: a later-timestamp scan already covered the target gap.
    GapProtected,
}

/// Index-health snapshot of one table (see [`Database::index_health`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexHealth {
    /// Live keys in the hash index.
    pub hash_len: usize,
    /// Longest hash bucket chain (load-factor regression signal).
    pub hash_max_chain: usize,
    /// B+-tree shape, when the table carries an ordered index.
    pub btree: Option<BtreeHealth>,
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("scheme", &self.cfg.scheme)
            .field("workers", &self.cfg.workers)
            .field("tables", &self.tables.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abyss_storage::row;

    fn tiny_db(scheme: CcScheme) -> Arc<Database> {
        let mut cat = Catalog::new();
        cat.add_table("t", Schema::key_plus_payload(1, 8), 100);
        let db = Database::new(EngineConfig::new(scheme, 2), cat).unwrap();
        db.load_table(0, 0..50, |s, r, k| {
            row::set_u64(s, r, 0, k);
            row::set_u64(s, r, 1, k * 10);
        })
        .unwrap();
        db
    }

    #[test]
    fn load_and_peek() {
        let db = tiny_db(CcScheme::NoWait);
        assert_eq!(db.table_len(0), 50);
        let r = db.peek(0, 7).unwrap();
        assert_eq!(row::get_u64(db.schema(0), &r, 0), 7);
        assert_eq!(row::get_u64(db.schema(0), &r, 1), 70);
        assert!(db.peek(0, 99).is_err());
    }

    #[test]
    fn sum_column_over_load() {
        let db = tiny_db(CcScheme::NoWait);
        // sum of k*10 for k in 0..50
        assert_eq!(db.sum_column(0, 1), (0..50u64).map(|k| k * 10).sum());
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut cat = Catalog::new();
        cat.add_table("t", Schema::key_plus_payload(1, 8), 10);
        let mut cfg = EngineConfig::new(CcScheme::NoWait, 1);
        cfg.workers = 0;
        assert!(Database::new(cfg, cat).is_err());
    }

    #[test]
    fn worker_id_bounds_checked() {
        let db = tiny_db(CcScheme::NoWait);
        let _ok = db.worker(1);
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| db.worker(5)));
        assert!(res.is_err());
    }
}
