//! Worker wait/wakeup flags.
//!
//! A worker waits on at most one thing at a time (a tuple lock, a prewrite,
//! a partition grant), so each worker owns one cache-padded flag. Waiters
//! spin with exponential politeness (pure spins, then `spin_loop` hints,
//! then `yield_now` so oversubscribed configurations still make progress)
//! until the flag leaves [`WAITING`] or a deadline passes.
//!
//! When the thread count exceeds the machine's parallelism — more workers
//! than cores, or service workers plus producer threads — the pure-spin
//! rungs burn exactly the cycles the grantor (or a producer) needs, so the
//! ladder collapses to early yields (see [`ParkTable::set_early_yield`]).
//! Wait-time *accounting* is unaffected: the schemes' `record_wait` seam
//! brackets the whole `wait` call, so breakdown and trace charge the same
//! interval regardless of which ladder ran.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::time::{Duration, Instant};

use abyss_common::CoreId;
use abyss_common::Padded;

/// Flag value: not waiting.
pub const IDLE: u32 = 0;
/// Flag value: registered in some queue, waiting for a grant.
pub const WAITING: u32 = 1;
/// Flag value: the wait was granted.
pub const GRANTED: u32 = 2;

/// What ended a wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitOutcome {
    /// The grantor set the flag to [`GRANTED`].
    Granted,
    /// The deadline passed first.
    TimedOut,
}

/// Spin-ladder rung: with a core to ourselves, spin 63 iterations between
/// yields (the grant usually lands within a few hundred cycles).
const SPIN_YIELD_EVERY: u32 = 64;
/// Spin-ladder rung under oversubscription: yield (and check the deadline)
/// every other iteration — the grantor is likely descheduled on our core,
/// so pure spinning only delays the wakeup we are waiting for.
const OVERSUB_YIELD_EVERY: u32 = 2;

/// One wakeup flag per worker.
#[derive(Debug)]
pub struct ParkTable {
    flags: Box<[Padded<AtomicU32>]>,
    /// Collapse the spin ladder to early yields: set when the worker count
    /// alone oversubscribes the machine, or by the serving layer when its
    /// producer threads push the total over `available_parallelism`.
    early_yield: AtomicBool,
}

impl ParkTable {
    /// Flags for `workers` workers. The spin ladder collapses to
    /// early-yield automatically when `workers` exceeds the machine's
    /// available parallelism.
    pub fn new(workers: u32) -> Self {
        let mut v = Vec::with_capacity(workers as usize);
        v.resize_with(workers as usize, || Padded::new(AtomicU32::new(IDLE)));
        let cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        Self {
            flags: v.into_boxed_slice(),
            early_yield: AtomicBool::new(workers as usize > cores),
        }
    }

    /// Force (or clear) the early-yield ladder. Callers that add threads
    /// beyond the worker pool — the serving layer's producers — use this
    /// when `workers + producers > available_parallelism`.
    pub fn set_early_yield(&self, on: bool) {
        self.early_yield.store(on, Ordering::Relaxed);
    }

    /// True when waits yield early instead of spinning a full rung.
    pub fn early_yield(&self) -> bool {
        self.early_yield.load(Ordering::Relaxed)
    }

    /// Iterations between `yield_now` + deadline checks for the current
    /// oversubscription regime. Loaded once per wait: flipping the flag
    /// mid-wait only affects the next wait.
    #[inline]
    fn yield_every(&self) -> u32 {
        if self.early_yield.load(Ordering::Relaxed) {
            OVERSUB_YIELD_EVERY
        } else {
            SPIN_YIELD_EVERY
        }
    }

    /// Arm `worker`'s flag before inserting it into a wait queue.
    /// Must happen *before* publishing the waiter so a grant cannot race
    /// ahead of the arm.
    #[inline]
    pub fn arm(&self, worker: CoreId) {
        self.flags[worker as usize].store(WAITING, Ordering::Release);
    }

    /// Grant `worker`'s pending wait (called by a releaser that has removed
    /// the waiter from the queue under the tuple latch).
    #[inline]
    pub fn grant(&self, worker: CoreId) {
        self.flags[worker as usize].store(GRANTED, Ordering::Release);
    }

    /// Spin until granted or `deadline`. Returns the outcome; the flag is
    /// reset to [`IDLE`] either way.
    pub fn wait(&self, worker: CoreId, deadline: Instant) -> WaitOutcome {
        let flag = &self.flags[worker as usize];
        let yield_every = self.yield_every();
        let mut spins = 0u32;
        loop {
            match flag.load(Ordering::Acquire) {
                WAITING => {}
                _ => {
                    flag.store(IDLE, Ordering::Relaxed);
                    return WaitOutcome::Granted;
                }
            }
            spins = spins.wrapping_add(1);
            if spins.is_multiple_of(yield_every) {
                if Instant::now() >= deadline {
                    return WaitOutcome::TimedOut;
                }
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    /// Like [`ParkTable::wait`] but runs `check` every ~`interval`; if
    /// `check` returns true the wait is abandoned with `TimedOut` semantics
    /// left to the caller (used for DL_DETECT's periodic deadlock passes).
    pub fn wait_with_check(
        &self,
        worker: CoreId,
        deadline: Instant,
        interval: Duration,
        mut check: impl FnMut() -> bool,
    ) -> WaitOutcome {
        let flag = &self.flags[worker as usize];
        let yield_every = self.yield_every();
        let mut next_check = Instant::now() + interval;
        let mut spins = 0u32;
        loop {
            match flag.load(Ordering::Acquire) {
                WAITING => {}
                _ => {
                    flag.store(IDLE, Ordering::Relaxed);
                    return WaitOutcome::Granted;
                }
            }
            spins = spins.wrapping_add(1);
            if spins.is_multiple_of(yield_every) {
                let now = Instant::now();
                if now >= deadline {
                    return WaitOutcome::TimedOut;
                }
                if now >= next_check {
                    if check() {
                        return WaitOutcome::TimedOut;
                    }
                    next_check = now + interval;
                }
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    /// Reset `worker`'s flag (after a timed-out waiter removed itself from
    /// the queue, or when a grant raced the timeout and must be swallowed).
    #[inline]
    pub fn reset(&self, worker: CoreId) {
        self.flags[worker as usize].store(IDLE, Ordering::Release);
    }

    /// Was the flag granted? (Used to disambiguate a timeout race: if the
    /// waiter is no longer in the queue, the grant happened.)
    #[inline]
    pub fn was_granted(&self, worker: CoreId) -> bool {
        self.flags[worker as usize].load(Ordering::Acquire) == GRANTED
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn grant_wakes_waiter() {
        let pt = Arc::new(ParkTable::new(2));
        pt.arm(0);
        let pt2 = Arc::clone(&pt);
        let h = std::thread::spawn(move || pt2.wait(0, Instant::now() + Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(10));
        pt.grant(0);
        assert_eq!(h.join().unwrap(), WaitOutcome::Granted);
    }

    #[test]
    fn timeout_fires() {
        let pt = ParkTable::new(1);
        pt.arm(0);
        let out = pt.wait(0, Instant::now() + Duration::from_millis(5));
        assert_eq!(out, WaitOutcome::TimedOut);
        pt.reset(0);
    }

    #[test]
    fn grant_before_wait_is_not_lost() {
        let pt = ParkTable::new(1);
        pt.arm(0);
        pt.grant(0);
        let out = pt.wait(0, Instant::now() + Duration::from_millis(50));
        assert_eq!(out, WaitOutcome::Granted);
    }

    #[test]
    fn early_yield_engages_on_oversubscription() {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let pt = ParkTable::new((cores + 1) as u32);
        assert!(pt.early_yield(), "workers > cores must collapse the ladder");
        let pt = ParkTable::new(1);
        assert!(!pt.early_yield(), "a single worker never oversubscribes");
        // The serving layer can force it when producers tip the balance.
        pt.set_early_yield(true);
        assert!(pt.early_yield());
        pt.set_early_yield(false);
        assert!(!pt.early_yield());
    }

    #[test]
    fn waits_behave_identically_under_early_yield() {
        // Same grant/timeout semantics on the collapsed ladder.
        let pt = Arc::new(ParkTable::new(1));
        pt.set_early_yield(true);
        pt.arm(0);
        let pt2 = Arc::clone(&pt);
        let h = std::thread::spawn(move || pt2.wait(0, Instant::now() + Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(10));
        pt.grant(0);
        assert_eq!(h.join().unwrap(), WaitOutcome::Granted);
        pt.arm(0);
        let out = pt.wait(0, Instant::now() + Duration::from_millis(5));
        assert_eq!(out, WaitOutcome::TimedOut);
        pt.reset(0);
    }

    #[test]
    fn check_callback_can_abandon_wait() {
        let pt = ParkTable::new(1);
        pt.arm(0);
        let mut calls = 0;
        let out = pt.wait_with_check(
            0,
            Instant::now() + Duration::from_secs(5),
            Duration::from_millis(1),
            || {
                calls += 1;
                calls >= 3
            },
        );
        assert_eq!(out, WaitOutcome::TimedOut);
        assert_eq!(calls, 3);
        pt.reset(0);
    }
}
