//! Worker wait/wakeup flags.
//!
//! A worker waits on at most one thing at a time (a tuple lock, a prewrite,
//! a partition grant), so each worker owns one cache-padded flag. Waiters
//! spin with exponential politeness (pure spins, then `spin_loop` hints,
//! then `yield_now` so oversubscribed configurations still make progress)
//! until the flag leaves [`WAITING`] or a deadline passes.

use std::sync::atomic::{AtomicU32, Ordering};
use std::time::{Duration, Instant};

use abyss_common::CoreId;
use crossbeam_utils::CachePadded;

/// Flag value: not waiting.
pub const IDLE: u32 = 0;
/// Flag value: registered in some queue, waiting for a grant.
pub const WAITING: u32 = 1;
/// Flag value: the wait was granted.
pub const GRANTED: u32 = 2;

/// What ended a wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitOutcome {
    /// The grantor set the flag to [`GRANTED`].
    Granted,
    /// The deadline passed first.
    TimedOut,
}

/// One wakeup flag per worker.
#[derive(Debug)]
pub struct ParkTable {
    flags: Box<[CachePadded<AtomicU32>]>,
}

impl ParkTable {
    /// Flags for `workers` workers.
    pub fn new(workers: u32) -> Self {
        let mut v = Vec::with_capacity(workers as usize);
        v.resize_with(workers as usize, || CachePadded::new(AtomicU32::new(IDLE)));
        Self {
            flags: v.into_boxed_slice(),
        }
    }

    /// Arm `worker`'s flag before inserting it into a wait queue.
    /// Must happen *before* publishing the waiter so a grant cannot race
    /// ahead of the arm.
    #[inline]
    pub fn arm(&self, worker: CoreId) {
        self.flags[worker as usize].store(WAITING, Ordering::Release);
    }

    /// Grant `worker`'s pending wait (called by a releaser that has removed
    /// the waiter from the queue under the tuple latch).
    #[inline]
    pub fn grant(&self, worker: CoreId) {
        self.flags[worker as usize].store(GRANTED, Ordering::Release);
    }

    /// Spin until granted or `deadline`. Returns the outcome; the flag is
    /// reset to [`IDLE`] either way.
    pub fn wait(&self, worker: CoreId, deadline: Instant) -> WaitOutcome {
        let flag = &self.flags[worker as usize];
        let mut spins = 0u32;
        loop {
            match flag.load(Ordering::Acquire) {
                WAITING => {}
                _ => {
                    flag.store(IDLE, Ordering::Relaxed);
                    return WaitOutcome::Granted;
                }
            }
            spins = spins.wrapping_add(1);
            if spins.is_multiple_of(64) {
                if Instant::now() >= deadline {
                    return WaitOutcome::TimedOut;
                }
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    /// Like [`ParkTable::wait`] but runs `check` every ~`interval`; if
    /// `check` returns true the wait is abandoned with `TimedOut` semantics
    /// left to the caller (used for DL_DETECT's periodic deadlock passes).
    pub fn wait_with_check(
        &self,
        worker: CoreId,
        deadline: Instant,
        interval: Duration,
        mut check: impl FnMut() -> bool,
    ) -> WaitOutcome {
        let flag = &self.flags[worker as usize];
        let mut next_check = Instant::now() + interval;
        let mut spins = 0u32;
        loop {
            match flag.load(Ordering::Acquire) {
                WAITING => {}
                _ => {
                    flag.store(IDLE, Ordering::Relaxed);
                    return WaitOutcome::Granted;
                }
            }
            spins = spins.wrapping_add(1);
            if spins.is_multiple_of(64) {
                let now = Instant::now();
                if now >= deadline {
                    return WaitOutcome::TimedOut;
                }
                if now >= next_check {
                    if check() {
                        return WaitOutcome::TimedOut;
                    }
                    next_check = now + interval;
                }
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    /// Reset `worker`'s flag (after a timed-out waiter removed itself from
    /// the queue, or when a grant raced the timeout and must be swallowed).
    #[inline]
    pub fn reset(&self, worker: CoreId) {
        self.flags[worker as usize].store(IDLE, Ordering::Release);
    }

    /// Was the flag granted? (Used to disambiguate a timeout race: if the
    /// waiter is no longer in the queue, the grant happened.)
    #[inline]
    pub fn was_granted(&self, worker: CoreId) -> bool {
        self.flags[worker as usize].load(Ordering::Acquire) == GRANTED
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn grant_wakes_waiter() {
        let pt = Arc::new(ParkTable::new(2));
        pt.arm(0);
        let pt2 = Arc::clone(&pt);
        let h = std::thread::spawn(move || pt2.wait(0, Instant::now() + Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(10));
        pt.grant(0);
        assert_eq!(h.join().unwrap(), WaitOutcome::Granted);
    }

    #[test]
    fn timeout_fires() {
        let pt = ParkTable::new(1);
        pt.arm(0);
        let out = pt.wait(0, Instant::now() + Duration::from_millis(5));
        assert_eq!(out, WaitOutcome::TimedOut);
        pt.reset(0);
    }

    #[test]
    fn grant_before_wait_is_not_lost() {
        let pt = ParkTable::new(1);
        pt.arm(0);
        pt.grant(0);
        let out = pt.wait(0, Instant::now() + Duration::from_millis(50));
        assert_eq!(out, WaitOutcome::Granted);
    }

    #[test]
    fn check_callback_can_abandon_wait() {
        let pt = ParkTable::new(1);
        pt.arm(0);
        let mut calls = 0;
        let out = pt.wait_with_check(
            0,
            Instant::now() + Duration::from_secs(5),
            Duration::from_millis(1),
            || {
                calls += 1;
                calls >= 3
            },
        );
        assert_eq!(out, WaitOutcome::TimedOut);
        assert_eq!(calls, 3);
        pt.reset(0);
    }
}
