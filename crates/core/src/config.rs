//! Engine configuration.

use abyss_common::{CcScheme, TsMethod};

/// Configuration for a [`crate::db::Database`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// The concurrency-control scheme under test.
    pub scheme: CcScheme,
    /// Timestamp-allocation method (ignored by DL_DETECT / NO_WAIT).
    pub ts_method: TsMethod,
    /// Number of worker threads the database will serve. Sizes the
    /// per-worker registries (waits-for slots, wakeup flags).
    pub workers: u32,
    /// DL_DETECT: abort a transaction after waiting this many microseconds
    /// (the Fig. 5 knob; paper default 100 µs). `u64::MAX` disables.
    pub dl_timeout_us: u64,
    /// DL_DETECT: run a deadlock-detection pass after waiting this many
    /// microseconds, then after every further such interval.
    pub dl_detect_interval_us: u64,
    /// Number of H-STORE partitions (usually = workers; 1 for the rest).
    pub partitions: u32,
    /// MVCC: maximum committed versions retained per tuple before the
    /// oldest is garbage-collected.
    pub mvcc_max_versions: usize,
    /// SILO / TICTOC: microseconds between background epoch advances
    /// (Silo's paper default is 40 ms; TICTOC consumes epochs only as its
    /// GC quiescence horizon). 0 disables the ticker (epochs advance only
    /// via [`crate::epoch::EpochManager::advance`]). Ignored by other
    /// schemes.
    pub epoch_interval_us: u64,
    /// Safety valve: abort any wait after this many microseconds regardless
    /// of scheme, so a stuck experiment fails loudly instead of hanging.
    pub wait_cap_us: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            scheme: CcScheme::NoWait,
            ts_method: TsMethod::Atomic,
            workers: 1,
            dl_timeout_us: 100,
            dl_detect_interval_us: 10,
            partitions: 1,
            mvcc_max_versions: 8,
            epoch_interval_us: 40_000,
            wait_cap_us: 2_000_000,
        }
    }
}

impl EngineConfig {
    /// A config for `scheme` with `workers` threads and paper defaults.
    pub fn new(scheme: CcScheme, workers: u32) -> Self {
        let partitions = if scheme == CcScheme::HStore {
            workers
        } else {
            1
        };
        Self {
            scheme,
            workers,
            partitions,
            ..Self::default()
        }
    }

    /// Validate parameter sanity.
    pub fn validate(&self) -> Result<(), String> {
        if self.workers == 0 {
            return Err("workers must be positive".into());
        }
        if self.workers > crate::txn::MAX_WORKERS as u32 {
            return Err(format!("workers capped at {}", crate::txn::MAX_WORKERS));
        }
        if self.partitions == 0 {
            return Err("partitions must be positive".into());
        }
        if self.scheme == CcScheme::HStore && self.partitions == 1 && self.workers > 1 {
            return Err("H-STORE with one partition serializes everything".into());
        }
        if self.mvcc_max_versions < 2 {
            return Err("mvcc_max_versions must be at least 2".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hstore_defaults_partitions_to_workers() {
        let c = EngineConfig::new(CcScheme::HStore, 8);
        assert_eq!(c.partitions, 8);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_rejects_zero_workers() {
        let mut c = EngineConfig::new(CcScheme::NoWait, 4);
        c.workers = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validation_rejects_single_partition_hstore() {
        let mut c = EngineConfig::new(CcScheme::HStore, 4);
        c.partitions = 1;
        assert!(c.validate().is_err());
    }
}
