//! Engine configuration.

use std::path::PathBuf;

use abyss_common::{CcScheme, PinPolicy, TsMethod};
use abyss_storage::FsyncPolicy;

/// Durability (write-ahead logging) configuration.
///
/// Disabled by default — the paper's in-memory setting. When enabled,
/// every worker appends its committed write sets to a private redo shard
/// under [`LogConfig::dir`]; durability is acknowledged per
/// [`LogConfig::fsync`] (see `crates/storage/src/wal.rs` and the
/// DESIGN.md durability section).
#[derive(Debug, Clone)]
pub struct LogConfig {
    /// Master switch. Off ⇒ zero logging overhead anywhere.
    pub enabled: bool,
    /// Directory holding the per-worker shard files and the durable-epoch
    /// meta file.
    pub dir: PathBuf,
    /// When log writes are forced to the device.
    pub fsync: FsyncPolicy,
    /// Microseconds between background group flushes (the group-commit
    /// cadence; usually the epoch interval). 0 disables the background
    /// flusher — flushes then only happen through
    /// [`crate::db::Database::log_group_flush`] /
    /// [`crate::db::Database::log_flush_all`] (tests, manual drivers).
    pub group_interval_us: u64,
    /// Per-shard buffered bytes that trigger an early (non-fencing) drain
    /// to the OS, bounding worker-side buffer growth between group
    /// flushes.
    pub group_max_bytes: usize,
}

impl Default for LogConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            dir: PathBuf::from("wal"),
            fsync: FsyncPolicy::Group,
            group_interval_us: 40_000,
            group_max_bytes: 1 << 20,
        }
    }
}

/// Transaction event tracing configuration (see [`crate::obs::trace`]).
///
/// Disabled by default: the database then allocates no rings at all and
/// every event site reduces to an `Option` check — the compile-out is a
/// runtime flag rather than a cargo feature so one binary can measure
/// both sides (the overhead guard in CI does exactly that).
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Master switch.
    pub enabled: bool,
    /// Events retained per worker (rounded up to a power of two);
    /// overwrite-oldest beyond that.
    pub capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            capacity: 4096,
        }
    }
}

/// Configuration for a [`crate::db::Database`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// The concurrency-control scheme under test.
    pub scheme: CcScheme,
    /// Timestamp-allocation method (ignored by DL_DETECT / NO_WAIT).
    pub ts_method: TsMethod,
    /// Number of worker threads the database will serve. Sizes the
    /// per-worker registries (waits-for slots, wakeup flags).
    pub workers: u32,
    /// DL_DETECT: abort a transaction after waiting this many microseconds
    /// (the Fig. 5 knob; paper default 100 µs). `u64::MAX` disables.
    pub dl_timeout_us: u64,
    /// DL_DETECT: run a deadlock-detection pass after waiting this many
    /// microseconds, then after every further such interval.
    pub dl_detect_interval_us: u64,
    /// Number of H-STORE partitions (usually = workers; 1 for the rest).
    pub partitions: u32,
    /// MVCC: maximum committed versions retained per tuple before the
    /// oldest is garbage-collected.
    pub mvcc_max_versions: usize,
    /// SILO / TICTOC: microseconds between background epoch advances
    /// (Silo's paper default is 40 ms; TICTOC consumes epochs only as its
    /// GC quiescence horizon). 0 disables the ticker (epochs advance only
    /// via [`crate::epoch::EpochManager::advance`]). Ignored by other
    /// schemes.
    pub epoch_interval_us: u64,
    /// Safety valve: abort any wait after this many microseconds regardless
    /// of scheme, so a stuck experiment fails loudly instead of hanging.
    pub wait_cap_us: u64,
    /// Durability: per-worker redo logging with epoch group commit.
    pub log: LogConfig,
    /// Observability: per-worker transaction event tracing.
    pub trace: TraceConfig,
    /// Observability: per-phase attempt-time accounting (the paper's §3.2
    /// "where does time go" breakdown, see `crate::obs::breakdown`). Off by
    /// default: every phase transition then reduces to one branch, the
    /// same runtime-flag compile-out idiom as [`TraceConfig`].
    pub breakdown: bool,
    /// Thread→core placement for worker threads spawned by the engine
    /// (the bench drivers in [`crate::worker`] and the serving layer's
    /// pool). [`PinPolicy::None`] (the default) leaves placement to the
    /// OS scheduler; pinning is best-effort — a worker whose assigned
    /// core does not exist simply runs unpinned.
    pub pin: PinPolicy,
    /// Contention regulation: replace the fixed escalation backoff with
    /// the per-worker AIMD controller ([`crate::backoff::BackoffCtl`]),
    /// tuned by the scheme's gain/ceiling capabilities. Off by default so
    /// seeded replays and golden digests keep the paper's fixed schedule.
    pub adaptive_backoff: bool,
    /// Read-phase fast path: statically read-only templates skip undo /
    /// redo bookkeeping they can never need (epoch registration when it
    /// exists only for the WAL horizon, OCC's validation-timestamp
    /// allocation). On by default — it changes no commit/abort outcomes,
    /// only shaves allocator and timestamp traffic off read-only work.
    pub ro_fast_path: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            scheme: CcScheme::NoWait,
            ts_method: TsMethod::Atomic,
            workers: 1,
            dl_timeout_us: 100,
            dl_detect_interval_us: 10,
            partitions: 1,
            mvcc_max_versions: 8,
            epoch_interval_us: 40_000,
            wait_cap_us: 2_000_000,
            log: LogConfig::default(),
            trace: TraceConfig::default(),
            breakdown: false,
            pin: PinPolicy::default(),
            adaptive_backoff: false,
            ro_fast_path: true,
        }
    }
}

impl EngineConfig {
    /// A config for `scheme` with `workers` threads and paper defaults.
    pub fn new(scheme: CcScheme, workers: u32) -> Self {
        let partitions = if scheme == CcScheme::HStore {
            workers
        } else {
            1
        };
        Self {
            scheme,
            workers,
            partitions,
            ..Self::default()
        }
    }

    /// Validate parameter sanity.
    pub fn validate(&self) -> Result<(), String> {
        if self.workers == 0 {
            return Err("workers must be positive".into());
        }
        if self.workers > crate::txn::MAX_WORKERS as u32 {
            return Err(format!("workers capped at {}", crate::txn::MAX_WORKERS));
        }
        if self.partitions == 0 {
            return Err("partitions must be positive".into());
        }
        if self.scheme == CcScheme::HStore && self.partitions == 1 && self.workers > 1 {
            return Err("H-STORE with one partition serializes everything".into());
        }
        if self.mvcc_max_versions < 2 {
            return Err("mvcc_max_versions must be at least 2".into());
        }
        if self.log.enabled && self.log.dir.as_os_str().is_empty() {
            return Err("logging enabled without a log directory".into());
        }
        if self.trace.enabled && self.trace.capacity == 0 {
            return Err("tracing enabled with zero ring capacity".into());
        }
        Ok(())
    }

    /// Enable write-ahead logging into `dir` with `fsync` (builder-style
    /// convenience for tests and benches).
    pub fn with_logging(mut self, dir: impl Into<PathBuf>, fsync: FsyncPolicy) -> Self {
        self.log.enabled = true;
        self.log.dir = dir.into();
        self.log.fsync = fsync;
        self
    }

    /// Enable transaction event tracing with `capacity` events retained
    /// per worker (builder-style convenience for tests and benches).
    pub fn with_tracing(mut self, capacity: usize) -> Self {
        self.trace.enabled = true;
        self.trace.capacity = capacity;
        self
    }

    /// Enable per-phase attempt-time accounting (builder-style convenience
    /// for tests and benches).
    pub fn with_breakdown(mut self) -> Self {
        self.breakdown = true;
        self
    }

    /// Pin engine worker threads per `policy` (builder-style convenience
    /// for benches).
    pub fn with_pinning(mut self, policy: PinPolicy) -> Self {
        self.pin = policy;
        self
    }

    /// Enable the adaptive AIMD backoff controller (builder-style
    /// convenience for benches).
    pub fn with_adaptive_backoff(mut self) -> Self {
        self.adaptive_backoff = true;
        self
    }

    /// Toggle the read-only fast path (builder-style convenience; it is on
    /// by default, so this mostly exists to switch it *off* for A/B runs).
    pub fn with_ro_fast_path(mut self, on: bool) -> Self {
        self.ro_fast_path = on;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hstore_defaults_partitions_to_workers() {
        let c = EngineConfig::new(CcScheme::HStore, 8);
        assert_eq!(c.partitions, 8);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_rejects_zero_workers() {
        let mut c = EngineConfig::new(CcScheme::NoWait, 4);
        c.workers = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn logging_requires_a_directory() {
        let mut c = EngineConfig::new(CcScheme::NoWait, 1).with_logging("", FsyncPolicy::Group);
        assert!(c.validate().is_err());
        c.log.dir = "wal".into();
        assert!(c.validate().is_ok());
        assert_eq!(c.log.fsync, FsyncPolicy::Group);
    }

    #[test]
    fn tracing_requires_capacity() {
        let mut c = EngineConfig::new(CcScheme::NoWait, 1).with_tracing(0);
        assert!(c.validate().is_err());
        c.trace.capacity = 256;
        assert!(c.validate().is_ok());
        assert!(c.trace.enabled);
    }

    #[test]
    fn breakdown_is_off_by_default_and_builder_enables_it() {
        let c = EngineConfig::new(CcScheme::Occ, 2);
        assert!(!c.breakdown);
        let c = c.with_breakdown();
        assert!(c.breakdown);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn pinning_defaults_off_and_builder_enables_it() {
        let c = EngineConfig::new(CcScheme::NoWait, 4);
        assert_eq!(c.pin, PinPolicy::None);
        let c = c.with_pinning(PinPolicy::Compact);
        assert_eq!(c.pin, PinPolicy::Compact);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn regulation_knobs_default_safe_and_builders_flip_them() {
        let c = EngineConfig::new(CcScheme::Silo, 4);
        assert!(!c.adaptive_backoff, "adaptive backoff must be opt-in");
        assert!(c.ro_fast_path, "read-only fast path is on by default");
        let c = c.with_adaptive_backoff().with_ro_fast_path(false);
        assert!(c.adaptive_backoff);
        assert!(!c.ro_fast_path);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_rejects_single_partition_hstore() {
        let mut c = EngineConfig::new(CcScheme::HStore, 4);
        c.partitions = 1;
        assert!(c.validate().is_err());
    }
}
