//! # abyss-core
//!
//! A main-memory OLTP engine with eight pluggable concurrency-control
//! schemes — the Rust reproduction of the DBMS test-bed from *Staring into
//! the Abyss: An Evaluation of Concurrency Control with One Thousand
//! Cores* (Yu et al., VLDB 2014), plus the modern epoch-based OCC (SILO)
//! the paper's §4.3 analysis points toward.
//!
//! The engine deliberately contains "only the functionality needed for our
//! experiments" (§3.2): row storage behind hash indexes, per-tuple
//! concurrency-control metadata (no centralized lock table, §4.1), a
//! pluggable scheme manager, and per-thread memory pools. The [`epoch`]
//! module is the reusable epoch subsystem (global ticker, per-worker
//! quiescence, epoch-tagged TID words) that SILO commits through and that
//! future schemes (TicToc, group commit, RCU-style GC) can build on — the
//! word layout and quiescence protocol are documented in `DESIGN.md`.
//!
//! ## Quickstart
//!
//! ```
//! use abyss_core::{Database, EngineConfig};
//! use abyss_common::CcScheme;
//! use abyss_storage::{row, Catalog, Schema};
//!
//! let mut catalog = Catalog::new();
//! let accounts = catalog.add_table("accounts", Schema::key_plus_payload(1, 8), 1000);
//!
//! let db = Database::new(EngineConfig::new(CcScheme::NoWait, 2), catalog).unwrap();
//! db.load_table(accounts, 0..10, |schema, data, key| {
//!     row::set_u64(schema, data, 0, key);
//!     row::set_u64(schema, data, 1, 100); // balance
//! }).unwrap();
//!
//! let mut worker = db.worker(0);
//! // Transfer 10 from account 1 to account 2, retrying conflicts.
//! worker.run_txn(&[], |txn| {
//!     let from = txn.read_u64(accounts, 1, 1)?;
//!     txn.update(accounts, 1, |s, d| row::set_u64(s, d, 1, from - 10))?;
//!     let to = txn.read_u64(accounts, 2, 1)?;
//!     txn.update(accounts, 2, |s, d| row::set_u64(s, d, 1, to + 10))?;
//!     Ok(())
//! }).unwrap();
//! assert_eq!(db.sum_column(accounts, 1), 1000);
//! ```

pub mod backoff;
pub mod config;
pub mod db;
pub mod epoch;
pub mod executor;
pub mod lockword;
pub mod meta;
pub mod obs;
pub mod park;
pub mod schemes;
pub mod serve;
pub mod ts;
pub mod txn;
pub mod waitsfor;
pub mod worker;

pub use backoff::BackoffCtl;
pub use config::{EngineConfig, LogConfig, TraceConfig};
pub use db::{Database, RecoveryReport};
pub use epoch::{EpochManager, EpochTicker};
pub use obs::{MetricsSnapshot, TraceDump, TraceEvent, TraceEventKind, TxnOutcome, TxnSummary};
pub use schemes::{AnyScheme, CcProtocol};
pub use serve::{
    CancelToken, ProcFn, ProcId, ProcRegistry, ServeConfig, SubmitError, TicketStatus, TxnService,
    TxnTicket,
};
pub use ts::{SharedTs, TsHandle};
pub use worker::{
    run_workers, run_workers_bounded, run_workers_bounded_via, BenchOutcome, DispatchMode,
    TxnError, WorkerCtx,
};
