//! The epoch subsystem: a global epoch advanced by a background ticker,
//! per-worker epoch registration with quiescence detection, and the
//! epoch-tagged 64-bit TID words the SILO scheme commits with.
//!
//! ## Why epochs
//!
//! Every timestamp-ordered scheme in the paper pays for a *globally
//! unique, totally ordered* timestamp per transaction, and §4.3 shows the
//! allocator becoming the bottleneck at hundreds of cores. Silo's insight
//! is that serializability only needs a total order *within* an epoch
//! (provided by per-tuple TID words) plus a coarse global order *between*
//! epochs (provided by one read-mostly counter that a single background
//! thread advances every few tens of milliseconds). Workers read the
//! epoch — a shared, rarely-written cache line that replicates in every
//! core's cache — instead of fetching-and-adding a contended counter.
//!
//! ## TID word layout
//!
//! ```text
//!  63   62............40  39.............0
//! [lock][     epoch     ][   sequence    ]
//! ```
//!
//! Bit 63 is the tuple lock bit (shared with
//! [`crate::lockword::silo`]); bits 40..=62 hold the commit epoch
//! ([`EPOCH_BITS`] = 23 bits ≈ 93 hours at the default 40 ms tick); bits
//! 0..=39 hold a per-epoch sequence. A committed transaction's TID is
//! greater than every TID in its read and write sets and carries the
//! epoch current at its serialization point, so TID order within an epoch
//! plus epoch order between epochs embeds the serial order.
//!
//! ## Quiescence protocol
//!
//! Each worker owns one cache-padded slot. On transaction begin it
//! publishes the global epoch into its slot ([`EpochManager::enter`],
//! with a store-then-recheck handshake so a concurrent advance is never
//! missed); on commit/abort it publishes [`QUIESCENT`]
//! ([`EpochManager::exit`]). [`EpochManager::safe_epoch`] then returns the
//! newest epoch `e` such that no active worker can still observe state
//! from epochs `< e` — the reclamation horizon future subsystems (version
//! GC, RCU-style index maintenance, group commit) free up to.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use abyss_common::CoreId;
use abyss_common::Padded;

/// Bits of a TID word holding the per-epoch sequence number.
pub const SEQ_BITS: u32 = 40;
/// Bits of a TID word holding the commit epoch.
pub const EPOCH_BITS: u32 = 23;
/// Mask of the sequence component.
pub const SEQ_MASK: u64 = (1 << SEQ_BITS) - 1;
/// Largest representable epoch.
pub const MAX_EPOCH: u64 = (1 << EPOCH_BITS) - 1;

/// Slot value meaning "this worker is outside any transaction".
pub const QUIESCENT: u64 = 0;

/// The first epoch a manager hands out (0 is reserved: pre-load TIDs and
/// [`QUIESCENT`] slots).
pub const FIRST_EPOCH: u64 = 1;

/// Compose a TID word from an epoch and a sequence number (lock bit clear).
#[inline]
pub fn compose_tid(epoch: u64, seq: u64) -> u64 {
    debug_assert!(
        epoch <= MAX_EPOCH,
        "epoch {epoch} overflows {EPOCH_BITS} bits"
    );
    debug_assert!(seq <= SEQ_MASK, "sequence {seq} overflows {SEQ_BITS} bits");
    (epoch << SEQ_BITS) | seq
}

/// The epoch component of a TID word (ignores the lock bit).
#[inline]
pub fn tid_epoch(tid: u64) -> u64 {
    (tid & !crate::lockword::silo::LOCKED) >> SEQ_BITS
}

/// The sequence component of a TID word.
#[inline]
pub fn tid_seq(tid: u64) -> u64 {
    tid & SEQ_MASK
}

/// The global epoch plus per-worker registration slots (see module docs).
#[derive(Debug)]
pub struct EpochManager {
    /// The global epoch. Written by the ticker (or tests), read by every
    /// worker — a read-mostly line, so reads stay core-local.
    global: Padded<AtomicU64>,
    /// One slot per worker: [`QUIESCENT`] or the epoch the worker entered.
    slots: Box<[Padded<AtomicU64>]>,
}

impl EpochManager {
    /// A manager with `workers` registration slots, at [`FIRST_EPOCH`].
    pub fn new(workers: u32) -> Self {
        let mut slots = Vec::with_capacity(workers as usize);
        slots.resize_with(workers as usize, || Padded::new(AtomicU64::new(QUIESCENT)));
        Self {
            global: Padded::new(AtomicU64::new(FIRST_EPOCH)),
            slots: slots.into_boxed_slice(),
        }
    }

    /// The current global epoch.
    #[inline]
    pub fn current(&self) -> u64 {
        self.global.load(Ordering::Acquire)
    }

    /// Advance the global epoch by one; returns the new value. Called by
    /// the background ticker (or tests / manual drivers).
    ///
    /// Saturates at [`MAX_EPOCH`] instead of panicking: a panic in the
    /// detached ticker thread would be swallowed and freeze epochs
    /// silently, whereas saturation keeps commits correct — TID order
    /// within the final epoch still has the full [`SEQ_BITS`]-bit
    /// sequence space (≈ 10^12 commits) to embed the serial order.
    pub fn advance(&self) -> u64 {
        let mut cur = self.global.load(Ordering::Acquire);
        loop {
            if cur >= MAX_EPOCH {
                return MAX_EPOCH;
            }
            match self.global.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return cur + 1,
                Err(now) => cur = now,
            }
        }
    }

    /// Register `worker` as active in the current epoch; returns that
    /// epoch. The store-then-recheck loop guarantees that by the time this
    /// returns, the worker's slot holds an epoch no older than any epoch a
    /// concurrent [`EpochManager::advance`] already published.
    #[inline]
    pub fn enter(&self, worker: CoreId) -> u64 {
        let slot = &self.slots[worker as usize];
        let mut e = self.current();
        loop {
            slot.store(e, Ordering::SeqCst);
            let now = self.current();
            if now == e {
                return e;
            }
            e = now;
        }
    }

    /// Mark `worker` as quiescent (outside any transaction).
    #[inline]
    pub fn exit(&self, worker: CoreId) {
        self.slots[worker as usize].store(QUIESCENT, Ordering::Release);
    }

    /// The oldest epoch any active worker is registered in, if any worker
    /// is active.
    pub fn min_active(&self) -> Option<u64> {
        self.slots
            .iter()
            .map(|s| s.load(Ordering::Acquire))
            .filter(|&e| e != QUIESCENT)
            .min()
    }

    /// The reclamation horizon: every epoch `< safe_epoch()` is quiesced —
    /// no active worker entered before it, so no transaction can still
    /// observe state that only epochs before it reference.
    pub fn safe_epoch(&self) -> u64 {
        match self.min_active() {
            Some(e) => e,
            None => self.current(),
        }
    }
}

/// Handle to the background epoch ticker; advancing stops (and the thread
/// joins) on drop.
#[derive(Debug)]
pub struct EpochTicker {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl EpochTicker {
    /// Spawn a thread advancing `mgr` every `interval` until dropped.
    pub fn start(mgr: Arc<EpochManager>, interval: Duration) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("abyss-epoch-ticker".into())
            .spawn(move || {
                // Sleep in short slices so dropping the database never
                // blocks a full interval behind a sleeping ticker.
                let slice = interval
                    .min(Duration::from_millis(5))
                    .max(Duration::from_micros(50));
                let mut slept = Duration::ZERO;
                while !stop2.load(Ordering::Acquire) {
                    std::thread::sleep(slice);
                    slept += slice;
                    if slept >= interval {
                        mgr.advance();
                        slept = Duration::ZERO;
                    }
                }
            })
            .expect("spawn epoch ticker");
        Self {
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for EpochTicker {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tid_word_round_trips() {
        let tid = compose_tid(5, 1234);
        assert_eq!(tid_epoch(tid), 5);
        assert_eq!(tid_seq(tid), 1234);
        // The lock bit never collides with the epoch+sequence payload.
        let locked = crate::lockword::silo::lock(tid);
        assert_eq!(tid_epoch(locked), 5);
        assert_eq!(tid_seq(locked), 1234);
        assert!(compose_tid(MAX_EPOCH, SEQ_MASK) < crate::lockword::silo::LOCKED);
    }

    #[test]
    fn tid_order_follows_epoch_then_seq() {
        assert!(compose_tid(1, SEQ_MASK) < compose_tid(2, 0));
        assert!(compose_tid(2, 0) < compose_tid(2, 1));
    }

    #[test]
    fn advance_is_monotonic() {
        let m = EpochManager::new(2);
        let e0 = m.current();
        assert_eq!(e0, FIRST_EPOCH);
        assert_eq!(m.advance(), e0 + 1);
        assert_eq!(m.current(), e0 + 1);
    }

    #[test]
    fn quiescence_tracks_active_workers() {
        let m = EpochManager::new(3);
        assert_eq!(m.min_active(), None);
        assert_eq!(m.safe_epoch(), m.current());
        let e = m.enter(0);
        assert_eq!(e, m.current());
        m.advance();
        m.advance();
        let e2 = m.enter(1);
        assert_eq!(e2, m.current());
        // Worker 0 still pins its entry epoch.
        assert_eq!(m.min_active(), Some(e));
        assert_eq!(m.safe_epoch(), e);
        m.exit(0);
        assert_eq!(m.min_active(), Some(e2));
        m.exit(1);
        assert_eq!(m.min_active(), None);
        assert_eq!(m.safe_epoch(), m.current());
    }

    #[test]
    fn enter_rechecks_a_racing_advance() {
        // Deterministic single-thread version of the handshake: the slot
        // must end up holding the *latest* epoch enter observed.
        let m = EpochManager::new(1);
        let e = m.enter(0);
        assert_eq!(m.slots[0].load(Ordering::Relaxed), e);
    }

    #[test]
    fn advance_saturates_at_max_epoch() {
        // Wraparound edge: the 23-bit epoch space exhausts after ~93 hours
        // at the default tick; the manager must saturate, not wrap — a
        // wrapped epoch would order *behind* every live TID and break the
        // serial-order embedding.
        let m = EpochManager::new(1);
        while m.advance() < MAX_EPOCH {}
        assert_eq!(m.current(), MAX_EPOCH);
        assert_eq!(m.advance(), MAX_EPOCH, "advance past MAX must saturate");
        assert_eq!(m.current(), MAX_EPOCH);
        // TID packing still round-trips at the saturated epoch.
        let tid = compose_tid(MAX_EPOCH, SEQ_MASK);
        assert_eq!(tid_epoch(tid), MAX_EPOCH);
        assert_eq!(tid_seq(tid), SEQ_MASK);
    }

    #[test]
    fn quiescence_still_tracks_at_saturated_epoch() {
        // GC horizons must keep working after saturation: a worker
        // entering at MAX_EPOCH pins it; exiting releases it.
        let m = EpochManager::new(2);
        while m.advance() < MAX_EPOCH {}
        let e = m.enter(0);
        assert_eq!(e, MAX_EPOCH);
        assert_eq!(m.safe_epoch(), MAX_EPOCH);
        m.exit(0);
        assert_eq!(m.min_active(), None);
    }

    #[test]
    fn safe_epoch_pins_across_advances_until_exit() {
        // An epoch advance *during* a transaction (e.g. mid-validation)
        // must not move the reclamation horizon past the worker's entry
        // epoch — state it may still reference stays unreclaimed.
        let m = EpochManager::new(2);
        let e = m.enter(0);
        for _ in 0..5 {
            m.advance();
        }
        assert_eq!(m.safe_epoch(), e, "active worker must pin its epoch");
        // A second worker entering now registers at the advanced epoch but
        // the horizon still honours the older one.
        let e2 = m.enter(1);
        assert_eq!(e2, e + 5);
        assert_eq!(m.safe_epoch(), e);
        m.exit(0);
        assert_eq!(m.safe_epoch(), e2);
        m.exit(1);
    }

    #[test]
    fn tid_sequence_boundary_does_not_leak_into_epoch() {
        // A full sequence field must not carry into the epoch bits.
        let tid = compose_tid(7, SEQ_MASK);
        assert_eq!(tid_epoch(tid), 7);
        assert_eq!(tid_epoch(tid + 1), 8, "seq overflow moves to next epoch");
        assert_eq!(tid_seq(tid + 1), 0);
    }

    #[test]
    fn ticker_advances_and_stops_on_drop() {
        let m = Arc::new(EpochManager::new(1));
        let before = m.current();
        {
            let _t = EpochTicker::start(Arc::clone(&m), Duration::from_millis(1));
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            while m.current() < before + 3 {
                assert!(std::time::Instant::now() < deadline, "ticker too slow");
                std::thread::yield_now();
            }
        }
        // Dropped: the epoch must stop moving.
        let frozen = m.current();
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(m.current(), frozen);
    }

    #[test]
    fn concurrent_enter_exit_never_precedes_global() {
        let m = Arc::new(EpochManager::new(4));
        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for w in 0..4u32 {
            let m = Arc::clone(&m);
            let stop = Arc::clone(&stop);
            handles.push(std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let e = m.enter(w);
                    assert!(e >= FIRST_EPOCH && e <= m.current());
                    m.exit(w);
                }
            }));
        }
        for _ in 0..1000 {
            m.advance();
            if let Some(min) = m.min_active() {
                assert!(min <= m.current());
            }
        }
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            h.join().unwrap();
        }
    }
}
