//! Timestamp allocation (§4.3 of the paper) — real implementations.
//!
//! Four of the paper's five methods are realizable on stock hardware:
//!
//! * **mutex** — a lock around the counter (the naïve baseline);
//! * **atomic** — one `fetch_add`; the canonical choice, but the counter's
//!   cache line ping-pongs between every allocating core;
//! * **batched atomic** — `fetch_add(batch)` with a per-worker cache
//!   (Silo); fewer cache-line transfers, but restarted transactions keep
//!   drawing stale timestamps from the local batch (Fig. 7b's collapse);
//! * **clock** — a per-worker monotonic clock reading concatenated with the
//!   worker id; fully decentralized.
//!
//! The **hardware counter** exists only in the simulator
//! (`abyss-sim::tsalloc`); requesting it here falls back to `atomic`, which
//! is its software-equivalent semantics (a single serialization point)
//! without the single-cycle increment.
//!
//! All methods return strictly increasing timestamps per worker and unique
//! timestamps across workers; `WAIT_DIE`'s age ordering and every T/O rule
//! depend on that.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use abyss_common::{CoreId, Padded, Ts, TsMethod};
use parking_lot::Mutex;

/// Bits reserved for the worker id in clock timestamps.
const CLOCK_WORKER_BITS: u32 = 10;
/// Workers representable in a clock timestamp. Worker ids at or beyond
/// this would alias another worker's timestamps (the id is packed into
/// the low [`CLOCK_WORKER_BITS`] bits), silently breaking the
/// cross-worker uniqueness WAIT_DIE's age ordering and every T/O rule
/// depend on — so [`SharedTs::handle`] rejects them up front.
pub const CLOCK_MAX_WORKERS: u32 = 1 << CLOCK_WORKER_BITS;

/// Shared state of a timestamp allocator; per-worker access goes through
/// [`TsHandle`].
///
/// The mutable counters live on their own cache line ([`Padded`]): the
/// allocator word is the single hottest shared word in every T/O scheme,
/// and an unpadded counter would additionally drag whatever the enum's
/// neighbors are into its coherence storm (the `padding_audit` section of
/// `dispatch_micro` measures that cost).
#[derive(Debug)]
enum Shared {
    Mutex(Mutex<u64>),
    Atomic(Padded<AtomicU64>),
    Batched {
        counter: Padded<AtomicU64>,
        batch: u64,
    },
    Clock {
        epoch: Instant,
    },
}

/// A timestamp allocator shared by all workers of a database.
#[derive(Debug, Clone)]
pub struct SharedTs {
    inner: Arc<Shared>,
    method: TsMethod,
}

impl SharedTs {
    /// Build an allocator for `method`. [`TsMethod::Hardware`] falls back
    /// to atomic (see module docs).
    pub fn new(method: TsMethod) -> Self {
        let inner = match method {
            TsMethod::Mutex => Shared::Mutex(Mutex::new(0)),
            TsMethod::Atomic | TsMethod::Hardware => Shared::Atomic(Padded::new(AtomicU64::new(0))),
            TsMethod::Batched { batch } => Shared::Batched {
                counter: Padded::new(AtomicU64::new(0)),
                batch: u64::from(batch.max(1)),
            },
            TsMethod::Clock => Shared::Clock {
                epoch: Instant::now(),
            },
        };
        Self {
            inner: Arc::new(inner),
            method,
        }
    }

    /// The configured method (as requested — see
    /// [`SharedTs::effective_method`] for what actually runs).
    pub fn method(&self) -> TsMethod {
        self.method
    }

    /// The method actually executing: [`TsMethod::Hardware`] exists only
    /// in the simulator and silently degrades to [`TsMethod::Atomic`]
    /// here, so stats and benchmark JSON must label runs with *this*, not
    /// [`SharedTs::method`], or the run is misreported.
    pub fn effective_method(&self) -> TsMethod {
        match self.method {
            TsMethod::Hardware => TsMethod::Atomic,
            m => m,
        }
    }

    /// Create the per-worker handle. Each worker must use its own.
    ///
    /// Panics when `worker` cannot be represented in a clock timestamp
    /// ([`CLOCK_MAX_WORKERS`]): packed into [`CLOCK_WORKER_BITS`] bits
    /// without this check, worker 1024 would silently mint the same
    /// timestamps as worker 0.
    pub fn handle(&self, worker: CoreId) -> TsHandle {
        assert!(
            !matches!(self.method, TsMethod::Clock) || worker < CLOCK_MAX_WORKERS,
            "worker id {worker} does not fit the {CLOCK_WORKER_BITS}-bit clock-timestamp field \
             (max {})",
            CLOCK_MAX_WORKERS - 1
        );
        TsHandle {
            shared: Arc::clone(&self.inner),
            worker,
            batch_next: 0,
            batch_end: 0,
            last: 0,
        }
    }
}

/// Per-worker timestamp source.
#[derive(Debug)]
pub struct TsHandle {
    shared: Arc<Shared>,
    worker: CoreId,
    batch_next: u64,
    batch_end: u64,
    last: Ts,
}

impl TsHandle {
    /// Allocate the next timestamp. Timestamps are non-zero, unique across
    /// workers, and strictly increasing per worker.
    #[inline]
    pub fn alloc(&mut self) -> Ts {
        let ts = match &*self.shared {
            Shared::Mutex(m) => {
                let mut g = m.lock();
                *g += 1;
                *g
            }
            Shared::Atomic(a) => a.fetch_add(1, Ordering::Relaxed) + 1,
            Shared::Batched { counter, batch } => {
                if self.batch_next >= self.batch_end {
                    let start = counter.fetch_add(*batch, Ordering::Relaxed);
                    self.batch_next = start + 1;
                    self.batch_end = start + batch + 1;
                }
                let ts = self.batch_next;
                self.batch_next += 1;
                ts
            }
            Shared::Clock { epoch } => {
                let ns = epoch.elapsed().as_nanos() as u64;
                let ts = (ns << CLOCK_WORKER_BITS) | u64::from(self.worker);
                // Two back-to-back reads can land in the same nanosecond;
                // force per-worker strict monotonicity.
                ts.max(self.last + (1 << CLOCK_WORKER_BITS))
            }
        };
        debug_assert!(ts > self.last, "timestamps must increase per worker");
        self.last = ts;
        ts
    }

    /// Drop any cached batch (used when a fresh, *current* timestamp is
    /// required — e.g. after an abort under the batched method the caller
    /// may still want the paper's behaviour of reusing the batch; this is
    /// the escape hatch the ablation benchmark flips).
    pub fn discard_batch(&mut self) {
        self.batch_next = self.batch_end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn check_unique_and_increasing(method: TsMethod) {
        let shared = SharedTs::new(method);
        let mut handles: Vec<_> = (0..4).map(|w| shared.handle(w)).collect();
        let mut all = HashSet::new();
        let mut lasts = [0u64; 4];
        for round in 0..1000 {
            for (w, h) in handles.iter_mut().enumerate() {
                let ts = h.alloc();
                assert!(
                    ts > lasts[w],
                    "worker {w} ts not increasing at round {round}"
                );
                lasts[w] = ts;
                assert!(all.insert(ts), "duplicate ts {ts} ({method:?})");
            }
        }
    }

    #[test]
    fn mutex_unique_increasing() {
        check_unique_and_increasing(TsMethod::Mutex);
    }

    #[test]
    fn atomic_unique_increasing() {
        check_unique_and_increasing(TsMethod::Atomic);
    }

    #[test]
    fn batched_unique_increasing() {
        check_unique_and_increasing(TsMethod::Batched { batch: 8 });
    }

    #[test]
    fn clock_unique_increasing() {
        check_unique_and_increasing(TsMethod::Clock);
    }

    #[test]
    fn batched_hands_out_contiguous_runs() {
        let shared = SharedTs::new(TsMethod::Batched { batch: 4 });
        let mut h = shared.handle(0);
        let first: Vec<Ts> = (0..4).map(|_| h.alloc()).collect();
        assert_eq!(first, vec![1, 2, 3, 4]);
        // Another worker takes the next batch.
        let mut h2 = shared.handle(1);
        assert_eq!(h2.alloc(), 5);
        // First worker refills after its batch is exhausted.
        assert_eq!(h.alloc(), 9);
    }

    #[test]
    fn concurrent_atomic_allocation_is_unique() {
        let shared = SharedTs::new(TsMethod::Atomic);
        let mut joins = Vec::new();
        for w in 0..8 {
            let s = shared.clone();
            joins.push(std::thread::spawn(move || {
                let mut h = s.handle(w);
                (0..10_000).map(|_| h.alloc()).collect::<Vec<_>>()
            }));
        }
        let mut all = HashSet::new();
        for j in joins {
            for ts in j.join().unwrap() {
                assert!(all.insert(ts), "duplicate {ts}");
            }
        }
        assert_eq!(all.len(), 80_000);
    }

    #[test]
    fn hardware_falls_back_to_atomic() {
        let shared = SharedTs::new(TsMethod::Hardware);
        let mut h = shared.handle(0);
        assert_eq!(h.alloc(), 1);
        assert_eq!(h.alloc(), 2);
    }

    #[test]
    fn hardware_reports_effective_method_as_atomic() {
        let shared = SharedTs::new(TsMethod::Hardware);
        assert_eq!(shared.method(), TsMethod::Hardware);
        assert_eq!(shared.effective_method(), TsMethod::Atomic);
        // Realizable methods report themselves.
        let clock = SharedTs::new(TsMethod::Clock);
        assert_eq!(clock.effective_method(), TsMethod::Clock);
    }

    #[test]
    fn clock_worker_id_boundary() {
        let shared = SharedTs::new(TsMethod::Clock);
        // 1023 is the largest representable worker id...
        let mut h = shared.handle(CLOCK_MAX_WORKERS - 1);
        let ts = h.alloc();
        assert_eq!(ts & u64::from(CLOCK_MAX_WORKERS - 1), 1023);
        // ...and 1024 must be rejected instead of aliasing worker 0.
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            shared.handle(CLOCK_MAX_WORKERS)
        }));
        assert!(res.is_err(), "worker 1024 must not alias worker 0");
        // Non-clock methods carry no packed worker id; large ids are fine.
        let atomic = SharedTs::new(TsMethod::Atomic);
        let _ = atomic.handle(CLOCK_MAX_WORKERS);
    }
}
