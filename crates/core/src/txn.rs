//! Transaction identifiers and per-transaction state.

use abyss_common::{CoreId, Key, RowIdx, TableId, Ts, TxnId};
use abyss_storage::btree::LeafId;
use abyss_storage::mempool::PoolBlock;

use crate::meta::LockMode;

/// Pseudo row index addressing a table's "+∞ key" lock anchor
/// ([`crate::db::Database::row_meta`]). 2PL scans S-lock it when a range
/// has no successor; inserters of a new maximum key X-lock it — next-key
/// locking's representation of the unbounded tail gap.
pub const GAP_ROW: RowIdx = RowIdx::MAX;

/// Bits of a [`TxnId`] reserved for the worker id.
pub const WORKER_BITS: u32 = 10;
/// Maximum workers an engine instance supports (txn-id encoding limit —
/// matches the paper's 1024-core ceiling).
pub const MAX_WORKERS: usize = 1 << WORKER_BITS;

/// Compose a transaction id from a worker and its local sequence number.
#[inline]
pub fn make_txn_id(worker: CoreId, seq: u64) -> TxnId {
    (seq << WORKER_BITS) | u64::from(worker)
}

/// The worker encoded in a transaction id.
#[inline]
pub fn worker_of(txn: TxnId) -> CoreId {
    (txn & (MAX_WORKERS as u64 - 1)) as CoreId
}

/// A lock held by the transaction (2PL schemes).
#[derive(Debug, Clone, Copy)]
pub(crate) struct HeldLock {
    pub table: TableId,
    pub row: RowIdx,
    pub mode: LockMode,
}

/// Before-image for an in-place write (2PL, H-STORE).
#[derive(Debug)]
pub(crate) struct UndoEntry {
    pub table: TableId,
    pub row: RowIdx,
    pub image: PoolBlock,
}

/// A buffered write (T/O, MVCC, OCC): the private workspace copy that will
/// be installed at commit.
#[derive(Debug)]
pub(crate) struct WriteEntry {
    pub table: TableId,
    pub row: RowIdx,
    pub data: PoolBlock,
}

/// A read-set entry (OCC): the version observed at read time.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ReadEntry {
    pub table: TableId,
    pub row: RowIdx,
    pub version: u64,
}

/// A local read copy (TIMESTAMP/MVCC/OCC serve reads from these).
#[derive(Debug)]
pub(crate) struct ReadCopy {
    /// Provenance, kept for debugging dumps.
    #[allow(dead_code)]
    pub table: TableId,
    #[allow(dead_code)]
    pub row: RowIdx,
    pub data: PoolBlock,
}

/// One leaf observed by a range scan, with the version it was read at.
/// OCC/SILO re-validate these at commit (Silo's node-set validation): a
/// version change means the leaf's key set — including its *gaps* —
/// changed since the scan, so the scan may have missed a phantom.
#[derive(Debug, Clone, Copy)]
pub(crate) struct NodeSetEntry {
    pub table: TableId,
    pub leaf: LeafId,
    pub version: u64,
}

/// A pending or applied delete.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DeleteEntry {
    pub table: TableId,
    pub key: Key,
    pub row: RowIdx,
    /// Whether the index entries are already withdrawn (eager schemes);
    /// abort must re-publish them.
    pub applied: bool,
}

/// One logical redo operation captured as the transaction executes
/// (logging enabled only). `image: Some` is an insert-or-update
/// after-image; `None` is a delete. Entries are deduplicated by
/// `(table, key)` — the latest operation supersedes — so the commit
/// record carries exactly the transaction's net write set.
#[derive(Debug)]
pub(crate) struct RedoEntry {
    pub table: TableId,
    pub key: Key,
    pub image: Option<PoolBlock>,
}

/// A pending or applied insert.
#[derive(Debug)]
pub(crate) struct InsertEntry {
    pub table: TableId,
    pub key: Key,
    /// Row slot, once allocated (2PL/H-STORE allocate eagerly; buffered
    /// schemes at commit). Kept for debugging dumps.
    #[allow(dead_code)]
    pub row: Option<RowIdx>,
    /// Buffered row image (buffered schemes only).
    pub data: Option<PoolBlock>,
    /// Whether the key is visible in the index (needs removal on abort).
    pub indexed: bool,
}

/// All mutable per-transaction state, reset by `begin`.
#[derive(Debug, Default)]
pub(crate) struct TxnState {
    /// Unique id (encodes the worker in the low bits).
    pub txn_id: TxnId,
    /// The scheme timestamp (0 when the scheme needs none).
    pub ts: Ts,
    /// Locks currently held (2PL).
    pub held: Vec<HeldLock>,
    /// Before-images for in-place writes.
    pub undo: Vec<UndoEntry>,
    /// Buffered writes.
    pub wbuf: Vec<WriteEntry>,
    /// OCC read set.
    pub rset: Vec<ReadEntry>,
    /// Local read copies.
    pub rbuf: Vec<ReadCopy>,
    /// Rows on which this transaction holds a T/O or MVCC prewrite.
    pub prewrites: Vec<(TableId, RowIdx)>,
    /// Inserts made by this transaction.
    pub inserts: Vec<InsertEntry>,
    /// Deletes made by this transaction.
    pub deletes: Vec<DeleteEntry>,
    /// Leaves observed by range scans (OCC/SILO phantom validation).
    pub node_set: Vec<NodeSetEntry>,
    /// H-STORE partitions currently held.
    pub parts: Vec<u32>,
    /// Reusable scratch for the OCC/SILO commit lock set (kept across
    /// transactions so the hot commit path never allocates).
    pub lock_scratch: Vec<(TableId, RowIdx)>,
    /// Redo after-images captured for the WAL (logging enabled only).
    pub redo: Vec<RedoEntry>,
    /// The commit epoch for the WAL record, published by the scheme at
    /// its serialization point (0 = not set / logging off).
    pub log_epoch: u64,
    /// The WAL record's serial number: within an epoch, replay applies
    /// records touching the same key in increasing `log_seq` (SILO's
    /// commit TID, a T/O scheme's timestamp, or a commit-window serial
    /// from [`crate::db::Database::wal_commit_point_csn`]).
    pub log_seq: u64,
    /// Tracing: this attempt already emitted its `FirstConflict` event.
    pub traced_conflict: bool,
    /// The read-only fast path is active for this attempt: the template
    /// was statically read-only and the engine config enabled the skip
    /// (see `EngineConfig::ro_fast_path`). Writes under this flag are a
    /// caller bug, caught by debug assertions in the worker.
    pub read_only: bool,
}

impl TxnState {
    /// Clear everything for the next transaction, recycling buffers into
    /// `pool`.
    pub fn reset(&mut self, pool: &mut abyss_storage::MemPool) {
        self.txn_id = 0;
        self.ts = 0;
        self.held.clear();
        for u in self.undo.drain(..) {
            pool.free(u.image);
        }
        for w in self.wbuf.drain(..) {
            pool.free(w.data);
        }
        self.rset.clear();
        for r in self.rbuf.drain(..) {
            pool.free(r.data);
        }
        self.prewrites.clear();
        for i in self.inserts.drain(..) {
            if let Some(d) = i.data {
                pool.free(d);
            }
        }
        self.deletes.clear();
        self.node_set.clear();
        self.parts.clear();
        for r in self.redo.drain(..) {
            if let Some(img) = r.image {
                pool.free(img);
            }
        }
        self.log_epoch = 0;
        self.log_seq = 0;
        self.traced_conflict = false;
        self.read_only = false;
    }

    /// Does the transaction already hold `(table, row)` at `mode` or
    /// stronger?
    pub fn holds(&self, table: TableId, row: RowIdx, mode: LockMode) -> bool {
        self.held.iter().any(|h| {
            h.table == table && h.row == row && (h.mode == mode || h.mode == LockMode::Exclusive)
        })
    }

    /// Index into `wbuf` for `(table, row)`, if this transaction already
    /// buffered a write there.
    pub fn wbuf_idx(&self, table: TableId, row: RowIdx) -> Option<usize> {
        self.wbuf
            .iter()
            .position(|w| w.table == table && w.row == row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txn_id_round_trips_worker() {
        for worker in [0u32, 1, 9, 1023] {
            for seq in [0u64, 1, 99, 1 << 40] {
                assert_eq!(worker_of(make_txn_id(worker, seq)), worker);
            }
        }
    }

    #[test]
    fn txn_ids_are_unique_across_workers_and_seqs() {
        let a = make_txn_id(1, 5);
        let b = make_txn_id(2, 5);
        let c = make_txn_id(1, 6);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn holds_respects_mode_strength() {
        let mut st = TxnState::default();
        st.held.push(HeldLock {
            table: 0,
            row: 3,
            mode: LockMode::Exclusive,
        });
        st.held.push(HeldLock {
            table: 0,
            row: 4,
            mode: LockMode::Shared,
        });
        assert!(st.holds(0, 3, LockMode::Shared));
        assert!(st.holds(0, 3, LockMode::Exclusive));
        assert!(st.holds(0, 4, LockMode::Shared));
        assert!(!st.holds(0, 4, LockMode::Exclusive));
        assert!(!st.holds(0, 5, LockMode::Shared));
    }

    #[test]
    fn reset_recycles_buffers() {
        let mut pool = abyss_storage::MemPool::new();
        let mut st = TxnState::default();
        st.rbuf.push(ReadCopy {
            table: 0,
            row: 0,
            data: pool.alloc(64),
        });
        st.wbuf.push(WriteEntry {
            table: 0,
            row: 1,
            data: pool.alloc(64),
        });
        let cached_before = pool.stats().cached;
        st.reset(&mut pool);
        assert!(st.rbuf.is_empty() && st.wbuf.is_empty());
        assert_eq!(pool.stats().cached, cached_before + 2);
    }
}
