//! Template executor: runs engine-agnostic [`TxnTemplate`]s (from
//! `abyss-workload`) against a [`crate::worker::WorkerCtx`].
//!
//! This is the glue the benchmark driver uses; library users with custom
//! transaction logic call [`crate::worker::WorkerCtx::run_txn`] directly.

use abyss_common::txn::MAX_COUNTER_SLOTS;
use abyss_common::{AbortReason, AccessOp, Key, TxnTemplate};
use abyss_storage::{row, Schema};

use crate::schemes::CcProtocol;
use crate::worker::{TxnError, WorkerCtx};

/// The column templates read-modify-write (column 0 is the primary key).
pub const HOT_COL: usize = 1;

/// Default update: bump the hot column (first 8 bytes) — the generic
/// "modify the tuple" of YCSB and the YTD/quantity updates of TPC-C.
fn apply_update(schema: &Schema, data: &mut [u8]) {
    row::fetch_add_u64(schema, data, HOT_COL, 1);
}

/// Default insert image: the key in column 0.
fn init_insert(schema: &Schema, data: &mut [u8], key: Key) {
    row::set_u64(schema, data, 0, key);
}

/// Execute `tmpl` as one transaction attempt inside an active retry loop.
fn body<P: CcProtocol>(t: &mut WorkerCtx<P>, tmpl: &TxnTemplate) -> Result<(), TxnError> {
    let mut counters = [0u64; MAX_COUNTER_SLOTS];
    let mut sink = 0u64;
    for a in &tmpl.accesses {
        let key = a.key.resolve(&counters);
        match a.op {
            AccessOp::Read => {
                let data = t.read(a.table, key)?;
                // Touch the row so the read cannot be optimized away.
                sink ^= u64::from(data[0]) ^ u64::from(data[data.len() - 1]);
            }
            AccessOp::Update => t.update(a.table, key, apply_update)?,
            AccessOp::UpdateCounter { slot } => {
                counters[slot as usize] = t.update_counter(a.table, key, HOT_COL, 1)?;
            }
            AccessOp::Insert => t.insert(a.table, key, |s, d| init_insert(s, d, key))?,
            AccessOp::Scan { len } => {
                let high = key.saturating_add(u64::from(len).max(1) - 1);
                let n = t.scan(a.table, key, high, |_, _, data| {
                    sink ^= u64::from(data[0]);
                })?;
                sink ^= n as u64;
            }
        }
    }
    std::hint::black_box(sink);
    if tmpl.user_abort {
        return Err(TxnError::Abort(AbortReason::UserAbort));
    }
    Ok(())
}

/// Run `tmpl` to commit, retrying scheduler aborts (restart in the same
/// worker, §3.2). Returns the error only for user aborts or template bugs.
///
/// Templates whose access list is statically read-only take the read-only
/// fast path (when `cfg.ro_fast_path` is on): the engine skips write-side
/// bookkeeping — WAL-horizon epoch registration, OCC's validation
/// timestamp — that a read-only transaction can never need.
pub fn run_template<P: CcProtocol>(
    ctx: &mut WorkerCtx<P>,
    tmpl: &TxnTemplate,
) -> Result<(), TxnError> {
    let read_only = ctx.database().config().ro_fast_path && tmpl.is_read_only();
    ctx.run_txn_with_hint(&tmpl.partitions, read_only, |t| body(t, tmpl))
}

/// [`run_template`] plus statistics bookkeeping — the benchmark driver's
/// inner loop.
pub fn run_to_commit<P: CcProtocol>(
    ctx: &mut WorkerCtx<P>,
    tmpl: &TxnTemplate,
    _stop: &std::sync::atomic::AtomicBool,
) {
    match run_template(ctx, tmpl) {
        Ok(()) => {
            ctx.stats.record_commit(tmpl.tag);
            ctx.stats.tuples_committed += tmpl.len() as u64;
        }
        Err(TxnError::Abort(AbortReason::UserAbort)) => {
            ctx.stats.record_abort(AbortReason::UserAbort);
        }
        Err(e) => panic!("workload template failed non-transactionally: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::db::Database;
    use abyss_common::{AccessSpec, CcScheme, KeySpec};
    use abyss_storage::{Catalog, Schema};
    use std::sync::Arc;

    fn db(scheme: CcScheme) -> Arc<Database> {
        let mut cat = Catalog::new();
        cat.add_table("t", Schema::key_plus_payload(2, 8), 1000);
        let db = Database::new(EngineConfig::new(scheme, 1), cat).unwrap();
        db.load_table(0, 0..100u64, |s, r, k| {
            row::set_u64(s, r, 0, k);
            row::set_u64(s, r, 1, 1000);
        })
        .unwrap();
        db
    }

    fn counter_then_insert_template() -> TxnTemplate {
        TxnTemplate::new(vec![
            AccessSpec {
                table: 0,
                key: KeySpec::Fixed(3),
                op: AccessOp::UpdateCounter { slot: 0 },
            },
            AccessSpec {
                table: 0,
                key: KeySpec::Derived {
                    slot: 0,
                    base: 0,
                    scale: 1,
                },
                op: AccessOp::Insert,
            },
        ])
    }

    #[test]
    fn derived_insert_uses_captured_counter() {
        for scheme in CcScheme::NON_PARTITIONED {
            let db = db(scheme);
            let mut ctx = db.worker(0);
            let tmpl = counter_then_insert_template();
            run_template(&mut ctx, &tmpl).unwrap();
            // counter at key 3 was 1000 → insert lands at key 1000
            assert!(db.peek(0, 1000).is_ok(), "{scheme}: derived insert missing");
            assert_eq!(
                row::get_u64(db.schema(0), &db.peek(0, 3).unwrap(), 1),
                1001,
                "{scheme}: counter not bumped"
            );
        }
    }

    #[test]
    fn user_abort_is_recorded_not_retried() {
        let db = db(CcScheme::NoWait);
        let mut ctx = db.worker(0);
        let mut tmpl = TxnTemplate::new(vec![AccessSpec::fixed(0, 1, AccessOp::Update)]);
        tmpl.user_abort = true;
        let stop = std::sync::atomic::AtomicBool::new(false);
        run_to_commit(&mut ctx, &tmpl, &stop);
        assert_eq!(ctx.stats.commits, 0);
        assert_eq!(ctx.stats.aborts_for(AbortReason::UserAbort), 1);
        // the update was rolled back
        assert_eq!(row::get_u64(db.schema(0), &db.peek(0, 1).unwrap(), 1), 1000);
    }

    #[test]
    fn commits_and_tuples_counted() {
        let db = db(CcScheme::Timestamp);
        let mut ctx = db.worker(0);
        let tmpl = TxnTemplate::new(vec![
            AccessSpec::fixed(0, 1, AccessOp::Read),
            AccessSpec::fixed(0, 2, AccessOp::Update),
        ]);
        let stop = std::sync::atomic::AtomicBool::new(false);
        run_to_commit(&mut ctx, &tmpl, &stop);
        assert_eq!(ctx.stats.commits, 1);
        assert_eq!(ctx.stats.tuples_committed, 2);
    }
}
