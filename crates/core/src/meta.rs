//! Per-tuple concurrency-control metadata.
//!
//! The paper's §4.1 design: "instead of having a centralized lock table or
//! timestamp manager, we implemented these data structures in a per-tuple
//! fashion where each transaction only latches the tuples that it needs."
//! [`RowMeta`] is that per-tuple record: one atomic word for the lock-free
//! fast paths (NO_WAIT's reader/writer counts, OCC's version+lock), plus a
//! lazily-allocated, latch-protected [`Aux`] holding whatever richer state
//! the active scheme needs (2PL wait queues, T/O timestamps and prewrites,
//! MVCC version chains).
//!
//! A database runs exactly one scheme, so each row's `Aux` only ever takes
//! one variant; the accessors initialize it on first touch.

use std::collections::VecDeque;

use abyss_common::{CoreId, Ts, TxnId};
use parking_lot::{MappedMutexGuard, Mutex, MutexGuard};

/// Lock mode for the 2PL schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Shared (read) lock.
    Shared,
    /// Exclusive (write) lock.
    Exclusive,
}

impl LockMode {
    /// Two modes are compatible iff both are shared.
    #[inline]
    pub fn compatible(self, other: LockMode) -> bool {
        self == LockMode::Shared && other == LockMode::Shared
    }
}

/// A transaction waiting in a tuple's lock queue.
#[derive(Debug, Clone, Copy)]
pub struct Waiter {
    /// Waiting transaction.
    pub txn: TxnId,
    /// Its worker (for the wakeup flag).
    pub worker: CoreId,
    /// Requested mode.
    pub mode: LockMode,
    /// Its timestamp (WAIT_DIE ordering; 0 under DL_DETECT).
    pub ts: Ts,
    /// True if the waiter already holds the lock in `Shared` mode and is
    /// waiting to upgrade to `Exclusive`.
    pub upgrade: bool,
}

/// A transaction currently holding a tuple lock.
#[derive(Debug, Clone, Copy)]
pub struct Owner {
    /// Holding transaction.
    pub txn: TxnId,
    /// Held mode.
    pub mode: LockMode,
    /// Its timestamp (WAIT_DIE age comparisons; 0 under DL_DETECT).
    pub ts: Ts,
}

/// 2PL per-tuple lock state (DL_DETECT and WAIT_DIE).
#[derive(Debug, Default)]
pub struct LockQueue {
    /// Current holders. Either any number of `Shared` entries or exactly
    /// one `Exclusive` entry.
    pub owners: Vec<Owner>,
    /// Waiting requests. DL_DETECT: FIFO. WAIT_DIE: sorted by `ts`
    /// ascending (oldest first).
    pub waiters: VecDeque<Waiter>,
}

impl LockQueue {
    /// Is `mode` compatible with every current owner, ignoring `me` (for
    /// upgrades)?
    pub fn compatible_with_owners(&self, mode: LockMode, me: TxnId) -> bool {
        self.owners
            .iter()
            .all(|o| o.txn == me || o.mode.compatible(mode))
    }

    /// Owners that conflict with `mode` (excluding `me`).
    pub fn conflicting_owners<'a>(
        &'a self,
        mode: LockMode,
        me: TxnId,
    ) -> impl Iterator<Item = &'a Owner> + 'a {
        self.owners
            .iter()
            .filter(move |o| o.txn != me && !o.mode.compatible(mode))
    }

    /// Remove `txn` from the owner list. Returns true if it was an owner.
    pub fn remove_owner(&mut self, txn: TxnId) -> bool {
        let before = self.owners.len();
        self.owners.retain(|o| o.txn != txn);
        self.owners.len() != before
    }

    /// Remove `txn` from the wait queue (timeout / die path).
    pub fn remove_waiter(&mut self, txn: TxnId) -> bool {
        let before = self.waiters.len();
        self.waiters.retain(|w| w.txn != txn);
        self.waiters.len() != before
    }
}

/// A transaction waiting for a T/O prewrite to resolve.
#[derive(Debug, Clone, Copy)]
pub struct TsWaiter {
    /// Waiting transaction's timestamp.
    pub ts: Ts,
    /// Its worker (for the wakeup flag).
    pub worker: CoreId,
}

/// Basic T/O per-tuple state (TIMESTAMP scheme).
#[derive(Debug, Default)]
pub struct TsState {
    /// Timestamp of the last committed write.
    pub wts: Ts,
    /// Timestamp of the last read.
    pub rts: Ts,
    /// Uncommitted prewrites `(ts, txn)`.
    pub prewrites: Vec<(Ts, TxnId)>,
    /// Readers blocked on a smaller pending prewrite.
    pub waiters: Vec<TsWaiter>,
}

impl TsState {
    /// Smallest pending prewrite timestamp below `ts`, if any.
    pub fn pending_below(&self, ts: Ts) -> Option<Ts> {
        self.prewrites
            .iter()
            .map(|&(p, _)| p)
            .filter(|&p| p < ts)
            .min()
    }

    /// Remove `txn`'s prewrite. Returns true if one was present.
    pub fn remove_prewrite(&mut self, txn: TxnId) -> bool {
        let before = self.prewrites.len();
        self.prewrites.retain(|&(_, t)| t != txn);
        self.prewrites.len() != before
    }
}

/// One committed version in an MVCC chain.
#[derive(Debug)]
pub struct Version {
    /// Write timestamp of the creating transaction.
    pub wts: Ts,
    /// Largest timestamp that has read this version.
    pub rts: Ts,
    /// The version's row image.
    pub data: Box<[u8]>,
}

/// MVCC per-tuple state: a version chain ordered oldest → newest.
#[derive(Debug, Default)]
pub struct MvccChain {
    /// Committed versions, `wts` strictly increasing.
    pub versions: VecDeque<Version>,
    /// Uncommitted prewrites `(ts, txn)`.
    pub prewrites: Vec<(Ts, TxnId)>,
    /// Readers blocked on a pending earlier write.
    pub waiters: Vec<TsWaiter>,
}

impl MvccChain {
    /// Index of the newest version with `wts <= ts`.
    pub fn visible_version(&self, ts: Ts) -> Option<usize> {
        self.versions.iter().rposition(|v| v.wts <= ts)
    }

    /// Smallest pending prewrite in `(after, ts)`, i.e. one whose commit
    /// this reader would have to observe.
    pub fn pending_between(&self, after: Ts, ts: Ts) -> Option<Ts> {
        self.prewrites
            .iter()
            .map(|&(p, _)| p)
            .filter(|&p| p > after && p < ts)
            .min()
    }

    /// Remove `txn`'s prewrite. Returns true if one was present.
    pub fn remove_prewrite(&mut self, txn: TxnId) -> bool {
        let before = self.prewrites.len();
        self.prewrites.retain(|&(_, t)| t != txn);
        self.prewrites.len() != before
    }

    /// Drop oldest versions beyond `max` (simple bounded GC).
    pub fn gc(&mut self, max: usize) {
        while self.versions.len() > max {
            self.versions.pop_front();
        }
    }
}

/// Scheme-specific per-tuple state. One variant per database lifetime.
#[derive(Debug)]
pub enum Aux {
    /// 2PL queue (DL_DETECT / WAIT_DIE).
    Lock(LockQueue),
    /// Basic T/O state (TIMESTAMP).
    Ts(TsState),
    /// MVCC version chain.
    Mvcc(MvccChain),
}

/// Per-tuple concurrency-control metadata (see module docs).
#[derive(Debug)]
pub struct RowMeta {
    /// Lock-free word: `lockword::rw` for NO_WAIT, `lockword::silo` for
    /// OCC's version counter, and the epoch-tagged TID word for SILO
    /// (layout in [`crate::epoch`]: bit 63 = lock, bits 40..=62 = commit
    /// epoch, bits 0..=39 = per-epoch sequence).
    pub word: std::sync::atomic::AtomicU64,
    aux: Mutex<Option<Box<Aux>>>,
}

impl Default for RowMeta {
    fn default() -> Self {
        Self {
            word: std::sync::atomic::AtomicU64::new(0),
            aux: Mutex::new(None),
        }
    }
}

impl RowMeta {
    /// SILO: the tuple's current TID word (lock bit masked off). Loads with
    /// acquire ordering so the caller observes the row image the TID tags.
    #[inline]
    pub fn tid(&self) -> u64 {
        crate::lockword::silo::version(self.word.load(std::sync::atomic::Ordering::Acquire))
    }

    /// Latch the tuple and get its 2PL queue, initializing it on first use.
    pub fn lock_queue(&self) -> MappedMutexGuard<'_, LockQueue> {
        MutexGuard::map(self.aux.lock(), |slot| {
            let aux = slot.get_or_insert_with(|| Box::new(Aux::Lock(LockQueue::default())));
            match aux.as_mut() {
                Aux::Lock(q) => q,
                other => unreachable!("scheme mismatch: expected Lock, found {other:?}"),
            }
        })
    }

    /// Latch the tuple and get its T/O state, initializing it on first use.
    pub fn ts_state(&self) -> MappedMutexGuard<'_, TsState> {
        MutexGuard::map(self.aux.lock(), |slot| {
            let aux = slot.get_or_insert_with(|| Box::new(Aux::Ts(TsState::default())));
            match aux.as_mut() {
                Aux::Ts(s) => s,
                other => unreachable!("scheme mismatch: expected Ts, found {other:?}"),
            }
        })
    }

    /// Latch the tuple and get its MVCC chain. `init` supplies the initial
    /// version's row image on first touch (the loaded table row).
    pub fn mvcc_chain(&self, init: impl FnOnce() -> Box<[u8]>) -> MappedMutexGuard<'_, MvccChain> {
        MutexGuard::map(self.aux.lock(), |slot| {
            let aux = slot.get_or_insert_with(|| {
                let mut chain = MvccChain::default();
                chain.versions.push_back(Version {
                    wts: 0,
                    rts: 0,
                    data: init(),
                });
                Box::new(Aux::Mvcc(chain))
            });
            match aux.as_mut() {
                Aux::Mvcc(c) => c,
                other => unreachable!("scheme mismatch: expected Mvcc, found {other:?}"),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_mode_compatibility() {
        assert!(LockMode::Shared.compatible(LockMode::Shared));
        assert!(!LockMode::Shared.compatible(LockMode::Exclusive));
        assert!(!LockMode::Exclusive.compatible(LockMode::Shared));
        assert!(!LockMode::Exclusive.compatible(LockMode::Exclusive));
    }

    #[test]
    fn queue_owner_management() {
        let mut q = LockQueue::default();
        q.owners.push(Owner {
            txn: 1,
            mode: LockMode::Shared,
            ts: 10,
        });
        q.owners.push(Owner {
            txn: 2,
            mode: LockMode::Shared,
            ts: 20,
        });
        assert!(q.compatible_with_owners(LockMode::Shared, 99));
        assert!(!q.compatible_with_owners(LockMode::Exclusive, 99));
        // ...but an upgrade by the sole remaining reader is compatible.
        assert!(q.remove_owner(2));
        assert!(q.compatible_with_owners(LockMode::Exclusive, 1));
        let conflicting: Vec<TxnId> = q
            .conflicting_owners(LockMode::Exclusive, 99)
            .map(|o| o.txn)
            .collect();
        assert_eq!(conflicting, vec![1]);
    }

    #[test]
    fn ts_state_pending() {
        let mut s = TsState::default();
        s.prewrites.push((10, 1));
        s.prewrites.push((5, 2));
        assert_eq!(s.pending_below(8), Some(5));
        assert_eq!(s.pending_below(3), None);
        assert!(s.remove_prewrite(2));
        assert!(!s.remove_prewrite(2));
        assert_eq!(s.pending_below(100), Some(10));
    }

    #[test]
    fn mvcc_visibility() {
        let mut c = MvccChain::default();
        for wts in [0u64, 5, 9] {
            c.versions.push_back(Version {
                wts,
                rts: 0,
                data: Box::new([0]),
            });
        }
        assert_eq!(c.visible_version(4), Some(0));
        assert_eq!(c.visible_version(5), Some(1));
        assert_eq!(c.visible_version(100), Some(2));
        c.prewrites.push((7, 3));
        // reader at ts 8 sees version wts=5 but a prewrite at 7 is pending
        assert_eq!(c.pending_between(5, 8), Some(7));
        // reader at ts 6 is unaffected (7 > 6)
        assert_eq!(c.pending_between(5, 6), None);
        c.gc(2);
        assert_eq!(c.versions.len(), 2);
        assert_eq!(c.versions[0].wts, 5);
    }

    #[test]
    fn row_meta_initializes_once() {
        let m = RowMeta::default();
        {
            let mut q = m.lock_queue();
            q.owners.push(Owner {
                txn: 7,
                mode: LockMode::Exclusive,
                ts: 0,
            });
        }
        let q = m.lock_queue();
        assert_eq!(q.owners.len(), 1);
    }

    #[test]
    fn mvcc_chain_seeds_initial_version() {
        let m = RowMeta::default();
        let c = m.mvcc_chain(|| vec![1, 2, 3].into_boxed_slice());
        assert_eq!(c.versions.len(), 1);
        assert_eq!(&*c.versions[0].data, &[1, 2, 3]);
        assert_eq!(c.versions[0].wts, 0);
    }
}
