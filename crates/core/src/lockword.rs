//! Lock-word encodings.
//!
//! Two single-word protocols cover the lock-free fast paths:
//!
//! * [`rw`] — a shared/exclusive count word for the 2PL schemes:
//!   bit 63 = writer present, bits 0..32 = reader count. NO_WAIT runs
//!   entirely on CAS against this word (the paper: "no centralized point
//!   of contention").
//! * [`silo`] — a version-plus-lock word for OCC reads and validation:
//!   bit 63 = locked, bits 0..63 = version counter bumped on every
//!   committed write.

/// Shared/exclusive reader-writer word.
pub mod rw {
    /// Writer-present bit.
    pub const WRITER: u64 = 1 << 63;
    /// Mask of the reader count.
    pub const READERS: u64 = (1 << 32) - 1;

    /// No holders at all.
    #[inline]
    pub fn is_free(w: u64) -> bool {
        w == 0
    }

    /// A writer holds the word.
    #[inline]
    pub fn has_writer(w: u64) -> bool {
        w & WRITER != 0
    }

    /// Number of readers.
    #[inline]
    pub fn readers(w: u64) -> u64 {
        w & READERS
    }

    /// Word after one more reader (caller checks `!has_writer`).
    #[inline]
    pub fn add_reader(w: u64) -> u64 {
        debug_assert!(!has_writer(w));
        w + 1
    }

    /// Word after one reader leaves.
    #[inline]
    pub fn remove_reader(w: u64) -> u64 {
        debug_assert!(readers(w) > 0);
        w - 1
    }

    /// Can a shared request be granted immediately?
    #[inline]
    pub fn can_read(w: u64) -> bool {
        !has_writer(w)
    }

    /// Can an exclusive request be granted immediately?
    #[inline]
    pub fn can_write(w: u64) -> bool {
        w == 0
    }
}

/// Silo-style version + lock word (OCC).
pub mod silo {
    /// Lock bit.
    pub const LOCKED: u64 = 1 << 63;

    /// Is the word locked?
    #[inline]
    pub fn is_locked(w: u64) -> bool {
        w & LOCKED != 0
    }

    /// The version component.
    #[inline]
    pub fn version(w: u64) -> u64 {
        w & !LOCKED
    }

    /// The word with the lock bit set.
    #[inline]
    pub fn lock(w: u64) -> u64 {
        w | LOCKED
    }

    /// The word after a committed write: version+1, unlocked.
    #[inline]
    pub fn bump_and_unlock(w: u64) -> u64 {
        version(w) + 1
    }

    /// The word unlocked with the version unchanged (validation failure).
    #[inline]
    pub fn unlock(w: u64) -> u64 {
        version(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rw_reader_lifecycle() {
        let mut w = 0u64;
        assert!(rw::is_free(w));
        assert!(rw::can_read(w) && rw::can_write(w));
        w = rw::add_reader(w);
        w = rw::add_reader(w);
        assert_eq!(rw::readers(w), 2);
        assert!(rw::can_read(w));
        assert!(!rw::can_write(w));
        w = rw::remove_reader(w);
        w = rw::remove_reader(w);
        assert!(rw::is_free(w));
    }

    #[test]
    fn rw_writer_excludes() {
        let w = rw::WRITER;
        assert!(rw::has_writer(w));
        assert!(!rw::can_read(w));
        assert!(!rw::can_write(w));
        assert_eq!(rw::readers(w), 0);
    }

    #[test]
    fn silo_lock_preserves_version() {
        let w = 41u64;
        let locked = silo::lock(w);
        assert!(silo::is_locked(locked));
        assert_eq!(silo::version(locked), 41);
        assert_eq!(silo::unlock(locked), 41);
        assert_eq!(silo::bump_and_unlock(locked), 42);
        assert!(!silo::is_locked(silo::bump_and_unlock(locked)));
    }
}
