//! Lock-word encodings.
//!
//! Three single-word protocols cover the lock-free fast paths:
//!
//! * [`rw`] — a shared/exclusive count word for the 2PL schemes:
//!   bit 63 = writer present, bits 0..32 = reader count. NO_WAIT runs
//!   entirely on CAS against this word (the paper: "no centralized point
//!   of contention").
//! * [`silo`] — a version-plus-lock word for OCC reads and validation:
//!   bit 63 = locked, bits 0..63 = version counter bumped on every
//!   committed write.
//! * [`tictoc`] — a `wts`/`rts` timestamp pair packed under the same lock
//!   bit: bit 63 = locked, bits 48..=62 = `rts − wts` delta, bits 0..=47 =
//!   `wts`. Sharing bit 63 with [`silo`] lets TICTOC reuse OCC's seqlock
//!   copy and canonical-order latch machinery unchanged.

/// Shared/exclusive reader-writer word.
pub mod rw {
    /// Writer-present bit.
    pub const WRITER: u64 = 1 << 63;
    /// Mask of the reader count.
    pub const READERS: u64 = (1 << 32) - 1;

    /// No holders at all.
    #[inline]
    pub fn is_free(w: u64) -> bool {
        w == 0
    }

    /// A writer holds the word.
    #[inline]
    pub fn has_writer(w: u64) -> bool {
        w & WRITER != 0
    }

    /// Number of readers.
    #[inline]
    pub fn readers(w: u64) -> u64 {
        w & READERS
    }

    /// Word after one more reader (caller checks `!has_writer`).
    #[inline]
    pub fn add_reader(w: u64) -> u64 {
        debug_assert!(!has_writer(w));
        w + 1
    }

    /// Word after one reader leaves.
    #[inline]
    pub fn remove_reader(w: u64) -> u64 {
        debug_assert!(readers(w) > 0);
        w - 1
    }

    /// Can a shared request be granted immediately?
    #[inline]
    pub fn can_read(w: u64) -> bool {
        !has_writer(w)
    }

    /// Can an exclusive request be granted immediately?
    #[inline]
    pub fn can_write(w: u64) -> bool {
        w == 0
    }
}

/// Silo-style version + lock word (OCC).
pub mod silo {
    /// Lock bit.
    pub const LOCKED: u64 = 1 << 63;

    /// Is the word locked?
    #[inline]
    pub fn is_locked(w: u64) -> bool {
        w & LOCKED != 0
    }

    /// The version component.
    #[inline]
    pub fn version(w: u64) -> u64 {
        w & !LOCKED
    }

    /// The word with the lock bit set.
    #[inline]
    pub fn lock(w: u64) -> u64 {
        w | LOCKED
    }

    /// The word after a committed write: version+1, unlocked.
    #[inline]
    pub fn bump_and_unlock(w: u64) -> u64 {
        version(w) + 1
    }

    /// The word unlocked with the version unchanged (validation failure).
    #[inline]
    pub fn unlock(w: u64) -> u64 {
        version(w)
    }
}

/// TicToc-style `wts`/`rts` word (data-driven timestamp OCC).
///
/// A tuple's word encodes the timestamp of its last committed write
/// (`wts`) and the largest timestamp at which it is known to have been
/// *valid* (`rts >= wts`), as `wts` plus a bounded delta:
///
/// ```text
///  63    62..........48  47.............0
/// [lock][  rts − wts   ][      wts      ]
/// ```
///
/// Readers record the whole (unlocked) word; committers validate by
/// comparing the `wts` component and *extend* `rts` with a CAS when their
/// commit timestamp exceeds it — the extension that lets a read stay valid
/// without re-reading. When an extension would overflow the 15-bit delta,
/// `wts` is advanced so `rts` stays exact (under-representing `rts` would
/// let a writer serialize below a committed read — a lost update); the
/// bump can only cause conservative aborts in concurrent readers.
pub mod tictoc {
    pub use super::silo::{is_locked, lock, LOCKED};

    /// Bits of the word holding `wts`.
    pub const WTS_BITS: u32 = 48;
    /// Bits of the word holding the `rts − wts` delta.
    pub const DELTA_BITS: u32 = 15;
    /// Mask of the `wts` component.
    pub const WTS_MASK: u64 = (1 << WTS_BITS) - 1;
    /// Largest representable `rts − wts` delta.
    pub const DELTA_MAX: u64 = (1 << DELTA_BITS) - 1;

    /// The write timestamp (ignores the lock bit).
    #[inline]
    pub fn wts(w: u64) -> u64 {
        w & WTS_MASK
    }

    /// The read timestamp: `wts` plus the packed delta.
    #[inline]
    pub fn rts(w: u64) -> u64 {
        wts(w) + ((w >> WTS_BITS) & DELTA_MAX)
    }

    /// Pack `(wts, rts)` into an unlocked word. On delta overflow `wts` is
    /// advanced (never truncating `rts` — see module docs).
    #[inline]
    pub fn pack(wts: u64, rts: u64) -> u64 {
        debug_assert!(rts >= wts, "rts {rts} < wts {wts}");
        debug_assert!(rts <= WTS_MASK, "rts {rts} overflows {WTS_BITS} bits");
        let (wts, delta) = if rts - wts > DELTA_MAX {
            (rts - DELTA_MAX, DELTA_MAX)
        } else {
            (wts, rts - wts)
        };
        (delta << WTS_BITS) | wts
    }

    /// The word with `rts` extended to at least `to`, preserving the lock
    /// bit. A no-op when the current `rts` already covers `to`.
    #[inline]
    pub fn extend_rts(w: u64, to: u64) -> u64 {
        (w & LOCKED) | pack(wts(w), rts(w).max(to))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rw_reader_lifecycle() {
        let mut w = 0u64;
        assert!(rw::is_free(w));
        assert!(rw::can_read(w) && rw::can_write(w));
        w = rw::add_reader(w);
        w = rw::add_reader(w);
        assert_eq!(rw::readers(w), 2);
        assert!(rw::can_read(w));
        assert!(!rw::can_write(w));
        w = rw::remove_reader(w);
        w = rw::remove_reader(w);
        assert!(rw::is_free(w));
    }

    #[test]
    fn rw_writer_excludes() {
        let w = rw::WRITER;
        assert!(rw::has_writer(w));
        assert!(!rw::can_read(w));
        assert!(!rw::can_write(w));
        assert_eq!(rw::readers(w), 0);
    }

    #[test]
    fn tictoc_pack_round_trips() {
        let w = tictoc::pack(100, 130);
        assert_eq!(tictoc::wts(w), 100);
        assert_eq!(tictoc::rts(w), 130);
        assert!(!tictoc::is_locked(w));
        let locked = tictoc::lock(w);
        assert!(tictoc::is_locked(locked));
        assert_eq!(tictoc::wts(locked), 100);
        assert_eq!(tictoc::rts(locked), 130);
    }

    #[test]
    fn tictoc_extend_rts_preserves_wts_and_lock() {
        let w = tictoc::pack(50, 50);
        let e = tictoc::extend_rts(w, 80);
        assert_eq!(tictoc::wts(e), 50);
        assert_eq!(tictoc::rts(e), 80);
        // Extending below the current rts is a no-op.
        assert_eq!(tictoc::extend_rts(e, 60), e);
        // The lock bit survives an extension of a latched word.
        let le = tictoc::extend_rts(tictoc::lock(w), 80);
        assert!(tictoc::is_locked(le));
        assert_eq!(tictoc::rts(le), 80);
    }

    #[test]
    fn tictoc_delta_overflow_bumps_wts_exactly() {
        // rts − wts beyond 15 bits: wts advances, rts stays exact — the
        // "rts overflow forces a wts bump" edge case. The bumped wts must
        // differ from the original (concurrent readers abort, safely).
        let w = tictoc::pack(10, 10);
        let to = 10 + tictoc::DELTA_MAX + 5;
        let e = tictoc::extend_rts(w, to);
        assert_eq!(tictoc::rts(e), to, "rts must never be truncated");
        assert_eq!(tictoc::wts(e), to - tictoc::DELTA_MAX);
        assert_ne!(tictoc::wts(e), tictoc::wts(w));
        // Boundary: a delta of exactly DELTA_MAX still fits without a bump.
        let b = tictoc::extend_rts(w, 10 + tictoc::DELTA_MAX);
        assert_eq!(tictoc::wts(b), 10);
        assert_eq!(tictoc::rts(b), 10 + tictoc::DELTA_MAX);
    }

    #[test]
    fn tictoc_word_never_collides_with_lock_bit() {
        let w = tictoc::pack(tictoc::WTS_MASK, tictoc::WTS_MASK);
        assert!(w < tictoc::LOCKED);
        let full = tictoc::pack(tictoc::WTS_MASK - tictoc::DELTA_MAX, tictoc::WTS_MASK);
        assert!(full < tictoc::LOCKED);
        assert_eq!(tictoc::rts(full), tictoc::WTS_MASK);
    }

    #[test]
    fn silo_lock_preserves_version() {
        let w = 41u64;
        let locked = silo::lock(w);
        assert!(silo::is_locked(locked));
        assert_eq!(silo::version(locked), 41);
        assert_eq!(silo::unlock(locked), 41);
        assert_eq!(silo::bump_and_unlock(locked), 42);
        assert!(!silo::is_locked(silo::bump_and_unlock(locked)));
    }
}
