//! Partitioned, lock-free waits-for graph for DL_DETECT (§4.2).
//!
//! Each worker owns a slot. When its transaction blocks, the worker writes
//! the transaction ids it is waiting for into *its own* slot — no other
//! thread ever writes there, so publication needs no locks ("this step is
//! local, as the thread does not write to the queues of other
//! transactions"). Detection is a lock-free DFS over the published slots
//! performed by the *waiting* thread.
//!
//! Like the paper's detector, the search is racy by design: it "may not
//! discover a deadlock immediately after it forms, but the thread is
//! guaranteed to find it on subsequent passes". A stale read can also
//! manufacture a cycle that just resolved; the consequence is one spurious
//! abort, indistinguishable from a timeout abort. Victim choice follows
//! the paper's cost heuristic in spirit: the detecting transaction aborts
//! itself, which is the cheapest victim to restart (its worker is already
//! idle, its locks are known) and guarantees the cycle is broken.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use abyss_common::Padded;
use abyss_common::{ids::TXN_NONE, CoreId, TxnId};

use crate::txn::worker_of;

/// Maximum published out-edges per waiting transaction. A write-lock
/// request can wait on many readers; edges beyond the cap are dropped,
/// making detection conservative (missed deadlocks fall back to the
/// timeout).
pub const MAX_EDGES: usize = 16;

#[derive(Debug)]
struct Slot {
    /// Transaction currently running on this worker (TXN_NONE when idle).
    active: AtomicU64,
    /// Published wait-for edges (valid up to `len`).
    edges: [AtomicU64; MAX_EDGES],
    /// Number of valid edges; 0 = not waiting.
    len: AtomicUsize,
}

impl Default for Slot {
    fn default() -> Self {
        Self {
            active: AtomicU64::new(TXN_NONE),
            edges: std::array::from_fn(|_| AtomicU64::new(TXN_NONE)),
            len: AtomicUsize::new(0),
        }
    }
}

/// The partitioned waits-for graph.
#[derive(Debug)]
pub struct WaitsFor {
    slots: Box<[Padded<Slot>]>,
}

impl WaitsFor {
    /// Graph for `workers` workers.
    pub fn new(workers: u32) -> Self {
        let mut v = Vec::with_capacity(workers as usize);
        v.resize_with(workers as usize, Padded::default);
        Self {
            slots: v.into_boxed_slice(),
        }
    }

    /// Register `txn` as the active transaction of `worker` (at begin).
    pub fn set_active(&self, worker: CoreId, txn: TxnId) {
        self.slots[worker as usize]
            .active
            .store(txn, Ordering::Release);
    }

    /// Clear the active transaction (at commit/abort).
    pub fn clear_active(&self, worker: CoreId) {
        let s = &self.slots[worker as usize];
        s.len.store(0, Ordering::Release);
        s.active.store(TXN_NONE, Ordering::Release);
    }

    /// Publish the set of transactions `worker` now waits for.
    pub fn publish_waits(&self, worker: CoreId, waitees: impl IntoIterator<Item = TxnId>) {
        let s = &self.slots[worker as usize];
        let mut n = 0;
        for t in waitees {
            if n >= MAX_EDGES {
                break;
            }
            s.edges[n].store(t, Ordering::Relaxed);
            n += 1;
        }
        s.len.store(n, Ordering::Release);
    }

    /// Clear `worker`'s published waits (after the wait resolves).
    pub fn clear_waits(&self, worker: CoreId) {
        self.slots[worker as usize].len.store(0, Ordering::Release);
    }

    /// Wait-for edges currently published across all workers — a live
    /// contention gauge (racy by nature, like detection itself).
    pub fn published_edges(&self) -> u64 {
        self.slots
            .iter()
            .map(|s| s.len.load(Ordering::Relaxed) as u64)
            .sum()
    }

    /// DFS from `me`: does a published path of waits lead back to `me`?
    ///
    /// Run by the waiting thread itself. Lock-free, read-only, racy (see
    /// module docs).
    pub fn detect_cycle(&self, me: TxnId) -> bool {
        // Iterative DFS; depth is bounded by the worker count.
        let mut stack: Vec<TxnId> = Vec::with_capacity(8);
        let mut visited: Vec<TxnId> = Vec::with_capacity(8);
        stack.push(me);
        while let Some(txn) = stack.pop() {
            let worker = worker_of(txn) as usize;
            if worker >= self.slots.len() {
                continue;
            }
            let slot = &self.slots[worker];
            // The edges only belong to `txn` if it is still the active
            // transaction on that worker.
            if slot.active.load(Ordering::Acquire) != txn {
                continue;
            }
            let n = slot.len.load(Ordering::Acquire).min(MAX_EDGES);
            for i in 0..n {
                let waitee = slot.edges[i].load(Ordering::Relaxed);
                if waitee == me {
                    return true;
                }
                if waitee != TXN_NONE && !visited.contains(&waitee) {
                    visited.push(waitee);
                    stack.push(waitee);
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::txn::make_txn_id;

    #[test]
    fn no_cycle_when_nobody_waits() {
        let g = WaitsFor::new(4);
        let t0 = make_txn_id(0, 1);
        g.set_active(0, t0);
        assert!(!g.detect_cycle(t0));
    }

    #[test]
    fn two_party_cycle_detected() {
        let g = WaitsFor::new(4);
        let t0 = make_txn_id(0, 1);
        let t1 = make_txn_id(1, 1);
        g.set_active(0, t0);
        g.set_active(1, t1);
        g.publish_waits(0, [t1]);
        g.publish_waits(1, [t0]);
        assert!(g.detect_cycle(t0));
        assert!(g.detect_cycle(t1));
    }

    #[test]
    fn chain_without_cycle_not_detected() {
        let g = WaitsFor::new(4);
        let ts: Vec<TxnId> = (0..3).map(|w| make_txn_id(w, 1)).collect();
        for (w, t) in ts.iter().enumerate() {
            g.set_active(w as CoreId, *t);
        }
        g.publish_waits(0, [ts[1]]);
        g.publish_waits(1, [ts[2]]);
        assert!(!g.detect_cycle(ts[0]));
        assert!(!g.detect_cycle(ts[2]));
    }

    #[test]
    fn three_party_cycle_detected() {
        let g = WaitsFor::new(4);
        let ts: Vec<TxnId> = (0..3).map(|w| make_txn_id(w, 1)).collect();
        for (w, t) in ts.iter().enumerate() {
            g.set_active(w as CoreId, *t);
        }
        g.publish_waits(0, [ts[1]]);
        g.publish_waits(1, [ts[2]]);
        g.publish_waits(2, [ts[0]]);
        for t in &ts {
            assert!(g.detect_cycle(*t));
        }
    }

    #[test]
    fn stale_edges_of_finished_txn_are_ignored() {
        let g = WaitsFor::new(4);
        let t0 = make_txn_id(0, 1);
        let t1 = make_txn_id(1, 1);
        g.set_active(0, t0);
        g.set_active(1, t1);
        g.publish_waits(0, [t1]);
        g.publish_waits(1, [t0]);
        // t1 commits and its worker starts a new transaction: the old edges
        // must no longer support a cycle through t1.
        g.clear_active(1);
        g.set_active(1, make_txn_id(1, 2));
        assert!(!g.detect_cycle(t0));
    }

    #[test]
    fn edge_cap_is_respected() {
        let g = WaitsFor::new(2);
        let t0 = make_txn_id(0, 1);
        g.set_active(0, t0);
        let many: Vec<TxnId> = (0..100).map(|i| make_txn_id(1, i)).collect();
        g.publish_waits(0, many);
        // Does not panic, and detection still terminates.
        assert!(!g.detect_cycle(t0));
    }
}
