//! The transaction serving layer: an open-loop, stored-procedure front
//! end over the closed-loop CC engine.
//!
//! The paper's drivers are closed loops — each worker generates its next
//! transaction the instant the previous one finishes, so offered load
//! always equals capacity. A real service faces the opposite regime:
//! producers submit at *their* rate, and the engine must queue, prioritize,
//! shed, and answer. This module adds that front end without touching the
//! hot path:
//!
//! * [`TxnService::submit`] — many producer threads submit
//!   `(procedure, args, priority)`; the call builds the template via the
//!   [`ProcRegistry`], round-robins it onto a per-worker [bounded
//!   queue](queue), and returns a [`TxnTicket`] that resolves exactly once.
//! * One CC worker per shard drains its queue through the existing
//!   monomorphized [`CcProtocol`](crate::schemes::CcProtocol) executor —
//!   the same `dispatch_protocol!`-bound loop the benches measure.
//! * **Backpressure:** each shard is bounded; a full shard either blocks
//!   the producer or returns [`SubmitError::QueueFull`] per
//!   [`ServeConfig::block_on_full`].
//! * **Priorities:** two classes with a starvation-free dequeue discipline
//!   (at most [`ServeConfig::high_burst`] consecutive high-class dequeues
//!   while low-class work waits).
//! * **Load shedding:** admission sheds low-class requests when a shard's
//!   depth reaches [`ServeConfig::shed_depth`] (high-class at twice that),
//!   or when the observed queue-to-ack p99 crosses
//!   [`ServeConfig::shed_ack_p99_ns`]. Shed requests resolve their ticket
//!   as [`TicketStatus::Shed`] immediately — bounded latency, visible
//!   rejection, no silent queue growth.
//! * **Drain/shutdown:** [`TxnService::cancel_token`] stops admission from
//!   anywhere; [`TxnService::shutdown`] closes the queues, lets workers
//!   drain every accepted request, joins them, and returns the merged
//!   [`RunStats`](abyss_common::RunStats) — queue-to-ack latency per
//!   priority class and shed counts included, flowing into the metrics
//!   snapshot and both exporters.

mod queue;
mod registry;
mod service;
mod ticket;

pub use registry::{ProcFn, ProcId, ProcRegistry};
pub use service::{CancelToken, TxnService};
pub use ticket::{TicketStatus, TxnTicket};

/// Why a submission was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// No stored procedure registered under that name.
    UnknownProc,
    /// The target shard is at capacity and
    /// [`ServeConfig::block_on_full`] is off.
    QueueFull,
    /// The service is shutting down; admission is closed.
    Stopped,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::UnknownProc => write!(f, "unknown stored procedure"),
            SubmitError::QueueFull => write!(f, "request queue full"),
            SubmitError::Stopped => write!(f, "service stopped"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Serving-layer tunables. Defaults suit tests and small benches; the
/// `fig_service` harness sweeps the interesting ones.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Per-shard queue bound across both priority classes. A full shard
    /// exerts backpressure per [`ServeConfig::block_on_full`].
    pub queue_capacity: usize,
    /// Depth at which admission sheds low-class requests; high-class
    /// requests shed at twice this (capped by the capacity). Must be
    /// `> 0` and `<= queue_capacity` — shedding is the pressure valve
    /// *before* the hard bound.
    pub shed_depth: usize,
    /// Queue-to-ack p99 threshold (ns) above which low-class admission
    /// sheds even when the queue is shallow. `0` disables latency-based
    /// shedding. The gauge is each worker's observed p99, refreshed every
    /// few hundred acks.
    pub shed_ack_p99_ns: u64,
    /// On a full shard: `true` blocks the producer until space frees (or
    /// the service stops); `false` fails fast with
    /// [`SubmitError::QueueFull`].
    pub block_on_full: bool,
    /// Maximum consecutive high-class dequeues while low-class work
    /// waits — the starvation bound. Must be `>= 1`.
    pub high_burst: u32,
    /// Expected producer-thread count, used only to decide whether the
    /// park table should collapse to its early-yield spin ladder
    /// (workers + producers > cores).
    pub producer_hint: u32,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 1024,
            shed_depth: 512,
            shed_ack_p99_ns: 0,
            block_on_full: true,
            high_burst: 8,
            producer_hint: 1,
        }
    }
}

impl ServeConfig {
    /// Panics on nonsensical combinations (zero bounds, shed beyond
    /// capacity).
    pub fn validate(&self) {
        assert!(self.queue_capacity > 0, "queue_capacity must be > 0");
        assert!(
            self.shed_depth > 0 && self.shed_depth <= self.queue_capacity,
            "shed_depth must be in 1..=queue_capacity (got {} of {})",
            self.shed_depth,
            self.queue_capacity
        );
        assert!(self.high_burst >= 1, "high_burst must be >= 1");
    }
}
