//! Submission tickets: the acknowledgement half of the serving layer.
//!
//! Every accepted (or shed) submission hands the producer a [`TxnTicket`]
//! that resolves exactly once — committed, aborted, failed, or shed. The
//! ticket is the only channel back to the producer: the worker resolves it
//! after executing the request, the admission path resolves it immediately
//! when shedding, and a producer that does not care simply drops it
//! (resolution does not require a waiter).

use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use abyss_common::AbortReason;

/// Terminal (or pending) state of one submitted request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TicketStatus {
    /// Queued or executing; the terminal state is not known yet.
    Pending,
    /// Executed and committed.
    Committed,
    /// Aborted non-retryably (scheduler aborts are retried inside the
    /// worker; only user aborts surface here).
    Aborted(AbortReason),
    /// The stored procedure failed non-transactionally (missing key,
    /// template bug) — rolled back, not retried.
    Failed,
    /// Rejected at admission by load shedding; never executed.
    Shed,
}

impl TicketStatus {
    /// True for every state but [`TicketStatus::Pending`].
    pub fn is_resolved(self) -> bool {
        !matches!(self, TicketStatus::Pending)
    }
}

/// Shared ticket cell: the worker (or admission) resolves it, the
/// producer waits on it. One mutex/condvar pair per request is cheap
/// relative to transaction execution, and `std` primitives keep the
/// serving layer free of external dependencies.
#[derive(Debug)]
pub(crate) struct TicketInner {
    state: Mutex<TicketStatus>,
    cv: Condvar,
}

impl TicketInner {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(TicketStatus::Pending),
            cv: Condvar::new(),
        })
    }

    /// Move the ticket to a terminal state and wake every waiter. Must be
    /// called exactly once.
    pub(crate) fn resolve(&self, status: TicketStatus) {
        debug_assert!(status.is_resolved(), "resolving to Pending");
        let mut st = self.state.lock().expect("ticket lock");
        debug_assert!(!st.is_resolved(), "ticket resolved twice");
        *st = status;
        drop(st);
        self.cv.notify_all();
    }
}

/// Handle to one submitted request, returned by `TxnService::submit`.
///
/// The ticket resolves exactly once; [`TxnTicket::wait`] blocks until it
/// does. Dropping the ticket is fine — the request still executes and the
/// resolution is simply unobserved.
#[derive(Debug)]
pub struct TxnTicket {
    pub(crate) inner: Arc<TicketInner>,
}

impl TxnTicket {
    /// Current status without blocking.
    pub fn status(&self) -> TicketStatus {
        *self.inner.state.lock().expect("ticket lock")
    }

    /// True once the request reached a terminal state.
    pub fn is_resolved(&self) -> bool {
        self.status().is_resolved()
    }

    /// Block until the request resolves and return the terminal status.
    pub fn wait(&self) -> TicketStatus {
        let mut st = self.inner.state.lock().expect("ticket lock");
        while !st.is_resolved() {
            st = self.inner.cv.wait(st).expect("ticket lock");
        }
        *st
    }

    /// Like [`TxnTicket::wait`] with a deadline: `None` if the request is
    /// still pending after `timeout`.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<TicketStatus> {
        let deadline = std::time::Instant::now() + timeout;
        let mut st = self.inner.state.lock().expect("ticket lock");
        while !st.is_resolved() {
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .cv_wait_timeout(st, deadline - now)
                .expect("ticket lock");
            st = guard;
        }
        Some(*st)
    }

    fn cv_wait_timeout<'a>(
        &self,
        guard: std::sync::MutexGuard<'a, TicketStatus>,
        dur: Duration,
    ) -> std::sync::LockResult<(
        std::sync::MutexGuard<'a, TicketStatus>,
        std::sync::WaitTimeoutResult,
    )> {
        self.inner.cv.wait_timeout(guard, dur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticket_resolves_once_and_wakes_waiters() {
        let inner = TicketInner::new();
        let ticket = TxnTicket {
            inner: Arc::clone(&inner),
        };
        assert_eq!(ticket.status(), TicketStatus::Pending);
        assert!(!ticket.is_resolved());
        let h = std::thread::spawn(move || ticket.wait());
        std::thread::sleep(Duration::from_millis(5));
        inner.resolve(TicketStatus::Committed);
        assert_eq!(h.join().unwrap(), TicketStatus::Committed);
    }

    #[test]
    fn wait_timeout_reports_pending() {
        let inner = TicketInner::new();
        let ticket = TxnTicket {
            inner: Arc::clone(&inner),
        };
        assert_eq!(ticket.wait_timeout(Duration::from_millis(5)), None);
        inner.resolve(TicketStatus::Shed);
        assert_eq!(
            ticket.wait_timeout(Duration::from_millis(5)),
            Some(TicketStatus::Shed)
        );
        assert_eq!(ticket.status(), TicketStatus::Shed);
    }

    #[test]
    fn dropped_ticket_does_not_block_resolution() {
        let inner = TicketInner::new();
        let ticket = TxnTicket {
            inner: Arc::clone(&inner),
        };
        drop(ticket);
        inner.resolve(TicketStatus::Failed); // must not panic or deadlock
    }
}
